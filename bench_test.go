// Package bench is the paper-reproduction benchmark harness: one benchmark
// per table and figure of the evaluation section (see DESIGN.md's
// experiment index). Each benchmark regenerates the corresponding artifact
// through internal/experiments, or times the underlying algorithm directly
// where the paper reports running time (Figure 18).
//
// Run with:
//
//	go test -bench=. -benchmem
package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"testing"

	"stratrec/internal/adpar"
	"stratrec/internal/batch"
	"stratrec/internal/experiments"
	"stratrec/internal/loadgen"
	"stratrec/internal/server"
	"stratrec/internal/strategy"
	"stratrec/internal/synth"
	"stratrec/internal/workforce"
)

// benchCfg keeps per-iteration work bounded; the full-scale numbers come
// from cmd/experiments.
func benchCfg() experiments.Config {
	return experiments.Config{Seed: 2020, Short: true, Runs: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Example regenerates the running-example table and its
// satisfaction check.
func BenchmarkTable1Example(b *testing.B) { runExperiment(b, "table-1") }

// BenchmarkADPaRTrace regenerates Tables 2-5, the ADPaR-Exact walk-through
// on d2.
func BenchmarkADPaRTrace(b *testing.B) { runExperiment(b, "tables-2-5") }

// BenchmarkFigure11Availability regenerates the worker-availability
// estimation figure.
func BenchmarkFigure11Availability(b *testing.B) { runExperiment(b, "figure-11") }

// BenchmarkFigure12Relationship regenerates the availability-vs-parameters
// panels.
func BenchmarkFigure12Relationship(b *testing.B) { runExperiment(b, "figure-12") }

// BenchmarkTable6Fit regenerates the (alpha, beta) estimation table.
func BenchmarkTable6Fit(b *testing.B) { runExperiment(b, "table-6") }

// BenchmarkFigure13Effectiveness regenerates the with/without-StratRec
// comparison.
func BenchmarkFigure13Effectiveness(b *testing.B) { runExperiment(b, "figure-13") }

// BenchmarkFigure14Satisfied regenerates the satisfied-request sweeps.
func BenchmarkFigure14Satisfied(b *testing.B) { runExperiment(b, "figure-14") }

// BenchmarkFigure15Throughput regenerates the throughput comparison.
func BenchmarkFigure15Throughput(b *testing.B) { runExperiment(b, "figure-15") }

// BenchmarkFigure16Payoff regenerates the pay-off comparison with
// approximation factors.
func BenchmarkFigure16Payoff(b *testing.B) { runExperiment(b, "figure-16") }

// BenchmarkFigure17ADPaRQuality regenerates the ADPaR distance comparison.
func BenchmarkFigure17ADPaRQuality(b *testing.B) { runExperiment(b, "figure-17") }

// --- Figure 18: the paper reports running times, so these benchmarks time
// the algorithms directly at the paper's parameter points. ---

// batchItems builds m feasible optimization items directly, isolating the
// timing comparison to the optimizers themselves.
func batchItems(rng *rand.Rand, m int) []batch.Item {
	items := make([]batch.Item, m)
	for i := range items {
		items[i] = batch.Item{
			Index:     i,
			Value:     0.625 + 0.375*rng.Float64(),
			Workforce: rng.Float64() * 0.1,
		}
	}
	return items
}

// BenchmarkFigure18aBatchScalability times BruteForce (exponential; small
// m) against BatchStrat (linear; the paper's m range).
func BenchmarkFigure18aBatchScalability(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	for _, m := range []int{10, 14, 18} {
		items := batchItems(rng, m)
		b.Run("BruteForce/m="+strconv.Itoa(m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := batch.BruteForce(items, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, m := range []int{200, 400, 600, 800} {
		items := batchItems(rng, m)
		b.Run("BatchStrat/m="+strconv.Itoa(m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				batch.BatchStrat(items, 0.5)
			}
		})
	}
}

func adparInstance(rng *rand.Rand, n, k int) (strategy.Set, strategy.Request) {
	cfg := synth.DefaultConfig(synth.Uniform)
	set := cfg.Strategies(rng, n)
	return set, cfg.ADPaRRequest(rng, k)
}

// BenchmarkFigure18bADPaRStrategies times ADPaR-Exact at the paper's
// strategy-set sizes (k = 5).
func BenchmarkFigure18bADPaRStrategies(b *testing.B) {
	for _, n := range []int{1000, 5000, 25000} {
		rng := rand.New(rand.NewSource(int64(n)))
		set, d := adparInstance(rng, n, 5)
		b.Run("S="+strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := adpar.Exact(set, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure18cADPaRK times ADPaR-Exact at the paper's cardinality
// constraints (|S| = 10000).
func BenchmarkFigure18cADPaRK(b *testing.B) {
	for _, k := range []int{10, 50, 250} {
		rng := rand.New(rand.NewSource(int64(k)))
		set, d := adparInstance(rng, 10000, k)
		b.Run("k="+strconv.Itoa(k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := adpar.Exact(set, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Amortized serving engine: the same Figure-18 parameter points served
// through a warm adpar.Index, quantifying what the per-request compilation
// costs and what the parallel sweep adds. ---

// BenchmarkIndexedADPaR times warm-index sequential serving: the index is
// compiled once per parameter point and every iteration is one request
// against it — the steady state of the online StratRec setting.
func BenchmarkIndexedADPaR(b *testing.B) {
	// Seeds match BenchmarkFigure18bADPaRStrategies (seed = n) and
	// BenchmarkFigure18cADPaRK (seed = k) so warm-index numbers compare
	// apples-to-apples against the per-request Exact path on the very same
	// instances.
	points := []struct {
		n, k int
		seed int64
	}{
		{1000, 5, 1000}, {5000, 5, 5000}, {25000, 5, 25000}, // Figure 18b sweep (k = 5)
		{10000, 10, 10}, {10000, 50, 50}, {10000, 250, 250}, // Figure 18c sweep (|S| = 10000)
	}
	for _, pt := range points {
		rng := rand.New(rand.NewSource(pt.seed))
		set, d := adparInstance(rng, pt.n, pt.k)
		ix, err := adpar.NewIndex(set)
		if err != nil {
			b.Fatal(err)
		}
		ix.Parallelism = 1
		b.Run("S="+strconv.Itoa(pt.n)+"/k="+strconv.Itoa(pt.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Solve(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Multi-tenant serving: end-to-end HTTP latency of the stratrec serve
// subsystem, the online regime the warm index was built for. ---

// benchServer hosts two synthetic tenants over httptest for the lifetime
// of the benchmark.
func benchServer(b *testing.B, strategies int) (*server.Server, *httptest.Server) {
	b.Helper()
	s, hs := benchLoadServer(b, strategies)
	b.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// benchLoadServer is benchServer without b.Cleanup, for benchmarks that
// create and close a server every iteration.
func benchLoadServer(b *testing.B, strategies int) (*server.Server, *httptest.Server) {
	b.Helper()
	gen := synth.DefaultConfig(synth.Uniform)
	tenants := map[string]server.TenantConfig{}
	for i, name := range []string{"alpha", "beta"} {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		set := gen.Strategies(rng, strategies)
		tenants[name] = server.TenantConfig{
			Set: set, Models: gen.Models(rng, set),
			Mode: workforce.MaxCase, Objective: batch.Throughput,
			InitialW: 0.7,
		}
	}
	s, err := server.New(server.Config{Tenants: tenants})
	if err != nil {
		b.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

// BenchmarkServeSubmitRevoke times one submit+revoke round trip through
// the full HTTP stack: JSON decode, event-loop hop, BatchStrat replan,
// snapshot publish, JSON encode — twice. The open pool stays bounded, so
// per-op cost is the steady state, not pool growth.
func BenchmarkServeSubmitRevoke(b *testing.B) {
	_, hs := benchServer(b, 200)
	client := hs.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tenant := []string{"alpha", "beta"}[i%2]
		id := "r" + strconv.Itoa(i)
		body, _ := json.Marshal(server.SubmitRequest{
			ID: id, Quality: 0.4, Cost: 0.6, Latency: 0.6, K: 3,
		})
		resp, err := client.Post(hs.URL+"/v1/tenants/"+tenant+"/requests", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/tenants/"+tenant+"/requests/"+id, nil)
		resp, err = client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkServePlanRead times the lock-free read path: an atomic snapshot
// load plus JSON encoding, with 100 open requests in the plan.
func BenchmarkServePlanRead(b *testing.B) {
	_, hs := benchServer(b, 200)
	client := hs.Client()
	gen := synth.DefaultConfig(synth.Uniform)
	rng := rand.New(rand.NewSource(9))
	for i, d := range gen.Requests(rng, 100, 3) {
		d.ID = "r" + strconv.Itoa(i)
		body, _ := json.Marshal(server.SubmitRequest{
			ID: d.ID, Quality: d.Quality, Cost: d.Cost, Latency: d.Latency, K: d.K,
		})
		resp, err := client.Post(hs.URL+"/v1/tenants/alpha/requests", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(hs.URL + "/v1/tenants/alpha/plan")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkServeLoadHarness runs the full load harness for a short
// closed-loop burst per iteration, giving CI a one-line throughput
// trajectory for the whole serving stack. Each iteration gets a fresh
// server (outside the timer): submits left open by one burst would
// otherwise accumulate and make replanning cost grow with b.N.
func BenchmarkServeLoadHarness(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, hs := benchLoadServer(b, 100)
		b.StartTimer()
		rep, err := loadgen.Run(loadgen.Config{
			BaseURL:        hs.URL,
			Tenants:        []string{"alpha", "beta"},
			Workers:        4,
			Events:         400,
			RevokeFraction: 0.3,
			DriftFraction:  0.05,
			TightFraction:  0.3,
			K:              3,
			Seed:           42,
			Client:         hs.Client(),
		})
		b.StopTimer()
		hs.Close()
		s.Close()
		b.StartTimer()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 {
			b.Fatalf("%d load errors", rep.Errors)
		}
	}
}

// BenchmarkIngestThroughput measures end-to-end ingest in ops/s through
// the full HTTP stack — per-op endpoints vs. the batched /ops endpoint —
// and reports ops/s as a custom metric. Each iteration gets a fresh
// server so pool growth never pollutes the steady state. This is the
// benchmark behind benchmarks/BENCH_ingest_throughput.json.
func BenchmarkIngestThroughput(b *testing.B) {
	for _, mode := range []struct {
		name      string
		batchSize int
	}{
		{"per-op", 0},
		{"batched-32", 32},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var ops, seconds float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, hs := benchLoadServer(b, 100)
				b.StartTimer()
				rep, err := loadgen.Run(loadgen.Config{
					BaseURL:        hs.URL,
					Tenants:        []string{"alpha", "beta"},
					Workers:        4,
					Events:         800,
					RevokeFraction: 0.3,
					DriftFraction:  0.05,
					K:              3,
					Seed:           42,
					BatchSize:      mode.batchSize,
					Client:         hs.Client(),
				})
				b.StopTimer()
				hs.Close()
				s.Close()
				b.StartTimer()
				if err != nil {
					b.Fatal(err)
				}
				if rep.Errors > 0 {
					b.Fatalf("%d ingest errors", rep.Errors)
				}
				ops += float64(rep.Ops)
				seconds += rep.Duration.Seconds()
			}
			if seconds > 0 {
				b.ReportMetric(ops/seconds, "ops/s")
			}
		})
	}
}

// BenchmarkParallelADPaR times the warm index with the parallel outer sweep
// forced to GOMAXPROCS workers at the Figure-18c points. On a single-CPU
// host this quantifies the coordination overhead rather than a speedup.
func BenchmarkParallelADPaR(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	for _, k := range []int{10, 50, 250} {
		rng := rand.New(rand.NewSource(int64(k)))
		set, d := adparInstance(rng, 10000, k)
		ix, err := adpar.NewIndex(set)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("k="+strconv.Itoa(k)+"/workers="+strconv.Itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ix.SolveParallel(d, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
