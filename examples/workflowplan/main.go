// Workflow planning: Section 2.1 observes that Turkomatic-style workflows
// with x tasks admit v^x composite strategies (1,073,741,824 for ten tasks
// and eight combinations) and that "such tools would certainly benefit from
// strategy recommendation". This example plans a four-stage document
// pipeline — outline, draft, translate, proofread — choosing a deployment
// strategy per stage to maximize end-to-end quality under cost and latency
// budgets, then lists the top-3 alternatives and the Pareto frontier of
// ADPaR alternatives for an over-constrained request.
//
//	go run ./examples/workflowplan
package main

import (
	"fmt"
	"log"

	"stratrec/internal/adpar"
	"stratrec/internal/strategy"
	"stratrec/internal/workflow"
)

func dims(st strategy.Structure, org strategy.Organization, sty strategy.Style) strategy.Dimensions {
	return strategy.Dimensions{Structure: st, Organization: org, Style: sty}
}

func opt(d strategy.Dimensions, q, c, l float64) workflow.Option {
	return workflow.Option{Dims: d, Params: strategy.Params{Quality: q, Cost: c, Latency: l}}
}

func main() {
	// Per-stage option menus (cost in dollars, latency in hours, quality
	// in [0,1]), estimated from the platform's fitted models.
	stages := []workflow.Stage{
		{Name: "outline", Options: []workflow.Option{
			opt(dims(strategy.Simultaneous, strategy.Collaborative, strategy.CrowdOnly), 0.90, 4, 3),
			opt(dims(strategy.Sequential, strategy.Independent, strategy.CrowdOnly), 0.95, 6, 6),
		}},
		{Name: "draft", Options: []workflow.Option{
			opt(dims(strategy.Sequential, strategy.Independent, strategy.CrowdOnly), 0.93, 10, 12),
			opt(dims(strategy.Simultaneous, strategy.Independent, strategy.CrowdOnly), 0.88, 8, 6),
			opt(dims(strategy.Simultaneous, strategy.Collaborative, strategy.CrowdOnly), 0.82, 6, 5),
		}},
		{Name: "translate", Options: []workflow.Option{
			opt(dims(strategy.Simultaneous, strategy.Independent, strategy.Hybrid), 0.90, 7, 5),
			opt(dims(strategy.Simultaneous, strategy.Independent, strategy.CrowdOnly), 0.94, 12, 9),
			opt(dims(strategy.Sequential, strategy.Independent, strategy.Hybrid), 0.96, 14, 14),
		}},
		{Name: "proofread", Options: []workflow.Option{
			opt(dims(strategy.Sequential, strategy.Independent, strategy.CrowdOnly), 0.97, 5, 6),
			opt(dims(strategy.Simultaneous, strategy.Collaborative, strategy.CrowdOnly), 0.90, 3, 2),
		}},
	}
	fmt.Printf("strategy space: %.0f composite plans over %d stages\n\n",
		workflow.SpaceSize(stages), len(stages))

	request := workflow.Request{MinQuality: 0.60, MaxCost: 30, MaxLatency: 26}
	best, err := workflow.Best(stages, request)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best plan under cost<=%.0f latency<=%.0f: quality %.3f, cost %.0f, latency %.0f\n",
		request.MaxCost, request.MaxLatency, best.Quality, best.Cost, best.Latency)
	for i, d := range best.Dims(stages) {
		fmt.Printf("  %-10s %v\n", stages[i].Name, d)
	}

	plans, err := workflow.TopK(stages, request, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-3 alternatives:")
	for _, p := range plans {
		fmt.Printf("  quality %.3f  cost %4.0f  latency %4.0f  %v\n",
			p.Quality, p.Cost, p.Latency, p.Dims(stages))
	}

	// If even the relaxed workflow budgets cannot host the requester's
	// single-task thresholds, ADPaR's frontier shows every Pareto trade-off.
	catalog := strategy.PaperExampleStrategies()
	tight := strategy.Request{
		ID:     "tight",
		Params: strategy.Params{Quality: 0.85, Cost: 0.2, Latency: 0.2},
		K:      2,
	}
	frontier, err := adpar.Frontier(catalog, tight)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nADPaR Pareto frontier for the single-task request (q>=%.2f c<=%.2f l<=%.2f, k=%d):\n",
		tight.Quality, tight.Cost, tight.Latency, tight.K)
	for _, sol := range frontier {
		fmt.Printf("  q>=%.2f c<=%.2f l<=%.2f  distance %.3f  covers %d\n",
			sol.Alternative.Quality, sol.Alternative.Cost, sol.Alternative.Latency,
			sol.Distance, len(sol.Covered))
	}
}
