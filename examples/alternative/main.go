// Alternative parameters: a requester asks for more than the strategy
// catalog can deliver — high quality, tiny budget, tight deadline — and
// ADPaR (Section 4) answers with the closest thresholds for which k
// strategies do exist. The example compares ADPaR-Exact against the
// exponential brute force and the two baselines of Section 5.2.1 on the
// same instance.
//
//	go run ./examples/alternative
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stratrec/internal/adpar"
	"stratrec/internal/strategy"
	"stratrec/internal/synth"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A catalog of 24 strategies (small enough for the brute force).
	gen := synth.DefaultConfig(synth.Normal)
	catalog := gen.Strategies(rng, 24)

	// An over-ambitious request: 85% quality at a fifth of the budget and
	// a fifth of the window, with k = 4 recommendations.
	request := strategy.Request{
		ID:     "ambitious",
		Params: strategy.Params{Quality: 0.85, Cost: 0.20, Latency: 0.20},
		K:      4,
	}
	if got := catalog.Satisfying(request); len(got) < request.K {
		fmt.Printf("request satisfied by only %d strategies, needs k=%d -> ADPaR\n\n",
			len(got), request.K)
	}

	solvers := []struct {
		name  string
		solve func(strategy.Set, strategy.Request) (adpar.Solution, error)
	}{
		{"ADPaR-Exact (sweep-line)", adpar.Exact},
		{"ADPaRB (brute force)", adpar.BruteForceK},
		{"Baseline2 (one dim at a time)", adpar.Baseline2},
		{"Baseline3 (R-tree MBB)", adpar.Baseline3},
	}
	fmt.Printf("%-30s %-38s %s\n", "solver", "alternative (q>=, c<=, l<=)", "distance")
	for _, s := range solvers {
		sol, err := s.solve(catalog, request)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		a := sol.Alternative
		fmt.Printf("%-30s (%.3f, %.3f, %.3f) covers %2d    %.4f\n",
			s.name, a.Quality, a.Cost, a.Latency, len(sol.Covered), sol.Distance)
	}

	// Show what the exact alternative actually buys.
	sol, err := adpar.Exact(catalog, request)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nADPaR-Exact recommends relaxing to quality>=%.3f, cost<=%.3f, latency<=%.3f;\n",
		sol.Alternative.Quality, sol.Alternative.Cost, sol.Alternative.Latency)
	fmt.Println("the k strategies available there:")
	for _, id := range sol.Strategies(request.K) {
		s := catalog[id]
		fmt.Printf("  %v: quality %.3f, cost %.3f, latency %.3f\n",
			s.Dims, s.Quality, s.Cost, s.Latency)
	}

	// The walked-through example of the paper (Section 2.3, d1).
	fmt.Println("\npaper example: d1 = (0.4, 0.17, 0.28), k=3 over Table 1")
	paper, err := adpar.Exact(strategy.PaperExampleStrategies(), strategy.PaperExampleRequests()[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alternative = (%.2f, %.2f, %.2f), distance %.2f  — matches the paper\n",
		paper.Alternative.Quality, paper.Alternative.Cost, paper.Alternative.Latency, paper.Distance)
}
