// Quickstart: run StratRec on the paper's running example (Table 1).
//
// Three requesters submit sentence-translation deployment requests with
// quality/cost/latency thresholds; the platform knows four deployment
// strategies and expects 80% of its suitable workforce to be available.
// StratRec serves d3 with {s2, s3, s4} and hands d1 and d2 alternative
// parameters computed by ADPaR.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stratrec/internal/availability"
	"stratrec/internal/batch"
	"stratrec/internal/core"
	"stratrec/internal/linmodel"
	"stratrec/internal/strategy"
	"stratrec/internal/workforce"
)

func main() {
	// The platform's strategy catalog (Table 1): SIM-COL-CRO, SEQ-IND-CRO,
	// SIM-IND-CRO, SIM-IND-HYB with their estimated parameters at W = 0.8.
	strategies := strategy.PaperExampleStrategies()

	// Per-strategy linear models p = alpha*w + beta (Section 3.1),
	// anchored so the Table 1 parameters hold at W = 0.8: quality improves
	// with availability, cost and latency fall.
	models := make(workforce.PerStrategyModels, len(strategies))
	for i, s := range strategies {
		qAlpha := s.Quality * 0.4
		models[i] = linmodel.ParamModels{
			Quality: linmodel.Model{Alpha: qAlpha, Beta: s.Quality - qAlpha*0.8},
			Cost:    linmodel.Model{Alpha: -0.1, Beta: s.Cost + 0.1*0.8},
			Latency: linmodel.Model{Alpha: -0.3, Beta: s.Latency + 0.3*0.8},
		}
	}

	// Worker availability (Section 2.2): 50% chance of 700 and 50% chance
	// of 900 of the 1000 suitable workers -> W = 0.8 in expectation.
	pdf, err := availability.NewPDF([]availability.Outcome{
		{Proportion: 0.7, Prob: 0.5},
		{Proportion: 0.9, Prob: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}

	sr, err := core.New(strategies, models, core.Config{
		Objective: batch.Throughput,
		Mode:      workforce.MaxCase,
	})
	if err != nil {
		log.Fatal(err)
	}

	requests := strategy.PaperExampleRequests()
	report, err := sr.RecommendPDF(requests, pdf)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("expected worker availability W = %.2f\n\n", pdf.Expected())
	fmt.Printf("satisfied requests (%d):\n", len(report.Satisfied))
	for _, rec := range report.Satisfied {
		fmt.Printf("  %s -> strategies", requests[rec.Request].ID)
		for _, id := range rec.Strategies {
			fmt.Printf(" %s", strategies[id].Name)
		}
		fmt.Printf(" (workforce %.2f)\n", rec.Workforce)
	}

	fmt.Printf("\nunsatisfied requests with ADPaR alternatives (%d):\n", len(report.Alternatives))
	for _, alt := range report.Alternatives {
		d := requests[alt.Request]
		fmt.Printf("  %s (wanted q>=%.2f c<=%.2f l<=%.2f): %s\n",
			d.ID, d.Quality, d.Cost, d.Latency, alt.Reason)
		if alt.HasSolution {
			a := alt.Solution.Alternative
			fmt.Printf("     try q>=%.2f c<=%.2f l<=%.2f (distance %.3f) -> strategies",
				a.Quality, a.Cost, a.Latency, alt.Solution.Distance)
			for _, id := range alt.Solution.Strategies(d.K) {
				fmt.Printf(" %s", strategies[id].Name)
			}
			fmt.Println()
		}
	}
}
