// Full marketplace loop: the Section 5.1 methodology end to end on the
// simulated AMT marketplace —
//
//  1. estimate worker availability from repeated probe deployments in each
//     weekly window (Figure 11),
//
//  2. fit the linear parameter models from observed deployments (Table 6),
//
//  3. build a strategy catalog from the fitted models and ask StratRec for
//     a recommendation,
//
//  4. deploy mirrored HITs with and without the recommendation and compare
//     quality, latency and edit counts (Figure 13).
//
//     go run ./examples/marketplace
package main

import (
	"fmt"
	"log"

	"stratrec/internal/batch"
	"stratrec/internal/core"
	"stratrec/internal/crowd"
	"stratrec/internal/linmodel"
	"stratrec/internal/linreg"
	"stratrec/internal/stats"
	"stratrec/internal/strategy"
	"stratrec/internal/workforce"
)

func main() {
	market := crowd.NewMarketplace(crowd.Config{
		PoolSize:       1200,
		WindowActivity: [3]float64{0.62, 0.85, 0.58},
		ActivityJitter: 0.15,
	}, 42)
	task := crowd.SentenceTranslation
	seqInd := strategy.Dimensions{Structure: strategy.Sequential, Organization: strategy.Independent, Style: strategy.CrowdOnly}
	simCol := strategy.Dimensions{Structure: strategy.Simultaneous, Organization: strategy.Collaborative, Style: strategy.CrowdOnly}

	// 1. Availability estimation (Figure 11).
	fmt.Println("step 1: estimating worker availability per deployment window")
	pdfs, err := market.EstimateAvailability(task, seqInd, 10, 5)
	if err != nil {
		log.Fatal(err)
	}
	W := 0.0
	for i, pdf := range pdfs {
		fmt.Printf("  %s: W = %.2f\n", crowd.StandardWindows()[i].Name, pdf.Expected())
		W += pdf.Expected()
	}
	W /= float64(len(pdfs))
	fmt.Printf("  pooled W = %.2f\n\n", W)

	// 2. Model fitting from observed deployments (Table 6).
	fmt.Println("step 2: fitting linear parameter models from observed deployments")
	fitted := map[strategy.Dimensions]linmodel.ParamModels{}
	for _, dims := range []strategy.Dimensions{seqInd, simCol} {
		var avail, quality, cost, latency []float64
		for _, win := range crowd.StandardWindows() {
			for i := 0; i < 30; i++ {
				out, err := market.Deploy(crowd.HIT{
					Task: task, Dims: dims, Window: win,
					MaxWorkers: 10, PayPerWorker: 2, Guided: true,
				})
				if err != nil || out.WorkersRecruited == 0 {
					continue
				}
				avail = append(avail, out.Availability)
				quality = append(quality, out.Quality)
				cost = append(cost, out.Cost)
				latency = append(latency, out.Latency)
			}
		}
		qf, err := linreg.OLS(avail, quality)
		if err != nil {
			log.Fatal(err)
		}
		cf, err := linreg.OLS(avail, cost)
		if err != nil {
			log.Fatal(err)
		}
		lf, err := linreg.OLS(avail, latency)
		if err != nil {
			log.Fatal(err)
		}
		fitted[dims] = linmodel.ParamModels{
			Quality: linmodel.Model{Alpha: qf.Alpha, Beta: qf.Beta},
			Cost:    linmodel.Model{Alpha: cf.Alpha, Beta: cf.Beta},
			Latency: linmodel.Model{Alpha: lf.Alpha, Beta: lf.Beta},
		}
		fmt.Printf("  %v: quality=(%.2f, %.2f) cost=(%.2f, %.2f) latency=(%.2f, %.2f), quality R2=%.2f\n",
			dims, qf.Alpha, qf.Beta, cf.Alpha, cf.Beta, lf.Alpha, lf.Beta, qf.R2)
	}
	fmt.Println()

	// 3. Recommendation from the fitted models.
	fmt.Println("step 3: asking StratRec for a deployment recommendation")
	var catalog strategy.Set
	var models workforce.PerStrategyModels
	for dims, pm := range fitted {
		catalog = append(catalog, strategy.Strategy{
			ID: len(catalog), Name: dims.String(), Dims: dims, Params: pm.ParamsAt(W),
		})
		models = append(models, pm)
	}
	catalog = catalog.Renumber()
	sr, err := core.New(catalog, models, core.Config{Objective: batch.Throughput, Mode: workforce.MaxCase})
	if err != nil {
		log.Fatal(err)
	}
	request := strategy.Request{
		ID:     "translation-batch",
		Params: strategy.Params{Quality: 0.70, Cost: 1.0, Latency: 1.0},
		K:      1,
	}
	report, err := sr.Recommend([]strategy.Request{request}, W)
	if err != nil {
		log.Fatal(err)
	}
	recommended := seqInd
	if len(report.Satisfied) > 0 {
		recommended = catalog[report.Satisfied[0].Strategies[0]].Dims
		fmt.Printf("  recommended strategy: %v\n\n", recommended)
	} else {
		fmt.Println("  request unsatisfiable; deploying the fallback strategy")
	}

	// 4. Mirrored deployments (Figure 13).
	fmt.Println("step 4: mirrored deployments, with vs without the recommendation")
	var gq, uq, ge, ue []float64
	wins := crowd.StandardWindows()
	for i := 0; i < 10; i++ {
		win := wins[i%len(wins)]
		guided, err := market.Deploy(crowd.HIT{
			Task: task, Dims: recommended, Window: win,
			MaxWorkers: 7, PayPerWorker: 2, Guided: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		unguided, err := market.Deploy(crowd.HIT{
			Task: task, Dims: simCol, Window: win,
			MaxWorkers: 7, PayPerWorker: 2, Guided: false,
		})
		if err != nil {
			log.Fatal(err)
		}
		gq, ge = append(gq, guided.Quality), append(ge, guided.AvgEdits)
		uq, ue = append(uq, unguided.Quality), append(ue, unguided.AvgEdits)
	}
	qt, err := stats.WelchTTest(gq, uq)
	if err != nil {
		log.Fatal(err)
	}
	et, err := stats.WelchTTest(ge, ue)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  quality:   StratRec %.1f%% vs unguided %.1f%% (p = %.4f)\n",
		qt.MeanA*100, qt.MeanB*100, qt.P)
	fmt.Printf("  avg edits: StratRec %.2f vs unguided %.2f (p = %.4f) — the edit war\n",
		et.MeanA, et.MeanB, et.P)
}
