// Batch triage: a platform receives a burst of deployment requests that
// together need more workforce than is available, and must decide which to
// serve. This example contrasts the two platform-centric objectives of
// Section 3.3 — throughput (serve as many requesters as possible) and
// pay-off (maximize the platform's revenue) — and the two aggregation
// semantics of Section 3.2 (sum-case vs max-case).
//
//	go run ./examples/batchdeploy
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stratrec/internal/batch"
	"stratrec/internal/core"
	"stratrec/internal/synth"
	"stratrec/internal/workforce"
)

func main() {
	rng := rand.New(rand.NewSource(2020))

	// A synthetic marketplace snapshot: 500 strategies with fitted
	// availability-response models and 20 competing deployment requests,
	// each asking for k = 5 strategy recommendations.
	gen := synth.DefaultConfig(synth.Uniform)
	inst := gen.Instance(rng, 500, 20, 5)
	const W = 0.35 // scarce workforce: not everyone can be served

	fmt.Printf("batch: %d requests, %d strategies, W = %.2f, k = 5\n\n",
		len(inst.Requests), len(inst.Strategies), W)

	for _, objective := range []batch.Objective{batch.Throughput, batch.Payoff} {
		for _, mode := range []workforce.Mode{workforce.MaxCase, workforce.SumCase} {
			sr, err := core.New(inst.Strategies, inst.Models, core.Config{
				Objective:        objective,
				Mode:             mode,
				SkipAlternatives: true, // triage view: alternatives shown in the ADPaR example
			})
			if err != nil {
				log.Fatal(err)
			}
			report, err := sr.Recommend(inst.Requests, W)
			if err != nil {
				log.Fatal(err)
			}
			payoff := 0.0
			for _, rec := range report.Satisfied {
				payoff += inst.Requests[rec.Request].Cost
			}
			fmt.Printf("%-10s / %s-case: served %2d of %d, objective %.3f, pay-off %.3f, workforce used %.3f\n",
				objective, mode, len(report.Satisfied), len(inst.Requests),
				report.Objective, payoff, report.WorkforceUsed)
		}
	}

	// Drill into the throughput/max-case plan: who got served and why.
	sr, err := core.New(inst.Strategies, inst.Models, core.Config{
		Objective:        batch.Throughput,
		Mode:             workforce.MaxCase,
		SkipAlternatives: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := sr.Recommend(inst.Requests, W)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthroughput/max-case plan in detail:\n")
	for _, rec := range report.Satisfied {
		d := inst.Requests[rec.Request]
		fmt.Printf("  %-4s (q>=%.2f c<=%.2f l<=%.2f) workforce %.3f, strategies %v\n",
			d.ID, d.Quality, d.Cost, d.Latency, rec.Workforce, rec.Strategies)
	}
	unsatisfied := 0
	for _, alt := range report.Alternatives {
		if alt.Reason != "" {
			unsatisfied++
		}
	}
	fmt.Printf("  (%d requests left for ADPaR — see examples/alternative)\n", unsatisfied)
}
