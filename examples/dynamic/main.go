// Dynamic deployment: the paper's conclusion poses the "fully dynamic
// stream-like setting of incoming deployment requests, where the
// deployment requests could be revoked" as an open problem. This example
// drives the stream.Manager extension through a day of platform life —
// submissions, revocations and availability drift — and also shows the
// composite multi-goal objective (throughput + pay-off + worker welfare)
// from the same future-work list.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stratrec/internal/batch"
	"stratrec/internal/stream"
	"stratrec/internal/synth"
	"stratrec/internal/workforce"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	gen := synth.DefaultConfig(synth.Uniform)
	catalog := gen.Strategies(rng, 200)
	models := gen.Models(rng, catalog)

	mgr, err := stream.NewManager(catalog, models, workforce.MaxCase, batch.Throughput, 0.4)
	if err != nil {
		log.Fatal(err)
	}

	show := func(when string) {
		plan := mgr.Plan()
		fmt.Printf("%-28s serving %v, displaced %v (W=%.2f, epoch %d)\n",
			when, plan.Serving, plan.Displaced, mgr.Availability(), mgr.Epoch())
	}

	// Morning: requests trickle in.
	fmt.Println("-- morning: submissions --")
	for i := 1; i <= 6; i++ {
		d := gen.Requests(rng, 1, 3)[0]
		d.ID = fmt.Sprintf("r%d", i)
		served, err := mgr.Submit(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submit %-3s (q>=%.2f c<=%.2f l<=%.2f) -> served=%v\n",
			d.ID, d.Quality, d.Cost, d.Latency, served)
	}
	show("after submissions:")

	// Midday: the weekend approaches and workers leave.
	fmt.Println("\n-- midday: availability drops to 0.15 --")
	if err := mgr.SetAvailability(0.15); err != nil {
		log.Fatal(err)
	}
	show("after the drought:")

	// A requester gives up and revokes; capacity is redistributed.
	fmt.Println("\n-- a served requester revokes --")
	plan := mgr.Plan()
	if len(plan.Serving) > 0 {
		victim := plan.Serving[0]
		if err := mgr.Revoke(victim); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("revoked %s\n", victim)
	}
	show("after the revocation:")

	// Evening: workers return.
	fmt.Println("\n-- evening: availability recovers to 0.8 --")
	if err := mgr.SetAvailability(0.8); err != nil {
		log.Fatal(err)
	}
	show("after the recovery:")
	if len(mgr.Plan().Serving) > 0 {
		id := mgr.Plan().Serving[0]
		fmt.Printf("strategies recommended to %s: %v\n", id, mgr.Strategies(id))
	}

	// Composite objective (future work: "combine multiple goals inside the
	// same optimization function"): triage the same pool under a blend of
	// throughput, pay-off and worker welfare.
	fmt.Println("\n-- composite objective over a fresh batch --")
	requests := gen.Requests(rng, 12, 3)
	reqs := make([]workforce.Requirement, len(requests))
	for i, d := range requests {
		reqs[i] = workforce.RequirementFor(d, uint64(i), catalog, models, workforce.MaxCase)
	}
	for _, blend := range []struct {
		name    string
		weights []float64
	}{
		{"pure throughput", []float64{1, 0, 0}},
		{"pure pay-off", []float64{0, 1, 0}},
		{"balanced", []float64{0.4, 0.4, 0.2}},
	} {
		goal, err := batch.NewWeightedGoal(
			[]batch.Goal{batch.ThroughputGoal{}, batch.PayoffGoal{}, batch.WorkerWelfareGoal{}},
			blend.weights,
		)
		if err != nil {
			log.Fatal(err)
		}
		items := batch.CompositeItems(requests, reqs, goal)
		res := batch.BatchStrat(items, 0.4)
		served := make([]string, 0, len(res.Selected))
		for _, idx := range res.Selected {
			served = append(served, requests[idx].ID)
		}
		fmt.Printf("%-16s objective %.3f, serving %v\n", blend.name, res.Objective, served)
	}
}
