// Command crowdsim drives the simulated AMT marketplace (the DESIGN.md
// substitution for the paper's real deployments): it runs repeated HIT
// deployments across the three weekly windows, writes the observation log
// as a store.History JSON file, and optionally fits the Section 3.1 linear
// models from that log — the full data pipeline a platform operator would
// run before wiring StratRec up.
//
// Usage:
//
//	crowdsim -out history.json              # simulate and dump the log
//	crowdsim -out history.json -fit         # also fit and print models
//	crowdsim -task creation -deploys 60     # text creation, more data
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"stratrec/internal/crowd"
	"stratrec/internal/store"
	"stratrec/internal/strategy"
)

func main() {
	var (
		out     = flag.String("out", "", "write the observation log to this JSON file (empty: stdout)")
		taskStr = flag.String("task", "translation", "task type: translation or creation")
		deploys = flag.Int("deploys", 40, "deployments per strategy per window")
		workers = flag.Int("workers", 10, "worker cap per HIT")
		seed    = flag.Int64("seed", 2020, "marketplace seed")
		fit     = flag.Bool("fit", false, "fit linear models from the log and print them")
	)
	flag.Parse()
	if err := run(*out, *taskStr, *deploys, *workers, *seed, *fit); err != nil {
		fmt.Fprintln(os.Stderr, "crowdsim:", err)
		os.Exit(1)
	}
}

func run(out, taskStr string, deploys, workers int, seed int64, fit bool) error {
	var task crowd.TaskType
	switch taskStr {
	case "translation":
		task = crowd.SentenceTranslation
	case "creation":
		task = crowd.TextCreation
	default:
		return fmt.Errorf("unknown task %q", taskStr)
	}
	if deploys < 1 || workers < 1 {
		return fmt.Errorf("deploys and workers must be positive")
	}

	m := crowd.NewMarketplace(crowd.Config{
		PoolSize:       1200,
		WindowActivity: [3]float64{0.60, 0.95, 0.75},
		ActivityJitter: 0.15,
	}, seed)

	strategies := []strategy.Dimensions{
		{Structure: strategy.Sequential, Organization: strategy.Independent, Style: strategy.CrowdOnly},
		{Structure: strategy.Simultaneous, Organization: strategy.Collaborative, Style: strategy.CrowdOnly},
	}
	var history store.History
	for _, dims := range strategies {
		for _, win := range crowd.StandardWindows() {
			for i := 0; i < deploys; i++ {
				outcome, err := m.Deploy(crowd.HIT{
					Task: task, Dims: dims, Window: win,
					MaxWorkers: workers, PayPerWorker: 2, Guided: true,
				})
				if err != nil {
					return err
				}
				if outcome.WorkersRecruited == 0 {
					continue
				}
				history.Observations = append(history.Observations, store.Observation{
					Strategy:     dims.String(),
					Window:       win.Name,
					Availability: outcome.Availability,
					Quality:      outcome.Quality,
					Cost:         outcome.Cost,
					Latency:      outcome.Latency,
				})
			}
		}
	}

	if out == "" {
		if err := store.Write(os.Stdout, history); err != nil {
			return err
		}
	} else {
		if err := store.Save(out, history); err != nil {
			return err
		}
		fmt.Printf("wrote %d observations to %s\n", len(history.Observations), out)
	}

	if fit {
		fits, err := history.FitModels(10)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(fits))
		for name := range fits {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("\nfitted models (alpha, beta):")
		for _, name := range names {
			pm := fits[name]
			fmt.Printf("  %-12s quality=(%.2f, %.2f) cost=(%.2f, %.2f) latency=(%.2f, %.2f)\n",
				name, pm.Quality.Alpha, pm.Quality.Beta,
				pm.Cost.Alpha, pm.Cost.Beta, pm.Latency.Alpha, pm.Latency.Beta)
		}
	}
	return nil
}
