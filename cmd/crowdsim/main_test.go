package main

import (
	"path/filepath"
	"testing"

	"stratrec/internal/store"
)

func TestRunWritesLoadableHistory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.json")
	if err := run(path, "translation", 5, 10, 7, false); err != nil {
		t.Fatal(err)
	}
	h, err := store.LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Observations) == 0 {
		t.Fatal("no observations written")
	}
	for _, o := range h.Observations {
		if o.Availability < 0 || o.Availability > 1 {
			t.Errorf("availability = %v", o.Availability)
		}
		if o.Strategy != "SEQ-IND-CRO" && o.Strategy != "SIM-COL-CRO" {
			t.Errorf("strategy = %q", o.Strategy)
		}
	}
	// The written log round-trips through model fitting.
	fits, err := h.FitModels(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 2 {
		t.Errorf("fitted %d strategies", len(fits))
	}
	for name, pm := range fits {
		if pm.Latency.Alpha >= 0 {
			t.Errorf("%s: latency slope %v should be negative", name, pm.Latency.Alpha)
		}
	}
}

func TestRunCreationTaskAndFit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.json")
	if err := run(path, "creation", 12, 10, 9, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "bogus", 5, 10, 1, false); err == nil {
		t.Error("bogus task accepted")
	}
	if err := run("", "translation", 0, 10, 1, false); err == nil {
		t.Error("zero deploys accepted")
	}
	if err := run("/nonexistent/dir/x.json", "translation", 2, 10, 1, false); err == nil {
		t.Error("unwritable path accepted")
	}
}
