package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestRunPaperExample(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", "throughput", "max", -1, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only d3 is satisfied, served s2/s3/s4; d1 and d2 get alternatives.
	if !strings.Contains(out, "Satisfied (1)") {
		t.Errorf("output missing satisfied count:\n%s", out)
	}
	for _, want := range []string{"d3", "s2", "s3", "s4", "Unsatisfied (2)", "alternative"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// d1's ADPaR answer matches the Section 2.3 example.
	if !strings.Contains(out, "cost<=0.50") {
		t.Errorf("d1 alternative cost missing:\n%s", out)
	}
}

func TestRunFromFile(t *testing.T) {
	out, err := capture(t, func() error {
		return run("testdata/batch.json", "payoff", "sum", -1, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "objective = payoff") || !strings.Contains(out, "mode = sum") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "d3") {
		t.Errorf("d3 missing:\n%s", out)
	}
}

func TestRunWorkforceOverride(t *testing.T) {
	// With W = 0 nothing can be served; every request goes to ADPaR.
	out, err := capture(t, func() error {
		return run("", "throughput", "max", 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Satisfied (0)") || !strings.Contains(out, "Unsatisfied (3)") {
		t.Errorf("W=0 should satisfy nothing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "bogus", "max", -1, 0); err == nil {
		t.Error("bogus objective accepted")
	}
	if err := run("", "throughput", "bogus", -1, 0); err == nil {
		t.Error("bogus mode accepted")
	}
	if err := run("/nonexistent.json", "throughput", "max", -1, 0); err == nil {
		t.Error("missing input accepted")
	}
}
