package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stratrec/internal/conformance"
)

// TestConformClean: a small seeded conformance run completes with zero
// divergences through the CLI entry point.
func TestConformClean(t *testing.T) {
	out, err := capture(t, func() error {
		return runConform([]string{"-seed", "1", "-events", "800", "-quiet"})
	})
	if err != nil {
		t.Fatalf("conform: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 divergences") {
		t.Errorf("output missing divergence summary:\n%s", out)
	}
}

// TestConformProfilesAndReplay: generation writes a trace artifact with
// -out, and -replay runs the identical scenario from it.
func TestConformProfilesAndReplay(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	out, err := capture(t, func() error {
		return runConform([]string{
			"-seed", "9", "-events", "300", "-profile", "bursty",
			"-out", trace, "-quiet",
		})
	})
	if err != nil {
		t.Fatalf("conform bursty: %v\n%s", err, out)
	}
	out, err = capture(t, func() error {
		return runConform([]string{"-replay", trace, "-quiet"})
	})
	if err != nil {
		t.Fatalf("conform replay: %v\n%s", err, out)
	}
	if !strings.Contains(out, "replaying") || !strings.Contains(out, "0 divergences") {
		t.Errorf("replay output unexpected:\n%s", out)
	}
}

// TestConformRejectsBadFlags: oracle limits and unknown profiles fail fast
// instead of running an uncheckable scenario.
func TestConformRejectsBadFlags(t *testing.T) {
	if _, err := capture(t, func() error {
		return runConform([]string{"-strategies", "40"})
	}); err == nil {
		t.Error("strategies above the brute-force bound accepted")
	}
	if _, err := capture(t, func() error {
		return runConform([]string{"-replay", filepath.Join(t.TempDir(), "missing.json")})
	}); err == nil {
		t.Error("missing replay file accepted")
	}
	if _, err := capture(t, func() error {
		return runConform([]string{"-events", "10", "-profile", "revokestorm"})
	}); err == nil {
		t.Error("typo'd profile accepted instead of failing fast")
	}
}

// TestServeSelftestWorkloadExportReplay: the selftest exports its
// generated workload as a synth trace, and a second selftest replays that
// exact file deterministically — both with zero errors.
func TestServeSelftestWorkloadExportReplay(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "workload.json")
	out, err := capture(t, func() error {
		return runServe([]string{
			"-selftest",
			"-selftest-requests", "200",
			"-selftest-workers", "2",
			"-demo-tenants", "1",
			"-demo-strategies", "16",
			"-selftest-export-workload", trace,
		})
	})
	if err != nil {
		t.Fatalf("selftest export: %v\n%s", err, out)
	}
	if !strings.Contains(out, "workload trace written") || !strings.Contains(out, "0 errors") {
		t.Errorf("export output unexpected:\n%s", out)
	}
	out, err = capture(t, func() error {
		return runServe([]string{
			"-selftest",
			"-demo-tenants", "1",
			"-demo-strategies", "16",
			"-selftest-workload", trace,
		})
	})
	if err != nil {
		t.Fatalf("selftest replay: %v\n%s", err, out)
	}
	if !strings.Contains(out, "pre-built worker sequences") || !strings.Contains(out, "0 errors") {
		t.Errorf("replay output unexpected:\n%s", out)
	}
}

// TestConformArtifactRoundTrip: an artifact written by the trace writer is
// readable by the replay path (the two halves of the failure workflow).
func TestConformArtifactRoundTrip(t *testing.T) {
	tr, err := conformance.Generate(conformance.GenConfig{Seed: 2, Events: 50})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := writeTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := conformance.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("artifact changed length: %d -> %d", len(tr.Events), len(got.Events))
	}
}
