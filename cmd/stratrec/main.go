// Command stratrec runs the StratRec middle layer over a batch of
// deployment requests: it recommends k strategies for every satisfiable
// request and alternative deployment parameters (via ADPaR) for the rest.
// The serve subcommand hosts the same engine as a long-running
// multi-tenant HTTP service (see internal/server).
//
// Usage:
//
//	stratrec [flags]                 # run the paper's running example
//	stratrec -input batch.json       # run a batch from a JSON file
//	stratrec serve [flags]           # multi-tenant HTTP server
//	stratrec serve -data-dir d       # durable server: WAL + checkpoints, crash recovery
//	stratrec serve -selftest         # serve + replay a synthetic load, print p50/p99
//	stratrec conform [flags]         # end-to-end differential conformance harness
//	stratrec conform -replay f.json  # replay a minimized failure trace
//	stratrec conform -profile crash-recovery  # kill/restart differential oracle
//	stratrec recover -data-dir d     # inspect a durability dir; -verify replays it
//	stratrec admin tenant create|drain|status  # runtime tenant admin on a live server
//
// The input file format:
//
//	{
//	  "workforce": 0.8,
//	  "strategies": [
//	    {"name": "s1", "quality": 0.5, "cost": 0.25, "latency": 0.28,
//	     "models": {"quality": {"alpha": 0.2, "beta": 0.34}, ...}},
//	    ...
//	  ],
//	  "requests": [
//	    {"id": "d1", "quality": 0.4, "cost": 0.17, "latency": 0.28, "k": 3},
//	    ...
//	  ]
//	}
//
// Strategies without explicit models get linear models anchored at their
// parameters for the given workforce (the Section 3.1 default).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"stratrec/internal/batch"
	"stratrec/internal/core"
	"stratrec/internal/linmodel"
	"stratrec/internal/strategy"
	"stratrec/internal/workforce"
)

type inputStrategy struct {
	Name    string  `json:"name"`
	Quality float64 `json:"quality"`
	Cost    float64 `json:"cost"`
	Latency float64 `json:"latency"`
	Models  *struct {
		Quality linmodel.Model `json:"quality"`
		Cost    linmodel.Model `json:"cost"`
		Latency linmodel.Model `json:"latency"`
	} `json:"models,omitempty"`
}

type inputRequest struct {
	ID      string  `json:"id"`
	Quality float64 `json:"quality"`
	Cost    float64 `json:"cost"`
	Latency float64 `json:"latency"`
	K       int     `json:"k"`
}

type input struct {
	Workforce  float64         `json:"workforce"`
	Strategies []inputStrategy `json:"strategies"`
	Requests   []inputRequest  `json:"requests"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "stratrec serve:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "conform" {
		if err := runConform(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "stratrec conform:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "admin" {
		if err := runAdmin(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "stratrec admin:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "recover" {
		if err := runRecover(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "stratrec recover:", err)
			os.Exit(1)
		}
		return
	}
	var (
		inputPath = flag.String("input", "", "JSON batch file; empty runs the paper's running example")
		objective = flag.String("objective", "throughput", "platform goal: throughput or payoff")
		mode      = flag.String("mode", "max", "workforce aggregation: sum (deploy all k) or max (deploy one of k)")
		workF     = flag.Float64("workforce", -1, "override available workforce W in [0,1]")
		adparPar  = flag.Int("adpar-parallelism", 0, "ADPaR sweep workers: 0 auto (GOMAXPROCS), 1 sequential")
	)
	flag.Parse()

	if err := run(*inputPath, *objective, *mode, *workF, *adparPar); err != nil {
		fmt.Fprintln(os.Stderr, "stratrec:", err)
		os.Exit(1)
	}
}

func run(inputPath, objective, mode string, overrideW float64, adparParallelism int) error {
	var (
		set    strategy.Set
		models workforce.PerStrategyModels
		reqs   []strategy.Request
		W      float64
	)
	if inputPath == "" {
		set = strategy.PaperExampleStrategies()
		reqs = strategy.PaperExampleRequests()
		W = 0.8
		models = defaultModels(set, W)
		fmt.Println("(no -input given: running the paper's Table 1 example at W = 0.8)")
	} else {
		data, err := os.ReadFile(inputPath)
		if err != nil {
			return err
		}
		var in input
		if err := json.Unmarshal(data, &in); err != nil {
			return fmt.Errorf("parsing %s: %w", inputPath, err)
		}
		W = in.Workforce
		for i, s := range in.Strategies {
			set = append(set, strategy.Strategy{
				ID: i, Name: s.Name,
				Params: strategy.Params{Quality: s.Quality, Cost: s.Cost, Latency: s.Latency},
			})
		}
		models = make(workforce.PerStrategyModels, len(set))
		defaults := defaultModels(set, W)
		for i, s := range in.Strategies {
			if s.Models != nil {
				models[i] = linmodel.ParamModels{Quality: s.Models.Quality, Cost: s.Models.Cost, Latency: s.Models.Latency}
			} else {
				models[i] = defaults[i]
			}
		}
		for _, r := range in.Requests {
			reqs = append(reqs, strategy.Request{
				ID:     r.ID,
				Params: strategy.Params{Quality: r.Quality, Cost: r.Cost, Latency: r.Latency},
				K:      r.K,
			})
		}
	}
	if overrideW >= 0 {
		W = overrideW
	}

	cfg := core.Config{ADPaRParallelism: adparParallelism}
	switch objective {
	case "throughput":
		cfg.Objective = batch.Throughput
	case "payoff":
		cfg.Objective = batch.Payoff
	default:
		return fmt.Errorf("unknown objective %q", objective)
	}
	switch mode {
	case "sum":
		cfg.Mode = workforce.SumCase
	case "max":
		cfg.Mode = workforce.MaxCase
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	sr, err := core.New(set, models, cfg)
	if err != nil {
		return err
	}
	report, err := sr.Recommend(reqs, W)
	if err != nil {
		return err
	}

	fmt.Printf("\nBatch of %d requests, %d strategies, W = %.2f, objective = %s, mode = %s\n\n",
		len(reqs), len(set), W, objective, mode)
	fmt.Printf("Satisfied (%d), objective value %.3f, workforce used %.3f:\n",
		len(report.Satisfied), report.Objective, report.WorkforceUsed)
	for _, rec := range report.Satisfied {
		fmt.Printf("  %-4s workforce %.3f, strategies:", reqs[rec.Request].ID, rec.Workforce)
		for _, id := range rec.Strategies {
			fmt.Printf(" %s", name(set[id]))
		}
		fmt.Println()
	}
	fmt.Printf("\nUnsatisfied (%d), with ADPaR alternatives:\n", len(report.Alternatives))
	for _, alt := range report.Alternatives {
		fmt.Printf("  %-4s %s\n", reqs[alt.Request].ID, alt.Reason)
		if alt.HasSolution {
			a := alt.Solution.Alternative
			fmt.Printf("       alternative: quality>=%.2f cost<=%.2f latency<=%.2f (distance %.3f), strategies:",
				a.Quality, a.Cost, a.Latency, alt.Solution.Distance)
			for _, id := range alt.Solution.Strategies(reqs[alt.Request].K) {
				fmt.Printf(" %s", name(set[id]))
			}
			fmt.Println()
		}
	}
	return nil
}

// defaultModels anchors linear models at each strategy's parameters for the
// ambient workforce: quality grows toward the advertised value, cost and
// latency shrink toward it.
func defaultModels(set strategy.Set, W float64) workforce.PerStrategyModels {
	models := make(workforce.PerStrategyModels, len(set))
	for i, s := range set {
		models[i] = anchoredModels(s.Params, W)
	}
	return models
}

func name(s strategy.Strategy) string {
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("s%d", s.ID+1)
}
