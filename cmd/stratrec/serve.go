package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stratrec/internal/batch"
	"stratrec/internal/linmodel"
	"stratrec/internal/loadgen"
	"stratrec/internal/server"
	"stratrec/internal/store"
	"stratrec/internal/strategy"
	"stratrec/internal/synth"
	"stratrec/internal/workforce"
)

// runServe implements `stratrec serve`: a multi-tenant recommendation
// server over the catalogs of a tenants file (or synthetic demo tenants),
// plus a -selftest mode that replays a synthetic Poisson workload against
// the live server and prints throughput and latency percentiles.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		tenantsPath = fs.String("tenants", "", "multi-tenant catalog JSON ({\"tenants\": {name: catalog}}); empty hosts synthetic demo tenants")
		objective   = fs.String("objective", "throughput", "platform goal: throughput or payoff")
		mode        = fs.String("mode", "max", "workforce aggregation: sum or max")
		adparPar    = fs.Int("adpar-parallelism", 0, "ADPaR sweep workers: 0 auto (GOMAXPROCS), 1 sequential")
		coalesce    = fs.Int("coalesce", 0, "max queued mutations a tenant loop applies per replan cycle (0 = default 32, 1 = no coalescing)")
		opBuffer    = fs.Int("op-buffer", 0, "per-tenant mutation inbox capacity; beyond it new mutations are shed with 429 (0 = default 64)")
		adparWork   = fs.Int("adpar-workers", 0, "server-wide ADPaR alternative-query pool workers (0 = GOMAXPROCS)")
		adparQueue  = fs.Int("adpar-queue", 0, "alternative queries that may wait for a pool worker before shedding 429 (0 = 2x workers)")
		mutDeadline = fs.Duration("mutation-deadline", 0, "default mutation deadline when no X-Request-Deadline-Ms header is sent; 0 disables projected-wait shedding for headerless mutations")
		logFormat   = fs.String("log", "off", "structured operation log on stderr: json, text, or off")
		logLevel    = fs.String("log-level", "info", "structured log threshold: debug (per-op admit/apply/append/commit/publish), info (terminal reply/shed + lifecycle), warn (sheds only)")
		demoTenants = fs.Int("demo-tenants", 2, "synthetic tenant count when -tenants is empty")
		demoSize    = fs.Int("demo-strategies", 64, "strategies per synthetic tenant")
		seed        = fs.Int64("seed", 2020, "synthetic tenant / selftest workload seed")
		drain       = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")

		dataDir   = fs.String("data-dir", "", "durability root: per-tenant write-ahead log + checkpoints, recovered on startup; empty disables durability")
		syncEvery = fs.Int("wal-sync-every", 1, "fsync the WAL after every n-th record (1 = every acknowledged mutation is durable)")
		gcWindow  = fs.Duration("wal-group-commit-window", 0, "cross-tenant group commit: tenant loops share fsyncs within this window (e.g. 500us); 0 disables, >0 overrides -wal-sync-every")
		ckptEvery = fs.Int("checkpoint-every", 10000, "auto-checkpoint a tenant after n WAL records since the last checkpoint (0 = only via POST /admin/checkpoint)")

		selftest  = fs.Bool("selftest", false, "serve on an ephemeral port, replay a synthetic workload, print the report, exit")
		stEvents  = fs.Int("selftest-requests", 2000, "selftest: total workload events")
		stWorkers = fs.Int("selftest-workers", 8, "selftest: concurrent load workers")
		stRate    = fs.Float64("selftest-rate", 0, "selftest: per-worker Poisson arrival rate in events/s; 0 = closed loop")
		stBatch   = fs.Int("selftest-batch", 0, "selftest: batched ingest mode — group mutations into POST /ops bodies of up to this many ops (0 = per-op endpoints)")
		stExport  = fs.String("selftest-export-workload", "", "selftest: also write the generated workload as a JSON trace to this path")
		stReplay  = fs.String("selftest-workload", "", "selftest: replay a JSON workload trace (one worker) instead of generating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := buildServerConfig(catalogFlags{
		objective:   *objective,
		mode:        *mode,
		tenantsPath: *tenantsPath,
		demoTenants: *demoTenants,
		demoSize:    *demoSize,
		seed:        *seed,
		adparPar:    *adparPar,
	})
	if err != nil {
		return err
	}
	cfg.DataDir = *dataDir
	cfg.WALSyncEvery = *syncEvery
	cfg.WALGroupCommitWindow = *gcWindow
	cfg.CheckpointEvery = *ckptEvery
	cfg.ADPaRWorkers = *adparWork
	cfg.ADPaRQueue = *adparQueue
	cfg.MutationDeadline = *mutDeadline
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	cfg.Logger = logger
	for name, tc := range cfg.Tenants {
		tc.Coalesce = *coalesce
		tc.OpBuffer = *opBuffer
		cfg.Tenants[name] = tc
	}

	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	if *dataDir != "" {
		if *gcWindow > 0 {
			fmt.Printf("stratrec serve: durability on under %s (group commit window %v, checkpoint every %d)\n",
				*dataDir, *gcWindow, *ckptEvery)
		} else {
			fmt.Printf("stratrec serve: durability on under %s (sync every %d, checkpoint every %d)\n",
				*dataDir, *syncEvery, *ckptEvery)
		}
	}

	if *selftest {
		return runSelftest(s, selftestConfig{
			events:  *stEvents,
			workers: *stWorkers,
			rate:    *stRate,
			batch:   *stBatch,
			seed:    *seed,
			drain:   *drain,
			export:  *stExport,
			replay:  *stReplay,
		})
	}

	fmt.Printf("stratrec serve: %d tenants on %s\n", len(s.TenantNames()), *addr)
	for _, name := range s.TenantNames() {
		fmt.Printf("  /v1/tenants/%s\n", name)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.ListenAndServe(ctx, *addr, *drain); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// buildLogger maps the -log/-log-level flags onto a slog.Logger for
// server.Config.Logger. Logs go to stderr — stdout stays reserved for
// the human-readable startup banner and the selftest report, which CI
// greps.
func buildLogger(format, level string) (*slog.Logger, error) {
	if format == "off" || format == "" {
		return nil, nil
	}
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info or warn)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want json, text or off)", format)
	}
}

// catalogFlags is the tenant-universe selection shared by `serve` and
// `recover -verify`: either a tenants file or seeded synthetic demo
// catalogs. Recovery can only replay a WAL against the same catalogs the
// writing server ran with, so both subcommands accept identical flags.
type catalogFlags struct {
	objective   string
	mode        string
	tenantsPath string
	demoTenants int
	demoSize    int
	seed        int64
	adparPar    int
}

// buildServerConfig materializes the tenant universe of the given flags.
func buildServerConfig(cf catalogFlags) (server.Config, error) {
	var obj batch.Objective
	switch cf.objective {
	case "throughput":
		obj = batch.Throughput
	case "payoff":
		obj = batch.Payoff
	default:
		return server.Config{}, fmt.Errorf("unknown objective %q", cf.objective)
	}
	var agg workforce.Mode
	switch cf.mode {
	case "sum":
		agg = workforce.SumCase
	case "max":
		agg = workforce.MaxCase
	default:
		return server.Config{}, fmt.Errorf("unknown mode %q", cf.mode)
	}

	cfg := server.Config{Tenants: map[string]server.TenantConfig{}}
	if cf.tenantsPath != "" {
		tenants, err := store.LoadTenants(cf.tenantsPath)
		if err != nil {
			return server.Config{}, err
		}
		for _, name := range tenants.Names() {
			cat := tenants.Tenants[name]
			set, models, err := cat.Materialize(func(e store.Entry) linmodel.ParamModels {
				return anchoredModels(e.Params, cat.Workforce)
			})
			if err != nil {
				return server.Config{}, fmt.Errorf("tenant %s: %w", name, err)
			}
			cfg.Tenants[name] = server.TenantConfig{
				Set: set, Models: models,
				Mode: agg, Objective: obj,
				InitialW:    cat.Workforce,
				Parallelism: cf.adparPar,
			}
		}
	} else {
		gen := synth.DefaultConfig(synth.Uniform)
		for i := 0; i < cf.demoTenants; i++ {
			rng := rand.New(rand.NewSource(cf.seed + int64(i)))
			set := gen.Strategies(rng, cf.demoSize)
			name := fmt.Sprintf("tenant-%d", i+1)
			cfg.Tenants[name] = server.TenantConfig{
				Set: set, Models: gen.Models(rng, set),
				Mode: agg, Objective: obj,
				InitialW:    0.7,
				Parallelism: cf.adparPar,
			}
		}
	}
	return cfg, nil
}

// selftestConfig carries the selftest knobs, including workload trace
// export (write the generated sequence as JSON) and replay (drive the
// server from a previously saved trace instead of generating).
type selftestConfig struct {
	events  int
	workers int
	rate    float64
	batch   int
	seed    int64
	drain   time.Duration
	export  string
	replay  string
}

// runSelftest serves on an ephemeral loopback port, replays the workload,
// prints the report, and shuts the server down.
func runSelftest(s *server.Server, cfg selftestConfig) error {
	loadCfg := loadgen.Config{
		Tenants:        s.TenantNames(),
		Workers:        cfg.workers,
		Events:         cfg.events,
		Rate:           cfg.rate,
		RevokeFraction: 0.3,
		DriftFraction:  0.05,
		TightFraction:  0.3,
		PlanEvery:      20,
		K:              3,
		Seed:           cfg.seed,
		BatchSize:      cfg.batch,
	}
	if cfg.replay != "" && cfg.export != "" {
		s.Close()
		return fmt.Errorf("selftest: -selftest-workload and -selftest-export-workload are mutually exclusive")
	}
	if cfg.replay != "" {
		f, err := os.Open(cfg.replay)
		if err != nil {
			s.Close()
			return err
		}
		events, err := synth.ReadTrace(f)
		f.Close()
		if err != nil {
			s.Close()
			return err
		}
		// One worker replays the saved sequence verbatim: revokes stay
		// self-consistent and the run is deterministic in the file.
		loadCfg.Workloads = [][]synth.WorkloadEvent{events}
	}
	if cfg.export != "" {
		workloads, err := loadgen.BuildWorkloads(loadCfg)
		if err != nil {
			s.Close()
			return err
		}
		// Concatenate per-worker sequences: IDs are worker-prefixed (no
		// collisions) and each worker's events stay in order, so the
		// concatenation is itself a valid single-worker workload.
		var all []synth.WorkloadEvent
		for _, wl := range workloads {
			all = append(all, wl...)
		}
		if err := writeWorkloadFile(cfg.export, all); err != nil {
			s.Close()
			return err
		}
		fmt.Printf("selftest: workload trace written to %s (%d events)\n", cfg.export, len(all))
		loadCfg.Workloads = workloads
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	base := "http://" + ln.Addr().String()
	loadCfg.BaseURL = base
	if loadCfg.Workloads != nil {
		fmt.Printf("selftest: %d tenants at %s, %d pre-built worker sequences\n",
			len(s.TenantNames()), base, len(loadCfg.Workloads))
	} else {
		fmt.Printf("selftest: %d tenants at %s, %d events, %d workers\n",
			len(s.TenantNames()), base, cfg.events, cfg.workers)
	}
	rep, loadErr := loadgen.Run(loadCfg)

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	shutdownErr := hs.Shutdown(ctx)
	s.Close()
	<-serveErr // always http.ErrServerClosed after Shutdown

	if loadErr != nil {
		return loadErr
	}
	fmt.Print(rep)
	if shutdownErr != nil {
		return shutdownErr
	}
	if rep.Errors > 0 {
		return fmt.Errorf("selftest: %d of %d ops failed", rep.Errors, rep.Ops)
	}
	return nil
}

// writeWorkloadFile saves a workload event sequence as a JSON trace.
func writeWorkloadFile(path string, events []synth.WorkloadEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := synth.WriteTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// anchoredModels is the Section 3.1 default for catalog entries without
// fitted models, shared with the server's runtime tenant-admin endpoint
// via store.AnchoredModels so both materialization paths agree.
func anchoredModels(p strategy.Params, W float64) linmodel.ParamModels {
	return store.AnchoredModels(p, W)
}
