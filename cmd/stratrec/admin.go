package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"stratrec/internal/client"
	"stratrec/internal/server"
	"stratrec/internal/store"
)

// runAdmin implements `stratrec admin`, the operator CLI over the
// server's runtime admin API:
//
//	stratrec admin [-addr url] tenant create <name> -catalog file.json [-objective o] [-mode m]
//	stratrec admin [-addr url] tenant drain  <name>
//	stratrec admin [-addr url] tenant status <name>
//
// create registers a new tenant on a live server from a single-catalog
// JSON file (the same shape one tenant of a -tenants file holds); drain
// stops accepting its writes, cuts a final checkpoint when durability is
// on, and detaches it; status prints the operator's view of one tenant.
func runAdmin(args []string) error {
	fs := flag.NewFlagSet("admin", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "server base URL")
		timeout = fs.Duration("timeout", 30*time.Second, "request timeout")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: stratrec admin [flags] tenant create|drain|status <name> [create flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) < 3 || rest[0] != "tenant" {
		fs.Usage()
		return fmt.Errorf("expected: tenant create|drain|status <name>")
	}
	verb, name := rest[1], rest[2]

	c := client.New(*addr)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch verb {
	case "create":
		cfs := flag.NewFlagSet("admin tenant create", flag.ContinueOnError)
		var (
			catalogPath = cfs.String("catalog", "", "strategy catalog JSON file (required)")
			objective   = cfs.String("objective", "", "platform goal: throughput (default) or payoff")
			mode        = cfs.String("mode", "", "workforce aggregation: max (default) or sum")
			coalesce    = cfs.Int("coalesce", 0, "event-loop coalesce limit (0 = server default)")
			opBuffer    = cfs.Int("op-buffer", 0, "mutation inbox capacity (0 = server default)")
		)
		if err := cfs.Parse(rest[3:]); err != nil {
			return err
		}
		if *catalogPath == "" {
			return fmt.Errorf("tenant create: -catalog is required")
		}
		cat, err := store.LoadCatalog(*catalogPath)
		if err != nil {
			return err
		}
		st, err := c.CreateTenant(ctx, name, client.CreateTenantRequest{
			Objective: *objective,
			Mode:      *mode,
			Coalesce:  *coalesce,
			OpBuffer:  *opBuffer,
			Catalog:   cat,
		})
		if err != nil {
			return err
		}
		fmt.Printf("created tenant %s: %d strategies, availability %.2f, epoch %d\n",
			st.Name, st.Strategies, st.Availability, st.Epoch)
		return nil

	case "drain":
		resp, err := c.DrainTenant(ctx, name)
		if err != nil {
			return err
		}
		if resp.Checkpoint.LastSeq > 0 || resp.Checkpoint.Requests > 0 {
			fmt.Printf("drained tenant %s: final checkpoint at seq %d (%d open requests)\n",
				resp.Tenant, resp.Checkpoint.LastSeq, resp.Checkpoint.Requests)
		} else {
			fmt.Printf("drained tenant %s\n", resp.Tenant)
		}
		return nil

	case "status":
		st, err := c.TenantStatus(ctx, name)
		if err != nil {
			return err
		}
		fmt.Printf("tenant %s: %s\n", st.Name, st.Health.Status)
		fmt.Printf("  strategies   %d\n", st.Strategies)
		fmt.Printf("  open         %d\n", st.Open)
		fmt.Printf("  serving      %d\n", st.Serving)
		fmt.Printf("  epoch        %d\n", st.Epoch)
		fmt.Printf("  availability %.3f\n", st.Availability)
		if st.Health.QueueCapacity > 0 {
			fmt.Printf("  queue        %d/%d\n", st.Health.QueueDepth, st.Health.QueueCapacity)
		}
		if st.Health.Status == server.HealthReadOnly {
			fmt.Println("  READ-ONLY: WAL circuit breaker tripped")
		}
		if st.Draining {
			fmt.Println("  DRAINING")
		}
		return nil

	default:
		fs.Usage()
		return fmt.Errorf("unknown admin verb %q", verb)
	}
}
