package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestConformCrashRecoveryProfile: the kill/restart oracle runs clean
// through the CLI entry point and reports the kill and recovery.
func TestConformCrashRecoveryProfile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "crash-data")
	out, err := capture(t, func() error {
		return runConform([]string{
			"-profile", "crash-recovery",
			"-seed", "1", "-events", "400", "-quiet",
			"-crash-data-dir", dir,
		})
	})
	if err != nil {
		t.Fatalf("conform crash-recovery: %v\n%s", err, out)
	}
	for _, want := range []string{"killed at event", "recovery", "0 divergences"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The explicit data dir survives the clean run, so `recover` can scan
	// and fully verify it offline. The conformance tenants are seeded
	// synthetic catalogs, but with tenant-specific objective/mode cycling
	// and a different seed derivation than serve's demo tenants — so the
	// read-only scan must work, and we assert its shape.
	out, err = capture(t, func() error {
		return runRecover([]string{"-data-dir", dir})
	})
	if err != nil {
		t.Fatalf("recover scan: %v\n%s", err, out)
	}
	if !strings.Contains(out, "2 tenant(s)") || !strings.Contains(out, "tenant-1:") {
		t.Errorf("scan output unexpected:\n%s", out)
	}
}

// TestRecoverVerifyRoundTrip: a durable selftest-style server writes a
// WAL through the demo-tenant path, and `recover -verify` replays it
// against the same seeded catalogs.
func TestRecoverVerifyRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	out, err := capture(t, func() error {
		return runServe([]string{
			"-data-dir", dir,
			"-demo-tenants", "2", "-demo-strategies", "24", "-seed", "77",
			"-selftest", "-selftest-requests", "200", "-selftest-workers", "2",
		})
	})
	if err != nil {
		t.Fatalf("durable selftest: %v\n%s", err, out)
	}

	out, err = capture(t, func() error {
		return runRecover([]string{
			"-data-dir", dir, "-verify",
			"-demo-tenants", "2", "-demo-strategies", "24", "-seed", "77",
		})
	})
	if err != nil {
		t.Fatalf("recover -verify: %v\n%s", err, out)
	}
	if !strings.Contains(out, "verification OK") {
		t.Errorf("verify output unexpected:\n%s", out)
	}

	// A catalog tenant with no data on disk is skipped, not fabricated:
	// -verify must never create fresh WAL directories inside the artifact
	// it inspects.
	out, err = capture(t, func() error {
		return runRecover([]string{
			"-data-dir", dir, "-verify",
			"-demo-tenants", "3", "-demo-strategies", "24", "-seed", "77",
		})
	})
	if err != nil {
		t.Fatalf("recover -verify with extra catalog tenant: %v\n%s", err, out)
	}
	if !strings.Contains(out, "tenant-3 has no data on disk; skipping") {
		t.Errorf("missing skip notice:\n%s", out)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "tenant-3")); !os.IsNotExist(statErr) {
		t.Error("verify fabricated a tenant-3 directory inside the artifact")
	}

	// Verifying against the WRONG catalogs must fail loudly, not quietly
	// succeed with nonsense state: a different seed changes the strategy
	// sets, so replayed requirements and epochs cannot line up.
	out, err = capture(t, func() error {
		return runRecover([]string{
			"-data-dir", dir, "-verify",
			"-demo-tenants", "2", "-demo-strategies", "24", "-seed", "78",
		})
	})
	if err == nil {
		t.Fatalf("recover -verify accepted the wrong catalogs:\n%s", out)
	}
	if !strings.Contains(err.Error(), "verification FAILED") {
		t.Errorf("unexpected failure shape: %v", err)
	}
}

// TestRecoverRequiresDataDir: the flag is mandatory.
func TestRecoverRequiresDataDir(t *testing.T) {
	if _, err := capture(t, func() error { return runRecover(nil) }); err == nil {
		t.Fatal("recover without -data-dir succeeded")
	}
}
