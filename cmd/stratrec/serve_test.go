package main

import (
	"strings"
	"testing"
)

// TestServeSelftestSynthetic: `stratrec serve -selftest` hosts synthetic
// demo tenants, replays a Poisson workload against itself, and prints
// throughput plus latency percentiles.
func TestServeSelftestSynthetic(t *testing.T) {
	out, err := capture(t, func() error {
		return runServe([]string{
			"-selftest",
			"-selftest-requests", "300",
			"-selftest-workers", "4",
			"-demo-tenants", "2",
			"-demo-strategies", "24",
		})
	})
	if err != nil {
		t.Fatalf("selftest: %v\n%s", err, out)
	}
	for _, want := range []string{"2 tenants", "req/s", "p50", "p99", "submit", "0 errors"} {
		if !strings.Contains(out, want) {
			t.Errorf("selftest output missing %q:\n%s", want, out)
		}
	}
}

// TestServeSelftestTenantsFile: the same selftest against catalogs loaded
// from a tenants file, entries without models getting the anchored
// defaults.
func TestServeSelftestTenantsFile(t *testing.T) {
	out, err := capture(t, func() error {
		return runServe([]string{
			"-selftest",
			"-tenants", "testdata/tenants.json",
			"-selftest-requests", "200",
			"-selftest-workers", "2",
		})
	})
	if err != nil {
		t.Fatalf("selftest: %v\n%s", err, out)
	}
	for _, want := range []string{"2 tenants", "req/s", "p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("selftest output missing %q:\n%s", want, out)
		}
	}
}

func TestServeErrors(t *testing.T) {
	if err := runServe([]string{"-objective", "bogus"}); err == nil {
		t.Error("bogus objective accepted")
	}
	if err := runServe([]string{"-mode", "bogus"}); err == nil {
		t.Error("bogus mode accepted")
	}
	if err := runServe([]string{"-tenants", "/nonexistent.json"}); err == nil {
		t.Error("missing tenants file accepted")
	}
	if err := runServe([]string{"-badflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := runServe([]string{"-selftest", "-demo-tenants", "0"}); err == nil {
		t.Error("zero tenants accepted")
	}
}
