package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stratrec/internal/adpar"
	"stratrec/internal/conformance"
)

// runConform implements `stratrec conform`: the end-to-end differential
// conformance harness as a subcommand, so CI gates and humans chasing a
// failure run exactly the same binary.
//
//	stratrec conform -seed 1 -events 5000            # generate + verify
//	stratrec conform -replay failure.json            # replay an artifact
//	stratrec conform -seed 7 -profile revoke-storm   # chaos schedule
//
// On divergence the failing trace is minimized with delta debugging and
// written to -artifact as replayable JSON, and the exit status is nonzero.
func runConform(args []string) error {
	fs := flag.NewFlagSet("conform", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 1, "trace generation seed")
		events     = fs.Int("events", 5000, "total trace events (mutations + oracle checks)")
		tenants    = fs.Int("tenants", 2, "tenant count (objectives/modes cycle per tenant)")
		strategies = fs.Int("strategies", 24, "strategies per tenant catalog (max 32: the brute-force oracle bound)")
		k          = fs.Int("k", 3, "per-request cardinality constraint")
		profile    = fs.String("profile", "steady", "chaos schedule: steady, revoke-storm or bursty")
		market     = fs.Bool("market", false, "derive availability drift from simulated marketplace outcomes")
		bbLimit    = fs.Int("branch-bound-limit", 48, "max open items for the exact optimality oracle (-1 disables)")
		adparPar   = fs.Int("adpar-parallelism", 0, "server ADPaR sweep workers: 0 auto, 1 sequential")
		replayPath = fs.String("replay", "", "replay a trace artifact instead of generating")
		outPath    = fs.String("out", "", "also write the generated trace to this path")
		artifact   = fs.String("artifact", "conformance-failure.json", "where to write the minimized failing trace")
		maxProbes  = fs.Int("minimize-probes", 600, "delta-debugging probe budget")
		quiet      = fs.Bool("quiet", false, "suppress the progress line")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		tr  conformance.Trace
		err error
	)
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			return err
		}
		tr, err = conformance.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("conform: replaying %s (%d tenants, %d events)\n", *replayPath, len(tr.Tenants), len(tr.Events))
	} else {
		if *strategies > adpar.BruteForceLimit {
			return fmt.Errorf("conform: -strategies %d exceeds the brute-force oracle bound %d", *strategies, adpar.BruteForceLimit)
		}
		tr, err = conformance.Generate(conformance.GenConfig{
			Seed:           *seed,
			Events:         *events,
			Tenants:        *tenants,
			Strategies:     *strategies,
			K:              *k,
			Profile:        conformance.Profile(*profile),
			MarketFeedback: *market,
		})
		if err != nil {
			return err
		}
		fmt.Printf("conform: seed %d, %d tenants x %d strategies, %d events, profile %s\n",
			*seed, len(tr.Tenants), *strategies, len(tr.Events), *profile)
	}
	if *outPath != "" {
		if err := writeTraceFile(*outPath, tr); err != nil {
			return err
		}
	}

	cfg := conformance.RunConfig{
		Parallelism:      *adparPar,
		BranchBoundLimit: *bbLimit,
	}
	if !*quiet {
		every := len(tr.Events) / 10
		if every > 0 {
			cfg.OnEvent = func(i int, _ conformance.Event) {
				if i%every == 0 && i > 0 {
					fmt.Printf("conform: %d/%d events\n", i, len(tr.Events))
				}
			}
		}
	}

	start := time.Now()
	res, err := conformance.Run(tr, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s  (%.1fs)\n", res, time.Since(start).Seconds())
	if res.OK() {
		return nil
	}

	fmt.Printf("conform: minimizing the failing trace (budget %d probes)...\n", *maxProbes)
	minimized, stats := conformance.Minimize(tr, cfg, *maxProbes)
	fmt.Printf("conform: minimized %d -> %d events in %d probes\n", stats.From, stats.To, stats.Probes)
	if err := writeTraceFile(*artifact, minimized); err != nil {
		return fmt.Errorf("writing artifact: %w", err)
	}
	fmt.Printf("conform: replayable artifact written to %s\n", *artifact)
	fmt.Printf("conform: replay it with: stratrec conform -replay %s\n", *artifact)
	return fmt.Errorf("conform: %d oracle divergences", len(res.Divergences))
}

func writeTraceFile(path string, tr conformance.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
