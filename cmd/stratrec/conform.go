package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stratrec/internal/adpar"
	"stratrec/internal/conformance"
)

// runConform implements `stratrec conform`: the end-to-end differential
// conformance harness as a subcommand, so CI gates and humans chasing a
// failure run exactly the same binary.
//
//	stratrec conform -seed 1 -events 5000            # generate + verify
//	stratrec conform -replay failure.json            # replay an artifact
//	stratrec conform -seed 7 -profile revoke-storm   # chaos schedule
//	stratrec conform -profile crash-recovery         # kill/restart oracle
//	stratrec conform -profile thundering-herd        # overload shed oracle
//
// On divergence the failing trace is minimized with delta debugging and
// written to -artifact as replayable JSON, and the exit status is nonzero.
//
// The crash-recovery profile replays a steady trace through a durable
// server, kills it at a seeded mid-trace point (after a mid-run
// checkpoint), restarts it from disk, diffs the recovered snapshot
// field-by-field against the naive full-replay oracle, and finishes the
// trace with the full oracle layer. Its failure artifact is the trace
// plus the data directory itself (kept in place, path printed), not a
// minimized trace: the failure depends on the kill point, which ddmin
// event deletion does not preserve.
//
// The overload profiles (thundering-herd, revoke-storm-shed, avail-flap)
// run the chaos shed-accounting oracle instead: concurrent writers
// through the real HTTP stack with fault injection forcing admission
// control to shed, then kill + restart, then exactly-once verification
// (every 2xx ack recovered, every 429/503 shed absent). Their failure
// artifact is the accounting ledger JSON plus the kept data directory.
func runConform(args []string) error {
	fs := flag.NewFlagSet("conform", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 1, "trace generation seed")
		events     = fs.Int("events", 5000, "total trace events (mutations + oracle checks)")
		tenants    = fs.Int("tenants", 2, "tenant count (objectives/modes cycle per tenant)")
		strategies = fs.Int("strategies", 24, "strategies per tenant catalog (max 32: the brute-force oracle bound)")
		k          = fs.Int("k", 3, "per-request cardinality constraint")
		profile    = fs.String("profile", "steady", "chaos schedule: steady, revoke-storm, bursty, crash-recovery, thundering-herd, revoke-storm-shed or avail-flap")
		market     = fs.Bool("market", false, "derive availability drift from simulated marketplace outcomes")
		bbLimit    = fs.Int("branch-bound-limit", 48, "max open items for the exact optimality oracle (-1 disables)")
		adparPar   = fs.Int("adpar-parallelism", 0, "server ADPaR sweep workers: 0 auto, 1 sequential")
		replayPath = fs.String("replay", "", "replay a trace artifact instead of generating")
		outPath    = fs.String("out", "", "also write the generated trace to this path")
		artifact   = fs.String("artifact", "conformance-failure.json", "where to write the minimized failing trace")
		maxProbes  = fs.Int("minimize-probes", 600, "delta-debugging probe budget")
		quiet      = fs.Bool("quiet", false, "suppress the progress line")
		viaBatch   = fs.Bool("via-batch", false, "route every mutation through POST /v1/tenants/{tenant}/ops as a one-op batch (steady/chaos and crash-recovery profiles)")
		gcWindow   = fs.Duration("wal-group-commit-window", 0, "crash-recovery and overload profiles: run the server with cross-tenant group commit at this window (0 = per-append fsyncs)")

		crashCut  = fs.Int("crash-cut", -1, "crash-recovery: event index to kill at (-1 = seeded mid-trace point)")
		crashDir  = fs.String("crash-data-dir", "", "crash-recovery: durability dir (empty = temp dir; kept on failure either way)")
		crashTorn = fs.Bool("crash-torn-tail", false, "crash-recovery: also inject a torn partial record at the kill point")

		ovWorkers  = fs.Int("overload-workers", 0, "overload profiles: concurrent writer goroutines (0 = 8)")
		ovOps      = fs.Int("overload-ops", 0, "overload profiles: mutations per writer (0 = 60)")
		ovBuffer   = fs.Int("overload-op-buffer", 0, "overload profiles: tenant inbox capacity (0 = 4, deliberately smaller than the writer count)")
		ovDeadline = fs.Int("overload-deadline-ms", 10, "overload profiles: X-Request-Deadline-Ms attached to every third mutation (0 disables)")
		ovDir      = fs.String("overload-data-dir", "", "overload profiles: durability dir (empty = temp dir; kept on violation either way)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, p := range conformance.OverloadProfiles {
		if *profile == string(p) {
			return runConformOverload(p, overloadArgs{
				seed: *seed, strategies: *strategies,
				workers: *ovWorkers, ops: *ovOps, opBuffer: *ovBuffer,
				deadlineMs: *ovDeadline, dataDir: *ovDir, artifact: *artifact,
				gcWindow: *gcWindow,
			})
		}
	}
	if *profile == "crash-recovery" {
		return runConformCrash(crashArgs{
			seed: *seed, events: *events, tenants: *tenants, strategies: *strategies, k: *k,
			bbLimit: *bbLimit, adparPar: *adparPar, outPath: *outPath,
			cut: *crashCut, dataDir: *crashDir, tornTail: *crashTorn, quiet: *quiet,
			viaBatch: *viaBatch, gcWindow: *gcWindow,
		})
	}

	var (
		tr  conformance.Trace
		err error
	)
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			return err
		}
		tr, err = conformance.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("conform: replaying %s (%d tenants, %d events)\n", *replayPath, len(tr.Tenants), len(tr.Events))
	} else {
		if *strategies > adpar.BruteForceLimit {
			return fmt.Errorf("conform: -strategies %d exceeds the brute-force oracle bound %d", *strategies, adpar.BruteForceLimit)
		}
		tr, err = conformance.Generate(conformance.GenConfig{
			Seed:           *seed,
			Events:         *events,
			Tenants:        *tenants,
			Strategies:     *strategies,
			K:              *k,
			Profile:        conformance.Profile(*profile),
			MarketFeedback: *market,
		})
		if err != nil {
			return err
		}
		fmt.Printf("conform: seed %d, %d tenants x %d strategies, %d events, profile %s\n",
			*seed, len(tr.Tenants), *strategies, len(tr.Events), *profile)
	}
	if *outPath != "" {
		if err := writeTraceFile(*outPath, tr); err != nil {
			return err
		}
	}

	cfg := conformance.RunConfig{
		Parallelism:      *adparPar,
		BranchBoundLimit: *bbLimit,
		ViaBatch:         *viaBatch,
	}
	if !*quiet {
		every := len(tr.Events) / 10
		if every > 0 {
			cfg.OnEvent = func(i int, _ conformance.Event) {
				if i%every == 0 && i > 0 {
					fmt.Printf("conform: %d/%d events\n", i, len(tr.Events))
				}
			}
		}
	}

	start := time.Now()
	res, err := conformance.Run(tr, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s  (%.1fs)\n", res, time.Since(start).Seconds())
	if res.OK() {
		return nil
	}

	fmt.Printf("conform: minimizing the failing trace (budget %d probes)...\n", *maxProbes)
	minimized, stats := conformance.Minimize(tr, cfg, *maxProbes)
	fmt.Printf("conform: minimized %d -> %d events in %d probes\n", stats.From, stats.To, stats.Probes)
	if err := writeTraceFile(*artifact, minimized); err != nil {
		return fmt.Errorf("writing artifact: %w", err)
	}
	fmt.Printf("conform: replayable artifact written to %s\n", *artifact)
	fmt.Printf("conform: replay it with: stratrec conform -replay %s\n", *artifact)
	return fmt.Errorf("conform: %d oracle divergences", len(res.Divergences))
}

// crashArgs carries the crash-recovery profile's knobs.
type crashArgs struct {
	seed                        int64
	events, tenants, strategies int
	k, bbLimit, adparPar        int
	cut                         int
	dataDir, outPath            string
	tornTail, quiet, viaBatch   bool
	gcWindow                    time.Duration
}

// runConformCrash runs the kill/restart differential oracle: generate a
// steady trace, kill the durable server mid-trace, recover from disk,
// diff, finish the trace.
func runConformCrash(a crashArgs) error {
	if a.strategies > adpar.BruteForceLimit {
		return fmt.Errorf("conform: -strategies %d exceeds the brute-force oracle bound %d", a.strategies, adpar.BruteForceLimit)
	}
	tr, err := conformance.Generate(conformance.GenConfig{
		Seed:       a.seed,
		Events:     a.events,
		Tenants:    a.tenants,
		Strategies: a.strategies,
		K:          a.k,
		Profile:    conformance.Steady,
	})
	if err != nil {
		return err
	}
	fmt.Printf("conform: crash-recovery, seed %d, %d tenants x %d strategies, %d events\n",
		a.seed, len(tr.Tenants), a.strategies, len(tr.Events))
	if a.outPath != "" {
		if err := writeTraceFile(a.outPath, tr); err != nil {
			return err
		}
	}

	cfg := conformance.CrashConfig{
		Parallelism:       a.adparPar,
		BranchBoundLimit:  a.bbLimit,
		Cut:               a.cut,
		CheckpointAt:      -1,
		TornTail:          a.tornTail,
		ViaBatch:          a.viaBatch,
		GroupCommitWindow: a.gcWindow,
		DataDir:           a.dataDir,
	}
	if !a.quiet {
		every := len(tr.Events) / 10
		if every > 0 {
			cfg.OnEvent = func(i int, _ conformance.Event) {
				if i%every == 0 && i > 0 {
					fmt.Printf("conform: %d/%d events\n", i, len(tr.Events))
				}
			}
		}
	}

	start := time.Now()
	res, err := conformance.RunCrash(tr, cfg)
	if err != nil {
		fmt.Printf("conform: data dir kept at %s\n", res.DataDir)
		return err
	}
	fmt.Printf("conform: killed at event %d (checkpoint after %d), recovery %v\n",
		res.Cut, res.CheckpointAt, res.RecoveryDuration)
	fmt.Printf("%s  (%.1fs)\n", res.Result, time.Since(start).Seconds())
	if res.OK() {
		return nil
	}
	fmt.Printf("conform: data dir kept at %s for inspection (stratrec recover -data-dir ...)\n", res.DataDir)
	return fmt.Errorf("conform: %d oracle divergences", len(res.Divergences))
}

// overloadArgs carries the overload-profile knobs.
type overloadArgs struct {
	seed                     int64
	strategies, workers, ops int
	opBuffer, deadlineMs     int
	dataDir, artifact        string
	gcWindow                 time.Duration
}

// runConformOverload runs the chaos shed-accounting oracle for one
// overload profile and writes the accounting ledger as the failure
// artifact.
func runConformOverload(profile conformance.OverloadProfile, a overloadArgs) error {
	fmt.Printf("conform: overload profile %s, seed %d\n", profile, a.seed)
	start := time.Now()
	res, err := conformance.RunOverload(conformance.OverloadConfig{
		Profile:           profile,
		Seed:              a.seed,
		Strategies:        a.strategies,
		Workers:           a.workers,
		OpsPerWorker:      a.ops,
		OpBuffer:          a.opBuffer,
		DeadlineMs:        a.deadlineMs,
		GroupCommitWindow: a.gcWindow,
		DataDir:           a.dataDir,
	})
	if err != nil {
		if res.DataDir != "" {
			fmt.Printf("conform: data dir kept at %s\n", res.DataDir)
		}
		return err
	}
	fmt.Printf("%s  (%.1fs)\n", res, time.Since(start).Seconds())
	if res.OK() {
		return nil
	}
	if err := res.WriteArtifact(a.artifact); err != nil {
		return fmt.Errorf("writing shed-accounting artifact: %w", err)
	}
	fmt.Printf("conform: shed-accounting ledger written to %s\n", a.artifact)
	fmt.Printf("conform: data dir kept at %s for inspection\n", res.DataDir)
	return fmt.Errorf("conform: %d shed-accounting violations", len(res.Violations))
}

func writeTraceFile(path string, tr conformance.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
