package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stratrec/internal/adpar"
	"stratrec/internal/conformance"
)

// runConform implements `stratrec conform`: the end-to-end differential
// conformance harness as a subcommand, so CI gates and humans chasing a
// failure run exactly the same binary.
//
//	stratrec conform -seed 1 -events 5000            # generate + verify
//	stratrec conform -replay failure.json            # replay an artifact
//	stratrec conform -seed 7 -profile revoke-storm   # chaos schedule
//	stratrec conform -profile crash-recovery         # kill/restart oracle
//
// On divergence the failing trace is minimized with delta debugging and
// written to -artifact as replayable JSON, and the exit status is nonzero.
//
// The crash-recovery profile replays a steady trace through a durable
// server, kills it at a seeded mid-trace point (after a mid-run
// checkpoint), restarts it from disk, diffs the recovered snapshot
// field-by-field against the naive full-replay oracle, and finishes the
// trace with the full oracle layer. Its failure artifact is the trace
// plus the data directory itself (kept in place, path printed), not a
// minimized trace: the failure depends on the kill point, which ddmin
// event deletion does not preserve.
func runConform(args []string) error {
	fs := flag.NewFlagSet("conform", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 1, "trace generation seed")
		events     = fs.Int("events", 5000, "total trace events (mutations + oracle checks)")
		tenants    = fs.Int("tenants", 2, "tenant count (objectives/modes cycle per tenant)")
		strategies = fs.Int("strategies", 24, "strategies per tenant catalog (max 32: the brute-force oracle bound)")
		k          = fs.Int("k", 3, "per-request cardinality constraint")
		profile    = fs.String("profile", "steady", "chaos schedule: steady, revoke-storm or bursty")
		market     = fs.Bool("market", false, "derive availability drift from simulated marketplace outcomes")
		bbLimit    = fs.Int("branch-bound-limit", 48, "max open items for the exact optimality oracle (-1 disables)")
		adparPar   = fs.Int("adpar-parallelism", 0, "server ADPaR sweep workers: 0 auto, 1 sequential")
		replayPath = fs.String("replay", "", "replay a trace artifact instead of generating")
		outPath    = fs.String("out", "", "also write the generated trace to this path")
		artifact   = fs.String("artifact", "conformance-failure.json", "where to write the minimized failing trace")
		maxProbes  = fs.Int("minimize-probes", 600, "delta-debugging probe budget")
		quiet      = fs.Bool("quiet", false, "suppress the progress line")

		crashCut  = fs.Int("crash-cut", -1, "crash-recovery: event index to kill at (-1 = seeded mid-trace point)")
		crashDir  = fs.String("crash-data-dir", "", "crash-recovery: durability dir (empty = temp dir; kept on failure either way)")
		crashTorn = fs.Bool("crash-torn-tail", false, "crash-recovery: also inject a torn partial record at the kill point")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profile == "crash-recovery" {
		return runConformCrash(crashArgs{
			seed: *seed, events: *events, tenants: *tenants, strategies: *strategies, k: *k,
			bbLimit: *bbLimit, adparPar: *adparPar, outPath: *outPath,
			cut: *crashCut, dataDir: *crashDir, tornTail: *crashTorn, quiet: *quiet,
		})
	}

	var (
		tr  conformance.Trace
		err error
	)
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			return err
		}
		tr, err = conformance.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("conform: replaying %s (%d tenants, %d events)\n", *replayPath, len(tr.Tenants), len(tr.Events))
	} else {
		if *strategies > adpar.BruteForceLimit {
			return fmt.Errorf("conform: -strategies %d exceeds the brute-force oracle bound %d", *strategies, adpar.BruteForceLimit)
		}
		tr, err = conformance.Generate(conformance.GenConfig{
			Seed:           *seed,
			Events:         *events,
			Tenants:        *tenants,
			Strategies:     *strategies,
			K:              *k,
			Profile:        conformance.Profile(*profile),
			MarketFeedback: *market,
		})
		if err != nil {
			return err
		}
		fmt.Printf("conform: seed %d, %d tenants x %d strategies, %d events, profile %s\n",
			*seed, len(tr.Tenants), *strategies, len(tr.Events), *profile)
	}
	if *outPath != "" {
		if err := writeTraceFile(*outPath, tr); err != nil {
			return err
		}
	}

	cfg := conformance.RunConfig{
		Parallelism:      *adparPar,
		BranchBoundLimit: *bbLimit,
	}
	if !*quiet {
		every := len(tr.Events) / 10
		if every > 0 {
			cfg.OnEvent = func(i int, _ conformance.Event) {
				if i%every == 0 && i > 0 {
					fmt.Printf("conform: %d/%d events\n", i, len(tr.Events))
				}
			}
		}
	}

	start := time.Now()
	res, err := conformance.Run(tr, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s  (%.1fs)\n", res, time.Since(start).Seconds())
	if res.OK() {
		return nil
	}

	fmt.Printf("conform: minimizing the failing trace (budget %d probes)...\n", *maxProbes)
	minimized, stats := conformance.Minimize(tr, cfg, *maxProbes)
	fmt.Printf("conform: minimized %d -> %d events in %d probes\n", stats.From, stats.To, stats.Probes)
	if err := writeTraceFile(*artifact, minimized); err != nil {
		return fmt.Errorf("writing artifact: %w", err)
	}
	fmt.Printf("conform: replayable artifact written to %s\n", *artifact)
	fmt.Printf("conform: replay it with: stratrec conform -replay %s\n", *artifact)
	return fmt.Errorf("conform: %d oracle divergences", len(res.Divergences))
}

// crashArgs carries the crash-recovery profile's knobs.
type crashArgs struct {
	seed                        int64
	events, tenants, strategies int
	k, bbLimit, adparPar        int
	cut                         int
	dataDir, outPath            string
	tornTail, quiet             bool
}

// runConformCrash runs the kill/restart differential oracle: generate a
// steady trace, kill the durable server mid-trace, recover from disk,
// diff, finish the trace.
func runConformCrash(a crashArgs) error {
	if a.strategies > adpar.BruteForceLimit {
		return fmt.Errorf("conform: -strategies %d exceeds the brute-force oracle bound %d", a.strategies, adpar.BruteForceLimit)
	}
	tr, err := conformance.Generate(conformance.GenConfig{
		Seed:       a.seed,
		Events:     a.events,
		Tenants:    a.tenants,
		Strategies: a.strategies,
		K:          a.k,
		Profile:    conformance.Steady,
	})
	if err != nil {
		return err
	}
	fmt.Printf("conform: crash-recovery, seed %d, %d tenants x %d strategies, %d events\n",
		a.seed, len(tr.Tenants), a.strategies, len(tr.Events))
	if a.outPath != "" {
		if err := writeTraceFile(a.outPath, tr); err != nil {
			return err
		}
	}

	cfg := conformance.CrashConfig{
		Parallelism:      a.adparPar,
		BranchBoundLimit: a.bbLimit,
		Cut:              a.cut,
		CheckpointAt:     -1,
		TornTail:         a.tornTail,
		DataDir:          a.dataDir,
	}
	if !a.quiet {
		every := len(tr.Events) / 10
		if every > 0 {
			cfg.OnEvent = func(i int, _ conformance.Event) {
				if i%every == 0 && i > 0 {
					fmt.Printf("conform: %d/%d events\n", i, len(tr.Events))
				}
			}
		}
	}

	start := time.Now()
	res, err := conformance.RunCrash(tr, cfg)
	if err != nil {
		fmt.Printf("conform: data dir kept at %s\n", res.DataDir)
		return err
	}
	fmt.Printf("conform: killed at event %d (checkpoint after %d), recovery %v\n",
		res.Cut, res.CheckpointAt, res.RecoveryDuration)
	fmt.Printf("%s  (%.1fs)\n", res.Result, time.Since(start).Seconds())
	if res.OK() {
		return nil
	}
	fmt.Printf("conform: data dir kept at %s for inspection (stratrec recover -data-dir ...)\n", res.DataDir)
	return fmt.Errorf("conform: %d oracle divergences", len(res.Divergences))
}

func writeTraceFile(path string, tr conformance.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
