package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"stratrec/internal/server"
	"stratrec/internal/wal"
)

// runRecover implements `stratrec recover`: offline inspection and
// verification of a durability directory written by `stratrec serve
// -data-dir`.
//
//	stratrec recover -data-dir d                  # read-only scan per tenant
//	stratrec recover -data-dir d -verify [flags]  # replay through the real engine
//
// The plain scan never modifies the directory: it reports each tenant's
// newest checkpoint, replay tail, last durable sequence number and any
// torn tail. With -verify the tenant catalogs are materialized (the same
// -tenants / demo flags `serve` uses — recovery is only meaningful
// against the catalogs the log was written under), the full recovery
// path runs (checkpoint re-admission + tail replay through the tenant
// event loops, with the per-record epoch trail verified), and the
// recovered plan is printed. -verify opens the logs exactly like serve:
// a torn tail is repaired (truncated) on open.
func runRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ContinueOnError)
	var (
		dataDir     = fs.String("data-dir", "", "durability root written by stratrec serve -data-dir (required)")
		verify      = fs.Bool("verify", false, "replay the recovered state through the real engine and verify the epoch trail")
		tenantsPath = fs.String("tenants", "", "verify: multi-tenant catalog JSON (same file serve ran with)")
		objective   = fs.String("objective", "throughput", "verify: platform goal: throughput or payoff")
		mode        = fs.String("mode", "max", "verify: workforce aggregation: sum or max")
		demoTenants = fs.Int("demo-tenants", 2, "verify: synthetic tenant count when -tenants is empty")
		demoSize    = fs.Int("demo-strategies", 64, "verify: strategies per synthetic tenant")
		seed        = fs.Int64("seed", 2020, "verify: synthetic tenant seed (must match serve's)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("recover: -data-dir is required")
	}

	names, err := tenantDirs(*dataDir)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("recover: no tenant directories under %s", *dataDir)
	}

	fmt.Printf("recover: %d tenant(s) under %s\n", len(names), *dataDir)
	for _, name := range names {
		rec, err := wal.Scan(filepath.Join(*dataDir, name))
		if err != nil {
			return fmt.Errorf("recover: tenant %s: %w", name, err)
		}
		fmt.Printf("  %s: ", name)
		if cp := rec.Checkpoint; cp != nil {
			fmt.Printf("checkpoint seq %d (epoch %d, %d open, W %.3f), ", cp.Seq, cp.Epoch, len(cp.Requests), cp.Availability)
		} else {
			fmt.Printf("no checkpoint, ")
		}
		fmt.Printf("%d tail record(s) in %d segment(s), last seq %d", len(rec.Tail), rec.Segments, rec.LastSeq)
		if rec.TornBytes > 0 {
			fmt.Printf(", torn tail: %d byte(s) will be truncated on open", rec.TornBytes)
		}
		fmt.Println()
	}
	if !*verify {
		return nil
	}

	cfg, err := buildServerConfig(catalogFlags{
		objective:   *objective,
		mode:        *mode,
		tenantsPath: *tenantsPath,
		demoTenants: *demoTenants,
		demoSize:    *demoSize,
		seed:        *seed,
	})
	if err != nil {
		return err
	}
	for _, name := range names {
		if _, ok := cfg.Tenants[name]; !ok {
			return fmt.Errorf("recover: tenant %s exists on disk but not in the given catalogs; pass the same -tenants/-seed flags serve ran with", name)
		}
	}
	// Verify only what is on disk: catalog tenants without a directory
	// would otherwise get fresh (empty) WALs created inside the artifact
	// being inspected, and be reported as "recovered" with no history.
	onDisk := make(map[string]bool, len(names))
	for _, name := range names {
		onDisk[name] = true
	}
	for name := range cfg.Tenants {
		if !onDisk[name] {
			fmt.Printf("recover: catalog tenant %s has no data on disk; skipping it\n", name)
			delete(cfg.Tenants, name)
		}
	}
	cfg.DataDir = *dataDir

	// server.New runs the full recovery path and fails loudly on any
	// epoch-trail divergence or replay error.
	start := time.Now()
	s, err := server.New(cfg)
	if err != nil {
		return fmt.Errorf("recover: verification FAILED: %w", err)
	}
	took := time.Since(start)
	defer s.Close()

	fmt.Printf("recover: verification OK in %v\n", took)
	for _, name := range s.TenantNames() {
		t, err := s.Tenant(name)
		if err != nil {
			return err
		}
		snap := t.Snapshot()
		fmt.Printf("  %s: epoch %d, W %.3f, %d open (%d serving, %d displaced), objective %.3f\n",
			name, snap.Epoch, snap.Availability,
			len(snap.Requests), len(snap.Plan.Serving), len(snap.Plan.Displaced), snap.Plan.Objective)
	}
	return nil
}

// tenantDirs lists the tenant subdirectories of a durability root.
func tenantDirs(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
