// Command experiments regenerates the paper's tables and figures (Section
// 5) and prints them as text or markdown. Each experiment is listed in
// DESIGN.md's experiment index; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	experiments                  # run everything at full scale
//	experiments -short           # trimmed sizes (seconds, for smoke tests)
//	experiments -run figure-14   # one experiment
//	experiments -list            # list experiment IDs
//	experiments -md              # markdown output (for EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stratrec/internal/experiments"
)

func main() {
	var (
		runID    = flag.String("run", "", "run a single experiment by ID (see -list)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		short    = flag.Bool("short", false, "trimmed workload sizes")
		seed     = flag.Int64("seed", 2020, "random seed")
		runs     = flag.Int("runs", 0, "repetitions per data point (0 = experiment default)")
		markdown = flag.Bool("md", false, "render tables as markdown")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Short: *short, Runs: *runs}
	runners := experiments.All()
	if *runID != "" {
		r, ok := experiments.ByID(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown ID %q (known: %s)\n",
				*runID, strings.Join(experiments.IDs(), ", "))
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Printf("### %s\n\n%s\n\n", res.ID, res.Caption)
			for _, t := range res.Tables {
				fmt.Println(t.Markdown())
			}
		} else {
			fmt.Print(res.Render())
		}
		fmt.Printf("(%s finished in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
