module badmod

go 1.24
