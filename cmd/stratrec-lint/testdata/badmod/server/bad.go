// Package server is the vettool smoke-test corpus: three known
// violations at pinned lines — the smoke test asserts the exact
// file:line diagnostics go vet relays. Edit with care: line numbers are
// load-bearing (see cmd/stratrec-lint/main_test.go).
package server

import (
	"errors"
	"expvar"
	"time"
)

var ErrClosed = errors.New("closed")

func stamp() time.Time {
	return time.Now()
}

func closed(err error) bool {
	return err == ErrClosed
}

func metrics() {
	m := new(expvar.Map).Init()
	m.Set("Bad-Name", new(expvar.Int))
}
