// Command stratrec-lint is the multichecker for stratrec's
// domain-specific analyzers (internal/lint): loopsafety, ackorder,
// clockdiscipline, floatdet, errvocab, metricname.
//
// Two drive modes:
//
//	stratrec-lint [packages]         standalone; defaults to ./...
//	go vet -vettool=stratrec-lint    as a vet tool (unitchecker protocol)
//
// Standalone mode loads packages through the go command and prints
// diagnostics as file:line:col: analyzer: message. In vettool mode go
// vet invokes the binary once per package with a JSON config file;
// diagnostics go to stderr in vet's format. Exit status is 0 when
// clean, 2 on findings — matching go vet.
package main

import (
	"fmt"
	"os"
	"strings"

	"stratrec/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The unitchecker handshake: go vet probes the tool's version and
	// flags before using it.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			// Any stable line naming the tool is accepted as a version.
			fmt.Println("stratrec-lint version 1 (analyzers: " + analyzerNames() + ")")
			return 0
		case args[0] == "-flags":
			// No tool-specific flags are exposed to vet.
			fmt.Println("[]")
			return 0
		case args[0] == "help":
			printHelp()
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			exit, err := lint.RunUnit(args[0], lint.All())
			if err != nil {
				fmt.Fprintln(os.Stderr, "stratrec-lint:", err)
				if exit == 0 {
					exit = 1
				}
			}
			return exit
		}
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stratrec-lint:", err)
		return 1
	}
	found := false
	for _, target := range targets {
		diags, err := lint.Run(target, lint.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "stratrec-lint:", err)
			return 1
		}
		for _, d := range diags {
			found = true
			fmt.Println(d.String())
		}
	}
	if found {
		return 2
	}
	return 0
}

func analyzerNames() string {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ",")
}

func printHelp() {
	fmt.Println("stratrec-lint statically enforces stratrec's runtime contracts.")
	fmt.Println()
	fmt.Println("Usage:")
	fmt.Println("  stratrec-lint [packages]              lint packages (default ./...)")
	fmt.Println("  go vet -vettool=$(which stratrec-lint) ./...")
	fmt.Println()
	for _, a := range lint.All() {
		fmt.Println(a.Doc)
		fmt.Println()
	}
	fmt.Println("Suppress a finding with a justified directive on or above the line:")
	fmt.Println("  //lint:allow <name>[,<name>] -- <reason>")
}
