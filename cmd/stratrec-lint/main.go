// Command stratrec-lint is the multichecker for stratrec's
// domain-specific analyzers (internal/lint): loopsafety, ackorder,
// snapshotimmut, walexhaustive, allocbound, clockdiscipline, floatdet,
// errvocab, metricname.
//
// Two drive modes:
//
//	stratrec-lint [-json file] [packages]    standalone; defaults to ./...
//	go vet -vettool=stratrec-lint            as a vet tool (unitchecker protocol)
//
// Standalone mode loads packages through the go command and prints
// diagnostics as file:line:col: analyzer: message; -json additionally
// writes the findings as a machine-readable report for CI artifacts. In
// vettool mode go vet invokes the binary once per package with a JSON
// config file; diagnostics go to stderr in vet's format. Exit status is
// 0 when clean, 2 on findings — matching go vet.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"stratrec/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json report: the analyzer roster makes a clean run
// distinguishable from a run where an analyzer silently did not load.
type jsonReport struct {
	Analyzers []string      `json:"analyzers"`
	Packages  []string      `json:"packages"`
	Findings  []jsonFinding `json:"findings"`
}

func run(args []string) int {
	// The unitchecker handshake: go vet probes the tool's version and
	// flags before using it.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			// Any stable line naming the tool is accepted as a version.
			fmt.Println("stratrec-lint version 1 (analyzers: " + analyzerNames() + ")")
			return 0
		case args[0] == "-flags":
			// No tool-specific flags are exposed to vet.
			fmt.Println("[]")
			return 0
		case args[0] == "help":
			printHelp()
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			exit, err := lint.RunUnit(args[0], lint.All())
			if err != nil {
				fmt.Fprintln(os.Stderr, "stratrec-lint:", err)
				if exit == 0 {
					exit = 1
				}
			}
			return exit
		}
	}

	jsonPath := ""
	patterns := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-json" || args[i] == "--json":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "stratrec-lint: -json requires a file argument")
				return 1
			}
			i++
			jsonPath = args[i]
		case strings.HasPrefix(args[i], "-json="):
			jsonPath = args[i][len("-json="):]
		default:
			patterns = append(patterns, args[i])
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stratrec-lint:", err)
		return 1
	}
	report := jsonReport{
		Analyzers: strings.Split(analyzerNames(), ","),
		Findings:  []jsonFinding{},
	}
	found := false
	for _, target := range targets {
		report.Packages = append(report.Packages, target.PkgPath)
		diags, err := lint.Run(target, lint.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "stratrec-lint:", err)
			return 1
		}
		for _, d := range diags {
			found = true
			fmt.Println(d.String())
			report.Findings = append(report.Findings, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "stratrec-lint:", err)
			return 1
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "stratrec-lint:", err)
			return 1
		}
	}
	if found {
		return 2
	}
	return 0
}

func analyzerNames() string {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ",")
}

func printHelp() {
	fmt.Println("stratrec-lint statically enforces stratrec's runtime contracts.")
	fmt.Println()
	fmt.Println("Usage:")
	fmt.Println("  stratrec-lint [-json report.json] [packages]   lint packages (default ./...)")
	fmt.Println("  go vet -vettool=$(which stratrec-lint) ./...")
	fmt.Println()
	for _, a := range lint.All() {
		fmt.Println(a.Doc)
		fmt.Println()
	}
	fmt.Println("Suppress a finding with a justified directive on or above the line;")
	fmt.Println("a directive on its own line before a block covers the whole block:")
	fmt.Println("  //lint:allow <name>[,<name>] -- <reason>")
}
