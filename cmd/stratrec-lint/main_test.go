package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the vettool once per test binary run.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "stratrec-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building stratrec-lint: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolSmoke runs the real `go vet -vettool=` pipeline — version
// handshake, per-package cfg files, exit status — against the known-bad
// testdata module and asserts the exact diagnostics, file:line included.
func TestVettoolSmoke(t *testing.T) {
	bin := buildTool(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	runErr := cmd.Run()
	if runErr == nil {
		t.Fatalf("go vet on badmod succeeded; want findings\n%s", out.String())
	}

	// Normalize: strip the "# badmod/server" header and the dir prefix so
	// assertions pin file:line:col + message, not the checkout path.
	var got []string
	for _, line := range strings.Split(out.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "exit status") {
			continue
		}
		line = strings.TrimPrefix(line, dir+string(os.PathSeparator))
		got = append(got, line)
	}

	want := []string{
		"server" + string(os.PathSeparator) + "bad.go:16:9: time.Now reads the wall clock: use the injected clock (Config.Now / tenant now) so behavior is reproducible under a fake clock, or annotate `//lint:allow clockdiscipline -- reason`",
		"server" + string(os.PathSeparator) + "bad.go:20:13: error compared with ==: wrapped sentinels (fmt.Errorf %w, custom Unwrap) make identity comparison silently false — use errors.Is",
		"server" + string(os.PathSeparator) + "bad.go:25:8: expvar key \"Bad-Name\" does not match ^[a-z][a-z0-9_]*$: the Prometheus rendering of the metrics tree (stratrec_* families) cannot carry it",
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostics:\ngot  %q\nwant %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\ngot  %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestVettoolHandshake covers the unitchecker probe calls go vet makes
// before trusting the tool.
func TestVettoolHandshake(t *testing.T) {
	bin := buildTool(t)
	for _, probe := range []struct{ arg, wantPrefix string }{
		{"-V=full", "stratrec-lint version"},
		{"-flags", "[]"},
	} {
		out, err := exec.Command(bin, probe.arg).Output()
		if err != nil {
			t.Fatalf("%s %s: %v", bin, probe.arg, err)
		}
		if !strings.HasPrefix(string(out), probe.wantPrefix) {
			t.Errorf("%s => %q, want prefix %q", probe.arg, out, probe.wantPrefix)
		}
	}
}

// capture runs fn with stdout and stderr redirected and returns both.
func capture(t *testing.T, fn func()) (stdout, stderr string) {
	t.Helper()
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	errR, errW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	savedOut, savedErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = outW, errW
	defer func() { os.Stdout, os.Stderr = savedOut, savedErr }()
	outC := make(chan string)
	errC := make(chan string)
	go func() { var b bytes.Buffer; b.ReadFrom(outR); outC <- b.String() }()
	go func() { var b bytes.Buffer; b.ReadFrom(errR); errC <- b.String() }()
	fn()
	outW.Close()
	errW.Close()
	return <-outC, <-errC
}

// TestRunHandshakeInProcess drives run() directly through the probe and
// help arguments.
func TestRunHandshakeInProcess(t *testing.T) {
	for _, tc := range []struct {
		args       []string
		wantPrefix string
	}{
		{[]string{"-V=full"}, "stratrec-lint version"},
		{[]string{"-V"}, "stratrec-lint version"},
		{[]string{"-flags"}, "[]"},
		{[]string{"help"}, "stratrec-lint statically enforces"},
	} {
		var exit int
		stdout, _ := capture(t, func() { exit = run(tc.args) })
		if exit != 0 {
			t.Errorf("run(%v) = %d, want 0", tc.args, exit)
		}
		if !strings.HasPrefix(stdout, tc.wantPrefix) {
			t.Errorf("run(%v) stdout %q, want prefix %q", tc.args, stdout, tc.wantPrefix)
		}
	}
	if !strings.Contains(analyzerNames(), "ackorder") {
		t.Errorf("analyzerNames() = %q, missing ackorder", analyzerNames())
	}
}

// TestRunStandaloneInProcess drives run() in standalone mode over the
// bad module: default ./... patterns, findings on stdout, exit 2.
func TestRunStandaloneInProcess(t *testing.T) {
	t.Chdir(filepath.Join("testdata", "badmod"))
	var exit int
	stdout, _ := capture(t, func() { exit = run(nil) })
	if exit != 2 {
		t.Fatalf("run() in badmod = %d, want 2\n%s", exit, stdout)
	}
	for _, want := range []string{
		"bad.go:16:9: clockdiscipline:",
		"bad.go:20:13: errvocab:",
		"bad.go:25:8: metricname:",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// TestRunErrorsInProcess: a cfg file that cannot be read and a pattern
// that matches nothing both exit nonzero with a message on stderr.
func TestRunErrorsInProcess(t *testing.T) {
	t.Chdir(filepath.Join("testdata", "badmod"))
	var exit int
	_, stderr := capture(t, func() {
		exit = run([]string{filepath.Join(t.TempDir(), "absent.cfg")})
	})
	if exit == 0 || !strings.Contains(stderr, "stratrec-lint:") {
		t.Errorf("missing cfg: exit %d, stderr %q", exit, stderr)
	}
	_, stderr = capture(t, func() { exit = run([]string{"./no-such-dir"}) })
	if exit == 0 || !strings.Contains(stderr, "stratrec-lint:") {
		t.Errorf("bad pattern: exit %d, stderr %q", exit, stderr)
	}
}

// TestRunJSONReport: -json writes the machine-readable report CI
// uploads, mirroring the text findings.
func TestRunJSONReport(t *testing.T) {
	t.Chdir(filepath.Join("testdata", "badmod"))
	reportPath := filepath.Join(t.TempDir(), "lint-report.json")
	var exit int
	capture(t, func() { exit = run([]string{"-json", reportPath, "./..."}) })
	if exit != 2 {
		t.Fatalf("run(-json) in badmod = %d, want 2", exit)
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var report jsonReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if len(report.Analyzers) != len(strings.Split(analyzerNames(), ",")) {
		t.Errorf("report names %d analyzers, want the full roster %q", len(report.Analyzers), analyzerNames())
	}
	wantAnalyzers := []string{"clockdiscipline", "errvocab", "metricname"}
	if len(report.Findings) != len(wantAnalyzers) {
		t.Fatalf("report has %d findings, want %d:\n%s", len(report.Findings), len(wantAnalyzers), data)
	}
	for i, f := range report.Findings {
		if f.Analyzer != wantAnalyzers[i] {
			t.Errorf("finding %d analyzer = %q, want %q", i, f.Analyzer, wantAnalyzers[i])
		}
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("finding %d incomplete: %+v", i, f)
		}
	}
}

// TestStandaloneCleanTree: the repo's own tree must stay free of
// unsuppressed diagnostics — the acceptance bar the CI lint job holds.
func TestStandaloneCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole tree")
	}
	bin := buildTool(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("stratrec-lint ./... on the repo tree: %v\n%s", err, out)
	}
	if len(bytes.TrimSpace(out)) != 0 {
		t.Fatalf("unexpected output on clean tree:\n%s", out)
	}
}
