module stratrec

go 1.24
