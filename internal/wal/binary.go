package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary record framing — format version 3.
//
// A v3 record is a length-prefixed, CRC32-C-framed binary frame:
//
//	offset  size  field
//	0       1     magic 0xB3
//	1       4     payload length n (uint32, little-endian)
//	5       4     CRC32-C of the payload (uint32, little-endian)
//	9       n     payload
//
// and the payload is a fixed-order field encoding of Record:
//
//	version   byte (3)
//	kind      byte (1 = submit, 2 = revoke, 3 = availability)
//	seq       uvarint
//	epoch     uvarint
//	flags     byte (bit 0 = infeasible)
//	—— then per kind ——
//	submit        id (uvarint length + bytes), quality/cost/latency
//	              (float64 bits, little-endian), k (uvarint),
//	              sub (uvarint), req (float64 bits, little-endian)
//	revoke        id (uvarint length + bytes)
//	availability  w (float64 bits, little-endian)
//
// JSON frames (v1/v2) start with a lowercase-hex CRC digit, so the first
// byte of every record cleanly discriminates the two framings and a single
// segment may mix them — which is exactly what the v2→v3 upgrade boundary
// leaves behind: a segment with a JSON prefix and a binary tail.

const (
	// magicV3 opens every binary frame.
	magicV3 = 0xB3
	// binHeaderSize is magic + payload length (u32 LE) + CRC32-C (u32 LE).
	binHeaderSize = 9
	// maxBinaryPayload bounds the length field. Records are tiny — an ID
	// plus a handful of scalars — so a frame claiming a megabyte-plus
	// payload is corruption, and bounding it keeps recovery from trusting
	// a garbage length into a giant read.
	maxBinaryPayload = 1 << 20
)

// Binary kind codes.
const (
	binKindSubmit       = 1
	binKindRevoke       = 2
	binKindAvailability = 3
)

// flagInfeasible marks a submit whose aggregated requirement was +Inf at
// admission (Record.Infeasible); unlike JSON, the binary encoding could
// carry +Inf directly, but the flag is kept so the two formats describe
// the same logical record schema.
const flagInfeasible = 1 << 0

func binKindOf(kind string) (byte, bool) {
	switch kind {
	case KindSubmit:
		return binKindSubmit, true
	case KindRevoke:
		return binKindRevoke, true
	case KindAvailability:
		return binKindAvailability, true
	}
	return 0, false
}

// AppendRecordBinary appends rec's v3 binary frame to dst and returns the
// extended slice — the Append hot path reuses one scratch buffer this way,
// so encoding a record allocates nothing. The frame always carries
// FormatVersion regardless of rec.V. It panics on an unknown kind;
// EncodeRecordBinary is the validating wrapper.
func AppendRecordBinary(dst []byte, rec Record) []byte {
	kb, ok := binKindOf(rec.Kind)
	if !ok {
		panic(fmt.Sprintf("wal: AppendRecordBinary: unknown kind %q", rec.Kind))
	}
	start := len(dst)
	dst = append(dst, magicV3, 0, 0, 0, 0, 0, 0, 0, 0)
	p := len(dst)
	dst = append(dst, FormatVersion, kb)
	dst = binary.AppendUvarint(dst, rec.Seq)
	dst = binary.AppendUvarint(dst, rec.Epoch)
	var flags byte
	if rec.Infeasible {
		flags |= flagInfeasible
	}
	dst = append(dst, flags)
	switch kb {
	case binKindSubmit:
		dst = appendBinString(dst, rec.ID)
		dst = appendBinFloat(dst, rec.Quality)
		dst = appendBinFloat(dst, rec.Cost)
		dst = appendBinFloat(dst, rec.Latency)
		dst = binary.AppendUvarint(dst, uint64(rec.K))
		dst = binary.AppendUvarint(dst, rec.Sub)
		dst = appendBinFloat(dst, rec.Req)
	case binKindRevoke:
		dst = appendBinString(dst, rec.ID)
	case binKindAvailability:
		dst = appendBinFloat(dst, rec.W)
	}
	payload := dst[p:]
	binary.LittleEndian.PutUint32(dst[start+1:start+5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+5:start+9], crc32.Checksum(payload, castagnoli))
	return dst
}

// EncodeRecordBinary renders one framed v3 binary record.
func EncodeRecordBinary(rec Record) ([]byte, error) {
	if _, ok := binKindOf(rec.Kind); !ok {
		return nil, fmt.Errorf("%w: %q", ErrKind, rec.Kind)
	}
	return AppendRecordBinary(nil, rec), nil
}

// DecodeRecordBinary parses one binary frame from the front of data,
// returning the record and the number of bytes the frame occupies (so the
// scan loop can step over it — binary frames have no line separator).
// Errors are typed exactly like the JSON decoder's: ErrTorn when data
// ends mid-frame (the one fault a crash legitimately produces), ErrCRC
// for framing or checksum corruption, ErrVersion/ErrKind for CRC-valid
// payloads this build does not speak. FuzzWALDecodeV3 hammers this
// surface: any input must yield a record or a typed error, never a panic.
func DecodeRecordBinary(data []byte) (Record, int, error) {
	if len(data) == 0 {
		return Record{}, 0, fmt.Errorf("%w: empty frame", ErrTorn)
	}
	if data[0] != magicV3 {
		return Record{}, 0, fmt.Errorf("%w: not a binary frame (first byte %#02x)", ErrCRC, data[0])
	}
	if len(data) < binHeaderSize {
		return Record{}, 0, fmt.Errorf("%w: %d-byte frame header", ErrTorn, len(data))
	}
	n := binary.LittleEndian.Uint32(data[1:5])
	if n > maxBinaryPayload {
		return Record{}, 0, fmt.Errorf("%w: implausible payload length %d", ErrCRC, n)
	}
	total := binHeaderSize + int(n)
	if len(data) < total {
		return Record{}, 0, fmt.Errorf("%w: %d of %d payload bytes", ErrTorn, len(data)-binHeaderSize, n)
	}
	payload := data[binHeaderSize:total]
	if want, got := binary.LittleEndian.Uint32(data[5:9]), crc32.Checksum(payload, castagnoli); got != want {
		return Record{}, 0, fmt.Errorf("%w: want %08x, got %08x", ErrCRC, want, got)
	}
	rec, err := decodeBinPayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, total, nil
}

// decodeBinPayload parses a CRC-verified payload. Violations past this
// point are not transit corruption (the CRC held) but frames written by a
// different or buggy encoder, so they report ErrVersion/ErrKind.
func decodeBinPayload(p []byte) (Record, error) {
	var rec Record
	if len(p) < 2 {
		return rec, fmt.Errorf("%w: %d-byte payload", ErrKind, len(p))
	}
	if p[0] != FormatVersion {
		return rec, fmt.Errorf("%w: binary frame version %d (this build reads %d)", ErrVersion, p[0], FormatVersion)
	}
	rec.V = FormatVersion
	kb := p[1]
	p = p[2:]
	var ok bool
	if rec.Seq, p, ok = readBinUvarint(p); !ok {
		return rec, fmt.Errorf("%w: bad seq varint", ErrKind)
	}
	if rec.Epoch, p, ok = readBinUvarint(p); !ok {
		return rec, fmt.Errorf("%w: bad epoch varint", ErrKind)
	}
	if len(p) < 1 {
		return rec, fmt.Errorf("%w: missing flags byte", ErrKind)
	}
	flags := p[0]
	p = p[1:]
	if flags&^byte(flagInfeasible) != 0 {
		return rec, fmt.Errorf("%w: unknown flag bits %#02x", ErrKind, flags)
	}
	rec.Infeasible = flags&flagInfeasible != 0
	switch kb {
	case binKindSubmit:
		rec.Kind = KindSubmit
		if rec.ID, p, ok = readBinString(p); !ok {
			return rec, fmt.Errorf("%w: bad submit id", ErrKind)
		}
		if rec.Quality, p, ok = readBinFloat(p); !ok {
			return rec, fmt.Errorf("%w: bad quality", ErrKind)
		}
		if rec.Cost, p, ok = readBinFloat(p); !ok {
			return rec, fmt.Errorf("%w: bad cost", ErrKind)
		}
		if rec.Latency, p, ok = readBinFloat(p); !ok {
			return rec, fmt.Errorf("%w: bad latency", ErrKind)
		}
		var k uint64
		if k, p, ok = readBinUvarint(p); !ok || k > math.MaxInt32 {
			return rec, fmt.Errorf("%w: bad k", ErrKind)
		}
		rec.K = int(k)
		if rec.Sub, p, ok = readBinUvarint(p); !ok {
			return rec, fmt.Errorf("%w: bad sub varint", ErrKind)
		}
		if rec.Req, p, ok = readBinFloat(p); !ok {
			return rec, fmt.Errorf("%w: bad req", ErrKind)
		}
	case binKindRevoke:
		rec.Kind = KindRevoke
		if rec.ID, p, ok = readBinString(p); !ok {
			return rec, fmt.Errorf("%w: bad revoke id", ErrKind)
		}
	case binKindAvailability:
		rec.Kind = KindAvailability
		if rec.W, p, ok = readBinFloat(p); !ok {
			return rec, fmt.Errorf("%w: bad w", ErrKind)
		}
	default:
		return rec, fmt.Errorf("%w: binary kind code %d", ErrKind, kb)
	}
	if len(p) != 0 {
		return rec, fmt.Errorf("%w: %d trailing payload bytes", ErrKind, len(p))
	}
	return rec, nil
}

func appendBinString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBinFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func readBinUvarint(p []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, false
	}
	// Reject non-minimal encodings (a trailing zero continuation group):
	// every value has exactly one frame, so decode-then-re-encode is
	// byte-identical — the property FuzzWALDecodeV3 holds the codec to.
	if n > 1 && p[n-1] == 0 {
		return 0, nil, false
	}
	return v, p[n:], true
}

func readBinString(p []byte) (string, []byte, bool) {
	n, rest, ok := readBinUvarint(p)
	if !ok || n > uint64(len(rest)) {
		return "", nil, false
	}
	return string(rest[:n]), rest[n:], true
}

func readBinFloat(p []byte) (float64, []byte, bool) {
	if len(p) < 8 {
		return 0, nil, false
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p)), p[8:], true
}
