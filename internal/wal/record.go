// Package wal is the durability subsystem behind stratrec serve: a
// per-tenant append-only write-ahead log of stream events plus periodic
// snapshot checkpoints, so a tenant's open requests, availability, plan
// epoch and submission counter survive a crash or restart.
//
// # On-disk layout
//
// One directory per tenant:
//
//	<data-dir>/<tenant>/
//	    wal-00000000000000000001.log    log segment (first seq it holds)
//	    wal-00000000000000000421.log    current segment, open for append
//	    checkpoint-00000000000000000420.ckpt
//
// A log segment is a sequence of framed records in one of two framings.
// New records are written in the v3 binary framing (see binary.go):
//
//	<0xB3> <payload len, u32 LE> <crc32c, u32 LE> <payload>
//
// Older segments — and the head of the segment that was live at the
// v2→v3 upgrade — hold the v1/v2 JSON framing, one record per line:
//
//	<crc32c hex, 8 chars> <space> <JSON payload> <newline>
//
// The first byte discriminates the framings (JSON frames start with a
// lowercase-hex digit, never 0xB3), so one segment may mix them and the
// scan handles the upgrade boundary without a migration step. In both
// framings the CRC covers exactly the payload bytes, so any torn or
// corrupted record is detected before it is trusted. Payloads are
// versioned (Record.V) and carry a log-wide monotonically increasing
// sequence number assigned at append time; recovery rejects gaps and
// regressions, and tolerates exactly one torn record at the very tail of
// the last segment (the unacknowledged write a crash can leave behind),
// which is truncated away before the log reopens for append.
//
// A checkpoint file is a single framed line whose payload is a Checkpoint:
// the full tenant state (open requests in admission order with their
// submission sequence numbers, availability, plan epoch, submission
// counter) as of WAL sequence number Seq. Writing a checkpoint rotates the
// log onto a fresh segment and deletes every segment and checkpoint made
// obsolete by it, which is how the log is truncated.
//
// # Fault model
//
// Append durability is governed by Options.SyncEvery: with the default of
// 1 every record is fsynced before Append returns, so an acknowledged
// mutation is never lost; larger batches trade the tail of the batch for
// throughput. Checkpoint writes go through a temp file, fsync, and
// atomic rename, and segment deletion happens only after the checkpoint
// is durable — a crash at any point leaves either the old
// checkpoint+segments or the new ones, never neither.
//
// # Ordering under coalesced replans
//
// The serving tenant loop drains up to a batch of pending mutations,
// applies them through the stream manager and appends one record per
// mutation, in apply order, before the batch's single snapshot publish
// and before any reply is sent: acknowledged ⇒ logged (⇒ fsynced at the
// default sync policy) holds per mutation regardless of batch size. Two
// per-record integrity anchors survive coalescing because neither
// depends on when the plan was repaired: Record.Epoch is the
// pool-generation counter (exactly one step per applied mutation), and
// submit records carry the requirement fingerprint computed at
// admission. Replay applies records one at a time and verifies both.
package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// FormatVersion is the record/checkpoint payload version. Decoders reject
// other versions loudly instead of guessing.
//
// Version history:
//
//	1 — PR 4: epoch bumped only on serving-set changes; no requirement
//	    fingerprint. A v1 log's epoch trail is meaningless under the v2
//	    semantics, so v2 readers reject v1 records outright rather than
//	    reporting a spurious (or, worse, missing) epoch divergence.
//	2 — epoch is a pool-generation counter (one step per applied
//	    mutation, serving-set change or not), and submit records carry
//	    the admitted request's computed workforce requirement as a
//	    recovery fingerprint.
//	3 — same record schema as v2, binary framing (binary.go): no JSON
//	    on the append or replay hot path. v2 JSON records remain
//	    readable forever; v2 and v3 records may share a segment.
const FormatVersion = 3

// jsonFormatVersion is the newest JSON-framed record version this build
// still reads. v3 records are binary-only, so a CRC-valid JSON payload
// claiming v3 was not written by any released encoder and is rejected.
const jsonFormatVersion = 2

// Record kinds mirror the three mutations of a stream.Manager.
const (
	KindSubmit       = "submit"
	KindRevoke       = "revoke"
	KindAvailability = "availability"
)

// Record is one logged mutation. Only successful mutations are logged —
// rejected ones (validation errors, duplicate IDs, unknown IDs) never
// change state, so replaying the log can never hit an expected error.
type Record struct {
	// V is the payload format version (FormatVersion).
	V int `json:"v"`
	// Seq is the log-wide monotonic sequence number, assigned by Append.
	Seq uint64 `json:"seq"`
	// Kind is KindSubmit, KindRevoke or KindAvailability.
	Kind string `json:"kind"`
	// ID is the affected request (submit, revoke).
	ID string `json:"id,omitempty"`
	// Quality, Cost, Latency, K describe the submitted request.
	Quality float64 `json:"quality,omitempty"`
	Cost    float64 `json:"cost,omitempty"`
	Latency float64 `json:"latency,omitempty"`
	K       int     `json:"k,omitempty"`
	// Sub is the manager's submission sequence number assigned to a
	// submit — the reqIdx of the workforce.ModelProvider contract —
	// persisted so recovery re-admits the request under its original
	// model row.
	Sub uint64 `json:"sub,omitempty"`
	// W is the new expected workforce (availability).
	W float64 `json:"w,omitempty"`
	// Epoch is the pool-generation counter after the mutation was
	// applied: one step per applied mutation, whether or not the serving
	// set moved, which makes it independent of how mutations were
	// coalesced into replan batches. Recovery replays the record and
	// verifies it reaches exactly this epoch, checking that no logged
	// mutation was lost, duplicated or reordered.
	Epoch uint64 `json:"epoch"`
	// Req is the admitted request's aggregated workforce requirement as
	// computed at the original admission (submit records of feasible
	// requests; Infeasible marks the rest, since JSON cannot carry +Inf).
	// It fingerprints the catalog, the models, the aggregation mode and
	// the submission sequence: recovery recomputes the requirement and
	// demands bit-identity, so replaying a log against the wrong tenant
	// universe fails loudly at the first submit instead of rebuilding a
	// silently different plan.
	Req        float64 `json:"req,omitempty"`
	Infeasible bool    `json:"infeasible,omitempty"`
}

// Decode errors. ErrTorn marks frames that end mid-record (the one fault
// a crash legitimately produces); the others mark corruption.
var (
	ErrTorn    = errors.New("wal: torn record")
	ErrCRC     = errors.New("wal: CRC mismatch")
	ErrVersion = errors.New("wal: unsupported record version")
	ErrKind    = errors.New("wal: unknown record kind")
)

// castagnoli is the CRC32-C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameOverhead is the framed-line size beyond the payload: 8 hex CRC
// chars, one space, one newline.
const frameOverhead = 10

// appendFrame appends the framed encoding of payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = fmt.Appendf(dst, "%08x ", crc32.Checksum(payload, castagnoli))
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// EncodeRecord renders one JSON-framed log line for the record — the
// v1/v2 framing. The live append path writes binary v3 frames
// (AppendRecordBinary); this encoder remains for tests and tools that
// fabricate upgrade-era logs.
func EncodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return appendFrame(make([]byte, 0, len(payload)+frameOverhead), payload), nil
}

// decodeFrame verifies one framed line (without its trailing newline) and
// returns the JSON payload. The caller decides what the payload is.
func decodeFrame(line []byte) ([]byte, error) {
	if len(line) < frameOverhead-1 { // shorter than CRC + space + "{}" can't be whole
		return nil, fmt.Errorf("%w: %d-byte frame", ErrTorn, len(line))
	}
	if line[8] != ' ' {
		return nil, fmt.Errorf("%w: malformed frame header", ErrCRC)
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, fmt.Errorf("%w: unparsable CRC: %v", ErrCRC, err)
	}
	payload := line[9:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: want %08x, got %08x", ErrCRC, want, got)
	}
	return payload, nil
}

// DecodeRecord parses and verifies one JSON-framed log line (with or
// without its trailing newline) — the v1/v2 framing the scan falls back
// to for lines that do not open with the binary magic byte. It is the
// surface FuzzWALDecode hammers: any input must either yield a valid
// record or a typed error, never a panic or a silently wrong record.
func DecodeRecord(line []byte) (Record, error) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	payload, err := decodeFrame(line)
	if err != nil {
		return Record{}, err
	}
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		// The CRC matched, so this is not corruption in transit but a
		// frame written by something else entirely.
		return Record{}, fmt.Errorf("%w: CRC-valid frame with bad payload: %v", ErrKind, err)
	}
	if rec.V != jsonFormatVersion {
		return Record{}, fmt.Errorf("%w: JSON frame version %d (this build reads v%d JSON and v%d binary)",
			ErrVersion, rec.V, jsonFormatVersion, FormatVersion)
	}
	switch rec.Kind {
	case KindSubmit, KindRevoke, KindAvailability:
	default:
		return Record{}, fmt.Errorf("%w: %q", ErrKind, rec.Kind)
	}
	return rec, nil
}
