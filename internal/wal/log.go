package wal

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
)

// ErrLocked reports a directory whose log another live process holds
// open.
var ErrLocked = errors.New("wal: directory is locked by another process")

// ErrSequence marks a log whose record sequence numbers are not the
// contiguous, strictly increasing run the appender writes — corruption
// that recovery refuses to paper over.
var ErrSequence = errors.New("wal: broken record sequence")

// Options tunes a Log.
type Options struct {
	// SyncEvery fsyncs the segment after every n-th appended record.
	// The default (0 or 1) syncs every append: an acknowledged mutation
	// is durable before the caller replies. Larger values batch fsyncs,
	// trading the last <n records on a crash for append throughput.
	SyncEvery int
	// SyncManual disables the count-based fsync policy entirely: Append
	// only buffers, and the owner decides when records become durable by
	// calling Sync. This is the group-commit mode — the server's commit
	// scheduler syncs once per coalesced batch (possibly shared across
	// tenants), and the tenant loop acknowledges nothing before that
	// Sync returns. SyncEvery is ignored when set.
	SyncManual bool
	// TestSyncHook, when non-nil, runs at the start of every fsync batch,
	// before the buffered records are flushed to the file. Sleeping inside
	// models fsync latency; returning an error fails the sync (and the
	// append that triggered it) with the buffered record still unflushed —
	// the log marks itself broken and Close discards the buffer, so the
	// failed record can never resurface at recovery. Fault-injection
	// schedules for chaos/conformance testing hang off this hook;
	// production configs leave it nil.
	TestSyncHook func() error
	// TestWriteHook, when non-nil, runs at the start of every Append,
	// before the record's bytes reach the buffered writer. Returning an
	// error fails the append exactly like a disk write failure: the log
	// marks itself broken and rolls the segment back to its durable
	// prefix — destroying any records buffered (or spilled but not yet
	// fsynced) past it, which under manual sync can include earlier
	// records of the same coalesced batch. That rollback is precisely
	// the hazard the hook exists to exercise: TestSyncHook never fires
	// inside a manual-sync Append, so append-path failures need their
	// own injection point. Production configs leave it nil.
	TestWriteHook func() error
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	return o
}

// Recovered is the result of scanning a tenant's log directory: the state
// to rebuild (checkpoint + tail) and what the scan observed.
type Recovered struct {
	// Checkpoint is the newest decodable checkpoint, nil when none.
	Checkpoint *Checkpoint
	// Tail holds the records after the checkpoint, in sequence order.
	Tail []Record
	// LastSeq is the last durable sequence number (the checkpoint's when
	// the tail is empty, 0 for a fresh directory).
	LastSeq uint64
	// TornBytes counts bytes dropped from the tail of the last segment —
	// the single torn record an interrupted append may leave.
	TornBytes int
	// Segments is the number of segment files scanned.
	Segments int
}

// scanState carries what Open needs beyond Recovered to resume appending.
type scanState struct {
	rec Recovered
	// lastSegPath is the segment to keep appending to ("" when a fresh
	// segment must be created); lastSegFirst is its name's first seq.
	lastSegPath  string
	lastSegFirst uint64
	// validOffset is the byte offset of the end of the last intact record
	// in lastSegPath; everything after it is torn and must be truncated.
	validOffset int64
	// needNewline is set when the last intact record's trailing newline
	// itself was lost (CRC-complete line at EOF without '\n').
	needNewline bool
}

// Scan reads a tenant's log directory without modifying it: newest valid
// checkpoint, replay tail, torn-tail accounting. `stratrec recover` uses
// it for read-only inspection; Open builds on it.
func Scan(dir string) (Recovered, error) {
	st, err := scan(dir)
	return st.rec, err
}

func scan(dir string) (scanState, error) {
	var st scanState
	segs, ckpts, err := listDir(dir)
	if err != nil {
		return st, err
	}
	cp, err := latestCheckpoint(dir, ckpts)
	if err != nil {
		return st, err
	}
	st.rec.Checkpoint = cp
	var cpSeq uint64
	if cp != nil {
		cpSeq = cp.Seq
	}
	st.rec.LastSeq = cpSeq

	want := cpSeq + 1 // next tail sequence number we accept
	for si, first := range segs {
		path := filepath.Join(dir, segmentName(first))
		last := si == len(segs)-1
		if last {
			st.lastSegPath = path
			st.lastSegFirst = first
			st.validOffset = 0
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return st, err
		}
		st.rec.Segments++
		off := int64(0)
		for off < int64(len(data)) {
			// The first byte discriminates the framings: 0xB3 opens a v3
			// binary frame, a hex digit opens a v1/v2 JSON line. A segment
			// may mix them — the upgrade restart appends binary records
			// after the JSON head the old binary wrote.
			var (
				rec  Record
				derr error
				size int64
			)
			if data[off] == magicV3 {
				r, n, e := DecodeRecordBinary(data[off:])
				rec, derr, size = r, e, int64(n)
			} else {
				nl := bytes.IndexByte(data[off:], '\n')
				var line []byte
				complete := nl >= 0
				if complete {
					line = data[off : off+int64(nl)]
					size = int64(nl) + 1
				} else {
					line = data[off:]
					size = int64(len(data)) - off
				}
				rec, derr = DecodeRecord(line)
				if derr == nil && !complete && last {
					// CRC-complete record that lost only its newline: keep
					// it, but remember to restore the separator before
					// appending (a binary frame written straight after it
					// would otherwise fuse with the line and corrupt both).
					st.needNewline = true
				}
			}
			if derr != nil {
				if last && !validRecordFollows(data, off) {
					// The one legitimate fault: a torn append at the very
					// tail — an unreadable final record with nothing valid
					// after it. Everything before it is intact.
					st.rec.TornBytes = len(data) - int(off)
					return st, nil
				}
				// An unreadable record with acknowledged records after it
				// is disk corruption, not a crash artifact: refuse to
				// recover a log with a hole in it.
				return st, fmt.Errorf("wal: %s: record at offset %d: %w", segmentName(first), off, derr)
			}
			if rec.Seq > cpSeq {
				if rec.Seq != want {
					return st, fmt.Errorf("%w: %s offset %d: want seq %d, got %d",
						ErrSequence, segmentName(first), off, want, rec.Seq)
				}
				want++
				st.rec.Tail = append(st.rec.Tail, rec)
				st.rec.LastSeq = rec.Seq
			}
			off += size
			if last {
				st.validOffset = off
			}
		}
	}
	return st, nil
}

// validRecordFollows reports whether any complete, decodable record
// exists after the broken record starting at off — distinguishing a torn
// tail (nothing valid follows) from mid-log corruption (valid data
// follows). A torn binary frame gives no way to know where the next
// record would have started, so every plausible start after off is
// probed: each magic byte (binary frame) and each position following a
// newline (JSON line).
func validRecordFollows(data []byte, off int64) bool {
	for i := int(off) + 1; i < len(data); i++ {
		if data[i] == magicV3 {
			if _, _, err := DecodeRecordBinary(data[i:]); err == nil {
				return true
			}
		}
		if data[i] == '\n' && i+1 < len(data) && data[i+1] != magicV3 {
			rest := data[i+1:]
			line := rest
			if end := bytes.IndexByte(rest, '\n'); end >= 0 {
				line = rest[:end]
			}
			if _, err := DecodeRecord(line); err == nil {
				return true
			}
		}
	}
	return false
}

// Log is an open, append-ready write-ahead log for one tenant. It is not
// goroutine-safe: exactly one appender (the tenant's single-writer event
// loop) owns it. The atomic counters exist only so metrics gauges can
// read them from other goroutines.
type Log struct {
	dir  string
	opts Options

	f        *os.File
	w        *bufio.Writer
	lock     *os.File // flock-held .lock file: one live appender per dir
	pending  int      // records appended since the last fsync
	segFirst uint64   // first seq of the current segment (its name)
	enc      []byte   // reusable binary-encoding scratch (appender only)
	// logicalOff is the end of everything written to the current segment,
	// buffered bytes included; durableOff is the prefix covered by the
	// last successful fsync. Under manual sync a whole coalesced batch
	// sits between the two, and on a sync failure the segment is rolled
	// back to durableOff: every record past it belongs to mutations whose
	// callers will be told the write failed, so none of those bytes —
	// buffered or already spilled to the file by the bufio writer — may
	// survive to resurface at recovery.
	logicalOff int64
	durableOff int64
	// broken is set on the first append/sync failure. The bytes past
	// durableOff then belong to records whose appends failed — mutations
	// the callers were never acknowledged for — so the failure handler
	// discards the buffer and truncates the file back to durableOff
	// instead of flushing: flushing would make unacknowledged records
	// durable and recovery would resurrect writes the clients were told
	// were shed.
	broken bool

	seq        atomic.Uint64 // last assigned sequence number
	durableSeq atomic.Uint64 // last sequence number covered by an fsync
	appends    atomic.Uint64
	syncs      atomic.Uint64
}

// Open scans dir (creating it if needed), truncates a torn tail, and
// returns the log ready to append, together with the recovered state the
// caller must replay before accepting new mutations. Open takes an
// exclusive advisory lock (flock) on the directory, held until Close and
// released automatically if the process dies: a second live opener —
// another serve, or recover -verify against a running server — would
// otherwise truncate and interleave the live log. The read-only Scan
// deliberately does not take the lock.
func Open(dir string, opts Options) (*Log, Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovered{}, err
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, Recovered{}, err
	}
	opened := false
	defer func() {
		if !opened {
			lock.Close()
		}
	}()
	st, err := scan(dir)
	if err != nil {
		return nil, Recovered{}, err
	}
	l := &Log{dir: dir, opts: opts.withDefaults(), lock: lock}
	l.seq.Store(st.rec.LastSeq)
	l.durableSeq.Store(st.rec.LastSeq)

	if st.lastSegPath != "" {
		f, err := os.OpenFile(st.lastSegPath, os.O_RDWR, 0o644)
		if err != nil {
			return nil, Recovered{}, err
		}
		if err := f.Truncate(st.validOffset); err != nil {
			f.Close()
			return nil, Recovered{}, err
		}
		if _, err := f.Seek(st.validOffset, io.SeekStart); err != nil {
			f.Close()
			return nil, Recovered{}, err
		}
		l.f = f
		l.w = bufio.NewWriter(f)
		l.segFirst = st.lastSegFirst
		l.logicalOff = st.validOffset
		l.durableOff = st.validOffset
		if st.needNewline {
			if _, err := l.w.WriteString("\n"); err != nil {
				f.Close()
				return nil, Recovered{}, err
			}
			l.logicalOff++
		}
		if st.rec.TornBytes > 0 || st.needNewline {
			// Make the repair durable before any new append lands on top.
			if err := l.sync(); err != nil {
				f.Close()
				return nil, Recovered{}, err
			}
		}
	} else if err := l.startSegment(st.rec.LastSeq + 1); err != nil {
		return nil, Recovered{}, err
	}
	opened = true
	return l, st.rec, nil
}

// acquireLock takes a non-blocking exclusive flock on dir/.lock. The
// kernel releases it when the holder dies, so a SIGKILLed server never
// blocks its own restart.
func acquireLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	return f, nil
}

// startSegment creates and opens a fresh segment named for the first
// sequence number it will hold.
func (l *Log) startSegment(firstSeq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(firstSeq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segFirst = firstSeq
	l.logicalOff = 0
	l.durableOff = 0
	return syncDir(l.dir)
}

// errBroken rejects every operation after the first append/sync failure.
var errBroken = errors.New("wal: log is broken after an earlier append failure")

// Append assigns the next sequence number, frames the record in the v3
// binary encoding, writes it, and fsyncs according to Options.SyncEvery.
// When Append returns with the sync boundary crossed, the record is
// durable. Under Options.SyncManual nothing is fsynced here: the record
// is durable only once a later Sync returns nil.
func (l *Log) Append(rec Record) (uint64, error) {
	rec.V = FormatVersion
	rec.Seq = l.seq.Load() + 1
	if l.broken {
		return 0, errBroken
	}
	if _, ok := binKindOf(rec.Kind); !ok {
		return 0, fmt.Errorf("%w: %q", ErrKind, rec.Kind)
	}
	if l.opts.TestWriteHook != nil {
		if err := l.opts.TestWriteHook(); err != nil {
			l.fail()
			return 0, err
		}
	}
	l.enc = AppendRecordBinary(l.enc[:0], rec)
	if _, err := l.w.Write(l.enc); err != nil {
		l.fail()
		return 0, err
	}
	l.logicalOff += int64(len(l.enc))
	l.seq.Store(rec.Seq)
	l.appends.Add(1)
	l.pending++
	if !l.opts.SyncManual && l.pending >= l.opts.SyncEvery {
		if err := l.sync(); err != nil {
			return 0, err
		}
	}
	return rec.Seq, nil
}

// Sync flushes buffered records and fsyncs the segment. Under group
// commit this is the commit point: the scheduler calls it once per
// coalesced batch, and the tenant loop acknowledges the batch's
// mutations only after it returns nil.
func (l *Log) Sync() error {
	if l.broken {
		return errBroken
	}
	if l.pending == 0 {
		return nil
	}
	return l.sync()
}

func (l *Log) sync() error {
	if l.opts.TestSyncHook != nil {
		if err := l.opts.TestSyncHook(); err != nil {
			l.fail()
			return err
		}
	}
	if err := l.w.Flush(); err != nil {
		l.fail()
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.fail()
		return err
	}
	l.pending = 0
	l.durableOff = l.logicalOff
	l.durableSeq.Store(l.seq.Load())
	l.syncs.Add(1)
	return nil
}

// fail marks the log broken and rolls the segment back to its last
// durable byte. Everything past durableOff belongs to appends whose
// callers will be told the write failed (ErrWALBroken → 503, a promise
// the mutation leaves no trace): the bufio buffer is discarded, and any
// bytes an earlier buffer spill already pushed into the file are
// truncated away — best-effort, with a best-effort fsync of the
// truncation, since the log takes no further writes either way and
// recovery's torn-tail handling covers a truncation lost to a crash.
func (l *Log) fail() {
	l.broken = true
	l.pending = 0
	l.w.Reset(l.f)
	if err := l.f.Truncate(l.durableOff); err == nil {
		l.f.Sync()
	}
	l.logicalOff = l.durableOff
}

// Checkpoint makes cp durable as of the log's current tip, rotates onto a
// fresh segment, and truncates the log: every older segment and
// checkpoint file is deleted. cp's V and Seq are filled in. It returns
// the number of segment files removed.
func (l *Log) Checkpoint(cp Checkpoint) (int, error) {
	if l.broken {
		// Flushing here would durably persist the unacknowledged record a
		// failed append left in the buffer.
		return 0, errors.New("wal: checkpoint refused on a broken log")
	}
	cp.V = FormatVersion
	cp.Seq = l.seq.Load()
	// Everything the checkpoint claims to cover must be durable first.
	// This can run mid-coalesced-batch (an auto-checkpoint between a
	// batch's appends, including under manual sync): making the batch's
	// records-so-far durable early is always safe — durable records are
	// acknowledged records — and durableOff/durableSeq advance so a later
	// group-commit failure in the same batch knows these ops survived.
	if err := l.w.Flush(); err != nil {
		l.fail()
		return 0, err
	}
	if err := l.f.Sync(); err != nil {
		l.fail()
		return 0, err
	}
	l.pending = 0
	l.durableOff = l.logicalOff
	l.durableSeq.Store(l.seq.Load())

	// Durable checkpoint first: temp file, fsync, atomic rename, dir sync.
	line, err := EncodeCheckpoint(cp)
	if err != nil {
		return 0, err
	}
	tmp := filepath.Join(l.dir, "checkpoint.tmp")
	if err := writeFileSync(tmp, line); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, checkpointName(cp.Seq))); err != nil {
		return 0, err
	}
	if err := syncDir(l.dir); err != nil {
		return 0, err
	}

	// Rotate: new segment for the records after the checkpoint — unless
	// the current segment already is that segment (a checkpoint with no
	// appends since the last rotation, e.g. an idle tenant or a repeated
	// /admin/checkpoint), in which case it is kept as-is.
	if l.segFirst != cp.Seq+1 {
		if err := l.f.Close(); err != nil {
			return 0, err
		}
		if err := l.startSegment(cp.Seq + 1); err != nil {
			return 0, err
		}
	}

	// Only now is anything older garbage.
	segs, ckpts, err := listDir(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, first := range segs {
		if first <= cp.Seq {
			if err := os.Remove(filepath.Join(l.dir, segmentName(first))); err == nil {
				removed++
			}
		}
	}
	for _, seq := range ckpts {
		if seq < cp.Seq {
			os.Remove(filepath.Join(l.dir, checkpointName(seq)))
		}
	}
	return removed, syncDir(l.dir)
}

// LastSeq returns the last assigned sequence number. Safe from any
// goroutine.
func (l *Log) LastSeq() uint64 { return l.seq.Load() }

// DurableSeq returns the last sequence number covered by a successful
// fsync — records at or below it survive a crash; records above it are
// buffered (or page-cached) only. Under the default sync policy it trails
// LastSeq by at most the in-flight append; under manual sync (group
// commit) by up to a whole coalesced batch. Safe from any goroutine.
func (l *Log) DurableSeq() uint64 { return l.durableSeq.Load() }

// Appends returns the number of records appended since Open. Safe from
// any goroutine.
func (l *Log) Appends() uint64 { return l.appends.Load() }

// Syncs returns the number of fsync batches since Open. Safe from any
// goroutine.
func (l *Log) Syncs() uint64 { return l.syncs.Load() }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Broken reports whether an append or sync has failed since Open. A
// broken log rejects further appends and Close will discard (not flush)
// whatever the failed append left buffered.
func (l *Log) Broken() bool { return l.broken }

// Close flushes, fsyncs and closes the segment, then releases the
// directory lock. A broken log is closed without flushing: the buffer
// holds the one record whose append failed — an unacknowledged mutation
// that must not become durable behind the client's back.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	var flushErr, syncErr error
	if !l.broken {
		flushErr = l.w.Flush()
		syncErr = l.f.Sync()
	}
	closeErr := l.f.Close()
	l.f = nil
	if l.lock != nil {
		l.lock.Close() // closing drops the flock
		l.lock = nil
	}
	if flushErr != nil {
		return flushErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames, creates and removes in it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	closeErr := d.Close()
	if err != nil {
		// Some filesystems refuse directory fsync; treat as best-effort.
		if errors.Is(err, os.ErrInvalid) {
			return closeErr
		}
		return err
	}
	return closeErr
}
