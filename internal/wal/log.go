package wal

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
)

// ErrLocked reports a directory whose log another live process holds
// open.
var ErrLocked = errors.New("wal: directory is locked by another process")

// ErrSequence marks a log whose record sequence numbers are not the
// contiguous, strictly increasing run the appender writes — corruption
// that recovery refuses to paper over.
var ErrSequence = errors.New("wal: broken record sequence")

// Options tunes a Log.
type Options struct {
	// SyncEvery fsyncs the segment after every n-th appended record.
	// The default (0 or 1) syncs every append: an acknowledged mutation
	// is durable before the caller replies. Larger values batch fsyncs,
	// trading the last <n records on a crash for append throughput.
	SyncEvery int
	// TestSyncHook, when non-nil, runs at the start of every fsync batch,
	// before the buffered records are flushed to the file. Sleeping inside
	// models fsync latency; returning an error fails the sync (and the
	// append that triggered it) with the buffered record still unflushed —
	// the log marks itself broken and Close discards the buffer, so the
	// failed record can never resurface at recovery. Fault-injection
	// schedules for chaos/conformance testing hang off this hook;
	// production configs leave it nil.
	TestSyncHook func() error
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	return o
}

// Recovered is the result of scanning a tenant's log directory: the state
// to rebuild (checkpoint + tail) and what the scan observed.
type Recovered struct {
	// Checkpoint is the newest decodable checkpoint, nil when none.
	Checkpoint *Checkpoint
	// Tail holds the records after the checkpoint, in sequence order.
	Tail []Record
	// LastSeq is the last durable sequence number (the checkpoint's when
	// the tail is empty, 0 for a fresh directory).
	LastSeq uint64
	// TornBytes counts bytes dropped from the tail of the last segment —
	// the single torn record an interrupted append may leave.
	TornBytes int
	// Segments is the number of segment files scanned.
	Segments int
}

// scanState carries what Open needs beyond Recovered to resume appending.
type scanState struct {
	rec Recovered
	// lastSegPath is the segment to keep appending to ("" when a fresh
	// segment must be created); lastSegFirst is its name's first seq.
	lastSegPath  string
	lastSegFirst uint64
	// validOffset is the byte offset of the end of the last intact record
	// in lastSegPath; everything after it is torn and must be truncated.
	validOffset int64
	// needNewline is set when the last intact record's trailing newline
	// itself was lost (CRC-complete line at EOF without '\n').
	needNewline bool
}

// Scan reads a tenant's log directory without modifying it: newest valid
// checkpoint, replay tail, torn-tail accounting. `stratrec recover` uses
// it for read-only inspection; Open builds on it.
func Scan(dir string) (Recovered, error) {
	st, err := scan(dir)
	return st.rec, err
}

func scan(dir string) (scanState, error) {
	var st scanState
	segs, ckpts, err := listDir(dir)
	if err != nil {
		return st, err
	}
	cp, err := latestCheckpoint(dir, ckpts)
	if err != nil {
		return st, err
	}
	st.rec.Checkpoint = cp
	var cpSeq uint64
	if cp != nil {
		cpSeq = cp.Seq
	}
	st.rec.LastSeq = cpSeq

	want := cpSeq + 1 // next tail sequence number we accept
	for si, first := range segs {
		path := filepath.Join(dir, segmentName(first))
		last := si == len(segs)-1
		if last {
			st.lastSegPath = path
			st.lastSegFirst = first
			st.validOffset = 0
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return st, err
		}
		st.rec.Segments++
		off := int64(0)
		for off < int64(len(data)) {
			nl := bytes.IndexByte(data[off:], '\n')
			var line []byte
			complete := nl >= 0
			if complete {
				line = data[off : off+int64(nl)]
			} else {
				line = data[off:]
			}
			rec, derr := DecodeRecord(line)
			if derr != nil {
				if last && !validRecordFollows(data, off) {
					// The one legitimate fault: a torn append at the very
					// tail — an unreadable final record with nothing valid
					// after it. Everything before it is intact.
					st.rec.TornBytes = len(data) - int(off)
					return st, nil
				}
				// An unreadable record with acknowledged records after it
				// is disk corruption, not a crash artifact: refuse to
				// recover a log with a hole in it.
				return st, fmt.Errorf("wal: %s: record at offset %d: %w", segmentName(first), off, derr)
			}
			if !complete && last {
				// CRC-complete record that lost only its newline: keep it,
				// but remember to restore the separator before appending.
				st.needNewline = true
			}
			if rec.Seq > cpSeq {
				if rec.Seq != want {
					return st, fmt.Errorf("%w: %s offset %d: want seq %d, got %d",
						ErrSequence, segmentName(first), off, want, rec.Seq)
				}
				want++
				st.rec.Tail = append(st.rec.Tail, rec)
				st.rec.LastSeq = rec.Seq
			}
			if complete {
				off += int64(nl) + 1
			} else {
				off = int64(len(data))
			}
			if last {
				st.validOffset = off
			}
		}
	}
	return st, nil
}

// validRecordFollows reports whether any complete, decodable record
// exists after the line starting at off — distinguishing a torn tail
// (nothing valid follows) from mid-log corruption (valid data follows).
func validRecordFollows(data []byte, off int64) bool {
	nl := bytes.IndexByte(data[off:], '\n')
	if nl < 0 {
		return false // the broken line runs to EOF: nothing follows at all
	}
	rest := data[off+int64(nl)+1:]
	for len(rest) > 0 {
		end := bytes.IndexByte(rest, '\n')
		line := rest
		if end >= 0 {
			line = rest[:end]
			rest = rest[end+1:]
		} else {
			rest = nil
		}
		if _, err := DecodeRecord(line); err == nil {
			return true
		}
	}
	return false
}

// Log is an open, append-ready write-ahead log for one tenant. It is not
// goroutine-safe: exactly one appender (the tenant's single-writer event
// loop) owns it. The atomic counters exist only so metrics gauges can
// read them from other goroutines.
type Log struct {
	dir  string
	opts Options

	f        *os.File
	w        *bufio.Writer
	lock     *os.File // flock-held .lock file: one live appender per dir
	pending  int      // records appended since the last fsync
	segFirst uint64   // first seq of the current segment (its name)
	// broken is set on the first append/sync failure. The buffered bytes
	// then belong to the one record whose append failed — a mutation the
	// caller was never acknowledged for — so Close discards them instead
	// of flushing: flushing would make the unacknowledged record durable
	// and recovery would resurrect a write the client was told was shed.
	broken bool

	seq     atomic.Uint64 // last assigned sequence number
	appends atomic.Uint64
	syncs   atomic.Uint64
}

// Open scans dir (creating it if needed), truncates a torn tail, and
// returns the log ready to append, together with the recovered state the
// caller must replay before accepting new mutations. Open takes an
// exclusive advisory lock (flock) on the directory, held until Close and
// released automatically if the process dies: a second live opener —
// another serve, or recover -verify against a running server — would
// otherwise truncate and interleave the live log. The read-only Scan
// deliberately does not take the lock.
func Open(dir string, opts Options) (*Log, Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovered{}, err
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, Recovered{}, err
	}
	opened := false
	defer func() {
		if !opened {
			lock.Close()
		}
	}()
	st, err := scan(dir)
	if err != nil {
		return nil, Recovered{}, err
	}
	l := &Log{dir: dir, opts: opts.withDefaults(), lock: lock}
	l.seq.Store(st.rec.LastSeq)

	if st.lastSegPath != "" {
		f, err := os.OpenFile(st.lastSegPath, os.O_RDWR, 0o644)
		if err != nil {
			return nil, Recovered{}, err
		}
		if err := f.Truncate(st.validOffset); err != nil {
			f.Close()
			return nil, Recovered{}, err
		}
		if _, err := f.Seek(st.validOffset, io.SeekStart); err != nil {
			f.Close()
			return nil, Recovered{}, err
		}
		l.f = f
		l.w = bufio.NewWriter(f)
		l.segFirst = st.lastSegFirst
		if st.needNewline {
			if _, err := l.w.WriteString("\n"); err != nil {
				f.Close()
				return nil, Recovered{}, err
			}
		}
		if st.rec.TornBytes > 0 || st.needNewline {
			// Make the repair durable before any new append lands on top.
			if err := l.sync(); err != nil {
				f.Close()
				return nil, Recovered{}, err
			}
		}
	} else if err := l.startSegment(st.rec.LastSeq + 1); err != nil {
		return nil, Recovered{}, err
	}
	opened = true
	return l, st.rec, nil
}

// acquireLock takes a non-blocking exclusive flock on dir/.lock. The
// kernel releases it when the holder dies, so a SIGKILLed server never
// blocks its own restart.
func acquireLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	return f, nil
}

// startSegment creates and opens a fresh segment named for the first
// sequence number it will hold.
func (l *Log) startSegment(firstSeq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(firstSeq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segFirst = firstSeq
	return syncDir(l.dir)
}

// Append assigns the next sequence number, frames and writes the record,
// and fsyncs according to Options.SyncEvery. When Append returns with the
// sync boundary crossed, the record is durable.
func (l *Log) Append(rec Record) (uint64, error) {
	rec.V = FormatVersion
	rec.Seq = l.seq.Load() + 1
	if l.broken {
		return 0, errors.New("wal: log is broken after an earlier append failure")
	}
	line, err := EncodeRecord(rec)
	if err != nil {
		return 0, err
	}
	if _, err := l.w.Write(line); err != nil {
		l.broken = true
		return 0, err
	}
	l.seq.Store(rec.Seq)
	l.appends.Add(1)
	l.pending++
	if l.pending >= l.opts.SyncEvery {
		if err := l.sync(); err != nil {
			return 0, err
		}
	}
	return rec.Seq, nil
}

// Sync flushes buffered records and fsyncs the segment.
func (l *Log) Sync() error {
	if l.pending == 0 {
		return nil
	}
	return l.sync()
}

func (l *Log) sync() error {
	if l.opts.TestSyncHook != nil {
		if err := l.opts.TestSyncHook(); err != nil {
			// Injected sync failure: the triggering record is still in the
			// buffer, unflushed. Mark the log broken so Close discards it.
			l.broken = true
			return err
		}
	}
	if err := l.w.Flush(); err != nil {
		l.broken = true
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.broken = true
		return err
	}
	l.pending = 0
	l.syncs.Add(1)
	return nil
}

// Checkpoint makes cp durable as of the log's current tip, rotates onto a
// fresh segment, and truncates the log: every older segment and
// checkpoint file is deleted. cp's V and Seq are filled in. It returns
// the number of segment files removed.
func (l *Log) Checkpoint(cp Checkpoint) (int, error) {
	if l.broken {
		// Flushing here would durably persist the unacknowledged record a
		// failed append left in the buffer.
		return 0, errors.New("wal: checkpoint refused on a broken log")
	}
	cp.V = FormatVersion
	cp.Seq = l.seq.Load()
	// Everything the checkpoint claims to cover must be durable first.
	if err := l.w.Flush(); err != nil {
		return 0, err
	}
	if err := l.f.Sync(); err != nil {
		return 0, err
	}
	l.pending = 0

	// Durable checkpoint first: temp file, fsync, atomic rename, dir sync.
	line, err := EncodeCheckpoint(cp)
	if err != nil {
		return 0, err
	}
	tmp := filepath.Join(l.dir, "checkpoint.tmp")
	if err := writeFileSync(tmp, line); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, checkpointName(cp.Seq))); err != nil {
		return 0, err
	}
	if err := syncDir(l.dir); err != nil {
		return 0, err
	}

	// Rotate: new segment for the records after the checkpoint — unless
	// the current segment already is that segment (a checkpoint with no
	// appends since the last rotation, e.g. an idle tenant or a repeated
	// /admin/checkpoint), in which case it is kept as-is.
	if l.segFirst != cp.Seq+1 {
		if err := l.f.Close(); err != nil {
			return 0, err
		}
		if err := l.startSegment(cp.Seq + 1); err != nil {
			return 0, err
		}
	}

	// Only now is anything older garbage.
	segs, ckpts, err := listDir(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, first := range segs {
		if first <= cp.Seq {
			if err := os.Remove(filepath.Join(l.dir, segmentName(first))); err == nil {
				removed++
			}
		}
	}
	for _, seq := range ckpts {
		if seq < cp.Seq {
			os.Remove(filepath.Join(l.dir, checkpointName(seq)))
		}
	}
	return removed, syncDir(l.dir)
}

// LastSeq returns the last assigned sequence number. Safe from any
// goroutine.
func (l *Log) LastSeq() uint64 { return l.seq.Load() }

// Appends returns the number of records appended since Open. Safe from
// any goroutine.
func (l *Log) Appends() uint64 { return l.appends.Load() }

// Syncs returns the number of fsync batches since Open. Safe from any
// goroutine.
func (l *Log) Syncs() uint64 { return l.syncs.Load() }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Broken reports whether an append or sync has failed since Open. A
// broken log rejects further appends and Close will discard (not flush)
// whatever the failed append left buffered.
func (l *Log) Broken() bool { return l.broken }

// Close flushes, fsyncs and closes the segment, then releases the
// directory lock. A broken log is closed without flushing: the buffer
// holds the one record whose append failed — an unacknowledged mutation
// that must not become durable behind the client's back.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	var flushErr, syncErr error
	if !l.broken {
		flushErr = l.w.Flush()
		syncErr = l.f.Sync()
	}
	closeErr := l.f.Close()
	l.f = nil
	if l.lock != nil {
		l.lock.Close() // closing drops the flock
		l.lock = nil
	}
	if flushErr != nil {
		return flushErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames, creates and removes in it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	closeErr := d.Close()
	if err != nil {
		// Some filesystems refuse directory fsync; treat as best-effort.
		if errors.Is(err, os.ErrInvalid) {
			return closeErr
		}
		return err
	}
	return closeErr
}
