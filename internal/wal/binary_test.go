package wal

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func TestBinaryRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindSubmit, ID: "d1", Quality: 0.4, Cost: 0.3, Latency: 0.2, K: 3, Sub: 17, Epoch: 1, Req: 2.5},
		{Kind: KindSubmit, ID: "", K: 1, Epoch: 9, Infeasible: true},
		{Kind: KindSubmit, ID: "über-request/π", Quality: -1.5, K: 2, Sub: 1 << 40, Epoch: 1 << 50},
		{Kind: KindRevoke, ID: "d1", Epoch: 2},
		{Kind: KindAvailability, W: 0.35, Epoch: 3},
		{Kind: KindAvailability, W: 0, Epoch: 0},
	}
	for _, rec := range recs {
		rec.V = FormatVersion
		rec.Seq = 7
		frame, err := EncodeRecordBinary(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeRecordBinary(frame)
		if err != nil {
			t.Fatalf("decode %q: %v", frame, err)
		}
		if n != len(frame) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(frame))
		}
		if got != rec {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
		// Decoding with trailing data (the next record) consumes only the
		// frame.
		got2, n2, err := DecodeRecordBinary(append(append([]byte{}, frame...), frame...))
		if err != nil || n2 != len(frame) || got2 != rec {
			t.Fatalf("decode with successor: %+v, %d, %v", got2, n2, err)
		}
	}
}

func TestBinaryEncodeRejectsUnknownKind(t *testing.T) {
	if _, err := EncodeRecordBinary(Record{Kind: "explode"}); !errors.Is(err, ErrKind) {
		t.Fatalf("unknown kind encoded: %v", err)
	}
}

func TestBinaryDecodeRejects(t *testing.T) {
	frame, err := EncodeRecordBinary(Record{Seq: 1, Kind: KindSubmit, ID: "a", K: 1, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	flipByte := func(i int) []byte {
		out := append([]byte{}, frame...)
		out[i] ^= 0x01
		return out
	}
	huge := append([]byte{}, frame...)
	huge[1], huge[2], huge[3], huge[4] = 0xff, 0xff, 0xff, 0x7f // length field
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTorn},
		{"torn header", frame[:5], ErrTorn},
		{"torn payload", frame[:len(frame)-2], ErrTorn},
		{"not binary", []byte("00aa"), ErrCRC},
		{"flipped payload byte", flipByte(len(frame) - 1), ErrCRC},
		{"flipped crc byte", flipByte(5), ErrCRC},
		{"implausible length", huge, ErrCRC},
	}
	for _, tc := range cases {
		if _, _, err := DecodeRecordBinary(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// CRC-valid frames with payloads this build does not speak: re-frame
	// crafted payloads with a correct checksum.
	reframe := func(payload []byte) []byte {
		out := AppendRecordBinary(nil, Record{Kind: KindRevoke, Epoch: 1})
		out = out[:binHeaderSize] // keep a well-formed header to overwrite
		out = append(out, payload...)
		out[1] = byte(len(payload))
		out[2], out[3], out[4] = byte(len(payload)>>8), byte(len(payload)>>16), byte(len(payload)>>24)
		crc := crc32.Checksum(payload, castagnoli)
		out[5], out[6], out[7], out[8] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
		return out
	}
	good := frame[binHeaderSize:]
	payloadCases := []struct {
		name string
		in   []byte
		want error
	}{
		{"wrong version", reframe(append([]byte{99}, good[1:]...)), ErrVersion},
		{"v2 binary claim", reframe(append([]byte{2}, good[1:]...)), ErrVersion},
		{"unknown kind code", reframe(append([]byte{FormatVersion, 9}, good[2:]...)), ErrKind},
		{"unknown flag bits", reframe([]byte{FormatVersion, binKindAvailability, 1, 1, 0x80, 0, 0, 0, 0, 0, 0, 0, 0}), ErrKind},
		{"trailing bytes", reframe(append(append([]byte{}, good...), 0x00)), ErrKind},
		{"truncated fields", reframe(good[:4]), ErrKind},
	}
	for _, tc := range payloadCases {
		if _, _, err := DecodeRecordBinary(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// writeV2Segment renders records into one v2-era JSON segment file.
func writeV2Segment(t *testing.T, dir string, firstSeq uint64, recs []Record) {
	t.Helper()
	var data []byte
	for i, rec := range recs {
		rec.V = jsonFormatVersion
		rec.Seq = firstSeq + uint64(i)
		line, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, line...)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(firstSeq)), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeV2Checkpoint renders a checkpoint file exactly as a v2 binary
// would have (V=2).
func writeV2Checkpoint(t *testing.T, dir string, cp Checkpoint) {
	t.Helper()
	cp.V = jsonFormatVersion
	line, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointName(cp.Seq)), line, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMixedVersionRecovery is the upgrade boundary end-to-end: a data dir
// written entirely by the v2 (JSON) binary — checkpoint plus a JSON log
// tail — is opened by this build, which appends v3 binary records into
// the same segment. Recovery must return every record field-identically,
// across both framings, in one contiguous sequence.
func TestMixedVersionRecovery(t *testing.T) {
	dir := t.TempDir()
	writeV2Checkpoint(t, dir, Checkpoint{
		Seq:          2,
		Epoch:        2,
		Availability: 0.8,
		NextSub:      2,
		Requests:     []CheckpointRequest{{ID: "a", Quality: 0.4, Cost: 0.3, Latency: 0.2, K: 3, Sub: 0, Req: 1.5}},
	})
	v2Tail := []Record{
		{Kind: KindSubmit, ID: "b", Quality: 0.9, Cost: 0.1, Latency: 0.5, K: 2, Sub: 2, Epoch: 3, Req: 0.75},
		{Kind: KindRevoke, ID: "a", Epoch: 4},
	}
	writeV2Segment(t, dir, 3, v2Tail)

	// First v3 open: the v2 state recovers unchanged.
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Seq != 2 || rec.Checkpoint.Epoch != 2 {
		t.Fatalf("v2 checkpoint: %+v", rec.Checkpoint)
	}
	if len(rec.Tail) != 2 || rec.LastSeq != 4 {
		t.Fatalf("v2 tail: %+v", rec)
	}
	for i, want := range v2Tail {
		got := rec.Tail[i]
		want.V, want.Seq = jsonFormatVersion, uint64(3+i)
		if got != want {
			t.Fatalf("tail[%d]: got %+v, want %+v", i, got, want)
		}
	}

	// Append binary records into the same (JSON-headed) segment, plus one
	// of each kind so every binary payload shape crosses the boundary.
	newRecs := []Record{
		{Kind: KindSubmit, ID: "c", Quality: 0.2, Cost: 0.6, Latency: 0.1, K: 1, Sub: 3, Epoch: 5, Req: 2.25},
		{Kind: KindAvailability, W: 0.55, Epoch: 6},
		{Kind: KindRevoke, ID: "b", Epoch: 7},
	}
	for i, r := range newRecs {
		seq, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(5+i) {
			t.Fatalf("append seq %d, want %d", seq, 5+i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: one scan crosses JSON → binary inside one segment.
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Segments != 1 {
		t.Fatalf("expected the mixed records in one segment, got %d", got.Segments)
	}
	if len(got.Tail) != 5 || got.LastSeq != 7 {
		t.Fatalf("mixed scan: %+v", got)
	}
	for i, want := range append(append([]Record{}, v2Tail...), newRecs...) {
		gotRec := got.Tail[i]
		want.Seq = uint64(3 + i)
		if i < len(v2Tail) {
			want.V = jsonFormatVersion
		} else {
			want.V = FormatVersion
		}
		if gotRec != want {
			t.Fatalf("mixed tail[%d]: got %+v, want %+v", i, gotRec, want)
		}
	}

	// And the log keeps working after the mixed recovery: reopen, append,
	// checkpoint (v3), reopen again.
	l, rec, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 7 {
		t.Fatalf("reopen after mix: %+v", rec)
	}
	if _, err := l.Append(Record{Kind: KindAvailability, W: 0.9, Epoch: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Checkpoint(Checkpoint{Epoch: 8, Availability: 0.9, NextSub: 4}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checkpoint == nil || got.Checkpoint.Seq != 8 || got.Checkpoint.V != FormatVersion {
		t.Fatalf("v3 checkpoint after mixed log: %+v", got.Checkpoint)
	}
}

// TestV2TornTailAcrossUpgrade: the crash artifact and the upgrade
// boundary at once — a v2 segment ends in a torn JSON append; the v3
// binary must truncate it and append binary records cleanly after.
func TestV2TornTailAcrossUpgrade(t *testing.T) {
	dir := t.TempDir()
	writeV2Segment(t, dir, 1, []Record{
		{Kind: KindSubmit, ID: "a", K: 1, Sub: 0, Epoch: 1, Req: 1},
		{Kind: KindSubmit, ID: "b", K: 1, Sub: 1, Epoch: 2, Req: 1},
	})
	path := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := `deadbeef {"v":2,"seq":3,"kind":"sub`
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 2 || rec.TornBytes != len(torn) {
		t.Fatalf("open over v2 torn tail: %+v", rec)
	}
	appendN(t, l, 2, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 4 || len(got.Tail) != 4 || got.TornBytes != 0 {
		t.Fatalf("after upgrade-boundary repair: %+v", got)
	}
}

// TestTornBinaryTailTruncated: a crash mid-binary-append leaves a prefix
// of a frame; recovery truncates exactly it, keeping every complete
// record, at several cut points (inside the header, inside the payload).
func TestTornBinaryTailTruncated(t *testing.T) {
	for _, chop := range []int{1, 5, 8, 12} {
		dir := t.TempDir()
		l, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 3, 0)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _, _ := listDir(dir)
		path := filepath.Join(dir, segmentName(segs[0]))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		next, err := EncodeRecordBinary(Record{Seq: 4, Kind: KindRevoke, ID: "d1", Epoch: 4})
		if err != nil {
			t.Fatal(err)
		}
		if chop >= len(next) {
			t.Fatalf("chop %d beyond frame of %d bytes", chop, len(next))
		}
		if err := os.WriteFile(path, append(data, next[:chop]...), 0o644); err != nil {
			t.Fatal(err)
		}

		l, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("chop %d: %v", chop, err)
		}
		if rec.LastSeq != 3 || rec.TornBytes != chop || len(rec.Tail) != 3 {
			t.Fatalf("chop %d: %+v", chop, rec)
		}
		appendN(t, l, 1, 3)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := Scan(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got.LastSeq != 4 || got.TornBytes != 0 || len(got.Tail) != 4 {
			t.Fatalf("chop %d after repair: %+v", chop, got)
		}
	}
}

// TestManualSyncDurability: under SyncManual nothing is durable until
// Sync, and DurableSeq tracks exactly the fsynced prefix.
func TestManualSyncDurability(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncManual: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0)
	if got := l.Syncs(); got != 0 {
		t.Fatalf("manual log fsynced on its own: %d", got)
	}
	if l.LastSeq() != 3 || l.DurableSeq() != 0 {
		t.Fatalf("seq %d durable %d, want 3/0", l.LastSeq(), l.DurableSeq())
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.DurableSeq() != 3 || l.Syncs() != 1 {
		t.Fatalf("after Sync: durable %d syncs %d", l.DurableSeq(), l.Syncs())
	}
	if err := l.Sync(); err != nil { // nothing pending
		t.Fatal(err)
	}
	if l.Syncs() != 1 {
		t.Fatalf("idle Sync fsynced anyway: %d", l.Syncs())
	}
	appendN(t, l, 2, 3)
	if err := l.Close(); err != nil { // Close flushes the un-synced tail
		t.Fatal(err)
	}
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 5 || len(got.Tail) != 5 {
		t.Fatalf("manual-sync log lost records: %+v", got)
	}
}

// TestSyncFailureDiscardsBatch: a failed group-commit Sync must leave no
// trace of the batch it covered — including records the bufio writer
// already spilled into the file — because every op in the batch is about
// to be told 503. The segment rolls back to the durable prefix.
func TestSyncFailureDiscardsBatch(t *testing.T) {
	dir := t.TempDir()
	fail := false
	l, _, err := Open(dir, Options{SyncManual: true, TestSyncHook: func() error {
		if fail {
			return errors.New("injected sync failure")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2, 0)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Second batch: enough records to overflow the 4 KiB bufio buffer so
	// some spill into the file before the failing sync.
	big := bytes.Repeat([]byte("x"), 600)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(Record{Kind: KindRevoke, ID: string(big), Epoch: uint64(3 + i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	fail = true
	if err := l.Sync(); err == nil {
		t.Fatal("injected sync failure did not surface")
	}
	if !l.Broken() {
		t.Fatal("failed sync left the log unbroken")
	}
	if l.DurableSeq() != 2 {
		t.Fatalf("durable seq after failed sync: %d", l.DurableSeq())
	}
	if _, err := l.Append(Record{Kind: KindRevoke, ID: "x", Epoch: 99}); err == nil {
		t.Fatal("broken log accepted an append")
	}
	l.Close()

	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 2 || len(got.Tail) != 2 || got.TornBytes != 0 {
		t.Fatalf("failed batch left a trace: %+v", got)
	}
}

// TestV2CheckpointReadable: DecodeCheckpoint accepts both the v2 and v3
// version stamps and rejects others.
func TestV2CheckpointReadable(t *testing.T) {
	for _, v := range []int{2, 3} {
		line, err := EncodeCheckpoint(Checkpoint{V: v, Seq: 1, Epoch: 1, NextSub: 1})
		if err != nil {
			t.Fatal(err)
		}
		// EncodeCheckpoint does not rewrite V — it serializes what it is
		// given — so fabricate both stamps directly.
		cp, err := DecodeCheckpoint(line)
		if err != nil {
			t.Fatalf("v%d checkpoint rejected: %v", v, err)
		}
		if cp.V != v {
			t.Fatalf("checkpoint version: got %d want %d", cp.V, v)
		}
	}
	line, err := EncodeCheckpoint(Checkpoint{V: 1, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(line); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("v1 checkpoint accepted: %v", err)
	}
}
