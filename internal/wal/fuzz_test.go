package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode hammers the log-record decoder with arbitrary bytes: any
// input must either produce a record that re-encodes to the same framed
// line, or a typed error — never a panic, and never a record whose
// re-encoding disagrees with what was decoded (which would mean two
// different byte strings can claim the same record).
func FuzzWALDecode(f *testing.F) {
	// Seed with valid frames of every kind, plus near-misses.
	for _, rec := range []Record{
		{V: jsonFormatVersion, Seq: 1, Kind: KindSubmit, ID: "d1", Quality: 0.4, Cost: 0.3, Latency: 0.2, K: 3, Sub: 0, Epoch: 1},
		{V: jsonFormatVersion, Seq: 2, Kind: KindRevoke, ID: "d1", Epoch: 2},
		{V: jsonFormatVersion, Seq: 3, Kind: KindAvailability, W: 0.7, Epoch: 2},
	} {
		line, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(line)
	}
	f.Add([]byte(""))
	f.Add([]byte("00000000 {}"))
	f.Add([]byte("deadbeef {\"v\":1,\"seq\":9,\"kind\":\"submit\",\"epoch\":0}"))
	f.Add(frame([]byte(`{"v":1,"seq":9,"kind":"submit","epoch":0}`)))
	f.Add(frame([]byte(`{"v":2,"seq":9,"kind":"submit","epoch":0}`)))
	f.Add(frame([]byte(`{"v":3,"seq":9,"kind":"submit","epoch":0}`)))

	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := DecodeRecord(line)
		if err != nil {
			return // typed rejection is always acceptable
		}
		// Accepted records must round-trip: re-encoding yields a line that
		// decodes to the identical record.
		line2, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("decoded record %+v does not re-encode: %v", rec, err)
		}
		rec2, err := DecodeRecord(line2)
		if err != nil {
			t.Fatalf("re-encoded line %q does not decode: %v", line2, err)
		}
		if rec2 != rec {
			t.Fatalf("round trip drift:\n first %+v\nsecond %+v", rec, rec2)
		}
		// A well-formed frame is canonical modulo its trailing newline.
		if trimmed := bytes.TrimSuffix(line, []byte("\n")); bytes.ContainsAny(trimmed, "\n") {
			t.Fatalf("accepted multi-line frame %q", line)
		}
	})
}

// FuzzWALDecodeV3 is the binary-framing counterpart: arbitrary bytes must
// decode to a record whose re-encoding is byte-identical to the consumed
// frame, or fail with a typed error — never panic, never accept two
// different byte strings for the same record. (Byte comparison rather than
// struct equality keeps the property honest for NaN float payloads, where
// rec != rec.)
func FuzzWALDecodeV3(f *testing.F) {
	for _, rec := range []Record{
		{Seq: 1, Kind: KindSubmit, ID: "d1", Quality: 0.4, Cost: 0.3, Latency: 0.2, K: 3, Sub: 0, Epoch: 1},
		{Seq: 2, Kind: KindSubmit, ID: "", K: 1, Epoch: 2, Infeasible: true},
		{Seq: 3, Kind: KindRevoke, ID: "d1", Epoch: 3},
		{Seq: 4, Kind: KindAvailability, W: 0.7, Epoch: 4},
	} {
		f.Add(AppendRecordBinary(nil, rec))
	}
	f.Add([]byte{})
	f.Add([]byte{magicV3})
	f.Add([]byte{magicV3, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte("00000000 {}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecordBinary(data)
		if err != nil {
			return // typed rejection is always acceptable
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("accepted frame with consumed=%d of %d bytes", n, len(data))
		}
		enc := AppendRecordBinary(nil, rec)
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("non-canonical frame accepted:\n consumed %x\nre-encode %x\nrecord %+v", data[:n], enc, rec)
		}
	})
}
