package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint is a full frozen tenant state as of WAL sequence Seq: what a
// stream.Snapshot holds, minus the derived plan (which recovery recomputes
// deterministically by re-admitting the pool).
type Checkpoint struct {
	// V is the payload format version (FormatVersion).
	V int `json:"v"`
	// Seq is the last WAL sequence number the checkpoint covers; records
	// with larger sequence numbers form the replay tail.
	Seq uint64 `json:"seq"`
	// Epoch is the pool-generation counter at Seq, force-restored after
	// the pool is re-admitted so epoch observables survive the restart.
	Epoch uint64 `json:"epoch"`
	// Availability is the expected workforce W at Seq.
	Availability float64 `json:"availability"`
	// NextSub is the manager's submission counter at Seq. Persisted
	// separately from the requests because the highest-numbered
	// submissions may have been revoked.
	NextSub uint64 `json:"next_sub"`
	// Requests lists the open pool in admission order.
	Requests []CheckpointRequest `json:"requests"`
}

// CheckpointRequest is one open request inside a Checkpoint.
type CheckpointRequest struct {
	ID      string  `json:"id"`
	Quality float64 `json:"quality"`
	Cost    float64 `json:"cost"`
	Latency float64 `json:"latency"`
	K       int     `json:"k"`
	// Sub is the request's submission sequence number; recovery re-admits
	// with stream.Manager.Resubmit under exactly this number.
	Sub uint64 `json:"sub"`
	// Req/Infeasible carry the request's aggregated workforce requirement
	// as computed at its original admission, the same recovery fingerprint
	// submit Records carry: re-admission must recompute it bit-for-bit or
	// the checkpoint is being restored against the wrong tenant universe.
	Req        float64 `json:"req,omitempty"`
	Infeasible bool    `json:"infeasible,omitempty"`
}

// ErrCheckpoint marks unreadable or version-mismatched checkpoint files.
var ErrCheckpoint = errors.New("wal: bad checkpoint")

// EncodeCheckpoint renders the single framed line of a checkpoint file.
func EncodeCheckpoint(cp Checkpoint) ([]byte, error) {
	payload, err := json.Marshal(cp)
	if err != nil {
		return nil, err
	}
	return appendFrame(make([]byte, 0, len(payload)+frameOverhead), payload), nil
}

// DecodeCheckpoint parses and verifies a checkpoint file's contents.
func DecodeCheckpoint(data []byte) (Checkpoint, error) {
	payload, err := decodeFrame(bytes.TrimSuffix(data, []byte("\n")))
	if err != nil {
		return Checkpoint{}, fmt.Errorf("%w: %v", ErrCheckpoint, err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("%w: %v", ErrCheckpoint, err)
	}
	// v2 checkpoints carry the identical schema under the identical JSON
	// framing — only the record framing changed in v3 — so a v2-written
	// data dir recovers unchanged under this build.
	if cp.V != FormatVersion && cp.V != jsonFormatVersion {
		return Checkpoint{}, fmt.Errorf("%w: version %d (this build reads %d and %d)",
			ErrCheckpoint, cp.V, jsonFormatVersion, FormatVersion)
	}
	return cp, nil
}

// --- directory naming ---

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	seqDigits  = 20 // enough for any uint64, keeps names sortable
)

func segmentName(firstSeq uint64) string {
	return segPrefix + pad(firstSeq) + segSuffix
}

func checkpointName(seq uint64) string {
	return ckptPrefix + pad(seq) + ckptSuffix
}

func pad(seq uint64) string {
	s := strconv.FormatUint(seq, 10)
	return strings.Repeat("0", seqDigits-len(s)) + s
}

// parseSeqName extracts the sequence number of a segment or checkpoint
// file name; ok is false for unrelated files.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(mid) != seqDigits {
		return 0, false
	}
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listDir enumerates segment and checkpoint files, sorted ascending by
// their embedded sequence number.
func listDir(dir string) (segments, checkpoints []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeqName(e.Name(), segPrefix, segSuffix); ok {
			segments = append(segments, seq)
		}
		if seq, ok := parseSeqName(e.Name(), ckptPrefix, ckptSuffix); ok {
			checkpoints = append(checkpoints, seq)
		}
	}
	sort.Slice(segments, func(a, b int) bool { return segments[a] < segments[b] })
	sort.Slice(checkpoints, func(a, b int) bool { return checkpoints[a] < checkpoints[b] })
	return segments, checkpoints, nil
}

// latestCheckpoint loads the newest decodable checkpoint, skipping over
// corrupt ones (a corrupt newest checkpoint falls back to the previous,
// whose covering segments are only deleted after a successor is durable).
func latestCheckpoint(dir string, seqs []uint64) (*Checkpoint, error) {
	for i := len(seqs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, checkpointName(seqs[i])))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			continue // fall back to the previous checkpoint
		}
		if cp.Seq != seqs[i] {
			continue // name/content mismatch: treat as corrupt
		}
		return &cp, nil
	}
	return nil, nil
}
