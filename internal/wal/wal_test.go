package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func submitRec(id string, sub uint64, epoch uint64) Record {
	return Record{Kind: KindSubmit, ID: id, Quality: 0.4, Cost: 0.3, Latency: 0.2, K: 3, Sub: sub, Epoch: epoch}
}

func appendN(t *testing.T, l *Log, n int, from uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq, err := l.Append(submitRec(fmt.Sprintf("d%d", from+uint64(i)), from+uint64(i), from+uint64(i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != from+uint64(i)+1 {
			t.Fatalf("append assigned seq %d, want %d", seq, from+uint64(i)+1)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	// The JSON framing is frozen at v2: the encoder/decoder pair stays
	// round-trip-exact so upgrade-era log heads keep recovering.
	recs := []Record{
		submitRec("a", 0, 1),
		{Kind: KindRevoke, ID: "a", Epoch: 2},
		{Kind: KindAvailability, W: 0.35, Epoch: 3},
	}
	for _, rec := range recs {
		rec.V = jsonFormatVersion
		rec.Seq = 7
		line, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRecord(line)
		if err != nil {
			t.Fatalf("decode %q: %v", line, err)
		}
		if got != rec {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	line, err := EncodeRecord(Record{V: jsonFormatVersion, Seq: 1, Kind: KindSubmit, ID: "a"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTorn},
		{"short", []byte("00aa"), ErrTorn},
		{"flipped payload bit", append([]byte{}, flip(line, 12)...), ErrCRC},
		{"flipped crc bit", append([]byte{}, flip(line, 0)...), ErrCRC},
		{"no space", []byte(strings.Replace(string(line), " ", "_", 1)), ErrCRC},
		{"crc-valid garbage", frame([]byte("not json")), ErrKind},
		{"wrong version", frame([]byte(`{"v":99,"seq":1,"kind":"submit","epoch":0}`)), ErrVersion},
		{"v3 json frame", frame([]byte(`{"v":3,"seq":1,"kind":"submit","epoch":0}`)), ErrVersion},
		{"unknown kind", frame([]byte(`{"v":2,"seq":1,"kind":"explode","epoch":0}`)), ErrKind},
		{"unknown field", frame([]byte(`{"v":2,"seq":1,"kind":"submit","zzz":4,"epoch":0}`)), ErrKind},
	}
	for _, tc := range cases {
		if _, err := DecodeRecord(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func flip(line []byte, i int) []byte {
	out := append([]byte{}, line...)
	// Flip within the hex/json alphabet so framing still parses.
	if out[i] == '0' {
		out[i] = '1'
	} else {
		out[i] = '0'
	}
	return out
}

func frame(payload []byte) []byte { return appendFrame(nil, payload) }

func TestAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 0 || rec.Checkpoint != nil || len(rec.Tail) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	appendN(t, l, 5, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 5 || len(got.Tail) != 5 || got.TornBytes != 0 {
		t.Fatalf("scan: %+v", got)
	}
	for i, r := range got.Tail {
		if r.Seq != uint64(i+1) || r.ID != fmt.Sprintf("d%d", i) {
			t.Fatalf("tail[%d] = %+v", i, r)
		}
	}

	// Reopen and keep appending: sequence continues.
	l, rec, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 5 {
		t.Fatalf("reopen LastSeq = %d", rec.LastSeq)
	}
	appendN(t, l, 3, 5)
	if l.LastSeq() != 8 {
		t.Fatalf("LastSeq after continued appends = %d", l.LastSeq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 0)
	removed, err := l.Checkpoint(Checkpoint{
		Epoch:        4,
		Availability: 0.6,
		NextSub:      10,
		Requests:     []CheckpointRequest{{ID: "d9", Quality: 0.4, Cost: 0.3, Latency: 0.2, K: 3, Sub: 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("checkpoint removed %d segments, want 1", removed)
	}
	appendN(t, l, 2, 10) // tail after the checkpoint
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checkpoint == nil || got.Checkpoint.Seq != 10 || got.Checkpoint.Epoch != 4 || got.Checkpoint.NextSub != 10 {
		t.Fatalf("checkpoint: %+v", got.Checkpoint)
	}
	if len(got.Checkpoint.Requests) != 1 || got.Checkpoint.Requests[0].Sub != 9 {
		t.Fatalf("checkpoint requests: %+v", got.Checkpoint.Requests)
	}
	if len(got.Tail) != 2 || got.Tail[0].Seq != 11 || got.LastSeq != 12 {
		t.Fatalf("tail after checkpoint: %+v", got)
	}

	// The pre-checkpoint segment is gone; only the post-rotation one left.
	segs, ckpts, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != 11 || len(ckpts) != 1 || ckpts[0] != 10 {
		t.Fatalf("dir after checkpoint: segments %v checkpoints %v", segs, ckpts)
	}
}

// TestCheckpointIdleLog: checkpointing a log with no appends since the
// last rotation (a fresh/idle tenant, or POST /admin/checkpoint twice in
// a row) must not try to recreate the current segment. Regression: found
// by driving /admin/checkpoint against a traffic-less tenant — the
// rotation hit O_EXCL on its own segment.
func TestCheckpointIdleLog(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh log, zero records: checkpoint at seq 0.
	if _, err := l.Checkpoint(Checkpoint{NextSub: 0}); err != nil {
		t.Fatalf("checkpoint on fresh log: %v", err)
	}
	appendN(t, l, 3, 0)
	if _, err := l.Checkpoint(Checkpoint{NextSub: 3}); err != nil {
		t.Fatalf("checkpoint after appends: %v", err)
	}
	// Immediately again, no appends in between.
	if _, err := l.Checkpoint(Checkpoint{NextSub: 3}); err != nil {
		t.Fatalf("repeated checkpoint: %v", err)
	}
	// The log still appends and recovers cleanly after all that.
	appendN(t, l, 2, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checkpoint == nil || got.Checkpoint.Seq != 3 || len(got.Tail) != 2 || got.LastSeq != 5 {
		t.Fatalf("scan after idle checkpoints: %+v", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listDir(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	path := filepath.Join(dir, segmentName(segs[0]))

	// Simulate a torn append: garbage partial record at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := `deadbeef {"v":1,"seq":5,"kind":"sub`
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 4 || got.TornBytes != len(torn) {
		t.Fatalf("scan with torn tail: %+v", got)
	}

	// Open truncates the torn bytes and appends cleanly after them.
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 4 || rec.TornBytes != len(torn) {
		t.Fatalf("open with torn tail: %+v", rec)
	}
	appendN(t, l, 1, 4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 5 || got.TornBytes != 0 || len(got.Tail) != 5 {
		t.Fatalf("scan after repair: %+v", got)
	}
}

// TestMissingTrailingNewlineKept: a v2-era segment whose final JSON
// record lost only its newline (CRC-complete line at EOF) must keep the
// record, and the reopening v3 binary must restore the separator before
// appending binary frames after it — a binary frame fused onto the
// newline-less line would corrupt both records.
func TestMissingTrailingNewlineKept(t *testing.T) {
	dir := t.TempDir()
	var data []byte
	for i := 0; i < 3; i++ {
		rec := submitRec(fmt.Sprintf("d%d", i), uint64(i), uint64(i))
		rec.V = jsonFormatVersion
		rec.Seq = uint64(i + 1)
		line, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, line...)
	}
	// Chop only the final newline: the record itself is CRC-complete and
	// must survive recovery.
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 3 || len(rec.Tail) != 3 {
		t.Fatalf("newline-less tail: %+v", rec)
	}
	appendN(t, l, 1, 3) // a binary v3 record lands after the repaired line
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 4 || len(got.Tail) != 4 {
		t.Fatalf("after newline repair: %+v", got)
	}
	if got.Tail[2].V != jsonFormatVersion || got.Tail[3].V != FormatVersion {
		t.Fatalf("expected v2 head + v3 tail, got versions %d, %d", got.Tail[2].V, got.Tail[3].V)
	}
}

func TestCorruptionMidLogRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0)
	if _, err := l.Checkpoint(Checkpoint{NextSub: 3}); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt a record in the middle of the (single remaining) segment by
	// flipping one payload byte of the first line.
	segs, _, _ := listDir(dir)
	path := filepath.Join(dir, segmentName(segs[len(segs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// The corrupt record is NOT the tail: two intact (acknowledged)
	// records follow it. That is disk corruption, not a crash artifact,
	// and recovery must refuse rather than silently drop acked records.
	if _, err := Scan(dir); err == nil || !errors.Is(err, ErrCRC) {
		t.Fatalf("mid-log corruption scanned without CRC error: %v", err)
	}
}

func TestSequenceGapRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, _ := listDir(dir)
	path := filepath.Join(dir, segmentName(segs[0]))

	// Hand-append a CRC-valid record with a gapped sequence number,
	// followed by another valid record so the gap is not a tail fault.
	var extra []byte
	for _, seq := range []uint64{9, 10} {
		line, err := EncodeRecord(Record{V: jsonFormatVersion, Seq: seq, Kind: KindRevoke, ID: "x", Epoch: 1})
		if err != nil {
			t.Fatal(err)
		}
		// EncodeRecord assigns nothing; frame manually to keep seq 9.
		extra = append(extra, line...)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(extra); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := Scan(dir); !errors.Is(err, ErrSequence) {
		t.Fatalf("gapped log scanned without error: %v", err)
	}
}

func TestSyncBatching(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 0)
	// 10 appends at batch 4 → syncs after records 4 and 8 only.
	if got := l.Syncs(); got != 2 {
		t.Fatalf("syncs = %d, want 2", got)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Syncs(); got != 3 {
		t.Fatalf("syncs after explicit Sync = %d, want 3", got)
	}
	if err := l.Sync(); err != nil { // nothing pending: no extra fsync
		t.Fatal(err)
	}
	if got := l.Syncs(); got != 3 {
		t.Fatalf("idle Sync fsynced anyway: %d", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 10 {
		t.Fatalf("batched log lost records: %+v", got)
	}
}

// TestOpenExclusiveLock: two live appenders on one directory would
// truncate and interleave each other's log; the second Open must fail
// with ErrLocked, and the lock must die with the holder (Close).
func TestOpenExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	l1, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open on a live dir: %v, want ErrLocked", err)
	}
	// Scan stays read-only and lock-free.
	if _, err := Scan(dir); err != nil {
		t.Fatalf("scan under lock: %v", err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	l2.Close()
}

func TestCheckpointFallbackOnCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2, 0)
	if _, err := l.Checkpoint(Checkpoint{NextSub: 2, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a corrupt "newer" checkpoint; recovery must fall back to the
	// valid one and still replay the tail after it.
	if err := os.WriteFile(filepath.Join(dir, checkpointName(99)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checkpoint == nil || got.Checkpoint.Seq != 2 || len(got.Tail) != 2 || got.LastSeq != 4 {
		t.Fatalf("fallback scan: %+v", got)
	}
}
