package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"stratrec/internal/geometry"
)

func pt(a, b, c float64) geometry.Point3 { return geometry.Point3{a, b, c} }

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Errorf("empty tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if ids := tr.Search(geometry.Rect3{Hi: pt(1, 1, 1)}); len(ids) != 0 {
		t.Errorf("empty search = %v", ids)
	}
	visited := 0
	tr.Nodes(func(NodeInfo) bool { visited++; return true })
	if visited != 0 {
		t.Errorf("empty walk visited %d nodes", visited)
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New()
	pts := []geometry.Point3{
		pt(0.1, 0.1, 0.1), pt(0.2, 0.9, 0.4), pt(0.8, 0.2, 0.6), pt(0.5, 0.5, 0.5),
	}
	for i, p := range pts {
		tr.Insert(p, i)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	ids := tr.Search(geometry.Rect3{Lo: pt(0, 0, 0), Hi: pt(0.5, 0.5, 0.5)})
	sort.Ints(ids)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 3 {
		t.Errorf("Search = %v, want [0 3]", ids)
	}
}

func TestSplitsAndHeight(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	const n = 500
	for i := 0; i < n; i++ {
		tr.Insert(pt(rng.Float64(), rng.Float64(), rng.Float64()), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if h := tr.Height(); h < 3 {
		t.Errorf("height %d too small for %d points with fan-out %d", h, n, MaxEntries)
	}
	// Everything must be findable.
	all := tr.Search(geometry.Rect3{Lo: pt(0, 0, 0), Hi: pt(1, 1, 1)})
	if len(all) != n {
		t.Errorf("full-range search found %d of %d", len(all), n)
	}
}

func TestNodeInvariants(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(2))
	const n = 300
	pts := make([]geometry.Point3, n)
	for i := 0; i < n; i++ {
		pts[i] = pt(rng.Float64(), rng.Float64(), rng.Float64())
		tr.Insert(pts[i], i)
	}
	rootSeen := false
	tr.Nodes(func(info NodeInfo) bool {
		if info.Depth == 0 {
			rootSeen = true
			if info.Count != n {
				t.Errorf("root count = %d, want %d", info.Count, n)
			}
		}
		if !info.MBB.Valid() {
			t.Errorf("invalid MBB %v at depth %d", info.MBB, info.Depth)
		}
		if info.Count < 1 {
			t.Errorf("node with count %d", info.Count)
		}
		// Every point counted in a subtree lies inside its MBB: verify via
		// a search restricted to the MBB.
		found := tr.Search(info.MBB)
		if len(found) < info.Count {
			t.Errorf("MBB search found %d < subtree count %d", len(found), info.Count)
		}
		return true
	})
	if !rootSeen {
		t.Error("walk never visited the root")
	}
}

func TestNodesEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(pt(float64(i)/100, 0.5, 0.5), i)
	}
	visits := 0
	tr.Nodes(func(NodeInfo) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Errorf("early stop visited %d nodes, want 3", visits)
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Insert(pt(0.5, 0.5, 0.5), i)
	}
	ids := tr.Search(geometry.RectFromPoint(pt(0.5, 0.5, 0.5)))
	if len(ids) != 50 {
		t.Errorf("found %d duplicates, want 50", len(ids))
	}
}

// linearSearch is the reference the tree is validated against.
func linearSearch(pts []geometry.Point3, rect geometry.Rect3) []int {
	var ids []int
	for i, p := range pts {
		if rect.Contains(p) {
			ids = append(ids, i)
		}
	}
	return ids
}

func TestPropertySearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := 1 + rng.Intn(200)
		pts := make([]geometry.Point3, n)
		tr := New()
		for i := range pts {
			pts[i] = pt(rng.Float64(), rng.Float64(), rng.Float64())
			tr.Insert(pts[i], i)
		}
		for q := 0; q < 5; q++ {
			a := pt(rng.Float64(), rng.Float64(), rng.Float64())
			b := pt(rng.Float64(), rng.Float64(), rng.Float64())
			rect := geometry.Rect3{Lo: a.Min(b), Hi: a.Max(b)}
			got := tr.Search(rect)
			want := linearSearch(pts, rect)
			sort.Ints(got)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCountsSumAtLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		n := 1 + rng.Intn(300)
		tr := New()
		for i := 0; i < n; i++ {
			tr.Insert(pt(rng.Float64(), rng.Float64(), rng.Float64()), i)
		}
		leafTotal := 0
		ok := true
		tr.Nodes(func(info NodeInfo) bool {
			if info.Leaf {
				leafTotal += info.Count
				if info.Count > MaxEntries {
					ok = false
				}
			}
			return true
		})
		return ok && leafTotal == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
