package rtree

import (
	"math/rand"
	"strconv"
	"testing"

	"stratrec/internal/geometry"
)

func benchTree(n int, seed int64) (*Tree, []geometry.Point3) {
	rng := rand.New(rand.NewSource(seed))
	tr := New()
	pts := make([]geometry.Point3, n)
	for i := range pts {
		pts[i] = geometry.Point3{rng.Float64(), rng.Float64(), rng.Float64()}
		tr.Insert(pts[i], i)
	}
	return tr, pts
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geometry.Point3, 10000)
	for i := range pts {
		pts[i] = geometry.Point3{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New()
		for j, p := range pts {
			tr.Insert(p, j)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		tr, _ := benchTree(n, int64(n))
		rect := geometry.Rect3{
			Lo: geometry.Point3{0.2, 0.2, 0.2},
			Hi: geometry.Point3{0.4, 0.4, 0.4},
		}
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.Search(rect)
			}
		})
	}
}

func BenchmarkNodesWalk(b *testing.B) {
	tr, _ := benchTree(10000, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.Nodes(func(NodeInfo) bool { count++; return true })
	}
}
