// Package rtree is a 3-D R-tree over points, the space-partitioning
// substrate behind ADPaR's Baseline3 (Section 5.2.1, "designed by modifying
// space partitioning data structure R-Tree"). It supports insertion with
// quadratic node splitting (Guttman's R-tree with the R*-flavored
// least-enlargement / least-volume choose-subtree heuristic), range search,
// and a node walker exposing every minimum bounding box together with its
// subtree point count — the traversal Baseline3 scans for a k-point MBB.
package rtree

import (
	"stratrec/internal/geometry"
)

const (
	// MaxEntries is the node fan-out M.
	MaxEntries = 8
	// MinEntries is the minimum fill m used on splits.
	MinEntries = 3
)

// Tree is an R-tree over 3-D points carrying integer data IDs.
type Tree struct {
	root *node
	size int
}

// Entry is one indexed point.
type Entry struct {
	Point geometry.Point3
	ID    int
}

type node struct {
	leaf     bool
	mbb      geometry.Rect3
	entries  []Entry // leaf payload
	children []*node // internal payload
	count    int     // points in subtree
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Insert adds a point with its data ID.
func (t *Tree) Insert(p geometry.Point3, id int) {
	e := Entry{Point: p, ID: id}
	if t.root == nil {
		t.root = &node{leaf: true, mbb: geometry.RectFromPoint(p), entries: []Entry{e}, count: 1}
		t.size = 1
		return
	}
	split := t.root.insert(e)
	if split != nil {
		old := t.root
		t.root = &node{
			leaf:     false,
			mbb:      old.mbb.Union(split.mbb),
			children: []*node{old, split},
			count:    old.count + split.count,
		}
	}
	t.size++
}

// insert adds e into the subtree and returns a new sibling if the node
// split, nil otherwise.
func (n *node) insert(e Entry) *node {
	n.mbb = n.mbb.Extend(e.Point)
	n.count++
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > MaxEntries {
			return n.splitLeaf()
		}
		return nil
	}
	child := n.chooseSubtree(e.Point)
	split := child.insert(e)
	if split != nil {
		n.children = append(n.children, split)
		if len(n.children) > MaxEntries {
			return n.splitInternal()
		}
	}
	return nil
}

// chooseSubtree picks the child whose MBB needs the least volume enlargement
// to absorb p, breaking ties by smaller volume then by fewer points.
func (n *node) chooseSubtree(p geometry.Point3) *node {
	best := n.children[0]
	bestEnl := best.mbb.Enlargement(geometry.RectFromPoint(p))
	for _, c := range n.children[1:] {
		enl := c.mbb.Enlargement(geometry.RectFromPoint(p))
		switch {
		case enl < bestEnl:
			best, bestEnl = c, enl
		case enl == bestEnl:
			if c.mbb.Volume() < best.mbb.Volume() ||
				(c.mbb.Volume() == best.mbb.Volume() && c.count < best.count) {
				best = c
			}
		}
	}
	return best
}

// splitLeaf performs Guttman's quadratic split on a leaf, keeping one group
// in n and returning the other as a fresh node.
func (n *node) splitLeaf() *node {
	rects := make([]geometry.Rect3, len(n.entries))
	for i, e := range n.entries {
		rects[i] = geometry.RectFromPoint(e.Point)
	}
	g1, g2 := quadraticSplit(rects)
	oldEntries := n.entries
	n.entries = pickEntries(oldEntries, g1)
	sib := &node{leaf: true, entries: pickEntries(oldEntries, g2)}
	n.refit()
	sib.refit()
	return sib
}

// splitInternal is the quadratic split for internal nodes.
func (n *node) splitInternal() *node {
	rects := make([]geometry.Rect3, len(n.children))
	for i, c := range n.children {
		rects[i] = c.mbb
	}
	g1, g2 := quadraticSplit(rects)
	oldChildren := n.children
	n.children = pickChildren(oldChildren, g1)
	sib := &node{leaf: false, children: pickChildren(oldChildren, g2)}
	n.refit()
	sib.refit()
	return sib
}

// refit recomputes mbb and count from current payload.
func (n *node) refit() {
	if n.leaf {
		n.count = len(n.entries)
		if n.count == 0 {
			n.mbb = geometry.Rect3{}
			return
		}
		n.mbb = geometry.RectFromPoint(n.entries[0].Point)
		for _, e := range n.entries[1:] {
			n.mbb = n.mbb.Extend(e.Point)
		}
		return
	}
	n.count = 0
	for i, c := range n.children {
		n.count += c.count
		if i == 0 {
			n.mbb = c.mbb
		} else {
			n.mbb = n.mbb.Union(c.mbb)
		}
	}
}

// quadraticSplit partitions indices 0..len(rects)-1 into two groups using
// Guttman's quadratic PickSeeds / PickNext, honoring MinEntries.
func quadraticSplit(rects []geometry.Rect3) (g1, g2 []int) {
	n := len(rects)
	// PickSeeds: the pair wasting the most volume if grouped together.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			waste := rects[i].Union(rects[j]).Volume() - rects[i].Volume() - rects[j].Volume()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	g1 = []int{s1}
	g2 = []int{s2}
	mbb1, mbb2 := rects[s1], rects[s2]
	assigned := make([]bool, n)
	assigned[s1], assigned[s2] = true, true
	remaining := n - 2
	for remaining > 0 {
		// Force-assign to honor the minimum fill.
		if len(g1)+remaining == MinEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					g1 = append(g1, i)
					mbb1 = mbb1.Union(rects[i])
					assigned[i] = true
				}
			}
			break
		}
		if len(g2)+remaining == MinEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					g2 = append(g2, i)
					mbb2 = mbb2.Union(rects[i])
					assigned[i] = true
				}
			}
			break
		}
		// PickNext: the rect with the greatest preference difference.
		next, bestDiff := -1, -1.0
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			d1 := mbb1.Enlargement(rects[i])
			d2 := mbb2.Enlargement(rects[i])
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, next = diff, i
			}
		}
		d1 := mbb1.Enlargement(rects[next])
		d2 := mbb2.Enlargement(rects[next])
		toFirst := d1 < d2 ||
			(d1 == d2 && (mbb1.Volume() < mbb2.Volume() ||
				(mbb1.Volume() == mbb2.Volume() && len(g1) <= len(g2))))
		if toFirst {
			g1 = append(g1, next)
			mbb1 = mbb1.Union(rects[next])
		} else {
			g2 = append(g2, next)
			mbb2 = mbb2.Union(rects[next])
		}
		assigned[next] = true
		remaining--
	}
	return g1, g2
}

func pickEntries(entries []Entry, idx []int) []Entry {
	out := make([]Entry, 0, len(idx))
	for _, i := range idx {
		out = append(out, entries[i])
	}
	return out
}

func pickChildren(children []*node, idx []int) []*node {
	out := make([]*node, 0, len(idx))
	for _, i := range idx {
		out = append(out, children[i])
	}
	return out
}

// Search returns the IDs of all points inside rect (inclusive), in
// unspecified order.
func (t *Tree) Search(rect geometry.Rect3) []int {
	var ids []int
	if t.root == nil {
		return ids
	}
	var walk func(n *node)
	walk = func(n *node) {
		if !n.mbb.Intersects(rect) {
			return
		}
		if n.leaf {
			for _, e := range n.entries {
				if rect.Contains(e.Point) {
					ids = append(ids, e.ID)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return ids
}

// NodeInfo describes one tree node for callers scanning MBBs.
type NodeInfo struct {
	MBB   geometry.Rect3
	Count int // points in the node's subtree
	Leaf  bool
	Depth int
}

// Nodes visits every node in depth-first order, reporting its MBB and
// subtree count. Baseline3 uses this to find an MBB containing exactly k
// strategies. Returning false from fn stops the walk.
func (t *Tree) Nodes(fn func(NodeInfo) bool) {
	if t.root == nil {
		return
	}
	var walk func(n *node, depth int) bool
	walk = func(n *node, depth int) bool {
		if !fn(NodeInfo{MBB: n.mbb, Count: n.count, Leaf: n.leaf, Depth: depth}) {
			return false
		}
		if !n.leaf {
			for _, c := range n.children {
				if !walk(c, depth+1) {
					return false
				}
			}
		}
		return true
	}
	walk(t.root, 0)
}

// Height returns the tree height (0 for an empty tree, 1 for a single leaf).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}
