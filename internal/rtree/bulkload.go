package rtree

import (
	"math"
	"sort"

	"stratrec/internal/geometry"
)

// This file implements Sort-Tile-Recursive (STR) bulk loading (Leutenegger
// et al.): packing a static point set into a near-full R-tree in one pass.
// Baseline3 builds its index over the whole strategy catalog up front, so
// bulk loading replaces |S| one-at-a-time inserts (each paying split costs)
// with a sort-and-slice construction whose leaves are ~100% full.

// BulkLoad builds a tree from entries using STR packing. The input slice is
// not modified. An empty input yields an empty tree.
func BulkLoad(entries []Entry) *Tree {
	t := New()
	if len(entries) == 0 {
		return t
	}
	work := make([]Entry, len(entries))
	copy(work, entries)
	leaves := packLeaves(work)
	t.size = len(entries)
	t.root = buildUp(leaves)
	return t
}

// packLeaves tiles the points into leaves of up to MaxEntries each: sort by
// x, slice into vertical slabs of ~sqrt-balanced size, sort each slab by y,
// slice again, then fill leaves in z order.
func packLeaves(entries []Entry) []*node {
	n := len(entries)
	leafCount := (n + MaxEntries - 1) / MaxEntries
	// Slabs per axis: ceil(leafCount^(1/3)) tiles in x, then per slab
	// ceil((leaves in slab)^(1/2)) in y, filling z runs last.
	sx := int(math.Ceil(math.Cbrt(float64(leafCount))))
	if sx < 1 {
		sx = 1
	}
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].Point[0] < entries[b].Point[0] })
	perSlabX := (n + sx - 1) / sx
	var leaves []*node
	for xs := 0; xs < n; xs += perSlabX {
		xe := xs + perSlabX
		if xe > n {
			xe = n
		}
		slab := entries[xs:xe]
		slabLeaves := (len(slab) + MaxEntries - 1) / MaxEntries
		sy := int(math.Ceil(math.Sqrt(float64(slabLeaves))))
		if sy < 1 {
			sy = 1
		}
		sort.SliceStable(slab, func(a, b int) bool { return slab[a].Point[1] < slab[b].Point[1] })
		perSlabY := (len(slab) + sy - 1) / sy
		for ys := 0; ys < len(slab); ys += perSlabY {
			ye := ys + perSlabY
			if ye > len(slab) {
				ye = len(slab)
			}
			run := slab[ys:ye]
			sort.SliceStable(run, func(a, b int) bool { return run[a].Point[2] < run[b].Point[2] })
			for zs := 0; zs < len(run); zs += MaxEntries {
				ze := zs + MaxEntries
				if ze > len(run) {
					ze = len(run)
				}
				leaf := &node{leaf: true, entries: append([]Entry(nil), run[zs:ze]...)}
				leaf.refit()
				leaves = append(leaves, leaf)
			}
		}
	}
	return leaves
}

// buildUp packs a node level into parent nodes until one root remains. The
// level is already in spatially coherent order from the STR tiling, so
// consecutive grouping keeps parents tight.
func buildUp(level []*node) *node {
	for len(level) > 1 {
		var parents []*node
		for i := 0; i < len(level); i += MaxEntries {
			j := i + MaxEntries
			if j > len(level) {
				j = len(level)
			}
			p := &node{leaf: false, children: append([]*node(nil), level[i:j]...)}
			p.refit()
			parents = append(parents, p)
		}
		level = parents
	}
	return level[0]
}

// BulkLoadPoints is a convenience wrapper assigning IDs 0..n-1 in input
// order, matching how Baseline3 indexes a strategy set.
func BulkLoadPoints(pts []geometry.Point3) *Tree {
	entries := make([]Entry, len(pts))
	for i, p := range pts {
		entries[i] = Entry{Point: p, ID: i}
	}
	return BulkLoad(entries)
}
