package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"stratrec/internal/geometry"
)

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(nil)
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Errorf("empty bulk load: Len=%d Height=%d", tr.Len(), tr.Height())
	}
}

func TestBulkLoadSmall(t *testing.T) {
	pts := []geometry.Point3{
		pt(0.1, 0.1, 0.1), pt(0.9, 0.9, 0.9), pt(0.5, 0.5, 0.5),
	}
	tr := BulkLoadPoints(pts)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	ids := tr.Search(geometry.Rect3{Lo: pt(0, 0, 0), Hi: pt(1, 1, 1)})
	if len(ids) != 3 {
		t.Errorf("full search found %d", len(ids))
	}
}

func TestBulkLoadInputNotMutated(t *testing.T) {
	entries := []Entry{
		{Point: pt(0.9, 0.1, 0.2), ID: 0},
		{Point: pt(0.1, 0.8, 0.3), ID: 1},
	}
	orig := append([]Entry(nil), entries...)
	BulkLoad(entries)
	for i := range entries {
		if entries[i] != orig[i] {
			t.Fatalf("input mutated at %d", i)
		}
	}
}

func TestBulkLoadNodeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 2000
	pts := make([]geometry.Point3, n)
	for i := range pts {
		pts[i] = pt(rng.Float64(), rng.Float64(), rng.Float64())
	}
	tr := BulkLoadPoints(pts)
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	leafTotal := 0
	tr.Nodes(func(info NodeInfo) bool {
		if !info.MBB.Valid() {
			t.Errorf("invalid MBB at depth %d", info.Depth)
		}
		if info.Leaf {
			leafTotal += info.Count
			if info.Count > MaxEntries {
				t.Errorf("overfull leaf: %d", info.Count)
			}
		}
		return true
	})
	if leafTotal != n {
		t.Errorf("leaf total = %d, want %d", leafTotal, n)
	}
	// STR packing should be shallower or equal to incremental insertion.
	inc := New()
	for i, p := range pts {
		inc.Insert(p, i)
	}
	if tr.Height() > inc.Height() {
		t.Errorf("bulk height %d > incremental height %d", tr.Height(), inc.Height())
	}
}

func TestPropertyBulkLoadSearchMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		n := 1 + rng.Intn(300)
		pts := make([]geometry.Point3, n)
		for i := range pts {
			pts[i] = pt(rng.Float64(), rng.Float64(), rng.Float64())
		}
		tr := BulkLoadPoints(pts)
		for q := 0; q < 4; q++ {
			a := pt(rng.Float64(), rng.Float64(), rng.Float64())
			b := pt(rng.Float64(), rng.Float64(), rng.Float64())
			rect := geometry.Rect3{Lo: a.Min(b), Hi: a.Max(b)}
			got := tr.Search(rect)
			want := linearSearch(pts, rect)
			sort.Ints(got)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBulkLoadVsIncremental(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	pts := make([]geometry.Point3, n)
	for i := range pts {
		pts[i] = pt(rng.Float64(), rng.Float64(), rng.Float64())
	}
	b.Run("BulkLoad", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BulkLoadPoints(pts)
		}
	})
	b.Run("Incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := New()
			for j, p := range pts {
				tr.Insert(p, j)
			}
		}
	})
}
