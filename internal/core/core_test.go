package core

import (
	"math"
	"math/rand"
	"testing"

	"stratrec/internal/availability"
	"stratrec/internal/batch"
	"stratrec/internal/linmodel"
	"stratrec/internal/strategy"
	"stratrec/internal/synth"
	"stratrec/internal/workforce"
)

// paperModels builds per-strategy models that reproduce the Table 1
// parameters at W = 0.8 (the running example's expected availability), with
// quality improving, and cost/latency falling as availability grows.
func paperModels(set strategy.Set) workforce.PerStrategyModels {
	const w0 = 0.8
	models := make(workforce.PerStrategyModels, len(set))
	for i, s := range set {
		// quality(w) = qAlpha*w + qBeta with quality(w0) = s.Quality.
		qAlpha := s.Quality * 0.4
		models[i] = linmodel.ParamModels{
			Quality: linmodel.Model{Alpha: qAlpha, Beta: s.Quality - qAlpha*w0},
			Cost:    linmodel.Model{Alpha: -0.1, Beta: s.Cost + 0.1*w0},
			Latency: linmodel.Model{Alpha: -0.3, Beta: s.Latency + 0.3*w0},
		}
	}
	return models
}

func TestNewValidation(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	if _, err := New(strategy.Set{}, paperModels(set), Config{}); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := New(set, nil, Config{}); err == nil {
		t.Error("nil models accepted")
	}
	sr, err := New(set, paperModels(set), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Strategies()) != 4 {
		t.Errorf("strategies = %d", len(sr.Strategies()))
	}
}

func TestRecommendValidation(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	sr, err := New(set, paperModels(set), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Recommend(nil, 0.8); err == nil {
		t.Error("empty batch accepted")
	}
	reqs := strategy.PaperExampleRequests()
	if _, err := sr.Recommend(reqs, 1.5); err == nil {
		t.Error("W > 1 accepted")
	}
	if _, err := sr.Recommend(reqs, -0.1); err == nil {
		t.Error("W < 0 accepted")
	}
}

// TestPaperRunningExample is the Section 2.2 walk-through: with W = 0.8,
// only d3 is fully served (with s2, s3, s4); d1 and d2 fall through to
// ADPaR and receive alternative parameters.
func TestPaperRunningExample(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	sr, err := New(set, paperModels(set), Config{Objective: batch.Throughput, Mode: workforce.MaxCase})
	if err != nil {
		t.Fatal(err)
	}
	reqs := strategy.PaperExampleRequests()
	report, err := sr.Recommend(reqs, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Satisfied) != 1 || report.Satisfied[0].Request != 2 {
		t.Fatalf("satisfied = %+v, want only d3 (index 2)", report.Satisfied)
	}
	rec := report.Satisfied[0].Strategies
	if len(rec) != 3 {
		t.Fatalf("d3 recommendations = %v", rec)
	}
	got := map[int]bool{}
	for _, id := range rec {
		got[id] = true
	}
	if !got[1] || !got[2] || !got[3] {
		t.Errorf("d3 strategies = %v, want {s2, s3, s4}", rec)
	}

	if len(report.Alternatives) != 2 {
		t.Fatalf("alternatives = %+v", report.Alternatives)
	}
	for _, alt := range report.Alternatives {
		if alt.Request != 0 && alt.Request != 1 {
			t.Errorf("alternative for request %d", alt.Request)
		}
		if !alt.HasSolution {
			t.Errorf("request %d got no ADPaR solution: %s", alt.Request, alt.Reason)
		}
		if len(alt.Solution.Covered) < reqs[alt.Request].K {
			t.Errorf("request %d alternative covers %d < k", alt.Request, len(alt.Solution.Covered))
		}
	}
	// d1's ADPaR answer is the Section 2.3 example (0.4, 0.5, 0.28).
	d1alt := report.Alternatives[0].Solution.Alternative
	if math.Abs(d1alt.Cost-0.5) > 1e-9 || math.Abs(d1alt.Quality-0.4) > 1e-9 || math.Abs(d1alt.Latency-0.28) > 1e-9 {
		t.Errorf("d1 alternative = %+v, want (0.4, 0.5, 0.28)", d1alt)
	}
}

func TestRecommendPDFUsesExpectation(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	sr, err := New(set, paperModels(set), Config{Objective: batch.Throughput, Mode: workforce.MaxCase})
	if err != nil {
		t.Fatal(err)
	}
	pdf, err := availability.NewPDF([]availability.Outcome{
		{Proportion: 0.7, Prob: 0.5}, {Proportion: 0.9, Prob: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	viaPDF, err := sr.RecommendPDF(strategy.PaperExampleRequests(), pdf)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sr.Recommend(strategy.PaperExampleRequests(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaPDF.Satisfied) != len(direct.Satisfied) || viaPDF.Objective != direct.Objective {
		t.Errorf("PDF route diverged: %+v vs %+v", viaPDF, direct)
	}
}

func TestSkipAlternatives(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	sr, err := New(set, paperModels(set), Config{SkipAlternatives: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sr.Recommend(strategy.PaperExampleRequests(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, alt := range report.Alternatives {
		if alt.HasSolution {
			t.Errorf("alternative computed despite SkipAlternatives: %+v", alt)
		}
		if alt.Reason == "" {
			t.Error("missing reason")
		}
	}
}

func TestEstimateParams(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	models := paperModels(set)
	sr, err := New(set, models, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// At W = 0.8 the estimates equal the Table 1 parameters.
	for j, s := range set {
		p := sr.EstimateParams(0, j, 0.8)
		if math.Abs(p.Quality-s.Quality) > 1e-9 ||
			math.Abs(p.Cost-s.Cost) > 1e-9 ||
			math.Abs(p.Latency-s.Latency) > 1e-9 {
			t.Errorf("strategy %d estimate at 0.8 = %+v, want %+v", j, p, s.Params)
		}
	}
}

func TestObjectiveAccountsPayoff(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	sr, err := New(set, paperModels(set), Config{Objective: batch.Payoff, Mode: workforce.MaxCase})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sr.Recommend(strategy.PaperExampleRequests(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Only d3 is satisfiable; the pay-off objective is its cost threshold.
	if math.Abs(report.Objective-0.83) > 1e-9 {
		t.Errorf("payoff objective = %v, want 0.83", report.Objective)
	}
}

// TestEndToEndSynthetic runs the full middle layer on a synthetic batch and
// checks the structural invariants: satisfied + alternatives partition the
// batch, recommended strategies satisfy their requests at the consumed
// workforce, and the workforce budget holds.
func TestEndToEndSynthetic(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cfg := synth.DefaultConfig(synth.Uniform)
	inst := cfg.Instance(rng, 300, 12, 3)
	sr, err := New(inst.Strategies, inst.Models, Config{Objective: batch.Throughput, Mode: workforce.MaxCase})
	if err != nil {
		t.Fatal(err)
	}
	const W = 0.6
	report, err := sr.Recommend(inst.Requests, W)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Satisfied)+len(report.Alternatives) != len(inst.Requests) {
		t.Fatalf("partition broken: %d + %d != %d",
			len(report.Satisfied), len(report.Alternatives), len(inst.Requests))
	}
	if report.WorkforceUsed > W+1e-9 {
		t.Errorf("workforce used %v > %v", report.WorkforceUsed, W)
	}
	for _, rec := range report.Satisfied {
		d := inst.Requests[rec.Request]
		if len(rec.Strategies) != d.K {
			t.Errorf("request %d got %d strategies, want %d", rec.Request, len(rec.Strategies), d.K)
		}
		for _, id := range rec.Strategies {
			// Every recommended strategy must meet the thresholds at some
			// availability within the consumed workforce.
			req := inst.Models.Models(uint64(rec.Request), id).Requirement(d.Params)
			if math.IsInf(req, 1) {
				t.Errorf("request %d recommended infeasible strategy %d", rec.Request, id)
			}
			if req > rec.Workforce+1e-9 {
				t.Errorf("request %d strategy %d needs %v > allocated %v", rec.Request, id, req, rec.Workforce)
			}
		}
	}
	for _, alt := range report.Alternatives {
		if alt.HasSolution && len(alt.Solution.Covered) < inst.Requests[alt.Request].K {
			t.Errorf("request %d alternative under-covers", alt.Request)
		}
	}
}

func TestCustomGoalOverridesObjective(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	goal, err := batch.NewWeightedGoal(
		[]batch.Goal{batch.ThroughputGoal{}, batch.PayoffGoal{}},
		[]float64{0.5, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := New(set, paperModels(set), Config{Goal: goal, Mode: workforce.MaxCase})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sr.Recommend(strategy.PaperExampleRequests(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Only d3 is satisfiable; the blended objective is 0.5*1 + 0.5*0.83.
	if math.Abs(report.Objective-(0.5+0.5*0.83)) > 1e-9 {
		t.Errorf("composite objective = %v", report.Objective)
	}
}

func TestWithFrontierAttachesParetoSet(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	sr, err := New(set, paperModels(set), Config{Mode: workforce.MaxCase, WithFrontier: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sr.Recommend(strategy.PaperExampleRequests(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, alt := range report.Alternatives {
		if !alt.HasSolution {
			continue
		}
		if len(alt.Frontier) == 0 {
			t.Fatalf("request %d: empty frontier", alt.Request)
		}
		if math.Abs(alt.Frontier[0].Distance-alt.Solution.Distance) > 1e-9 {
			t.Errorf("request %d: frontier head %v != solution %v",
				alt.Request, alt.Frontier[0].Distance, alt.Solution.Distance)
		}
	}
}
