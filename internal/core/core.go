// Package core is StratRec itself: the optimization-driven middle layer of
// Figure 1 that sits between requesters, workers and the platform. It wires
// the Aggregator pipeline — deployment strategy modeling (Section 3.1),
// workforce requirement computation (Section 3.2) and optimization-guided
// batch deployment (Section 3.3) — and routes every unsatisfied request
// through the Alternative Parameter Recommendation module (Section 4).
package core

import (
	"errors"
	"fmt"

	"stratrec/internal/adpar"
	"stratrec/internal/availability"
	"stratrec/internal/batch"
	"stratrec/internal/strategy"
	"stratrec/internal/workforce"
)

// Config selects the platform-centric goal and aggregation semantics.
type Config struct {
	// Objective is the platform goal F: throughput or pay-off. Ignored
	// when Goal is set.
	Objective batch.Objective
	// Goal, when non-nil, overrides Objective with an arbitrary
	// (possibly composite, possibly worker-centric) goal — the Section 7
	// extension surface. BatchStrat keeps its 1/2 guarantee for any
	// non-negative goal.
	Goal batch.Goal
	// Mode chooses sum-case (deploy with all k strategies) or max-case
	// (deploy with one of the k) workforce aggregation.
	Mode workforce.Mode
	// SkipAlternatives disables the ADPaR fallback; unsatisfied requests
	// are then reported without alternatives.
	SkipAlternatives bool
	// WithFrontier additionally attaches the Pareto frontier of
	// alternative parameters to each unsatisfied request (capped at
	// adpar.FrontierLimit strategies; larger catalogs silently skip it).
	WithFrontier bool
	// ADPaRParallelism caps the worker count of the ADPaR engine's
	// parallel outer-candidate sweep: 0 uses GOMAXPROCS, 1 forces the
	// sequential sweep. Either way results are identical; this is purely a
	// latency/CPU trade-off.
	ADPaRParallelism int
}

// StratRec is a configured middle layer for one platform: a strategy set,
// the fitted parameter models, the optimization configuration, and the
// ADPaR serving index compiled once over the strategy set so every
// unsatisfied request is answered without re-deriving the normalized
// problem.
type StratRec struct {
	strategies strategy.Set
	models     workforce.ModelProvider
	cfg        Config
	adparIdx   *adpar.Index
}

// New validates the inputs and builds the middle layer, compiling the
// ADPaR index for the strategy set. Layers configured with
// SkipAlternatives never consult ADPaR, so they skip the compilation (and
// its per-|S| memory) entirely.
func New(set strategy.Set, models workforce.ModelProvider, cfg Config) (*StratRec, error) {
	if models == nil {
		return nil, errors.New("core: nil model provider")
	}
	s := &StratRec{strategies: set, models: models, cfg: cfg}
	if cfg.SkipAlternatives {
		if err := set.Validate(); err != nil {
			return nil, err
		}
		return s, nil
	}
	ix, err := adpar.NewIndex(set) // validates the set
	if err != nil {
		return nil, err
	}
	ix.Parallelism = cfg.ADPaRParallelism
	s.adparIdx = ix
	return s, nil
}

// Strategies returns the strategy set the layer recommends from.
func (s *StratRec) Strategies() strategy.Set { return s.strategies }

// Recommendation is one satisfied deployment request.
type Recommendation struct {
	// Request is the position of the request in the batch.
	Request int
	// Strategies are the k recommended strategy IDs, cheapest first.
	Strategies []int
	// Workforce is the aggregated workforce the deployment consumes.
	Workforce float64
}

// Alternative is ADPaR's answer for one unsatisfied request.
type Alternative struct {
	// Request is the position of the request in the batch.
	Request int
	// Reason explains why the request was not satisfied.
	Reason string
	// Solution is the recommended alternative (zero-valued when
	// SkipAlternatives is set or ADPaR itself cannot help).
	Solution adpar.Solution
	// HasSolution reports whether Solution is meaningful.
	HasSolution bool
	// Frontier holds the Pareto frontier of alternatives when
	// Config.WithFrontier is set and the catalog is small enough;
	// Frontier[0] is the l2 optimum (== Solution up to ties).
	Frontier []adpar.Solution
}

// Report is the outcome of one batch recommendation round.
type Report struct {
	// Satisfied lists the served requests in selection order.
	Satisfied []Recommendation
	// Alternatives lists ADPaR recommendations for every unserved request,
	// in batch order.
	Alternatives []Alternative
	// Objective is the achieved platform objective F.
	Objective float64
	// WorkforceUsed is the total workforce consumed, out of the available
	// W.
	WorkforceUsed float64
}

// RecommendPDF runs a batch round against a worker-availability
// distribution, using its expectation as W (Section 2.1: "StratRec works
// with such expected values").
func (s *StratRec) RecommendPDF(requests []strategy.Request, pdf *availability.PDF) (Report, error) {
	return s.Recommend(requests, pdf.Expected())
}

// Recommend runs the Aggregator over a batch of deployment requests with
// available workforce W, and sends every unsatisfied request to ADPaR.
func (s *StratRec) Recommend(requests []strategy.Request, W float64) (Report, error) {
	if len(requests) == 0 {
		return Report{}, errors.New("core: empty request batch")
	}
	if W < 0 || W > 1 {
		return Report{}, fmt.Errorf("core: available workforce %v outside [0,1]", W)
	}
	// Step 1-2: model estimation and workforce requirement computation.
	mat, err := workforce.Compute(requests, s.strategies, s.models)
	if err != nil {
		return Report{}, err
	}
	vec := mat.Vector(requests, s.cfg.Mode)

	// Step 3: optimization-guided batch deployment.
	var items []batch.Item
	if s.cfg.Goal != nil {
		items = batch.CompositeItems(requests, vec, s.cfg.Goal)
	} else {
		items = batch.BuildItems(requests, vec, s.cfg.Objective)
	}
	plan := batch.BatchStrat(items, W)

	report := Report{
		Objective:     plan.Objective,
		WorkforceUsed: plan.Workforce,
	}
	for _, idx := range plan.Selected {
		report.Satisfied = append(report.Satisfied, Recommendation{
			Request:    idx,
			Strategies: plan.Recommendations[idx],
			Workforce:  vec[idx].Workforce,
		})
	}

	// ADPaR: unsatisfied requests, one by one (Section 2.2), all served from
	// the shared index compiled at construction.
	for i := range requests {
		if plan.IsSelected(i) {
			continue
		}
		alt := Alternative{Request: i}
		if !vec[i].Feasible() {
			alt.Reason = fmt.Sprintf("fewer than k=%d strategies can meet the requested parameters", requests[i].K)
		} else {
			alt.Reason = "available workforce exhausted by higher-priority requests"
		}
		if !s.cfg.SkipAlternatives {
			sol, err := s.adparIdx.Solve(requests[i])
			if err == nil {
				alt.Solution = sol
				alt.HasSolution = true
				if s.cfg.WithFrontier && len(s.strategies) <= adpar.FrontierLimit {
					if frontier, err := adpar.Frontier(s.strategies, requests[i]); err == nil {
						alt.Frontier = frontier
					}
				}
			} else {
				alt.Reason += "; ADPaR: " + err.Error()
			}
		}
		report.Alternatives = append(report.Alternatives, alt)
	}
	return report, nil
}

// EstimateParams returns the estimated parameters of strategy stratIdx for
// request reqIdx at availability w (the Deployment Strategy Modeling step a
// requester-facing UI would display).
func (s *StratRec) EstimateParams(reqIdx, stratIdx int, w float64) strategy.Params {
	return s.models.Models(uint64(reqIdx), stratIdx).ParamsAt(w)
}
