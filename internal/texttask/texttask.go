// Package texttask simulates the collaborative text-editing tasks of the
// paper's real-data experiments (Section 5.1): sentence translation
// (English nursery rhymes to Hindi in the paper) and text creation (short
// essays on a given topic). It is part of the AMT substitution documented
// in DESIGN.md: crowd workers become simulated contributors that apply
// edits to a shared document under a deployment strategy's Structure and
// Organization, a simulated domain expert scores the result, and the edit
// history exposes the "edit war" phenomenon the paper observed when
// unguided workers collaborate simultaneously.
//
// The simulation is calibrated: every contributor writes each word
// correctly with a probability derived from the ambient ground-truth
// quality, so the expert's score is an unbiased estimate of the
// ground-truth linear model the paper fitted (Table 6), while conflicts in
// unguided simultaneous-collaborative sessions depress the realized quality
// exactly the way Section 5.1.2 reports.
package texttask

import (
	"fmt"
	"math/rand"
	"strings"

	"stratrec/internal/strategy"
)

// Kind is the task type.
type Kind int

const (
	// Translation translates a short source text.
	Translation Kind = iota
	// Creation writes a few sentences on a topic.
	Creation
)

func (k Kind) String() string {
	switch k {
	case Translation:
		return "sentence-translation"
	case Creation:
		return "text-creation"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Task is one unit of work: a source text to translate, or a topic with
// reference sentences to write about.
type Task struct {
	Kind  Kind
	Title string
	// Lines is the source text (translation) or the reference outline
	// (creation), one sentence per line.
	Lines []string
}

// SampleTranslationTasks returns the paper's three nursery rhymes.
func SampleTranslationTasks() []Task {
	return []Task{
		{Kind: Translation, Title: "Mary Had a Little Lamb", Lines: []string{
			"Mary had a little lamb little lamb little lamb",
			"Mary had a little lamb its fleece was white as snow",
			"Everywhere that Mary went Mary went Mary went",
			"Everywhere that Mary went the lamb was sure to go",
		}},
		{Kind: Translation, Title: "Lavender's Blue", Lines: []string{
			"Lavender's blue dilly dilly",
			"Lavender's green",
			"When you are king dilly dilly",
			"I shall be queen",
		}},
		{Kind: Translation, Title: "Rock-a-bye Baby", Lines: []string{
			"Rock-a-bye baby in the treetop",
			"When the wind blows the cradle will rock",
			"When the bough breaks the cradle will fall",
			"And down will come baby cradle and all",
		}},
	}
}

// SampleCreationTasks returns the paper's three text-creation topics.
func SampleCreationTasks() []Task {
	return []Task{
		{Kind: Creation, Title: "Robert Mueller Report", Lines: []string{
			"The report documents the findings of the special counsel investigation",
			"It examines interference in the 2016 presidential election",
			"Thirty four individuals were indicted by investigators",
			"The report was submitted to the attorney general in March 2019",
			"It does not conclude that a crime was committed nor exonerate",
		}},
		{Kind: Creation, Title: "Notre Dame Cathedral", Lines: []string{
			"The cathedral is a medieval landmark on an island in Paris",
			"A structural fire broke out under the roof in April 2019",
			"The spire and most of the roof were destroyed in the blaze",
			"Donations for reconstruction exceeded eight hundred million euros",
			"Restoration work aims to preserve the original gothic design",
		}},
		{Kind: Creation, Title: "2019 Pulitzer Prizes", Lines: []string{
			"The prizes honor achievements in journalism letters and music",
			"The 2019 ceremony recognized coverage of mass shootings",
			"A special citation honored the staff of a Maryland newsroom",
			"The fiction award went to a novel about trees and activism",
			"Winners were announced at Columbia University in April",
		}},
	}
}

// Contributor is one simulated crowd worker participating in a session.
type Contributor struct {
	ID    string
	Skill float64 // [0,1], shifts the worker's correctness around the base
	Speed float64 // relative working speed, ~1.0
}

// Edit is one recorded document modification.
type Edit struct {
	Worker   string
	Line     int
	Revision int  // revision number of the line after this edit
	Conflict bool // true when the edit overrode a fresh concurrent edit
}

// Document is the shared (or per-worker) artifact a session produces.
type Document struct {
	// Correct[line][word] records whether the expert will judge the word
	// correct (faithfully translated / on topic).
	Correct [][]bool
	// Text holds the rendered lines, for human inspection.
	Text    []string
	History []Edit
}

// WordCount returns the total number of scored words.
func (d *Document) WordCount() int {
	n := 0
	for _, line := range d.Correct {
		n += len(line)
	}
	return n
}

// ExpertScore is the simulated domain expert's quality judgment: the
// fraction of correct words, the percentage-style score the paper's experts
// produced.
func (d *Document) ExpertScore() float64 {
	total, correct := 0, 0
	for _, line := range d.Correct {
		for _, ok := range line {
			total++
			if ok {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// MachineTranslator is the Google-Translate stand-in for HYB strategies: a
// deterministic translator with a fixed expected quality.
type MachineTranslator struct {
	// Quality is the per-word correctness probability of the machine
	// output. The paper's hybrid baseline is decent but below a skilled
	// crowd; 0.72 by default.
	Quality float64
}

// NewMachineTranslator returns the default machine translator.
func NewMachineTranslator() MachineTranslator { return MachineTranslator{Quality: 0.72} }

// Translate renders a machine translation of line and reports per-word
// correctness using rng.
func (mt MachineTranslator) Translate(line string, rng *rand.Rand) ([]bool, string) {
	words := strings.Fields(line)
	correct := make([]bool, len(words))
	out := make([]string, len(words))
	for i, w := range words {
		correct[i] = rng.Float64() < mt.Quality
		if correct[i] {
			out[i] = "mt:" + w
		} else {
			out[i] = "mt:~" + w
		}
	}
	return correct, strings.Join(out, " ")
}

// SessionConfig controls how a session executes.
type SessionConfig struct {
	// Dims is the deployment strategy's dimension combination; Structure
	// and Organization drive the edit dynamics, Style enables the machine
	// contribution.
	Dims strategy.Dimensions
	// Guided is true when the deployment follows a StratRec recommendation
	// (workers receive structure, organization and style instructions).
	// Unguided simultaneous-collaborative sessions develop edit wars.
	Guided bool
	// TeamCohesion is the formed team's cohesion in [0,1] (see the groups
	// package); cohesive teams collide less in collaborative sessions.
	// Zero means unknown and is treated as the neutral 0.5.
	TeamCohesion float64
	// BaseQuality is the ambient per-word correctness level, taken from
	// the ground-truth linear model at the session's worker availability.
	BaseQuality float64
	// Machine is used when Dims.Style == Hybrid.
	Machine MachineTranslator
}

// Result summarizes a finished session.
type Result struct {
	Quality    float64 // expert score of the final document
	TotalEdits int     // total recorded edits
	Conflicts  int     // edits that overrode concurrent work
	AvgEdits   float64 // edits per line, the §5.1.2 edit-war metric
	Doc        *Document
}

// Conflict dynamics: per-edit probability that a worker overrides a
// concurrent fresh edit, by (structure, organization, guided).
const (
	conflictSeqProb         = 0.02 // sequential work rarely collides
	conflictSimIndProb      = 0.00 // independent parallel copies cannot collide
	conflictSimColGuided    = 0.12 // guided collaboration: occasional collisions
	conflictSimColUnguided  = 0.45 // unguided: the paper's edit war
	conflictQualityPenalty  = 0.30 // quality lost per unit conflict ratio
	conflictReworkMultiplie = 1.0  // extra rework edits per conflict
)

// RunSession executes a task under a strategy with the given contributors
// and returns the realized quality and edit statistics.
func RunSession(task Task, workers []Contributor, cfg SessionConfig, rng *rand.Rand) Result {
	if len(workers) == 0 {
		return Result{Doc: &Document{}}
	}
	switch {
	case cfg.Dims.Organization == strategy.Independent && cfg.Dims.Structure == strategy.Simultaneous:
		return runIndependentParallel(task, workers, cfg, rng)
	case cfg.Dims.Structure == strategy.Sequential:
		return runSequential(task, workers, cfg, rng)
	default: // simultaneous collaborative
		return runCollaborative(task, workers, cfg, rng)
	}
}

// effectiveSkill is the worker's per-word correctness probability.
func effectiveSkill(base float64, w Contributor, rng *rand.Rand) float64 {
	p := base + (w.Skill-0.5)*0.12 + rng.NormFloat64()*0.02
	return clamp01(p)
}

// writeLine renders one worker's version of a line.
func writeLine(line string, prob float64, worker string, rng *rand.Rand) ([]bool, string) {
	words := strings.Fields(line)
	correct := make([]bool, len(words))
	out := make([]string, len(words))
	for i, w := range words {
		correct[i] = rng.Float64() < prob
		if correct[i] {
			out[i] = worker + ":" + w
		} else {
			out[i] = worker + ":~" + w
		}
	}
	return correct, strings.Join(out, " ")
}

// seqRevisionRate is the fraction of words a proofreading pass re-examines.
const seqRevisionRate = 0.35

// runSequential: the first worker drafts every line; later workers
// proofread in turn (the Soylent-style pipeline), fixing wrong words with
// probability proportional to their skill and occasionally breaking correct
// ones. The steady state of that drift is the workers' ambient skill level,
// which keeps the expert score calibrated to the ground-truth model.
// Conflicts are rare because turns do not overlap.
func runSequential(task Task, workers []Contributor, cfg SessionConfig, rng *rand.Rand) Result {
	doc := &Document{Correct: make([][]bool, len(task.Lines)), Text: make([]string, len(task.Lines))}
	revision := make([]int, len(task.Lines))
	conflicts := 0
	for wi, w := range workers {
		p := effectiveSkill(cfg.BaseQuality, w, rng)
		for li, line := range task.Lines {
			conflict := wi > 0 && rng.Float64() < conflictSeqProb
			if conflict {
				conflicts++
			}
			if wi == 0 {
				doc.Correct[li], doc.Text[li] = writeLine(line, p, w.ID, rng)
			} else {
				// Each re-examined word ends up correct with the
				// reviewer's own reliability p — reviewers fix mistakes
				// but also break correct words they misjudge.
				for wd := range doc.Correct[li] {
					if rng.Float64() < seqRevisionRate {
						doc.Correct[li][wd] = rng.Float64() < p
					}
				}
			}
			revision[li]++
			doc.History = append(doc.History, Edit{Worker: w.ID, Line: li, Revision: revision[li], Conflict: conflict})
		}
	}
	applyHybrid(task, doc, cfg, rng, &revision)
	return finish(task, doc, conflicts)
}

// runIndependentParallel: every worker produces an independent copy and an
// evaluation step keeps the best one (Figure 2c/2d). No conflicts by
// construction.
func runIndependentParallel(task Task, workers []Contributor, cfg SessionConfig, rng *rand.Rand) Result {
	best := &Document{Correct: make([][]bool, len(task.Lines)), Text: make([]string, len(task.Lines))}
	bestScore := -1.0
	totalEdits := 0
	for _, w := range workers {
		doc := &Document{Correct: make([][]bool, len(task.Lines)), Text: make([]string, len(task.Lines))}
		p := effectiveSkill(cfg.BaseQuality, w, rng)
		for li, line := range task.Lines {
			doc.Correct[li], doc.Text[li] = writeLine(line, p, w.ID, rng)
			doc.History = append(doc.History, Edit{Worker: w.ID, Line: li, Revision: 1})
		}
		totalEdits += len(task.Lines)
		if s := doc.ExpertScore(); s > bestScore {
			bestScore = s
			best.Correct, best.Text = doc.Correct, doc.Text
		}
	}
	// The evaluation step (and optional machine entrant) happens on the
	// winning copy; reconstruct a history reflecting total effort.
	best.History = make([]Edit, 0, totalEdits)
	for i := 0; i < totalEdits; i++ {
		best.History = append(best.History, Edit{Worker: workers[i%len(workers)].ID, Line: i % len(task.Lines), Revision: 1})
	}
	if cfg.Dims.Style == strategy.Hybrid {
		machine := &Document{Correct: make([][]bool, len(task.Lines)), Text: make([]string, len(task.Lines))}
		for li, line := range task.Lines {
			machine.Correct[li], machine.Text[li] = cfg.Machine.Translate(line, rng)
		}
		if machine.ExpertScore() > best.ExpertScore() {
			best.Correct, best.Text = machine.Correct, machine.Text
		}
	}
	return finish(task, best, 0)
}

// runCollaborative: workers edit one shared document concurrently. Without
// guidance they repeatedly override each other (the paper's edit war):
// conflicting edits replace better lines with fresh drafts and trigger
// rework rounds, so quality drops and edit counts climb.
func runCollaborative(task Task, workers []Contributor, cfg SessionConfig, rng *rand.Rand) Result {
	doc := &Document{Correct: make([][]bool, len(task.Lines)), Text: make([]string, len(task.Lines))}
	revision := make([]int, len(task.Lines))
	conflictProb := conflictSimColGuided
	if !cfg.Guided {
		conflictProb = conflictSimColUnguided
	}
	// Cohesive teams step on each other less (groups package): scale the
	// collision probability by 1.25 - 0.5*cohesion, neutral at 0.5.
	cohesion := cfg.TeamCohesion
	if cohesion == 0 {
		cohesion = 0.5
	}
	conflictProb *= 1.25 - 0.5*cohesion
	conflicts := 0
	type job struct {
		worker Contributor
		line   int
	}
	var queue []job
	for li := range task.Lines {
		for _, w := range workers {
			queue = append(queue, job{worker: w, line: li})
		}
	}
	rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })
	for qi := 0; qi < len(queue); qi++ {
		j := queue[qi]
		p := effectiveSkill(cfg.BaseQuality, j.worker, rng)
		li := j.line
		correct, text := writeLine(task.Lines[li], p, j.worker.ID, rng)
		conflict := revision[li] > 0 && rng.Float64() < conflictProb
		switch {
		case conflict:
			conflicts++
			// The override clobbers whatever was there, even if better,
			// and spawns a rework round for some other worker.
			doc.Correct[li], doc.Text[li] = correct, text
			if float64(len(queue)) < float64(len(workers)*len(task.Lines))*(1+conflictReworkMultiplie) {
				queue = append(queue, job{worker: workers[rng.Intn(len(workers))], line: li})
			}
		case doc.Correct[li] == nil:
			doc.Correct[li], doc.Text[li] = correct, text
		default:
			// A cooperative edit merges: each re-examined word ends up
			// correct with the editor's reliability, the same calibrated
			// drift as sequential proofreading.
			for wd := range doc.Correct[li] {
				if wd < len(correct) && rng.Float64() < seqRevisionRate {
					doc.Correct[li][wd] = correct[wd]
				}
			}
		}
		revision[li]++
		doc.History = append(doc.History, Edit{Worker: j.worker.ID, Line: li, Revision: revision[li], Conflict: conflict})
	}
	applyHybrid(task, doc, cfg, rng, &revision)
	res := finish(task, doc, conflicts)
	// Conflict churn costs quality beyond the clobbered lines (context is
	// lost between rework rounds).
	if res.TotalEdits > 0 {
		penalty := conflictQualityPenalty * float64(res.Conflicts) / float64(res.TotalEdits)
		res.Quality = clamp01(res.Quality - penalty)
	}
	return res
}

// applyHybrid lets the machine improve lines whose current state it beats.
func applyHybrid(task Task, doc *Document, cfg SessionConfig, rng *rand.Rand, revision *[]int) {
	if cfg.Dims.Style != strategy.Hybrid {
		return
	}
	for li, line := range task.Lines {
		correct, text := cfg.Machine.Translate(line, rng)
		if doc.Correct[li] == nil || score(correct) > score(doc.Correct[li]) {
			doc.Correct[li], doc.Text[li] = correct, text
			(*revision)[li]++
			doc.History = append(doc.History, Edit{Worker: "machine", Line: li, Revision: (*revision)[li]})
		}
	}
}

func finish(task Task, doc *Document, conflicts int) Result {
	res := Result{
		Quality:    doc.ExpertScore(),
		TotalEdits: len(doc.History),
		Conflicts:  conflicts,
		Doc:        doc,
	}
	if len(task.Lines) > 0 {
		res.AvgEdits = float64(res.TotalEdits) / float64(len(task.Lines))
	}
	return res
}

func score(correct []bool) float64 {
	if len(correct) == 0 {
		return 0
	}
	n := 0
	for _, ok := range correct {
		if ok {
			n++
		}
	}
	return float64(n) / float64(len(correct))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
