package texttask

import (
	"math"
	"math/rand"
	"testing"

	"stratrec/internal/stats"
	"stratrec/internal/strategy"
)

func workers(n int, skill float64) []Contributor {
	ws := make([]Contributor, n)
	for i := range ws {
		ws[i] = Contributor{ID: string(rune('a' + i)), Skill: skill, Speed: 1}
	}
	return ws
}

func dims(st strategy.Structure, org strategy.Organization, sty strategy.Style) strategy.Dimensions {
	return strategy.Dimensions{Structure: st, Organization: org, Style: sty}
}

func TestSampleTasks(t *testing.T) {
	tr := SampleTranslationTasks()
	if len(tr) != 3 {
		t.Fatalf("translation tasks = %d, want 3", len(tr))
	}
	for _, task := range tr {
		if task.Kind != Translation || len(task.Lines) < 4 {
			t.Errorf("bad translation task %+v", task.Title)
		}
	}
	cr := SampleCreationTasks()
	if len(cr) != 3 {
		t.Fatalf("creation tasks = %d, want 3", len(cr))
	}
	for _, task := range cr {
		if task.Kind != Creation || len(task.Lines) != 5 {
			t.Errorf("bad creation task %+v", task.Title)
		}
	}
}

func TestKindString(t *testing.T) {
	if Translation.String() != "sentence-translation" || Creation.String() != "text-creation" {
		t.Error("kind strings")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind string")
	}
}

func TestExpertScore(t *testing.T) {
	doc := &Document{Correct: [][]bool{{true, true, false}, {true, false, false}}}
	if got := doc.ExpertScore(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ExpertScore = %v, want 0.5", got)
	}
	if got := doc.WordCount(); got != 6 {
		t.Errorf("WordCount = %d", got)
	}
	empty := &Document{}
	if got := empty.ExpertScore(); got != 0 {
		t.Errorf("empty ExpertScore = %v", got)
	}
}

func TestMachineTranslator(t *testing.T) {
	mt := MachineTranslator{Quality: 1}
	rng := rand.New(rand.NewSource(1))
	correct, text := mt.Translate("mary had a little lamb", rng)
	if len(correct) != 5 {
		t.Fatalf("words = %d", len(correct))
	}
	for _, ok := range correct {
		if !ok {
			t.Error("perfect translator produced an error")
		}
	}
	if text == "" {
		t.Error("empty rendering")
	}
	mt = MachineTranslator{Quality: 0}
	correct, _ = mt.Translate("mary had a lamb", rng)
	for _, ok := range correct {
		if ok {
			t.Error("zero-quality translator produced a correct word")
		}
	}
}

func TestRunSessionEmptyWorkers(t *testing.T) {
	task := SampleTranslationTasks()[0]
	res := RunSession(task, nil, SessionConfig{}, rand.New(rand.NewSource(1)))
	if res.TotalEdits != 0 || res.Quality != 0 {
		t.Errorf("empty session = %+v", res)
	}
}

func TestSequentialQualityTracksBase(t *testing.T) {
	task := SampleTranslationTasks()[0]
	rng := rand.New(rand.NewSource(2))
	var scores []float64
	for trial := 0; trial < 60; trial++ {
		res := RunSession(task, workers(5, 0.6), SessionConfig{
			Dims:        dims(strategy.Sequential, strategy.Independent, strategy.CrowdOnly),
			Guided:      true,
			BaseQuality: 0.85,
		}, rng)
		scores = append(scores, res.Quality)
	}
	mean := 0.0
	for _, s := range scores {
		mean += s
	}
	mean /= float64(len(scores))
	// Sequential proofreading keeps the best version per line, so the mean
	// lands at or a bit above the base level.
	if mean < 0.82 || mean > 0.99 {
		t.Errorf("sequential mean quality = %v, want near/above base 0.85", mean)
	}
}

func TestEditWarDynamics(t *testing.T) {
	// The Section 5.1.2 observation: unguided simultaneous-collaborative
	// deployments have more edits and lower quality than guided ones.
	task := SampleTranslationTasks()[1]
	simCol := dims(strategy.Simultaneous, strategy.Collaborative, strategy.CrowdOnly)
	rngG := rand.New(rand.NewSource(3))
	rngU := rand.New(rand.NewSource(4))
	var gEdits, uEdits, gQual, uQual float64
	const trials = 80
	for i := 0; i < trials; i++ {
		g := RunSession(task, workers(7, 0.6), SessionConfig{Dims: simCol, Guided: true, BaseQuality: 0.88}, rngG)
		u := RunSession(task, workers(7, 0.6), SessionConfig{Dims: simCol, Guided: false, BaseQuality: 0.88}, rngU)
		gEdits += g.AvgEdits
		uEdits += u.AvgEdits
		gQual += g.Quality
		uQual += u.Quality
	}
	gEdits, uEdits = gEdits/trials, uEdits/trials
	gQual, uQual = gQual/trials, uQual/trials
	if uEdits <= gEdits*1.2 {
		t.Errorf("edit war missing: unguided %v edits vs guided %v", uEdits, gEdits)
	}
	if uQual >= gQual-0.02 {
		t.Errorf("edit war should cost quality: unguided %v vs guided %v", uQual, gQual)
	}
}

func TestIndependentParallelPicksBest(t *testing.T) {
	task := SampleTranslationTasks()[2]
	rng := rand.New(rand.NewSource(5))
	// One strong worker among weak ones: evaluation keeps the best copy,
	// so quality should beat the weak workers' level.
	ws := workers(5, 0.2)
	ws[3].Skill = 0.95
	var mean float64
	const trials = 60
	for i := 0; i < trials; i++ {
		res := RunSession(task, ws, SessionConfig{
			Dims:        dims(strategy.Simultaneous, strategy.Independent, strategy.CrowdOnly),
			Guided:      true,
			BaseQuality: 0.7,
		}, rng)
		mean += res.Quality
		if res.Conflicts != 0 {
			t.Fatal("independent parallel session reported conflicts")
		}
	}
	mean /= trials
	// The best worker writes at ~0.7 + 0.45*0.12 ~ 0.75; selection pushes
	// the expectation above the base.
	if mean < 0.7 {
		t.Errorf("evaluation should select the best copy: mean = %v", mean)
	}
}

func TestHybridLiftsWeakCrowd(t *testing.T) {
	task := SampleTranslationTasks()[0]
	rngC := rand.New(rand.NewSource(6))
	rngH := rand.New(rand.NewSource(6))
	var cro, hyb float64
	const trials = 60
	for i := 0; i < trials; i++ {
		c := RunSession(task, workers(3, 0.3), SessionConfig{
			Dims:   dims(strategy.Simultaneous, strategy.Independent, strategy.CrowdOnly),
			Guided: true, BaseQuality: 0.35,
		}, rngC)
		h := RunSession(task, workers(3, 0.3), SessionConfig{
			Dims:   dims(strategy.Simultaneous, strategy.Independent, strategy.Hybrid),
			Guided: true, BaseQuality: 0.35, Machine: NewMachineTranslator(),
		}, rngH)
		cro += c.Quality
		hyb += h.Quality
	}
	if hyb <= cro {
		t.Errorf("hybrid should lift a weak crowd: crowd-only %v vs hybrid %v", cro/trials, hyb/trials)
	}
}

func TestHybridAppliesToSequential(t *testing.T) {
	task := SampleTranslationTasks()[0]
	rng := rand.New(rand.NewSource(7))
	res := RunSession(task, workers(2, 0.1), SessionConfig{
		Dims:   dims(strategy.Sequential, strategy.Independent, strategy.Hybrid),
		Guided: true, BaseQuality: 0.1, Machine: MachineTranslator{Quality: 0.95},
	}, rng)
	if res.Quality < 0.5 {
		t.Errorf("machine pass should dominate a hopeless crowd: quality = %v", res.Quality)
	}
	// The machine's edits appear in the history.
	machineEdits := 0
	for _, e := range res.Doc.History {
		if e.Worker == "machine" {
			machineEdits++
		}
	}
	if machineEdits == 0 {
		t.Error("no machine edits recorded")
	}
}

func TestSessionDeterministicWithSeed(t *testing.T) {
	task := SampleCreationTasks()[0]
	cfg := SessionConfig{
		Dims:        dims(strategy.Simultaneous, strategy.Collaborative, strategy.CrowdOnly),
		Guided:      false,
		BaseQuality: 0.8,
	}
	a := RunSession(task, workers(4, 0.5), cfg, rand.New(rand.NewSource(42)))
	b := RunSession(task, workers(4, 0.5), cfg, rand.New(rand.NewSource(42)))
	if a.Quality != b.Quality || a.TotalEdits != b.TotalEdits || a.Conflicts != b.Conflicts {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestEditHistoryConsistency(t *testing.T) {
	task := SampleTranslationTasks()[0]
	rng := rand.New(rand.NewSource(8))
	res := RunSession(task, workers(5, 0.6), SessionConfig{
		Dims:        dims(strategy.Simultaneous, strategy.Collaborative, strategy.CrowdOnly),
		Guided:      false,
		BaseQuality: 0.8,
	}, rng)
	if res.TotalEdits != len(res.Doc.History) {
		t.Errorf("TotalEdits = %d, history = %d", res.TotalEdits, len(res.Doc.History))
	}
	if res.AvgEdits != float64(res.TotalEdits)/float64(len(task.Lines)) {
		t.Errorf("AvgEdits inconsistent")
	}
	conflictCount := 0
	for _, e := range res.Doc.History {
		if e.Line < 0 || e.Line >= len(task.Lines) {
			t.Fatalf("edit on line %d outside task", e.Line)
		}
		if e.Conflict {
			conflictCount++
		}
	}
	if conflictCount != res.Conflicts {
		t.Errorf("Conflicts = %d, history says %d", res.Conflicts, conflictCount)
	}
}

// TestSimulatedExpertAgreement re-judges a finished document with a second
// noisy expert and checks inter-rater agreement (Cohen's kappa) is far
// above chance — the sanity check behind trusting the simulated expert
// scores the Figure 12 / Table 6 pipeline consumes.
func TestSimulatedExpertAgreement(t *testing.T) {
	task := SampleTranslationTasks()[0]
	rng := rand.New(rand.NewSource(77))
	res := RunSession(task, workers(6, 0.6), SessionConfig{
		Dims:        dims(strategy.Sequential, strategy.Independent, strategy.CrowdOnly),
		Guided:      true,
		BaseQuality: 0.6, // mixed-quality output gives both labels mass
	}, rng)

	var rater1, rater2 []bool
	for _, line := range res.Doc.Correct {
		for _, ok := range line {
			rater1 = append(rater1, ok)
			// The second expert misjudges 8% of words.
			judged := ok
			if rng.Float64() < 0.08 {
				judged = !judged
			}
			rater2 = append(rater2, judged)
		}
	}
	kappa, err := stats.BoolKappa(rater1, rater2)
	if err != nil {
		t.Fatal(err)
	}
	if kappa < 0.6 {
		t.Errorf("expert agreement kappa = %v, want substantial (>0.6)", kappa)
	}
}
