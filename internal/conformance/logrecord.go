package conformance

import (
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"sync"
)

// logRecorder is the slog.Handler the overload oracle attaches to the
// phase-1 server: it writes every event as a JSON line to
// <dataDir>/structured-logs.jsonl (kept on violations, so CI uploads it
// with the rest of the durability root) and indexes terminal events —
// "reply" and "shed" — by trace ID so verifyAccounting can correlate
// every client-observed ack and shed to exactly one log line. Handler
// clones from WithAttrs share the core, so the lock covers every writer.
type logRecorder struct {
	core  *logCore
	bound []slog.Attr
}

type logCore struct {
	mu    sync.Mutex
	f     *os.File
	enc   *json.Encoder
	terms map[string][]string // trace ID -> terminal event names, in order
}

func newLogRecorder(path string) (*logRecorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &logRecorder{core: &logCore{f: f, enc: json.NewEncoder(f), terms: map[string][]string{}}}, nil
}

// terminals returns the terminal event names recorded for a trace ID.
func (r *logRecorder) terminals(trace string) []string {
	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	return r.core.terms[trace]
}

func (r *logRecorder) close() error { return r.core.f.Close() }

func (r *logRecorder) Enabled(_ context.Context, l slog.Level) bool { return l >= slog.LevelInfo }

func (r *logRecorder) Handle(_ context.Context, rec slog.Record) error {
	line := map[string]any{"level": rec.Level.String(), "event": rec.Message}
	for _, a := range r.bound {
		line[a.Key] = a.Value.Any()
	}
	rec.Attrs(func(a slog.Attr) bool {
		line[a.Key] = a.Value.Any()
		return true
	})
	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	if rec.Message == "reply" || rec.Message == "shed" {
		if trace, ok := line["trace"].(string); ok && trace != "" {
			r.core.terms[trace] = append(r.core.terms[trace], rec.Message)
		}
	}
	return r.core.enc.Encode(line)
}

func (r *logRecorder) WithAttrs(attrs []slog.Attr) slog.Handler {
	bound := append(append([]slog.Attr{}, r.bound...), attrs...)
	return &logRecorder{core: r.core, bound: bound}
}

func (r *logRecorder) WithGroup(string) slog.Handler { return r }
