package conformance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestOverloadProfilesAccounting runs every chaos profile and requires a
// clean shed-accounting ledger: all acked mutations recovered, all shed
// mutations absent, epochs exactly once — and the run must actually have
// shed (the teeth invariant inside the oracle itself).
func TestOverloadProfilesAccounting(t *testing.T) {
	for _, profile := range OverloadProfiles {
		t.Run(string(profile), func(t *testing.T) {
			t.Parallel()
			res, err := RunOverload(OverloadConfig{
				Profile:    profile,
				Seed:       31,
				DeadlineMs: 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(res)
			if !res.OK() {
				t.Fatalf("accounting violations:\n%s", res)
			}
			if res.Shed == 0 {
				t.Fatal("profile shed nothing; the run proves nothing")
			}
			if profile == RevokeStormShed && res.Acked == 0 {
				t.Fatal("revoke storm acked nothing")
			}
		})
	}
}

// TestOverloadGroupCommitAccounting: the commit scheduler under chaos.
// With group commit sharing fsyncs and the fsync-failure schedule
// tripping the read-only breaker mid-run, the ledger must still balance:
// every acked mutation recovered, every shed absent, epochs exactly once.
func TestOverloadGroupCommitAccounting(t *testing.T) {
	res, err := RunOverload(OverloadConfig{
		Profile:           RevokeStormShed,
		Seed:              31,
		DeadlineMs:        10,
		GroupCommitWindow: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.OK() {
		t.Fatalf("accounting violations under group commit:\n%s", res)
	}
	if res.Shed == 0 {
		t.Fatal("profile shed nothing; the run proves nothing")
	}
}

// TestOverloadGroupCommitAppendFailureAccounting: the append-path
// counterpart of the group-commit chaos run. A WAL append failure rolls
// the log back to its durable prefix, which under group commit destroys
// the earlier records of the same coalesced batch — ops whose appends
// succeeded and whose records are suddenly gone. The ledger must still
// balance: no op acked before the mid-batch failure may turn up
// acked-but-absent after the restart, and everything rolled back must
// have been answered 503.
func TestOverloadGroupCommitAppendFailureAccounting(t *testing.T) {
	res, err := RunOverload(OverloadConfig{
		Profile:           RevokeStormShed,
		Seed:              31,
		DeadlineMs:        10,
		GroupCommitWindow: 200 * time.Microsecond,
		WALFailAppends:    25,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.OK() {
		t.Fatalf("accounting violations under a mid-run append failure:\n%s", res)
	}
	if res.Shed == 0 {
		t.Fatal("profile shed nothing; the run proves nothing")
	}
}

// TestOverloadThunderingHerdPoolSheds: the herd profile must also have
// driven the 1-worker alternative pool into shedding reads.
func TestOverloadThunderingHerdPoolSheds(t *testing.T) {
	res, err := RunOverload(OverloadConfig{
		Profile:      ThunderingHerd,
		Seed:         7,
		Workers:      10,
		OpsPerWorker: 80,
		OpBuffer:     4,
		// A big catalog makes each alternative solve heavy enough that 8
		// sticky readers reliably overrun the 1-worker/1-queued pool.
		Strategies: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("accounting violations:\n%s", res)
	}
	// Pool sheds are timing-dependent in degree but with 4 readers
	// against a 1-worker/1-queued pool under slow-apply they must occur.
	if res.ReadSheds == 0 {
		t.Fatal("no alternative-query sheds despite a saturated 1-worker pool")
	}
}

// TestOverloadOracleCatchesLostAck is the teeth test: sabotage the WAL
// between kill and restart by chopping the last appended record, so one
// acked mutation does not survive recovery. The oracle must report it —
// an oracle that stays green under this sabotage verifies nothing.
func TestOverloadOracleCatchesLostAck(t *testing.T) {
	res, err := RunOverload(OverloadConfig{
		Profile: ThunderingHerd,
		Seed:    13,
		BetweenPhases: func(dataDir string) error {
			return chopLastWALRecord(dataDir)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(res.DataDir) // kept because the run "failed" — by design
	if res.OK() {
		t.Fatal("oracle reported clean accounting despite a chopped acked record")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v, "ABSENT") || strings.Contains(v, "recovered epoch") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations do not name the lost ack:\n%s", res)
	}
}

// chopLastWALRecord truncates the newest live WAL segment under root by
// its final line (one record), simulating an acked byte range lost by the
// storage layer.
func chopLastWALRecord(root string) error {
	tenants, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	for _, te := range tenants {
		if !te.IsDir() {
			continue
		}
		dir := filepath.Join(root, te.Name())
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		var last string
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
				last = e.Name() // sorted by name = by first seq
			}
		}
		if last == "" {
			continue
		}
		path := filepath.Join(dir, last)
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Drop the final newline-terminated record.
		cut := len(b)
		if cut > 0 && b[cut-1] == '\n' {
			cut--
		}
		for cut > 0 && b[cut-1] != '\n' {
			cut--
		}
		if err := os.WriteFile(path, b[:cut], 0o644); err != nil {
			return err
		}
	}
	return nil
}
