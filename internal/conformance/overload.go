package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stratrec/internal/server"
)

// OverloadProfile names a chaos traffic shape for RunOverload.
type OverloadProfile string

const (
	// ThunderingHerd: many writers submitting at once into a small inbox
	// with slow-apply injected, while readers hammer ADPaR alternatives
	// through a deliberately tiny query pool. The profile models the
	// paper's worst access pattern — displaced requests re-polling
	// alternatives while new work floods in.
	ThunderingHerd OverloadProfile = "thundering-herd"
	// RevokeStormShed: a base pool is admitted, then many writers race
	// revokes against fresh submits under inbox pressure, with a WAL
	// fsync failure injected mid-storm so the read-only circuit breaker
	// trips while sheds are in flight.
	RevokeStormShed OverloadProfile = "revoke-storm-shed"
	// AvailFlap: writers flap availability with globally unique values
	// between submit bursts; the recovered availability must be exactly
	// the acked flap with the highest epoch.
	AvailFlap OverloadProfile = "avail-flap"
)

// OverloadProfiles lists every profile RunOverload accepts.
var OverloadProfiles = []OverloadProfile{ThunderingHerd, RevokeStormShed, AvailFlap}

// OverloadConfig tunes a chaos overload run.
type OverloadConfig struct {
	Profile OverloadProfile
	// Seed picks the tenant catalog (and nothing else: the workload
	// itself is exhaustively accounted, not sampled).
	Seed int64
	// Strategies sizes the tenant catalog (0 = 16). Larger catalogs make
	// each ADPaR alternative solve proportionally heavier — the lever
	// for saturating the query pool.
	Strategies int
	// Workers is the number of concurrent writer goroutines (0 = 8).
	Workers int
	// OpsPerWorker is each writer's mutation budget (0 = 60).
	OpsPerWorker int
	// OpBuffer is the tenant inbox capacity (0 = 4; smaller than the
	// default worker count on purpose — with more writers than inbox
	// slots and slow-apply injected, queue-full sheds are structural,
	// not a timing accident).
	OpBuffer int
	// ApplyDelay is the injected slow-apply per mutation (0 = 300µs).
	ApplyDelay time.Duration
	// SolveDelay stretches each pooled alternative solve
	// (thundering-herd defaults to 1ms — the warm-index solve is
	// microseconds, far too fast to ever contend the pool).
	SolveDelay time.Duration
	// DeadlineMs, when > 0, attaches X-Request-Deadline-Ms to every
	// third mutation so the deadline shed paths run too.
	DeadlineMs int
	// WALFailSyncs fails every WAL fsync from the Nth onward (0 =
	// never), tripping the read-only breaker mid-run. RevokeStormShed
	// defaults it to 40 when unset.
	WALFailSyncs int
	// WALFailAppends fails every WAL record append from the Nth onward
	// (0 = never). Unlike a sync failure, an append failure rolls the
	// log back to its durable prefix — under group commit that prefix
	// excludes earlier records of the same coalesced batch, so the
	// server must un-acknowledge those ops too (503, absent after
	// restart) or the ledger shows acked-but-absent mutations.
	WALFailAppends int
	// P99Budget bounds the client-observed mutation latency p99 (0 = 2s
	// — generous, the point is that no mutation parks on a blocked send).
	P99Budget time.Duration
	// GroupCommitWindow, when positive, runs the overloaded phase-1
	// server with cross-tenant group commit at that window: the commit
	// scheduler must uphold acked ⇒ fsynced and no-trace-on-shed under
	// the same chaos the per-append policy is audited against. The
	// restarted server recovers with plain per-append fsyncs either way.
	GroupCommitWindow time.Duration
	// DataDir is the durability root; empty uses a temp dir removed
	// after a clean run and kept on violations (CI artifact).
	DataDir string
	// BetweenPhases, when non-nil, runs between the kill and the
	// restart with the durability root — the sabotage point teeth tests
	// use to prove the oracle catches lost acks and resurrected sheds.
	BetweenPhases func(dataDir string) error
}

func (cfg OverloadConfig) withDefaults() OverloadConfig {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 60
	}
	if cfg.OpBuffer <= 0 {
		cfg.OpBuffer = 4
	}
	if cfg.ApplyDelay <= 0 {
		cfg.ApplyDelay = 300 * time.Microsecond
	}
	if cfg.SolveDelay <= 0 && cfg.Profile == ThunderingHerd {
		cfg.SolveDelay = time.Millisecond
	}
	if cfg.P99Budget <= 0 {
		cfg.P99Budget = 2 * time.Second
	}
	if cfg.Strategies <= 0 {
		cfg.Strategies = 16
	}
	if cfg.Profile == RevokeStormShed && cfg.WALFailSyncs == 0 {
		cfg.WALFailSyncs = 40
	}
	return cfg
}

// OverloadResult is the shed-accounting ledger of one chaos run. It is
// JSON-serializable so a failing CI run can upload it as an artifact.
type OverloadResult struct {
	Profile OverloadProfile `json:"profile"`
	Seed    int64           `json:"seed"`
	// Acked counts 2xx mutations; every one must be present in the
	// recovered state. Shed counts 429/503 mutations; every one must be
	// absent. Domain counts expected domain errors (e.g. a revoke that
	// lost its race), which are neither.
	Acked  int `json:"acked"`
	Shed   int `json:"shed"`
	Domain int `json:"domain"`
	// ReadSheds counts 429s on the ADPaR alternative read path
	// (thundering-herd only); reads carry no accounting obligations.
	ReadSheds int `json:"read_sheds"`
	// P99 is the client-observed mutation latency p99.
	P99 time.Duration `json:"p99_ns"`
	// RecoveryDuration is the restart's server.New time.
	RecoveryDuration time.Duration `json:"recovery_ns"`
	// Violations lists every broken accounting invariant; empty = pass.
	Violations []string `json:"violations"`
	// DataDir is the durability root; it still exists iff the run
	// violated or errored.
	DataDir string `json:"data_dir"`
}

// OK reports whether the run satisfied every accounting invariant.
func (r *OverloadResult) OK() bool { return len(r.Violations) == 0 }

// WriteArtifact dumps the ledger as indented JSON to path.
func (r *OverloadResult) WriteArtifact(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func (r *OverloadResult) String() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "overload %s seed=%d: %d acked, %d shed, %d domain, %d read-shed, p99=%v, recovery=%v",
		r.Profile, r.Seed, r.Acked, r.Shed, r.Domain, r.ReadSheds, r.P99, r.RecoveryDuration)
	for _, v := range r.Violations {
		fmt.Fprintf(&buf, "\n  VIOLATION: %s", v)
	}
	return buf.String()
}

// ackRecord is one acknowledged mutation as the client saw it.
type ackRecord struct {
	kind  Kind
	id    string  // submit/revoke
	w     float64 // drift
	epoch uint64
	trace string // the X-Trace-Id the mutation carried
}

// workerLedger is one writer's private accounting — merged after the
// storm, so the hot path takes no shared locks.
type workerLedger struct {
	acked      []ackRecord
	shedSubmit []string
	shedRevoke []string
	// shedTraces collects the trace IDs of every shed mutation (submit,
	// revoke and drift): each must correlate to exactly one "shed" log
	// line, the observability half of the no-trace-on-shed promise.
	shedTraces []string
	domain     int
	latencies  []time.Duration
	err        error
}

// RunOverload is the chaos shed-accounting oracle. It drives one durable
// tenant with concurrent writers through the real HTTP stack while fault
// injection (slow-apply, inbox pressure, optional WAL fsync failures)
// forces admission control to shed, then kills the server, restarts it
// from disk, and verifies exactly-once accounting:
//
//   - every 2xx-acked submit (not later acked-revoked) is present in the
//     recovered state, with the exact parameters submitted;
//   - every shed (429/503) submit is absent, and every shed revoke left
//     its target present;
//   - acked mutations carry exactly the epochs 1..N (no gap, no dup) and
//     the recovered epoch is N — acked ⇔ logged ⇔ recovered, exactly once;
//   - the recovered availability is the acked drift with the highest
//     epoch (drift values are globally unique, so this is sharp);
//   - client-observed mutation latency p99 stays under budget (a blocking
//     enqueue would park writers arbitrarily long — the tail this layer
//     removes);
//   - the profile actually shed: a chaos run that never triggered
//     admission control proves nothing and is reported as a violation.
//
// Workers own disjoint ID spaces, submit each ID at most once and revoke
// only IDs whose submit they saw acked, so set comparison against the
// recovered state needs no cross-worker ordering assumptions; the total
// order the accounting does use — the epoch — is the one the server
// acknowledges explicitly.
func RunOverload(cfg OverloadConfig) (*OverloadResult, error) {
	cfg = cfg.withDefaults()
	res := &OverloadResult{Profile: cfg.Profile, Seed: cfg.Seed}
	switch cfg.Profile {
	case ThunderingHerd, RevokeStormShed, AvailFlap:
	default:
		return res, fmt.Errorf("conformance: unknown overload profile %q", cfg.Profile)
	}

	tr, err := Generate(GenConfig{Seed: cfg.Seed, Events: 1, Tenants: 1, Strategies: cfg.Strategies})
	if err != nil {
		return res, err
	}
	spec := tr.Tenants[0]
	model, err := newTenantModel(spec)
	if err != nil {
		return res, err
	}

	dataDir := cfg.DataDir
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "stratrec-overload-*")
		if err != nil {
			return res, err
		}
		dataDir = tmp
	} else if entries, err := os.ReadDir(dataDir); err == nil && len(entries) > 0 {
		return res, fmt.Errorf("conformance: overload data dir %s is not empty", dataDir)
	}
	res.DataDir = dataDir
	keep := false
	defer func() {
		if !keep && cfg.DataDir == "" {
			os.RemoveAll(dataDir)
		}
	}()

	// Phase 1 server: small inbox, injected faults, tiny query pool.
	syncs := 0
	faults := &server.Faults{
		ApplyDelay: func(kind, id string) time.Duration { return cfg.ApplyDelay },
		SolveDelay: cfg.SolveDelay,
	}
	if cfg.WALFailSyncs > 0 {
		faults.WALSync = func() error {
			syncs++ // loop goroutine only, per Faults contract
			if syncs >= cfg.WALFailSyncs {
				return fmt.Errorf("injected fsync failure (sync %d)", syncs)
			}
			return nil
		}
	}
	if cfg.WALFailAppends > 0 {
		appends := 0
		faults.WALAppend = func() error {
			appends++ // loop goroutine only, per Faults contract
			if appends >= cfg.WALFailAppends {
				return fmt.Errorf("injected append failure (append %d)", appends)
			}
			return nil
		}
	}
	tenantCfg := server.TenantConfig{
		Set:       model.set,
		Models:    model.models,
		Mode:      model.mode,
		Objective: model.objective,
		InitialW:  spec.InitialW,
		OpBuffer:  cfg.OpBuffer,
		Faults:    faults,
	}
	// The phase-1 server logs structured events through a recorder that
	// both persists them (CI artifact on failure) and indexes terminal
	// events by trace for the correlation check below.
	rec, err := newLogRecorder(filepath.Join(dataDir, "structured-logs.jsonl"))
	if err != nil {
		keep = true
		return res, err
	}
	s1, err := server.New(server.Config{
		Tenants:              map[string]server.TenantConfig{spec.Name: tenantCfg},
		DataDir:              dataDir,
		WALSyncEvery:         1,
		WALGroupCommitWindow: cfg.GroupCommitWindow,
		ADPaRWorkers:         1,
		ADPaRQueue:           1,
		Logger:               slog.New(rec),
	})
	if err != nil {
		keep = true
		rec.close()
		return res, err
	}
	hs := httptest.NewServer(s1.Handler())

	ledgers := runStorm(hs, spec.Name, cfg, res)
	hs.Close()
	s1.Close() // the kill: WAL closes with only-acked bytes on disk
	if err := rec.close(); err != nil {
		keep = true
		return res, err
	}
	for _, l := range ledgers {
		if l.err != nil {
			keep = true
			return res, l.err
		}
	}

	if cfg.BetweenPhases != nil {
		if err := cfg.BetweenPhases(dataDir); err != nil {
			keep = true
			return res, err
		}
	}

	// Restart from disk with a clean config: no faults, real pool. The
	// fsync-failure schedule must not survive the operator restart the
	// read-only breaker asks for.
	tenantCfg.Faults = nil
	start := time.Now() //lint:allow clockdiscipline -- RecoveryDuration reports real restart latency to the operator
	s2, err := server.New(server.Config{
		Tenants:      map[string]server.TenantConfig{spec.Name: tenantCfg},
		DataDir:      dataDir,
		WALSyncEvery: 1,
	})
	res.RecoveryDuration = time.Since(start) //lint:allow clockdiscipline -- RecoveryDuration reports real restart latency to the operator
	if err != nil {
		keep = true
		return res, fmt.Errorf("conformance: recovery after overload: %w", err)
	}
	defer s2.Close()
	tn, err := s2.Tenant(spec.Name)
	if err != nil {
		keep = true
		return res, err
	}

	verifyAccounting(cfg, spec.InitialW, ledgers, tn, res)
	verifyTraceCorrelation(ledgers, rec, res)
	if !res.OK() {
		keep = true
	}
	return res, nil
}

// runStorm fires the profile's writer (and, for thundering-herd, reader)
// goroutines against the live server and returns their ledgers.
func runStorm(hs *httptest.Server, tenant string, cfg OverloadConfig, res *OverloadResult) []*workerLedger {
	client := hs.Client()
	base := hs.URL + "/v1/tenants/" + tenant

	startGate := make(chan struct{})
	stopReads := make(chan struct{})
	var readSheds atomic.Int64
	var readers sync.WaitGroup
	if cfg.Profile == ThunderingHerd {
		// Readers hammer the alternative endpoint of whatever request is
		// currently displaced, through a 1-worker/1-queued pool: most
		// must shed 429 without perturbing mutation accounting. They run
		// until the writers finish.
		for r := 0; r < 8; r++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				<-startGate
				var target string
				for {
					select {
					case <-stopReads:
						return
					default:
					}
					hammerAlternative(client, base, &target, &readSheds)
				}
			}()
		}
	}

	ledgers := make([]*workerLedger, cfg.Workers)
	var writers sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		led := &workerLedger{}
		ledgers[w] = led
		writers.Add(1)
		go func(w int, led *workerLedger) {
			defer writers.Done()
			<-startGate
			driveWorker(client, base, cfg, w, led)
		}(w, led)
	}
	close(startGate)
	writers.Wait()
	close(stopReads)
	readers.Wait()
	res.ReadSheds = int(readSheds.Load())
	return ledgers
}

// hammerAlternative queries the alternative of a displaced request;
// 200/404/409 are fine, 429 is the pool shedding (counted), anything else
// is ignored here — reads carry no accounting obligations. The reader
// sticks to its target across calls (refreshing only when the target is
// gone), so the readers genuinely pile onto the pool instead of spending
// their time decoding plans.
func hammerAlternative(client *http.Client, base string, target *string, readSheds *atomic.Int64) {
	if *target == "" {
		resp, err := client.Get(base + "/plan")
		if err != nil {
			return
		}
		var plan server.PlanResponse
		err = json.NewDecoder(resp.Body).Decode(&plan)
		resp.Body.Close()
		if err != nil || len(plan.Displaced) == 0 {
			return
		}
		*target = plan.Displaced[0]
	}
	resp, err := client.Get(base + "/requests/" + *target + "/alternative")
	if err != nil {
		return
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		readSheds.Add(1)
	case http.StatusNotFound, http.StatusConflict:
		*target = "" // revoked or now serving: pick a new one
	}
}

// driveWorker runs one writer's op sequence for the profile. IDs live in
// the worker's own space ("w3-17"); drift values are globally unique
// (worker w, op i → a value no other (w,i) produces).
func driveWorker(client *http.Client, base string, cfg OverloadConfig, w int, led *workerLedger) {
	for i := 0; i < cfg.OpsPerWorker; i++ {
		deadline := 0
		if cfg.DeadlineMs > 0 && i%3 == 2 {
			deadline = cfg.DeadlineMs
		}
		switch cfg.Profile {
		case AvailFlap:
			if i%4 == 3 {
				// Globally unique availability in (0, 1): distinct for
				// every (worker, op) pair, so the recovered value
				// identifies exactly one acked drift.
				k := w*cfg.OpsPerWorker + i
				v := 0.05 + 0.9*float64(k)/float64(cfg.Workers*cfg.OpsPerWorker)
				doDrift(client, base, v, deadline, led)
				continue
			}
			doSubmit(client, base, cfg, w, i, deadline, led)
		case RevokeStormShed:
			if i%3 == 2 && len(led.acked) > 0 {
				// Revoke the worker's own most recent acked submit.
				for j := len(led.acked) - 1; j >= 0; j-- {
					if led.acked[j].kind == KindSubmit && !revokedAlready(led, led.acked[j].id) {
						doRevoke(client, base, led.acked[j].id, deadline, led)
						break
					}
				}
				continue
			}
			doSubmit(client, base, cfg, w, i, deadline, led)
		default: // ThunderingHerd
			doSubmit(client, base, cfg, w, i, deadline, led)
		}
		if led.err != nil {
			return
		}
	}
}

func revokedAlready(led *workerLedger, id string) bool {
	for _, a := range led.acked {
		if a.kind == KindRevoke && a.id == id {
			return true
		}
	}
	for _, s := range led.shedRevoke {
		if s == id {
			return true
		}
	}
	return false
}

// submitParams derives the deterministic parameters for worker w's op i,
// so the recovered-state check can verify them byte-for-byte. Qualities
// span up to 0.9 so the pool always outgrows the availability and keeps a
// displaced population for the alternative-query readers to hammer.
func submitParams(w, i int) (q, c, l float64) {
	q = 0.30 + 0.006*float64((w*7+i)%100)
	return q, 0.90, 0.90
}

func doSubmit(client *http.Client, base string, cfg OverloadConfig, w, i, deadlineMs int, led *workerLedger) {
	id := fmt.Sprintf("w%d-%d", w, i)
	trace := "sub-" + id // worker-scoped ID spaces make these globally unique
	q, c, l := submitParams(w, i)
	body, _ := json.Marshal(server.SubmitRequest{ID: id, Quality: q, Cost: c, Latency: l, K: 1})
	status, out, err := doMutation(client, "POST", base+"/requests", body, deadlineMs, trace, led)
	if err != nil {
		led.err = err
		return
	}
	switch {
	case status == http.StatusOK:
		led.acked = append(led.acked, ackRecord{kind: KindSubmit, id: id, epoch: out.Epoch, trace: trace})
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		led.shedSubmit = append(led.shedSubmit, id)
		led.shedTraces = append(led.shedTraces, trace)
	case status >= 400 && status < 500:
		led.domain++
	default:
		led.err = fmt.Errorf("conformance: submit %s: unexpected status %d", id, status)
	}
}

func doRevoke(client *http.Client, base string, id string, deadlineMs int, led *workerLedger) {
	trace := "rev-" + id // one revoke per ID per worker (see revokedAlready)
	status, out, err := doMutation(client, "DELETE", base+"/requests/"+id, nil, deadlineMs, trace, led)
	if err != nil {
		led.err = err
		return
	}
	switch {
	case status == http.StatusOK:
		led.acked = append(led.acked, ackRecord{kind: KindRevoke, id: id, epoch: out.Epoch, trace: trace})
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		led.shedRevoke = append(led.shedRevoke, id)
		led.shedTraces = append(led.shedTraces, trace)
	case status >= 400 && status < 500:
		led.domain++
	default:
		led.err = fmt.Errorf("conformance: revoke %s: unexpected status %d", id, status)
	}
}

func doDrift(client *http.Client, base string, w float64, deadlineMs int, led *workerLedger) {
	trace := fmt.Sprintf("drift-%v", w) // drift values are globally unique
	body, _ := json.Marshal(server.AvailabilityRequest{Workforce: w})
	status, out, err := doMutation(client, "PUT", base+"/availability", body, deadlineMs, trace, led)
	if err != nil {
		led.err = err
		return
	}
	switch {
	case status == http.StatusOK:
		led.acked = append(led.acked, ackRecord{kind: KindDrift, w: w, epoch: out.Epoch, trace: trace})
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		// A shed drift simply never happened in the recovered state, but
		// its shed must still log exactly once.
		led.shedTraces = append(led.shedTraces, trace)
	case status >= 400 && status < 500:
		led.domain++
	default:
		led.err = fmt.Errorf("conformance: drift %v: unexpected status %d", w, status)
	}
}

// mutationAck is the part of every 2xx mutation body the ledger needs.
type mutationAck struct {
	Epoch uint64 `json:"epoch"`
}

// doMutation performs one HTTP mutation, timing it and validating the
// 429/503 Retry-After contract and the trace echo.
func doMutation(client *http.Client, method, url string, body []byte, deadlineMs int, trace string, led *workerLedger) (int, mutationAck, error) {
	var out mutationAck
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return 0, out, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if deadlineMs > 0 {
		req.Header.Set(server.DeadlineHeader, strconv.Itoa(deadlineMs))
	}
	req.Header.Set(server.TraceHeader, trace)
	start := time.Now() //lint:allow clockdiscipline -- storm ledgers record real HTTP round-trip latency
	resp, err := client.Do(req)
	elapsed := time.Since(start) //lint:allow clockdiscipline -- storm ledgers record real HTTP round-trip latency
	if err != nil {
		return 0, out, err
	}
	defer resp.Body.Close()
	led.latencies = append(led.latencies, elapsed)
	if echo := resp.Header.Get(server.TraceHeader); echo != trace {
		return resp.StatusCode, out, fmt.Errorf("conformance: trace echo %q != sent %q", echo, trace)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, out, fmt.Errorf("conformance: decoding ack: %w", err)
		}
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			return resp.StatusCode, out, fmt.Errorf("conformance: %d response without Retry-After", resp.StatusCode)
		} else if n, err := strconv.Atoi(ra); err != nil || n < 1 {
			return resp.StatusCode, out, fmt.Errorf("conformance: %d response with bad Retry-After %q", resp.StatusCode, ra)
		}
	}
	return resp.StatusCode, out, nil
}

// verifyAccounting merges the ledgers and checks every invariant against
// the recovered tenant.
func verifyAccounting(cfg OverloadConfig, initialW float64, ledgers []*workerLedger, tn *server.Tenant, res *OverloadResult) {
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	var acked []ackRecord
	shedSubmits := map[string]bool{}
	shedRevokes := map[string]bool{}
	var lat []time.Duration
	for _, led := range ledgers {
		acked = append(acked, led.acked...)
		for _, id := range led.shedSubmit {
			shedSubmits[id] = true
		}
		for _, id := range led.shedRevoke {
			shedRevokes[id] = true
		}
		res.Domain += led.domain
		lat = append(lat, led.latencies...)
	}
	res.Acked = len(acked)
	// Every completed mutation is acked, shed or a domain error (any
	// other outcome aborted the run), so sheds — including drift sheds,
	// which need no per-ID record — fall out of the totals.
	res.Shed = len(lat) - res.Acked - res.Domain

	// Teeth: a chaos profile that never shed proves nothing.
	if res.Shed == 0 {
		violate("profile %s produced zero sheds — overload never engaged (tune OpBuffer/ApplyDelay)", cfg.Profile)
	}

	// Epoch exactly-once: acked epochs are exactly {1..N}, recovered
	// epoch is N. Valid even under an injected WAL failure: the
	// applied-but-undurable mutations (one for a failed sync; up to a
	// whole rolled-back batch for a failed append under group commit)
	// are by construction the last applies before read-only, and none
	// of them was acked.
	sort.Slice(acked, func(i, j int) bool { return acked[i].epoch < acked[j].epoch })
	for i, a := range acked {
		if a.epoch != uint64(i+1) {
			violate("acked epochs not contiguous: position %d holds epoch %d (want %d) — an ack was lost or duplicated", i, a.epoch, i+1)
			break
		}
	}
	snap := tn.Snapshot()
	if snap.Epoch != uint64(len(acked)) {
		violate("recovered epoch %d != %d acked mutations — recovery replayed more or less than was acknowledged", snap.Epoch, len(acked))
	}

	// Presence: acked submits minus acked revokes, exactly.
	expect := map[string]bool{}
	var lastDrift *ackRecord
	for i := range acked {
		a := acked[i]
		switch a.kind {
		case KindSubmit:
			expect[a.id] = true
		case KindRevoke:
			if !expect[a.id] {
				violate("acked revoke of %s without an acked submit — worker protocol broken", a.id)
			}
			delete(expect, a.id)
		case KindDrift:
			lastDrift = &acked[i]
		}
	}
	got := map[string]bool{}
	for _, rs := range snap.Requests {
		got[rs.ID] = true
		if !expect[rs.ID] {
			switch {
			case shedSubmits[rs.ID]:
				violate("shed (429/503) submit %s is PRESENT in recovered state — a rejected mutation left a trace", rs.ID)
			default:
				violate("recovered request %s was never acked (nor shed) — phantom state", rs.ID)
			}
			continue
		}
		w, i, ok := parseWorkerID(rs.ID)
		if ok {
			q, c, l := submitParams(w, i)
			if rs.Request.Quality != q || rs.Request.Cost != c || rs.Request.Latency != l {
				violate("recovered request %s has params (%v,%v,%v), submitted (%v,%v,%v)",
					rs.ID, rs.Request.Quality, rs.Request.Cost, rs.Request.Latency, q, c, l)
			}
		}
	}
	for id := range expect {
		if !got[id] {
			violate("acked (2xx) submit %s is ABSENT from recovered state — an acknowledged mutation was lost", id)
		}
	}
	for id := range shedRevokes {
		if expect[id] && !got[id] {
			violate("shed revoke of %s took effect — target absent despite 429/503", id)
		}
	}

	// Availability: the acked drift with the highest epoch (values are
	// globally unique) or the initial workforce when none was acked.
	wantW := initialW
	if lastDrift != nil {
		wantW = lastDrift.w
	}
	if snap.Availability != wantW {
		violate("recovered availability %v != %v (acked drift with highest epoch)", snap.Availability, wantW)
	}

	// Latency tail: admission control exists so no writer ever parks on
	// a blocked send.
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		res.P99 = lat[len(lat)*99/100]
		if res.P99 > cfg.P99Budget {
			violate("mutation latency p99 %v exceeds budget %v", res.P99, cfg.P99Budget)
		}
	}
}

// verifyTraceCorrelation checks the logging contract against the
// phase-1 structured log: every client-observed ack correlates to
// exactly one "reply" terminal line by trace ID, every client-observed
// shed to exactly one "shed" line. More than one terminal line per
// mutation would break log-based accounting (double-counted ops);
// zero would make an invisible outcome; a shed logged as "reply" (or
// vice versa) would contradict what the client was told.
func verifyTraceCorrelation(ledgers []*workerLedger, rec *logRecorder, res *OverloadResult) {
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	for _, led := range ledgers {
		for _, a := range led.acked {
			switch terms := rec.terminals(a.trace); {
			case len(terms) == 0:
				violate("acked mutation (trace %s) has no terminal log line", a.trace)
			case len(terms) > 1:
				violate("acked mutation (trace %s) has %d terminal log lines %v, want exactly one", a.trace, len(terms), terms)
			case terms[0] != "reply":
				violate("acked mutation (trace %s) logged terminal %q, want reply", a.trace, terms[0])
			}
		}
		for _, trace := range led.shedTraces {
			switch terms := rec.terminals(trace); {
			case len(terms) == 0:
				violate("shed mutation (trace %s) has no terminal log line", trace)
			case len(terms) > 1:
				violate("shed mutation (trace %s) has %d terminal log lines %v, want exactly one", trace, len(terms), terms)
			case terms[0] != "shed":
				violate("shed mutation (trace %s) logged terminal %q, want shed", trace, terms[0])
			}
		}
	}
}

// parseWorkerID decodes a "w<worker>-<op>" request ID.
func parseWorkerID(id string) (w, i int, ok bool) {
	if _, err := fmt.Sscanf(id, "w%d-%d", &w, &i); err != nil {
		return 0, 0, false
	}
	return w, i, true
}
