package conformance

import (
	"bytes"
	"testing"
)

// TestRunSteadyNoDivergence is the core end-to-end differential check: a
// seeded multi-tenant lifecycle through the real HTTP server agrees with
// all three oracle layers on every observable.
func TestRunSteadyNoDivergence(t *testing.T) {
	tr, err := Generate(GenConfig{Seed: 1, Events: 600, Tenants: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("divergences:\n%s", res)
	}
	if res.Checks < res.Events {
		t.Fatalf("only %d checks over %d events", res.Checks, res.Events)
	}
}

// TestRunProfiles exercises the chaos schedules: revoke storms and
// alternative-query bursts must also match the oracles, and market-driven
// drift must stay in the valid availability range.
func TestRunProfiles(t *testing.T) {
	for _, tc := range []struct {
		name string
		gc   GenConfig
	}{
		{"revoke-storm", GenConfig{Seed: 7, Events: 400, Profile: RevokeStorm, PoolCap: 12}},
		{"bursty-alternatives", GenConfig{Seed: 9, Events: 400, Profile: Bursty}},
		{"market-feedback", GenConfig{Seed: 11, Events: 300, MarketFeedback: true}},
		{"four-tenants-all-semantics", GenConfig{Seed: 13, Events: 400, Tenants: 4}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tr, err := Generate(tc.gc)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(tr, RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("divergences:\n%s", res)
			}
		})
	}
}

// TestRunViaBatch: the batched ingest endpoint is observationally
// identical to the single-op endpoints — the same traces, replayed with
// every mutation travelling as a one-op batch, must produce the same
// zero-divergence outcome, including handler-level rejections (dot-IDs
// fail in place with a 400-shaped result, before the event loop).
func TestRunViaBatch(t *testing.T) {
	for _, tc := range []struct {
		name string
		gc   GenConfig
	}{
		{"steady", GenConfig{Seed: 1, Events: 500, Tenants: 2}},
		{"revoke-storm", GenConfig{Seed: 7, Events: 300, Profile: RevokeStorm, PoolCap: 12}},
		{"market-feedback", GenConfig{Seed: 11, Events: 250, MarketFeedback: true}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tr, err := Generate(tc.gc)
			if err != nil {
				t.Fatal(err)
			}
			tenant := tr.Tenants[0].Name
			hostile := []Event{
				{Tenant: tenant, Kind: KindSubmit, ID: ".", Quality: 0.3, Cost: 0.8, Latency: 0.8, K: 1},
				{Tenant: tenant, Kind: KindSubmit, ID: "..", Quality: 0.3, Cost: 0.8, Latency: 0.8, K: 1},
				{Tenant: tenant, Kind: KindPlan},
			}
			tr.Events = append(hostile, tr.Events...)
			res, err := Run(tr, RunConfig{ViaBatch: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("batched replay diverges from the oracle:\n%s", res)
			}
			if res.Checks < res.Events {
				t.Fatalf("only %d checks over %d events", res.Checks, res.Events)
			}
		})
	}
}

// TestGenerateDeterministic: the same seed yields the same trace, and the
// run outcome is a pure function of the trace.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenConfig{Seed: 5, Events: 200})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Seed: 5, Events: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	r1, err := Run(a, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(b, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checks != r2.Checks || len(r1.Divergences) != len(r2.Divergences) {
		t.Fatalf("runs differ: %+v vs %+v", r1, r2)
	}
}

// TestTraceJSONRoundTrip: a trace survives Write/ReadTrace bit-for-bit, so
// a minimized artifact replays the exact failing scenario.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr, err := Generate(GenConfig{Seed: 3, Events: 150, MarketFeedback: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != tr.Seed || len(got.Tenants) != len(tr.Tenants) || len(got.Events) != len(tr.Events) {
		t.Fatalf("header changed: %+v vs %+v", got, tr)
	}
	for i := range tr.Events {
		if tr.Events[i] != got.Events[i] {
			t.Fatalf("event %d changed in round trip", i)
		}
	}
	res, err := Run(got, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("round-tripped trace diverges:\n%s", res)
	}
}

func TestReadTraceRejectsBadInput(t *testing.T) {
	for name, in := range map[string]string{
		"garbage":     "not json",
		"bad version": `{"version": 99, "tenants": [{"name":"x"}], "events": []}`,
		"no tenants":  `{"version": 1, "tenants": [], "events": []}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadTrace(bytes.NewReader([]byte(in))); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Seed: 1}); err == nil {
		t.Fatal("zero events accepted")
	}
	if _, err := Generate(GenConfig{Seed: 1, Events: 10, Profile: "revokestorm"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestRunHandlerRejectedSubmits: submits the HTTP layer rejects before
// the event loop (dot-segment IDs, unaddressable as URLs) are expected
// 400s, not divergences — including in the final applied-op cross-check,
// which must not count mutations that never reached the loop.
func TestRunHandlerRejectedSubmits(t *testing.T) {
	tr, err := Generate(GenConfig{Seed: 6, Events: 30})
	if err != nil {
		t.Fatal(err)
	}
	tenant := tr.Tenants[0].Name
	hostile := []Event{
		{Tenant: tenant, Kind: KindSubmit, ID: ".", Quality: 0.3, Cost: 0.8, Latency: 0.8, K: 1},
		{Tenant: tenant, Kind: KindSubmit, ID: "..", Quality: 0.3, Cost: 0.8, Latency: 0.8, K: 1},
		{Tenant: tenant, Kind: KindSubmit, ID: "", Quality: 0.3, Cost: 0.8, Latency: 0.8, K: 1},
		{Tenant: tenant, Kind: KindPlan},
	}
	tr.Events = append(hostile, tr.Events...)
	res, err := Run(tr, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("divergences on handler-rejected submits:\n%s", res)
	}
}

func TestRunRejectsUnknownTenantSpec(t *testing.T) {
	tr := Trace{
		Version: FormatVersion,
		Tenants: []TenantSpec{{Name: "t", Strategies: 8, Objective: "nope", Mode: "max"}},
	}
	if _, err := Run(tr, RunConfig{}); err == nil {
		t.Fatal("unknown objective accepted")
	}
}
