package conformance

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"slices"
	"strconv"
	"strings"
	"time"

	"stratrec/internal/client"
	"stratrec/internal/server"
	"stratrec/internal/strategy"
)

// RunConfig tunes a conformance run.
type RunConfig struct {
	// Parallelism caps the server's ADPaR sweep workers (0 = GOMAXPROCS).
	// The sweep result is bit-for-bit independent of it, which the run
	// itself re-verifies against the brute-force oracle.
	Parallelism int
	// BranchBoundLimit caps the open-item count at which the exact
	// branch-and-bound optimality layer runs on plan checks (default 48,
	// negative disables).
	BranchBoundLimit int
	// MaxDivergences stops the replay after this many divergences
	// (default 16; the minimizer runs with 1).
	MaxDivergences int
	// ViaBatch routes every mutation through the batched ingest endpoint
	// (POST /v1/tenants/{tenant}/ops) as a one-op batch instead of its
	// single-op endpoint, and checks the per-op result against the same
	// oracle expectation. It proves the two wire surfaces are
	// observationally identical.
	ViaBatch bool
	// Fault, when non-nil, corrupts the observed response before the
	// oracle comparison. It exists for testing the harness itself: a
	// fault simulating a solver bug must be caught and must minimize to a
	// short trace. Production runs leave it nil.
	Fault func(ev Event, obs *Observed)
	// OnEvent, when non-nil, is called before each event replays.
	OnEvent func(i int, ev Event)
}

func (cfg RunConfig) withDefaults() RunConfig {
	if cfg.BranchBoundLimit == 0 {
		cfg.BranchBoundLimit = 48
	}
	if cfg.MaxDivergences <= 0 {
		cfg.MaxDivergences = 16
	}
	return cfg
}

// Observed is the system-under-test's decoded answer to one event: the
// HTTP status plus the kind-specific body. RunConfig.Fault mutates it to
// simulate serving-stack bugs.
type Observed struct {
	Status      int
	Submit      *server.SubmitResponse
	Epoch       *server.EpochResponse
	Plan        *server.PlanResponse
	Alternative *server.AlternativeResponse
}

// Divergence is one oracle disagreement: the event it surfaced at, which
// observable field diverged, and both sides.
type Divergence struct {
	Index int    `json:"index"`
	Event Event  `json:"event"`
	Field string `json:"field"`
	Want  string `json:"want"`
	Got   string `json:"got"`
}

func (d Divergence) String() string {
	return fmt.Sprintf("event %d (%s %s %s): %s: want %s, got %s",
		d.Index, d.Event.Tenant, d.Event.Kind, d.Event.ID, d.Field, d.Want, d.Got)
}

// Result summarizes a conformance run.
type Result struct {
	Events      int
	Checks      int
	Divergences []Divergence
}

// OK reports a divergence-free run.
func (r Result) OK() bool { return len(r.Divergences) == 0 }

// String renders the human-readable summary the conform subcommand prints.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance: %d events, %d oracle checks, %d divergences\n",
		r.Events, r.Checks, len(r.Divergences))
	for i, d := range r.Divergences {
		if i == 8 {
			fmt.Fprintf(&b, "  ... %d more\n", len(r.Divergences)-i)
			break
		}
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// Run replays a trace through a real HTTP server hosting the trace's
// tenants and differentially checks every response against the oracle
// layer. The replay is strictly sequential — one in-flight request — so a
// trace's outcome is a pure function of its contents: replies are sent
// only after the tenant event loop has published the mutation's snapshot,
// and the ADPaR sweep is deterministic at any parallelism.
func Run(tr Trace, cfg RunConfig) (Result, error) {
	cfg = cfg.withDefaults()
	if tr.Version != FormatVersion {
		return Result{}, fmt.Errorf("conformance: trace version %d, this build replays %d", tr.Version, FormatVersion)
	}

	// The oracle models, one per tenant.
	models := make(map[string]*tenantModel, len(tr.Tenants))
	// Applied-op counts observed through the deterministic step callback;
	// the loop goroutine writes, and the reply delivered to the blocked
	// caller orders that write before the harness's next read.
	applied := make(map[string]*int, len(tr.Tenants))

	srvCfg := server.Config{
		Tenants: map[string]server.TenantConfig{},
		// Fixed injectable clock: time-derived observables (uptime) stay
		// constant across runs of the same trace.
		Now: func() time.Time { return time.Unix(1700000000, 0) },
	}
	for _, spec := range tr.Tenants {
		if _, dup := models[spec.Name]; dup {
			return Result{}, fmt.Errorf("conformance: duplicate tenant %q", spec.Name)
		}
		m, err := newTenantModel(spec)
		if err != nil {
			return Result{}, err
		}
		models[spec.Name] = m
		n := new(int)
		applied[spec.Name] = n
		srvCfg.Tenants[spec.Name] = server.TenantConfig{
			Set:         m.set,
			Models:      m.models,
			Mode:        m.mode,
			Objective:   m.objective,
			InitialW:    spec.InitialW,
			Parallelism: cfg.Parallelism,
			OnApply:     func(server.AppliedOp) { *n++ },
		}
	}

	s, err := server.New(srvCfg)
	if err != nil {
		return Result{}, err
	}
	hs := httptest.NewServer(s.Handler())
	defer func() {
		hs.Close()
		s.Close()
	}()
	drv := newDriver(hs, cfg.ViaBatch)

	res := Result{Events: len(tr.Events)}
	wantApplied := map[string]int{}
	diverge := func(i int, ev Event, field, want, got string) bool {
		res.Divergences = append(res.Divergences, Divergence{
			Index: i, Event: ev, Field: field, Want: want, Got: got,
		})
		return len(res.Divergences) >= cfg.MaxDivergences
	}

	for i, ev := range tr.Events {
		if cfg.OnEvent != nil {
			cfg.OnEvent(i, ev)
		}
		m, ok := models[ev.Tenant]
		if !ok {
			return res, fmt.Errorf("conformance: event %d targets unknown tenant %q", i, ev.Tenant)
		}
		obs, err := drv.call(ev)
		if err != nil {
			return res, fmt.Errorf("conformance: event %d (%s %s): %w", i, ev.Kind, ev.ID, err)
		}
		if ev.Kind.Mutates() && !handlerRejects(ev) {
			wantApplied[ev.Tenant]++
		}
		if cfg.Fault != nil {
			cfg.Fault(ev, obs)
		}

		var exp expectation
		switch ev.Kind {
		case KindSubmit:
			exp = m.applySubmit(ev)
		case KindRevoke:
			exp = m.applyRevoke(ev)
		case KindDrift:
			exp = m.applyDrift(ev)
		case KindPlan:
			exp = m.expectPlan()
		case KindAlternative:
			exp, err = m.expectAlternative(ev)
			if err != nil {
				return res, fmt.Errorf("conformance: event %d: oracle: %w", i, err)
			}
		default:
			return res, fmt.Errorf("conformance: event %d has unknown kind %q", i, ev.Kind)
		}

		stop := compare(i, ev, m, cfg, exp, obs, &res, diverge)
		if stop {
			break
		}
	}

	// Final cross-checks: the tenant listing agrees with every model, and
	// the step callback saw exactly the mutations we issued.
	if len(res.Divergences) < cfg.MaxDivergences {
		checkListing(drv, tr, models, &res, diverge)
	}
	for name, want := range wantApplied {
		res.Checks++
		if got := *applied[name]; got != want {
			diverge(len(tr.Events), Event{Tenant: name, Kind: "on-apply"},
				"applied-op count", strconv.Itoa(want), strconv.Itoa(got))
		}
	}
	return res, nil
}

// handlerRejects reports whether the HTTP handler rejects the mutation
// before it reaches the tenant event loop, so no OnApply callback fires
// for it. Every other mutation — including loop-level errors like empty
// or duplicate IDs — does reach the loop and is counted.
func handlerRejects(ev Event) bool {
	return ev.Kind == KindSubmit && (ev.ID == "." || ev.ID == "..")
}

// driver issues trace events against a live server through the typed API
// client, so the conformance harness exercises the same wire path real
// callers use. With viaBatch set, mutations travel as one-op batches
// through the ingest endpoint and the per-op result is mapped back into
// the single-op Observed shape.
type driver struct {
	c        *client.Client
	viaBatch bool
}

func newDriver(hs *httptest.Server, viaBatch bool) *driver {
	return &driver{
		c:        client.New(hs.URL, client.WithHTTPClient(hs.Client())),
		viaBatch: viaBatch,
	}
}

// call issues one event's HTTP request and decodes the response.
func (d *driver) call(ev Event) (*Observed, error) {
	ctx := context.Background()
	if d.viaBatch && ev.Kind.Mutates() {
		return d.callBatched(ctx, ev)
	}
	switch ev.Kind {
	case KindSubmit:
		resp, err := d.c.Submit(ctx, ev.Tenant, server.SubmitRequest{
			ID: ev.ID, Quality: ev.Quality, Cost: ev.Cost, Latency: ev.Latency, K: ev.K,
		})
		if err != nil {
			return observeError(err)
		}
		return &Observed{Status: http.StatusOK, Submit: &resp}, nil
	case KindRevoke:
		resp, err := d.c.Revoke(ctx, ev.Tenant, ev.ID)
		if err != nil {
			return observeError(err)
		}
		return &Observed{Status: http.StatusOK, Epoch: &resp}, nil
	case KindDrift:
		resp, err := d.c.SetAvailability(ctx, ev.Tenant, ev.Availability)
		if err != nil {
			return observeError(err)
		}
		return &Observed{Status: http.StatusOK, Epoch: &resp}, nil
	case KindPlan:
		resp, err := d.c.Plan(ctx, ev.Tenant)
		if err != nil {
			return observeError(err)
		}
		return &Observed{Status: http.StatusOK, Plan: &resp}, nil
	case KindAlternative:
		resp, err := d.c.Alternative(ctx, ev.Tenant, ev.ID)
		if err != nil {
			return observeError(err)
		}
		return &Observed{Status: http.StatusOK, Alternative: &resp}, nil
	default:
		return nil, fmt.Errorf("unknown kind %q", ev.Kind)
	}
}

// callBatched sends one mutation as a single-op batch and reshapes its
// per-op result into the Observed the single-op endpoint would yield.
func (d *driver) callBatched(ctx context.Context, ev Event) (*Observed, error) {
	var op server.BatchOp
	switch ev.Kind {
	case KindSubmit:
		op = server.BatchOp{Op: server.OpSubmit, ID: ev.ID,
			Quality: ev.Quality, Cost: ev.Cost, Latency: ev.Latency, K: ev.K}
	case KindRevoke:
		op = server.BatchOp{Op: server.OpRevoke, ID: ev.ID}
	case KindDrift:
		op = server.BatchOp{Op: server.OpAvailability, Workforce: ev.Availability}
	default:
		return nil, fmt.Errorf("kind %q is not a mutation", ev.Kind)
	}
	resp, err := d.c.SendOps(ctx, ev.Tenant, []server.BatchOp{op})
	if err != nil {
		return observeError(err)
	}
	if len(resp.Results) != 1 {
		return nil, fmt.Errorf("batch of 1 op answered %d results", len(resp.Results))
	}
	r := resp.Results[0]
	obs := &Observed{Status: r.Status}
	if r.Status != http.StatusOK {
		return obs, nil
	}
	switch ev.Kind {
	case KindSubmit:
		obs.Submit = &server.SubmitResponse{
			ID: ev.ID, Served: r.Served != nil && *r.Served, Epoch: r.Epoch,
		}
	case KindRevoke, KindDrift:
		obs.Epoch = &server.EpochResponse{Epoch: r.Epoch}
	}
	return obs, nil
}

// observeError converts a client.APIError into the observed status the
// oracle compares; transport-level failures stay hard errors.
func observeError(err error) (*Observed, error) {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return &Observed{Status: apiErr.Status}, nil
	}
	return nil, err
}

// compare checks one observed response against the oracle expectation,
// recording divergences. It returns true when the divergence budget is
// exhausted.
func compare(i int, ev Event, m *tenantModel, cfg RunConfig, exp expectation, obs *Observed, res *Result, diverge func(int, Event, string, string, string) bool) bool {
	res.Checks++
	if obs.Status != exp.status {
		return diverge(i, ev, "status", strconv.Itoa(exp.status), strconv.Itoa(obs.Status))
	}
	if exp.status != http.StatusOK {
		return false // expected-error path confirmed; no body to compare
	}

	switch ev.Kind {
	case KindSubmit:
		res.Checks++
		if obs.Submit == nil {
			return diverge(i, ev, "submit body", "present", "missing")
		}
		if obs.Submit.Served != exp.served {
			if diverge(i, ev, "served", strconv.FormatBool(exp.served), strconv.FormatBool(obs.Submit.Served)) {
				return true
			}
		}
		if obs.Submit.Epoch != exp.epoch {
			return diverge(i, ev, "epoch", strconv.FormatUint(exp.epoch, 10), strconv.FormatUint(obs.Submit.Epoch, 10))
		}
	case KindRevoke, KindDrift:
		res.Checks++
		if obs.Epoch == nil {
			return diverge(i, ev, "epoch body", "present", "missing")
		}
		if obs.Epoch.Epoch != exp.epoch {
			return diverge(i, ev, "epoch", strconv.FormatUint(exp.epoch, 10), strconv.FormatUint(obs.Epoch.Epoch, 10))
		}
	case KindPlan:
		if obs.Plan == nil {
			return diverge(i, ev, "plan body", "present", "missing")
		}
		if stop := comparePlan(i, ev, m, cfg, exp.plan, obs.Plan, res, diverge); stop {
			return true
		}
	case KindAlternative:
		if obs.Alternative == nil {
			return diverge(i, ev, "alternative body", "present", "missing")
		}
		if stop := compareAlternative(i, ev, m, exp.alt, obs.Alternative, res, diverge); stop {
			return true
		}
	}
	return false
}

// comparePlan is the naive-replay layer: full structural equality of the
// plan snapshot, then the branch-and-bound optimality layer on the
// achieved objective.
func comparePlan(i int, ev Event, m *tenantModel, cfg RunConfig, want *planExpect, got *server.PlanResponse, res *Result, diverge func(int, Event, string, string, string) bool) bool {
	res.Checks++
	if got.Epoch != want.epoch {
		if diverge(i, ev, "plan epoch", strconv.FormatUint(want.epoch, 10), strconv.FormatUint(got.Epoch, 10)) {
			return true
		}
	}
	if !closeEnough(got.Availability, want.availability) {
		if diverge(i, ev, "availability", formatFloat(want.availability), formatFloat(got.Availability)) {
			return true
		}
	}
	if !closeEnough(got.Objective, want.objective) {
		if diverge(i, ev, "objective", formatFloat(want.objective), formatFloat(got.Objective)) {
			return true
		}
	}
	if !closeEnough(got.Workforce, want.workforce) {
		if diverge(i, ev, "plan workforce", formatFloat(want.workforce), formatFloat(got.Workforce)) {
			return true
		}
	}
	if !slices.Equal(got.Serving, want.serving) {
		if diverge(i, ev, "serving set", fmt.Sprint(want.serving), fmt.Sprint(got.Serving)) {
			return true
		}
	}
	if !slices.Equal(got.Displaced, want.displaced) {
		if diverge(i, ev, "displaced set", fmt.Sprint(want.displaced), fmt.Sprint(got.Displaced)) {
			return true
		}
	}
	if len(got.Requests) != len(want.requests) {
		return diverge(i, ev, "open request count", strconv.Itoa(len(want.requests)), strconv.Itoa(len(got.Requests)))
	}
	for j, wr := range want.requests {
		gr := got.Requests[j]
		field := "request " + wr.id + " "
		switch {
		case gr.ID != wr.id:
			return diverge(i, ev, field+"id", wr.id, gr.ID)
		case gr.Serving != wr.serving:
			return diverge(i, ev, field+"serving", strconv.FormatBool(wr.serving), strconv.FormatBool(gr.Serving))
		case gr.Feasible != wr.feasible:
			return diverge(i, ev, field+"feasible", strconv.FormatBool(wr.feasible), strconv.FormatBool(gr.Feasible))
		case gr.K != wr.request.K:
			return diverge(i, ev, field+"k", strconv.Itoa(wr.request.K), strconv.Itoa(gr.K))
		}
		wantWF := wr.feasible && !math.IsInf(wr.workforce, 1)
		if wantWF != (gr.Workforce != nil) {
			return diverge(i, ev, field+"workforce presence", strconv.FormatBool(wantWF), strconv.FormatBool(gr.Workforce != nil))
		}
		if wantWF && !closeEnough(*gr.Workforce, wr.workforce) {
			return diverge(i, ev, field+"workforce", formatFloat(wr.workforce), formatFloat(*gr.Workforce))
		}
		if wr.serving && !slices.Equal(gr.Strategies, wr.strategies) {
			return diverge(i, ev, field+"strategies", fmt.Sprint(wr.strategies), fmt.Sprint(gr.Strategies))
		}
	}

	// Branch-and-bound layer: the live plan's objective obeys the paper's
	// guarantee relative to the exact composite optimum.
	if cfg.BranchBoundLimit >= 0 && len(m.lastItems) <= cfg.BranchBoundLimit {
		res.Checks++
		if ok, want, got := m.optimality(got.Objective); !ok {
			return diverge(i, ev, "objective vs branch-and-bound", want, got)
		}
	}
	return false
}

// compareAlternative is the brute-force layer: the served distance matches
// ADPaRB's, and the served alternative is independently verified with the
// public satisfaction predicate.
func compareAlternative(i int, ev Event, m *tenantModel, want *altExpect, got *server.AlternativeResponse, res *Result, diverge func(int, Event, string, string, string) bool) bool {
	res.Checks++
	if !closeEnough(got.Distance, want.distance) {
		if diverge(i, ev, "alternative distance vs brute force", formatFloat(want.distance), formatFloat(got.Distance)) {
			return true
		}
	}
	alt := strategy.Params{Quality: got.Quality, Cost: got.Cost, Latency: got.Latency}
	covered := m.coverCount(alt)
	res.Checks++
	if covered != got.Covered {
		if diverge(i, ev, "covered count (recount)", strconv.Itoa(covered), strconv.Itoa(got.Covered)) {
			return true
		}
	}
	if covered < want.k {
		if diverge(i, ev, "alternative covers k", ">= "+strconv.Itoa(want.k), strconv.Itoa(covered)) {
			return true
		}
	}
	if len(got.Strategies) != want.k {
		if diverge(i, ev, "recommended strategy count", strconv.Itoa(want.k), strconv.Itoa(len(got.Strategies))) {
			return true
		}
	}
	for _, id := range got.Strategies {
		if !m.satisfies(id, alt) {
			if diverge(i, ev, "recommended strategy satisfies alternative",
				"strategy "+strconv.Itoa(id)+" satisfies", "does not satisfy") {
				return true
			}
		}
	}
	return false
}

// checkListing cross-checks GET /v1/tenants against every model.
func checkListing(d *driver, tr Trace, models map[string]*tenantModel, res *Result, diverge func(int, Event, string, string, string) bool) {
	infos, err := d.c.Tenants(context.Background())
	if err != nil {
		diverge(len(tr.Events), Event{Kind: "listing"}, "tenant listing", "reachable", err.Error())
		return
	}
	res.Checks++
	if len(infos) != len(models) {
		diverge(len(tr.Events), Event{Kind: "listing"}, "tenant count",
			strconv.Itoa(len(models)), strconv.Itoa(len(infos)))
		return
	}
	for _, info := range infos {
		m, ok := models[info.Name]
		if !ok {
			diverge(len(tr.Events), Event{Kind: "listing"}, "tenant name", "known", info.Name)
			continue
		}
		ev := Event{Tenant: info.Name, Kind: "listing"}
		res.Checks++
		if info.Open != len(m.order) {
			diverge(len(tr.Events), ev, "open count", strconv.Itoa(len(m.order)), strconv.Itoa(info.Open))
		}
		if info.Epoch != m.epoch {
			diverge(len(tr.Events), ev, "epoch", strconv.FormatUint(m.epoch, 10), strconv.FormatUint(info.Epoch, 10))
		}
		if !closeEnough(info.Availability, m.w) {
			diverge(len(tr.Events), ev, "availability", formatFloat(m.w), formatFloat(info.Availability))
		}
	}
}

// closeEnough compares observables that round-trip through JSON float64:
// exact equality normally holds; the relative tolerance only absorbs
// mathematically-tied optima reached through different arithmetic.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
