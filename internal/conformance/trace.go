// Package conformance is the repo's end-to-end differential-testing
// subsystem: it replays deterministic, seeded multi-tenant lifecycles —
// Poisson submits and revokes, availability drift, bursty ADPaR
// alternative queries, plan reads — through the real HTTP server
// (internal/server, the same mux production traffic hits) and cross-checks
// every observable response against an oracle layer that re-derives the
// expected answer independently:
//
//   - alternatives against adpar.BruteForceK, the paper's Section 5.2.1
//     exponential reference (ADPaRB);
//   - plan snapshots against a naive single-threaded replay that
//     recomputes every workforce requirement and the whole serving set
//     from scratch on each event, with none of the caching, snapshotting
//     or warm-index machinery of the serving path;
//   - the achieved objective against batch.BranchAndBound, the exact
//     composite-deployment solver, asserting the paper's guarantees
//     (exact for throughput, >= 1/2 for pay-off) on the live plan.
//
// A failing run can be minimized (Minimize) to a short replayable JSON
// trace, and `stratrec conform` exposes generation, replay and
// minimization so CI and humans run the same binary.
package conformance

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"stratrec/internal/batch"
	"stratrec/internal/crowd"
	"stratrec/internal/strategy"
	"stratrec/internal/synth"
	"stratrec/internal/workforce"
)

// FormatVersion guards the trace JSON layout; minimized artifacts embed it
// so stale artifacts fail loudly on replay instead of decoding garbage.
const FormatVersion = 1

// Kind classifies one trace event. Mutation kinds (submit, revoke, drift)
// drive the tenant lifecycle; observation kinds (plan, alternative) are
// pure reads whose responses the oracles check.
type Kind string

const (
	KindSubmit      Kind = "submit"
	KindRevoke      Kind = "revoke"
	KindDrift       Kind = "drift"
	KindPlan        Kind = "plan"
	KindAlternative Kind = "alternative"
)

// Mutates reports whether the kind changes tenant state.
func (k Kind) Mutates() bool {
	return k == KindSubmit || k == KindRevoke || k == KindDrift
}

// Event is one replayable step of a conformance trace. Any subsequence of
// a valid trace is itself a valid trace: the harness derives the expected
// outcome of every event (including expected errors such as revoking an
// unknown ID) from the oracle model at replay time, which is what lets the
// minimizer delete events freely.
//
// One constraint on hand-written traces: revoke and alternative events
// carry their ID in the URL path, so the ID must survive as a path
// segment — "." and ".." trigger HTTP path cleaning (redirects) before
// the server's routing is even reached and are not meaningful to replay
// there. Submit events carry the ID in the body and may use any string
// (the server rejects unaddressable ones with 400, which the oracle
// models). The generator only emits path-safe IDs.
type Event struct {
	Tenant string `json:"tenant"`
	Kind   Kind   `json:"kind"`
	// ID is the targeted request (submit, revoke, alternative).
	ID string `json:"id,omitempty"`
	// Quality, Cost, Latency, K describe the submitted request.
	Quality float64 `json:"quality,omitempty"`
	Cost    float64 `json:"cost,omitempty"`
	Latency float64 `json:"latency,omitempty"`
	K       int     `json:"k,omitempty"`
	// Availability is the drifted expected workforce.
	Availability float64 `json:"availability,omitempty"`
}

// TenantSpec describes one tenant by generator parameters rather than by
// materialized catalog: a seed regenerates the exact strategy set and
// models, keeping trace artifacts small and bit-reproducible.
type TenantSpec struct {
	Name       string  `json:"name"`
	Strategies int     `json:"strategies"`
	Seed       int64   `json:"seed"`
	InitialW   float64 `json:"initial_w"`
	// Objective is "throughput" or "payoff".
	Objective string `json:"objective"`
	// Mode is "max" or "sum".
	Mode string `json:"mode"`
}

// materialize regenerates the tenant's catalog and planning semantics.
func (ts TenantSpec) materialize() (strategy.Set, workforce.PerStrategyModels, batch.Objective, workforce.Mode, error) {
	if ts.Strategies <= 0 {
		return nil, nil, 0, 0, fmt.Errorf("conformance: tenant %s: %d strategies", ts.Name, ts.Strategies)
	}
	var obj batch.Objective
	switch ts.Objective {
	case "throughput":
		obj = batch.Throughput
	case "payoff":
		obj = batch.Payoff
	default:
		return nil, nil, 0, 0, fmt.Errorf("conformance: tenant %s: unknown objective %q", ts.Name, ts.Objective)
	}
	var mode workforce.Mode
	switch ts.Mode {
	case "max":
		mode = workforce.MaxCase
	case "sum":
		mode = workforce.SumCase
	default:
		return nil, nil, 0, 0, fmt.Errorf("conformance: tenant %s: unknown mode %q", ts.Name, ts.Mode)
	}
	gen := synth.DefaultConfig(synth.Uniform)
	rng := rand.New(rand.NewSource(ts.Seed))
	set := gen.Strategies(rng, ts.Strategies)
	models := gen.Models(rng, set)
	return set, models, obj, mode, nil
}

// Trace is a complete replayable conformance scenario: the tenant universe
// plus the event sequence. It is the unit the minimizer shrinks and the
// JSON artifact CI uploads on failure.
type Trace struct {
	Version int          `json:"version"`
	Seed    int64        `json:"seed"`
	Tenants []TenantSpec `json:"tenants"`
	Events  []Event      `json:"events"`
}

// Write encodes the trace as indented JSON.
func (tr Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// ReadTrace decodes a trace written by Write and validates its version.
func ReadTrace(r io.Reader) (Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return Trace{}, fmt.Errorf("conformance: decoding trace: %w", err)
	}
	if tr.Version != FormatVersion {
		return Trace{}, fmt.Errorf("conformance: trace version %d, this build reads %d", tr.Version, FormatVersion)
	}
	if len(tr.Tenants) == 0 {
		return Trace{}, fmt.Errorf("conformance: trace has no tenants")
	}
	return tr, nil
}

// Profile selects a chaos schedule for the generator: the event mix the
// trace stresses.
type Profile string

const (
	// Steady is the balanced production-like mix.
	Steady Profile = "steady"
	// RevokeStorm drives heavy revocation churn with a small open pool,
	// hammering the replan-on-shrink path.
	RevokeStorm Profile = "revoke-storm"
	// Bursty submits mostly too-tight requests and fires dense bursts of
	// ADPaR alternative queries, hammering the warm-index read path.
	Bursty Profile = "bursty"
)

// GenConfig parameterizes Generate. The zero value of every field defaults
// sensibly; only Events is required.
type GenConfig struct {
	Seed int64
	// Events is the total trace length (mutations + checks).
	Events int
	// Tenants is the tenant count (default 2). Tenants cycle through
	// objective/mode combinations so one trace covers all semantics.
	Tenants int
	// Strategies is the per-tenant catalog size (default 24). It must not
	// exceed adpar.BruteForceLimit, or the brute-force oracle cannot run.
	Strategies int
	// K is the per-request cardinality constraint (default 3).
	K int
	// PlanEvery inserts a plan check after every n-th event (default 7).
	PlanEvery int
	// PoolCap bounds the open-request pool per tenant (default 40):
	// submits that would exceed it become revokes. Keeping the pool small
	// keeps the exact branch-and-bound oracle affordable for the whole
	// run, not just its start.
	PoolCap int
	// Profile selects the chaos schedule (default Steady).
	Profile Profile
	// MarketFeedback, when set, derives drift availabilities from
	// simulated crowd.Marketplace deployments (the measured x'/x of a
	// probe HIT) instead of uniform draws, closing the loop between the
	// marketplace simulation and the serving stack.
	MarketFeedback bool
}

func (gc GenConfig) withDefaults() GenConfig {
	if gc.Tenants <= 0 {
		gc.Tenants = 2
	}
	if gc.Strategies <= 0 {
		gc.Strategies = 24
	}
	if gc.K <= 0 {
		gc.K = 3
	}
	if gc.PlanEvery <= 0 {
		gc.PlanEvery = 7
	}
	if gc.PoolCap <= 0 {
		gc.PoolCap = 40
	}
	if gc.Profile == "" {
		gc.Profile = Steady
	}
	return gc
}

// mix is the per-profile event mixture.
type mix struct {
	revoke, drift, tight float64
	// altBurst is the probability of inserting a burst of alternative
	// queries after an event; bursts have 1-3 queries.
	altBurst float64
}

func (gc GenConfig) mix() mix {
	switch gc.Profile {
	case RevokeStorm:
		return mix{revoke: 0.48, drift: 0.05, tight: 0.3, altBurst: 0.08}
	case Bursty:
		return mix{revoke: 0.3, drift: 0.05, tight: 0.8, altBurst: 0.35}
	default:
		return mix{revoke: 0.35, drift: 0.08, tight: 0.35, altBurst: 0.15}
	}
}

var objectiveCycle = []struct{ objective, mode string }{
	{"throughput", "max"},
	{"payoff", "sum"},
	{"throughput", "sum"},
	{"payoff", "max"},
}

// Generate builds a deterministic trace: per-tenant Poisson lifecycles
// from synth.Workload interleaved by arrival time, with plan checks,
// bursty alternative queries, occasional probes of expected-error paths
// (alternative for unknown IDs), and — under MarketFeedback — availability
// drift taken from simulated marketplace outcomes.
func Generate(gc GenConfig) (Trace, error) {
	gc = gc.withDefaults()
	if gc.Events <= 0 {
		return Trace{}, fmt.Errorf("conformance: generate needs a positive event count")
	}
	switch gc.Profile {
	case Steady, RevokeStorm, Bursty:
	default:
		// A typo'd profile must not silently degrade to the steady
		// schedule: a CI gate would then pass without testing what it
		// claims to.
		return Trace{}, fmt.Errorf("conformance: unknown profile %q (want %s, %s or %s)",
			gc.Profile, Steady, RevokeStorm, Bursty)
	}
	mx := gc.mix()
	tr := Trace{Version: FormatVersion, Seed: gc.Seed}
	for i := 0; i < gc.Tenants; i++ {
		oc := objectiveCycle[i%len(objectiveCycle)]
		tr.Tenants = append(tr.Tenants, TenantSpec{
			Name:       fmt.Sprintf("tenant-%d", i+1),
			Strategies: gc.Strategies,
			Seed:       gc.Seed + int64(i)*1000003,
			InitialW:   0.7,
			Objective:  oc.objective,
			Mode:       oc.mode,
		})
	}

	// Base lifecycles: one synth workload per tenant, overprovisioned so
	// the merged stream never runs dry before the event budget is spent.
	gen := synth.DefaultConfig(synth.Uniform)
	base := make([][]synth.WorkloadEvent, gc.Tenants)
	for i := range base {
		rng := rand.New(rand.NewSource(gc.Seed + int64(i)*7919 + 1))
		wl, err := gen.Workload(rng, synth.WorkloadConfig{
			Events:         gc.Events,
			K:              gc.K,
			Rate:           200,
			RevokeFraction: mx.revoke,
			DriftFraction:  mx.drift,
			TightFraction:  mx.tight,
			IDPrefix:       fmt.Sprintf("t%d-", i+1),
		})
		if err != nil {
			return Trace{}, err
		}
		base[i] = wl
	}

	rng := rand.New(rand.NewSource(gc.Seed*31 + 17))
	var market *marketDrift
	if gc.MarketFeedback {
		market = newMarketDrift(gc.Seed)
	}

	// Interleave by arrival time, tracking each tenant's open pool so the
	// generator can cap it and can aim alternative queries at real IDs.
	cursor := make([]int, gc.Tenants)
	open := make([][]string, gc.Tenants)
	ghost := 0
	for len(tr.Events) < gc.Events {
		// Next tenant by earliest pending arrival.
		ti := -1
		for i := range base {
			if cursor[i] >= len(base[i]) {
				continue
			}
			if ti < 0 || base[i][cursor[i]].At < base[ti][cursor[ti]].At {
				ti = i
			}
		}
		if ti < 0 {
			break // all base streams exhausted (cannot happen with overprovisioning)
		}
		ev := base[ti][cursor[ti]]
		cursor[ti]++
		tenant := tr.Tenants[ti].Name

		switch ev.Kind {
		case synth.SubmitArrival:
			if len(open[ti]) >= gc.PoolCap {
				// Pool full: shed load by revoking instead, keeping the
				// exact oracles affordable for the whole run.
				victim := rng.Intn(len(open[ti]))
				id := open[ti][victim]
				open[ti][victim] = open[ti][len(open[ti])-1]
				open[ti] = open[ti][:len(open[ti])-1]
				tr.Events = append(tr.Events, Event{Tenant: tenant, Kind: KindRevoke, ID: id})
				break
			}
			tr.Events = append(tr.Events, Event{
				Tenant:  tenant,
				Kind:    KindSubmit,
				ID:      ev.Request.ID,
				Quality: ev.Request.Quality,
				Cost:    ev.Request.Cost,
				Latency: ev.Request.Latency,
				K:       ev.Request.K,
			})
			open[ti] = append(open[ti], ev.Request.ID)
		case synth.RevokeArrival:
			tr.Events = append(tr.Events, Event{Tenant: tenant, Kind: KindRevoke, ID: ev.RevokeID})
			for i, id := range open[ti] {
				if id == ev.RevokeID {
					open[ti][i] = open[ti][len(open[ti])-1]
					open[ti] = open[ti][:len(open[ti])-1]
					break
				}
			}
		case synth.DriftArrival:
			w := ev.Availability
			if market != nil {
				w = market.next()
			}
			tr.Events = append(tr.Events, Event{Tenant: tenant, Kind: KindDrift, Availability: w})
		}

		// Bursty ADPaR alternative queries against open requests; the
		// oracle decides per query whether a solution, a 409 (served) or
		// a 404 (unknown, for ghost probes) is the right answer.
		if rng.Float64() < mx.altBurst && len(tr.Events) < gc.Events {
			burst := 1 + rng.Intn(3)
			for b := 0; b < burst && len(tr.Events) < gc.Events; b++ {
				if len(open[ti]) > 0 && rng.Float64() > 0.05 {
					id := open[ti][rng.Intn(len(open[ti]))]
					tr.Events = append(tr.Events, Event{Tenant: tenant, Kind: KindAlternative, ID: id})
				} else {
					ghost++
					tr.Events = append(tr.Events, Event{
						Tenant: tenant, Kind: KindAlternative,
						ID: fmt.Sprintf("ghost-%d", ghost),
					})
				}
			}
		}
		if len(tr.Events)%gc.PlanEvery == 0 && len(tr.Events) < gc.Events {
			tr.Events = append(tr.Events, Event{Tenant: tenant, Kind: KindPlan})
		}
	}
	return tr, nil
}

// marketDrift samples availability drift values from simulated marketplace
// deployments: each drift event deploys one probe HIT and feeds the
// measured availability (recruited/requested, the paper's Section 5.1.1
// x'/x) back into the serving stack.
type marketDrift struct {
	m    *crowd.Marketplace
	dims []strategy.Dimensions
	wins []int
	i    int
}

func newMarketDrift(seed int64) *marketDrift {
	return &marketDrift{
		m:    crowd.NewMarketplace(crowd.DefaultConfig(), seed),
		dims: strategy.AllDimensions(),
		wins: []int{0, 1, 2},
	}
}

func (md *marketDrift) next() float64 {
	windows := crowd.StandardWindows()
	hit := crowd.HIT{
		Task:         crowd.SentenceTranslation,
		Dims:         md.dims[md.i%len(md.dims)],
		Window:       windows[md.wins[md.i%len(md.wins)]],
		MaxWorkers:   10,
		PayPerWorker: 2,
		Guided:       true,
	}
	md.i++
	out, err := md.m.Deploy(hit)
	if err != nil {
		return 0.7 // cannot happen with the default pool; keep a safe fallback
	}
	return out.Availability
}
