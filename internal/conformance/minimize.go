package conformance

// The shrinking reporter: a failing conformance trace is rarely readable
// at thousands of events. Minimize applies delta debugging (Zeller's
// ddmin) to the event sequence, replaying candidate subsequences through a
// fresh server until no single event can be removed without the
// divergence disappearing. Because the harness derives every expectation
// from the oracle model at replay time, *any* subsequence of a trace is
// replayable — deleting a submit simply turns later events touching that
// ID into expected-404 paths — so no repair step is needed between probes.

// MinimizeStats reports what the minimizer did.
type MinimizeStats struct {
	// Probes is the number of candidate replays executed.
	Probes int
	// From and To are the event counts before and after shrinking.
	From, To int
}

// Minimize shrinks a failing trace to a 1-minimal failing trace (removing
// any single remaining event makes the divergence disappear), bounded by
// maxProbes candidate replays (0 defaults to 600). The returned trace
// fails the same way: replaying it yields at least one divergence.
//
// If tr does not fail under cfg, it is returned unchanged.
func Minimize(tr Trace, cfg RunConfig, maxProbes int) (Trace, MinimizeStats) {
	if maxProbes <= 0 {
		maxProbes = 600
	}
	// Stop each probe at the first divergence: probes dominated by events
	// after the failure point would waste the budget.
	cfg.MaxDivergences = 1
	cfg.OnEvent = nil

	stats := MinimizeStats{From: len(tr.Events)}
	fails := func(events []Event) bool {
		if stats.Probes >= maxProbes {
			return false
		}
		stats.Probes++
		probe := tr
		probe.Events = events
		res, err := Run(probe, cfg)
		return err == nil && !res.OK()
	}

	events := tr.Events
	if !fails(events) {
		stats.To = len(events)
		return tr, stats
	}

	// ddmin: split into n chunks; try each chunk alone, then each
	// complement; on success restart with the reduced sequence, otherwise
	// double the granularity until chunks are single events.
	n := 2
	for len(events) >= 2 && stats.Probes < maxProbes {
		chunks := split(events, n)
		reduced := false

		for _, c := range chunks {
			if fails(c) {
				events = c
				n = 2
				reduced = true
				break
			}
		}
		if !reduced {
			for i := range chunks {
				complement := make([]Event, 0, len(events))
				for j, c := range chunks {
					if j != i {
						complement = append(complement, c...)
					}
				}
				if fails(complement) {
					events = complement
					n = max(n-1, 2)
					reduced = true
					break
				}
			}
		}
		if !reduced {
			if n >= len(events) {
				break // 1-minimal
			}
			n = min(2*n, len(events))
		}
	}

	out := tr
	out.Events = events
	stats.To = len(events)
	return out, stats
}

// split partitions events into n non-empty contiguous chunks.
func split(events []Event, n int) [][]Event {
	if n > len(events) {
		n = len(events)
	}
	chunks := make([][]Event, 0, n)
	size := len(events) / n
	rem := len(events) % n
	start := 0
	for i := 0; i < n; i++ {
		end := start + size
		if i < rem {
			end++
		}
		chunks = append(chunks, events[start:end])
		start = end
	}
	return chunks
}
