package conformance

import (
	"errors"
	"math"
	"net/http"
	"sort"

	"stratrec/internal/adpar"
	"stratrec/internal/batch"
	"stratrec/internal/strategy"
	"stratrec/internal/workforce"
)

// tenantModel is the naive stream-replay oracle: the same semantics as
// stream.Manager behind internal/server, re-derived the slow, obvious way.
// Every event recomputes every open request's workforce requirement from
// scratch and replans over the whole pool; there is no cached requirement,
// no incremental planner, no epoch-published snapshot, no warm ADPaR
// index, no event loop, no op coalescing. If the serving stack's caching,
// incremental plan repair, snapshot publication or request routing is
// wrong in any way that reaches an observable, this model disagrees with
// the HTTP response.
//
// Coalescing-awareness: the serving stack may apply any number of queued
// mutations per replan cycle. Pool state, plan snapshots and epochs are
// batch-independent — the plan is a pure function of the live pool and
// availability, and the epoch is a pool-generation counter (one step per
// applied mutation) — so those expectations hold at every coalescing
// level. A submit's served flag is NOT batch-independent: the server
// reads it from the plan published with the acknowledgement, so a denser
// submit coalesced into the same batch can displace an earlier one
// before its ack. The harness replay is strictly sequential (one
// in-flight request, reply sent only after the publish), which pins
// every batch at one op, making this model's one-event-at-a-time served
// expectation exact for everything the harness can drive; a concurrent
// driver would have to treat served as batch-dependent.
//
// The model deliberately reuses the leaf algorithms (workforce
// .RequirementFor, batch.BatchStrat) — they are deterministic functions,
// and their own correctness is covered by the other two oracle layers:
// adpar.BruteForceK for alternatives and batch.BranchAndBound for the
// achieved objective.
type tenantModel struct {
	spec      TenantSpec
	set       strategy.Set
	models    workforce.PerStrategyModels
	mode      workforce.Mode
	objective batch.Objective

	w       float64
	order   []string // admission order
	reqs    map[string]strategy.Request
	serving map[string]bool
	epoch   uint64
	// subSeq mirrors stream.Manager's monotonic submission counter: the
	// reqIdx handed to workforce.RequirementFor is the request's
	// submission number, never a reused pool position, so the oracle and
	// the serving stack compute requirements under the identical
	// ModelProvider contract.
	subSeq  map[string]uint64
	nextSub uint64

	// last replan products, consumed by plan expectations and the
	// branch-and-bound optimality layer.
	lastReqs  map[string]workforce.Requirement
	lastItems []batch.Item
}

func newTenantModel(spec TenantSpec) (*tenantModel, error) {
	set, models, obj, mode, err := spec.materialize()
	if err != nil {
		return nil, err
	}
	m := &tenantModel{
		spec:      spec,
		set:       set,
		models:    models,
		mode:      mode,
		objective: obj,
		w:         spec.InitialW,
		reqs:      map[string]strategy.Request{},
		serving:   map[string]bool{},
		subSeq:    map[string]uint64{},
		lastReqs:  map[string]workforce.Requirement{},
	}
	m.replan()
	return m, nil
}

func (m *tenantModel) value(d strategy.Request) float64 {
	if m.objective == batch.Payoff {
		return d.Cost
	}
	return 1
}

// replan recomputes the serving set from scratch: every requirement
// re-derived, item identity and tie-breaks identical to stream.Manager's
// incremental planner (items keyed by submission sequence number, so
// density ties break by admission order). The epoch is NOT touched here —
// it is a pool-generation counter the apply* methods advance on every
// applied mutation, serving-set change or not, mirroring the manager.
func (m *tenantModel) replan() {
	ids := append([]string(nil), m.order...)
	sort.Strings(ids)
	m.lastReqs = make(map[string]workforce.Requirement, len(ids))
	m.lastItems = m.lastItems[:0]
	for _, id := range ids {
		d := m.reqs[id]
		req := workforce.RequirementFor(d, m.subSeq[id], m.set, m.models, m.mode)
		m.lastReqs[id] = req
		if !req.Feasible() {
			continue
		}
		m.lastItems = append(m.lastItems, batch.Item{
			Index:      int(m.subSeq[id]),
			Value:      m.value(d),
			Workforce:  req.Workforce,
			Strategies: req.Strategies,
		})
	}
	res := batch.BatchStrat(m.lastItems, m.w)
	for _, id := range ids {
		m.serving[id] = res.IsSelected(int(m.subSeq[id]))
	}
}

// --- expectations ---

// planRequestExpect is one open request's expected plan row.
type planRequestExpect struct {
	id         string
	request    strategy.Request
	serving    bool
	feasible   bool
	workforce  float64 // meaningful when feasible
	strategies []int   // expected when serving
}

// planExpect is the oracle's expected PlanResponse.
type planExpect struct {
	epoch        uint64
	availability float64
	objective    float64
	workforce    float64
	serving      []string
	displaced    []string
	requests     []planRequestExpect
}

// altExpect is the oracle's expected alternative outcome: either an error
// status or the brute-force reference solution.
type altExpect struct {
	// covered is the exact satisfier count at the optimal alternative,
	// recomputed with strategy.Satisfies.
	distance float64
	k        int
}

// expectation is the oracle's verdict for one event, derived before the
// comparison and after the model applied the event.
type expectation struct {
	status int
	served bool   // submit only
	epoch  uint64 // mutations and plan
	plan   *planExpect
	alt    *altExpect
}

// applySubmit mirrors handleSubmit + stream.Manager.Submit: empty ID,
// validation, duplicate checks in that order; on success the request is
// admitted and the pool replanned.
func (m *tenantModel) applySubmit(ev Event) expectation {
	d := strategy.Request{
		ID:     ev.ID,
		Params: strategy.Params{Quality: ev.Quality, Cost: ev.Cost, Latency: ev.Latency},
		K:      ev.K,
	}
	if d.K == 0 {
		d.K = 1 // the handler's documented default
	}
	if d.ID == "" {
		return expectation{status: http.StatusBadRequest}
	}
	if d.ID == "." || d.ID == ".." {
		// Rejected at the HTTP layer: dot-segment IDs have no addressable
		// revoke/alternative URL.
		return expectation{status: http.StatusBadRequest}
	}
	if err := d.Validate(); err != nil {
		return expectation{status: http.StatusBadRequest}
	}
	if _, open := m.reqs[d.ID]; open {
		return expectation{status: http.StatusConflict}
	}
	m.reqs[d.ID] = d
	m.order = append(m.order, d.ID)
	m.subSeq[d.ID] = m.nextSub
	m.nextSub++
	m.epoch++
	m.replan()
	return expectation{status: http.StatusOK, served: m.serving[d.ID], epoch: m.epoch}
}

func (m *tenantModel) applyRevoke(ev Event) expectation {
	if _, open := m.reqs[ev.ID]; !open {
		return expectation{status: http.StatusNotFound}
	}
	delete(m.reqs, ev.ID)
	delete(m.serving, ev.ID)
	delete(m.subSeq, ev.ID)
	for i, id := range m.order {
		if id == ev.ID {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.epoch++
	m.replan()
	return expectation{status: http.StatusOK, epoch: m.epoch}
}

func (m *tenantModel) applyDrift(ev Event) expectation {
	w := ev.Availability
	if w < 0 || w > 1 || math.IsNaN(w) {
		return expectation{status: http.StatusBadRequest}
	}
	m.w = w
	m.epoch++
	m.replan()
	return expectation{status: http.StatusOK, epoch: m.epoch}
}

// expectPlan freezes the model's current plan the way Manager.Plan and
// Snapshot do: admission order, objective and workforce summed over
// serving entries in admission order (so float sums agree bit-for-bit).
func (m *tenantModel) expectPlan() expectation {
	pe := &planExpect{
		epoch:        m.epoch,
		availability: m.w,
		serving:      []string{},
		displaced:    []string{},
	}
	for _, id := range m.order {
		req := m.lastReqs[id]
		pr := planRequestExpect{
			id:        id,
			request:   m.reqs[id],
			serving:   m.serving[id],
			feasible:  req.Feasible(),
			workforce: req.Workforce,
		}
		if pr.serving {
			pe.serving = append(pe.serving, id)
			pe.workforce += req.Workforce
			pe.objective += m.value(m.reqs[id])
			pr.strategies = req.Strategies
		} else {
			pe.displaced = append(pe.displaced, id)
		}
		pe.requests = append(pe.requests, pr)
	}
	return expectation{status: http.StatusOK, epoch: m.epoch, plan: pe}
}

// expectAlternative mirrors Tenant.Alternative's routing (unknown -> 404,
// served -> 409) and solves the surviving instance with the brute-force
// reference.
func (m *tenantModel) expectAlternative(ev Event) (expectation, error) {
	d, open := m.reqs[ev.ID]
	if !open {
		return expectation{status: http.StatusNotFound}, nil
	}
	if m.serving[ev.ID] {
		return expectation{status: http.StatusConflict}, nil
	}
	sol, err := adpar.BruteForceK(m.set, d)
	if err != nil {
		// ErrBadK / ErrNotEnoughStrategies map to 400 in the API;
		// ErrTooLarge means the trace was generated outside oracle limits
		// and is a harness configuration error, not a divergence.
		if errors.Is(err, adpar.ErrTooLarge) {
			return expectation{}, err
		}
		return expectation{status: http.StatusBadRequest}, nil
	}
	return expectation{
		status: http.StatusOK,
		alt:    &altExpect{distance: sol.Distance, k: d.K},
	}, nil
}

// coverCount recounts, with the public satisfaction predicate, how many
// catalog strategies an alternative covers. Used to validate the served
// alternative independently of both solvers.
func (m *tenantModel) coverCount(alt strategy.Params) int {
	n := 0
	for _, s := range m.set {
		if strategy.Satisfies(s.Params, alt) {
			n++
		}
	}
	return n
}

// satisfies reports whether one strategy (by ID) satisfies the alternative.
func (m *tenantModel) satisfies(id int, alt strategy.Params) bool {
	for _, s := range m.set {
		if s.ID == id {
			return strategy.Satisfies(s.Params, alt)
		}
	}
	return false
}

// optimality runs the branch-and-bound layer over the model's current
// items: the live plan's objective must be exactly optimal for throughput
// (Theorem 2) and at least half of optimal for pay-off (Theorem 3). It
// returns want/got strings when violated.
func (m *tenantModel) optimality(achieved float64) (ok bool, want, got string) {
	opt := batch.BranchAndBound(m.lastItems, m.w)
	eps := 1e-9 * math.Max(1, opt.Objective)
	if achieved > opt.Objective+eps {
		return false, formatFloat(opt.Objective) + " (exact optimum, upper bound)", formatFloat(achieved)
	}
	factor := 1.0
	if m.objective == batch.Payoff {
		factor = 0.5
	}
	if achieved < factor*opt.Objective-eps {
		return false, ">= " + formatFloat(factor*opt.Objective) + " (guarantee vs exact optimum " + formatFloat(opt.Objective) + ")", formatFloat(achieved)
	}
	return true, "", ""
}
