package conformance

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"stratrec/internal/server"
	"stratrec/internal/strategy"
	"stratrec/internal/stream"
)

// chaosServer builds a small two-tenant server from trace specs. The
// returned specs let tests derive valid requests for the catalogs.
func chaosServer(t *testing.T, onApply func(server.AppliedOp)) (*server.Server, []TenantSpec) {
	t.Helper()
	tr, err := Generate(GenConfig{Seed: 21, Events: 1, Tenants: 2, Strategies: 16})
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{Tenants: map[string]server.TenantConfig{}}
	for _, spec := range tr.Tenants {
		m, err := newTenantModel(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Tenants[spec.Name] = server.TenantConfig{
			Set:       m.set,
			Models:    m.models,
			Mode:      m.mode,
			Objective: m.objective,
			InitialW:  spec.InitialW,
			OnApply:   onApply,
		}
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, tr.Tenants
}

// TestChaosDrainUnderLoad closes the HTTP layer and the tenant loops while
// writers are mid-flight. Every response must be a well-formed outcome —
// success, a domain error, a 503, or a transport error from the teardown —
// and nothing may deadlock or race.
func TestChaosDrainUnderLoad(t *testing.T) {
	s, specs := chaosServer(t, nil)
	hs := httptest.NewServer(s.Handler())
	client := hs.Client()

	const writers = 8
	var wg sync.WaitGroup
	var badStatus atomic.Int64
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			tenant := specs[w%len(specs)].Name
			for i := 0; ; i++ {
				body, _ := json.Marshal(server.SubmitRequest{
					ID: fmt.Sprintf("drain-%d-%d", w, i), Quality: 0.3, Cost: 0.9, Latency: 0.9, K: 1,
				})
				resp, err := client.Post(hs.URL+"/v1/tenants/"+tenant+"/requests",
					"application/json", strings.NewReader(string(body)))
				if err != nil {
					return // transport error: the listener is gone, expected
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusBadRequest, http.StatusConflict,
					http.StatusNotFound, http.StatusServiceUnavailable:
				default:
					badStatus.Add(1)
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable {
					return
				}
			}
		}(w)
	}
	close(start)
	// Let the writers make progress, then tear everything down under them.
	for _, spec := range specs {
		tn, err := s.Tenant(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		for len(tn.Snapshot().Requests) == 0 {
			runtime.Gosched()
		}
	}
	hs.CloseClientConnections()
	hs.Close()
	s.Close()
	wg.Wait()
	if n := badStatus.Load(); n > 0 {
		t.Fatalf("%d responses with unexpected status during drain", n)
	}

	// After the drain, mutations fail with ErrTenantClosed, not hangs.
	tn, err := s.Tenant(specs[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Submit(context.Background(), strategy.Request{ID: "late", Params: strategy.Params{Quality: 0.1, Cost: 0.9, Latency: 0.9}, K: 1}); !errors.Is(err, server.ErrTenantClosed) {
		t.Fatalf("post-drain submit: %v, want ErrTenantClosed", err)
	}
}

// TestChaosRevokeStormConcurrent fires many goroutines revoking the same
// IDs: exactly one revoke per ID may succeed, everyone else sees 404, and
// the pool ends empty with a consistent final snapshot.
func TestChaosRevokeStormConcurrent(t *testing.T) {
	// The step callback deliberately uses a plain (non-atomic) counter:
	// OnApply is documented to run only on the single-writer loop
	// goroutine, and the race detector enforces that claim here.
	applied := 0
	s, specs := chaosServer(t, func(server.AppliedOp) { applied++ })
	defer s.Close()
	tn, err := s.Tenant(specs[0].Name)
	if err != nil {
		t.Fatal(err)
	}

	const ids = 60
	for i := 0; i < ids; i++ {
		if _, err := tn.Submit(context.Background(), strategy.Request{
			ID:     fmt.Sprintf("storm-%d", i),
			Params: strategy.Params{Quality: 0.2, Cost: 0.95, Latency: 0.95},
			K:      1,
		}); err != nil {
			t.Fatal(err)
		}
	}

	const revokers = 6
	var ok atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < revokers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ids; i++ {
				_, err := tn.Revoke(context.Background(), fmt.Sprintf("storm-%d", i))
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, stream.ErrUnknownID):
				default:
					t.Errorf("revoke storm: unexpected error %v", err)
				}
			}
		}()
	}
	wg.Wait()

	if got := ok.Load(); got != ids {
		t.Fatalf("%d successful revokes, want exactly %d", got, ids)
	}
	snap := tn.Snapshot()
	if len(snap.Requests) != 0 || len(snap.Plan.Serving) != 0 {
		t.Fatalf("pool not empty after storm: %d open, %d serving", len(snap.Requests), len(snap.Plan.Serving))
	}
	if applied != ids+revokers*ids {
		t.Fatalf("step callback saw %d ops, want %d", applied, ids+revokers*ids)
	}
}

// TestChaosSnapshotReadsRaceMutations hammers the lock-free read path
// (snapshots and warm-index alternatives) while a writer mutates. Under
// -race this proves the publication protocol; the assertions prove every
// observed snapshot is internally consistent and epochs never go
// backwards.
func TestChaosSnapshotReadsRaceMutations(t *testing.T) {
	s, specs := chaosServer(t, nil)
	defer s.Close()
	tn, err := s.Tenant(specs[0].Name)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	const readers = 4
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := tn.Snapshot()
				if snap.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", snap.Epoch, lastEpoch)
					return
				}
				lastEpoch = snap.Epoch
				if len(snap.Plan.Serving)+len(snap.Plan.Displaced) != len(snap.Requests) {
					t.Errorf("inconsistent snapshot: %d serving + %d displaced != %d open",
						len(snap.Plan.Serving), len(snap.Plan.Displaced), len(snap.Requests))
					return
				}
				var wf float64
				for _, rs := range snap.Requests {
					if rs.Serving {
						wf += rs.Workforce
					}
				}
				if math.Abs(wf-snap.Plan.Workforce) > 1e-9 {
					t.Errorf("snapshot workforce %v != sum over serving %v", snap.Plan.Workforce, wf)
					return
				}
				// Alternative queries ride the same immutable snapshot +
				// warm index; errors must be the documented domain ones —
				// including a pool shed when concurrent readers overrun
				// the (GOMAXPROCS-sized) query pool.
				for _, rs := range snap.Requests {
					if !rs.Serving {
						if _, _, err := tn.Alternative(context.Background(), rs.ID); err != nil &&
							!errors.Is(err, stream.ErrUnknownID) && !errors.Is(err, stream.ErrServed) &&
							!errors.Is(err, server.ErrOverloaded) {
							t.Errorf("alternative under race: %v", err)
							return
						}
						break
					}
				}
			}
		}()
	}

	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("race-%d", i)
		if _, err := tn.Submit(context.Background(), strategy.Request{
			ID: id, Params: strategy.Params{Quality: 0.4, Cost: 0.5, Latency: 0.5}, K: 2,
		}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := tn.Revoke(context.Background(), id); err != nil {
				t.Fatal(err)
			}
		}
		if i%17 == 0 {
			if _, err := tn.SetAvailability(context.Background(), float64(i%10+1)/10); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(done)
	wg.Wait()
}
