package conformance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func genTrace(t *testing.T, seed int64, events int) Trace {
	t.Helper()
	tr, err := Generate(GenConfig{Seed: seed, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestCrashRecoveryConformance is the acceptance gate in miniature: for
// three seeds, kill at a seeded mid-trace point (with a mid-run
// checkpoint), restart from disk, and require zero divergences across the
// recovered-state diff and the continued full-oracle replay.
func TestCrashRecoveryConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery conformance skipped in -short")
	}
	for _, seed := range []int64{1, 2, 3} {
		tr := genTrace(t, seed, 600)
		res, err := RunCrash(tr, CrashConfig{Cut: -1, CheckpointAt: -1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.OK() {
			t.Fatalf("seed %d: %d divergences (cut %d):\n%s", seed, len(res.Divergences), res.Cut, res.Result)
		}
		if res.Cut <= 0 || res.Cut >= len(tr.Events) {
			t.Fatalf("seed %d: degenerate cut %d of %d", seed, res.Cut, len(tr.Events))
		}
		if res.CheckpointAt < 0 {
			t.Fatalf("seed %d: run skipped its checkpoint", seed)
		}
		if _, err := os.Stat(res.DataDir); !os.IsNotExist(err) {
			t.Fatalf("seed %d: clean run left data dir %s behind", seed, res.DataDir)
		}
		t.Logf("seed %d: cut %d, checkpoint after %d, %d checks, recovery %v",
			seed, res.Cut, res.CheckpointAt, res.Checks, res.RecoveryDuration)
	}
}

// TestCrashRecoveryTornTail: a garbage partial record appended at the
// kill point (the torn write of an interrupted append) must be truncated
// by recovery without disturbing any acknowledged state.
func TestCrashRecoveryTornTail(t *testing.T) {
	tr := genTrace(t, 4, 400)
	res, err := RunCrash(tr, CrashConfig{Cut: -1, CheckpointAt: -1, TornTail: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("torn-tail run diverged:\n%s", res.Result)
	}
}

// TestCrashRecoveryGroupCommitViaBatch: the WAL v3 + group-commit +
// batched-ingest stack under the crash oracle. Mutations arrive as
// one-op batches, fsyncs are shared through the commit scheduler, the
// server is killed mid-trace with a torn tail — and the recovered state
// must still diff clean against the oracle's naive replay.
func TestCrashRecoveryGroupCommitViaBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery conformance skipped in -short")
	}
	tr := genTrace(t, 8, 500)
	res, err := RunCrash(tr, CrashConfig{
		Cut:               -1,
		CheckpointAt:      -1,
		TornTail:          true,
		ViaBatch:          true,
		GroupCommitWindow: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("group-commit crash run diverged (cut %d):\n%s", res.Cut, res.Result)
	}
	if res.Cut <= 0 || res.CheckpointAt < 0 {
		t.Fatalf("degenerate run: cut %d, checkpoint %d", res.Cut, res.CheckpointAt)
	}
}

// TestCrashRecoveryPureTail: no checkpoint at all — recovery replays the
// whole WAL from sequence 1.
func TestCrashRecoveryPureTail(t *testing.T) {
	tr := genTrace(t, 5, 400)
	res, err := RunCrash(tr, CrashConfig{Cut: -1, CheckpointAt: len(tr.Events) + 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointAt != -1 {
		t.Fatalf("expected checkpoint disabled, got index %d", res.CheckpointAt)
	}
	if !res.OK() {
		t.Fatalf("pure-tail run diverged:\n%s", res.Result)
	}
}

// TestCrashOracleCatchesLostState injects the bug the oracle exists for:
// durable state silently lost at the kill point. Deleting one tenant's
// data directory between kill and restart must surface as plan
// divergences (or a failed recovery), never as a clean run.
func TestCrashOracleCatchesLostState(t *testing.T) {
	tr := genTrace(t, 6, 400)

	// First, a normal run to learn the seeded cut (and prove the trace is
	// divergence-free without sabotage).
	res, err := RunCrash(tr, CrashConfig{Cut: -1, CheckpointAt: -1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("baseline run diverged:\n%s", res.Result)
	}

	// Now rerun with sabotage: unlink tenant-1's log and checkpoint files
	// during the last pre-cut event. The running server keeps its open
	// file descriptor (phase 1 finishes normally), but the restart finds
	// an empty directory — exactly what "durable state silently lost"
	// looks like — and the recovered-plan diff must call it out.
	sabotaged := false
	cut := res.Cut
	dir := t.TempDir()
	res2, err := RunCrash(tr, CrashConfig{Cut: cut, CheckpointAt: -1, DataDir: dir, OnEvent: func(i int, _ Event) {
		if i == cut-1 && !sabotaged {
			sabotaged = true
			entries, err := os.ReadDir(filepath.Join(dir, "tenant-1"))
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".log") || strings.HasSuffix(e.Name(), ".ckpt") {
					os.Remove(filepath.Join(dir, "tenant-1", e.Name()))
				}
			}
		}
	}})
	if err != nil {
		t.Logf("sabotage surfaced as recovery error: %v", err)
		return // a loud failure is an acceptable catch
	}
	if !sabotaged {
		t.Fatal("sabotage hook never fired")
	}
	if res2.OK() {
		t.Fatal("oracle passed a run whose durable state was wiped")
	}
}
