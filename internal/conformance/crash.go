package conformance

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"stratrec/internal/server"
)

// CrashConfig tunes a crash-recovery conformance run (RunCrash).
type CrashConfig struct {
	// Parallelism and BranchBoundLimit mean what they do in RunConfig.
	Parallelism      int
	BranchBoundLimit int
	// Cut is the event index at which the server is killed; negative
	// picks a seeded point in the middle half of the trace.
	Cut int
	// CheckpointAt is the event index after which POST /admin/checkpoint
	// fires, so recovery exercises checkpoint + tail rather than a pure
	// tail replay; negative defaults to Cut/2, and any value >= Cut
	// disables the checkpoint.
	CheckpointAt int
	// TornTail, when set, appends a garbage partial record to every
	// tenant's live segment between kill and restart — the torn write an
	// interrupted append leaves — which recovery must truncate away.
	TornTail bool
	// ViaBatch routes every mutation through the batched ingest endpoint
	// as a one-op batch (see RunConfig.ViaBatch), proving batch-ingested
	// mutations leave the same durable trace.
	ViaBatch bool
	// GroupCommitWindow, when positive, runs both server incarnations
	// with cross-tenant group commit at that window instead of per-append
	// fsyncs. The durability contract the oracle assumes — every
	// acknowledged mutation fsynced before its reply — holds either way.
	GroupCommitWindow time.Duration
	// DataDir is the durability root; empty uses a fresh temp dir that is
	// removed after a divergence-free run and kept when divergences were
	// found. An explicit DataDir must be empty beforehand and is always
	// left in place (CrashResult.DataDir names it either way), so CI can
	// upload it as an artifact with `if: failure()`.
	DataDir string
	// OnEvent, when non-nil, is called before each event replays (both
	// phases, original trace indices).
	OnEvent func(i int, ev Event)
}

// CrashResult summarizes a crash-recovery run.
type CrashResult struct {
	Result
	// Cut is the event index the kill happened at.
	Cut int
	// CheckpointAt is the event index the mid-run checkpoint fired after
	// (-1 when the run had no checkpoint).
	CheckpointAt int
	// RecoveryDuration is how long the restarted server took to recover
	// every tenant from disk (the server.New call).
	RecoveryDuration time.Duration
	// DataDir is the durability root the run used. It still exists iff
	// the run diverged or errored.
	DataDir string
}

// RunCrash is the crash-recovery oracle: it replays a trace through a
// durable server, kills the server at an event index, restarts it from
// disk, and diffs the recovered state field-by-field against the naive
// single-threaded replay of the events the oracle saw — then keeps
// replaying the rest of the trace with the full oracle layer, proving the
// recovered server is observably the same server.
//
// The kill is faithful to a real crash for everything the client was
// told: at the oracle's sync policy (every append fsynced before the
// reply), closing the server publishes exactly the byte stream a SIGKILL
// would have left, and TornTail adds the one artifact a mid-append kill
// can produce.
func RunCrash(tr Trace, cfg CrashConfig) (CrashResult, error) {
	if tr.Version != FormatVersion {
		return CrashResult{}, fmt.Errorf("conformance: trace version %d, this build replays %d", tr.Version, FormatVersion)
	}
	rcfg := RunConfig{
		Parallelism:      cfg.Parallelism,
		BranchBoundLimit: cfg.BranchBoundLimit,
		ViaBatch:         cfg.ViaBatch,
	}.withDefaults()

	cut := cfg.Cut
	if cut < 0 {
		rng := rand.New(rand.NewSource(tr.Seed*1000003 + 77))
		quarter := len(tr.Events) / 4
		if quarter == 0 {
			quarter = 1
		}
		cut = quarter + rng.Intn(2*quarter)
	}
	if cut > len(tr.Events) {
		cut = len(tr.Events)
	}
	ckptAt := cfg.CheckpointAt
	if ckptAt < 0 {
		ckptAt = cut / 2
	}
	if ckptAt >= cut {
		ckptAt = -1
	}

	res := CrashResult{Cut: cut, CheckpointAt: ckptAt}
	res.Events = len(tr.Events)

	dataDir := cfg.DataDir
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "stratrec-crash-*")
		if err != nil {
			return res, err
		}
		dataDir = tmp
	}
	res.DataDir = dataDir
	if cfg.DataDir != "" {
		if entries, err := os.ReadDir(dataDir); err == nil && len(entries) > 0 {
			// Phase 1 must start from nothing: leftover tenant state would
			// be recovered into the pre-kill server and every oracle
			// expectation would be off by a whole previous run.
			return res, fmt.Errorf("conformance: crash data dir %s is not empty", dataDir)
		}
	}
	keep := false
	defer func() {
		if !keep && cfg.DataDir == "" {
			os.RemoveAll(dataDir)
		}
	}()

	models := make(map[string]*tenantModel, len(tr.Tenants))
	srvCfg := server.Config{
		Tenants: map[string]server.TenantConfig{},
		Now:     func() time.Time { return time.Unix(1700000000, 0) },
		DataDir: dataDir,
		// Every acknowledged mutation fsynced before the reply: the
		// durability contract under which an abrupt close equals a kill.
		// With a group-commit window the scheduler upholds the same
		// contract (WALSyncEvery is then ignored).
		WALSyncEvery:         1,
		WALGroupCommitWindow: cfg.GroupCommitWindow,
	}
	for _, spec := range tr.Tenants {
		if _, dup := models[spec.Name]; dup {
			return res, fmt.Errorf("conformance: duplicate tenant %q", spec.Name)
		}
		m, err := newTenantModel(spec)
		if err != nil {
			return res, err
		}
		models[spec.Name] = m
		srvCfg.Tenants[spec.Name] = server.TenantConfig{
			Set:         m.set,
			Models:      m.models,
			Mode:        m.mode,
			Objective:   m.objective,
			InitialW:    spec.InitialW,
			Parallelism: cfg.Parallelism,
		}
	}

	diverge := func(i int, ev Event, field, want, got string) bool {
		res.Divergences = append(res.Divergences, Divergence{
			Index: i, Event: ev, Field: field, Want: want, Got: got,
		})
		return len(res.Divergences) >= rcfg.MaxDivergences
	}

	// --- Phase 1: live traffic up to the kill point, with the mid-run
	// checkpoint fired after event ckptAt so recovery exercises
	// checkpoint + tail, not just a pure tail replay ---
	s1, err := server.New(srvCfg)
	if err != nil {
		return res, err
	}
	hs1 := httptest.NewServer(s1.Handler())
	drv1 := newDriver(hs1, cfg.ViaBatch)
	phase1 := func() (bool, error) {
		if ckptAt < 0 {
			return replayRange(drv1, tr, 0, cut, models, rcfg, cfg.OnEvent, &res.Result, diverge)
		}
		stopped, err := replayRange(drv1, tr, 0, ckptAt+1, models, rcfg, cfg.OnEvent, &res.Result, diverge)
		if stopped || err != nil {
			return stopped, err
		}
		if err := postCheckpoint(drv1); err != nil {
			return false, err
		}
		return replayRange(drv1, tr, ckptAt+1, cut, models, rcfg, cfg.OnEvent, &res.Result, diverge)
	}
	stopped, err := phase1()
	hs1.Close()
	s1.Close() // the kill: loops stop, WAL closes with only-acked bytes
	if err != nil {
		keep = true
		return res, err
	}
	if stopped {
		keep = true
		return res, nil
	}

	if cfg.TornTail {
		if err := injectTornTails(dataDir); err != nil {
			keep = true
			return res, err
		}
	}

	// --- Restart: recovery from checkpoint + tail through the real
	// tenant event loops ---
	start := time.Now() //lint:allow clockdiscipline -- RecoveryDuration reports real restart latency to the operator
	s2, err := server.New(srvCfg)
	res.RecoveryDuration = time.Since(start) //lint:allow clockdiscipline -- RecoveryDuration reports real restart latency to the operator
	if err != nil {
		keep = true
		return res, fmt.Errorf("conformance: recovery failed: %w", err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	drv2 := newDriver(hs2, cfg.ViaBatch)
	defer func() {
		hs2.Close()
		s2.Close()
	}()

	// --- Recovered-state diff: every tenant's plan snapshot against the
	// oracle's naive replay of everything that happened before the kill,
	// field by field ---
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := models[name]
		ev := Event{Tenant: name, Kind: KindPlan}
		obs, err := drv2.call(ev)
		if err != nil {
			keep = true
			return res, fmt.Errorf("conformance: reading recovered plan of %s: %w", name, err)
		}
		exp := m.expectPlan()
		if compare(cut, ev, m, rcfg, exp, obs, &res.Result, diverge) {
			keep = true
			return res, nil
		}
	}

	// --- Phase 2: the rest of the trace against the recovered server,
	// full oracle layer ---
	stopped, err = replayRange(drv2, tr, cut, len(tr.Events), models, rcfg, cfg.OnEvent, &res.Result, diverge)
	if err != nil {
		keep = true
		return res, err
	}
	if !stopped && len(res.Divergences) < rcfg.MaxDivergences {
		checkListing(drv2, tr, models, &res.Result, diverge)
	}
	if len(res.Divergences) > 0 {
		keep = true
	}
	return res, nil
}

// replayRange replays tr.Events[from:to] against a live server, applying
// each event to the oracle models and comparing, exactly as Run does. It
// fires the mid-run checkpoint when the range crosses CheckpointAt (the
// caller encodes that by the from/to bounds — see RunCrash). Returns true
// when the divergence budget stopped the replay.
func replayRange(d *driver, tr Trace, from, to int, models map[string]*tenantModel, rcfg RunConfig, onEvent func(int, Event), out *Result, diverge func(int, Event, string, string, string) bool) (stopped bool, err error) {
	for i := from; i < to; i++ {
		ev := tr.Events[i]
		if onEvent != nil {
			onEvent(i, ev)
		}
		m, ok := models[ev.Tenant]
		if !ok {
			return false, fmt.Errorf("conformance: event %d targets unknown tenant %q", i, ev.Tenant)
		}
		obs, err := d.call(ev)
		if err != nil {
			return false, fmt.Errorf("conformance: event %d (%s %s): %w", i, ev.Kind, ev.ID, err)
		}
		var exp expectation
		switch ev.Kind {
		case KindSubmit:
			exp = m.applySubmit(ev)
		case KindRevoke:
			exp = m.applyRevoke(ev)
		case KindDrift:
			exp = m.applyDrift(ev)
		case KindPlan:
			exp = m.expectPlan()
		case KindAlternative:
			exp, err = m.expectAlternative(ev)
			if err != nil {
				return false, fmt.Errorf("conformance: event %d: oracle: %w", i, err)
			}
		default:
			return false, fmt.Errorf("conformance: event %d has unknown kind %q", i, ev.Kind)
		}
		if compare(i, ev, m, rcfg, exp, obs, out, diverge) {
			return true, nil
		}
	}
	return false, nil
}

// postCheckpoint fires POST /v1/admin/checkpoint and requires success.
func postCheckpoint(d *driver) error {
	if _, err := d.c.Checkpoint(context.Background()); err != nil {
		return fmt.Errorf("conformance: checkpoint request: %w", err)
	}
	return nil
}

// injectTornTails appends a garbage partial record to the live segment of
// every tenant directory under root.
func injectTornTails(root string) error {
	tenants, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	for _, te := range tenants {
		if !te.IsDir() {
			continue
		}
		dir := filepath.Join(root, te.Name())
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		var last string
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
				last = e.Name() // ReadDir sorts by name = by first seq
			}
		}
		if last == "" {
			continue
		}
		f, err := os.OpenFile(filepath.Join(dir, last), os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.WriteString(`00bad000 {"v":1,"seq":999999,"kind":"sub`); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
