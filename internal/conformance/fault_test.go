package conformance

import (
	"bytes"
	"strings"
	"testing"
)

// faultyDistance simulates an ADPaR solver bug: alternatives are served
// with a distance scaled down by 10%, the classic "optimizer reports a
// better-than-possible objective" defect class.
func faultyDistance(ev Event, obs *Observed) {
	if ev.Kind == KindAlternative && obs.Alternative != nil {
		obs.Alternative.Distance *= 0.9
	}
}

// faultyServed simulates a planner bug: displaced submissions whose ID
// ends in "3" are reported as served. Keyed off the event (not call
// order), so every minimizer probe sees the same deterministic defect.
func faultyServed(ev Event, obs *Observed) {
	if ev.Kind == KindSubmit && obs.Submit != nil && !obs.Submit.Served && strings.HasSuffix(ev.ID, "3") {
		obs.Submit.Served = true
	}
}

// TestInjectedSolverBugCaughtAndMinimized is the acceptance check for the
// shrinking reporter: a deliberately injected solver bug must (a) be
// caught as a divergence and (b) minimize to a replayable trace of at most
// 25 events that still exhibits it.
func TestInjectedSolverBugCaughtAndMinimized(t *testing.T) {
	tr, err := Generate(GenConfig{Seed: 1, Events: 1000, Profile: Bursty})
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Fault: faultyDistance}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("injected distance bug not caught")
	}

	minimized, stats := Minimize(tr, cfg, 0)
	t.Logf("minimized %d -> %d events in %d probes", stats.From, stats.To, stats.Probes)
	if len(minimized.Events) > 25 {
		t.Fatalf("minimized trace has %d events, want <= 25", len(minimized.Events))
	}

	// The minimized trace must be a replayable artifact: it round-trips
	// through JSON and still diverges, and without the fault it is clean.
	var buf bytes.Buffer
	if err := minimized.Write(&buf); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Run(replayed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("minimized trace no longer diverges under the fault")
	}
	clean, err := Run(replayed, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.OK() {
		t.Fatalf("minimized trace diverges even without the fault:\n%s", clean)
	}
}

// TestInjectedPlannerBugCaughtAndMinimized: a second defect class (wrong
// served flag) is caught and also shrinks to a tiny replayable trace.
func TestInjectedPlannerBugCaughtAndMinimized(t *testing.T) {
	tr, err := Generate(GenConfig{Seed: 4, Events: 600})
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Fault: faultyServed}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("injected served-flag bug not caught")
	}

	minimized, stats := Minimize(tr, cfg, 0)
	t.Logf("minimized %d -> %d events in %d probes", stats.From, stats.To, stats.Probes)
	if len(minimized.Events) > 25 {
		t.Fatalf("minimized trace has %d events, want <= 25", len(minimized.Events))
	}
	res, err = Run(minimized, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("minimized trace no longer diverges under the fault")
	}
}

// TestMinimizeCleanTraceIsNoop: a passing trace comes back unchanged.
func TestMinimizeCleanTraceIsNoop(t *testing.T) {
	tr, err := Generate(GenConfig{Seed: 2, Events: 60})
	if err != nil {
		t.Fatal(err)
	}
	out, stats := Minimize(tr, RunConfig{}, 0)
	if stats.From != stats.To || len(out.Events) != len(tr.Events) {
		t.Fatalf("clean trace changed: %+v", stats)
	}
}
