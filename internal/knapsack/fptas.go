package knapsack

import (
	"errors"
	"math"
	"sort"
)

// This file implements the FPTAS of Ibarra & Kim (1975) — the paper's
// citation for fast approximate knapsack — by value scaling: profits are
// rounded down to multiples of eps*Pmax/n and an exact dynamic program runs
// over the scaled values, guaranteeing at least (1-eps) of the optimal
// value in O(n^2 * floor(n/eps)) time. batch.FPTAS exposes it as a
// higher-precision alternative to the 1/2-approximate greedy when batch
// sizes make the exact branch-and-bound uncomfortable.

// ErrBadEpsilon rejects eps outside (0, 1).
var ErrBadEpsilon = errors.New("knapsack: epsilon must be in (0, 1)")

// SolveFPTAS returns a solution with value at least (1-eps) of the optimum.
func SolveFPTAS(items []Item, capacity int, eps float64) (Solution, error) {
	if capacity < 0 {
		return Solution{}, ErrBadInput
	}
	if eps <= 0 || eps >= 1 || math.IsNaN(eps) {
		return Solution{}, ErrBadEpsilon
	}
	// Drop oversized or worthless items up front; remember positions.
	type indexed struct {
		Item
		pos int
	}
	var feasible []indexed
	maxValue := 0.0
	for i, it := range items {
		if it.Weight < 0 {
			return Solution{}, ErrBadInput
		}
		if it.Weight > capacity || it.Value <= 0 {
			continue
		}
		feasible = append(feasible, indexed{Item: it, pos: i})
		maxValue = math.Max(maxValue, it.Value)
	}
	n := len(feasible)
	if n == 0 {
		return Solution{}, nil
	}

	// Scale: profits become integers in [0, n/eps].
	scale := eps * maxValue / float64(n)
	scaled := make([]int, n)
	totalScaled := 0
	for i, it := range feasible {
		scaled[i] = int(math.Floor(it.Value / scale))
		totalScaled += scaled[i]
	}

	// DP over achievable scaled profit: minWeight[p] = lightest subset of
	// the first i items achieving scaled profit exactly p.
	const inf = math.MaxInt64 / 4
	minWeight := make([]int, totalScaled+1)
	choice := make([][]bool, n) // choice[i][p]: item i used to reach p
	for p := 1; p <= totalScaled; p++ {
		minWeight[p] = inf
	}
	reachable := 0
	for i := 0; i < n; i++ {
		choice[i] = make([]bool, totalScaled+1)
		hi := reachable + scaled[i]
		if hi > totalScaled {
			hi = totalScaled
		}
		for p := hi; p >= scaled[i]; p-- {
			if minWeight[p-scaled[i]] == inf {
				continue
			}
			if w := minWeight[p-scaled[i]] + feasible[i].Weight; w < minWeight[p] {
				minWeight[p] = w
				choice[i][p] = true
			}
		}
		reachable = hi
	}

	// Best reachable profit within capacity.
	best := 0
	for p := totalScaled; p > 0; p-- {
		if minWeight[p] <= capacity {
			best = p
			break
		}
	}

	// Reconstruct.
	var sol Solution
	p := best
	for i := n - 1; i >= 0 && p > 0; i-- {
		if choice[i][p] {
			sol.Indices = append(sol.Indices, feasible[i].pos)
			sol.Value += feasible[i].Value
			sol.Weight += feasible[i].Weight
			p -= scaled[i]
		}
	}
	sort.Ints(sol.Indices)
	return sol, nil
}
