package knapsack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFPTASValidation(t *testing.T) {
	items := []Item{{Weight: 1, Value: 1}}
	if _, err := SolveFPTAS(items, -1, 0.1); err == nil {
		t.Error("negative capacity accepted")
	}
	for _, eps := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := SolveFPTAS(items, 5, eps); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
	if _, err := SolveFPTAS([]Item{{Weight: -1, Value: 1}}, 5, 0.1); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestFPTASEmptyAndDegenerate(t *testing.T) {
	sol, err := SolveFPTAS(nil, 10, 0.1)
	if err != nil || sol.Value != 0 {
		t.Errorf("empty: %+v, %v", sol, err)
	}
	// All items oversized.
	sol, err = SolveFPTAS([]Item{{Weight: 100, Value: 5}}, 10, 0.1)
	if err != nil || sol.Value != 0 {
		t.Errorf("oversized: %+v, %v", sol, err)
	}
	// Worthless items are skipped.
	sol, err = SolveFPTAS([]Item{{Weight: 1, Value: 0}}, 10, 0.1)
	if err != nil || len(sol.Indices) != 0 {
		t.Errorf("worthless: %+v, %v", sol, err)
	}
}

func TestFPTASClassic(t *testing.T) {
	items := []Item{
		{Weight: 2, Value: 3},
		{Weight: 3, Value: 4},
		{Weight: 4, Value: 5},
		{Weight: 5, Value: 6},
	}
	sol, err := SolveFPTAS(items, 5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// With tiny eps the FPTAS matches the exact optimum 7.
	if sol.Value != 7 {
		t.Errorf("value = %v, want 7", sol.Value)
	}
	if sol.Weight > 5 {
		t.Errorf("weight = %v exceeds capacity", sol.Weight)
	}
}

func TestPropertyFPTASGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func() bool {
		items, cap := randomInstance(rng)
		eps := 0.05 + 0.4*rng.Float64()
		opt, err := SolveDP(items, cap)
		if err != nil {
			return false
		}
		approx, err := SolveFPTAS(items, cap, eps)
		if err != nil {
			return false
		}
		// Within capacity, never above the optimum, and within (1-eps).
		if approx.Weight > cap || approx.Value > opt.Value+1e-9 {
			return false
		}
		if approx.Value < (1-eps)*opt.Value-1e-9 {
			return false
		}
		// Reported indices consistent with value/weight.
		var v float64
		w := 0
		for _, i := range approx.Indices {
			v += items[i].Value
			w += items[i].Weight
		}
		return math.Abs(v-approx.Value) < 1e-9 && w == approx.Weight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestFPTASBeatsGreedyTrap(t *testing.T) {
	// The instance where the plain density greedy gets only half: FPTAS
	// with small eps must find the full prize.
	items := []Item{
		{Weight: 1, Value: 2},
		{Weight: 10, Value: 10},
	}
	sol, err := SolveFPTAS(items, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value < 10*(1-0.05) {
		t.Errorf("FPTAS value = %v, want >= 9.5", sol.Value)
	}
}
