package knapsack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFPTASValidation(t *testing.T) {
	items := []Item{{Weight: 1, Value: 1}}
	if _, err := SolveFPTAS(items, -1, 0.1); err == nil {
		t.Error("negative capacity accepted")
	}
	for _, eps := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := SolveFPTAS(items, 5, eps); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
	if _, err := SolveFPTAS([]Item{{Weight: -1, Value: 1}}, 5, 0.1); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestFPTASEmptyAndDegenerate(t *testing.T) {
	sol, err := SolveFPTAS(nil, 10, 0.1)
	if err != nil || sol.Value != 0 {
		t.Errorf("empty: %+v, %v", sol, err)
	}
	// All items oversized.
	sol, err = SolveFPTAS([]Item{{Weight: 100, Value: 5}}, 10, 0.1)
	if err != nil || sol.Value != 0 {
		t.Errorf("oversized: %+v, %v", sol, err)
	}
	// Worthless items are skipped.
	sol, err = SolveFPTAS([]Item{{Weight: 1, Value: 0}}, 10, 0.1)
	if err != nil || len(sol.Indices) != 0 {
		t.Errorf("worthless: %+v, %v", sol, err)
	}
}

func TestFPTASClassic(t *testing.T) {
	items := []Item{
		{Weight: 2, Value: 3},
		{Weight: 3, Value: 4},
		{Weight: 4, Value: 5},
		{Weight: 5, Value: 6},
	}
	sol, err := SolveFPTAS(items, 5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// With tiny eps the FPTAS matches the exact optimum 7.
	if sol.Value != 7 {
		t.Errorf("value = %v, want 7", sol.Value)
	}
	if sol.Weight > 5 {
		t.Errorf("weight = %v exceeds capacity", sol.Weight)
	}
}

func TestPropertyFPTASGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func() bool {
		items, cap := randomInstance(rng)
		eps := 0.05 + 0.4*rng.Float64()
		opt, err := SolveDP(items, cap)
		if err != nil {
			return false
		}
		approx, err := SolveFPTAS(items, cap, eps)
		if err != nil {
			return false
		}
		// Within capacity, never above the optimum, and within (1-eps).
		if approx.Weight > cap || approx.Value > opt.Value+1e-9 {
			return false
		}
		if approx.Value < (1-eps)*opt.Value-1e-9 {
			return false
		}
		// Reported indices consistent with value/weight.
		var v float64
		w := 0
		for _, i := range approx.Indices {
			v += items[i].Value
			w += items[i].Weight
		}
		return math.Abs(v-approx.Value) < 1e-9 && w == approx.Weight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFPTASEpsilonGrid sweeps fixed epsilons — including the tight
// and loose extremes — across randomized instance families and asserts the
// Ibarra-Kim guarantee value >= (1-eps) * exact on every one, with the
// exact optimum from the dynamic program.
func TestPropertyFPTASEpsilonGrid(t *testing.T) {
	// Each family owns its own seeded rng (created in the subtest), so a
	// failing (family, eps, trial) triple regenerates the exact same
	// instance on re-run regardless of which subtests execute or in what
	// order.
	var rng *rand.Rand
	families := []struct {
		name string
		gen  func() ([]Item, int)
	}{
		{"uniform", func() ([]Item, int) {
			n := 1 + rng.Intn(25)
			items := make([]Item, n)
			total := 0
			for i := range items {
				items[i] = Item{Weight: 1 + rng.Intn(40), Value: rng.Float64() * 100}
				total += items[i].Weight
			}
			return items, rng.Intn(total + 1)
		}},
		// Correlated values (v ~ w) make rounding errors bite hardest.
		{"correlated", func() ([]Item, int) {
			n := 1 + rng.Intn(25)
			items := make([]Item, n)
			total := 0
			for i := range items {
				w := 1 + rng.Intn(40)
				items[i] = Item{Weight: w, Value: float64(w) + rng.Float64()}
				total += w
			}
			return items, total / 2
		}},
		// A few huge-value outliers dominate Pmax and coarsen the scale.
		{"outliers", func() ([]Item, int) {
			n := 2 + rng.Intn(20)
			items := make([]Item, n)
			total := 0
			for i := range items {
				v := rng.Float64()
				if i%5 == 0 {
					v *= 1e6
				}
				items[i] = Item{Weight: 1 + rng.Intn(15), Value: v}
				total += items[i].Weight
			}
			return items, total / 3
		}},
	}
	for fi, family := range families {
		gen := family.gen
		seed := int64(1975 + fi)
		t.Run(family.name, func(t *testing.T) {
			rng = rand.New(rand.NewSource(seed))
			for _, eps := range []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.9} {
				for trial := 0; trial < 40; trial++ {
					items, cap := gen()
					opt, err := SolveDP(items, cap)
					if err != nil {
						t.Fatal(err)
					}
					approx, err := SolveFPTAS(items, cap, eps)
					if err != nil {
						t.Fatal(err)
					}
					if approx.Weight > cap {
						t.Fatalf("eps=%v trial=%d: weight %d over capacity %d", eps, trial, approx.Weight, cap)
					}
					if approx.Value > opt.Value+1e-9 {
						t.Fatalf("eps=%v trial=%d: value %v above optimum %v", eps, trial, approx.Value, opt.Value)
					}
					if approx.Value < (1-eps)*opt.Value-1e-9 {
						t.Fatalf("eps=%v trial=%d: value %v below (1-eps)*opt = %v (opt %v)",
							eps, trial, approx.Value, (1-eps)*opt.Value, opt.Value)
					}
				}
			}
		})
	}
}

func TestFPTASBeatsGreedyTrap(t *testing.T) {
	// The instance where the plain density greedy gets only half: FPTAS
	// with small eps must find the full prize.
	items := []Item{
		{Weight: 1, Value: 2},
		{Weight: 10, Value: 10},
	}
	sol, err := SolveFPTAS(items, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value < 10*(1-0.05) {
		t.Errorf("FPTAS value = %v, want >= 9.5", sol.Value)
	}
}
