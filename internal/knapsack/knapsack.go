// Package knapsack is the discrete-optimization substrate behind Section
// 3.3: the 0/1 knapsack problem that the pay-off maximization problem
// reduces to (Theorem 1, Figure 4). It provides an exact dynamic-programming
// solver over integer weights and the classic density-greedy
// 1/2-approximation of Ibarra–Kim / Lawler that BatchStrat-PayOff mirrors.
//
// The package is used to validate the reduction both ways in tests: a batch
// pay-off instance is translated to a knapsack instance and the optima must
// agree.
package knapsack

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Item is a knapsack item with an integer weight and a real value.
type Item struct {
	Weight int
	Value  float64
}

// Solution is a chosen subset of items.
type Solution struct {
	Indices []int   // positions of chosen items in input order
	Value   float64 // total value
	Weight  int     // total weight
}

// ErrBadInput flags negative weights/capacities.
var ErrBadInput = errors.New("knapsack: weights and capacity must be non-negative")

// SolveDP solves 0/1 knapsack exactly by dynamic programming over
// capacities, O(n * capacity) time, O(n * capacity) space to recover the
// chosen set.
func SolveDP(items []Item, capacity int) (Solution, error) {
	if capacity < 0 {
		return Solution{}, ErrBadInput
	}
	for i, it := range items {
		if it.Weight < 0 {
			return Solution{}, fmt.Errorf("%w: item %d weight %d", ErrBadInput, i, it.Weight)
		}
	}
	n := len(items)
	// best[i][c] = max value using items[0:i] with capacity c.
	best := make([][]float64, n+1)
	for i := range best {
		best[i] = make([]float64, capacity+1)
	}
	for i := 1; i <= n; i++ {
		it := items[i-1]
		for c := 0; c <= capacity; c++ {
			best[i][c] = best[i-1][c]
			if it.Weight <= c {
				if v := best[i-1][c-it.Weight] + it.Value; v > best[i][c] {
					best[i][c] = v
				}
			}
		}
	}
	sol := Solution{Value: best[n][capacity]}
	c := capacity
	for i := n; i >= 1; i-- {
		if best[i][c] != best[i-1][c] {
			sol.Indices = append(sol.Indices, i-1)
			sol.Weight += items[i-1].Weight
			c -= items[i-1].Weight
		}
	}
	// Reverse into input order.
	for l, r := 0, len(sol.Indices)-1; l < r; l, r = l+1, r-1 {
		sol.Indices[l], sol.Indices[r] = sol.Indices[r], sol.Indices[l]
	}
	return sol, nil
}

// SolveGreedy is the classic density-greedy with the best-single-item
// fallback; it guarantees at least half the optimal value. This is the
// algorithmic template BatchStrat-PayOff instantiates.
func SolveGreedy(items []Item, capacity int) (Solution, error) {
	if capacity < 0 {
		return Solution{}, ErrBadInput
	}
	type indexed struct {
		Item
		pos int
	}
	feasible := make([]indexed, 0, len(items))
	for i, it := range items {
		if it.Weight < 0 {
			return Solution{}, fmt.Errorf("%w: item %d weight %d", ErrBadInput, i, it.Weight)
		}
		if it.Weight <= capacity {
			feasible = append(feasible, indexed{Item: it, pos: i})
		}
	}
	sort.SliceStable(feasible, func(a, b int) bool {
		return densityOf(feasible[a].Item) > densityOf(feasible[b].Item)
	})
	var greedy Solution
	for _, it := range feasible {
		if greedy.Weight+it.Weight > capacity {
			continue
		}
		greedy.Indices = append(greedy.Indices, it.pos)
		greedy.Weight += it.Weight
		greedy.Value += it.Value
	}
	var bestSingle Solution
	for _, it := range feasible {
		if it.Value > bestSingle.Value {
			bestSingle = Solution{Indices: []int{it.pos}, Value: it.Value, Weight: it.Weight}
		}
	}
	if bestSingle.Value > greedy.Value {
		sort.Ints(bestSingle.Indices)
		return bestSingle, nil
	}
	sort.Ints(greedy.Indices)
	return greedy, nil
}

func densityOf(it Item) float64 {
	if it.Weight == 0 {
		return math.Inf(1)
	}
	return it.Value / float64(it.Weight)
}

// FromPayoff performs the Theorem-1 reduction in the practical direction:
// real-valued workforce requirements and capacity are scaled by `scale` and
// rounded to integers, producing a knapsack instance whose optimum
// corresponds to the pay-off optimum of the discretized batch problem.
func FromPayoff(workforces []float64, payoffs []float64, W float64, scale int) ([]Item, int, error) {
	if len(workforces) != len(payoffs) {
		return nil, 0, fmt.Errorf("knapsack: %d workforces vs %d payoffs", len(workforces), len(payoffs))
	}
	if scale <= 0 {
		return nil, 0, errors.New("knapsack: scale must be positive")
	}
	items := make([]Item, len(workforces))
	for i := range workforces {
		if workforces[i] < 0 || math.IsInf(workforces[i], 1) {
			return nil, 0, fmt.Errorf("knapsack: workforce %d is %v", i, workforces[i])
		}
		items[i] = Item{Weight: int(math.Round(workforces[i] * float64(scale))), Value: payoffs[i]}
	}
	return items, int(math.Round(W * float64(scale))), nil
}
