package knapsack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveDPClassic(t *testing.T) {
	items := []Item{
		{Weight: 2, Value: 3},
		{Weight: 3, Value: 4},
		{Weight: 4, Value: 5},
		{Weight: 5, Value: 6},
	}
	sol, err := SolveDP(items, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 7 { // items 0 and 1
		t.Errorf("Value = %v, want 7", sol.Value)
	}
	if sol.Weight != 5 {
		t.Errorf("Weight = %v, want 5", sol.Weight)
	}
	if len(sol.Indices) != 2 || sol.Indices[0] != 0 || sol.Indices[1] != 1 {
		t.Errorf("Indices = %v, want [0 1]", sol.Indices)
	}
}

func TestSolveDPEdgeCases(t *testing.T) {
	sol, err := SolveDP(nil, 10)
	if err != nil || sol.Value != 0 || len(sol.Indices) != 0 {
		t.Errorf("empty instance: %+v, %v", sol, err)
	}
	sol, err = SolveDP([]Item{{Weight: 5, Value: 9}}, 0)
	if err != nil || sol.Value != 0 {
		t.Errorf("zero capacity: %+v, %v", sol, err)
	}
	if _, err := SolveDP([]Item{{Weight: -1, Value: 1}}, 5); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := SolveDP(nil, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	// Zero-weight items are free value.
	sol, err = SolveDP([]Item{{Weight: 0, Value: 2}, {Weight: 1, Value: 1}}, 1)
	if err != nil || sol.Value != 3 {
		t.Errorf("zero-weight handling: %+v, %v", sol, err)
	}
}

func TestSolveGreedyHalfGuarantee(t *testing.T) {
	// Classic greedy trap: one dense small item, one big valuable item.
	items := []Item{
		{Weight: 1, Value: 2},   // density 2
		{Weight: 10, Value: 10}, // density 1, but the real prize
	}
	sol, err := SolveGreedy(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy picks item 0 (value 2); best single is item 1 (value 10).
	if sol.Value != 10 {
		t.Errorf("greedy-with-fallback value = %v, want 10", sol.Value)
	}
}

func TestSolveGreedySkipsOversized(t *testing.T) {
	items := []Item{
		{Weight: 100, Value: 100},
		{Weight: 2, Value: 3},
	}
	sol, err := SolveGreedy(items, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 3 || len(sol.Indices) != 1 || sol.Indices[0] != 1 {
		t.Errorf("oversized item not skipped: %+v", sol)
	}
	if _, err := SolveGreedy([]Item{{Weight: -2, Value: 1}}, 5); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := SolveGreedy(nil, -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestFromPayoffReduction(t *testing.T) {
	// The Theorem-1 mapping of Figure 4: deployment requests become items.
	items, cap, err := FromPayoff([]float64{0.2, 0.35}, []float64{0.8, 0.9}, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cap != 50 {
		t.Errorf("capacity = %d, want 50", cap)
	}
	if items[0].Weight != 20 || items[1].Weight != 35 {
		t.Errorf("weights = %v", items)
	}
	if _, _, err := FromPayoff([]float64{1}, []float64{1, 2}, 0.5, 100); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := FromPayoff([]float64{1}, []float64{1}, 0.5, 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, _, err := FromPayoff([]float64{math.Inf(1)}, []float64{1}, 0.5, 10); err == nil {
		t.Error("infeasible workforce accepted")
	}
}

func randomInstance(rng *rand.Rand) ([]Item, int) {
	n := 1 + rng.Intn(12)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Weight: rng.Intn(20), Value: float64(rng.Intn(50))}
	}
	return items, rng.Intn(60)
}

// bruteForce is the exponential reference.
func bruteForce(items []Item, capacity int) float64 {
	best := 0.0
	for mask := 0; mask < 1<<len(items); mask++ {
		w, v := 0, 0.0
		for b := range items {
			if mask&(1<<b) != 0 {
				w += items[b].Weight
				v += items[b].Value
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}
	return best
}

func TestPropertyDPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func() bool {
		items, cap := randomInstance(rng)
		sol, err := SolveDP(items, cap)
		if err != nil {
			return false
		}
		if sol.Value != bruteForce(items, cap) {
			return false
		}
		// Reported indices must be consistent with value and weight.
		w, v := 0, 0.0
		for _, i := range sol.Indices {
			w += items[i].Weight
			v += items[i].Value
		}
		return w == sol.Weight && w <= cap && math.Abs(v-sol.Value) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGreedyHalfOfOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		items, cap := randomInstance(rng)
		opt, err := SolveDP(items, cap)
		if err != nil {
			return false
		}
		greedy, err := SolveGreedy(items, cap)
		if err != nil {
			return false
		}
		if greedy.Value > opt.Value {
			return false // greedy can never beat the optimum
		}
		return greedy.Value >= opt.Value/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
