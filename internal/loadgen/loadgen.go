// Package loadgen is the HTTP load harness: a synthetic Poisson
// submit/revoke/drift workload (internal/synth) replayed over the API
// client by a pool of workers, in per-op mode (one HTTP request per
// mutation, plus alternative queries on displaced submissions) or
// batched mode (mutations grouped into POST /ops bodies, the
// round-trip-amortized ingest path).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stratrec/internal/client"
	"stratrec/internal/synth"
)

// Config parameterizes the load harness.
type Config struct {
	// BaseURL is the target server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenants are the tenant names to spread workers across
	// (round-robin).
	Tenants []string
	// Workers is the number of concurrent replaying clients (default 4).
	Workers int
	// Events is the total number of workload arrivals across all workers
	// (default 1000).
	Events int
	// Rate is the Poisson arrival rate per worker in events/second; 0
	// replays as fast as the server allows (closed loop), which is the
	// throughput-measuring mode.
	Rate float64
	// RevokeFraction, DriftFraction, TightFraction parameterize the
	// workload mix (see synth.WorkloadConfig). Tight submissions are
	// displaced and trigger an ADPaR alternative query (per-op mode
	// only).
	RevokeFraction, DriftFraction, TightFraction float64
	// PlanEvery inserts a plan read every n-th event per worker (0
	// disables). In batched mode the read fires after the batch that
	// crossed the threshold. The probe uses the ?view=summary projection:
	// the full plan body grows with the open pool, and a harness that
	// decodes it on every probe ends up measuring its own JSON parser
	// instead of the server.
	PlanEvery int
	// K is the per-request cardinality constraint (default 3).
	K int
	// Seed makes workload generation deterministic.
	Seed int64
	// IDPrefix further namespaces request IDs, letting repeated harness
	// runs against the same live server avoid ID collisions with
	// requests an earlier run left open.
	IDPrefix string
	// BatchSize, when > 0, switches to batched ingest: each worker
	// groups its mutations into ordered POST /ops bodies of up to this
	// many ops (same-worker revokes still land after their submits — the
	// batch preserves order). Alternative queries are skipped in this
	// mode; the replay measures pure ingest throughput.
	BatchSize int
	// Workloads, when non-nil, are pre-built per-worker event sequences
	// (e.g. loaded from a file with synth.ReadTrace) replayed verbatim —
	// one worker per sequence — instead of generating from Seed and the
	// mix fields above. This is the deterministic replay mode: the same
	// file drives the same requests every run.
	Workloads [][]synth.WorkloadEvent
	// Client overrides the HTTP client (default: keep-alive transport
	// sized to Workers).
	Client *http.Client
}

// BuildWorkloads generates the per-worker event sequences Run replays
// when cfg.Workloads is nil. It is exported so callers can export a
// workload (synth.WriteTrace) and replay the identical sequence later.
func BuildWorkloads(cfg Config) ([][]synth.WorkloadEvent, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	events := cfg.Events
	if events <= 0 {
		events = 1000
	}
	k := cfg.K
	if k <= 0 {
		k = 3
	}
	gen := synth.DefaultConfig(synth.Uniform)
	perWorker := (events + workers - 1) / workers
	workloads := make([][]synth.WorkloadEvent, 0, workers)
	for i := 0; i < workers; i++ {
		n := perWorker
		if rest := events - i*perWorker; rest < n {
			n = rest
		}
		if n <= 0 {
			break
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		wl, err := gen.Workload(rng, synth.WorkloadConfig{
			Events:         n,
			K:              k,
			Rate:           cfg.Rate,
			RevokeFraction: cfg.RevokeFraction,
			DriftFraction:  cfg.DriftFraction,
			TightFraction:  cfg.TightFraction,
			IDPrefix:       fmt.Sprintf("%sw%d-", cfg.IDPrefix, i),
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: workload: %w", err)
		}
		workloads = append(workloads, wl)
	}
	return workloads, nil
}

// OpStats summarizes latencies of one operation class.
type OpStats struct {
	Count  int
	Errors int
	P50    time.Duration
	P90    time.Duration
	P99    time.Duration
	Max    time.Duration
}

// Report is the harness outcome: the repo's measured requests-per-second
// and ops-per-second numbers and the latency percentiles.
type Report struct {
	Events     int // completed HTTP requests
	Ops        int // mutations carried (== batch bodies expanded)
	Errors     int // failed HTTP requests plus failed in-batch ops
	Duration   time.Duration
	Throughput float64 // completed HTTP requests per second
	OpsPerSec  float64 // mutations per second — the ingest number
	Overall    OpStats
	PerOp      map[string]OpStats // submit, revoke, drift, plan, alternative, batch
}

// String renders the report as the human-readable summary the selftest and
// CI burst print.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load: %d requests, %d ops in %v (%.0f req/s, %.0f ops/s), %d errors\n",
		r.Events, r.Ops, r.Duration.Round(time.Millisecond), r.Throughput, r.OpsPerSec, r.Errors)
	fmt.Fprintf(&b, "  %-12s %8s %10s %10s %10s %10s\n", "op", "count", "p50", "p90", "p99", "max")
	fmt.Fprintf(&b, "  %-12s %8d %10v %10v %10v %10v\n", "all",
		r.Overall.Count, r.Overall.P50, r.Overall.P90, r.Overall.P99, r.Overall.Max)
	ops := make([]string, 0, len(r.PerOp))
	for op := range r.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st := r.PerOp[op]
		fmt.Fprintf(&b, "  %-12s %8d %10v %10v %10v %10v\n", op,
			st.Count, st.P50, st.P90, st.P99, st.Max)
	}
	return b.String()
}

// sample is one timed HTTP request: the op class, the latency, how many
// mutations it carried (0 for reads, the body size for batches), and how
// many operations failed (the whole carry for a failed call).
type sample struct {
	op   string
	d    time.Duration
	ops  int
	errs int
}

// Run replays the configured workload and reports throughput and
// latency percentiles. Every worker replays its own ID-prefixed event
// sequence (so revokes always target the worker's own submissions in
// order) and drives one tenant; workers spread round-robin across
// cfg.Tenants. Sequences come from BuildWorkloads, or verbatim from
// cfg.Workloads in replay mode.
//
//lint:allow clockdiscipline -- loadgen measures real wall-clock throughput and run duration against a live server
func Run(cfg Config) (Report, error) {
	if cfg.BaseURL == "" {
		return Report{}, errors.New("loadgen: need a BaseURL")
	}
	if len(cfg.Tenants) == 0 {
		return Report{}, errors.New("loadgen: need at least one tenant")
	}
	// Resolve every worker's event sequence up front, before the clock
	// starts: a bad workload config (negative rate, NaN fractions) fails
	// the whole run with the synth sentinel instead of surfacing as
	// per-worker error samples mid-replay.
	workloads := cfg.Workloads
	if workloads == nil {
		var err error
		if workloads, err = BuildWorkloads(cfg); err != nil {
			return Report{}, err
		}
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        len(workloads) * 2,
			MaxIdleConnsPerHost: len(workloads) * 2,
		}}
	}
	// Every op carries a distinct trace ID, so a selftest anomaly can be
	// chased into the server's structured log (serve -log json).
	var traceSeq atomic.Int64
	c := client.New(cfg.BaseURL, client.WithHTTPClient(hc),
		client.WithTrace(func() string {
			return fmt.Sprintf("load-%d", traceSeq.Add(1))
		}))

	sampleCh := make(chan []sample, len(workloads))
	start := time.Now()
	var wg sync.WaitGroup
	for i, wl := range workloads {
		wg.Add(1)
		go func(worker int, wl []synth.WorkloadEvent) {
			defer wg.Done()
			tenant := cfg.Tenants[worker%len(cfg.Tenants)]
			if cfg.BatchSize > 0 {
				sampleCh <- replayBatched(c, tenant, wl, cfg.BatchSize, cfg.PlanEvery, start)
			} else {
				sampleCh <- replay(c, tenant, wl, cfg.PlanEvery, start)
			}
		}(i, wl)
	}
	wg.Wait()
	close(sampleCh)

	var all []sample
	for ss := range sampleCh {
		all = append(all, ss...)
	}
	elapsed := time.Since(start)

	rep := Report{
		Duration: elapsed,
		PerOp:    map[string]OpStats{},
	}
	byOp := map[string][]time.Duration{}
	errsByOp := map[string]int{}
	var overall []time.Duration
	for _, s := range all {
		rep.Events++
		rep.Ops += s.ops
		rep.Errors += s.errs
		overall = append(overall, s.d)
		byOp[s.op] = append(byOp[s.op], s.d)
		errsByOp[s.op] += s.errs
	}
	rep.Overall = statsOf(overall, rep.Errors)
	for op, ds := range byOp {
		rep.PerOp[op] = statsOf(ds, errsByOp[op])
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(rep.Events) / secs
		rep.OpsPerSec = float64(rep.Ops) / secs
	}
	return rep, nil
}

// timed runs one client call and grades it into a sample. tolerateRace
// forgives 404/409 (alternative queries legitimately race the plan).
//
//lint:allow clockdiscipline -- latency samples measure the real round-trip
func timed(op string, ops int, tolerateRace bool, f func() error) sample {
	t0 := time.Now()
	err := f()
	s := sample{op: op, d: time.Since(t0), ops: ops}
	if err != nil {
		var apiErr *client.APIError
		if tolerateRace && errors.As(err, &apiErr) &&
			(apiErr.Status == http.StatusNotFound || apiErr.Status == http.StatusConflict) {
			return s
		}
		s.errs = max(ops, 1)
	}
	return s
}

// replay drives one worker's event sequence against one tenant in per-op
// mode, interleaving alternative queries after displaced submissions and
// periodic plan reads.
func replay(c *client.Client, tenant string, wl []synth.WorkloadEvent, planEvery int, start time.Time) []sample {
	ctx := context.Background()
	samples := make([]sample, 0, len(wl)+len(wl)/4)
	for i, ev := range wl {
		if ev.At > 0 {
			//lint:allow clockdiscipline -- arrival pacing sleeps against the real clock
			if d := time.Until(start.Add(ev.At)); d > 0 {
				time.Sleep(d)
			}
		}
		switch ev.Kind {
		case synth.SubmitArrival:
			var resp client.SubmitResponse
			s := timed("submit", 1, false, func() (err error) {
				resp, err = c.Submit(ctx, tenant, client.SubmitRequest{
					ID:      ev.Request.ID,
					Quality: ev.Request.Quality,
					Cost:    ev.Request.Cost,
					Latency: ev.Request.Latency,
					K:       ev.Request.K,
				})
				return err
			})
			samples = append(samples, s)
			if s.errs == 0 && !resp.Served {
				// Displaced: ask for the ADPaR alternative, the paper's
				// Section-4 path. 404/409 are tolerated here — they just
				// mean the plan moved between the two calls.
				samples = append(samples, timed("alternative", 0, true, func() error {
					_, err := c.Alternative(ctx, tenant, ev.Request.ID)
					return err
				}))
			}
		case synth.RevokeArrival:
			samples = append(samples, timed("revoke", 1, false, func() error {
				_, err := c.Revoke(ctx, tenant, ev.RevokeID)
				return err
			}))
		case synth.DriftArrival:
			samples = append(samples, timed("drift", 1, false, func() error {
				_, err := c.SetAvailability(ctx, tenant, ev.Availability)
				return err
			}))
		}
		if planEvery > 0 && (i+1)%planEvery == 0 {
			samples = append(samples, timed("plan", 0, false, func() error {
				_, err := c.PlanSummary(ctx, tenant)
				return err
			}))
		}
	}
	return samples
}

// replayBatched drives one worker's sequence through the batched ingest
// endpoint: mutations accumulate into ordered /ops bodies of up to
// batchSize ops (pacing sleeps still honor each event's arrival time
// before it joins a batch), flushed when full and at the end. A
// processed batch contributes one latency sample; ops whose in-batch
// result is non-2xx count as errors.
func replayBatched(c *client.Client, tenant string, wl []synth.WorkloadEvent, batchSize, planEvery int, start time.Time) []sample {
	ctx := context.Background()
	samples := make([]sample, 0, len(wl)/batchSize+2)
	var b client.Batch
	done, nextPlan := 0, planEvery
	flush := func() {
		n := b.Len()
		if n == 0 {
			return
		}
		var resp client.BatchResponse
		s := timed("batch", n, false, func() (err error) {
			resp, err = c.Send(ctx, tenant, &b)
			return err
		})
		if s.errs == 0 {
			for _, r := range resp.Results {
				if r.Status >= 300 {
					s.errs++
				}
			}
		}
		samples = append(samples, s)
		b.Reset()
		for planEvery > 0 && done >= nextPlan {
			samples = append(samples, timed("plan", 0, false, func() error {
				_, err := c.PlanSummary(ctx, tenant)
				return err
			}))
			nextPlan += planEvery
		}
	}
	for _, ev := range wl {
		if ev.At > 0 {
			//lint:allow clockdiscipline -- arrival pacing sleeps against the real clock
			if d := time.Until(start.Add(ev.At)); d > 0 {
				time.Sleep(d)
			}
		}
		switch ev.Kind {
		case synth.SubmitArrival:
			b.Submit(ev.Request.ID, ev.Request.Quality, ev.Request.Cost, ev.Request.Latency, ev.Request.K)
		case synth.RevokeArrival:
			b.Revoke(ev.RevokeID)
		case synth.DriftArrival:
			b.SetAvailability(ev.Availability)
		default:
			continue
		}
		done++
		if b.Len() >= batchSize {
			flush()
		}
	}
	flush()
	return samples
}

// statsOf computes percentile stats over a latency set.
func statsOf(ds []time.Duration, errs int) OpStats {
	st := OpStats{Count: len(ds), Errors: errs}
	if len(ds) == 0 {
		return st
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pct := func(q float64) time.Duration {
		return ds[int(q*float64(len(ds)-1)+0.5)]
	}
	st.P50 = pct(0.50)
	st.P90 = pct(0.90)
	st.P99 = pct(0.99)
	st.Max = ds[len(ds)-1]
	return st
}
