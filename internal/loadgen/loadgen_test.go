package loadgen

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"stratrec/internal/batch"
	"stratrec/internal/server"
	"stratrec/internal/synth"
	"stratrec/internal/workforce"
)

// synthTenant builds a synthetic tenant catalog for harness tests.
func synthTenant(seed int64, n int, w float64) server.TenantConfig {
	gen := synth.DefaultConfig(synth.Uniform)
	rng := rand.New(rand.NewSource(seed))
	set := gen.Strategies(rng, n)
	return server.TenantConfig{
		Set: set, Models: gen.Models(rng, set),
		Mode: workforce.MaxCase, Objective: batch.Throughput,
		InitialW: w,
	}
}

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// TestLoadHarnessThousandRequests is the acceptance run: a ≥1k-event
// synthetic Poisson workload (submits, revokes, availability drift, tight
// ADPaR-bound requests) replayed against a live two-tenant server, with
// throughput and latency percentiles in the report.
func TestLoadHarnessThousandRequests(t *testing.T) {
	_, hs := newTestServer(t, server.Config{Tenants: map[string]server.TenantConfig{
		"alpha": synthTenant(10, 16, 0.7),
		"beta":  synthTenant(11, 16, 0.7),
	}})

	rep, err := Run(Config{
		BaseURL:        hs.URL,
		Tenants:        []string{"alpha", "beta"},
		Workers:        4,
		Events:         1000,
		Rate:           0, // closed loop: as fast as the server allows
		RevokeFraction: 0.3,
		DriftFraction:  0.05,
		TightFraction:  0.3,
		PlanEvery:      10,
		K:              3,
		Seed:           42,
		Client:         hs.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// ≥1000 workload events, plus interleaved plan reads and alternative
	// queries on displaced submissions.
	if rep.Events < 1000 {
		t.Fatalf("replayed %d events, want >= 1000", rep.Events)
	}
	if rep.Ops != 1000 {
		t.Errorf("carried %d ops, want 1000", rep.Ops)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors during replay\n%s", rep.Errors, rep)
	}
	if rep.Throughput <= 0 || rep.OpsPerSec <= 0 {
		t.Errorf("throughput = %v req/s, %v ops/s", rep.Throughput, rep.OpsPerSec)
	}
	if rep.Overall.P50 <= 0 || rep.Overall.P99 < rep.Overall.P50 || rep.Overall.Max < rep.Overall.P99 {
		t.Errorf("percentiles inconsistent: %+v", rep.Overall)
	}
	for _, op := range []string{"submit", "revoke", "plan"} {
		if rep.PerOp[op].Count == 0 {
			t.Errorf("no %s operations in the mix\n%s", op, rep)
		}
	}
	if rep.PerOp["alternative"].Count == 0 {
		t.Errorf("tight fraction 0.3 produced no alternative queries\n%s", rep)
	}
	out := rep.String()
	for _, want := range []string{"req/s", "ops/s", "p50", "p99", "submit"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestLoadHarnessBatched: the same workload shape driven through the
// batched ingest endpoint — one HTTP request per BatchSize mutations,
// every op accounted, no errors (same-batch revokes land after their
// submits because batches preserve order).
func TestLoadHarnessBatched(t *testing.T) {
	_, hs := newTestServer(t, server.Config{Tenants: map[string]server.TenantConfig{
		"alpha": synthTenant(10, 16, 0.7),
		"beta":  synthTenant(11, 16, 0.7),
	}})

	rep, err := Run(Config{
		BaseURL:        hs.URL,
		Tenants:        []string{"alpha", "beta"},
		Workers:        4,
		Events:         600,
		RevokeFraction: 0.3,
		DriftFraction:  0.05,
		TightFraction:  0.3,
		PlanEvery:      50,
		K:              3,
		Seed:           42,
		BatchSize:      32,
		Client:         hs.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 600 {
		t.Fatalf("carried %d ops, want 600\n%s", rep.Ops, rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors during batched replay\n%s", rep.Errors, rep)
	}
	// Batching is the point: far fewer HTTP requests than ops.
	if rep.Events >= rep.Ops/2 {
		t.Errorf("%d HTTP requests for %d ops — batching did not amortize", rep.Events, rep.Ops)
	}
	if rep.PerOp["batch"].Count == 0 || rep.PerOp["plan"].Count == 0 {
		t.Errorf("op mix: %+v", rep.PerOp)
	}
	if rep.PerOp["alternative"].Count != 0 {
		t.Errorf("batched mode issued alternative queries: %+v", rep.PerOp)
	}
	if rep.OpsPerSec <= 0 {
		t.Errorf("ops/s = %v", rep.OpsPerSec)
	}
}

// TestLoadHarnessPacedReplay: a non-zero rate paces arrivals without
// losing events.
func TestLoadHarnessPacedReplay(t *testing.T) {
	_, hs := newTestServer(t, server.Config{Tenants: map[string]server.TenantConfig{
		"alpha": synthTenant(3, 8, 0.8),
	}})
	rep, err := Run(Config{
		BaseURL: hs.URL,
		Tenants: []string{"alpha"},
		Workers: 2,
		Events:  60,
		Rate:    2000, // fast pacing, but nonzero offsets
		Seed:    7,
		Client:  hs.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events < 60 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Duration <= 0 {
		t.Errorf("duration = %v", rep.Duration)
	}
}

func TestLoadHarnessValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	if _, err := Run(Config{BaseURL: "http://localhost:1"}); err == nil {
		t.Error("missing tenants accepted")
	}
}

// TestLoadHarnessSurvivesServerErrors: pointing a worker at a tenant the
// server does not host must produce error counts, not a hang — in both
// modes.
func TestLoadHarnessSurvivesServerErrors(t *testing.T) {
	_, hs := newTestServer(t, server.Config{Tenants: map[string]server.TenantConfig{
		"alpha": synthTenant(5, 4, 0.8),
	}})
	for _, batchSize := range []int{0, 8} {
		rep, err := Run(Config{
			BaseURL:   hs.URL,
			Tenants:   []string{"ghost"},
			Workers:   1,
			Events:    20,
			Seed:      1,
			BatchSize: batchSize,
			Client:    hs.Client(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors == 0 {
			t.Errorf("batchSize %d: unknown tenant produced no errors: %+v", batchSize, rep)
		}
	}
}
