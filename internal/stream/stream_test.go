package stream

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stratrec/internal/adpar"
	"stratrec/internal/batch"
	"stratrec/internal/linmodel"
	"stratrec/internal/strategy"
	"stratrec/internal/synth"
	"stratrec/internal/workforce"
)

// fixedModels yields a requirement equal to (quality threshold - 0.2) /
// 0.8 for every strategy, making plan arithmetic predictable.
func fixedModels(n int) workforce.PerStrategyModels {
	models := make(workforce.PerStrategyModels, n)
	for i := range models {
		models[i] = linmodel.ParamModels{
			Quality: linmodel.Model{Alpha: 0.8, Beta: 0.2},
			Cost:    linmodel.Model{Alpha: 0, Beta: 0.1},
			Latency: linmodel.Model{Alpha: 0, Beta: 0.1},
		}
	}
	return models
}

func fixedSet(n int) strategy.Set {
	set := make(strategy.Set, n)
	for i := range set {
		set[i] = strategy.Strategy{ID: i, Params: strategy.Params{Quality: 1, Cost: 0.1, Latency: 0.1}}
	}
	return set
}

func request(id string, quality float64, k int) strategy.Request {
	return strategy.Request{
		ID:     id,
		Params: strategy.Params{Quality: quality, Cost: 0.5, Latency: 0.5},
		K:      k,
	}
}

func newManager(t *testing.T, W float64) *Manager {
	t.Helper()
	m, err := NewManager(fixedSet(5), fixedModels(5), workforce.MaxCase, batch.Throughput, W)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(strategy.Set{}, fixedModels(1), workforce.MaxCase, batch.Throughput, 0.5); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewManager(fixedSet(2), nil, workforce.MaxCase, batch.Throughput, 0.5); err == nil {
		t.Error("nil models accepted")
	}
	if _, err := NewManager(fixedSet(2), fixedModels(2), workforce.MaxCase, batch.Throughput, 1.5); err == nil {
		t.Error("bad availability accepted")
	}
}

func TestSubmitAndServe(t *testing.T) {
	m := newManager(t, 0.5)
	// Quality 0.52 -> requirement (0.52-0.2)/0.8 = 0.4 <= 0.5: served.
	served, err := m.Submit(request("a", 0.52, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !served {
		t.Fatal("affordable request not served")
	}
	plan := m.Plan()
	if len(plan.Serving) != 1 || plan.Serving[0] != "a" {
		t.Errorf("plan = %+v", plan)
	}
	if math.Abs(plan.Workforce-0.4) > 1e-12 {
		t.Errorf("workforce = %v", plan.Workforce)
	}
	if got := m.Strategies("a"); len(got) != 2 {
		t.Errorf("strategies = %v", got)
	}
	if got := m.Strategies("missing"); got != nil {
		t.Errorf("strategies of unknown = %v", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t, 0.5)
	if _, err := m.Submit(strategy.Request{Params: strategy.Params{Quality: 0.5, Cost: 0.5, Latency: 0.5}, K: 1}); err == nil {
		t.Error("missing ID accepted")
	}
	if _, err := m.Submit(request("a", 2.0, 1)); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := m.Submit(request("a", 0.5, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(request("a", 0.5, 1)); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate error = %v", err)
	}
}

// TestResubmitAfterRevoke: a revoked ID is forgotten, so resubmitting it
// is a fresh admission, not ErrDuplicateID — the documented Submit
// contract.
func TestResubmitAfterRevoke(t *testing.T) {
	m := newManager(t, 0.5)
	if _, err := m.Submit(request("a", 0.52, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(request("a", 0.52, 1)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("open duplicate error = %v", err)
	}
	if err := m.Revoke("a"); err != nil {
		t.Fatal(err)
	}
	// Resubmission with different parameters succeeds and uses the new
	// requirement, proving no stale state survived the revocation.
	served, err := m.Submit(request("a", 0.36, 1)) // req (0.36-0.2)/0.8 = 0.2
	if err != nil {
		t.Fatalf("resubmit after revoke = %v", err)
	}
	if !served {
		t.Fatal("resubmitted request not served")
	}
	if w := m.Plan().Workforce; math.Abs(w-0.2) > 1e-12 {
		t.Errorf("resubmitted workforce = %v, want 0.2 (fresh requirement)", w)
	}
	if m.Open() != 1 {
		t.Errorf("open = %d", m.Open())
	}
}

// TestSubmitErrorPaths: every Submit error is a stable sentinel (or a
// validation error) and leaves the manager untouched.
func TestSubmitErrorPaths(t *testing.T) {
	m := newManager(t, 0.5)
	if _, err := m.Submit(request("keep", 0.52, 1)); err != nil {
		t.Fatal(err)
	}
	epoch := m.Epoch()
	cases := []struct {
		name string
		req  strategy.Request
		want error // nil means "any non-nil error"
	}{
		{"empty id", request("", 0.5, 1), ErrEmptyID},
		{"duplicate id", request("keep", 0.5, 1), ErrDuplicateID},
		{"bad quality", request("x", 2.0, 1), strategy.ErrBadParam},
		{"bad k", request("x", 0.5, 0), strategy.ErrBadCardinality},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := m.Submit(tc.req)
			if err == nil {
				t.Fatal("error expected")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("error = %v, want %v", err, tc.want)
			}
			if m.Open() != 1 || m.Epoch() != epoch {
				t.Errorf("failed submit mutated manager: open=%d epoch=%d", m.Open(), m.Epoch())
			}
		})
	}
}

// TestRevokeEdgeCases drives Revoke through its edge cases table-style.
func TestRevokeEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		setup  []string // IDs submitted beforehand
		revoke string
		want   error
	}{
		{"empty manager", nil, "a", ErrUnknownID},
		{"unknown id", []string{"a"}, "b", ErrUnknownID},
		{"empty id", []string{"a"}, "", ErrUnknownID},
		{"known id", []string{"a", "b"}, "a", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newManager(t, 0.5)
			for _, id := range tc.setup {
				if _, err := m.Submit(request(id, 0.52, 1)); err != nil {
					t.Fatal(err)
				}
			}
			err := m.Revoke(tc.revoke)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("revoke = %v", err)
				}
				if err := m.Revoke(tc.revoke); !errors.Is(err, ErrUnknownID) {
					t.Errorf("double revoke error = %v", err)
				}
				if m.Open() != len(tc.setup)-1 {
					t.Errorf("open = %d", m.Open())
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error = %v, want %v", err, tc.want)
			}
			if m.Open() != len(tc.setup) {
				t.Errorf("failed revoke mutated pool: open = %d", m.Open())
			}
		})
	}
}

// TestSetAvailabilityEdgeCases drives SetAvailability through boundary and
// invalid values.
func TestSetAvailabilityEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		w    float64
		ok   bool
	}{
		{"zero", 0, true},
		{"one", 1, true},
		{"interior", 0.37, true},
		{"negative", -0.01, false},
		{"above one", 1.01, false},
		{"NaN", math.NaN(), false},
		{"+Inf", math.Inf(1), false},
		{"-Inf", math.Inf(-1), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newManager(t, 0.5)
			err := m.SetAvailability(tc.w)
			if tc.ok {
				if err != nil {
					t.Fatalf("SetAvailability(%v) = %v", tc.w, err)
				}
				if m.Availability() != tc.w {
					t.Errorf("availability = %v", m.Availability())
				}
				return
			}
			if !errors.Is(err, ErrBadAvailability) {
				t.Errorf("error = %v, want ErrBadAvailability", err)
			}
			if m.Availability() != 0.5 {
				t.Errorf("failed update moved availability to %v", m.Availability())
			}
		})
	}
	// The constructor applies the same predicate.
	if _, err := NewManager(fixedSet(2), fixedModels(2), workforce.MaxCase, batch.Throughput, math.NaN()); !errors.Is(err, ErrBadAvailability) {
		t.Errorf("NewManager(NaN) error = %v", err)
	}
}

// TestSnapshotIsImmutableCopy: a snapshot reflects the state at capture
// time and survives later mutations untouched.
func TestSnapshotIsImmutableCopy(t *testing.T) {
	m := newManager(t, 0.5)
	if _, err := m.Submit(request("a", 0.52, 2)); err != nil { // req 0.4: served
		t.Fatal(err)
	}
	if _, err := m.Submit(request("c", 0.60, 1)); err != nil { // req 0.5: displaced
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Epoch != m.Epoch() || snap.Availability != 0.5 {
		t.Errorf("snapshot header = %+v", snap)
	}
	if len(snap.Requests) != 2 || snap.Requests[0].ID != "a" || snap.Requests[1].ID != "c" {
		t.Fatalf("snapshot requests = %+v", snap.Requests)
	}
	a, ok := snap.Request("a")
	if !ok || !a.Serving || !a.Feasible || len(a.Strategies) != 2 {
		t.Errorf("request a = %+v ok=%v", a, ok)
	}
	c, ok := snap.Request("c")
	if !ok || c.Serving {
		t.Errorf("request c = %+v ok=%v", c, ok)
	}
	if _, ok := snap.Request("nope"); ok {
		t.Error("unknown id found in snapshot")
	}
	if len(snap.Plan.Serving) != 1 || snap.Plan.Serving[0] != "a" {
		t.Errorf("snapshot plan = %+v", snap.Plan)
	}

	// Mutate the manager; the old snapshot must not move.
	if err := m.Revoke("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Request("a"); !ok {
		t.Error("snapshot lost a revoked request")
	}
	if len(snap.Plan.Serving) != 1 {
		t.Errorf("snapshot plan mutated: %+v", snap.Plan)
	}
	if snap2 := m.Snapshot(); len(snap2.Requests) != 1 || snap2.Requests[0].ID != "c" {
		t.Errorf("fresh snapshot = %+v", snap2.Requests)
	}
	var nilSnap *Snapshot
	if _, ok := nilSnap.Request("a"); ok {
		t.Error("nil snapshot answered a lookup")
	}
}

// TestAttachIndex: an externally compiled index is shared verbatim, and a
// mismatched one is rejected.
func TestAttachIndex(t *testing.T) {
	m := newManager(t, 0.5)
	ix, err := adpar.NewIndex(fixedSet(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AttachIndex(ix); err != nil {
		t.Fatal(err)
	}
	got, err := m.Index()
	if err != nil {
		t.Fatal(err)
	}
	if got != ix {
		t.Error("Index() did not return the attached index")
	}
	if err := m.AttachIndex(nil); err == nil {
		t.Error("nil index accepted")
	}
	wrong, err := adpar.NewIndex(fixedSet(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AttachIndex(wrong); err == nil {
		t.Error("size-mismatched index accepted")
	}
	// Lazy compilation still works on a fresh manager, and the compiled
	// index is retained.
	m2 := newManager(t, 0.5)
	ix1, err := m2.Index()
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := m2.Index()
	if err != nil {
		t.Fatal(err)
	}
	if ix1 != ix2 {
		t.Error("Index() recompiled on second call")
	}
}

func TestDisplacementAndRevocation(t *testing.T) {
	m := newManager(t, 0.5)
	// Two cheap requests (0.25 each) fill W = 0.5 exactly.
	if _, err := m.Submit(request("a", 0.40, 1)); err != nil { // req 0.25
		t.Fatal(err)
	}
	if _, err := m.Submit(request("b", 0.40, 1)); err != nil { // req 0.25
		t.Fatal(err)
	}
	served, err := m.Submit(request("c", 0.60, 1)) // req 0.5, cannot fit
	if err != nil {
		t.Fatal(err)
	}
	if served {
		t.Fatal("oversubscribed request served")
	}
	plan := m.Plan()
	if len(plan.Serving) != 2 || len(plan.Displaced) != 1 || plan.Displaced[0] != "c" {
		t.Fatalf("plan = %+v", plan)
	}

	// Revoking both cheap requests frees room for c.
	if err := m.Revoke("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke("b"); err != nil {
		t.Fatal(err)
	}
	plan = m.Plan()
	if len(plan.Serving) != 1 || plan.Serving[0] != "c" {
		t.Fatalf("after revocations plan = %+v", plan)
	}
	if err := m.Revoke("a"); !errors.Is(err, ErrUnknownID) {
		t.Errorf("double revoke error = %v", err)
	}
	if m.Open() != 1 {
		t.Errorf("open = %d", m.Open())
	}
}

func TestAvailabilityDrift(t *testing.T) {
	m := newManager(t, 0.5)
	if _, err := m.Submit(request("a", 0.52, 1)); err != nil { // req 0.4
		t.Fatal(err)
	}
	plan := m.Plan()
	if len(plan.Serving) != 1 {
		t.Fatal("not served at W=0.5")
	}
	// Availability collapses below the requirement: plan drops the request.
	if err := m.SetAvailability(0.3); err != nil {
		t.Fatal(err)
	}
	if plan = m.Plan(); len(plan.Serving) != 0 || len(plan.Displaced) != 1 {
		t.Fatalf("after drought plan = %+v", plan)
	}
	// Recovery restores it.
	if err := m.SetAvailability(0.9); err != nil {
		t.Fatal(err)
	}
	if plan = m.Plan(); len(plan.Serving) != 1 {
		t.Fatalf("after recovery plan = %+v", plan)
	}
	if err := m.SetAvailability(-0.1); err == nil {
		t.Error("negative availability accepted")
	}
}

// TestEpochAdvancesOnEveryMutation pins the pool-generation semantics of
// the epoch: every applied mutation advances it by exactly one — submits
// that land displaced and revokes that flip no serving flag included — so
// epoch pollers and If-None-Match-style clients never miss a pool change.
// (The old behavior, bumping only when a Serving flag flipped, silently
// swallowed exactly those mutations.)
func TestEpochAdvancesOnEveryMutation(t *testing.T) {
	m := newManager(t, 0.5)
	if _, err := m.Submit(request("a", 0.52, 1)); err != nil { // req 0.4: served
		t.Fatal(err)
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch after first submit = %d, want 1", m.Epoch())
	}
	// This submit lands displaced (0.4+0.4 > 0.5): no serving flag flips,
	// but the pool changed, so the epoch must advance.
	served, err := m.Submit(request("b", 0.52, 1))
	if err != nil {
		t.Fatal(err)
	}
	if served {
		t.Fatal("oversubscribed request served")
	}
	if m.Epoch() != 2 {
		t.Fatalf("epoch after displaced submit = %d, want 2", m.Epoch())
	}
	// Revoking the displaced request flips no serving flag either; still a
	// pool mutation, still an epoch step.
	if err := m.Revoke("b"); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 3 {
		t.Fatalf("epoch after no-flip revoke = %d, want 3", m.Epoch())
	}
	// A plan-preserving availability change is an applied mutation too.
	if err := m.SetAvailability(0.55); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 4 {
		t.Fatalf("epoch after availability move = %d, want 4", m.Epoch())
	}
	// Rejected mutations leave the epoch untouched.
	if err := m.SetAvailability(1.5); err == nil {
		t.Fatal("bad availability accepted")
	}
	if err := m.Revoke("nope"); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("revoke unknown = %v", err)
	}
	if _, err := m.Submit(request("a", 0.5, 1)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate submit = %v", err)
	}
	if m.Epoch() != 4 {
		t.Fatalf("epoch after rejected mutations = %d, want 4", m.Epoch())
	}
}

func TestInfeasibleRequestNeverServed(t *testing.T) {
	m := newManager(t, 1.0)
	// k = 6 exceeds the 5-strategy catalog: infeasible forever.
	served, err := m.Submit(request("big", 0.5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if served {
		t.Fatal("infeasible request served")
	}
	plan := m.Plan()
	if len(plan.Displaced) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
}

// TestAlternativeSharedIndex: displaced requests get ADPaR alternatives
// from the manager's shared index, identical to a from-scratch Exact run on
// the same strategy set; served and unknown requests are rejected.
func TestAlternativeSharedIndex(t *testing.T) {
	m := newManager(t, 0.5)
	if _, err := m.Submit(request("a", 0.40, 1)); err != nil { // req 0.25, served
		t.Fatal(err)
	}
	if _, err := m.Submit(request("b", 0.40, 1)); err != nil { // req 0.25, served
		t.Fatal(err)
	}
	displaced := request("c", 0.60, 2) // req 0.5, cannot fit
	if _, err := m.Submit(displaced); err != nil {
		t.Fatal(err)
	}

	sol, err := m.Alternative("c")
	if err != nil {
		t.Fatal(err)
	}
	want, err := adpar.Exact(fixedSet(5), displaced)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Alternative != want.Alternative || sol.Distance != want.Distance {
		t.Errorf("shared-index alternative = %+v (distance %v), want %+v (distance %v)",
			sol.Alternative, sol.Distance, want.Alternative, want.Distance)
	}
	if len(sol.Covered) < displaced.K {
		t.Errorf("alternative covers %d < k=%d strategies", len(sol.Covered), displaced.K)
	}

	if _, err := m.Alternative("a"); !errors.Is(err, ErrServed) {
		t.Errorf("served request error = %v", err)
	}
	if _, err := m.Alternative("nope"); !errors.Is(err, ErrUnknownID) {
		t.Errorf("unknown request error = %v", err)
	}

	// The index survives plan churn: after revocations free capacity the
	// previously displaced request is served and loses its alternative,
	// while a new displaced request still gets one.
	if err := m.Revoke("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alternative("c"); !errors.Is(err, ErrServed) {
		t.Errorf("after revocations error = %v", err)
	}
}

// TestPropertyMatchesStaticBatchStrat: after any event sequence, the
// dynamic plan's objective equals a fresh static BatchStrat run over the
// open requests — the manager loses nothing to history.
func TestPropertyMatchesStaticBatchStrat(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	gen := synth.DefaultConfig(synth.Uniform)
	f := func() bool {
		set := gen.Strategies(rng, 40)
		models := gen.Models(rng, set)
		W := rng.Float64()
		m, err := NewManager(set, models, workforce.MaxCase, batch.Throughput, W)
		if err != nil {
			return false
		}
		var open []strategy.Request
		nextID := 0
		for step := 0; step < 30; step++ {
			switch {
			case len(open) > 0 && rng.Float64() < 0.3:
				victim := rng.Intn(len(open))
				if err := m.Revoke(open[victim].ID); err != nil {
					return false
				}
				open = append(open[:victim], open[victim+1:]...)
			case rng.Float64() < 0.15:
				W = rng.Float64()
				if err := m.SetAvailability(W); err != nil {
					return false
				}
			default:
				d := gen.Requests(rng, 1, 1+rng.Intn(4))[0]
				d.ID = mkID("r", nextID)
				nextID++
				if _, err := m.Submit(d); err != nil {
					return false
				}
				open = append(open, d)
			}
		}
		// Static reference over the open pool.
		reqs := make([]workforce.Requirement, len(open))
		for i, d := range open {
			reqs[i] = workforce.RequirementFor(d, uint64(i), set, models, workforce.MaxCase)
		}
		items := batch.BuildItems(open, reqs, batch.Throughput)
		want := batch.BatchStrat(items, W).Objective
		got := m.Plan().Objective
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func mkID(prefix string, n int) string {
	digits := "0123456789"
	if n == 0 {
		return prefix + "0"
	}
	out := ""
	for n > 0 {
		out = string(digits[n%10]) + out
		n /= 10
	}
	return prefix + out
}

// TestBeginCommitBatchEquivalence: a Begin/Commit batch of events lands
// on exactly the state that applying them one-by-one produces — same
// serving flags, same epoch, same plan sums — while deferring the replan.
func TestBeginCommitBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := synth.DefaultConfig(synth.Uniform)
	set := gen.Strategies(rng, 24)
	models := gen.Models(rng, set)
	reqs := gen.Requests(rng, 120, 2)
	for i := range reqs {
		reqs[i].ID = mkID("d", i)
	}

	seqMgr, err := NewManager(set, models, workforce.MaxCase, batch.Throughput, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	batMgr, err := NewManager(set, models, workforce.MaxCase, batch.Throughput, 0.6)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-generate one deterministic event list (self-consistent revokes)
	// so both managers replay the identical stream.
	type event struct {
		kind int // 0 submit, 1 revoke, 2 drift
		id   string
		req  strategy.Request
		w    float64
	}
	var events []event
	var open []string
	for i := 0; i < 120; i++ {
		switch {
		case len(open) > 5 && i%7 == 3:
			j := rng.Intn(len(open))
			events = append(events, event{kind: 1, id: open[j]})
			open = append(open[:j], open[j+1:]...)
		case i%13 == 5:
			events = append(events, event{kind: 2, w: 0.3 + 0.005*float64(i%60)})
		default:
			events = append(events, event{kind: 0, req: reqs[i]})
			open = append(open, reqs[i].ID)
		}
	}
	apply := func(m *Manager, from, to int) {
		t.Helper()
		for _, ev := range events[from:to] {
			switch ev.kind {
			case 0:
				if _, err := m.Submit(ev.req); err != nil {
					t.Fatal(err)
				}
			case 1:
				if err := m.Revoke(ev.id); err != nil {
					t.Fatal(err)
				}
			case 2:
				if err := m.SetAvailability(ev.w); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Sequential: every event replans. Batched: chunks of 15 events per
	// Begin/Commit window.
	apply(seqMgr, 0, 120)
	for from := 0; from < 120; from += 15 {
		batMgr.Begin()
		apply(batMgr, from, from+15)
		batMgr.Commit()
	}

	if seqMgr.Epoch() != batMgr.Epoch() {
		t.Fatalf("epoch diverged: sequential %d, batched %d", seqMgr.Epoch(), batMgr.Epoch())
	}
	want, got := seqMgr.Snapshot(), batMgr.Snapshot()
	if len(want.Requests) != len(got.Requests) {
		t.Fatalf("open diverged: %d vs %d", len(want.Requests), len(got.Requests))
	}
	for i, w := range want.Requests {
		g := got.Requests[i]
		if w.ID != g.ID || w.Serving != g.Serving || w.Seq != g.Seq || w.Workforce != g.Workforce {
			t.Fatalf("request %d diverged:\nseq %+v\nbat %+v", i, w, g)
		}
	}
	if want.Plan.Objective != got.Plan.Objective || want.Plan.Workforce != got.Plan.Workforce {
		t.Fatalf("plan sums diverged: (%v,%v) vs (%v,%v)",
			want.Plan.Objective, want.Plan.Workforce, got.Plan.Objective, got.Plan.Workforce)
	}

	// Served answers from the committed plan and distinguishes unknown IDs.
	for _, rs := range got.Requests {
		served, open := batMgr.Served(rs.ID)
		if !open || served != rs.Serving {
			t.Fatalf("Served(%s) = %v,%v, want %v,true", rs.ID, served, open, rs.Serving)
		}
	}
	if _, open := batMgr.Served("nope"); open {
		t.Fatal("Served reported an unknown ID as open")
	}
}

// TestSubmitSeqOverflowGuard: the submission counter narrows into
// batch.Item.Index exactly once, behind an explicit guard — a sequence
// beyond the int range is rejected, not silently aliased.
func TestSubmitSeqOverflowGuard(t *testing.T) {
	m := newManager(t, 0.5)
	if _, err := m.Resubmit(request("big", 0.4, 1), math.MaxUint64); !errors.Is(err, ErrSeqOverflow) {
		t.Fatalf("Resubmit(MaxUint64) = %v, want ErrSeqOverflow", err)
	}
	if m.Open() != 0 || m.Epoch() != 0 {
		t.Fatalf("rejected overflow mutated manager: open=%d epoch=%d", m.Open(), m.Epoch())
	}
	// The largest representable sequence still admits cleanly.
	if _, err := m.Resubmit(request("edge", 0.4, 1), math.MaxInt); err != nil {
		t.Fatalf("Resubmit(MaxInt) = %v", err)
	}
	if seq, ok := m.SubmissionSeq("edge"); !ok || seq != math.MaxInt {
		t.Fatalf("SubmissionSeq(edge) = %d,%v", seq, ok)
	}
}
