package stream

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stratrec/internal/adpar"
	"stratrec/internal/batch"
	"stratrec/internal/linmodel"
	"stratrec/internal/strategy"
	"stratrec/internal/synth"
	"stratrec/internal/workforce"
)

// fixedModels yields a requirement equal to (quality threshold - 0.2) /
// 0.8 for every strategy, making plan arithmetic predictable.
func fixedModels(n int) workforce.PerStrategyModels {
	models := make(workforce.PerStrategyModels, n)
	for i := range models {
		models[i] = linmodel.ParamModels{
			Quality: linmodel.Model{Alpha: 0.8, Beta: 0.2},
			Cost:    linmodel.Model{Alpha: 0, Beta: 0.1},
			Latency: linmodel.Model{Alpha: 0, Beta: 0.1},
		}
	}
	return models
}

func fixedSet(n int) strategy.Set {
	set := make(strategy.Set, n)
	for i := range set {
		set[i] = strategy.Strategy{ID: i, Params: strategy.Params{Quality: 1, Cost: 0.1, Latency: 0.1}}
	}
	return set
}

func request(id string, quality float64, k int) strategy.Request {
	return strategy.Request{
		ID:     id,
		Params: strategy.Params{Quality: quality, Cost: 0.5, Latency: 0.5},
		K:      k,
	}
}

func newManager(t *testing.T, W float64) *Manager {
	t.Helper()
	m, err := NewManager(fixedSet(5), fixedModels(5), workforce.MaxCase, batch.Throughput, W)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(strategy.Set{}, fixedModels(1), workforce.MaxCase, batch.Throughput, 0.5); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewManager(fixedSet(2), nil, workforce.MaxCase, batch.Throughput, 0.5); err == nil {
		t.Error("nil models accepted")
	}
	if _, err := NewManager(fixedSet(2), fixedModels(2), workforce.MaxCase, batch.Throughput, 1.5); err == nil {
		t.Error("bad availability accepted")
	}
}

func TestSubmitAndServe(t *testing.T) {
	m := newManager(t, 0.5)
	// Quality 0.52 -> requirement (0.52-0.2)/0.8 = 0.4 <= 0.5: served.
	served, err := m.Submit(request("a", 0.52, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !served {
		t.Fatal("affordable request not served")
	}
	plan := m.Plan()
	if len(plan.Serving) != 1 || plan.Serving[0] != "a" {
		t.Errorf("plan = %+v", plan)
	}
	if math.Abs(plan.Workforce-0.4) > 1e-12 {
		t.Errorf("workforce = %v", plan.Workforce)
	}
	if got := m.Strategies("a"); len(got) != 2 {
		t.Errorf("strategies = %v", got)
	}
	if got := m.Strategies("missing"); got != nil {
		t.Errorf("strategies of unknown = %v", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t, 0.5)
	if _, err := m.Submit(strategy.Request{Params: strategy.Params{Quality: 0.5, Cost: 0.5, Latency: 0.5}, K: 1}); err == nil {
		t.Error("missing ID accepted")
	}
	if _, err := m.Submit(request("a", 2.0, 1)); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := m.Submit(request("a", 0.5, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(request("a", 0.5, 1)); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate error = %v", err)
	}
}

func TestDisplacementAndRevocation(t *testing.T) {
	m := newManager(t, 0.5)
	// Two cheap requests (0.25 each) fill W = 0.5 exactly.
	if _, err := m.Submit(request("a", 0.40, 1)); err != nil { // req 0.25
		t.Fatal(err)
	}
	if _, err := m.Submit(request("b", 0.40, 1)); err != nil { // req 0.25
		t.Fatal(err)
	}
	served, err := m.Submit(request("c", 0.60, 1)) // req 0.5, cannot fit
	if err != nil {
		t.Fatal(err)
	}
	if served {
		t.Fatal("oversubscribed request served")
	}
	plan := m.Plan()
	if len(plan.Serving) != 2 || len(plan.Displaced) != 1 || plan.Displaced[0] != "c" {
		t.Fatalf("plan = %+v", plan)
	}

	// Revoking both cheap requests frees room for c.
	if err := m.Revoke("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke("b"); err != nil {
		t.Fatal(err)
	}
	plan = m.Plan()
	if len(plan.Serving) != 1 || plan.Serving[0] != "c" {
		t.Fatalf("after revocations plan = %+v", plan)
	}
	if err := m.Revoke("a"); !errors.Is(err, ErrUnknownID) {
		t.Errorf("double revoke error = %v", err)
	}
	if m.Open() != 1 {
		t.Errorf("open = %d", m.Open())
	}
}

func TestAvailabilityDrift(t *testing.T) {
	m := newManager(t, 0.5)
	if _, err := m.Submit(request("a", 0.52, 1)); err != nil { // req 0.4
		t.Fatal(err)
	}
	plan := m.Plan()
	if len(plan.Serving) != 1 {
		t.Fatal("not served at W=0.5")
	}
	// Availability collapses below the requirement: plan drops the request.
	if err := m.SetAvailability(0.3); err != nil {
		t.Fatal(err)
	}
	if plan = m.Plan(); len(plan.Serving) != 0 || len(plan.Displaced) != 1 {
		t.Fatalf("after drought plan = %+v", plan)
	}
	// Recovery restores it.
	if err := m.SetAvailability(0.9); err != nil {
		t.Fatal(err)
	}
	if plan = m.Plan(); len(plan.Serving) != 1 {
		t.Fatalf("after recovery plan = %+v", plan)
	}
	if err := m.SetAvailability(-0.1); err == nil {
		t.Error("negative availability accepted")
	}
}

func TestEpochAdvancesOnChange(t *testing.T) {
	m := newManager(t, 0.5)
	e0 := m.Epoch()
	if _, err := m.Submit(request("a", 0.52, 1)); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() == e0 {
		t.Error("epoch unchanged after serving a request")
	}
	e1 := m.Epoch()
	// A no-op availability change keeps the plan and the epoch.
	if err := m.SetAvailability(0.55); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != e1 {
		t.Error("epoch advanced without a plan change")
	}
}

func TestInfeasibleRequestNeverServed(t *testing.T) {
	m := newManager(t, 1.0)
	// k = 6 exceeds the 5-strategy catalog: infeasible forever.
	served, err := m.Submit(request("big", 0.5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if served {
		t.Fatal("infeasible request served")
	}
	plan := m.Plan()
	if len(plan.Displaced) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
}

// TestAlternativeSharedIndex: displaced requests get ADPaR alternatives
// from the manager's shared index, identical to a from-scratch Exact run on
// the same strategy set; served and unknown requests are rejected.
func TestAlternativeSharedIndex(t *testing.T) {
	m := newManager(t, 0.5)
	if _, err := m.Submit(request("a", 0.40, 1)); err != nil { // req 0.25, served
		t.Fatal(err)
	}
	if _, err := m.Submit(request("b", 0.40, 1)); err != nil { // req 0.25, served
		t.Fatal(err)
	}
	displaced := request("c", 0.60, 2) // req 0.5, cannot fit
	if _, err := m.Submit(displaced); err != nil {
		t.Fatal(err)
	}

	sol, err := m.Alternative("c")
	if err != nil {
		t.Fatal(err)
	}
	want, err := adpar.Exact(fixedSet(5), displaced)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Alternative != want.Alternative || sol.Distance != want.Distance {
		t.Errorf("shared-index alternative = %+v (distance %v), want %+v (distance %v)",
			sol.Alternative, sol.Distance, want.Alternative, want.Distance)
	}
	if len(sol.Covered) < displaced.K {
		t.Errorf("alternative covers %d < k=%d strategies", len(sol.Covered), displaced.K)
	}

	if _, err := m.Alternative("a"); !errors.Is(err, ErrServed) {
		t.Errorf("served request error = %v", err)
	}
	if _, err := m.Alternative("nope"); !errors.Is(err, ErrUnknownID) {
		t.Errorf("unknown request error = %v", err)
	}

	// The index survives plan churn: after revocations free capacity the
	// previously displaced request is served and loses its alternative,
	// while a new displaced request still gets one.
	if err := m.Revoke("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alternative("c"); !errors.Is(err, ErrServed) {
		t.Errorf("after revocations error = %v", err)
	}
}

// TestPropertyMatchesStaticBatchStrat: after any event sequence, the
// dynamic plan's objective equals a fresh static BatchStrat run over the
// open requests — the manager loses nothing to history.
func TestPropertyMatchesStaticBatchStrat(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	gen := synth.DefaultConfig(synth.Uniform)
	f := func() bool {
		set := gen.Strategies(rng, 40)
		models := gen.Models(rng, set)
		W := rng.Float64()
		m, err := NewManager(set, models, workforce.MaxCase, batch.Throughput, W)
		if err != nil {
			return false
		}
		var open []strategy.Request
		nextID := 0
		for step := 0; step < 30; step++ {
			switch {
			case len(open) > 0 && rng.Float64() < 0.3:
				victim := rng.Intn(len(open))
				if err := m.Revoke(open[victim].ID); err != nil {
					return false
				}
				open = append(open[:victim], open[victim+1:]...)
			case rng.Float64() < 0.15:
				W = rng.Float64()
				if err := m.SetAvailability(W); err != nil {
					return false
				}
			default:
				d := gen.Requests(rng, 1, 1+rng.Intn(4))[0]
				d.ID = mkID("r", nextID)
				nextID++
				if _, err := m.Submit(d); err != nil {
					return false
				}
				open = append(open, d)
			}
		}
		// Static reference over the open pool.
		reqs := make([]workforce.Requirement, len(open))
		for i, d := range open {
			reqs[i] = workforce.RequirementFor(d, i, set, models, workforce.MaxCase)
		}
		items := batch.BuildItems(open, reqs, batch.Throughput)
		want := batch.BatchStrat(items, W).Objective
		got := m.Plan().Objective
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func mkID(prefix string, n int) string {
	digits := "0123456789"
	if n == 0 {
		return prefix + "0"
	}
	out := ""
	for n > 0 {
		out = string(digits[n%10]) + out
		n /= 10
	}
	return prefix + out
}
