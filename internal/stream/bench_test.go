package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"stratrec/internal/batch"
	"stratrec/internal/synth"
	"stratrec/internal/workforce"
)

// BenchmarkRevokeStorm measures the revoke path under churn: a large open
// pool drained in random order. Before the ID→position order index this
// was a linear scan + slice splice per revoke (quadratic over the storm);
// with tombstones + amortized compaction each revoke's pool bookkeeping is
// O(1) amortized, leaving the replan itself as the dominant cost.
func BenchmarkRevokeStorm(b *testing.B) {
	for _, n := range []int{500, 2000} {
		b.Run(fmt.Sprintf("pool=%d", n), func(b *testing.B) {
			gen := synth.DefaultConfig(synth.Uniform)
			rng := rand.New(rand.NewSource(7))
			set := gen.Strategies(rng, 32)
			models := gen.Models(rng, set)
			reqs := gen.Requests(rng, n, 3)
			perm := rand.New(rand.NewSource(11)).Perm(n)

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m, err := NewManager(set, models, workforce.MaxCase, batch.Throughput, 0.7)
				if err != nil {
					b.Fatal(err)
				}
				for j := range reqs {
					reqs[j].ID = fmt.Sprintf("d%d", j)
					if _, err := m.Submit(reqs[j]); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for _, j := range perm {
					if err := m.Revoke(fmt.Sprintf("d%d", j)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkRevokeOnly isolates the pool bookkeeping from the replan: the
// manager uses a one-strategy catalog so replanning is trivially cheap and
// the order-index cost dominates.
func BenchmarkRevokeOnly(b *testing.B) {
	const n = 5000
	gen := synth.DefaultConfig(synth.Uniform)
	rng := rand.New(rand.NewSource(7))
	set := gen.Strategies(rng, 1)
	models := gen.Models(rng, set)
	reqs := gen.Requests(rng, n, 1)
	perm := rand.New(rand.NewSource(11)).Perm(n)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := NewManager(set, models, workforce.MaxCase, batch.Throughput, 0.7)
		if err != nil {
			b.Fatal(err)
		}
		for j := range reqs {
			reqs[j].ID = fmt.Sprintf("d%d", j)
			if _, err := m.Submit(reqs[j]); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		for _, j := range perm {
			if err := m.Revoke(fmt.Sprintf("d%d", j)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
