// Package stream implements the fully dynamic deployment setting the
// paper's conclusion poses as an open problem: deployment requests arrive
// one by one, may be revoked, and worker availability drifts over time. A
// Manager maintains a running plan under these events through an
// incremental batch.Planner, so every intermediate plan keeps the static
// guarantees (exact throughput, 1/2-approximate pay-off) over the
// currently open requests while each event costs a plan repair, not a
// from-scratch BatchStrat run. The expensive part, the workforce
// requirement of a request, is computed once at admission and cached.
//
// The epoch counter is a pool-generation counter: it advances on every
// applied mutation (submit, revoke, availability change), whether or not
// the serving set moved, so pollers and If-None-Match-style clients never
// miss a pool change. Callers that queue events can wrap them in
// Begin/Commit so the planner repairs once per batch instead of per
// event.
package stream

import (
	"errors"
	"fmt"
	"math"

	"stratrec/internal/adpar"
	"stratrec/internal/batch"
	"stratrec/internal/strategy"
	"stratrec/internal/workforce"
)

// Event is a plan-affecting occurrence.
type Event int

const (
	// Submitted: a new request entered the pool.
	Submitted Event = iota
	// Revoked: a requester withdrew an open request.
	Revoked
	// AvailabilityChanged: the expected workforce W moved.
	AvailabilityChanged
)

func (e Event) String() string {
	switch e {
	case Submitted:
		return "submitted"
	case Revoked:
		return "revoked"
	case AvailabilityChanged:
		return "availability-changed"
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// Entry is one open request with its cached workforce requirement.
type Entry struct {
	ID      string
	Request strategy.Request
	Req     workforce.Requirement
	// Seq is the manager's monotonic submission counter value assigned at
	// admission — the reqIdx handed to the workforce.ModelProvider. It is
	// unique across the manager's lifetime (never reused after a
	// revocation, unlike a pool position) and preserved across crash
	// recovery, so a provider with per-request rows never aliases two
	// distinct live requests.
	Seq uint64
	// Serving reports whether the current plan serves this request.
	Serving bool
}

// Manager maintains a deployment plan over a changing request pool. It
// compiles the ADPaR serving index for its strategy set once at
// construction and reuses it for every displaced-request alternative,
// instead of re-deriving the normalized problem per event.
type Manager struct {
	strategies strategy.Set
	models     workforce.ModelProvider
	mode       workforce.Mode
	objective  batch.Objective
	adparIdx   *adpar.Index

	w       float64
	entries map[string]*Entry
	// order is the admission order, for deterministic iteration. Revoked
	// slots become "" tombstones (compacted once they dominate) so a
	// revoke never splices the slice; pos maps an open ID to its slot.
	order   []string
	pos     map[string]int
	dead    int    // tombstone count in order
	nextSeq uint64 // monotonic submission counter (Entry.Seq source)
	epoch   uint64

	// planner maintains the density-ordered feasible pool and repairs the
	// greedy plan incrementally; items are keyed by the entry's submission
	// sequence number (unique for the manager's lifetime, so ties in the
	// density order break deterministically by admission). bySeq maps a
	// planner item index back to its entry for serving-flag sync.
	planner *batch.Planner
	bySeq   map[int]*Entry
	// batching defers the serving-flag sync (and the planner repair
	// behind it) between Begin and Commit, so a drained batch of n events
	// costs one repair.
	batching bool
}

// ErrEmptyID rejects a submission without a request ID.
var ErrEmptyID = errors.New("stream: request needs an ID")

// ErrDuplicateID rejects a submission reusing an *open* request's ID. A
// revoked ID is forgotten entirely, so resubmitting it is not an error: the
// resubmission is admitted as a brand-new request (fresh requirement, fresh
// admission position).
var ErrDuplicateID = errors.New("stream: duplicate request ID")

// ErrUnknownID rejects revocation of a request that is not open.
var ErrUnknownID = errors.New("stream: unknown request ID")

// ErrBadAvailability rejects an expected workforce outside [0,1] (NaN
// included).
var ErrBadAvailability = errors.New("stream: availability outside [0,1]")

// ErrSeqOverflow rejects a submission whose sequence number no longer fits
// the planner's int item index. The workforce.ModelProvider contract is
// full-width uint64, so requirements never alias; this guard covers the
// one remaining narrowing (batch.Item.Index) explicitly instead of
// silently wrapping — reachable only on 32-bit platforms after 2^31
// lifetime submissions, or via a Resubmit of a corrupt recovered sequence.
var ErrSeqOverflow = errors.New("stream: submission sequence exceeds the planner index range")

// NewManager builds a dynamic deployment manager. The shared ADPaR index
// is compiled lazily on the first Alternative call, so managers that never
// serve alternatives pay nothing for it.
func NewManager(set strategy.Set, models workforce.ModelProvider, mode workforce.Mode, objective batch.Objective, initialW float64) (*Manager, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if models == nil {
		return nil, errors.New("stream: nil model provider")
	}
	if initialW < 0 || initialW > 1 || math.IsNaN(initialW) {
		return nil, fmt.Errorf("%w: %v", ErrBadAvailability, initialW)
	}
	return &Manager{
		strategies: set,
		models:     models,
		mode:       mode,
		objective:  objective,
		w:          initialW,
		entries:    map[string]*Entry{},
		pos:        map[string]int{},
		planner:    batch.NewPlanner(initialW),
		bySeq:      map[int]*Entry{},
	}, nil
}

// Epoch is the pool-generation counter: it increments on every applied
// mutation — submit, revoke, availability change — even when the serving
// set is unchanged, so callers can poll it cheaply and never miss a pool
// mutation. Failed mutations leave it untouched.
func (m *Manager) Epoch() uint64 { return m.epoch }

// SubmissionCounter returns the sequence number the next fresh submission
// will receive. Checkpoints persist it so that recovery restores the
// counter even when the highest-numbered submissions have been revoked.
func (m *Manager) SubmissionCounter() uint64 { return m.nextSeq }

// RestoreCounters force-sets the plan epoch and advances the submission
// counter to at least nextSub. It exists solely for crash recovery: after
// the checkpointed pool has been re-admitted (Resubmit), the recovered
// manager's epoch is aligned with the pre-crash value so that epoch-based
// observables survive a restart; replaying the WAL tail then advances it
// exactly as the original run did.
func (m *Manager) RestoreCounters(epoch, nextSub uint64) {
	m.epoch = epoch
	if nextSub > m.nextSeq {
		m.nextSeq = nextSub
	}
}

// Availability returns the current expected workforce W.
func (m *Manager) Availability() float64 { return m.w }

// Open returns the number of open (non-revoked) requests.
func (m *Manager) Open() int { return len(m.entries) }

// Submit admits a request, computes and caches its workforce requirement,
// and replans. It returns whether the new plan serves the request (inside
// a Begin/Commit batch the replan is deferred, so the return value is the
// pre-batch decision; consult Served after Commit instead).
//
// Error paths are consistent and leave the manager unchanged: an empty ID
// is ErrEmptyID, invalid parameters surface the strategy validation error,
// and an ID currently open is ErrDuplicateID. An ID that was revoked is no
// longer open and may be resubmitted freely; the manager keeps no memory
// of revoked requests.
func (m *Manager) Submit(d strategy.Request) (bool, error) {
	return m.admit(d, m.nextSeq)
}

// Resubmit admits a request under a previously assigned submission
// sequence number. It exists for crash recovery (internal/wal replay):
// re-admitting a request with its original Seq reproduces the original
// workforce requirement bit-for-bit even under a per-request
// ModelProvider. The manager's submission counter advances past seq, so
// later fresh submissions never collide with restored ones.
func (m *Manager) Resubmit(d strategy.Request, seq uint64) (bool, error) {
	return m.admit(d, seq)
}

// admit is the shared submission path: validate, compute and cache the
// requirement under the given submission sequence number, insert into the
// planner and (outside a batch) sync the repaired plan.
func (m *Manager) admit(d strategy.Request, seq uint64) (bool, error) {
	if d.ID == "" {
		return false, ErrEmptyID
	}
	if err := d.Validate(); err != nil {
		return false, err
	}
	if _, exists := m.entries[d.ID]; exists {
		return false, fmt.Errorf("%w: %s", ErrDuplicateID, d.ID)
	}
	if seq > uint64(math.MaxInt) {
		return false, fmt.Errorf("%w: %d", ErrSeqOverflow, seq)
	}
	// The submission counter — not the pool position — is the reqIdx of
	// the ModelProvider contract: pool positions are reused after revokes,
	// which would alias per-request model rows between distinct live
	// requests (and could index out of a FullModels matrix).
	req := workforce.RequirementFor(d, seq, m.strategies, m.models, m.mode)
	entry := &Entry{ID: d.ID, Request: d, Req: req, Seq: seq}
	if req.Feasible() {
		// Infeasible requests can never be served at any availability and
		// stay out of the planner pool entirely.
		if err := m.planner.Insert(batch.Item{
			Index:      int(seq),
			Value:      m.value(entry),
			Workforce:  req.Workforce,
			Strategies: req.Strategies,
		}); err != nil {
			// Only reachable by a Resubmit reusing a live entry's sequence
			// number (a corrupt recovery input); the pool is unchanged.
			return false, err
		}
		m.bySeq[int(seq)] = entry
	}
	m.entries[d.ID] = entry
	m.pos[d.ID] = len(m.order)
	m.order = append(m.order, d.ID)
	if seq >= m.nextSeq {
		m.nextSeq = seq + 1
	}
	m.epoch++
	if !m.batching {
		m.sync()
	}
	return entry.Serving, nil
}

// Revoke withdraws an open request and replans; freed workforce may admit
// previously displaced requests. The pool bookkeeping is O(1) amortized:
// the request's admission slot (found through the ID→position index)
// becomes a tombstone, and the order slice compacts only once tombstones
// outnumber live slots.
func (m *Manager) Revoke(id string) error {
	i, ok := m.pos[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownID, id)
	}
	e := m.entries[id]
	delete(m.entries, id)
	delete(m.pos, id)
	m.order[i] = ""
	m.dead++
	if e.Req.Feasible() {
		m.planner.Remove(int(e.Seq))
		delete(m.bySeq, int(e.Seq))
	}
	if m.dead > 32 && m.dead*2 > len(m.order) {
		m.compact()
	}
	m.epoch++
	if !m.batching {
		m.sync()
	}
	return nil
}

// compact rebuilds the order slice without tombstones, preserving
// admission order, and refreshes the position index.
func (m *Manager) compact() {
	live := m.order[:0]
	for _, id := range m.order {
		if id == "" {
			continue
		}
		m.pos[id] = len(live)
		live = append(live, id)
	}
	m.order = live
	m.dead = 0
}

// SetAvailability moves the expected workforce and replans. Values outside
// [0,1] — NaN included — are rejected with ErrBadAvailability and leave the
// manager unchanged.
func (m *Manager) SetAvailability(w float64) error {
	if w < 0 || w > 1 || math.IsNaN(w) {
		return fmt.Errorf("%w: %v", ErrBadAvailability, w)
	}
	m.w = w
	m.planner.SetBudget(w)
	m.epoch++
	if !m.batching {
		m.sync()
	}
	return nil
}

// Begin enters deferred-replan mode: subsequent Submit/Resubmit/Revoke/
// SetAvailability calls update the pool and advance the epoch but postpone
// the planner repair and serving-flag sync until Commit, so a queued batch
// of n events costs one plan repair instead of n. While a batch is open,
// Submit's served return value and per-entry Serving flags reflect the
// last committed plan; read them after Commit. Begin/Commit do not nest.
func (m *Manager) Begin() { m.batching = true }

// Commit leaves deferred-replan mode, repairs the plan once, and syncs
// every serving flag the batch changed.
func (m *Manager) Commit() {
	m.batching = false
	m.sync()
}

// sync repairs the planner and folds the changed selection statuses back
// into the entries' Serving flags. Only entries whose status actually
// changed are touched.
func (m *Manager) sync() {
	for _, idx := range m.planner.Changed() {
		if e, ok := m.bySeq[idx]; ok {
			e.Serving = m.planner.IsSelected(idx)
		}
	}
}

// Served reports the current plan's decision for an open request:
// served=false, open=false for IDs not in the pool. Inside a Begin/Commit
// batch the answer reflects the last committed plan.
func (m *Manager) Served(id string) (served, open bool) {
	e, ok := m.entries[id]
	if !ok {
		return false, false
	}
	return e.Serving, true
}

// SubmissionSeq returns the submission sequence number of an open request
// (the reqIdx its requirement was computed under).
func (m *Manager) SubmissionSeq(id string) (uint64, bool) {
	e, ok := m.entries[id]
	if !ok {
		return 0, false
	}
	return e.Seq, true
}

// Requirement returns the cached aggregated workforce requirement of an
// open request. The serving layer logs it as a per-submit recovery
// fingerprint: it is a pure function of (request, submission seq, catalog,
// models, mode), so a recovered replay that computes anything different
// was run against the wrong tenant universe.
func (m *Manager) Requirement(id string) (workforce.Requirement, bool) {
	e, ok := m.entries[id]
	if !ok {
		return workforce.Requirement{}, false
	}
	return e.Req, true
}

// Plan is the current serving decision.
type Plan struct {
	// Serving lists served request IDs in admission order.
	Serving []string
	// Displaced lists open-but-unserved request IDs in admission order.
	Displaced []string
	// Objective is the achieved objective value over open requests.
	Objective float64
	// Workforce is the plan's total workforce consumption.
	Workforce float64
}

// Plan returns a snapshot of the current plan.
func (m *Manager) Plan() Plan {
	var p Plan
	for _, id := range m.order {
		if id == "" {
			continue
		}
		e := m.entries[id]
		if e.Serving {
			p.Serving = append(p.Serving, id)
			p.Workforce += e.Req.Workforce
			p.Objective += m.value(e)
		} else {
			p.Displaced = append(p.Displaced, id)
		}
	}
	return p
}

// RequestState is one open request's frozen state inside a Snapshot.
type RequestState struct {
	ID      string
	Request strategy.Request
	// Seq is the request's submission sequence number (Entry.Seq):
	// checkpoints persist it so recovery can re-admit the request under
	// its original model row.
	Seq uint64
	// Serving reports whether the snapshot's plan serves the request.
	Serving bool
	// Feasible reports whether the request can be served at any
	// availability (false when fewer than K strategies can ever satisfy
	// it).
	Feasible bool
	// Workforce is the cached aggregated requirement; +Inf when
	// infeasible.
	Workforce float64
	// Strategies holds the K recommended strategy IDs (nil when
	// infeasible).
	Strategies []int
}

// Snapshot is a self-contained, immutable copy of the manager's state:
// the plan, the availability, and every open request. A single-writer
// event loop can publish one through an atomic pointer after each event so
// that readers (plan queries, alternative serving) never touch the
// manager. Everything reachable from a Snapshot is a copy; mutating the
// manager afterwards does not affect it.
type Snapshot struct {
	Epoch        uint64
	Availability float64
	Plan         Plan
	// Requests lists every open request in admission order.
	Requests []RequestState

	byID map[string]int // index into Requests
}

// Request returns the state of an open request by ID.
func (s *Snapshot) Request(id string) (RequestState, bool) {
	if s == nil {
		return RequestState{}, false
	}
	i, ok := s.byID[id]
	if !ok {
		return RequestState{}, false
	}
	return s.Requests[i], true
}

// Snapshot freezes the manager's current state. Like every other method it
// must be called from the manager's single writer; the returned value is
// then safe to hand to any number of concurrent readers.
func (m *Manager) Snapshot() *Snapshot {
	s := &Snapshot{
		Epoch:        m.epoch,
		Availability: m.w,
		Plan:         m.Plan(),
		Requests:     make([]RequestState, 0, len(m.order)),
		byID:         make(map[string]int, len(m.order)),
	}
	for _, id := range m.order {
		if id == "" {
			continue
		}
		e := m.entries[id]
		rs := RequestState{
			ID:        id,
			Request:   e.Request,
			Seq:       e.Seq,
			Serving:   e.Serving,
			Feasible:  e.Req.Feasible(),
			Workforce: e.Req.Workforce,
		}
		if len(e.Req.Strategies) > 0 {
			rs.Strategies = append([]int(nil), e.Req.Strategies...)
		}
		s.byID[id] = len(s.Requests)
		s.Requests = append(s.Requests, rs)
	}
	return s
}

// Strategies returns the k recommended strategies of a served request, or
// nil if the request is not currently served.
func (m *Manager) Strategies(id string) []int {
	e, ok := m.entries[id]
	if !ok || !e.Serving {
		return nil
	}
	out := make([]int, len(e.Req.Strategies))
	copy(out, e.Req.Strategies)
	return out
}

// ErrServed reports that an alternative was requested for a request the
// current plan already serves.
var ErrServed = errors.New("stream: request is served; no alternative needed")

// Alternative recommends alternative deployment parameters (ADPaR,
// Section 4) for an open request the current plan does not serve. It runs
// against the manager's shared serving index — compiled on first use, like
// the Manager itself not safe for concurrent use — so the steady-state
// per-request cost is the sweep alone, with no per-event re-derivation of
// the normalized problem.
func (m *Manager) Alternative(id string) (adpar.Solution, error) {
	e, ok := m.entries[id]
	if !ok {
		return adpar.Solution{}, fmt.Errorf("%w: %s", ErrUnknownID, id)
	}
	if e.Serving {
		return adpar.Solution{}, fmt.Errorf("%w: %s", ErrServed, id)
	}
	ix, err := m.Index()
	if err != nil {
		return adpar.Solution{}, err
	}
	return ix.Solve(e.Request)
}

// Index returns the manager's shared ADPaR serving index, compiling it on
// first use. The returned index is immutable and safe for concurrent Solve
// calls, so callers may serve alternatives from it without going through
// the manager at all (the lock-free read path of a serving tenant).
func (m *Manager) Index() (*adpar.Index, error) {
	if m.adparIdx == nil {
		ix, err := adpar.NewIndex(m.strategies)
		if err != nil {
			return nil, err
		}
		m.adparIdx = ix
	}
	return m.adparIdx, nil
}

// AttachIndex installs a pre-compiled ADPaR index, sharing one warm
// compilation across managers (or between a manager and an HTTP serving
// layer) over the same strategy set. The index must have been compiled for
// a set of the same size; attaching replaces any lazily compiled index.
func (m *Manager) AttachIndex(ix *adpar.Index) error {
	if ix == nil {
		return errors.New("stream: nil index")
	}
	if ix.Len() != len(m.strategies) {
		return fmt.Errorf("stream: index compiled for %d strategies, manager has %d", ix.Len(), len(m.strategies))
	}
	m.adparIdx = ix
	return nil
}

func (m *Manager) value(e *Entry) float64 {
	if m.objective == batch.Payoff {
		return e.Request.Cost
	}
	return 1
}
