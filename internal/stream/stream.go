// Package stream implements the fully dynamic deployment setting the
// paper's conclusion poses as an open problem: deployment requests arrive
// one by one, may be revoked, and worker availability drifts over time. A
// Manager maintains a running plan under these events, replanning with
// BatchStrat so every intermediate plan keeps the static guarantees (exact
// throughput, 1/2-approximate pay-off) over the currently open requests.
//
// The manager is deliberately simple — a replan per event batch — because
// BatchStrat itself is O(m log m) on prepared items and the expensive part,
// the workforce requirement of a request, is computed once at admission and
// cached. An epoch counter lets callers cheaply detect plan changes.
package stream

import (
	"errors"
	"fmt"
	"sort"

	"stratrec/internal/adpar"
	"stratrec/internal/batch"
	"stratrec/internal/strategy"
	"stratrec/internal/workforce"
)

// Event is a plan-affecting occurrence.
type Event int

const (
	// Submitted: a new request entered the pool.
	Submitted Event = iota
	// Revoked: a requester withdrew an open request.
	Revoked
	// AvailabilityChanged: the expected workforce W moved.
	AvailabilityChanged
)

func (e Event) String() string {
	switch e {
	case Submitted:
		return "submitted"
	case Revoked:
		return "revoked"
	case AvailabilityChanged:
		return "availability-changed"
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// Entry is one open request with its cached workforce requirement.
type Entry struct {
	ID      string
	Request strategy.Request
	Req     workforce.Requirement
	// Serving reports whether the current plan serves this request.
	Serving bool
}

// Manager maintains a deployment plan over a changing request pool. It
// compiles the ADPaR serving index for its strategy set once at
// construction and reuses it for every displaced-request alternative,
// instead of re-deriving the normalized problem per event.
type Manager struct {
	strategies strategy.Set
	models     workforce.ModelProvider
	mode       workforce.Mode
	objective  batch.Objective
	adparIdx   *adpar.Index

	w       float64
	entries map[string]*Entry
	order   []string // admission order, for deterministic iteration
	epoch   uint64
}

// ErrDuplicateID rejects a submission reusing an open request's ID.
var ErrDuplicateID = errors.New("stream: duplicate request ID")

// ErrUnknownID rejects revocation of a request that is not open.
var ErrUnknownID = errors.New("stream: unknown request ID")

// NewManager builds a dynamic deployment manager. The shared ADPaR index
// is compiled lazily on the first Alternative call, so managers that never
// serve alternatives pay nothing for it.
func NewManager(set strategy.Set, models workforce.ModelProvider, mode workforce.Mode, objective batch.Objective, initialW float64) (*Manager, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if models == nil {
		return nil, errors.New("stream: nil model provider")
	}
	if initialW < 0 || initialW > 1 {
		return nil, fmt.Errorf("stream: initial availability %v outside [0,1]", initialW)
	}
	return &Manager{
		strategies: set,
		models:     models,
		mode:       mode,
		objective:  objective,
		w:          initialW,
		entries:    map[string]*Entry{},
	}, nil
}

// Epoch increments on every plan change; callers can poll it cheaply.
func (m *Manager) Epoch() uint64 { return m.epoch }

// Availability returns the current expected workforce W.
func (m *Manager) Availability() float64 { return m.w }

// Open returns the number of open (non-revoked) requests.
func (m *Manager) Open() int { return len(m.entries) }

// Submit admits a request, computes and caches its workforce requirement,
// and replans. It returns whether the new plan serves the request.
func (m *Manager) Submit(d strategy.Request) (bool, error) {
	if d.ID == "" {
		return false, errors.New("stream: request needs an ID")
	}
	if err := d.Validate(); err != nil {
		return false, err
	}
	if _, exists := m.entries[d.ID]; exists {
		return false, fmt.Errorf("%w: %s", ErrDuplicateID, d.ID)
	}
	idx := len(m.order)
	req := workforce.RequirementFor(d, idx, m.strategies, m.models, m.mode)
	entry := &Entry{ID: d.ID, Request: d, Req: req}
	m.entries[d.ID] = entry
	m.order = append(m.order, d.ID)
	m.replan()
	return entry.Serving, nil
}

// Revoke withdraws an open request and replans; freed workforce may admit
// previously displaced requests.
func (m *Manager) Revoke(id string) error {
	if _, ok := m.entries[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownID, id)
	}
	delete(m.entries, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.replan()
	return nil
}

// SetAvailability moves the expected workforce and replans.
func (m *Manager) SetAvailability(w float64) error {
	if w < 0 || w > 1 {
		return fmt.Errorf("stream: availability %v outside [0,1]", w)
	}
	m.w = w
	m.replan()
	return nil
}

// Plan is the current serving decision.
type Plan struct {
	// Serving lists served request IDs in admission order.
	Serving []string
	// Displaced lists open-but-unserved request IDs in admission order.
	Displaced []string
	// Objective is the achieved objective value over open requests.
	Objective float64
	// Workforce is the plan's total workforce consumption.
	Workforce float64
}

// Plan returns a snapshot of the current plan.
func (m *Manager) Plan() Plan {
	var p Plan
	for _, id := range m.order {
		e := m.entries[id]
		if e.Serving {
			p.Serving = append(p.Serving, id)
			p.Workforce += e.Req.Workforce
			p.Objective += m.value(e)
		} else {
			p.Displaced = append(p.Displaced, id)
		}
	}
	return p
}

// Strategies returns the k recommended strategies of a served request, or
// nil if the request is not currently served.
func (m *Manager) Strategies(id string) []int {
	e, ok := m.entries[id]
	if !ok || !e.Serving {
		return nil
	}
	out := make([]int, len(e.Req.Strategies))
	copy(out, e.Req.Strategies)
	return out
}

// ErrServed reports that an alternative was requested for a request the
// current plan already serves.
var ErrServed = errors.New("stream: request is served; no alternative needed")

// Alternative recommends alternative deployment parameters (ADPaR,
// Section 4) for an open request the current plan does not serve. It runs
// against the manager's shared serving index — compiled on first use, like
// the Manager itself not safe for concurrent use — so the steady-state
// per-request cost is the sweep alone, with no per-event re-derivation of
// the normalized problem.
func (m *Manager) Alternative(id string) (adpar.Solution, error) {
	e, ok := m.entries[id]
	if !ok {
		return adpar.Solution{}, fmt.Errorf("%w: %s", ErrUnknownID, id)
	}
	if e.Serving {
		return adpar.Solution{}, fmt.Errorf("%w: %s", ErrServed, id)
	}
	if m.adparIdx == nil {
		ix, err := adpar.NewIndex(m.strategies)
		if err != nil {
			return adpar.Solution{}, err
		}
		m.adparIdx = ix
	}
	return m.adparIdx.Solve(e.Request)
}

func (m *Manager) value(e *Entry) float64 {
	if m.objective == batch.Payoff {
		return e.Request.Cost
	}
	return 1
}

// replan recomputes the serving set with BatchStrat over all open requests.
func (m *Manager) replan() {
	ids := make([]string, len(m.order))
	copy(ids, m.order)
	sort.Strings(ids) // stable item order independent of admission history

	var items []batch.Item
	for i, id := range ids {
		e := m.entries[id]
		if !e.Req.Feasible() {
			e.Serving = false
			continue
		}
		items = append(items, batch.Item{
			Index:      i,
			Value:      m.value(e),
			Workforce:  e.Req.Workforce,
			Strategies: e.Req.Strategies,
		})
	}
	res := batch.BatchStrat(items, m.w)
	changed := false
	for i, id := range ids {
		e := m.entries[id]
		now := res.IsSelected(i)
		if e.Serving != now {
			changed = true
		}
		e.Serving = now
	}
	if changed {
		m.epoch++
	}
}
