package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"stratrec/internal/batch"
	"stratrec/internal/linmodel"
	"stratrec/internal/strategy"
	"stratrec/internal/workforce"
)

// qualityRow builds one FullModels row over a single-strategy catalog
// whose requirement is exactly (quality threshold - beta): the quality
// model is w + beta with cost/latency unconstrained, so the row's beta
// fingerprints which row a requirement was computed from.
func qualityRow(beta float64) []linmodel.ParamModels {
	return []linmodel.ParamModels{{
		Quality: linmodel.Model{Alpha: 1, Beta: beta},
		Cost:    linmodel.Model{Alpha: 0, Beta: 0},
		Latency: linmodel.Model{Alpha: 0, Beta: 0},
	}}
}

func oneStrategySet() strategy.Set {
	return strategy.Set{{ID: 0, Name: "s1", Params: strategy.Params{Quality: 0.9, Cost: 0.1, Latency: 0.1}}}
}

// TestSubmitRevokeSubmitFullModels is the regression test for the
// submission-index bug: Submit used to pass len(order) — the pool
// position, which is reused after any revoke — as reqIdx to the
// ModelProvider, so a FullModels provider aliased model rows between
// distinct live requests and a resubmitted ID could silently change
// requirement. With the monotonic submission counter, every admission
// consumes a fresh row, and a submit→revoke→submit cycle whose rows match
// yields bit-identical requirements.
func TestSubmitRevokeSubmitFullModels(t *testing.T) {
	set := oneStrategySet()
	fm := workforce.FullModels{
		qualityRow(0),     // seq 0: first admission of "a"
		qualityRow(-0.1),  // seq 1: "b"
		qualityRow(0),     // seq 2: re-admission of "a", same models as seq 0
		qualityRow(-0.25), // seq 3: "c"
	}
	m, err := NewManager(set, fm, workforce.MaxCase, batch.Throughput, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := strategy.Request{Params: strategy.Params{Quality: 0.5, Cost: 0.9, Latency: 0.9}, K: 1}

	submit := func(id string) {
		t.Helper()
		d.ID = id
		if _, err := m.Submit(d); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
	}
	wf := func(id string) float64 {
		t.Helper()
		rs, ok := m.Snapshot().Request(id)
		if !ok {
			t.Fatalf("request %s not in snapshot", id)
		}
		return rs.Workforce
	}

	submit("a")
	original := wf("a")
	if original != 0.5 {
		t.Fatalf("first admission of a: workforce %v, want 0.5 (row 0)", original)
	}
	submit("b")
	if got := wf("b"); got != 0.6 {
		t.Fatalf("b: workforce %v, want 0.6 (row 1)", got)
	}
	if err := m.Revoke("a"); err != nil {
		t.Fatal(err)
	}

	// The buggy len(order) index would be 1 here — b's row — giving the
	// re-admitted "a" workforce 0.6 (aliased with the live "b") instead of
	// its own row 2.
	submit("a")
	if got := wf("a"); got != original {
		t.Fatalf("re-admitted a: workforce %v, want bit-identical %v (row 2 == row 0)", got, original)
	}
	if got := wf("b"); got != 0.6 {
		t.Fatalf("b aliased after a's resubmission: workforce %v, want 0.6", got)
	}

	// A further fresh submission consumes row 3, not any live request's row.
	submit("c")
	if got := wf("c"); got != 0.75 {
		t.Fatalf("c: workforce %v, want 0.75 (row 3)", got)
	}
	snap := m.Snapshot()
	if rs, _ := snap.Request("a"); rs.Seq != 2 {
		t.Fatalf("re-admitted a: seq %d, want 2", rs.Seq)
	}
	if rs, _ := snap.Request("c"); rs.Seq != 3 {
		t.Fatalf("c: seq %d, want 3", rs.Seq)
	}
}

// TestResubmitRestoresSeq pins the recovery contract: Resubmit re-admits
// under the original submission number (same FullModels row, bit-identical
// requirement) and advances the counter past it.
func TestResubmitRestoresSeq(t *testing.T) {
	set := oneStrategySet()
	fm := workforce.FullModels{qualityRow(0), qualityRow(-0.1), qualityRow(-0.2), qualityRow(-0.3)}
	m, err := NewManager(set, fm, workforce.MaxCase, batch.Throughput, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := strategy.Request{ID: "a", Params: strategy.Params{Quality: 0.5, Cost: 0.9, Latency: 0.9}, K: 1}
	if _, err := m.Resubmit(d, 2); err != nil {
		t.Fatal(err)
	}
	rs, _ := m.Snapshot().Request("a")
	if rs.Seq != 2 || rs.Workforce != 0.7 {
		t.Fatalf("resubmit at seq 2: seq %d workforce %v, want 2 / 0.7 (row 2)", rs.Seq, rs.Workforce)
	}
	if got := m.SubmissionCounter(); got != 3 {
		t.Fatalf("submission counter after Resubmit(2): %d, want 3", got)
	}
	d.ID = "b"
	if _, err := m.Submit(d); err != nil {
		t.Fatal(err)
	}
	if rs, _ := m.Snapshot().Request("b"); rs.Seq != 3 || rs.Workforce != 0.8 {
		t.Fatalf("fresh submit after Resubmit: seq %d workforce %v, want 3 / 0.8 (row 3)", rs.Seq, rs.Workforce)
	}

	m.RestoreCounters(41, 10)
	if m.Epoch() != 41 || m.SubmissionCounter() != 10 {
		t.Fatalf("RestoreCounters: epoch %d counter %d, want 41 / 10", m.Epoch(), m.SubmissionCounter())
	}
	// RestoreCounters never rolls the submission counter back.
	m.RestoreCounters(41, 4)
	if m.SubmissionCounter() != 10 {
		t.Fatalf("RestoreCounters rolled the counter back to %d", m.SubmissionCounter())
	}
}

// TestRevokeStormOrderIndex drives a deterministic submit/revoke storm
// hard enough to force several order-slice compactions and asserts the
// manager's observable invariants after every event: admission order is
// preserved exactly, serving+displaced = open, the position index stays
// consistent, and epochs never move backwards.
func TestRevokeStormOrderIndex(t *testing.T) {
	set := oneStrategySet()
	m, err := NewManager(set, workforce.PerStrategyModels{qualityRow(0)[0]}, workforce.MaxCase, batch.Throughput, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var want []string // expected admission order of open requests
	lastEpoch := uint64(0)
	next := 0

	check := func() {
		t.Helper()
		snap := m.Snapshot()
		gotOrder := make([]string, 0, len(snap.Requests))
		for _, rs := range snap.Requests {
			gotOrder = append(gotOrder, rs.ID)
		}
		if !slices.Equal(gotOrder, want) {
			t.Fatalf("admission order diverged:\n got %v\nwant %v", gotOrder, want)
		}
		if snap.Epoch < lastEpoch {
			t.Fatalf("epoch moved backwards: %d -> %d", lastEpoch, snap.Epoch)
		}
		lastEpoch = snap.Epoch
		if got := len(snap.Plan.Serving) + len(snap.Plan.Displaced); got != len(want) {
			t.Fatalf("serving(%d)+displaced(%d) != open(%d)", len(snap.Plan.Serving), len(snap.Plan.Displaced), len(want))
		}
		if m.Open() != len(want) {
			t.Fatalf("Open() = %d, want %d", m.Open(), len(want))
		}
	}

	for i := 0; i < 3000; i++ {
		if len(want) > 0 && (rng.Float64() < 0.55 || len(want) > 60) {
			victim := rng.Intn(len(want))
			id := want[victim]
			want = append(want[:victim], want[victim+1:]...)
			if err := m.Revoke(id); err != nil {
				t.Fatalf("revoke %s: %v", id, err)
			}
		} else {
			id := fmt.Sprintf("d%04d", next)
			next++
			d := strategy.Request{ID: id, Params: strategy.Params{Quality: 0.3 + 0.4*rng.Float64(), Cost: 0.9, Latency: 0.9}, K: 1}
			if _, err := m.Submit(d); err != nil {
				t.Fatalf("submit %s: %v", id, err)
			}
			want = append(want, id)
		}
		check()
	}

	// Drain completely: the pool, the index, and the tombstoned order
	// slice must all agree on emptiness.
	for len(want) > 0 {
		id := want[0]
		want = want[1:]
		if err := m.Revoke(id); err != nil {
			t.Fatalf("drain revoke %s: %v", id, err)
		}
		check()
	}
	if err := m.Revoke("d0000"); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("revoking from an empty pool: %v, want ErrUnknownID", err)
	}
}
