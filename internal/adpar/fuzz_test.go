package adpar

import (
	"math"
	"math/rand"
	"testing"

	"stratrec/internal/strategy"
)

// FuzzADPaRIndex differentially fuzzes the warm serving index against the
// brute-force reference ADPaRB on small instances: any (catalog seed,
// size, k, request) where the two disagree on the optimal distance — or
// where the index's alternative fails an independent coverage recount — is
// a real solver bug.
func FuzzADPaRIndex(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(2), 0.3, 0.4, 0.5)
	f.Add(int64(7), uint8(16), uint8(5), 0.0, 0.0, 0.0)
	f.Add(int64(42), uint8(3), uint8(3), 0.9, 0.1, 0.2)
	f.Add(int64(-5), uint8(1), uint8(1), 1.0, 1.0, 1.0)

	f.Fuzz(func(t *testing.T, seed int64, n, k uint8, q, c, l float64) {
		// Normalize fuzz inputs into a solvable instance: catalog sizes
		// within the brute-force bound, thresholds within [0,1].
		size := int(n)%20 + 1
		card := int(k)%size + 1
		if !inUnit(q) || !inUnit(c) || !inUnit(l) {
			t.Skip()
		}

		rng := rand.New(rand.NewSource(seed))
		set := make(strategy.Set, size)
		for i := range set {
			set[i] = strategy.Strategy{
				ID: i,
				Params: strategy.Params{
					Quality: float64(rng.Intn(101)) / 100,
					Cost:    float64(rng.Intn(101)) / 100,
					Latency: float64(rng.Intn(101)) / 100,
				},
			}
		}
		d := strategy.Request{
			ID:     "fuzz",
			Params: strategy.Params{Quality: q, Cost: c, Latency: l},
			K:      card,
		}

		ix, err := NewIndex(set)
		if err != nil {
			t.Fatalf("index compile: %v", err)
		}
		got, gotErr := ix.Solve(d)
		want, wantErr := BruteForceK(set, d)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("error disagreement: index %v, brute force %v", gotErr, wantErr)
		}
		if gotErr != nil {
			return
		}
		if math.Abs(got.Distance-want.Distance) > 1e-9*math.Max(1, want.Distance) {
			t.Fatalf("distance disagreement: index %v, brute force %v (n=%d k=%d d=%+v)",
				got.Distance, want.Distance, size, card, d.Params)
		}
		// Independent recount with the public predicate: the alternative
		// covers what it claims, and at least k strategies.
		covered := 0
		for _, s := range set {
			if strategy.Satisfies(s.Params, got.Alternative) {
				covered++
			}
		}
		if covered != len(got.Covered) {
			t.Fatalf("coverage recount %d != reported %d", covered, len(got.Covered))
		}
		if covered < card {
			t.Fatalf("alternative covers %d < k=%d", covered, card)
		}
	})
}

func inUnit(v float64) bool { return v >= 0 && v <= 1 && !math.IsNaN(v) }
