package adpar

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stratrec/internal/geometry"
	"stratrec/internal/strategy"
)

// paperD1 and paperD2 are the worked examples of Sections 2.3 and 4.
func paperD1() strategy.Request { return strategy.PaperExampleRequests()[0] }
func paperD2() strategy.Request { return strategy.PaperExampleRequests()[1] }

func checkCovers(t *testing.T, set strategy.Set, sol Solution, k int) {
	t.Helper()
	if len(sol.Covered) < k {
		t.Fatalf("solution covers %d < k=%d strategies", len(sol.Covered), k)
	}
	for _, id := range sol.Covered {
		if !strategy.Satisfies(set[id].Params, sol.Alternative) {
			t.Errorf("covered strategy %d does not satisfy alternative %+v", id, sol.Alternative)
		}
	}
}

// TestExactPaperExampleD1 reproduces the Section 2.3 example: for
// d1 = (0.4, 0.17, 0.28) the alternative is (0.4, 0.5, 0.28) with
// {s1, s2, s3}.
func TestExactPaperExampleD1(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	sol, err := Exact(set, paperD1())
	if err != nil {
		t.Fatal(err)
	}
	want := strategy.Params{Quality: 0.4, Cost: 0.5, Latency: 0.28}
	if math.Abs(sol.Alternative.Quality-want.Quality) > 1e-12 ||
		math.Abs(sol.Alternative.Cost-want.Cost) > 1e-12 ||
		math.Abs(sol.Alternative.Latency-want.Latency) > 1e-12 {
		t.Errorf("alternative = %+v, want %+v", sol.Alternative, want)
	}
	if len(sol.Covered) != 3 || sol.Covered[0] != 0 || sol.Covered[1] != 1 || sol.Covered[2] != 2 {
		t.Errorf("covered = %v, want [0 1 2] (s1, s2, s3)", sol.Covered)
	}
	if math.Abs(sol.Distance-0.33) > 1e-12 {
		t.Errorf("distance = %v, want 0.33 (cost relaxation only)", sol.Distance)
	}
	checkCovers(t, set, sol, 3)
}

// TestExactPaperExampleD2Errata: the paper claims the d2 alternative is
// (0.75, 0.5, 0.28) covering {s1, s2, s3}, but that point does not cover s1
// (quality 0.5 < 0.75). The true optimum is (0.75, 0.58, 0.28) covering
// {s2, s3, s4} at distance sqrt(0.05^2 + 0.38^2). See DESIGN.md errata.
func TestExactPaperExampleD2Errata(t *testing.T) {
	set := strategy.PaperExampleStrategies()

	// The paper's claimed point covers only two strategies.
	claimed := strategy.Params{Quality: 0.75, Cost: 0.5, Latency: 0.28}
	covered := 0
	for _, s := range set {
		if strategy.Satisfies(s.Params, claimed) {
			covered++
		}
	}
	if covered != 2 {
		t.Fatalf("paper's claimed point covers %d strategies (expected the errata's 2)", covered)
	}

	sol, err := Exact(set, paperD2())
	if err != nil {
		t.Fatal(err)
	}
	want := strategy.Params{Quality: 0.75, Cost: 0.58, Latency: 0.28}
	if math.Abs(sol.Alternative.Quality-want.Quality) > 1e-12 ||
		math.Abs(sol.Alternative.Cost-want.Cost) > 1e-12 ||
		math.Abs(sol.Alternative.Latency-want.Latency) > 1e-12 {
		t.Errorf("alternative = %+v, want %+v", sol.Alternative, want)
	}
	if len(sol.Covered) != 3 || sol.Covered[0] != 1 || sol.Covered[1] != 2 || sol.Covered[2] != 3 {
		t.Errorf("covered = %v, want [1 2 3] (s2, s3, s4)", sol.Covered)
	}
	wantDist := math.Sqrt(0.05*0.05 + 0.38*0.38)
	if math.Abs(sol.Distance-wantDist) > 1e-9 {
		t.Errorf("distance = %v, want %v", sol.Distance, wantDist)
	}
	checkCovers(t, set, sol, 3)
}

func TestExactAlreadySatisfiable(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	d := strategy.PaperExampleRequests()[2] // d3 is satisfied by s2, s3, s4
	sol, err := Exact(set, d)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Distance != 0 {
		t.Errorf("distance = %v, want 0 for satisfiable request", sol.Distance)
	}
	if sol.Alternative != d.Params {
		t.Errorf("alternative = %+v, want the original %+v", sol.Alternative, d.Params)
	}
	checkCovers(t, set, sol, 3)
}

func TestExactKEqualsSetSize(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	d := strategy.Request{ID: "tight", Params: strategy.Params{Quality: 0.9, Cost: 0.1, Latency: 0.1}, K: 4}
	sol, err := Exact(set, d)
	if err != nil {
		t.Fatal(err)
	}
	checkCovers(t, set, sol, 4)
	// Covering everything needs the componentwise worst corner.
	if math.Abs(sol.Alternative.Quality-0.5) > 1e-12 ||
		math.Abs(sol.Alternative.Cost-0.58) > 1e-12 ||
		math.Abs(sol.Alternative.Latency-0.28) > 1e-12 {
		t.Errorf("alternative = %+v", sol.Alternative)
	}
}

func TestInputValidation(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	solvers := map[string]func(strategy.Set, strategy.Request) (Solution, error){
		"Exact":       Exact,
		"BruteForceK": BruteForceK,
		"Baseline2":   Baseline2,
		"Baseline3":   Baseline3,
		"Grid":        ExhaustiveGrid,
	}
	for name, solve := range solvers {
		if _, err := solve(set, strategy.Request{Params: set[0].Params, K: 0}); !errors.Is(err, ErrBadK) {
			t.Errorf("%s: k=0 error = %v", name, err)
		}
		if _, err := solve(set, strategy.Request{Params: set[0].Params, K: 5}); !errors.Is(err, ErrNotEnoughStrategies) {
			t.Errorf("%s: k>|S| error = %v", name, err)
		}
		bad := strategy.Request{Params: strategy.Params{Quality: 2}, K: 1}
		if _, err := solve(set, bad); err == nil {
			t.Errorf("%s: invalid params accepted", name)
		}
	}
}

func TestBruteForceSizeLimit(t *testing.T) {
	set := make(strategy.Set, BruteForceLimit+1)
	for i := range set {
		set[i] = strategy.Strategy{ID: i, Params: strategy.Params{Quality: 0.5, Cost: 0.5, Latency: 0.5}}
	}
	if _, err := BruteForceK(set, strategy.Request{Params: set[0].Params, K: 2}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized brute force error = %v", err)
	}
}

func TestSolutionStrategiesTruncates(t *testing.T) {
	sol := Solution{Covered: []int{3, 5, 7}}
	if got := sol.Strategies(2); len(got) != 2 || got[0] != 3 {
		t.Errorf("Strategies(2) = %v", got)
	}
	if got := sol.Strategies(9); len(got) != 3 {
		t.Errorf("Strategies(9) = %v", got)
	}
}

// randomInstance builds a small random problem. Thresholds are drawn tight
// so relaxation is usually required.
func randomInstance(rng *rand.Rand, maxN int) (strategy.Set, strategy.Request) {
	n := 1 + rng.Intn(maxN)
	set := make(strategy.Set, n)
	for i := range set {
		set[i] = strategy.Strategy{ID: i, Params: strategy.Params{
			Quality: rng.Float64(),
			Cost:    rng.Float64(),
			Latency: rng.Float64(),
		}}
	}
	k := 1 + rng.Intn(n)
	d := strategy.Request{
		ID: "d",
		Params: strategy.Params{
			Quality: 0.5 + 0.5*rng.Float64(), // demanding quality
			Cost:    0.5 * rng.Float64(),     // tight budget
			Latency: 0.5 * rng.Float64(),     // tight deadline
		},
		K: k,
	}
	return set, d
}

// TestPropertyExactMatchesReferences is the central correctness property:
// on random instances ADPaR-Exact, the subset brute force and the grid
// enumeration all find the same optimal distance, and Exact's solution is
// feasible.
func TestPropertyExactMatchesReferences(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	f := func() bool {
		set, d := randomInstance(rng, 12)
		exact, err := Exact(set, d)
		if err != nil {
			return false
		}
		grid, err := ExhaustiveGrid(set, d)
		if err != nil {
			return false
		}
		subsets, err := BruteForceK(set, d)
		if err != nil {
			return false
		}
		if math.Abs(exact.Distance-grid.Distance) > 1e-9 {
			return false
		}
		if math.Abs(exact.Distance-subsets.Distance) > 1e-9 {
			return false
		}
		// Feasibility of the exact solution.
		if len(exact.Covered) < d.K {
			return false
		}
		for _, id := range exact.Covered {
			if !strategy.Satisfies(set[id].Params, exact.Alternative) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBaselinesNeverBeatExact: Theorem 4 from the other side — no
// baseline may find a strictly closer feasible alternative.
func TestPropertyBaselinesNeverBeatExact(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	f := func() bool {
		set, d := randomInstance(rng, 20)
		exact, err := Exact(set, d)
		if err != nil {
			return false
		}
		for _, solve := range []func(strategy.Set, strategy.Request) (Solution, error){Baseline2, Baseline3} {
			sol, err := solve(set, d)
			if err != nil {
				return false
			}
			if sol.Distance < exact.Distance-1e-9 {
				return false
			}
			// Baselines must still return feasible alternatives.
			if len(sol.Covered) < d.K {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAlternativeOnlyRelaxes: d' never tightens the original
// bounds — quality only decreases, cost and latency only increase.
func TestPropertyAlternativeOnlyRelaxes(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	f := func() bool {
		set, d := randomInstance(rng, 20)
		for _, solve := range []func(strategy.Set, strategy.Request) (Solution, error){Exact, Baseline2, Baseline3} {
			sol, err := solve(set, d)
			if err != nil {
				return false
			}
			if sol.Alternative.Quality > d.Quality+1e-12 {
				return false
			}
			if sol.Alternative.Cost < d.Cost-1e-12 {
				return false
			}
			if sol.Alternative.Latency < d.Latency-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDistanceMonotoneInK: larger cardinality constraints can only
// push the alternative farther (Figure 17 c/d trend).
func TestPropertyDistanceMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	f := func() bool {
		set, d := randomInstance(rng, 15)
		if len(set) < 2 {
			return true
		}
		d.K = 1 + rng.Intn(len(set)-1)
		sol1, err := Exact(set, d)
		if err != nil {
			return false
		}
		d2 := d
		d2.K = d.K + 1
		sol2, err := Exact(set, d2)
		if err != nil {
			return false
		}
		return sol2.Distance >= sol1.Distance-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExactOptimalAgainstRandomProbes: no random feasible corner
// may be closer than the exact optimum.
func TestPropertyExactOptimalAgainstRandomProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	f := func() bool {
		set, d := randomInstance(rng, 25)
		exact, err := Exact(set, d)
		if err != nil {
			return false
		}
		u := d.Params.Point()
		pts := set.Points()
		for probe := 0; probe < 30; probe++ {
			alt := geometry.Point3{rng.Float64(), rng.Float64(), rng.Float64()}
			if geometry.CoverCount(pts, alt) >= d.K {
				if alt.Dist(u) < exact.Distance-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExactLargeInstanceSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	n := 5000
	set := make(strategy.Set, n)
	for i := range set {
		set[i] = strategy.Strategy{ID: i, Params: strategy.Params{
			Quality: rng.Float64(), Cost: rng.Float64(), Latency: rng.Float64(),
		}}
	}
	d := strategy.Request{ID: "d", Params: strategy.Params{Quality: 0.95, Cost: 0.05, Latency: 0.05}, K: 50}
	sol, err := Exact(set, d)
	if err != nil {
		t.Fatal(err)
	}
	checkCovers(t, set, sol, 50)
	if sol.Distance <= 0 {
		t.Errorf("tight request should need relaxation, distance = %v", sol.Distance)
	}
}
