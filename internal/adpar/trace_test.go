package adpar

import (
	"math"
	"testing"

	"stratrec/internal/strategy"
)

// TestTracePaperD2 reconstructs Tables 2-5 for the running example's d2
// with the corrected values documented in DESIGN.md (the paper's printed
// Table 3 swaps its Cost and Quality columns).
func TestTracePaperD2(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	d := strategy.PaperExampleRequests()[1] // d2 = (0.8, 0.2, 0.28), k=3
	tr, err := BuildTrace(set, d)
	if err != nil {
		t.Fatal(err)
	}

	// Table 3 corrected: relaxations per strategy (quality, cost, latency).
	want := [][3]float64{
		{0.30, 0.05, 0}, // s1: quality 0.5 needs 0.3, cost 0.25 needs 0.05
		{0.05, 0.13, 0}, // s2
		{0.00, 0.30, 0}, // s3
		{0.00, 0.38, 0}, // s4
	}
	for i, w := range want {
		for dim := 0; dim < 3; dim++ {
			if math.Abs(tr.Relax[i][dim]-w[dim]) > 1e-9 {
				t.Errorf("Relax[s%d][%d] = %v, want %v", i+1, dim, tr.Relax[i][dim], w[dim])
			}
		}
	}

	// Table 4: 12 relaxations sorted ascending; the first six are zeros
	// (all four latencies plus the two zero quality relaxations).
	if len(tr.R) != 12 {
		t.Fatalf("len(R) = %d, want 12", len(tr.R))
	}
	for j := 0; j < 6; j++ {
		if tr.R[j].Value != 0 {
			t.Errorf("R[%d] = %v, want 0", j, tr.R[j].Value)
		}
	}
	for j := 1; j < len(tr.R); j++ {
		if tr.R[j].Value < tr.R[j-1].Value {
			t.Errorf("R not sorted at %d: %v < %v", j, tr.R[j].Value, tr.R[j-1].Value)
		}
	}
	// The largest relaxation is s4's cost 0.38.
	last := tr.R[len(tr.R)-1]
	if math.Abs(last.Value-0.38) > 1e-9 || last.Strategy != 3 || last.Dim != 1 {
		t.Errorf("R[11] = %+v, want s4 cost 0.38", last)
	}

	// Table 2 (initial M): latency is covered for every strategy; quality
	// is covered for s3 and s4 only; cost for none.
	for i := 0; i < 4; i++ {
		if !tr.MInitial[i][2] {
			t.Errorf("MInitial[s%d][latency] = false", i+1)
		}
		if tr.MInitial[i][1] {
			t.Errorf("MInitial[s%d][cost] = true", i+1)
		}
	}
	if tr.MInitial[0][0] || tr.MInitial[1][0] || !tr.MInitial[2][0] || !tr.MInitial[3][0] {
		t.Errorf("MInitial quality column = %v %v %v %v",
			tr.MInitial[0][0], tr.MInitial[1][0], tr.MInitial[2][0], tr.MInitial[3][0])
	}

	// Table 5: each sweep order is ascending in its own relaxation.
	for dim := 0; dim < 3; dim++ {
		sw := tr.Sweeps[dim]
		if len(sw) != 4 {
			t.Fatalf("sweep %d has %d entries", dim, len(sw))
		}
		for j := 1; j < len(sw); j++ {
			if sw[j].Relax < sw[j-1].Relax {
				t.Errorf("sweep %d not sorted", dim)
			}
		}
	}
	// Quality sweep order: s3, s4 (0), then s2 (0.05), then s1 (0.3).
	qOrder := []int{2, 3, 1, 0}
	for j, want := range qOrder {
		if tr.Sweeps[0][j].Strategy != want {
			t.Errorf("quality sweep[%d] = s%d, want s%d", j, tr.Sweeps[0][j].Strategy+1, want+1)
		}
	}
	// Sweep entries expose the raw coordinates on the orthogonal plane:
	// for the quality sweep, s3's (cost, latency) = (0.5, 0.14).
	e := tr.Sweeps[0][0]
	if e.OtherDim != [2]int{1, 2} || math.Abs(e.Other[0]-0.5) > 1e-12 || math.Abs(e.Other[1]-0.14) > 1e-12 {
		t.Errorf("quality sweep first entry = %+v", e)
	}

	// Final M marks the parameters covered by the returned alternative
	// (0.75, 0.58, 0.28): everything except s1's quality.
	for i := 0; i < 4; i++ {
		for dim := 0; dim < 3; dim++ {
			want := !(i == 0 && dim == 0)
			if tr.MFinal[i][dim] != want {
				t.Errorf("MFinal[s%d][%d] = %v, want %v", i+1, dim, tr.MFinal[i][dim], want)
			}
		}
	}

	// The trace carries the exact solution.
	if math.Abs(tr.Solution.Distance-math.Sqrt(0.05*0.05+0.38*0.38)) > 1e-9 {
		t.Errorf("trace solution distance = %v", tr.Solution.Distance)
	}
}

func TestTraceValidation(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	if _, err := BuildTrace(set, strategy.Request{Params: set[0].Params, K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := BuildTrace(set, strategy.Request{Params: set[0].Params, K: 99}); err == nil {
		t.Error("k>|S| accepted")
	}
}
