package adpar

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"stratrec/internal/geometry"
	"stratrec/internal/strategy"
)

// oracleExact replays the original single-pass ADPaR-Exact sweep (retained
// as exactWithOuter) including its fewest-distinct-values outer-dimension
// choice. The engine tests require Index.Solve to reproduce its solutions
// bit for bit.
func oracleExact(set strategy.Set, d strategy.Request) (Solution, error) {
	p, err := newProblem(set, d)
	if err != nil {
		return Solution{}, err
	}
	outer := 0
	outerCands := distinctDimValues(p, 0)
	for dim := 1; dim < geometry.Dims; dim++ {
		c := distinctDimValues(p, dim)
		if len(c) < len(outerCands) {
			outer, outerCands = dim, c
		}
	}
	return exactWithOuter(p, outer, outerCands)
}

func oracleExactWithOuterDim(set strategy.Set, d strategy.Request, outer int) (Solution, error) {
	p, err := newProblem(set, d)
	if err != nil {
		return Solution{}, err
	}
	return exactWithOuter(p, outer, distinctDimValues(p, outer))
}

// sameSolution requires exact equality: coordinates, distance and covered
// set must match bit for bit, not just within a tolerance.
func sameSolution(t *testing.T, label string, got, want Solution) {
	t.Helper()
	if got.Alternative != want.Alternative {
		t.Errorf("%s: alternative = %+v, want %+v", label, got.Alternative, want.Alternative)
	}
	if got.Distance != want.Distance {
		t.Errorf("%s: distance = %v, want %v", label, got.Distance, want.Distance)
	}
	if len(got.Covered) != len(want.Covered) {
		t.Fatalf("%s: covered = %v, want %v", label, got.Covered, want.Covered)
	}
	for i := range got.Covered {
		if got.Covered[i] != want.Covered[i] {
			t.Fatalf("%s: covered = %v, want %v", label, got.Covered, want.Covered)
		}
	}
}

// gridInstance draws coordinates from a coarse grid so duplicate values,
// clamped relaxations and exact objective ties — the tie-breaking paths of
// the engine — occur constantly.
func gridInstance(rng *rand.Rand, maxN int) (strategy.Set, strategy.Request) {
	n := 1 + rng.Intn(maxN)
	grid := func() float64 { return float64(rng.Intn(11)) / 10 }
	set := make(strategy.Set, n)
	for i := range set {
		set[i] = strategy.Strategy{ID: i, Params: strategy.Params{
			Quality: grid(), Cost: grid(), Latency: grid(),
		}}
	}
	d := strategy.Request{
		ID:     "d",
		Params: strategy.Params{Quality: grid(), Cost: grid(), Latency: grid()},
		K:      1 + rng.Intn(n),
	}
	return set, d
}

// TestIndexSolveMatchesOracle is the central engine property: over
// continuous and duplicate-heavy randomized instances, sequential
// Index.Solve, forced-parallel SolveParallel and the per-dimension
// SolveWithOuterDim all reproduce the original sweep bit for bit.
func TestIndexSolveMatchesOracle(t *testing.T) {
	cases := []struct {
		name string
		gen  func(*rand.Rand, int) (strategy.Set, strategy.Request)
		seed int64
	}{
		{"continuous", randomInstance, 71},
		{"grid", gridInstance, 72},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			for trial := 0; trial < 300; trial++ {
				set, d := tc.gen(rng, 40)
				want, err := oracleExact(set, d)
				if err != nil {
					t.Fatalf("trial %d: oracle: %v", trial, err)
				}
				ix, err := NewIndex(set)
				if err != nil {
					t.Fatalf("trial %d: NewIndex: %v", trial, err)
				}
				got, err := ix.Solve(d)
				if err != nil {
					t.Fatalf("trial %d: Solve: %v", trial, err)
				}
				sameSolution(t, "Solve", got, want)

				par, err := ix.SolveParallel(d, 4)
				if err != nil {
					t.Fatalf("trial %d: SolveParallel: %v", trial, err)
				}
				sameSolution(t, "SolveParallel", par, want)

				for dim := 0; dim < geometry.Dims; dim++ {
					wantDim, err := oracleExactWithOuterDim(set, d, dim)
					if err != nil {
						t.Fatalf("trial %d: oracle dim %d: %v", trial, dim, err)
					}
					gotDim, err := ix.SolveWithOuterDim(d, dim)
					if err != nil {
						t.Fatalf("trial %d: SolveWithOuterDim(%d): %v", trial, dim, err)
					}
					sameSolution(t, "SolveWithOuterDim", gotDim, wantDim)
				}
			}
		})
	}
}

// TestIndexSolveMatchesOracleLarge exercises the admission-skip and
// candidate-skip fast paths on an instance big enough for them to matter,
// with a parallel sweep wider than the candidate pool supports.
func TestIndexSolveMatchesOracleLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	set := make(strategy.Set, 3000)
	for i := range set {
		set[i] = strategy.Strategy{ID: i, Params: strategy.Params{
			Quality: rng.Float64(), Cost: rng.Float64(), Latency: rng.Float64(),
		}}
	}
	ix, err := NewIndex(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 25, 400, 3000} {
		d := strategy.Request{ID: "d", Params: strategy.Params{Quality: 0.9, Cost: 0.1, Latency: 0.15}, K: k}
		want, err := oracleExact(set, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.Solve(d)
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, "Solve", got, want)
		par, err := ix.SolveParallel(d, 8)
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, "SolveParallel", par, want)
	}
}

// TestIndexPaperExamples pins the engine to the worked examples of Sections
// 2.3 and 4 through a single shared index.
func TestIndexPaperExamples(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	ix, err := NewIndex(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range strategy.PaperExampleRequests() {
		want, err := oracleExact(set, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.Solve(d)
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, d.ID, got, want)
		checkCovers(t, set, got, d.K)
	}
}

// TestIndexValidation mirrors the solver input contract on the index entry
// points.
func TestIndexValidation(t *testing.T) {
	if _, err := NewIndex(strategy.Set{}); err == nil {
		t.Error("empty set accepted")
	}
	set := strategy.PaperExampleStrategies()
	ix, err := NewIndex(set)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(set) {
		t.Errorf("Len = %d, want %d", ix.Len(), len(set))
	}
	if _, err := ix.Solve(strategy.Request{Params: set[0].Params, K: 0}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := ix.Solve(strategy.Request{Params: set[0].Params, K: 5}); !errors.Is(err, ErrNotEnoughStrategies) {
		t.Errorf("k>|S| error = %v", err)
	}
	if _, err := ix.Solve(strategy.Request{Params: strategy.Params{Quality: 2}, K: 1}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := ix.SolveWithOuterDim(strategy.PaperExampleRequests()[0], -1); err == nil {
		t.Error("negative dimension accepted")
	}
	if _, err := ix.SolveWithOuterDim(strategy.PaperExampleRequests()[0], geometry.Dims); err == nil {
		t.Errorf("dimension %d accepted", geometry.Dims)
	}
}

// TestIndexConcurrentSolve hammers one shared index from many goroutines —
// mixing sequential and forced-parallel solves — and checks every result
// against the oracle. Run under -race this doubles as the data-race proof
// for the scratch pool and the shared-bound plumbing.
func TestIndexConcurrentSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	set, _ := randomInstance(rng, 60)
	for len(set) < 8 {
		set, _ = randomInstance(rng, 60)
	}
	ix, err := NewIndex(set)
	if err != nil {
		t.Fatal(err)
	}
	type job struct {
		d    strategy.Request
		want Solution
	}
	jobs := make([]job, 24)
	for i := range jobs {
		_, d := randomInstance(rng, len(set))
		d.K = 1 + rng.Intn(len(set))
		want, err := oracleExact(set, d)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{d: d, want: want}
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs)*2)
	for i, j := range jobs {
		wg.Add(2)
		go func(j job) {
			defer wg.Done()
			got, err := ix.Solve(j.d)
			if err != nil {
				errs <- err
				return
			}
			if got.Alternative != j.want.Alternative || got.Distance != j.want.Distance {
				errs <- errors.New("concurrent Solve diverged from oracle")
			}
		}(j)
		go func(i int, j job) {
			defer wg.Done()
			got, err := ix.SolveParallel(j.d, 2+i%3)
			if err != nil {
				errs <- err
				return
			}
			if got.Alternative != j.want.Alternative || got.Distance != j.want.Distance {
				errs <- errors.New("concurrent SolveParallel diverged from oracle")
			}
		}(i, j)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
