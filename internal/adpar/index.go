package adpar

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"stratrec/internal/geometry"
	"stratrec/internal/strategy"
)

// This file implements the amortized ADPaR serving engine. The paper's
// online setting has StratRec answer a stream of deployment requests against
// a largely static strategy set; rebuilding the normalized problem — key
// points, per-dimension sorted orders, candidate relaxation lists — on every
// request costs O(|S| log |S|) in setup alone. An Index compiles all
// request-independent state once per strategy set, so serving a request does
// no per-|S| allocation and the sweep starts immediately.
//
// Three further engine-level optimizations preserve the exact sequential
// semantics of ADPaR-Exact:
//
//   - Admission skip: an outer candidate admitting fewer than k strategies
//     can never fill the k-heap, so the plain sweep scans all |S| points
//     for nothing. The index knows the k-th smallest coordinate of every
//     dimension, so Solve binary-searches the first productive outer
//     candidate and skips the barren prefix entirely.
//   - Candidate skip: a candidate whose newly admitted points all fall
//     outside the current pruning window can only reproduce the previous
//     scan's corners at a strictly larger outer relaxation, so its whole
//     rescan is skipped (see sweepRange).
//   - Admitted-only scan: executed scans iterate a bitset over inner-
//     dimension positions holding exactly the admitted points, skipping 64
//     non-admitted positions per word operation instead of testing points
//     one by one.
//
// On top of the single-request fast path, the outer-candidate sweep can be
// parallelized across GOMAXPROCS goroutines that share the best-squared-
// distance bound through an atomic, with deterministic merging so the
// parallel result is bit-for-bit the sequential result.

// DefaultParallelCutoff is the strategy-set size below which Solve stays
// sequential: goroutine startup and bound-sharing overhead outweigh the
// sweep cost on small instances.
const DefaultParallelCutoff = 4096

// Index is a reusable, request-independent compilation of one strategy set
// for ADPaR serving. Build it once with NewIndex and call Solve for every
// request; the compiled state is immutable after construction, so Solve is
// safe for concurrent use from multiple goroutines.
type Index struct {
	// Parallelism caps the worker count of the parallel sweep. 0 means
	// runtime.GOMAXPROCS(0); 1 forces the sequential sweep. Set it before
	// sharing the index across goroutines.
	Parallelism int
	// ParallelCutoff is the minimum |S| for which Solve parallelizes.
	// NewIndex sets it to DefaultParallelCutoff.
	ParallelCutoff int

	// pts holds the key-space point of every strategy; the position is the
	// strategy ID (validated by NewIndex).
	pts []geometry.Point3
	// byDim[dim] holds the same points sorted ascending by coordinate dim.
	// Storing whole points (not an index permutation) makes the hot sweep
	// loop a sequential scan over contiguous memory.
	byDim [geometry.Dims][]geometry.Point3
	// distinct[dim] holds the sorted distinct coordinate values of dim, the
	// request-independent part of the outer-candidate lists.
	distinct [geometry.Dims][]float64
	// countLE[dim][j] is the number of points whose coordinate dim is at
	// most distinct[dim][j] — the admission count of the j-th candidate.
	countLE [geometry.Dims][]int32
	// perm[dim] holds point IDs sorted by coordinate dim (the ID behind
	// each byDim[dim] slot); inv[dim] is its inverse (ID -> position).
	// They exist to derive pair data lazily.
	perm, inv [geometry.Dims][]int32
	// pairs[o][a] holds the (outer = o, inner = a) sweep metadata, built on
	// first use: a one-shot Exact call touches a single pair, so compiling
	// all six eagerly would double the cost of cold solves for nothing.
	pairs [geometry.Dims][geometry.Dims]indexPair

	// scratch recycles per-request sweep state (the bounded k-heap and the
	// admission bitset) across Solve calls and workers.
	scratch sync.Pool
}

// NewIndex validates the strategy set and compiles the serving index:
// pre-negated key points, per-dimension sorted point arrays, distinct value
// lists with admission counts, and the position maps driving the admitted-
// only scan. O(|S| log |S|) once; every Solve afterwards allocates only its
// solution.
func NewIndex(set strategy.Set) (*Index, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	n := len(set)
	ix := &Index{ParallelCutoff: DefaultParallelCutoff}
	ix.pts = make([]geometry.Point3, n)
	for i, s := range set {
		ix.pts[i] = keyPoint(s.Params)
	}

	for dim := 0; dim < geometry.Dims; dim++ {
		d := dim
		p := make([]int32, n)
		for i := range p {
			p[i] = int32(i)
		}
		sort.Slice(p, func(a, b int) bool { return ix.pts[p[a]][d] < ix.pts[p[b]][d] })
		ix.perm[dim] = p
		ix.inv[dim] = make([]int32, n)
		pts := make([]geometry.Point3, n)
		for pos, id := range p {
			ix.inv[dim][id] = int32(pos)
			pts[pos] = ix.pts[id]
		}
		ix.byDim[dim] = pts

		vals := make([]float64, 0, n)
		counts := make([]int32, 0, n)
		for pos, pt := range pts {
			if len(vals) == 0 || pt[d] != vals[len(vals)-1] {
				vals = append(vals, pt[d])
				counts = append(counts, int32(pos)+1)
			} else {
				counts[len(counts)-1] = int32(pos) + 1
			}
		}
		ix.distinct[dim] = vals
		ix.countLE[dim] = counts
	}
	ix.scratch.New = func() interface{} { return &sweepScratch{} }
	return ix, nil
}

// indexPair is the sweep metadata of one (outer, inner) dimension pair,
// compiled on first use and immutable afterwards.
type indexPair struct {
	once sync.Once
	// minOther[j] is the minimum inner-dimension coordinate among the
	// points whose outer coordinate is exactly distinct[outer][j] — the
	// cheapest inner relaxation the j-th outer candidate can newly admit,
	// driving the candidate skip.
	minOther []float64
	// pos[i] is the position in byDim[inner] of the point stored at
	// byDim[outer][i]. Activating positions in admission (outer) order
	// builds the bitset the admitted-only scan iterates.
	pos []int32
}

// pair returns the compiled (outer = o, inner = a) metadata, building it on
// first use. sync.Once makes concurrent first access safe and every later
// access a single atomic load.
func (ix *Index) pair(o, a int) *indexPair {
	p := &ix.pairs[o][a]
	p.once.Do(func() {
		mins := make([]float64, len(ix.distinct[o]))
		pos := make([]int32, len(ix.pts))
		j := -1
		for i, pt := range ix.byDim[o] {
			if j < 0 || pt[o] != ix.distinct[o][j] {
				j++
				mins[j] = pt[a]
			} else if pt[a] < mins[j] {
				mins[j] = pt[a]
			}
			pos[i] = ix.inv[a][ix.perm[o][i]]
		}
		p.minOther = mins
		p.pos = pos
	})
	return p
}

// Len returns the number of indexed strategies.
func (ix *Index) Len() int { return len(ix.pts) }

// Solve answers one deployment request against the indexed strategy set. It
// returns exactly what Exact returns on the same inputs: the l2-closest
// alternative parameters covering at least d.K strategies, with
// deterministic tie-breaking. Safe for concurrent use.
func (ix *Index) Solve(d strategy.Request) (Solution, error) {
	return ix.solve(d, -1, 0)
}

// SolveWithOuterDim is Solve with a fixed outer sweep dimension (0 quality,
// 1 cost, 2 latency). Any choice is exact; the ablation benchmarks use this
// to quantify the fewest-distinct-values heuristic Solve applies.
func (ix *Index) SolveWithOuterDim(d strategy.Request, outer int) (Solution, error) {
	if outer < 0 || outer >= geometry.Dims {
		return Solution{}, fmt.Errorf("adpar: outer dimension %d outside [0,%d)", outer, geometry.Dims)
	}
	return ix.solve(d, outer, 0)
}

// SolveParallel is Solve with an explicit worker count, bypassing the
// ParallelCutoff heuristic. workers < 1 is treated as 1. It exists so tests
// and benchmarks can force the parallel sweep on instances of any size.
func (ix *Index) SolveParallel(d strategy.Request, workers int) (Solution, error) {
	if workers < 1 {
		workers = 1
	}
	return ix.solve(d, -1, workers)
}

// solve validates the request, picks the outer dimension (fewest outer
// candidates, matching Exact's heuristic) unless fixed, decides the worker
// count (0 = auto) and runs the sweep.
func (ix *Index) solve(d strategy.Request, outer, workers int) (Solution, error) {
	if d.K < 1 {
		return Solution{}, ErrBadK
	}
	if len(ix.pts) < d.K {
		return Solution{}, fmt.Errorf("%w: |S|=%d, k=%d", ErrNotEnoughStrategies, len(ix.pts), d.K)
	}
	if err := d.Params.Validate(); err != nil {
		return Solution{}, err
	}
	u := keyPoint(d.Params)

	if outer < 0 {
		// Fewest distinct outer candidates, first dimension on ties — the
		// same choice Exact's distinctDimValues scan makes, in O(log |S|).
		best := ix.candCount(0, u)
		outer = 0
		for dim := 1; dim < geometry.Dims; dim++ {
			if c := ix.candCount(dim, u); c < best {
				outer, best = dim, c
			}
		}
	}
	cands := ix.outerCands(outer, u)

	// Admission skip: a candidate value below the k-th smallest coordinate
	// of the outer dimension admits fewer than k strategies, so its inner
	// sweep can never produce a covering corner. Start at the first
	// candidate admitting at least k.
	start := cands.searchStart(ix.byDim[outer][d.K-1][outer])

	if workers == 0 {
		workers = ix.Parallelism
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if len(ix.pts) < ix.ParallelCutoff {
			workers = 1
		}
	}
	if span := cands.len() - start; workers > span {
		workers = span
	}

	dimA, dimB := otherDims(outer)
	var best sweepOutcome
	if workers <= 1 {
		// The goroutine fan-out lives in its own method so this branch's
		// locals stay off the heap: a closure anywhere in this function
		// would force them to escape and cost the steady-state serving
		// path its zero-allocation property.
		var shared atomicMinFloat64
		shared.store(math.Inf(1))
		sc := ix.getScratch(d.K)
		best = ix.sweepRange(u, d.K, outer, dimA, dimB, cands, start, 0, 1, &shared, sc)
		ix.scratch.Put(sc)
	} else {
		best = ix.parallelSweep(u, d.K, outer, dimA, dimB, cands, start, workers)
	}
	if best.cand < 0 {
		// Unreachable when |S| >= k: the all-max corner always covers k.
		return Solution{}, fmt.Errorf("adpar: internal error: no covering corner found")
	}
	// Distance is re-derived from the corner coordinates (not the
	// accumulated sweep objective, whose summation order depends on the
	// outer dimension) so the result is bit-for-bit what problem.solutionAt
	// computes for the same corner.
	return Solution{
		Alternative: keyParams(best.alt),
		Covered:     geometry.Covered(ix.pts, best.alt),
		Distance:    best.alt.Dist(u),
	}, nil
}

// parallelSweep partitions the outer candidates across workers goroutines
// (strided, so every worker sees the promising low-relaxation candidates)
// that share the best-squared-distance bound through an atomic, then merges
// the per-worker outcomes deterministically: smallest objective wins; on an
// exact tie the smallest outer candidate index wins, which is the corner
// the sequential sweep (first strict improvement in ascending candidate
// order) would have kept.
func (ix *Index) parallelSweep(u geometry.Point3, k, outer, dimA, dimB int, cands outerCandList, start, workers int) sweepOutcome {
	var shared atomicMinFloat64
	shared.store(math.Inf(1))
	outcomes := make([]sweepOutcome, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			sc := ix.getScratch(k)
			outcomes[w] = ix.sweepRange(u, k, outer, dimA, dimB, cands, start, w, workers, &shared, sc)
			ix.scratch.Put(sc)
		}(w)
	}
	wg.Wait()
	best := outcomes[0]
	for _, o := range outcomes[1:] {
		if o.cand < 0 {
			continue
		}
		if best.cand < 0 || o.best2 < best.best2 ||
			(o.best2 == best.best2 && o.cand < best.cand) {
			best = o
		}
	}
	return best
}

// candCount returns how many outer candidate values dimension dim would
// have for bound u: the original bound plus every distinct coordinate value
// strictly above it.
func (ix *Index) candCount(dim int, u geometry.Point3) int {
	return 1 + len(ix.distinct[dim]) - sort.SearchFloat64s(ix.distinct[dim], math.Nextafter(u[dim], math.Inf(1)))
}

// outerCandList enumerates the ascending outer candidate values of one
// request without materializing them: the original bound (zero relaxation)
// followed by the indexed distinct values strictly above it. from records
// where the tail starts inside Index.distinct so candidate indices map back
// to the per-candidate metadata (minOther, countLE).
type outerCandList struct {
	first float64   // u[outer]
	tail  []float64 // distinct coordinate values strictly above first
	from  int       // index of tail[0] in Index.distinct[outer]
}

//lint:allocfree
func (ix *Index) outerCands(dim int, u geometry.Point3) outerCandList {
	from := sort.SearchFloat64s(ix.distinct[dim], math.Nextafter(u[dim], math.Inf(1)))
	return outerCandList{first: u[dim], tail: ix.distinct[dim][from:], from: from}
}

func (c outerCandList) len() int { return 1 + len(c.tail) }

func (c outerCandList) at(i int) float64 {
	if i == 0 {
		return c.first
	}
	return c.tail[i-1]
}

// searchStart returns the first candidate index whose value is at least
// threshold (the k-th smallest outer coordinate), i.e. the first candidate
// admitting at least k strategies.
func (c outerCandList) searchStart(threshold float64) int {
	if c.first >= threshold {
		return 0
	}
	return 1 + sort.SearchFloat64s(c.tail, threshold)
}

// admitCount returns how many points candidate ci admits: those whose outer
// coordinate is at most the candidate value.
//
//lint:allocfree
func (ix *Index) admitCount(outer int, cands outerCandList, ci int) int {
	if ci == 0 {
		// Points at or below the original bound: everything before the
		// first distinct value strictly above it.
		if cands.from == 0 {
			return 0
		}
		return int(ix.countLE[outer][cands.from-1])
	}
	return int(ix.countLE[outer][cands.from+ci-1])
}

// sweepScratch is the reusable per-worker sweep state: the bounded max-heap
// tracking the k smallest third-dimension coordinates and the admission
// bitset over inner-dimension positions. Pooled on the Index so steady-state
// serving performs no per-|S| allocation.
type sweepScratch struct {
	heap     boundedMaxHeap
	admitted []uint64 // bitset over byDim[dimA] positions
}

func (ix *Index) getScratch(k int) *sweepScratch {
	sc := ix.scratch.Get().(*sweepScratch)
	sc.heap.k = k
	if cap(sc.heap.data) < k {
		sc.heap.data = make([]float64, 0, k)
	}
	sc.heap.data = sc.heap.data[:0]
	words := (len(ix.pts) + 63) / 64
	if cap(sc.admitted) < words {
		sc.admitted = make([]uint64, words)
	}
	sc.admitted = sc.admitted[:words]
	for i := range sc.admitted {
		sc.admitted[i] = 0
	}
	return sc
}

// sweepOutcome is one worker's best corner: the squared objective, the
// outer candidate index that produced it (-1 when the worker found no
// covering corner) and the corner itself.
type sweepOutcome struct {
	best2 float64
	cand  int
	alt   geometry.Point3
}

// sweepRange runs the ADPaR-Exact inner sweep over the outer candidates of
// one worker — those with (index - start) ≡ residue (mod stride) — and
// returns the worker's best corner. shared carries the global best squared
// objective across workers.
//
// Determinism invariants (why the merged parallel result is bit-for-bit the
// sequential result):
//
//  1. A worker's local best is updated only on strict improvement, and its
//     candidates ascend, so per worker the earliest candidate achieving the
//     local minimum wins — exactly the sequential rule on that subset.
//  2. Pruning against the worker's own best uses >= (the sequential rule:
//     an equal corner can never replace the incumbent), but pruning against
//     the shared bound uses strict >, so a corner tying the global optimum
//     held by another worker is never skipped: the tie is resolved at merge
//     time by the smaller outer candidate index instead.
//  3. The globally winning corner is never pruned (its partial sums are <=
//     its objective <= every bound in play), and the heap state when it is
//     examined depends only on the admitted prefix in A-order, which is
//     worker-independent. Hence the worker owning the winning candidate
//     reproduces the sequential corner coordinates exactly.
//
// On top of the Lemma-2 pruning, the sweep skips whole candidates using the
// index's per-candidate admission minima: if every point admitted since the
// worker's last executed scan has a dimension-A relaxation outside the
// current pruning window, the candidate's corners are exactly the last
// scanned candidate's corners shifted to a strictly larger outer
// relaxation, so none of them can improve (or even tie) any bound in play
// and the rescan is skipped. pendingRA accumulates the smallest dimension-A
// relaxation admitted since the last scan — across all candidate indices,
// not just this worker's residue class, because a scan visits every
// admitted point regardless of which candidate admitted it.
//
// Executed scans iterate only admitted points: positions in byDim[dimA]
// order are activated in a bitset as candidates admit them (the position
// maps are precompiled on the index), and the scan walks set bits word by
// word. The visit order is identical to a full scan that tests and skips
// non-admitted points, so heap states and corners are unchanged.
//
//lint:allocfree
func (ix *Index) sweepRange(u geometry.Point3, k, outer, dimA, dimB int, cands outerCandList, start, residue, stride int, shared *atomicMinFloat64, sc *sweepScratch) sweepOutcome {
	ptsA := ix.byDim[dimA]
	pairData := ix.pair(outer, dimA)
	admitOrder := pairData.pos // byDim[outer] order -> byDim[dimA] position
	minA := pairData.minOther
	uOuter, uA, uB := u[outer], u[dimA], u[dimB]
	out := sweepOutcome{best2: math.Inf(1), cand: -1}
	heap := &sc.heap
	admitted := sc.admitted
	activated := 0   // points admitted into the bitset so far
	pendingRA := 0.0 // min dimension-A relaxation admitted since the last scan; 0 forces the first scan
	for ci := start; ci < cands.len(); ci++ {
		if ci > 0 {
			if ra := minA[cands.from+ci-1] - uA; ra < pendingRA {
				if ra < 0 {
					ra = 0
				}
				pendingRA = ra
			}
		}
		if (ci-start)%stride != residue {
			continue
		}
		cAbs := cands.at(ci)
		rOuter := cAbs - uOuter
		rO2 := rOuter * rOuter
		g := shared.load()
		if rO2 >= out.best2 || rO2 > g {
			break // Lemma 2: candidates ascend; no better corner remains.
		}
		if partialMin := rO2 + pendingRA*pendingRA; partialMin >= out.best2 || partialMin > g {
			continue // no newly admitted point inside the window: rescan is futile
		}
		pendingRA = math.Inf(1)
		for target := ix.admitCount(outer, cands, ci); activated < target; activated++ {
			pos := admitOrder[activated]
			admitted[pos>>6] |= 1 << (pos & 63)
		}
		heap.reset()
	scan:
		for w, word := range admitted {
			for word != 0 {
				j := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				pt := &ptsA[j]
				aAbs := pt[dimA]
				if aAbs < uA {
					aAbs = uA
				}
				rA := aAbs - uA
				partial := rO2 + rA*rA
				if partial >= out.best2 || partial > g {
					break scan // all later corners for this candidate are worse
				}
				bAbs := pt[dimB]
				if bAbs < uB {
					bAbs = uB
				}
				heap.offer(bAbs)
				if heap.size() == k {
					top := heap.top()
					rB := top - uB
					obj2 := partial + rB*rB
					if obj2 < out.best2 {
						out.best2 = obj2
						out.cand = ci
						out.alt[outer] = cAbs
						out.alt[dimA] = aAbs
						out.alt[dimB] = top
						shared.min(obj2)
						if obj2 < g {
							g = obj2
						}
					}
				}
			}
		}
	}
	return out
}

// atomicMinFloat64 is a monotonically decreasing shared float64 bound. The
// squared objective is always non-negative, so the IEEE 754 bit patterns
// order like the values and a plain compare-and-swap loop suffices.
type atomicMinFloat64 struct {
	bits atomic.Uint64
}

func (a *atomicMinFloat64) store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicMinFloat64) load() float64 { return math.Float64frombits(a.bits.Load()) }

// min lowers the bound to v if v is smaller than the current value.
func (a *atomicMinFloat64) min(v float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
