package adpar

import (
	"sort"

	"stratrec/internal/geometry"
	"stratrec/internal/strategy"
)

// This file extends ADPaR from "the single closest alternative" to the
// full Pareto frontier of alternatives: every minimal corner covering at
// least k strategies such that no other covering corner relaxes every
// parameter at most as much. A requester who dislikes the l2-closest
// suggestion (maybe their budget is harder than their deadline) can pick a
// different trade-off from the frontier; the l2 optimum returned by Exact
// is always one of its members.

// FrontierLimit caps the instance size for Frontier; the frontier can hold
// O(|S|^2) corners, each needing an O(|S|) coverage check.
const FrontierLimit = 2000

// Frontier returns the Pareto-optimal alternative deployments for (set, d):
// solutions whose relaxation vectors are pairwise non-dominated, sorted by
// ascending distance. The first element achieves the minimum distance (it
// is Exact's solution up to ties).
func Frontier(set strategy.Set, d strategy.Request) ([]Solution, error) {
	p, err := newProblem(set, d)
	if err != nil {
		return nil, err
	}
	if len(set) > FrontierLimit {
		return nil, ErrTooLarge
	}

	// Enumerate minimal covering corners: for every pair of candidate
	// values in dimensions 0 and 1, the minimal dimension-2 value covering
	// k strategies. Every Pareto-optimal corner has this form (fixing any
	// two coordinates, Pareto-optimality forces the third to its minimum).
	xs := distinctDimValues(p, 0)
	ys := distinctDimValues(p, 1)
	type corner struct {
		alt geometry.Point3
		d2  float64
	}
	var corners []corner
	// For each (x, y): admit strategies with pts[0] <= x && pts[1] <= y;
	// the minimal z is the k-th smallest pts[2] among them.
	heap := newBoundedMaxHeap(p.k)
	for _, x := range xs {
		for _, y := range ys {
			heap.reset()
			for i := range p.pts {
				if p.pts[i][0] <= x && p.pts[i][1] <= y {
					heap.offer(p.abs[i][2])
				}
			}
			if heap.size() < p.k {
				continue
			}
			z := heap.top()
			alt := geometry.Point3{x, y, z}
			corners = append(corners, corner{alt: alt, d2: alt.Dist2(p.u)})
		}
	}

	// Keep the non-dominated corners (smaller in every coordinate is
	// better). Sort by distance so the survivors come out ordered and each
	// corner only needs checking against prior survivors.
	sort.Slice(corners, func(a, b int) bool {
		if corners[a].d2 != corners[b].d2 {
			return corners[a].d2 < corners[b].d2
		}
		return lexLess(corners[a].alt, corners[b].alt)
	})
	var frontier []geometry.Point3
	for _, c := range corners {
		dominated := false
		for _, f := range frontier {
			if f.DominatedBy(c.alt) { // f <= c everywhere: c is redundant
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, c.alt)
		}
	}

	out := make([]Solution, len(frontier))
	for i, alt := range frontier {
		out[i] = p.solutionAt(alt)
	}
	return out, nil
}

func lexLess(a, b geometry.Point3) bool {
	for i := 0; i < geometry.Dims; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
