package adpar

import (
	"errors"

	"stratrec/internal/geometry"
	"stratrec/internal/strategy"
)

// This file implements ADPaRB, the exponential brute-force reference of
// Section 5.2.1: examine all strategy subsets of size k, take the tightest
// bound covering each subset (the componentwise maximum), and return the
// subset whose bound is closest to the original parameters. Also provided
// is ExhaustiveGrid, an O(|S|^4) corner-enumeration reference used by the
// property-based tests to cross-check both Exact and BruteForceK.

// BruteForceLimit caps the instance size BruteForceK accepts; beyond ~32
// strategies the C(n,k) enumeration is hopeless even with pruning.
const BruteForceLimit = 32

// ErrTooLarge is returned when the instance exceeds BruteForceLimit.
var ErrTooLarge = errors.New("adpar: instance too large for brute force")

// BruteForceK is ADPaRB. It enumerates k-subsets recursively, pruning
// branches whose partial bound is already farther than the best found.
func BruteForceK(set strategy.Set, d strategy.Request) (Solution, error) {
	p, err := newProblem(set, d)
	if err != nil {
		return Solution{}, err
	}
	n := len(p.pts)
	if n > BruteForceLimit {
		return Solution{}, ErrTooLarge
	}
	best2 := 1e308
	var bestAlt geometry.Point3
	found := false

	// Recurse over strategies in input order; alt is the bound covering the
	// chosen prefix subset.
	var recurse func(start, chosen int, alt geometry.Point3)
	recurse = func(start, chosen int, alt geometry.Point3) {
		if chosen == p.k {
			d2 := alt.Dist2(p.u)
			if !found || d2 < best2 {
				found = true
				best2 = d2
				bestAlt = alt
			}
			return
		}
		if n-start < p.k-chosen {
			return // not enough strategies left
		}
		for i := start; i < n; i++ {
			next := alt.Max(geometry.Point3{p.abs[i][0], p.abs[i][1], p.abs[i][2]})
			if next.Dist2(p.u) >= best2 && found {
				continue // pruning: bounds only grow along the branch
			}
			recurse(i+1, chosen+1, next)
		}
	}
	recurse(0, 0, p.u)
	if !found {
		return Solution{}, ErrNotEnoughStrategies
	}
	return p.solutionAt(bestAlt), nil
}

// ExhaustiveGrid enumerates every corner (x, y, z) with coordinates drawn
// from the per-dimension candidate values and returns the closest one
// covering at least k strategies. It is O(|S|^3) corners with an O(|S|)
// coverage check each — a deliberately simple exact reference for tests.
func ExhaustiveGrid(set strategy.Set, d strategy.Request) (Solution, error) {
	p, err := newProblem(set, d)
	if err != nil {
		return Solution{}, err
	}
	xs := distinctDimValues(p, 0)
	ys := distinctDimValues(p, 1)
	zs := distinctDimValues(p, 2)
	best2 := 1e308
	var bestAlt geometry.Point3
	found := false
	for _, x := range xs {
		for _, y := range ys {
			for _, z := range zs {
				alt := geometry.Point3{x, y, z}
				d2 := alt.Dist2(p.u)
				if found && d2 >= best2 {
					continue
				}
				if geometry.CoverCount(p.pts, alt) >= p.k {
					found = true
					best2 = d2
					bestAlt = alt
				}
			}
		}
	}
	if !found {
		return Solution{}, ErrNotEnoughStrategies
	}
	return p.solutionAt(bestAlt), nil
}
