package adpar

import (
	"math/rand"
	"strconv"
	"testing"

	"stratrec/internal/strategy"
)

func benchInstance(n, k int, seed int64) (strategy.Set, strategy.Request) {
	rng := rand.New(rand.NewSource(seed))
	set := make(strategy.Set, n)
	for i := range set {
		set[i] = strategy.Strategy{ID: i, Params: strategy.Params{
			Quality: 0.5 * rng.Float64(),
			Cost:    0.5 + 0.5*rng.Float64(),
			Latency: 0.5 + 0.5*rng.Float64(),
		}}
	}
	d := strategy.Request{
		ID:     "bench",
		Params: strategy.Params{Quality: 0.6 + 0.3*rng.Float64(), Cost: 0.3 * rng.Float64(), Latency: 0.3 * rng.Float64()},
		K:      k,
	}
	return set, d
}

func BenchmarkExact(b *testing.B) {
	for _, size := range []struct{ n, k int }{{100, 5}, {1000, 10}, {10000, 50}} {
		set, d := benchInstance(size.n, size.k, int64(size.n))
		b.Run(byNK(size.n, size.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Exact(set, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBaseline2(b *testing.B) {
	set, d := benchInstance(1000, 10, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Baseline2(set, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaseline3(b *testing.B) {
	set, d := benchInstance(1000, 10, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Baseline3(set, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteForceK(b *testing.B) {
	set, d := benchInstance(20, 5, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BruteForceK(set, d); err != nil {
			b.Fatal(err)
		}
	}
}

func byNK(n, k int) string {
	return "n=" + strconv.Itoa(n) + "/k=" + strconv.Itoa(k)
}
