package adpar

import (
	"math"
	"sort"

	"stratrec/internal/geometry"
	"stratrec/internal/rtree"
	"stratrec/internal/strategy"
)

// This file implements the two non-exact baselines of Section 5.2.1.

// Baseline2 is the query-refinement-inspired baseline (Mishra et al.): it
// modifies the original deployment request one parameter at a time and is
// not optimization driven.
//
// Phase 1 tries each dimension alone: the smallest relaxation of that single
// dimension that reaches k covered strategies (strategies needing any other
// dimension relaxed cannot be covered this way). If one or more dimensions
// succeed, the cheapest such single-dimension alternative is returned.
//
// Phase 2 (when no single dimension suffices) relaxes dimensions round-robin
// — quality, cost, latency, quality, ... — each step advancing the current
// bound of one dimension to the next distinct strategy coordinate, until k
// strategies are covered. The myopic order, not the distance, drives the
// search, which is exactly why the baseline trails ADPaR-Exact in Figure 17.
func Baseline2(set strategy.Set, d strategy.Request) (Solution, error) {
	p, err := newProblem(set, d)
	if err != nil {
		return Solution{}, err
	}
	n := len(p.pts)

	// Phase 1: single-dimension relaxation.
	best2 := math.Inf(1)
	var bestAlt geometry.Point3
	found := false
	for dim := 0; dim < geometry.Dims; dim++ {
		oa, ob := otherDims(dim)
		// Strategies coverable by relaxing dim alone: zero relaxation in
		// the two other dimensions.
		var vals []float64
		for i := 0; i < n; i++ {
			if p.relax(i, oa) == 0 && p.relax(i, ob) == 0 {
				vals = append(vals, p.abs[i][dim])
			}
		}
		if len(vals) < p.k {
			continue
		}
		sort.Float64s(vals)
		v := vals[p.k-1] // k-th smallest coordinate reaches k strategies
		alt := p.u
		alt[dim] = v
		if d2 := alt.Dist2(p.u); !found || d2 < best2 {
			found, best2, bestAlt = true, d2, alt
		}
	}
	if found {
		return p.solutionAt(bestAlt), nil
	}

	// Phase 2: myopic round-robin relaxation.
	sorted := make([][]float64, geometry.Dims)
	for dim := range sorted {
		sorted[dim] = distinctDimValues(p, dim)
	}
	cursor := [geometry.Dims]int{} // index into sorted[dim] of the current bound
	alt := p.u
	for steps := 0; ; steps++ {
		if geometry.CoverCount(p.pts, alt) >= p.k {
			return p.solutionAt(alt), nil
		}
		advanced := false
		dim := steps % geometry.Dims
		// Try the scheduled dimension first, then the others, so a maxed-out
		// dimension does not stall the rotation.
		for off := 0; off < geometry.Dims; off++ {
			dd := (dim + off) % geometry.Dims
			if cursor[dd]+1 < len(sorted[dd]) {
				cursor[dd]++
				alt[dd] = sorted[dd][cursor[dd]]
				advanced = true
				break
			}
		}
		if !advanced {
			// Every dimension fully relaxed: covers all n >= k strategies.
			return p.solutionAt(alt), nil
		}
	}
}

// Baseline3 indexes the strategy points with an R-tree and scans node
// minimum bounding boxes: if some MBB holds exactly k strategies its
// top-right corner becomes the alternative; otherwise the best corner of an
// MBB holding at least k is used (Section 5.2.1). The corner is lifted to
// max(corner, d) so the alternative never tightens the original bounds.
func Baseline3(set strategy.Set, d strategy.Request) (Solution, error) {
	p, err := newProblem(set, d)
	if err != nil {
		return Solution{}, err
	}
	tree := rtree.BulkLoadPoints(p.pts)

	bestExact, bestOver := math.Inf(1), math.Inf(1)
	var altExact, altOver geometry.Point3
	haveExact, haveOver := false, false
	tree.Nodes(func(info rtree.NodeInfo) bool {
		corner := info.MBB.Hi.Max(p.u)
		d2 := corner.Dist2(p.u)
		switch {
		case info.Count == p.k:
			if !haveExact || d2 < bestExact {
				haveExact, bestExact, altExact = true, d2, corner
			}
		case info.Count > p.k:
			if !haveOver || d2 < bestOver {
				haveOver, bestOver, altOver = true, d2, corner
			}
		}
		return true
	})
	switch {
	case haveExact:
		return p.solutionAt(altExact), nil
	case haveOver:
		return p.solutionAt(altOver), nil
	}
	// Unreachable: the root MBB holds all n >= k strategies.
	return Solution{}, ErrNotEnoughStrategies
}
