package adpar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stratrec/internal/geometry"
	"stratrec/internal/strategy"
)

// TestExactWithOuterDimValidation covers the explicit-dimension entry
// point's input checking.
func TestExactWithOuterDimValidation(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	d := strategy.PaperExampleRequests()[0]
	if _, err := ExactWithOuterDim(set, d, -1); err == nil {
		t.Error("negative dimension accepted")
	}
	if _, err := ExactWithOuterDim(set, d, 3); err == nil {
		t.Error("dimension 3 accepted")
	}
	if _, err := ExactWithOuterDim(set, strategy.Request{Params: d.Params, K: 0}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestPropertyOuterDimChoiceIsExact: ADPaR-Exact returns the same optimal
// distance regardless of which dimension drives the outer sweep — the
// fewest-distinct-values heuristic is a performance choice, not a
// correctness one.
func TestPropertyOuterDimChoiceIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	f := func() bool {
		set, d := randomInstance(rng, 20)
		base, err := Exact(set, d)
		if err != nil {
			return false
		}
		for dim := 0; dim < geometry.Dims; dim++ {
			sol, err := ExactWithOuterDim(set, d, dim)
			if err != nil {
				return false
			}
			if math.Abs(sol.Distance-base.Distance) > 1e-9 {
				return false
			}
			if len(sol.Covered) < d.K {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// BenchmarkAblationOuterDim quantifies the outer-dimension choice the
// DESIGN.md ablation index calls out: duplicate-heavy dimensions make the
// heuristic pick the dimension with fewest distinct candidate values, which
// shrinks the outer loop. The workload plants heavy duplication in the
// latency dimension.
func BenchmarkAblationOuterDim(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 5000
	set := make(strategy.Set, n)
	latencies := []float64{0.2, 0.4, 0.6, 0.8} // 4 distinct values only
	for i := range set {
		set[i] = strategy.Strategy{ID: i, Params: strategy.Params{
			Quality: rng.Float64() * 0.5,
			Cost:    0.5 + 0.5*rng.Float64(),
			Latency: latencies[rng.Intn(len(latencies))],
		}}
	}
	d := strategy.Request{
		ID:     "bench",
		Params: strategy.Params{Quality: 0.9, Cost: 0.1, Latency: 0.1},
		K:      25,
	}
	b.Run("heuristic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Exact(set, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	for dim := 0; dim < geometry.Dims; dim++ {
		b.Run("outer="+geometry.DimNames[dim], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ExactWithOuterDim(set, d, dim); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
