package adpar

import (
	"sort"

	"stratrec/internal/geometry"
	"stratrec/internal/strategy"
)

// This file reconstructs the intermediate state the paper walks through in
// Tables 2-5 while explaining ADPaR-Exact on the running example: the
// per-parameter relaxation values (step 1 / Table 3), the globally sorted
// relaxation list R with its strategy-index list I and parameter list D
// (step 2 / Table 4), the three per-dimension sweep-line orders (step 3 /
// Table 5), and the boolean coverage matrix M (Table 2).
//
// Note (documented in DESIGN.md): the paper's printed Table 3 swaps the
// Cost and Quality columns relative to the Table 1 inputs, and Table 2
// shows a partially updated matrix; Trace reproduces the corrected values.

// RelaxEntry is one element of the sorted relaxation list: R[j] is the
// value, I[j] the strategy index, D[j] the parameter dimension.
type RelaxEntry struct {
	Value    float64 // relaxation amount R[j]
	Strategy int     // strategy index I[j] (0-based)
	Dim      int     // parameter D[j]: 0 quality, 1 cost, 2 latency
}

// SweepEntry is one strategy's position on a sweep line: the strategy index
// and its coordinates in the two orthogonal dimensions.
type SweepEntry struct {
	Strategy int
	Relax    float64    // relaxation in the sweep dimension
	Other    [2]float64 // raw coordinates in the other two dims
	OtherDim [2]int     // which dims Other refers to
}

// Trace is the full intermediate state of ADPaR-Exact on one instance.
type Trace struct {
	// Relax is the step-1 relaxation matrix: Relax[i][dim] is how far the
	// deployment bound must move in dim to cover strategy i (Table 3).
	Relax [][geometry.Dims]float64
	// R is the step-2 sorted relaxation list with strategy and parameter
	// bookkeeping (Table 4).
	R []RelaxEntry
	// Sweeps holds the step-3 sweep-line orders: Sweeps[dim] lists
	// strategies in ascending relaxation of dim, with their raw coordinates
	// on the orthogonal plane (Table 5).
	Sweeps [geometry.Dims][]SweepEntry
	// MInitial is the matrix M right after initialization: entries are true
	// where the corresponding relaxation is zero, i.e. the parameter is
	// already covered by the original bounds (Table 2).
	MInitial [][geometry.Dims]bool
	// MFinal is M at termination: entries are true where the parameter is
	// covered by the returned alternative d'.
	MFinal [][geometry.Dims]bool
	// Solution is the exact solution the sweep terminates with.
	Solution Solution
}

// BuildTrace runs ADPaR-Exact on (set, d) and reconstructs the worked
// example state of Tables 2-5.
func BuildTrace(set strategy.Set, d strategy.Request) (Trace, error) {
	p, err := newProblem(set, d)
	if err != nil {
		return Trace{}, err
	}
	sol, err := Exact(set, d)
	if err != nil {
		return Trace{}, err
	}
	n := len(p.pts)
	tr := Trace{Solution: sol}

	tr.Relax = make([][geometry.Dims]float64, n)
	tr.MInitial = make([][geometry.Dims]bool, n)
	tr.MFinal = make([][geometry.Dims]bool, n)
	altPoint := keyPoint(sol.Alternative)
	for i := 0; i < n; i++ {
		for dim := 0; dim < geometry.Dims; dim++ {
			tr.Relax[i][dim] = p.relax(i, dim)
			tr.MInitial[i][dim] = tr.Relax[i][dim] == 0
			tr.MFinal[i][dim] = p.pts[i][dim] <= altPoint[dim]
		}
	}

	tr.R = make([]RelaxEntry, 0, n*geometry.Dims)
	for i := 0; i < n; i++ {
		for dim := 0; dim < geometry.Dims; dim++ {
			tr.R = append(tr.R, RelaxEntry{Value: tr.Relax[i][dim], Strategy: i, Dim: dim})
		}
	}
	sort.SliceStable(tr.R, func(a, b int) bool { return tr.R[a].Value < tr.R[b].Value })

	for dim := 0; dim < geometry.Dims; dim++ {
		oa, ob := otherDims(dim)
		entries := make([]SweepEntry, n)
		for i := 0; i < n; i++ {
			entries[i] = SweepEntry{
				Strategy: i,
				Relax:    tr.Relax[i][dim],
				Other:    [2]float64{displayValue(oa, p.pts[i][oa]), displayValue(ob, p.pts[i][ob])},
				OtherDim: [2]int{oa, ob},
			}
		}
		sort.SliceStable(entries, func(a, b int) bool { return entries[a].Relax < entries[b].Relax })
		tr.Sweeps[dim] = entries
	}
	return tr, nil
}

// displayValue converts a key-space coordinate back to the original
// parameter value (quality is negated in the key space).
func displayValue(dim int, v float64) float64 {
	if dim == 0 {
		return -v
	}
	return v
}
