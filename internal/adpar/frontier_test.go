package adpar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stratrec/internal/strategy"
)

func TestFrontierPaperExampleD2(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	d := strategy.PaperExampleRequests()[1] // d2, k=3
	frontier, err := Frontier(set, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	// The first member is the l2 optimum (0.75, 0.58, 0.28).
	first := frontier[0]
	if math.Abs(first.Alternative.Quality-0.75) > 1e-9 ||
		math.Abs(first.Alternative.Cost-0.58) > 1e-9 ||
		math.Abs(first.Alternative.Latency-0.28) > 1e-9 {
		t.Errorf("frontier[0] = %+v", first.Alternative)
	}
	// Another legitimate trade-off covers {s1, s2, s3} by paying more
	// quality relaxation but less cost: (0.5, 0.5, 0.28).
	foundCheapQuality := false
	for _, sol := range frontier {
		if math.Abs(sol.Alternative.Quality-0.5) < 1e-9 && math.Abs(sol.Alternative.Cost-0.5) < 1e-9 {
			foundCheapQuality = true
		}
	}
	if !foundCheapQuality {
		t.Errorf("frontier misses the (0.5, 0.5, 0.28) trade-off: %+v", frontier)
	}
}

func TestFrontierValidation(t *testing.T) {
	set := strategy.PaperExampleStrategies()
	if _, err := Frontier(set, strategy.Request{Params: set[0].Params, K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	big := make(strategy.Set, FrontierLimit+1)
	for i := range big {
		big[i] = strategy.Strategy{ID: i, Params: strategy.Params{Quality: 0.5, Cost: 0.5, Latency: 0.5}}
	}
	if _, err := Frontier(big, strategy.Request{Params: strategy.Params{Quality: 0.5, Cost: 0.5, Latency: 0.5}, K: 1}); err == nil {
		t.Error("oversized instance accepted")
	}
}

func TestPropertyFrontierSound(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	f := func() bool {
		set, d := randomInstance(rng, 15)
		frontier, err := Frontier(set, d)
		if err != nil || len(frontier) == 0 {
			return false
		}
		exact, err := Exact(set, d)
		if err != nil {
			return false
		}
		// Sorted by distance; head equals the exact optimum.
		if math.Abs(frontier[0].Distance-exact.Distance) > 1e-9 {
			return false
		}
		for i := 1; i < len(frontier); i++ {
			if frontier[i].Distance < frontier[i-1].Distance-1e-12 {
				return false
			}
		}
		// Every member covers >= k and is feasible.
		for _, sol := range frontier {
			if len(sol.Covered) < d.K {
				return false
			}
			for _, id := range sol.Covered {
				if !strategy.Satisfies(set[id].Params, sol.Alternative) {
					return false
				}
			}
		}
		// Pairwise non-dominated in relaxation space: no member's
		// alternative is at least as tight as another's in every
		// parameter.
		for i := range frontier {
			for j := range frontier {
				if i == j {
					continue
				}
				a, b := frontier[i].Alternative, frontier[j].Alternative
				if a.Quality >= b.Quality && a.Cost <= b.Cost && a.Latency <= b.Latency &&
					(a.Quality > b.Quality || a.Cost < b.Cost || a.Latency < b.Latency) {
					return false // a strictly dominates b: b shouldn't be here
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFrontierCoversAllTradeoffs(t *testing.T) {
	// Completeness: every k-subset's tightest covering corner is dominated
	// by (or equal to) some frontier member.
	rng := rand.New(rand.NewSource(132))
	f := func() bool {
		set, d := randomInstance(rng, 10)
		frontier, err := Frontier(set, d)
		if err != nil {
			return false
		}
		// Random k-subsets as probes.
		n := len(set)
		for probe := 0; probe < 10; probe++ {
			perm := rng.Perm(n)[:d.K]
			// Tightest corner covering this subset.
			alt := d.Params
			for _, i := range perm {
				s := set[i].Params
				alt.Quality = math.Min(alt.Quality, s.Quality)
				alt.Cost = math.Max(alt.Cost, s.Cost)
				alt.Latency = math.Max(alt.Latency, s.Latency)
			}
			dominated := false
			for _, sol := range frontier {
				f := sol.Alternative
				if f.Quality >= alt.Quality && f.Cost <= alt.Cost && f.Latency <= alt.Latency {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
