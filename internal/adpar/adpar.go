// Package adpar implements the Alternative Parameter Recommendation problem
// of Section 4: given a deployment request d that cannot be served k
// strategies, find the alternative parameters d' minimizing the Euclidean
// distance to d such that at least k strategies satisfy d' (Equation 3).
//
// Four solvers are provided, matching Section 5.2.1:
//
//   - Exact — the paper's ADPaR-Exact: a discretized sweep-line algorithm
//     over the relaxation values of the three parameters, exact, with
//     monotone pruning (Lemmas 1-2, Theorem 4).
//   - BruteForceK — ADPaRB, the exponential k-subset enumeration.
//   - Baseline2 — relaxes one parameter at a time (Mishra et al. inspired).
//   - Baseline3 — scans R-tree minimum bounding boxes for one holding k
//     strategies.
//
// All solvers operate in a smaller-is-better coordinate space: quality is
// negated so every deployment threshold is an upper bound and a strategy is
// covered iff its point is dominated by the alternative's point. Negation
// (unlike the paper's 1-quality inversion) is exact in floating point, so
// coverage decisions in the solver agree bit-for-bit with the
// strategy.Satisfies predicate on the returned alternative.
package adpar

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"stratrec/internal/geometry"
	"stratrec/internal/strategy"
)

// ErrNotEnoughStrategies is returned when |S| < k: no alternative can cover
// k strategies.
var ErrNotEnoughStrategies = errors.New("adpar: fewer strategies than the cardinality constraint k")

// ErrBadK is returned for k < 1.
var ErrBadK = errors.New("adpar: cardinality constraint k must be at least 1")

// Solution is an alternative deployment recommendation.
type Solution struct {
	// Alternative is the recommended d' in original parameter space
	// (quality back to higher-is-better).
	Alternative strategy.Params
	// Covered lists the IDs of every strategy satisfying d', ascending. It
	// always has at least k elements.
	Covered []int
	// Distance is the l2 distance between d and d' in the normalized space
	// — the objective value of Equation 3.
	Distance float64
}

// Strategies returns the first k covered strategies (the recommendation
// set S_d').
func (s Solution) Strategies(k int) []int {
	if k > len(s.Covered) {
		k = len(s.Covered)
	}
	return s.Covered[:k]
}

// keyPoint maps parameters into the solver's smaller-is-better space:
// (-quality, cost, latency). Negation is a sign-bit flip, exact in IEEE 754,
// so the inverse mapping loses nothing.
func keyPoint(p strategy.Params) geometry.Point3 {
	return geometry.Point3{-p.Quality, p.Cost, p.Latency}
}

// keyParams is the exact inverse of keyPoint.
func keyParams(pt geometry.Point3) strategy.Params {
	return strategy.Params{Quality: -pt[0], Cost: pt[1], Latency: pt[2]}
}

// problem is the shared normalized view all solvers work on.
type problem struct {
	u   geometry.Point3   // deployment bound in the key space
	pts []geometry.Point3 // strategy points in the key space
	// abs[i][dim] = max(u[dim], pts[i][dim]) — the candidate coordinate
	// dimension dim takes if strategy i must be covered. Working with
	// absolute coordinates (rather than relaxation deltas) keeps float
	// comparisons exact: the final alternative's coordinates are exactly
	// strategy coordinates or the original bounds.
	abs [][3]float64
	k   int
}

func newProblem(set strategy.Set, d strategy.Request) (*problem, error) {
	if d.K < 1 {
		return nil, ErrBadK
	}
	if len(set) < d.K {
		return nil, fmt.Errorf("%w: |S|=%d, k=%d", ErrNotEnoughStrategies, len(set), d.K)
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if err := d.Params.Validate(); err != nil {
		return nil, err
	}
	p := &problem{u: keyPoint(d.Params), k: d.K}
	p.pts = make([]geometry.Point3, len(set))
	p.abs = make([][3]float64, len(set))
	for i, s := range set {
		pt := keyPoint(s.Params)
		p.pts[i] = pt
		for dim := 0; dim < geometry.Dims; dim++ {
			p.abs[i][dim] = math.Max(p.u[dim], pt[dim])
		}
	}
	return p, nil
}

// relax returns the relaxation of strategy i in dimension dim: how far the
// bound must move to cover that strategy in that dimension (step 1 of
// ADPaR-Exact).
func (p *problem) relax(i, dim int) float64 { return p.abs[i][dim] - p.u[dim] }

// solutionAt materializes the Solution for alternative bound alt. Because
// the key-space mapping is exact, every strategy point dominated by alt
// satisfies the converted alternative parameters bit-for-bit.
func (p *problem) solutionAt(alt geometry.Point3) Solution {
	return Solution{
		Alternative: keyParams(alt),
		Covered:     geometry.Covered(p.pts, alt),
		Distance:    alt.Dist(p.u),
	}
}

// Exact is ADPaR-Exact. It sweeps the candidate relaxations of one
// dimension in ascending order (the dimension with the fewest distinct
// values, for speed; any choice is exact); for every outer candidate it
// runs an exact 2-D sweep on the remaining dimensions, maintaining the k
// smallest third-dimension coordinates in a max-heap. Every minimal
// covering corner is enumerated, so the returned alternative is optimal
// (Theorem 4). Worst case O(|S|^2 log k); the monotone pruning of Lemma 2
// (candidates are visited in non-decreasing per-dimension relaxation order)
// usually terminates the sweeps far earlier.
//
// Exact is a thin wrapper over the amortized serving engine: it compiles a
// one-shot Index and solves against it. Callers answering many requests
// over the same strategy set should build the Index themselves with
// NewIndex and reuse it, which skips the per-call compilation entirely.
func Exact(set strategy.Set, d strategy.Request) (Solution, error) {
	ix, err := NewIndex(set)
	if err != nil {
		return Solution{}, err
	}
	return ix.Solve(d)
}

// ExactWithOuterDim runs ADPaR-Exact with a fixed outer sweep dimension (0
// quality, 1 cost, 2 latency). Any choice is exact; the ablation benchmarks
// use this to quantify the fewest-distinct-values heuristic Exact applies.
func ExactWithOuterDim(set strategy.Set, d strategy.Request, outer int) (Solution, error) {
	if outer < 0 || outer >= geometry.Dims {
		return Solution{}, fmt.Errorf("adpar: outer dimension %d outside [0,%d)", outer, geometry.Dims)
	}
	ix, err := NewIndex(set)
	if err != nil {
		return Solution{}, err
	}
	return ix.SolveWithOuterDim(d, outer)
}

// exactWithOuter is the original single-pass sweep Exact was built on. It is
// retained verbatim as the reference oracle: the Index equivalence tests
// replay randomized instances through it and require Index.Solve (sequential
// and parallel) to reproduce its solutions bit for bit.
func exactWithOuter(p *problem, outer int, outerCands []float64) (Solution, error) {
	n := len(p.pts)
	dimA, dimB := otherDims(outer)

	// Pre-sort strategies by the inner sweep dimension A.
	orderA := make([]int, n)
	for i := range orderA {
		orderA[i] = i
	}
	sort.Slice(orderA, func(x, y int) bool {
		return p.abs[orderA[x]][dimA] < p.abs[orderA[y]][dimA]
	})

	best2 := math.Inf(1)
	var bestAlt geometry.Point3
	heap := newBoundedMaxHeap(p.k)

	for _, cAbs := range outerCands {
		rOuter := cAbs - p.u[outer]
		if rOuter*rOuter >= best2 {
			break // Lemma 2: outer candidates ascend; no better corner remains.
		}
		heap.reset()
		for _, i := range orderA {
			if p.abs[i][outer] > cAbs {
				continue // not admitted at this outer relaxation
			}
			aAbs := p.abs[i][dimA]
			rA := aAbs - p.u[dimA]
			if rOuter*rOuter+rA*rA >= best2 {
				break // all later corners for this outer candidate are worse
			}
			heap.offer(p.abs[i][dimB])
			if heap.size() == p.k {
				bAbs := heap.top()
				rB := bAbs - p.u[dimB]
				obj2 := rOuter*rOuter + rA*rA + rB*rB
				if obj2 < best2 {
					best2 = obj2
					bestAlt[outer] = cAbs
					bestAlt[dimA] = aAbs
					bestAlt[dimB] = bAbs
				}
			}
		}
	}
	if math.IsInf(best2, 1) {
		// Unreachable when |S| >= k: the all-max corner always covers k.
		return Solution{}, fmt.Errorf("adpar: internal error: no covering corner found")
	}
	return p.solutionAt(bestAlt), nil
}

// distinctDimValues returns the sorted distinct absolute candidate values of
// one dimension, always including the original bound (zero relaxation).
func distinctDimValues(p *problem, dim int) []float64 {
	vals := make([]float64, 0, len(p.abs)+1)
	vals = append(vals, p.u[dim])
	for i := range p.abs {
		vals = append(vals, p.abs[i][dim])
	}
	sort.Float64s(vals)
	out := vals[:1]
	for _, v := range vals[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func otherDims(dim int) (int, int) {
	switch dim {
	case 0:
		return 1, 2
	case 1:
		return 0, 2
	default:
		return 0, 1
	}
}

// boundedMaxHeap keeps the k smallest values offered, largest on top.
type boundedMaxHeap struct {
	k    int
	data []float64
}

func newBoundedMaxHeap(k int) *boundedMaxHeap {
	return &boundedMaxHeap{k: k, data: make([]float64, 0, k)}
}

func (h *boundedMaxHeap) reset()       { h.data = h.data[:0] }
func (h *boundedMaxHeap) size() int    { return len(h.data) }
func (h *boundedMaxHeap) top() float64 { return h.data[0] }

// offer inserts v if it belongs among the k smallest seen since reset.
func (h *boundedMaxHeap) offer(v float64) {
	if len(h.data) < h.k {
		h.data = append(h.data, v)
		h.up(len(h.data) - 1)
		return
	}
	if v >= h.data[0] {
		return
	}
	h.data[0] = v
	h.down(0)
}

func (h *boundedMaxHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.data[parent] >= h.data[i] {
			return
		}
		h.data[parent], h.data[i] = h.data[i], h.data[parent]
		i = parent
	}
}

func (h *boundedMaxHeap) down(i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.data[l] > h.data[largest] {
			largest = l
		}
		if r < n && h.data[r] > h.data[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h.data[i], h.data[largest] = h.data[largest], h.data[i]
		i = largest
	}
}
