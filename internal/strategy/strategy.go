// Package strategy implements the data model of Section 2.1 of the paper:
// deployment strategies (Structure x Organization x Style), their normalized
// quality/cost/latency parameters, deployment requests with threshold
// parameters, and the satisfaction predicate connecting the two.
package strategy

import (
	"errors"
	"fmt"

	"stratrec/internal/geometry"
)

// Structure says whether the workforce is solicited sequentially or
// simultaneously.
type Structure uint8

// Organization says whether workers are organized independently or
// collaboratively.
type Organization uint8

// Style says whether the task relies on the crowd alone or on a hybrid of
// crowd and machine algorithms.
type Style uint8

const (
	Sequential Structure = iota
	Simultaneous
)

const (
	Independent Organization = iota
	Collaborative
)

const (
	CrowdOnly Style = iota
	Hybrid
)

func (s Structure) String() string {
	switch s {
	case Sequential:
		return "SEQ"
	case Simultaneous:
		return "SIM"
	}
	return fmt.Sprintf("Structure(%d)", uint8(s))
}

func (o Organization) String() string {
	switch o {
	case Independent:
		return "IND"
	case Collaborative:
		return "COL"
	}
	return fmt.Sprintf("Organization(%d)", uint8(o))
}

func (s Style) String() string {
	switch s {
	case CrowdOnly:
		return "CRO"
	case Hybrid:
		return "HYB"
	}
	return fmt.Sprintf("Style(%d)", uint8(s))
}

// Dimensions is one (Structure, Organization, Style) combination — the paper
// calls the number of unique combinations v.
type Dimensions struct {
	Structure    Structure
	Organization Organization
	Style        Style
}

// String renders the combination in the paper's SEQ-IND-CRO notation.
func (d Dimensions) String() string {
	return fmt.Sprintf("%v-%v-%v", d.Structure, d.Organization, d.Style)
}

// AllDimensions enumerates the v = 2*2*2 = 8 unique dimension combinations in
// a deterministic order.
func AllDimensions() []Dimensions {
	var all []Dimensions
	for _, st := range []Structure{Sequential, Simultaneous} {
		for _, org := range []Organization{Independent, Collaborative} {
			for _, sty := range []Style{CrowdOnly, Hybrid} {
				all = append(all, Dimensions{st, org, sty})
			}
		}
	}
	return all
}

// Params is a normalized (quality, cost, latency) triple. All three values
// live in [0,1]. Quality is higher-is-better; cost and latency are
// lower-is-better.
type Params struct {
	Quality float64 `json:"quality"`
	Cost    float64 `json:"cost"`
	Latency float64 `json:"latency"`
}

// ErrBadParam is wrapped by every parameter-validation failure, letting
// API layers classify client input errors with errors.Is instead of
// matching message text.
var ErrBadParam = errors.New("strategy: parameter outside [0,1]")

// ErrBadCardinality is wrapped by every cardinality-validation failure.
var ErrBadCardinality = errors.New("strategy: non-positive cardinality")

// Validate checks that every parameter is inside [0,1].
func (p Params) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 || v != v { // v != v catches NaN
			return fmt.Errorf("%w: %s parameter %v", ErrBadParam, name, v)
		}
		return nil
	}
	if err := check("quality", p.Quality); err != nil {
		return err
	}
	if err := check("cost", p.Cost); err != nil {
		return err
	}
	return check("latency", p.Latency)
}

// Point maps the parameters into the smaller-is-better geometric space of
// Section 4: (1 - quality, cost, latency).
func (p Params) Point() geometry.Point3 {
	return geometry.Point3{1 - p.Quality, p.Cost, p.Latency}
}

// ParamsFromPoint is the inverse of Params.Point.
func ParamsFromPoint(pt geometry.Point3) Params {
	return Params{Quality: 1 - pt[0], Cost: pt[1], Latency: pt[2]}
}

// Strategy is a deployment strategy: a dimension combination plus the
// parameters it is estimated to achieve for the deployment under
// consideration. ID is the index of the strategy in its Set.
type Strategy struct {
	ID   int        `json:"id"`
	Name string     `json:"name"`
	Dims Dimensions `json:"dims"`
	Params
}

// String renders "s3 SIM-IND-CRO q=0.80 c=0.50 l=0.14".
func (s Strategy) String() string {
	name := s.Name
	if name == "" {
		name = fmt.Sprintf("s%d", s.ID+1)
	}
	return fmt.Sprintf("%s %v q=%.2f c=%.2f l=%.2f", name, s.Dims, s.Quality, s.Cost, s.Latency)
}

// Request is a deployment request: threshold parameters the requester
// desires (Quality is a lower bound, Cost and Latency are upper bounds) and
// the number K of strategies to recommend.
type Request struct {
	ID string `json:"id"`
	Params
	K int `json:"k"`
}

// Validate checks the thresholds and cardinality constraint.
func (r Request) Validate() error {
	if err := r.Params.Validate(); err != nil {
		return err
	}
	if r.K < 1 {
		return fmt.Errorf("%w: request %q has k=%d", ErrBadCardinality, r.ID, r.K)
	}
	return nil
}

// Satisfies reports whether strategy parameters s meet the request
// thresholds d: s.quality >= d.quality, s.cost <= d.cost and
// s.latency <= d.latency (Section 2.1).
func Satisfies(s Params, d Params) bool {
	return s.Quality >= d.Quality && s.Cost <= d.Cost && s.Latency <= d.Latency
}

// Set is an ordered collection of strategies. The order defines strategy IDs.
type Set []Strategy

// ErrEmptySet is returned by operations that need at least one strategy.
var ErrEmptySet = errors.New("strategy: empty strategy set")

// Validate checks every member and that IDs match positions.
func (set Set) Validate() error {
	if len(set) == 0 {
		return ErrEmptySet
	}
	for i, s := range set {
		if s.ID != i {
			return fmt.Errorf("strategy: strategy at position %d has ID %d", i, s.ID)
		}
		if err := s.Params.Validate(); err != nil {
			return fmt.Errorf("strategy %d: %w", i, err)
		}
	}
	return nil
}

// Points maps every strategy into the smaller-is-better space, preserving
// order.
func (set Set) Points() []geometry.Point3 {
	pts := make([]geometry.Point3, len(set))
	for i, s := range set {
		pts[i] = s.Params.Point()
	}
	return pts
}

// Satisfying returns the IDs of all strategies satisfying request d, in set
// order.
func (set Set) Satisfying(d Request) []int {
	var ids []int
	for _, s := range set {
		if Satisfies(s.Params, d.Params) {
			ids = append(ids, s.ID)
		}
	}
	return ids
}

// Renumber returns a copy of the set with IDs rewritten to positions.
func (set Set) Renumber() Set {
	out := make(Set, len(set))
	copy(out, set)
	for i := range out {
		out[i].ID = i
	}
	return out
}
