package strategy

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDimensionStrings(t *testing.T) {
	d := Dimensions{Sequential, Independent, CrowdOnly}
	if got := d.String(); got != "SEQ-IND-CRO" {
		t.Errorf("String = %q", got)
	}
	d = Dimensions{Simultaneous, Collaborative, Hybrid}
	if got := d.String(); got != "SIM-COL-HYB" {
		t.Errorf("String = %q", got)
	}
}

func TestUnknownEnumStrings(t *testing.T) {
	if got := Structure(9).String(); !strings.Contains(got, "9") {
		t.Errorf("Structure(9) = %q", got)
	}
	if got := Organization(9).String(); !strings.Contains(got, "9") {
		t.Errorf("Organization(9) = %q", got)
	}
	if got := Style(9).String(); !strings.Contains(got, "9") {
		t.Errorf("Style(9) = %q", got)
	}
}

func TestAllDimensions(t *testing.T) {
	all := AllDimensions()
	if len(all) != 8 {
		t.Fatalf("len(AllDimensions) = %d, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, d := range all {
		if seen[d.String()] {
			t.Errorf("duplicate combination %v", d)
		}
		seen[d.String()] = true
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{Quality: 0.5, Cost: 0, Latency: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Quality: -0.1, Cost: 0.5, Latency: 0.5},
		{Quality: 0.5, Cost: 1.1, Latency: 0.5},
		{Quality: 0.5, Cost: 0.5, Latency: math.NaN()},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid params %+v accepted", p)
		}
	}
}

func TestPointRoundTrip(t *testing.T) {
	p := Params{Quality: 0.8, Cost: 0.2, Latency: 0.28}
	pt := p.Point()
	if math.Abs(pt[0]-0.2) > 1e-12 || pt[1] != 0.2 || pt[2] != 0.28 {
		t.Errorf("Point = %v", pt)
	}
	back := ParamsFromPoint(pt)
	if back != p {
		t.Errorf("round trip %+v != %+v", back, p)
	}
}

func TestSatisfies(t *testing.T) {
	d := Params{Quality: 0.7, Cost: 0.83, Latency: 0.28}
	cases := []struct {
		s    Params
		want bool
	}{
		{Params{Quality: 0.75, Cost: 0.33, Latency: 0.28}, true}, // s2 vs d3
		{Params{Quality: 0.5, Cost: 0.25, Latency: 0.28}, false}, // s1: quality too low
		{Params{Quality: 0.88, Cost: 0.58, Latency: 0.14}, true}, // s4
		{Params{Quality: 0.9, Cost: 0.9, Latency: 0.28}, false},  // cost too high
		{Params{Quality: 0.9, Cost: 0.5, Latency: 0.29}, false},  // latency too high
		{Params{Quality: 0.7, Cost: 0.83, Latency: 0.28}, true},  // boundary equality
	}
	for _, c := range cases {
		if got := Satisfies(c.s, d); got != c.want {
			t.Errorf("Satisfies(%+v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestPaperExampleSatisfaction(t *testing.T) {
	// Section 2.2: d3 is successful with S = {s2, s3, s4}; d1 and d2 have
	// no satisfying strategy at all.
	set := PaperExampleStrategies()
	reqs := PaperExampleRequests()

	if got := set.Satisfying(reqs[2]); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("d3 satisfying = %v, want [1 2 3]", got)
	}
	if got := set.Satisfying(reqs[0]); len(got) != 0 {
		t.Errorf("d1 satisfying = %v, want none", got)
	}
	if got := set.Satisfying(reqs[1]); len(got) != 0 {
		t.Errorf("d2 satisfying = %v, want none", got)
	}
}

func TestRequestValidate(t *testing.T) {
	r := Request{ID: "d", Params: Params{Quality: 0.5, Cost: 0.5, Latency: 0.5}, K: 3}
	if err := r.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	r.K = 0
	if err := r.Validate(); err == nil {
		t.Error("k=0 accepted")
	}
	r.K = 1
	r.Quality = 2
	if err := r.Validate(); err == nil {
		t.Error("out-of-range quality accepted")
	}
}

func TestSetValidate(t *testing.T) {
	if err := (Set{}).Validate(); err == nil {
		t.Error("empty set accepted")
	}
	set := PaperExampleStrategies()
	if err := set.Validate(); err != nil {
		t.Errorf("paper set rejected: %v", err)
	}
	set[1].ID = 7
	if err := set.Validate(); err == nil {
		t.Error("misnumbered set accepted")
	}
	set = set.Renumber()
	if err := set.Validate(); err != nil {
		t.Errorf("renumbered set rejected: %v", err)
	}
}

func TestSetPoints(t *testing.T) {
	set := PaperExampleStrategies()
	pts := set.Points()
	if len(pts) != 4 {
		t.Fatalf("len(Points) = %d", len(pts))
	}
	if pts[2] != set[2].Params.Point() {
		t.Errorf("Points[2] = %v", pts[2])
	}
	if math.Abs(pts[0][0]-0.5) > 1e-12 { // 1 - s1.quality
		t.Errorf("inverted quality of s1 = %v, want 0.5", pts[0][0])
	}
}

func TestStrategyString(t *testing.T) {
	s := PaperExampleStrategies()[2]
	got := s.String()
	if !strings.Contains(got, "s3") || !strings.Contains(got, "SIM-IND-CRO") ||
		!strings.Contains(got, "q=0.80") {
		t.Errorf("String = %q", got)
	}
	s.Name = ""
	s.ID = 4
	if got := s.String(); !strings.HasPrefix(got, "s5 ") {
		t.Errorf("default name = %q", got)
	}
}

func TestSpaceCounting(t *testing.T) {
	if v := NumCombinations(2, 2, 2); v != 8 {
		t.Errorf("NumCombinations = %d, want 8", v)
	}
	// The paper: 8^10 = 1,073,741,824 workflow strategies for x=10, v=8.
	if got := WorkflowStrategies(8, 10); got != 1073741824 {
		t.Errorf("WorkflowStrategies(8, 10) = %v, want 1073741824", got)
	}
	if got := WorkflowStrategies(8, 0); got != 1 {
		t.Errorf("WorkflowStrategies(8, 0) = %v, want 1", got)
	}
	if got := WorkflowStrategies(0, 5); got != 0 {
		t.Errorf("WorkflowStrategies(0, 5) = %v, want 0", got)
	}
	// v^n * v! for v=2, n=3: 8 * 2 = 16.
	if got := SpaceOrder(2, 3); got != 16 {
		t.Errorf("SpaceOrder(2, 3) = %v, want 16", got)
	}
	// v=8, n=1: 8 * 40320.
	if got := SpaceOrder(8, 1); got != 8*40320 {
		t.Errorf("SpaceOrder(8, 1) = %v, want %v", got, 8*40320)
	}
	if got := SpaceOrder(0, 3); got != 0 {
		t.Errorf("SpaceOrder(0, 3) = %v, want 0", got)
	}
}

func TestPropertySatisfiesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		s := Params{Quality: rng.Float64(), Cost: rng.Float64(), Latency: rng.Float64()}
		d := Params{Quality: rng.Float64(), Cost: rng.Float64(), Latency: rng.Float64()}
		// Loosening every threshold preserves satisfaction.
		loose := Params{Quality: d.Quality * rng.Float64(), Cost: d.Cost + (1-d.Cost)*rng.Float64(), Latency: d.Latency + (1-d.Latency)*rng.Float64()}
		if Satisfies(s, d) && !Satisfies(s, loose) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertySatisfiesMatchesDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func() bool {
		s := Params{Quality: rng.Float64(), Cost: rng.Float64(), Latency: rng.Float64()}
		d := Params{Quality: rng.Float64(), Cost: rng.Float64(), Latency: rng.Float64()}
		// The satisfaction predicate and geometric dominance agree.
		return Satisfies(s, d) == s.Point().DominatedBy(d.Point())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
