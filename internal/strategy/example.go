package strategy

// This file encodes the paper's running example (Example 1 / Table 1): three
// deployment requests and four strategies for collaborative sentence
// translation. It is used by the worked-example tests, the Table 1
// experiment, and the quickstart example.

// PaperExampleStrategies returns the four strategies of Table 1:
//
//	s1 SIM-COL-CRO (0.50, 0.25, 0.28)
//	s2 SEQ-IND-CRO (0.75, 0.33, 0.28)
//	s3 SIM-IND-CRO (0.80, 0.50, 0.14)
//	s4 SIM-IND-HYB (0.88, 0.58, 0.14)
func PaperExampleStrategies() Set {
	return Set{
		{ID: 0, Name: "s1", Dims: Dimensions{Simultaneous, Collaborative, CrowdOnly},
			Params: Params{Quality: 0.50, Cost: 0.25, Latency: 0.28}},
		{ID: 1, Name: "s2", Dims: Dimensions{Sequential, Independent, CrowdOnly},
			Params: Params{Quality: 0.75, Cost: 0.33, Latency: 0.28}},
		{ID: 2, Name: "s3", Dims: Dimensions{Simultaneous, Independent, CrowdOnly},
			Params: Params{Quality: 0.80, Cost: 0.50, Latency: 0.14}},
		{ID: 3, Name: "s4", Dims: Dimensions{Simultaneous, Independent, Hybrid},
			Params: Params{Quality: 0.88, Cost: 0.58, Latency: 0.14}},
	}
}

// PaperExampleRequests returns the three deployment requests of Table 1 with
// the paper's cardinality constraint k = 3:
//
//	d1 (0.4, 0.17, 0.28)
//	d2 (0.8, 0.20, 0.28)
//	d3 (0.7, 0.83, 0.28)
func PaperExampleRequests() []Request {
	return []Request{
		{ID: "d1", Params: Params{Quality: 0.4, Cost: 0.17, Latency: 0.28}, K: 3},
		{ID: "d2", Params: Params{Quality: 0.8, Cost: 0.20, Latency: 0.28}, K: 3},
		{ID: "d3", Params: Params{Quality: 0.7, Cost: 0.83, Latency: 0.28}, K: 3},
	}
}
