package strategy

import "math"

// This file implements the strategy-space counting arguments of Section 2.1.
// The paper observes that with v = |Structure| x |Organization| x |Style|
// unique dimension combinations and n workers, the number of possible
// strategies is on the order of v^n * v!, and that a Turkomatic-style
// workflow with x tasks admits v^x strategies (8^10 = 1,073,741,824 for
// v = 8, x = 10).

// NumCombinations returns v, the number of unique (Structure, Organization,
// Style) combinations given the number of choices per dimension.
func NumCombinations(structures, organizations, styles int) int {
	return structures * organizations * styles
}

// SpaceOrder returns the paper's order-of-magnitude bound v^n * v! on the
// number of strategies for a collaborative task involving n workers, when
// the same combination appears at most once per strategy. The result is a
// float64 because it overflows int64 almost immediately.
func SpaceOrder(v, n int) float64 {
	if v <= 0 || n < 0 {
		return 0
	}
	return math.Pow(float64(v), float64(n)) * factorial(v)
}

// WorkflowStrategies returns v^x, the number of possible strategies for a
// worker-designed workflow with x tasks when each task independently picks
// one of v combinations. Returns +Inf if the value overflows float64.
func WorkflowStrategies(v, x int) float64 {
	if v <= 0 || x < 0 {
		return 0
	}
	return math.Pow(float64(v), float64(x))
}

func factorial(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}
