package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

func newJSONRequest(t *testing.T, method, url string, body any) *http.Request {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestPlanSummaryView: ?view=summary returns the scalar projection of
// the plan (same values as the full body, per-request detail reduced to
// counts) and rejects unknown views with the uniform envelope.
func TestPlanSummaryView(t *testing.T) {
	_, hs := newTestServer(t, Config{Tenants: map[string]TenantConfig{"alpha": fixedTenant(6, 0.7)}})
	c := hs.Client()
	base := hs.URL + "/v1/tenants/alpha"

	for i, id := range []string{"a", "b", "c"} {
		var sub SubmitResponse
		if code := call(t, c, http.MethodPost, base+"/requests",
			SubmitRequest{ID: id, Quality: 0.4 + float64(i)/10, Cost: 0.9, Latency: 0.9, K: 1}, &sub); code != 200 {
			t.Fatalf("submit %s = %d", id, code)
		}
	}

	var full PlanResponse
	if code := call(t, c, http.MethodGet, base+"/plan", nil, &full); code != 200 {
		t.Fatalf("full plan = %d", code)
	}
	var sum PlanSummaryResponse
	if code := call(t, c, http.MethodGet, base+"/plan?view=summary", nil, &sum); code != 200 {
		t.Fatalf("summary plan = %d", code)
	}
	if sum.Tenant != full.Tenant || sum.Epoch != full.Epoch ||
		sum.Availability != full.Availability || sum.Objective != full.Objective ||
		sum.Workforce != full.Workforce {
		t.Errorf("summary scalars diverge from full plan:\nfull %+v\nsummary %+v", full, sum)
	}
	if sum.Open != len(full.Requests) || sum.Serving != len(full.Serving) || sum.Displaced != len(full.Displaced) {
		t.Errorf("summary counts = open %d serving %d displaced %d, full has %d/%d/%d",
			sum.Open, sum.Serving, sum.Displaced, len(full.Requests), len(full.Serving), len(full.Displaced))
	}

	// ?view=full is the explicit spelling of the default.
	var full2 PlanResponse
	if code := call(t, c, http.MethodGet, base+"/plan?view=full", nil, &full2); code != 200 || len(full2.Requests) != len(full.Requests) {
		t.Errorf("view=full = %d with %d requests, want 200 with %d", code, len(full2.Requests), len(full.Requests))
	}

	var errResp ErrorResponse
	if code := call(t, c, http.MethodGet, base+"/plan?view=sideways", nil, &errResp); code != http.StatusBadRequest || errResp.Error.Code != CodeBadRequest {
		t.Errorf("unknown view = %d %+v, want 400 %s", code, errResp, CodeBadRequest)
	}
}

// TestBatchIngestEndToEnd drives the batched ingest endpoint through its
// happy path and its in-place failure modes: ordered application (a
// revoke may target a submit earlier in the same batch), per-op results
// aligned with body order, and malformed or conflicting ops failing
// individually with the same envelope their single-op endpoints return.
func TestBatchIngestEndToEnd(t *testing.T) {
	s, hs := newTestServer(t, Config{Tenants: map[string]TenantConfig{"alpha": fixedTenant(6, 0.7)}})
	c := hs.Client()
	url := hs.URL + "/v1/tenants/alpha/ops"

	var resp BatchResponse
	code := call(t, c, http.MethodPost, url, BatchRequest{Ops: []BatchOp{
		{Op: OpSubmit, ID: "a", Quality: 0.4, Cost: 0.9, Latency: 0.9, K: 1},
		{Op: OpSubmit, ID: "b", Quality: 0.5, Cost: 0.9, Latency: 0.9}, // K defaults to 1
		{Op: OpRevoke, ID: "a"}, // same-batch revoke of op 0
		{Op: OpAvailability, Workforce: 0.55},
		{Op: OpSubmit, ID: "b", Quality: 0.5, Cost: 0.9, Latency: 0.9, K: 1}, // duplicate → 409 in place
		{Op: "defragment"},                                                   // unknown op → 400 in place
		{Op: OpSubmit, ID: "..", K: 1},                                       // unaddressable ID → 400 in place
		{Op: OpRevoke, ID: "ghost"},                                          // unknown request → 404 in place
		{Op: OpAvailability, Workforce: 7},                                   // invalid workforce → 400 in place
	}}, &resp)
	if code != http.StatusOK {
		t.Fatalf("batch = %d %+v", code, resp)
	}
	if len(resp.Results) != 9 {
		t.Fatalf("results = %d, want 9", len(resp.Results))
	}
	wantStatus := []int{200, 200, 200, 200, 409, 400, 400, 404, 400}
	wantCode := []string{"", "", "", "", CodeDuplicateID, CodeBadRequest, CodeBadRequest, CodeUnknownRequest, CodeInvalidArgument}
	for i, r := range resp.Results {
		if r.Status != wantStatus[i] {
			t.Errorf("op %d: status %d, want %d (%+v)", i, r.Status, wantStatus[i], r.Error)
		}
		if wantCode[i] == "" {
			if r.Error != nil {
				t.Errorf("op %d: unexpected error %+v", i, r.Error)
			}
		} else if r.Error == nil || r.Error.Code != wantCode[i] {
			t.Errorf("op %d: error %+v, want code %s", i, r.Error, wantCode[i])
		}
	}
	// Submits report served; other successes don't.
	if resp.Results[0].Served == nil || resp.Results[1].Served == nil || resp.Results[2].Served != nil {
		t.Errorf("served pointers: %+v", resp.Results[:3])
	}
	// Epochs along the batch are strictly increasing (one pool generation
	// per applied mutation, whatever the coalescing).
	var last uint64
	for i, r := range resp.Results {
		if r.Status != http.StatusOK {
			continue
		}
		if r.Epoch <= last {
			t.Errorf("op %d: epoch %d did not advance past %d", i, r.Epoch, last)
		}
		last = r.Epoch
	}

	// Final state: only "b" open, availability moved.
	tn, _ := s.Tenant("alpha")
	snap := tn.Snapshot()
	if len(snap.Requests) != 1 || snap.Requests[0].ID != "b" || snap.Availability != 0.55 {
		t.Fatalf("post-batch snapshot: %d open, availability %v", len(snap.Requests), snap.Availability)
	}

	// Empty and oversized batches are rejected as a unit.
	var apiErr ErrorResponse
	if code := call(t, c, http.MethodPost, url, BatchRequest{}, &apiErr); code != 400 || apiErr.Error.Code != CodeBadRequest {
		t.Errorf("empty batch = %d %+v", code, apiErr)
	}
	big := BatchRequest{Ops: make([]BatchOp, MaxBatchOps+1)}
	for i := range big.Ops {
		big.Ops[i] = BatchOp{Op: OpAvailability, Workforce: 0.5}
	}
	if code := call(t, c, http.MethodPost, url, big, &apiErr); code != 400 {
		t.Errorf("oversized batch = %d %+v", code, apiErr)
	}
	// A body over the byte cap is refused without being buffered: the
	// op-count cap only engages after a full decode, so the byte limit is
	// what actually protects the ingest endpoint's memory.
	huge, err := http.NewRequest(http.MethodPost, url,
		bytes.NewReader(bytes.Repeat([]byte("x"), MaxBatchBodyBytes+1)))
	if err != nil {
		t.Fatal(err)
	}
	hugeResp, err := c.Do(huge)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, hugeResp, &apiErr)
	hugeResp.Body.Close()
	if hugeResp.StatusCode != 400 || apiErr.Error.Code != CodeBadRequest {
		t.Errorf("over-byte-cap batch = %d %+v", hugeResp.StatusCode, apiErr)
	}
	if code := call(t, c, http.MethodPost, hs.URL+"/v1/tenants/nope/ops",
		BatchRequest{Ops: []BatchOp{{Op: OpAvailability, Workforce: 0.5}}}, &apiErr); code != 404 || apiErr.Error.Code != CodeUnknownTenant {
		t.Errorf("unknown tenant batch = %d %+v", code, apiErr)
	}
}

// TestBatchDeadlineRejectsWholeBatch: when the projected queue wait
// already overshoots the request deadline, the batch is rejected with a
// single 429 and nothing is enqueued — no partial application, and the
// deadline is parsed once for the body, not per op.
func TestBatchDeadlineRejectsWholeBatch(t *testing.T) {
	cfg := fixedTenant(6, 0.7)
	// One slow apply seeds the batch-latency EWMA far above any sane
	// deadline, so the projection check trips deterministically.
	cfg.Faults = &Faults{ApplyDelay: func(kind, id string) time.Duration { return 60 * time.Millisecond }}
	s, hs := newTestServer(t, Config{Tenants: map[string]TenantConfig{"alpha": cfg}})
	c := hs.Client()
	url := hs.URL + "/v1/tenants/alpha/ops"

	var warm BatchResponse
	if code := call(t, c, http.MethodPost, url, BatchRequest{Ops: []BatchOp{
		{Op: OpAvailability, Workforce: 0.6},
	}}, &warm); code != http.StatusOK {
		t.Fatalf("warmup batch = %d", code)
	}

	body := BatchRequest{Ops: []BatchOp{
		{Op: OpSubmit, ID: "x", Quality: 0.4, Cost: 0.9, Latency: 0.9, K: 1},
		{Op: OpSubmit, ID: "y", Quality: 0.4, Cost: 0.9, Latency: 0.9, K: 1},
	}}
	req := newJSONRequest(t, http.MethodPost, url, body)
	req.Header.Set(DeadlineHeader, "1")
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("doomed batch = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed batch carries no Retry-After")
	}
	var apiErr ErrorResponse
	decodeBody(t, resp, &apiErr)
	if apiErr.Error.Code != CodeOverloaded || apiErr.Error.RetryAfterMs <= 0 {
		t.Fatalf("shed batch envelope: %+v", apiErr.Error)
	}
	// The hard 429 promise: nothing from the batch was enqueued/applied.
	tn, _ := s.Tenant("alpha")
	if snap := tn.Snapshot(); len(snap.Requests) != 0 {
		t.Fatalf("shed batch left %d requests behind", len(snap.Requests))
	}

	// An invalid deadline header fails once, for the whole body.
	req = newJSONRequest(t, http.MethodPost, url, body)
	req.Header.Set(DeadlineHeader, "soon")
	resp2, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad deadline header = %d", resp2.StatusCode)
	}
}

// TestV1Aliases: the unversioned operational endpoints answer identically
// at their /v1 paths.
func TestV1Aliases(t *testing.T) {
	dir := t.TempDir()
	_, hs := newTestServer(t, Config{
		Tenants: map[string]TenantConfig{"alpha": fixedTenant(4, 0.7)},
		DataDir: dir,
	})
	c := hs.Client()
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		var health HealthResponse
		if code := call(t, c, http.MethodGet, hs.URL+path, nil, &health); code != 200 || health.Status != "ok" {
			t.Errorf("GET %s = %d %+v", path, code, health)
		}
	}
	for _, path := range []string{"/metrics", "/v1/metrics"} {
		var m map[string]any
		if code := call(t, c, http.MethodGet, hs.URL+path, nil, &m); code != 200 {
			t.Errorf("GET %s = %d", path, code)
		} else if _, ok := m["tenants"]; !ok {
			t.Errorf("GET %s: no tenants key", path)
		}
	}
	for _, path := range []string{"/admin/checkpoint", "/v1/admin/checkpoint"} {
		var resp CheckpointResponse
		if code := call(t, c, http.MethodPost, hs.URL+path, nil, &resp); code != 200 {
			t.Errorf("POST %s = %d", path, code)
		} else if _, ok := resp.Tenants["alpha"]; !ok {
			t.Errorf("POST %s: %+v", path, resp)
		}
	}
}
