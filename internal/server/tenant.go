package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"stratrec/internal/adpar"
	"stratrec/internal/batch"
	"stratrec/internal/strategy"
	"stratrec/internal/stream"
	"stratrec/internal/wal"
	"stratrec/internal/workforce"
)

// TenantConfig describes one hosted tenant: a strategy catalog with its
// availability models and planning semantics.
type TenantConfig struct {
	Set    strategy.Set
	Models workforce.PerStrategyModels
	// Mode and Objective select the tenant's planning semantics.
	Mode      workforce.Mode
	Objective batch.Objective
	// InitialW is the starting expected workforce.
	InitialW float64
	// Parallelism caps the ADPaR sweep workers (0 = GOMAXPROCS).
	Parallelism int
	// OpBuffer sizes the event-loop inbox; 0 defaults to 64.
	OpBuffer int
	// OnApply, when non-nil, is invoked by the event loop after each
	// mutation has been applied and (on success) the fresh snapshot
	// published, before the reply is sent. It runs on the loop goroutine
	// itself — the tenant's single writer — so invocations are strictly
	// sequential and ordered with the mutations they report. Deterministic
	// harnesses use it to step event-by-event and observe the exact apply
	// order; it must not call back into the same tenant's mutation API
	// (that would deadlock the loop).
	OnApply func(AppliedOp)
}

// AppliedOp describes one mutation the tenant event loop applied, as seen
// by the TenantConfig.OnApply step callback.
type AppliedOp struct {
	Tenant string
	// Kind is "submit", "revoke" or "availability".
	Kind string
	// ID is the affected request ID (submit and revoke).
	ID string
	// Epoch is the plan epoch after the mutation.
	Epoch uint64
	// Err is the mutation's outcome; nil means it was applied and a new
	// snapshot is published.
	Err error
}

// ErrTenantClosed reports an operation against a tenant whose event loop
// has shut down.
var ErrTenantClosed = errors.New("server: tenant closed")

// ErrWALBroken reports a mutation rejected because an earlier WAL append
// failed. Once the log cannot be trusted to record what the manager
// applies, accepting further mutations would let memory and disk drift
// arbitrarily far apart — and the divergent log would poison the next
// recovery (sequence holes, epoch-trail mismatches). The tenant instead
// goes read-only: reads keep serving the last published snapshot, writes
// fail with 503 until the operator restarts the server (recovery then
// rebuilds exactly the logged state).
var ErrWALBroken = errors.New("server: write-ahead log failed; tenant is read-only until restart")

// durability carries the server-level WAL settings down to each tenant.
type durability struct {
	dataDir         string
	syncEvery       int
	checkpointEvery int
}

// Tenant hosts one strategy catalog behind a single-writer event loop.
//
// stream.Manager is not goroutine-safe, so every mutation (submit, revoke,
// availability) is a message to the loop goroutine — the only writer —
// rather than a lock acquisition. After each successful mutation the loop
// publishes an immutable stream.Snapshot through an atomic pointer, and
// all reads (plan queries, alternative recommendations) are served from
// that snapshot plus the tenant's immutable warm adpar.Index without ever
// touching the manager or blocking behind writers. Replies are sent after
// the snapshot is stored, so a client observes its own writes.
type Tenant struct {
	name    string
	mgr     *stream.Manager
	ix      *adpar.Index
	met     *tenantMetrics
	onApply func(AppliedOp)

	// wal, when non-nil, is the tenant's write-ahead log: the loop
	// appends every successful live mutation (after applying it, before
	// publishing the snapshot and replying), so an acknowledged mutation
	// is on disk — and, at the default sync policy, fsynced — before the
	// client sees the acknowledgement. On the first append failure the
	// failing mutation's snapshot is withheld (readers never observe the
	// unlogged write), walBroken trips, and the tenant goes read-only
	// (ErrWALBroken) so memory can never advance past what the log
	// recorded — which keeps the on-disk log recoverable.
	wal       *wal.Log
	walBroken bool // loop goroutine only
	ckptEvery int
	sinceCkpt int

	ops  chan op
	quit chan struct{}
	done chan struct{}
	snap atomic.Pointer[stream.Snapshot]
}

type opKind int

const (
	opSubmit opKind = iota
	opRevoke
	opAvailability
	// opRestoreCounters force-sets epoch and submission counter after the
	// checkpointed pool has been re-admitted (recovery only).
	opRestoreCounters
	// opCheckpoint snapshots the tenant and truncates its WAL.
	opCheckpoint
)

func (k opKind) String() string {
	switch k {
	case opSubmit:
		return "submit"
	case opRevoke:
		return "revoke"
	case opAvailability:
		return "availability"
	case opRestoreCounters:
		return "restore-counters"
	case opCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("opKind(%d)", int(k))
}

// appliedID extracts the request ID an op targets, if any.
func appliedID(o op) string {
	switch o.kind {
	case opSubmit:
		return o.req.ID
	case opRevoke:
		return o.id
	}
	return ""
}

type op struct {
	kind opKind
	req  strategy.Request // opSubmit
	id   string           // opRevoke
	w    float64          // opAvailability
	// replay marks recovery ops: they re-apply already-logged mutations,
	// so the loop must not append them to the WAL again, and they are
	// invisible to OnApply (which observes live traffic only).
	replay bool
	// sub is the restored submission sequence number (replay submits) or
	// the restored submission counter (opRestoreCounters).
	sub uint64
	// epoch is the restored plan epoch (opRestoreCounters).
	epoch uint64
	reply chan opResult
}

type opResult struct {
	served bool
	epoch  uint64
	err    error
	// ckpt reports checkpoint outcomes (opCheckpoint).
	ckpt CheckpointInfo
}

// newTenant builds the tenant, compiles its warm ADPaR index, opens its
// WAL (when durability is on) and starts the event loop. Recovery —
// re-admitting the checkpointed pool and replaying the log tail — runs
// through the event loop itself before newTenant returns, so by the time
// the server exposes its handler the tenant's published snapshot is the
// recovered state.
func newTenant(name string, cfg TenantConfig, dur durability) (*Tenant, error) {
	mgr, err := stream.NewManager(cfg.Set, cfg.Models, cfg.Mode, cfg.Objective, cfg.InitialW)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", name, err)
	}
	ix, err := adpar.NewIndex(cfg.Set)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", name, err)
	}
	ix.Parallelism = cfg.Parallelism
	if err := mgr.AttachIndex(ix); err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", name, err)
	}
	buf := cfg.OpBuffer
	if buf <= 0 {
		buf = 64
	}
	t := &Tenant{
		name:    name,
		mgr:     mgr,
		ix:      ix,
		onApply: cfg.OnApply,
		ops:     make(chan op, buf),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	var recovered wal.Recovered
	if dur.dataDir != "" {
		l, rec, err := wal.Open(filepath.Join(dur.dataDir, name), wal.Options{SyncEvery: dur.syncEvery})
		if err != nil {
			return nil, fmt.Errorf("server: tenant %s: opening WAL: %w", name, err)
		}
		t.wal = l
		t.ckptEvery = dur.checkpointEvery
		recovered = rec
	}
	t.met = newTenantMetrics(t)
	t.snap.Store(mgr.Snapshot())
	go t.loop()
	if t.wal != nil {
		start := time.Now()
		if err := t.restore(recovered); err != nil {
			t.close()
			return nil, fmt.Errorf("server: tenant %s: recovery: %w", name, err)
		}
		t.met.noteRecovery(recovered, time.Since(start))
	}
	return t, nil
}

// restore replays recovered durable state through the live event loop:
// availability and pool from the checkpoint (under the original
// submission sequence numbers), counter and epoch restoration, then the
// WAL tail record by record. Each tail record carries the plan epoch its
// original application reached; the replayed application must land on
// exactly that epoch, turning the epoch trail into an end-to-end
// integrity check of recovery.
func (t *Tenant) restore(rec wal.Recovered) error {
	if cp := rec.Checkpoint; cp != nil {
		if res := t.do(op{kind: opAvailability, w: cp.Availability, replay: true}); res.err != nil {
			return fmt.Errorf("restoring availability %v: %w", cp.Availability, res.err)
		}
		for _, r := range cp.Requests {
			res := t.do(op{kind: opSubmit, replay: true, sub: r.Sub, req: strategy.Request{
				ID:     r.ID,
				Params: strategy.Params{Quality: r.Quality, Cost: r.Cost, Latency: r.Latency},
				K:      r.K,
			}})
			if res.err != nil {
				return fmt.Errorf("re-admitting %s (sub %d): %w", r.ID, r.Sub, res.err)
			}
		}
		if res := t.do(op{kind: opRestoreCounters, replay: true, epoch: cp.Epoch, sub: cp.NextSub}); res.err != nil {
			return res.err
		}
	}
	for _, r := range rec.Tail {
		var res opResult
		switch r.Kind {
		case wal.KindSubmit:
			res = t.do(op{kind: opSubmit, replay: true, sub: r.Sub, req: strategy.Request{
				ID:     r.ID,
				Params: strategy.Params{Quality: r.Quality, Cost: r.Cost, Latency: r.Latency},
				K:      r.K,
			}})
		case wal.KindRevoke:
			res = t.do(op{kind: opRevoke, replay: true, id: r.ID})
		case wal.KindAvailability:
			res = t.do(op{kind: opAvailability, replay: true, w: r.W})
		default:
			return fmt.Errorf("seq %d: unknown record kind %q", r.Seq, r.Kind)
		}
		if res.err != nil {
			return fmt.Errorf("replaying seq %d (%s %s): %w", r.Seq, r.Kind, r.ID, res.err)
		}
		if res.epoch != r.Epoch {
			return fmt.Errorf("epoch divergence at seq %d (%s %s): log recorded %d, replay reached %d",
				r.Seq, r.Kind, r.ID, r.Epoch, res.epoch)
		}
	}
	return nil
}

// loop is the tenant's single writer: it owns the stream.Manager
// exclusively and publishes a fresh snapshot after every successful
// mutation, before replying. With durability on, the WAL append happens
// between applying the mutation and publishing its snapshot, so the
// acknowledgement a client sees implies the mutation is logged.
func (t *Tenant) loop() {
	defer close(t.done)
	for {
		select {
		case o := <-t.ops:
			var res opResult
			if t.walBroken && !o.replay && o.kind.mutates() {
				res.err = ErrWALBroken
				res.epoch = t.mgr.Epoch()
				if t.onApply != nil {
					t.onApply(AppliedOp{Tenant: t.name, Kind: o.kind.String(), ID: appliedID(o), Epoch: res.epoch, Err: res.err})
				}
				o.reply <- res
				continue
			}
			switch o.kind {
			case opSubmit:
				if o.replay {
					res.served, res.err = t.mgr.Resubmit(o.req, o.sub)
				} else {
					res.served, res.err = t.mgr.Submit(o.req)
				}
			case opRevoke:
				res.err = t.mgr.Revoke(o.id)
			case opAvailability:
				res.err = t.mgr.SetAvailability(o.w)
			case opRestoreCounters:
				t.mgr.RestoreCounters(o.epoch, o.sub)
			case opCheckpoint:
				res.ckpt, res.err = t.checkpointNow()
			}
			res.epoch = t.mgr.Epoch()
			if res.err == nil {
				snap := t.mgr.Snapshot()
				publish := true
				if t.wal != nil && !o.replay && o.kind.mutates() {
					if werr := t.logMutation(o, snap); werr != nil {
						res.err = fmt.Errorf("server: tenant %s: wal: %w", t.name, werr)
						t.met.walErrors.Add(1)
						// The manager applied a mutation the log did not
						// record: withhold its snapshot so no reader ever
						// observes it, and stop accepting writes so the
						// divergence stays frozen at this one unacked op.
						t.walBroken = true
						publish = false
					}
				}
				if publish {
					t.snap.Store(snap)
				}
			}
			if t.onApply != nil && !o.replay && o.kind.mutates() {
				t.onApply(AppliedOp{
					Tenant: t.name,
					Kind:   o.kind.String(),
					ID:     appliedID(o),
					Epoch:  res.epoch,
					Err:    res.err,
				})
			}
			o.reply <- res
		case <-t.quit:
			return
		}
	}
}

// mutates reports whether the op kind changes tenant state that the WAL
// must capture.
func (k opKind) mutates() bool {
	return k == opSubmit || k == opRevoke || k == opAvailability
}

// logMutation appends one applied mutation to the WAL, then
// auto-checkpoints when the configured append budget since the last
// checkpoint is spent.
func (t *Tenant) logMutation(o op, snap *stream.Snapshot) error {
	rec := wal.Record{Epoch: snap.Epoch}
	switch o.kind {
	case opSubmit:
		rs, ok := snap.Request(o.req.ID)
		if !ok {
			return fmt.Errorf("submitted request %s missing from its own snapshot", o.req.ID)
		}
		rec.Kind = wal.KindSubmit
		rec.ID = o.req.ID
		rec.Quality = o.req.Quality
		rec.Cost = o.req.Cost
		rec.Latency = o.req.Latency
		rec.K = o.req.K
		rec.Sub = rs.Seq
	case opRevoke:
		rec.Kind = wal.KindRevoke
		rec.ID = o.id
	case opAvailability:
		rec.Kind = wal.KindAvailability
		rec.W = o.w
	}
	if _, err := t.wal.Append(rec); err != nil {
		return err
	}
	t.sinceCkpt++
	if t.ckptEvery > 0 && t.sinceCkpt >= t.ckptEvery {
		// An auto-checkpoint failure is not the triggering mutation's
		// problem: that mutation is applied and durably logged. Count it
		// and retry at the next append (sinceCkpt keeps growing); the log
		// just stays longer than intended until a checkpoint lands.
		if _, err := t.checkpointNow(); err != nil {
			t.met.checkpointErrors.Add(1)
		}
	}
	return nil
}

// checkpointNow (loop goroutine only) freezes the manager state into a
// durable checkpoint and truncates the WAL behind it.
func (t *Tenant) checkpointNow() (CheckpointInfo, error) {
	if t.wal == nil {
		return CheckpointInfo{}, ErrNoDurability
	}
	snap := t.mgr.Snapshot()
	cp := wal.Checkpoint{
		Epoch:        snap.Epoch,
		Availability: snap.Availability,
		NextSub:      t.mgr.SubmissionCounter(),
		Requests:     make([]wal.CheckpointRequest, 0, len(snap.Requests)),
	}
	for _, rs := range snap.Requests {
		cp.Requests = append(cp.Requests, wal.CheckpointRequest{
			ID:      rs.ID,
			Quality: rs.Request.Quality,
			Cost:    rs.Request.Cost,
			Latency: rs.Request.Latency,
			K:       rs.Request.K,
			Sub:     rs.Seq,
		})
	}
	removed, err := t.wal.Checkpoint(cp)
	if err != nil {
		return CheckpointInfo{}, err
	}
	t.sinceCkpt = 0
	t.met.checkpoints.Add(1)
	return CheckpointInfo{
		LastSeq:         t.wal.LastSeq(),
		Requests:        len(cp.Requests),
		RemovedSegments: removed,
	}, nil
}

// do routes one mutation through the event loop. Once the loop accepts an
// op it always replies (the reply channel is buffered), so the only
// abandonment point is a closed tenant.
func (t *Tenant) do(o op) opResult {
	o.reply = make(chan opResult, 1)
	select {
	case t.ops <- o:
	case <-t.quit:
		return opResult{err: ErrTenantClosed}
	}
	select {
	case res := <-o.reply:
		return res
	case <-t.done:
		// The loop exited after accepting but before serving the op.
		select {
		case res := <-o.reply:
			return res
		default:
			return opResult{err: ErrTenantClosed}
		}
	}
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// SubmitResult reports the outcome of a submission.
type SubmitResult struct {
	Served bool
	Epoch  uint64
}

// Submit admits a request through the event loop.
func (t *Tenant) Submit(d strategy.Request) (SubmitResult, error) {
	res := t.do(op{kind: opSubmit, req: d})
	if res.err != nil {
		t.met.errors.Add(1)
		return SubmitResult{}, res.err
	}
	t.met.submits.Add(1)
	return SubmitResult{Served: res.served, Epoch: res.epoch}, nil
}

// Revoke withdraws an open request through the event loop.
func (t *Tenant) Revoke(id string) (uint64, error) {
	res := t.do(op{kind: opRevoke, id: id})
	if res.err != nil {
		t.met.errors.Add(1)
		return 0, res.err
	}
	t.met.revokes.Add(1)
	return res.epoch, nil
}

// SetAvailability moves the expected workforce through the event loop.
func (t *Tenant) SetAvailability(w float64) (uint64, error) {
	res := t.do(op{kind: opAvailability, w: w})
	if res.err != nil {
		t.met.errors.Add(1)
		return 0, res.err
	}
	t.met.drifts.Add(1)
	return res.epoch, nil
}

// CheckpointInfo reports one tenant checkpoint's outcome.
type CheckpointInfo struct {
	// LastSeq is the WAL sequence number the checkpoint covers.
	LastSeq uint64 `json:"last_seq"`
	// Requests is the number of open requests frozen into the checkpoint.
	Requests int `json:"requests"`
	// RemovedSegments counts log segments deleted by the truncation.
	RemovedSegments int `json:"removed_segments"`
}

// Checkpoint snapshots the tenant's durable state and truncates its WAL,
// through the event loop (so the checkpoint is consistent: no mutation is
// half-applied in it). Fails with ErrNoDurability when the server runs
// without a data directory.
func (t *Tenant) Checkpoint() (CheckpointInfo, error) {
	res := t.do(op{kind: opCheckpoint})
	if res.err != nil {
		if !errors.Is(res.err, ErrNoDurability) {
			t.met.errors.Add(1)
		}
		return CheckpointInfo{}, res.err
	}
	return res.ckpt, nil
}

// Snapshot returns the latest published plan snapshot — a lock-free read.
func (t *Tenant) Snapshot() *stream.Snapshot {
	t.met.planReads.Add(1)
	return t.snap.Load()
}

// Alternative recommends ADPaR alternative parameters for an open request
// the current plan does not serve. The whole call is lock-free: the
// request is resolved against the latest snapshot and solved on the
// tenant's immutable warm index, so any number of alternative queries run
// concurrently with each other and with mutations. The returned
// RequestState is the one the solution was computed for, so callers read
// K (and anything else) from it rather than re-resolving the ID against a
// possibly newer snapshot.
func (t *Tenant) Alternative(id string) (adpar.Solution, stream.RequestState, error) {
	rs, ok := t.snap.Load().Request(id)
	if !ok {
		t.met.errors.Add(1)
		return adpar.Solution{}, rs, fmt.Errorf("%w: %s", stream.ErrUnknownID, id)
	}
	if rs.Serving {
		t.met.errors.Add(1)
		return adpar.Solution{}, rs, fmt.Errorf("%w: %s", stream.ErrServed, id)
	}
	sol, err := t.ix.Solve(rs.Request)
	if err != nil {
		t.met.errors.Add(1)
		return adpar.Solution{}, rs, err
	}
	t.met.alternatives.Add(1)
	return sol, rs, nil
}

// close stops the event loop, then flushes and closes the WAL. Pending
// ops that the loop never accepted (and callers racing the shutdown) get
// ErrTenantClosed.
func (t *Tenant) close() {
	close(t.quit)
	<-t.done
	if t.wal != nil {
		t.wal.Close()
	}
}
