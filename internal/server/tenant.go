package server

import (
	"errors"
	"fmt"
	"sync/atomic"

	"stratrec/internal/adpar"
	"stratrec/internal/batch"
	"stratrec/internal/strategy"
	"stratrec/internal/stream"
	"stratrec/internal/workforce"
)

// TenantConfig describes one hosted tenant: a strategy catalog with its
// availability models and planning semantics.
type TenantConfig struct {
	Set    strategy.Set
	Models workforce.PerStrategyModels
	// Mode and Objective select the tenant's planning semantics.
	Mode      workforce.Mode
	Objective batch.Objective
	// InitialW is the starting expected workforce.
	InitialW float64
	// Parallelism caps the ADPaR sweep workers (0 = GOMAXPROCS).
	Parallelism int
	// OpBuffer sizes the event-loop inbox; 0 defaults to 64.
	OpBuffer int
	// OnApply, when non-nil, is invoked by the event loop after each
	// mutation has been applied and (on success) the fresh snapshot
	// published, before the reply is sent. It runs on the loop goroutine
	// itself — the tenant's single writer — so invocations are strictly
	// sequential and ordered with the mutations they report. Deterministic
	// harnesses use it to step event-by-event and observe the exact apply
	// order; it must not call back into the same tenant's mutation API
	// (that would deadlock the loop).
	OnApply func(AppliedOp)
}

// AppliedOp describes one mutation the tenant event loop applied, as seen
// by the TenantConfig.OnApply step callback.
type AppliedOp struct {
	Tenant string
	// Kind is "submit", "revoke" or "availability".
	Kind string
	// ID is the affected request ID (submit and revoke).
	ID string
	// Epoch is the plan epoch after the mutation.
	Epoch uint64
	// Err is the mutation's outcome; nil means it was applied and a new
	// snapshot is published.
	Err error
}

// ErrTenantClosed reports an operation against a tenant whose event loop
// has shut down.
var ErrTenantClosed = errors.New("server: tenant closed")

// Tenant hosts one strategy catalog behind a single-writer event loop.
//
// stream.Manager is not goroutine-safe, so every mutation (submit, revoke,
// availability) is a message to the loop goroutine — the only writer —
// rather than a lock acquisition. After each successful mutation the loop
// publishes an immutable stream.Snapshot through an atomic pointer, and
// all reads (plan queries, alternative recommendations) are served from
// that snapshot plus the tenant's immutable warm adpar.Index without ever
// touching the manager or blocking behind writers. Replies are sent after
// the snapshot is stored, so a client observes its own writes.
type Tenant struct {
	name    string
	mgr     *stream.Manager
	ix      *adpar.Index
	met     *tenantMetrics
	onApply func(AppliedOp)

	ops  chan op
	quit chan struct{}
	done chan struct{}
	snap atomic.Pointer[stream.Snapshot]
}

type opKind int

const (
	opSubmit opKind = iota
	opRevoke
	opAvailability
)

func (k opKind) String() string {
	switch k {
	case opSubmit:
		return "submit"
	case opRevoke:
		return "revoke"
	case opAvailability:
		return "availability"
	}
	return fmt.Sprintf("opKind(%d)", int(k))
}

// appliedID extracts the request ID an op targets, if any.
func appliedID(o op) string {
	switch o.kind {
	case opSubmit:
		return o.req.ID
	case opRevoke:
		return o.id
	}
	return ""
}

type op struct {
	kind  opKind
	req   strategy.Request // opSubmit
	id    string           // opRevoke
	w     float64          // opAvailability
	reply chan opResult
}

type opResult struct {
	served bool
	epoch  uint64
	err    error
}

// newTenant builds the tenant, compiles its warm ADPaR index, and starts
// the event loop.
func newTenant(name string, cfg TenantConfig) (*Tenant, error) {
	mgr, err := stream.NewManager(cfg.Set, cfg.Models, cfg.Mode, cfg.Objective, cfg.InitialW)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", name, err)
	}
	ix, err := adpar.NewIndex(cfg.Set)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", name, err)
	}
	ix.Parallelism = cfg.Parallelism
	if err := mgr.AttachIndex(ix); err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", name, err)
	}
	buf := cfg.OpBuffer
	if buf <= 0 {
		buf = 64
	}
	t := &Tenant{
		name:    name,
		mgr:     mgr,
		ix:      ix,
		onApply: cfg.OnApply,
		ops:     make(chan op, buf),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	t.met = newTenantMetrics(t)
	t.snap.Store(mgr.Snapshot())
	go t.loop()
	return t, nil
}

// loop is the tenant's single writer: it owns the stream.Manager
// exclusively and publishes a fresh snapshot after every successful
// mutation, before replying.
func (t *Tenant) loop() {
	defer close(t.done)
	for {
		select {
		case o := <-t.ops:
			var res opResult
			switch o.kind {
			case opSubmit:
				res.served, res.err = t.mgr.Submit(o.req)
			case opRevoke:
				res.err = t.mgr.Revoke(o.id)
			case opAvailability:
				res.err = t.mgr.SetAvailability(o.w)
			}
			res.epoch = t.mgr.Epoch()
			if res.err == nil {
				t.snap.Store(t.mgr.Snapshot())
			}
			if t.onApply != nil {
				t.onApply(AppliedOp{
					Tenant: t.name,
					Kind:   o.kind.String(),
					ID:     appliedID(o),
					Epoch:  res.epoch,
					Err:    res.err,
				})
			}
			o.reply <- res
		case <-t.quit:
			return
		}
	}
}

// do routes one mutation through the event loop. Once the loop accepts an
// op it always replies (the reply channel is buffered), so the only
// abandonment point is a closed tenant.
func (t *Tenant) do(o op) opResult {
	o.reply = make(chan opResult, 1)
	select {
	case t.ops <- o:
	case <-t.quit:
		return opResult{err: ErrTenantClosed}
	}
	select {
	case res := <-o.reply:
		return res
	case <-t.done:
		// The loop exited after accepting but before serving the op.
		select {
		case res := <-o.reply:
			return res
		default:
			return opResult{err: ErrTenantClosed}
		}
	}
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// SubmitResult reports the outcome of a submission.
type SubmitResult struct {
	Served bool
	Epoch  uint64
}

// Submit admits a request through the event loop.
func (t *Tenant) Submit(d strategy.Request) (SubmitResult, error) {
	res := t.do(op{kind: opSubmit, req: d})
	if res.err != nil {
		t.met.errors.Add(1)
		return SubmitResult{}, res.err
	}
	t.met.submits.Add(1)
	return SubmitResult{Served: res.served, Epoch: res.epoch}, nil
}

// Revoke withdraws an open request through the event loop.
func (t *Tenant) Revoke(id string) (uint64, error) {
	res := t.do(op{kind: opRevoke, id: id})
	if res.err != nil {
		t.met.errors.Add(1)
		return 0, res.err
	}
	t.met.revokes.Add(1)
	return res.epoch, nil
}

// SetAvailability moves the expected workforce through the event loop.
func (t *Tenant) SetAvailability(w float64) (uint64, error) {
	res := t.do(op{kind: opAvailability, w: w})
	if res.err != nil {
		t.met.errors.Add(1)
		return 0, res.err
	}
	t.met.drifts.Add(1)
	return res.epoch, nil
}

// Snapshot returns the latest published plan snapshot — a lock-free read.
func (t *Tenant) Snapshot() *stream.Snapshot {
	t.met.planReads.Add(1)
	return t.snap.Load()
}

// Alternative recommends ADPaR alternative parameters for an open request
// the current plan does not serve. The whole call is lock-free: the
// request is resolved against the latest snapshot and solved on the
// tenant's immutable warm index, so any number of alternative queries run
// concurrently with each other and with mutations. The returned
// RequestState is the one the solution was computed for, so callers read
// K (and anything else) from it rather than re-resolving the ID against a
// possibly newer snapshot.
func (t *Tenant) Alternative(id string) (adpar.Solution, stream.RequestState, error) {
	rs, ok := t.snap.Load().Request(id)
	if !ok {
		t.met.errors.Add(1)
		return adpar.Solution{}, rs, fmt.Errorf("%w: %s", stream.ErrUnknownID, id)
	}
	if rs.Serving {
		t.met.errors.Add(1)
		return adpar.Solution{}, rs, fmt.Errorf("%w: %s", stream.ErrServed, id)
	}
	sol, err := t.ix.Solve(rs.Request)
	if err != nil {
		t.met.errors.Add(1)
		return adpar.Solution{}, rs, err
	}
	t.met.alternatives.Add(1)
	return sol, rs, nil
}

// close stops the event loop. Pending ops that the loop never accepted
// (and callers racing the shutdown) get ErrTenantClosed.
func (t *Tenant) close() {
	close(t.quit)
	<-t.done
}
