package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"stratrec/internal/adpar"
	"stratrec/internal/batch"
	"stratrec/internal/strategy"
	"stratrec/internal/stream"
	"stratrec/internal/wal"
	"stratrec/internal/workforce"
)

// TenantConfig describes one hosted tenant: a strategy catalog with its
// availability models and planning semantics.
type TenantConfig struct {
	Set    strategy.Set
	Models workforce.PerStrategyModels
	// Mode and Objective select the tenant's planning semantics.
	Mode      workforce.Mode
	Objective batch.Objective
	// InitialW is the starting expected workforce.
	InitialW float64
	// Parallelism caps the ADPaR sweep workers (0 = GOMAXPROCS).
	Parallelism int
	// OpBuffer sizes the event-loop inbox; 0 defaults to 64.
	OpBuffer int
	// Coalesce caps how many pending mutations the event loop drains from
	// the inbox and applies per replan cycle: the drained batch is applied
	// through the manager's deferred-replan mode (one WAL append per op,
	// preserving the per-record epoch trail and acked ⇒ logged ordering),
	// then repaired once, published once, and only then replied to. Under
	// a queue of n waiting ops that is one plan repair instead of n.
	// 0 defaults to 32; 1 disables coalescing (one op per cycle).
	Coalesce int
	// OnApply, when non-nil, is invoked by the event loop after each
	// mutation has been applied and (on success) the fresh snapshot
	// published, before the reply is sent. It runs on the loop goroutine
	// itself — the tenant's single writer — so invocations are strictly
	// sequential and ordered with the mutations they report. Deterministic
	// harnesses use it to step event-by-event and observe the exact apply
	// order; it must not call back into the same tenant's mutation API
	// (that would deadlock the loop).
	OnApply func(AppliedOp)
	// Faults, when non-nil, injects latency and failures into this
	// tenant's write path (see Faults). Chaos profiles and overload tests
	// only; leave nil in production.
	Faults *Faults
}

// AppliedOp describes one mutation the tenant event loop applied, as seen
// by the TenantConfig.OnApply step callback.
type AppliedOp struct {
	Tenant string
	// Kind is "submit", "revoke" or "availability".
	Kind string
	// ID is the affected request ID (submit and revoke).
	ID string
	// Epoch is the plan epoch after the mutation.
	Epoch uint64
	// Err is the mutation's outcome; nil means it was applied and a new
	// snapshot is published.
	Err error
}

// ErrTenantClosed reports an operation against a tenant whose event loop
// has shut down.
var ErrTenantClosed = errors.New("server: tenant closed")

// ErrWALBroken reports a mutation rejected because an earlier WAL append
// failed. Once the log cannot be trusted to record what the manager
// applies, accepting further mutations would let memory and disk drift
// arbitrarily far apart — and the divergent log would poison the next
// recovery (sequence holes, epoch-trail mismatches). The tenant instead
// goes read-only: reads keep serving the last published snapshot, writes
// fail with 503 until the operator restarts the server (recovery then
// rebuilds exactly the logged state).
var ErrWALBroken = errors.New("server: write-ahead log failed; tenant is read-only until restart")

// durability carries the server-level WAL settings down to each tenant.
type durability struct {
	dataDir         string
	syncEvery       int
	checkpointEvery int
	// gc, when non-nil, is the server's cross-tenant group-commit
	// scheduler: the tenant opens its WAL in manual-sync mode and asks gc
	// to make each batch durable instead of fsyncing inline.
	gc *groupCommitter
}

// Tenant hosts one strategy catalog behind a single-writer event loop.
//
// stream.Manager is not goroutine-safe, so every mutation (submit, revoke,
// availability) is a message to the loop goroutine — the only writer —
// rather than a lock acquisition. After each successful mutation the loop
// publishes an immutable stream.Snapshot through an atomic pointer, and
// all reads (plan queries, alternative recommendations) are served from
// that snapshot plus the tenant's immutable warm adpar.Index without ever
// touching the manager or blocking behind writers. Replies are sent after
// the snapshot is stored, so a client observes its own writes.
type Tenant struct {
	name    string
	mgr     *stream.Manager
	ix      *adpar.Index
	met     *tenantMetrics
	onApply func(AppliedOp)

	// wal, when non-nil, is the tenant's write-ahead log: the loop
	// appends every successful live mutation (after applying it, before
	// publishing the snapshot and replying), so an acknowledged mutation
	// is on disk — and, at the default sync policy, fsynced — before the
	// client sees the acknowledgement. On the first append failure the
	// failing mutation's snapshot is withheld (readers never observe the
	// unlogged write), readOnly trips, and the tenant rejects writes
	// (ErrWALBroken) so memory can never advance past what the log
	// recorded — which keeps the on-disk log recoverable.
	wal *wal.Log
	// readOnly is the WAL circuit breaker: written only by the loop
	// goroutine, read by the loop, admission control and /healthz.
	readOnly atomic.Bool
	// draining marks a tenant being removed at runtime: live mutations
	// are rejected with ErrTenantClosed (503) while the final checkpoint
	// and loop shutdown proceed. Reads keep serving until detach.
	draining  atomic.Bool
	ckptEvery int
	sinceCkpt int
	// gc is the server's group-commit scheduler; when set, the WAL is in
	// manual-sync mode and applyBatch commits each batch through it.
	gc *groupCommitter

	// coalesce is the max ops applied per replan cycle; batch and results
	// are the loop's reusable drain scratch (loop goroutine only).
	coalesce int
	batch    []op
	results  []opResult

	// batchLatency tracks recent live coalesced-batch apply latency; the
	// admission check multiplies it by queue depth to project a new
	// mutation's wait and by cap to compute Retry-After on a shed.
	batchLatency ewma
	// faults injects chaos-test latency/failures (nil in production).
	faults *Faults
	// pool throttles ADPaR alternative queries; nil means uncapped
	// (direct tenant embedding without a Server).
	pool *queryPool
	// log is the tenant's structured logger ("tenant" attr pre-attached);
	// never nil — a discard logger when the server runs unlogged, so hot
	// paths guard with Enabled and pay nothing.
	log *slog.Logger
	// now is the tenant's clock, inherited from Config.Now (never nil).
	// Every time-derived observable on the write path — enqueue stamps,
	// batch-latency EWMA samples, projected-wait deadline checks,
	// recovery timing — reads this clock, never time.Now, so the
	// conformance harness's fixed or stepped clock makes overload
	// shedding and Retry-After hints bit-reproducible. The clockdiscipline
	// analyzer (internal/lint) enforces this statically.
	now func() time.Time

	ops  chan op
	quit chan struct{}
	done chan struct{}
	snap atomic.Pointer[stream.Snapshot]
	// closeOnce makes close idempotent: a drained tenant may also be
	// swept by Server.Close racing the drain.
	closeOnce sync.Once
}

type opKind int

const (
	opSubmit opKind = iota
	opRevoke
	opAvailability
	// opRestoreCounters force-sets epoch and submission counter after the
	// checkpointed pool has been re-admitted (recovery only).
	opRestoreCounters
	// opCheckpoint snapshots the tenant and truncates its WAL.
	opCheckpoint
)

func (k opKind) String() string {
	switch k {
	case opSubmit:
		return "submit"
	case opRevoke:
		return "revoke"
	case opAvailability:
		return "availability"
	case opRestoreCounters:
		return "restore-counters"
	case opCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("opKind(%d)", int(k))
}

// appliedID extracts the request ID an op targets, if any.
func appliedID(o op) string {
	switch o.kind {
	case opSubmit:
		return o.req.ID
	case opRevoke:
		return o.id
	}
	return ""
}

type op struct {
	kind opKind
	req  strategy.Request // opSubmit
	id   string           // opRevoke
	w    float64          // opAvailability
	// replay marks recovery ops: they re-apply already-logged mutations,
	// so the loop must not append them to the WAL again, and they are
	// invisible to OnApply (which observes live traffic only).
	replay bool
	// sub is the restored submission sequence number (replay submits) or
	// the restored submission counter (opRestoreCounters).
	sub uint64
	// epoch is the restored plan epoch (opRestoreCounters).
	epoch uint64
	// ctx carries the caller's deadline for live mutations. The loop
	// checks it immediately before apply: an expired op is shed there —
	// before apply, therefore before its WAL append — never after, so an
	// acknowledgement always refers to a logged mutation.
	ctx   context.Context
	reply chan opResult
	// trace is the op's correlation ID (live mutations only), stamped on
	// every structured log event the op produces end-to-end.
	trace string
	// enq is when the op entered admission; reply-event latency measures
	// from here.
	enq time.Time
}

type opResult struct {
	served bool
	epoch  uint64
	err    error
	// seq is the op's WAL sequence number (live logged mutations only);
	// under group commit it decides, after a failed commit round, whether
	// the op's record made it into the durable prefix.
	seq uint64
	// ckpt reports checkpoint outcomes (opCheckpoint).
	ckpt CheckpointInfo
	// reqWF/reqFeasible echo the replayed submission's recomputed
	// workforce requirement so restore can verify it against the logged
	// fingerprint (replay submits only).
	reqWF       float64
	reqFeasible bool
}

// newTenant builds the tenant, compiles its warm ADPaR index, opens its
// WAL (when durability is on) and starts the event loop. Recovery —
// re-admitting the checkpointed pool and replaying the log tail — runs
// through the event loop itself before newTenant returns, so by the time
// the server exposes its handler the tenant's published snapshot is the
// recovered state.
func newTenant(name string, cfg TenantConfig, dur durability, pool *queryPool, logger *slog.Logger, now func() time.Time) (*Tenant, error) {
	if logger == nil {
		logger = discardLogger()
	}
	if now == nil {
		now = defaultClock()
	}
	mgr, err := stream.NewManager(cfg.Set, cfg.Models, cfg.Mode, cfg.Objective, cfg.InitialW)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", name, err)
	}
	ix, err := adpar.NewIndex(cfg.Set)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", name, err)
	}
	ix.Parallelism = cfg.Parallelism
	if err := mgr.AttachIndex(ix); err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", name, err)
	}
	buf := cfg.OpBuffer
	if buf <= 0 {
		buf = 64
	}
	coalesce := cfg.Coalesce
	if coalesce <= 0 {
		coalesce = 32
	}
	t := &Tenant{
		name:     name,
		mgr:      mgr,
		ix:       ix,
		onApply:  cfg.OnApply,
		faults:   cfg.Faults,
		pool:     pool,
		log:      logger.With(slog.String("tenant", name)),
		coalesce: coalesce,
		batch:    make([]op, 0, coalesce),
		results:  make([]opResult, 0, coalesce),
		ops:      make(chan op, buf),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		now:      now,
	}
	var recovered wal.Recovered
	if dur.dataDir != "" {
		opts := wal.Options{SyncEvery: dur.syncEvery, SyncManual: dur.gc != nil}
		if cfg.Faults != nil && cfg.Faults.WALSync != nil {
			opts.TestSyncHook = cfg.Faults.WALSync
		}
		if cfg.Faults != nil && cfg.Faults.WALAppend != nil {
			opts.TestWriteHook = cfg.Faults.WALAppend
		}
		t.gc = dur.gc
		l, rec, err := wal.Open(filepath.Join(dur.dataDir, name), opts)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %s: opening WAL: %w", name, err)
		}
		t.wal = l
		t.ckptEvery = dur.checkpointEvery
		recovered = rec
	}
	t.met = newTenantMetrics(t)
	t.snap.Store(mgr.Snapshot())
	go t.loop()
	if t.wal != nil {
		start := t.now()
		if err := t.restore(recovered); err != nil {
			t.close()
			return nil, fmt.Errorf("server: tenant %s: recovery: %w", name, err)
		}
		t.met.noteRecovery(recovered, t.now().Sub(start))
		ckptRequests := 0
		if recovered.Checkpoint != nil {
			ckptRequests = len(recovered.Checkpoint.Requests)
		}
		t.log.LogAttrs(context.Background(), slog.LevelInfo, evRecovery,
			slog.Int("checkpoint_requests", ckptRequests),
			slog.Int("tail_records", len(recovered.Tail)),
			slog.Int("torn_bytes", recovered.TornBytes),
			slog.Int64("latency_us", t.now().Sub(start).Microseconds()))
	}
	return t, nil
}

// restore replays recovered durable state through the live event loop:
// availability and pool from the checkpoint (under the original
// submission sequence numbers), counter and epoch restoration, then the
// WAL tail record by record. Each tail record carries the plan epoch its
// original application reached; the replayed application must land on
// exactly that epoch, turning the epoch trail into an end-to-end
// integrity check of recovery.
func (t *Tenant) restore(rec wal.Recovered) error {
	if cp := rec.Checkpoint; cp != nil {
		if res := t.do(context.Background(), op{kind: opAvailability, w: cp.Availability, replay: true}); res.err != nil {
			return fmt.Errorf("restoring availability %v: %w", cp.Availability, res.err)
		}
		for _, r := range cp.Requests {
			res := t.do(context.Background(), op{kind: opSubmit, replay: true, sub: r.Sub, req: strategy.Request{
				ID:     r.ID,
				Params: strategy.Params{Quality: r.Quality, Cost: r.Cost, Latency: r.Latency},
				K:      r.K,
			}})
			if res.err != nil {
				return fmt.Errorf("re-admitting %s (sub %d): %w", r.ID, r.Sub, res.err)
			}
			if err := verifyFingerprint(r.Req, r.Infeasible, res); err != nil {
				return fmt.Errorf("re-admitting %s (sub %d): %w", r.ID, r.Sub, err)
			}
		}
		if res := t.do(context.Background(), op{kind: opRestoreCounters, replay: true, epoch: cp.Epoch, sub: cp.NextSub}); res.err != nil {
			return res.err
		}
	}
	for _, r := range rec.Tail {
		var res opResult
		switch r.Kind {
		case wal.KindSubmit:
			res = t.do(context.Background(), op{kind: opSubmit, replay: true, sub: r.Sub, req: strategy.Request{
				ID:     r.ID,
				Params: strategy.Params{Quality: r.Quality, Cost: r.Cost, Latency: r.Latency},
				K:      r.K,
			}})
			if res.err == nil {
				if err := verifyFingerprint(r.Req, r.Infeasible, res); err != nil {
					return fmt.Errorf("seq %d (submit %s): %w", r.Seq, r.ID, err)
				}
			}
		case wal.KindRevoke:
			res = t.do(context.Background(), op{kind: opRevoke, replay: true, id: r.ID})
		case wal.KindAvailability:
			res = t.do(context.Background(), op{kind: opAvailability, replay: true, w: r.W})
		default:
			return fmt.Errorf("seq %d: unknown record kind %q", r.Seq, r.Kind)
		}
		if res.err != nil {
			return fmt.Errorf("replaying seq %d (%s %s): %w", r.Seq, r.Kind, r.ID, res.err)
		}
		if res.epoch != r.Epoch {
			return fmt.Errorf("epoch divergence at seq %d (%s %s): log recorded %d, replay reached %d",
				r.Seq, r.Kind, r.ID, r.Epoch, res.epoch)
		}
	}
	return nil
}

// verifyFingerprint compares a replayed submission's recomputed workforce
// requirement against the fingerprint its original admission logged. The
// requirement is a pure function of (request, submission seq, catalog,
// models, aggregation mode), so any difference — bit-level included —
// means the log is being replayed against the wrong tenant universe, and
// recovery must fail loudly rather than rebuild a silently different
// plan. The epoch trail cannot catch this: the pool-generation counter is
// deliberately independent of planning outcomes.
func verifyFingerprint(wantReq float64, wantInfeasible bool, res opResult) error {
	if res.reqFeasible == wantInfeasible {
		return fmt.Errorf("requirement fingerprint divergence: log recorded infeasible=%v, replay computed infeasible=%v (wrong catalogs?)",
			wantInfeasible, !res.reqFeasible)
	}
	if !wantInfeasible && res.reqWF != wantReq {
		return fmt.Errorf("requirement fingerprint divergence: log recorded %v, replay computed %v (wrong catalogs?)",
			wantReq, res.reqWF)
	}
	return nil
}

// loop is the tenant's single writer: it owns the stream.Manager
// exclusively. Each cycle drains up to Coalesce pending mutations from
// the inbox and applies them as one deferred-replan batch: per op, the
// manager mutation and its WAL append (apply order, acked ⇒ logged
// preserved); per batch, one plan repair, one snapshot publish, and only
// then the replies — so a client still observes its own write. Admin ops
// (checkpoint, counter restore) never share a cycle with mutations.
func (t *Tenant) loop() {
	defer close(t.done)
	var next *op // a non-coalescable op the drain ran into
	for {
		var o op
		if next != nil {
			o, next = *next, nil
		} else {
			select {
			case o = <-t.ops:
			case <-t.quit:
				t.drainOnClose()
				return
			}
		}
		if !o.kind.mutates() {
			t.applyAdmin(o)
			continue
		}
		batch := append(t.batch[:0], o)
	drain:
		for len(batch) < t.coalesce && next == nil {
			select {
			case o2 := <-t.ops:
				if o2.kind.mutates() {
					batch = append(batch, o2)
				} else {
					next = &o2
				}
			default:
				break drain
			}
		}
		t.applyBatch(batch)
		t.batch = batch[:0]
	}
}

// drainOnClose answers every op still sitting in the inbox when the loop
// shuts down. Each waiter gets a definitive ErrTenantClosed (a shed:
// never applied, never logged) instead of racing the done channel, so a
// graceful shutdown acks-or-sheds every accepted op deterministically.
// Senders racing the quit close may still slip an op in after this drain;
// they resolve through do's done-recheck to the same ErrTenantClosed.
func (t *Tenant) drainOnClose() {
	for {
		select {
		case o := <-t.ops:
			o.reply <- opResult{err: ErrTenantClosed}
		default:
			return
		}
	}
}

// applyAdmin serves the non-mutating ops (checkpoint, counter restore)
// outside any coalesced batch.
func (t *Tenant) applyAdmin(o op) {
	var res opResult
	switch o.kind {
	case opRestoreCounters:
		t.mgr.RestoreCounters(o.epoch, o.sub)
	case opCheckpoint:
		res.ckpt, res.err = t.checkpointNow()
	}
	res.epoch = t.mgr.Epoch()
	if res.err == nil {
		t.snap.Store(t.mgr.Snapshot())
	}
	o.reply <- res
}

// applyBatch applies a drained batch of mutations through the manager's
// deferred-replan mode. The WAL append for each op happens immediately
// after its apply — in apply order, before the batch's snapshot publish
// and before any reply — so the acked ⇒ logged invariant and the
// per-record epoch trail are exactly what a one-op-per-cycle loop would
// have produced. On a WAL append failure the failing mutation is applied
// but unlogged: the whole batch's snapshot is withheld so no reader ever
// observes it, the remaining ops are rejected unapplied, and the tenant
// goes read-only (ErrWALBroken). The log's failure handler rolls the
// segment back to its durable prefix, so ops earlier in the batch are
// acknowledged only if their records are inside that prefix (an inline
// sync or a mid-batch auto-checkpoint made them durable); anything past
// it — buffered records a manual-sync batch had not yet committed — is
// re-marked ErrWALBroken before the replies, keeping acked ⇒ logged ⇒
// fsynced exact. Acknowledged ops stay invisible until the restart
// rebuilds exactly the logged state.
func (t *Tenant) applyBatch(ops []op) {
	start := t.now()
	results := t.results[:0]
	walFailed := false
	anyApplied := false
	appended := false
	// Progress events are debug-level and guarded once per batch, so an
	// unlogged server pays one atomic load here, not per-op attribute
	// construction.
	dbg := t.log.Enabled(context.Background(), slog.LevelDebug)
	t.mgr.Begin()
	for _, o := range ops {
		var res opResult
		if t.readOnly.Load() && !o.replay {
			res.err = ErrWALBroken
			res.epoch = t.mgr.Epoch()
			results = append(results, res)
			continue
		}
		// Deadline check at the last possible pre-apply moment: an op
		// whose caller deadline already expired while it queued is shed
		// here — before apply, therefore before any WAL append — so a
		// 429 is as absolute a promise as a never-enqueued shed.
		if ctxExpired(o.ctx, t.now) {
			res.err = t.shedDeadline(
				fmt.Sprintf("deadline expired while queued (%s %s)", o.kind, appliedID(o)),
				t.projectedWait(len(t.ops)))
			res.epoch = t.mgr.Epoch()
			results = append(results, res)
			continue
		}
		t.applyDelay(o)
		switch o.kind {
		case opSubmit:
			if o.replay {
				_, res.err = t.mgr.Resubmit(o.req, o.sub)
			} else {
				_, res.err = t.mgr.Submit(o.req)
			}
		case opRevoke:
			res.err = t.mgr.Revoke(o.id)
		case opAvailability:
			res.err = t.mgr.SetAvailability(o.w)
		}
		res.epoch = t.mgr.Epoch()
		if dbg && !o.replay {
			attrs := []slog.Attr{
				slog.String("trace", o.trace),
				slog.String("kind", o.kind.String()),
				slog.String("id", appliedID(o)),
				slog.Uint64("epoch", res.epoch),
			}
			if res.err != nil {
				attrs = append(attrs, slog.String("error", res.err.Error()))
			}
			t.log.LogAttrs(context.Background(), slog.LevelDebug, evApply, attrs...)
		}
		if res.err == nil {
			if o.kind == opSubmit {
				if req, ok := t.mgr.Requirement(o.req.ID); ok {
					res.reqWF, res.reqFeasible = req.Workforce, req.Feasible()
				}
			}
			if t.wal != nil && !o.replay {
				if seq, werr := t.logMutation(o, res); werr != nil {
					// The triggering op reports ErrWALBroken like every
					// write after it: its apply will not survive the
					// restart, so the client must read the 503 as "not
					// acknowledged, will be absent" — same contract.
					res.err = fmt.Errorf("%w (append failed: %v)", ErrWALBroken, werr)
					t.met.walErrors.Add(1)
					// The manager applied a mutation the log did not
					// record: freeze the divergence at this one unacked op.
					t.readOnly.Store(true)
					walFailed = true
				} else {
					res.seq = seq
					appended = true
					if dbg {
						t.log.LogAttrs(context.Background(), slog.LevelDebug, evAppend,
							slog.String("trace", o.trace),
							slog.String("kind", o.kind.String()),
							slog.String("id", appliedID(o)),
							slog.Uint64("seq", seq))
					}
				}
			}
			if res.err == nil {
				anyApplied = true
			}
		}
		results = append(results, res)
	}
	t.mgr.Commit()
	if t.gc != nil && appended && !walFailed {
		// Group commit: the batch's appends are buffered, not yet durable.
		// Hand the log to the shared scheduler and block until its fsync
		// round completes — still strictly before the snapshot publish and
		// the replies, so acked ⇒ logged ⇒ fsynced holds per op exactly as
		// it does with inline syncs; only the fsync is shared.
		if cerr := t.gc.commit(t.wal); cerr != nil {
			// The round failed and the log rolled itself back to its
			// durable prefix. Records at sequence numbers beyond that
			// prefix are gone — their ops flip to ErrWALBroken (never
			// acknowledged, absent after restart). Records at or below it
			// were made durable earlier (a mid-batch auto-checkpoint) and
			// their acks stand.
			durable := t.wal.DurableSeq()
			for i := range results {
				if results[i].err == nil && results[i].seq > durable {
					results[i].err = fmt.Errorf("%w (group commit failed: %v)", ErrWALBroken, cerr)
				}
			}
			t.met.walErrors.Add(1)
			t.readOnly.Store(true)
			walFailed = true
		} else if dbg {
			t.log.LogAttrs(context.Background(), slog.LevelDebug, evCommit,
				slog.Int("batch_ops", len(ops)),
				slog.Uint64("durable_seq", t.wal.DurableSeq()))
		}
	}
	if walFailed {
		// A failed append rolled the log back to its durable prefix
		// (wal fail), destroying not just the failing record but any
		// earlier same-batch records still buffered — or spilled to the
		// file but not yet fsynced — past that prefix. Their ops carry
		// err==nil and a seq beyond the prefix: acknowledging them would
		// violate acked ⇒ logged ⇒ fsynced (the mutations vanish on
		// restart), so they flip to ErrWALBroken exactly like the failed
		// commit round above. After a failed round this pass is a no-op:
		// the cerr branch already re-marked everything past the prefix.
		// Records at or below the prefix were made durable earlier (an
		// inline sync or a mid-batch auto-checkpoint) and their acks
		// stand.
		durable := t.wal.DurableSeq()
		for i := range results {
			if results[i].err == nil && results[i].seq > durable {
				results[i].err = fmt.Errorf("%w (a later append in the batch failed; this record was rolled back)", ErrWALBroken)
			}
		}
	}
	if anyApplied && !walFailed {
		t.snap.Store(t.mgr.Snapshot())
		if dbg && !ops[0].replay {
			t.log.LogAttrs(context.Background(), slog.LevelDebug, evPublish,
				slog.Uint64("epoch", t.mgr.Epoch()),
				slog.Int("batch_ops", len(ops)))
		}
	}
	if !ops[0].replay {
		t.met.batches.Add(1)
		t.met.batchedOps.Add(int64(len(ops)))
		t.batchLatency.observe(t.now().Sub(start))
	}
	for i, o := range ops {
		res := results[i]
		if o.kind == opSubmit && res.err == nil {
			res.served, _ = t.mgr.Served(o.req.ID)
		}
		if t.onApply != nil && !o.replay {
			t.onApply(AppliedOp{
				Tenant: t.name,
				Kind:   o.kind.String(),
				ID:     appliedID(o),
				Epoch:  res.epoch,
				Err:    res.err,
			})
		}
		o.reply <- res
	}
	t.results = results[:0]
}

// mutates reports whether the op kind changes tenant state that the WAL
// must capture.
func (k opKind) mutates() bool {
	return k == opSubmit || k == opRevoke || k == opAvailability
}

// logMutation appends one applied mutation to the WAL, then
// auto-checkpoints when the configured append budget since the last
// checkpoint is spent. It runs immediately after the mutation applied —
// possibly mid-batch, before the deferred replan — so the record carries
// only replan-independent fields: the pool-generation epoch and, for
// submits, the admission-time requirement fingerprint.
func (t *Tenant) logMutation(o op, res opResult) (uint64, error) {
	rec := wal.Record{Epoch: res.epoch}
	switch o.kind {
	case opSubmit:
		seq, ok := t.mgr.SubmissionSeq(o.req.ID)
		if !ok {
			return 0, fmt.Errorf("submitted request %s missing from its own pool", o.req.ID)
		}
		rec.Kind = wal.KindSubmit
		rec.ID = o.req.ID
		rec.Quality = o.req.Quality
		rec.Cost = o.req.Cost
		rec.Latency = o.req.Latency
		rec.K = o.req.K
		rec.Sub = seq
		rec.Infeasible = !res.reqFeasible
		if res.reqFeasible {
			// +Inf (the infeasible sentinel) does not survive JSON; the
			// flag alone carries that case.
			rec.Req = res.reqWF
		}
	case opRevoke:
		rec.Kind = wal.KindRevoke
		rec.ID = o.id
	case opAvailability:
		rec.Kind = wal.KindAvailability
		rec.W = o.w
	}
	walSeq, err := t.wal.Append(rec)
	if err != nil {
		return 0, err
	}
	t.sinceCkpt++
	if t.ckptEvery > 0 && t.sinceCkpt >= t.ckptEvery {
		// An auto-checkpoint failure is not the triggering mutation's
		// problem: that mutation is applied and durably logged (under
		// group commit: will be, before its ack). Count it and retry at
		// the next append (sinceCkpt keeps growing); the log just stays
		// longer than intended until a checkpoint lands.
		if _, err := t.checkpointNow(); err != nil {
			t.met.checkpointErrors.Add(1)
		}
	}
	return walSeq, nil
}

// checkpointNow (loop goroutine only) freezes the manager state into a
// durable checkpoint and truncates the WAL behind it. It is safe to run
// mid-batch (an auto-checkpoint triggered between a batch's appends):
// everything the checkpoint stores — pool membership, admission-cached
// requirements, epoch, availability, submission counter — is independent
// of the deferred plan repair, and the serving flags a mid-batch snapshot
// might show stale are not persisted (recovery recomputes the plan).
func (t *Tenant) checkpointNow() (CheckpointInfo, error) {
	if t.wal == nil {
		return CheckpointInfo{}, ErrNoDurability
	}
	if t.readOnly.Load() {
		// The manager holds exactly one mutation the log never recorded.
		// A checkpoint here would make that unacknowledged divergence
		// durable (and truncate the good log behind it), destroying the
		// restart-rebuilds-the-logged-state guarantee the read-only
		// circuit breaker exists to protect.
		return CheckpointInfo{}, fmt.Errorf("%w: checkpoint refused, memory holds an unlogged mutation", ErrWALBroken)
	}
	snap := t.mgr.Snapshot()
	cp := wal.Checkpoint{
		Epoch:        snap.Epoch,
		Availability: snap.Availability,
		NextSub:      t.mgr.SubmissionCounter(),
		Requests:     make([]wal.CheckpointRequest, 0, len(snap.Requests)),
	}
	for _, rs := range snap.Requests {
		cr := wal.CheckpointRequest{
			ID:         rs.ID,
			Quality:    rs.Request.Quality,
			Cost:       rs.Request.Cost,
			Latency:    rs.Request.Latency,
			K:          rs.Request.K,
			Sub:        rs.Seq,
			Infeasible: !rs.Feasible,
		}
		if rs.Feasible {
			cr.Req = rs.Workforce
		}
		cp.Requests = append(cp.Requests, cr)
	}
	removed, err := t.wal.Checkpoint(cp)
	if err != nil {
		return CheckpointInfo{}, err
	}
	t.sinceCkpt = 0
	t.met.checkpoints.Add(1)
	t.log.LogAttrs(context.Background(), slog.LevelInfo, evCheckpoint,
		slog.Uint64("last_seq", t.wal.LastSeq()),
		slog.Int("requests", len(cp.Requests)),
		slog.Int("removed_segments", removed))
	return CheckpointInfo{
		LastSeq:         t.wal.LastSeq(),
		Requests:        len(cp.Requests),
		RemovedSegments: removed,
	}, nil
}

// do routes one op through the event loop. Live mutations pass admission
// control first: a read-only tenant rejects immediately; a deadline the
// projected queue wait already overshoots sheds immediately (the op would
// only expire in line); a full inbox sheds instead of blocking — the
// pre-overload behaviour of parking the caller goroutine forever is
// exactly the unbounded queue this layer removes. Replay and admin ops
// keep the blocking enqueue: recovery owns the loop, and a checkpoint is
// allowed to wait out a burst.
//
// Once enqueued, do always waits for the loop's definitive reply — it
// never abandons on a context deadline, because the loop may be mid-apply
// and "applied + logged but caller gave up" would break exactly-once
// accounting: the loop itself sheds expired ops before apply and replies
// so. The reply channel is buffered, so the loop's send cannot block (or
// leak) even when the waiter has resolved through the closed done channel.
func (t *Tenant) do(ctx context.Context, o op) opResult {
	o.reply = make(chan opResult, 1)
	live := o.kind.mutates() && !o.replay
	if live {
		o.ctx = ctx
		o.trace = traceFrom(ctx)
		o.enq = t.now()
		res, ok := t.admit(&o)
		if !ok {
			t.logTerminal(o, res)
			return res
		}
	} else {
		select {
		case t.ops <- o:
		case <-t.quit:
			return opResult{err: ErrTenantClosed}
		}
	}
	res := t.await(&o)
	if live {
		t.logTerminal(o, res)
	}
	return res
}

// ctxExpired reports whether ctx has ended, judging its deadline (if any)
// against the injected clock rather than the runtime's wall clock. The
// HTTP layer derives mutation deadlines from the same clock (see
// mutationContext), so under a fake clock the whole deadline path —
// stamping, admission projection, and this pre-apply check — lives on one
// timeline; under the real clock the comparison is equivalent to ctx.Err.
// Cancellation (client gone) is still honored directly.
func ctxExpired(ctx context.Context, now func() time.Time) bool {
	if ctx == nil {
		return false
	}
	if dl, ok := ctx.Deadline(); ok {
		// A deadline-bearing mutation context (mutationContext) is detached
		// from the request and cancelled only by its own deadline, so the
		// injected-clock comparison is the sole judge — the runtime timer
		// behind ctx.Done() reads the wall clock and would fire early (or
		// never) under a fake one.
		return !now().Before(dl)
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// admit runs admission control for one live mutation and enqueues it.
// ok=false means the op was rejected without being enqueued (the result
// carries the shed/rejection error).
func (t *Tenant) admit(o *op) (opResult, bool) {
	if t.readOnly.Load() {
		return opResult{err: ErrWALBroken}, false
	}
	if t.draining.Load() {
		// The tenant is being removed at runtime: same contract as
		// shutdown — the mutation was never enqueued, never applied.
		return opResult{err: ErrTenantClosed}, false
	}
	if dl, ok := o.ctx.Deadline(); ok {
		wait := t.projectedWait(len(t.ops))
		if t.now().Add(wait).After(dl) {
			return opResult{err: t.shedDeadline(
				fmt.Sprintf("projected queue wait %v exceeds request deadline", wait), wait)}, false
		}
	}
	select {
	case t.ops <- *o:
	case <-t.quit:
		return opResult{err: ErrTenantClosed}, false
	default:
		select {
		// The inbox is full, but distinguish shutdown from overload:
		// a closing tenant is 503, not 429.
		case <-t.quit:
			return opResult{err: ErrTenantClosed}, false
		default:
			return opResult{err: t.shedQueueFull()}, false
		}
	}
	if t.log.Enabled(context.Background(), slog.LevelDebug) {
		t.log.LogAttrs(context.Background(), slog.LevelDebug, evAdmit,
			slog.String("trace", o.trace),
			slog.String("kind", o.kind.String()),
			slog.String("id", appliedID(*o)),
			slog.Int("queue_depth", len(t.ops)))
	}
	return opResult{}, true
}

// await collects the loop's definitive reply for an enqueued op.
func (t *Tenant) await(o *op) opResult {
	select {
	case res := <-o.reply:
		return res
	case <-t.done:
		// The loop exited after accepting but before serving the op.
		select {
		case res := <-o.reply:
			return res
		default:
			return opResult{err: ErrTenantClosed}
		}
	}
}

// logTerminal emits a live mutation's single terminal event: "shed" when
// the op was rejected without a surviving, durable apply (overload,
// deadline, tenant closed or draining, WAL broken), "reply" otherwise —
// the loop's definitive answer, acks and domain errors alike. Exactly
// one terminal event per live mutation is a contract the conformance
// oracle checks: it correlates every ack and shed to one log line by
// trace ID.
func (t *Tenant) logTerminal(o op, res opResult) {
	ev, lvl := evReply, slog.LevelInfo
	if err := res.err; err != nil &&
		(errors.Is(err, ErrOverloaded) || errors.Is(err, ErrTenantClosed) || errors.Is(err, ErrWALBroken)) {
		ev, lvl = evShed, slog.LevelWarn
	}
	if !t.log.Enabled(context.Background(), lvl) {
		return
	}
	attrs := []slog.Attr{
		slog.String("trace", o.trace),
		slog.String("kind", o.kind.String()),
		slog.String("id", appliedID(o)),
		slog.Uint64("epoch", res.epoch),
		slog.Int64("latency_us", t.now().Sub(o.enq).Microseconds()),
	}
	if res.seq > 0 {
		attrs = append(attrs, slog.Uint64("seq", res.seq))
	}
	if res.err != nil {
		attrs = append(attrs, slog.String("error", res.err.Error()))
	}
	t.log.LogAttrs(context.Background(), lvl, ev, attrs...)
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// SubmitResult reports the outcome of a submission. Served reflects the
// plan published with the acknowledgement: under coalescing that plan
// already includes every mutation applied in the same replan cycle, so a
// denser submit drained into the same batch can displace this one before
// its ack (and a same-batch revoke reports Served=false). Epoch is the
// pool-generation counter after this mutation alone, batch-independent.
type SubmitResult struct {
	Served bool
	Epoch  uint64
}

// Submit admits a request through the event loop. ctx carries the
// caller's deadline into admission control and the loop's pre-apply shed
// check; Submit itself still waits for the loop's definitive answer (see
// do).
func (t *Tenant) Submit(ctx context.Context, d strategy.Request) (SubmitResult, error) {
	res := t.do(ctx, op{kind: opSubmit, req: d})
	if res.err != nil {
		t.noteMutationErr(res.err)
		return SubmitResult{}, res.err
	}
	t.met.submits.Add(1)
	return SubmitResult{Served: res.served, Epoch: res.epoch}, nil
}

// Revoke withdraws an open request through the event loop.
func (t *Tenant) Revoke(ctx context.Context, id string) (uint64, error) {
	res := t.do(ctx, op{kind: opRevoke, id: id})
	if res.err != nil {
		t.noteMutationErr(res.err)
		return 0, res.err
	}
	t.met.revokes.Add(1)
	return res.epoch, nil
}

// SetAvailability moves the expected workforce through the event loop.
func (t *Tenant) SetAvailability(ctx context.Context, w float64) (uint64, error) {
	res := t.do(ctx, op{kind: opAvailability, w: w})
	if res.err != nil {
		t.noteMutationErr(res.err)
		return 0, res.err
	}
	t.met.drifts.Add(1)
	return res.epoch, nil
}

// applyOps routes an ordered batch of live mutations through the event
// loop — the engine behind POST /v1/tenants/{tenant}/ops. Admission runs
// once for the whole batch: a read-only tenant, an already-expired
// deadline, or a projected queue wait the deadline cannot absorb rejects
// the batch as a unit (non-nil error, nothing enqueued, no partial
// application). Past admission, ops enqueue in order with the same
// non-blocking policy as single ops — an inbox that fills mid-batch
// sheds the remaining ops individually (429 with Retry-After) rather
// than blocking the ingest handler — and every enqueued op gets the
// loop's definitive reply, exactly as do does. Because the inbox is
// FIFO and this goroutine is the only sender of these ops, the batch
// applies in body order; consecutive ops land in the same coalesced
// replan cycle (and, under group commit, the same fsync round) whenever
// the loop drains them together, which is the endpoint's point.
func (t *Tenant) applyOps(ctx context.Context, ops []op) ([]opResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	if t.readOnly.Load() {
		t.met.errors.Add(1)
		return nil, t.logBatchShed(ctx, len(ops), ErrWALBroken)
	}
	if t.draining.Load() {
		return nil, t.logBatchShed(ctx, len(ops), ErrTenantClosed)
	}
	if ctx != nil {
		if ctxExpired(ctx, t.now) {
			return nil, t.logBatchShed(ctx, len(ops),
				t.shedDeadline("batch deadline expired before enqueue", t.projectedWait(len(t.ops))))
		}
		if dl, ok := ctx.Deadline(); ok {
			wait := t.projectedWait(len(t.ops))
			if t.now().Add(wait).After(dl) {
				return nil, t.logBatchShed(ctx, len(ops), t.shedDeadline(
					fmt.Sprintf("projected queue wait %v exceeds batch deadline", wait), wait))
			}
		}
	}
	trace := traceFrom(ctx)
	enq := t.now()
	dbg := t.log.Enabled(context.Background(), slog.LevelDebug)
	results := make([]opResult, len(ops))
	pending := make([]int, 0, len(ops))
	for i := range ops {
		ops[i].ctx = ctx
		// Every op of the batch shares the request's trace ID; the per-op
		// "id" attr disambiguates within the batch.
		ops[i].trace = trace
		ops[i].enq = enq
		ops[i].reply = make(chan opResult, 1)
		select {
		case t.ops <- ops[i]:
			pending = append(pending, i)
			if dbg {
				t.log.LogAttrs(context.Background(), slog.LevelDebug, evAdmit,
					slog.String("trace", trace),
					slog.String("kind", ops[i].kind.String()),
					slog.String("id", appliedID(ops[i])),
					slog.Int("queue_depth", len(t.ops)))
			}
		case <-t.quit:
			results[i] = opResult{err: ErrTenantClosed}
		default:
			select {
			case <-t.quit:
				results[i] = opResult{err: ErrTenantClosed}
			default:
				results[i] = opResult{err: t.shedQueueFull()}
			}
		}
	}
	// Replies arrive in enqueue order (FIFO inbox, in-order loop), so a
	// sequential collect never waits on an op behind an unserved one.
	for _, i := range pending {
		select {
		case res := <-ops[i].reply:
			results[i] = res
		case <-t.done:
			select {
			case res := <-ops[i].reply:
				results[i] = res
			default:
				results[i] = opResult{err: ErrTenantClosed}
			}
		}
	}
	// Per-op accounting feeds the same counters as the single-op paths,
	// so dashboards see one traffic stream regardless of wire shape —
	// and each op gets its terminal log event, same as a single op.
	for i := range ops {
		t.logTerminal(ops[i], results[i])
		if err := results[i].err; err != nil {
			t.noteMutationErr(err)
			continue
		}
		switch ops[i].kind {
		case opSubmit:
			t.met.submits.Add(1)
		case opRevoke:
			t.met.revokes.Add(1)
		case opAvailability:
			t.met.drifts.Add(1)
		}
	}
	t.met.ingestBatches.Add(1)
	t.met.ingestBatchOps.Add(int64(len(ops)))
	return results, nil
}

// logBatchShed emits the single terminal "shed" event for a batched
// ingest rejected as a unit (read-only, draining, deadline) — nothing
// was enqueued, so there are no per-op events to carry the trace. It
// returns err unchanged so rejection sites stay one-line.
func (t *Tenant) logBatchShed(ctx context.Context, n int, err error) error {
	if !t.log.Enabled(context.Background(), slog.LevelWarn) {
		return err
	}
	var trace string
	if ctx != nil {
		trace = traceFrom(ctx)
	}
	t.log.LogAttrs(context.Background(), slog.LevelWarn, evShed,
		slog.String("trace", trace),
		slog.String("kind", "batch"),
		slog.Int("batch_ops", n),
		slog.String("error", err.Error()))
	return err
}

// noteMutationErr counts a failed mutation, keeping sheds out of the
// generic error counter — they have dedicated counters and are expected
// under overload, not a fault.
func (t *Tenant) noteMutationErr(err error) {
	if !errors.Is(err, ErrOverloaded) {
		t.met.errors.Add(1)
	}
}

// CheckpointInfo reports one tenant checkpoint's outcome.
type CheckpointInfo struct {
	// LastSeq is the WAL sequence number the checkpoint covers.
	LastSeq uint64 `json:"last_seq"`
	// Requests is the number of open requests frozen into the checkpoint.
	Requests int `json:"requests"`
	// RemovedSegments counts log segments deleted by the truncation.
	RemovedSegments int `json:"removed_segments"`
}

// Checkpoint snapshots the tenant's durable state and truncates its WAL,
// through the event loop (so the checkpoint is consistent: no mutation is
// half-applied in it). Fails with ErrNoDurability when the server runs
// without a data directory.
func (t *Tenant) Checkpoint() (CheckpointInfo, error) {
	res := t.do(context.Background(), op{kind: opCheckpoint})
	if res.err != nil {
		if !errors.Is(res.err, ErrNoDurability) {
			t.met.errors.Add(1)
		}
		return CheckpointInfo{}, res.err
	}
	return res.ckpt, nil
}

// Snapshot returns the latest published plan snapshot — a lock-free read.
func (t *Tenant) Snapshot() *stream.Snapshot {
	t.met.planReads.Add(1)
	return t.snap.Load()
}

// Alternative recommends ADPaR alternative parameters for an open request
// the current plan does not serve. The call takes no locks — the request
// is resolved against the latest snapshot and solved on the tenant's
// immutable warm index — but the CPU-heavy solve is throttled through the
// server's query pool (when one is attached): a bounded number run
// concurrently, a bounded number wait, and beyond that the query is shed
// with ErrOverloaded. Plan reads and mutation acks are never behind the
// pool. The returned RequestState is the one the solution was computed
// for, so callers read K (and anything else) from it rather than
// re-resolving the ID against a possibly newer snapshot.
func (t *Tenant) Alternative(ctx context.Context, id string) (adpar.Solution, stream.RequestState, error) {
	if t.pool != nil {
		if err := t.pool.acquire(ctx); err != nil {
			return adpar.Solution{}, stream.RequestState{}, err
		}
		defer t.pool.release()
	}
	if t.faults != nil && t.faults.SolveDelay > 0 {
		time.Sleep(t.faults.SolveDelay)
	}
	rs, ok := t.snap.Load().Request(id)
	if !ok {
		t.met.errors.Add(1)
		return adpar.Solution{}, rs, fmt.Errorf("%w: %s", stream.ErrUnknownID, id)
	}
	if rs.Serving {
		t.met.errors.Add(1)
		return adpar.Solution{}, rs, fmt.Errorf("%w: %s", stream.ErrServed, id)
	}
	sol, err := t.ix.Solve(rs.Request)
	if err != nil {
		t.met.errors.Add(1)
		return adpar.Solution{}, rs, err
	}
	t.met.alternatives.Add(1)
	return sol, rs, nil
}

// close stops the event loop, then flushes and closes the WAL. Pending
// ops that the loop never accepted (and callers racing the shutdown) get
// ErrTenantClosed. Idempotent: a runtime drain and Server.Close may
// race.
func (t *Tenant) close() {
	t.closeOnce.Do(func() {
		close(t.quit)
		<-t.done
		if t.wal != nil {
			t.wal.Close()
		}
	})
}
