package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"
)

// ErrOverloaded is wrapped by every load-shedding rejection: a mutation
// the tenant's bounded inbox could not absorb, a mutation whose projected
// queue wait already exceeds the caller's deadline, or an ADPaR
// alternative query the worker pool's bounded queue turned away. Shed
// responses map to 429 with a Retry-After header; crucially, a shed op
// was NEVER applied and NEVER logged, so a 429 is a hard promise that the
// mutation left no trace — the chaos oracle (internal/conformance)
// verifies exactly that across kill/restart cycles.
var ErrOverloaded = errors.New("server: overloaded")

// OverloadError is the concrete shed error: it carries the Retry-After
// the HTTP layer advertises, computed from the live queue depth and an
// EWMA of recent coalesced-batch latency (mutations) or pool wait
// (alternative queries). It unwraps to ErrOverloaded.
type OverloadError struct {
	// RetryAfter is the server's estimate of when retrying could succeed.
	RetryAfter time.Duration
	// Reason says which admission check shed the request.
	Reason string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: overloaded: %s (retry after %v)", e.Reason, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// retryAfterSeconds rounds a wait estimate up to the whole seconds the
// Retry-After header speaks, with a floor of 1. It is a presentation
// concern of the HTTP header writer ONLY: OverloadError.RetryAfter
// carries the precise projected wait, and the JSON envelope's
// retry_after_ms keeps its millisecond precision end-to-end. Rounding at
// error-construction time was the Retry-After granularity bug — a 5ms
// projected wait became a 1s backoff hint, 200x the wait admission
// control actually projected, exactly the tail latency the overload
// layer exists to protect.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// ewma is a concurrency-safe exponentially-weighted moving average over
// duration samples, alpha = 1/4. The single writer is the measuring
// goroutine; readers are admission checks and metrics gauges.
type ewma struct {
	nanos atomic.Int64
}

func (e *ewma) observe(d time.Duration) {
	cur := e.nanos.Load()
	if cur == 0 {
		e.nanos.Store(int64(d))
		return
	}
	e.nanos.Store(cur + (int64(d)-cur)/4)
}

// get returns the current average, or fallback before the first sample.
func (e *ewma) get(fallback time.Duration) time.Duration {
	if v := e.nanos.Load(); v > 0 {
		return time.Duration(v)
	}
	return fallback
}

// fallbackBatchLatency seeds wait projections before the loop has
// measured a single coalesced batch.
const fallbackBatchLatency = 500 * time.Microsecond

// projectedWait estimates how long a mutation enqueued behind depth
// waiting ops will sit before its batch applies: the number of coalesced
// batches ahead of it times the recent batch latency.
func (t *Tenant) projectedWait(depth int) time.Duration {
	batches := depth/t.coalesce + 1
	return time.Duration(batches) * t.batchLatency.get(fallbackBatchLatency)
}

// shedQueueFull builds the 429 for a full inbox: the retry estimate is
// the time to drain the whole queue.
func (t *Tenant) shedQueueFull() error {
	t.met.shedsQueueFull.Add(1)
	wait := t.projectedWait(cap(t.ops))
	return &OverloadError{
		RetryAfter: wait,
		Reason:     fmt.Sprintf("tenant %s inbox full (%d ops)", t.name, cap(t.ops)),
	}
}

// shedDeadline builds the 429 for a mutation whose deadline cannot be met
// — either projected at admission or observed expired by the loop before
// apply. The op was not applied and not logged.
func (t *Tenant) shedDeadline(reason string, wait time.Duration) error {
	t.met.shedsDeadline.Add(1)
	return &OverloadError{
		RetryAfter: wait,
		Reason:     reason,
	}
}

// --- ADPaR alternative-query worker pool ---

// queryPool is the concurrency limiter for ADPaR alternative queries: a
// fixed worker count (slots) plus a bounded wait queue. Alternative
// solves are the one CPU-heavy read in the system (tens of ms at large
// catalogs), and a thundering herd of displaced requests re-polling
// alternatives must not starve plan reads (lock-free, never pooled) or
// mutation acks (event loop, independent goroutine). Beyond the queue
// bound the query is shed with 429 + Retry-After so clients back off
// instead of piling onto the handler goroutine count.
type queryPool struct {
	slots    chan struct{}
	queueCap int
	// now is the pool's clock, inherited from Config.Now (never nil):
	// queue-wait EWMA samples feed Retry-After hints, which must be
	// reproducible under the conformance harness's stepped clock.
	now func() time.Time

	waiting  atomic.Int64
	sheds    atomic.Int64
	waitEWMA ewma
}

func newQueryPool(workers, queue int, now func() time.Time) *queryPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 2 * workers
	}
	if now == nil {
		now = defaultClock()
	}
	return &queryPool{slots: make(chan struct{}, workers), queueCap: queue, now: now}
}

// acquire takes a worker slot, waiting in the bounded queue when all
// slots are busy. It sheds (ErrOverloaded) when the queue is full, and
// aborts with ctx.Err() when the caller's context ends first (client
// gone, deadline passed) — the query never ran, so aborting is free.
func (p *queryPool) acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		return nil
	default:
	}
	if p.waiting.Add(1) > int64(p.queueCap) {
		p.waiting.Add(-1)
		p.sheds.Add(1)
		wait := time.Duration(p.queueCap) * p.waitEWMA.get(time.Millisecond)
		return &OverloadError{
			RetryAfter: wait,
			Reason:     fmt.Sprintf("alternative-query pool saturated (%d workers, %d queued)", cap(p.slots), p.queueCap),
		}
	}
	defer p.waiting.Add(-1)
	start := p.now()
	select {
	case p.slots <- struct{}{}:
		p.waitEWMA.observe(p.now().Sub(start))
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *queryPool) release() { <-p.slots }

// --- health ---

// Tenant health statuses reported by GET /healthz.
const (
	// HealthOK: accepting reads and writes, inbox has headroom.
	HealthOK = "ok"
	// HealthDegraded: still accepting writes but the inbox is at least
	// half full — new mutations are at risk of being shed.
	HealthDegraded = "degraded"
	// HealthReadOnly: the WAL circuit breaker has tripped; reads serve
	// the last published snapshot, writes fail until an operator
	// restarts the server (recovery rebuilds the logged state).
	HealthReadOnly = "read-only"
)

// TenantHealth is one tenant's row in the /healthz response.
type TenantHealth struct {
	Status        string `json:"status"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
}

// HealthResponse is the GET /healthz body: per-tenant status plus the
// aggregate. The aggregate is "ok" only when every tenant is ok,
// "unavailable" (the only non-200 case) only when every tenant is
// read-only, and "degraded" otherwise.
type HealthResponse struct {
	Status  string                  `json:"status"`
	Tenants map[string]TenantHealth `json:"tenants"`
}

// health samples the tenant's live state. Channel len/cap are safe from
// any goroutine, and the read-only flag is atomic, so this never touches
// the event loop.
func (t *Tenant) health() TenantHealth {
	h := TenantHealth{QueueDepth: len(t.ops), QueueCapacity: cap(t.ops)}
	switch {
	case t.readOnly.Load():
		h.Status = HealthReadOnly
	case 2*h.QueueDepth >= h.QueueCapacity:
		h.Status = HealthDegraded
	default:
		h.Status = HealthOK
	}
	return h
}
