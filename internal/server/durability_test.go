package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"stratrec/internal/strategy"
	"stratrec/internal/stream"
	"stratrec/internal/wal"
)

// snapshotsEqual diffs two tenant snapshots field by field, the same
// observables the HTTP plan endpoint serves plus the submission sequence
// numbers recovery must preserve.
func snapshotsEqual(t *testing.T, want, got *stream.Snapshot) {
	t.Helper()
	if got.Epoch != want.Epoch {
		t.Errorf("epoch: want %d, got %d", want.Epoch, got.Epoch)
	}
	if got.Availability != want.Availability {
		t.Errorf("availability: want %v, got %v", want.Availability, got.Availability)
	}
	if len(got.Requests) != len(want.Requests) {
		t.Fatalf("open requests: want %d, got %d", len(want.Requests), len(got.Requests))
	}
	for i, w := range want.Requests {
		g := got.Requests[i]
		switch {
		case g.ID != w.ID:
			t.Errorf("request %d: id want %s, got %s", i, w.ID, g.ID)
		case g.Seq != w.Seq:
			t.Errorf("request %s: sub seq want %d, got %d", w.ID, w.Seq, g.Seq)
		case g.Serving != w.Serving:
			t.Errorf("request %s: serving want %v, got %v", w.ID, w.Serving, g.Serving)
		case g.Feasible != w.Feasible:
			t.Errorf("request %s: feasible want %v, got %v", w.ID, w.Feasible, g.Feasible)
		case g.Request != w.Request:
			t.Errorf("request %s: params want %+v, got %+v", w.ID, w.Request, g.Request)
		}
		if w.Workforce != g.Workforce && !(math.IsInf(w.Workforce, 1) && math.IsInf(g.Workforce, 1)) {
			t.Errorf("request %s: workforce want %v, got %v", w.ID, w.Workforce, g.Workforce)
		}
	}
	if len(got.Plan.Serving) != len(want.Plan.Serving) {
		t.Errorf("serving: want %v, got %v", want.Plan.Serving, got.Plan.Serving)
	}
}

// driveMutations applies a deterministic submit/revoke/drift mix directly
// through the tenant API and returns the IDs still open.
func driveMutations(t *testing.T, tn *Tenant, n int, seed int64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var open []string
	next := 0
	for i := 0; i < n; i++ {
		switch {
		case len(open) > 0 && (rng.Float64() < 0.45 || len(open) > 40):
			j := rng.Intn(len(open))
			id := open[j]
			open = append(open[:j], open[j+1:]...)
			if _, err := tn.Revoke(context.Background(), id); err != nil {
				t.Fatalf("revoke %s: %v", id, err)
			}
		case rng.Float64() < 0.06:
			if _, err := tn.SetAvailability(context.Background(), 0.3+0.6*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		default:
			id := fmt.Sprintf("r%05d", next)
			next++
			d := strategy.Request{
				ID:     id,
				Params: strategy.Params{Quality: 0.25 + 0.6*rng.Float64(), Cost: 0.9, Latency: 0.9},
				K:      1,
			}
			if _, err := tn.Submit(context.Background(), d); err != nil {
				t.Fatalf("submit %s: %v", id, err)
			}
			open = append(open, id)
		}
	}
	return open
}

func TestDurableRestartRestoresState(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Tenants: map[string]TenantConfig{"alpha": fixedTenant(6, 0.7), "beta": synthTenant(5, 24, 0.6)},
		DataDir: dir,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]*stream.Snapshot{}
	for _, name := range s1.TenantNames() {
		tn, _ := s1.Tenant(name)
		driveMutations(t, tn, 300, int64(len(name)))
		want[name] = tn.Snapshot()
	}
	s1.Close()

	// Restart from disk: no checkpoint was ever taken, so this is a pure
	// tail replay from seq 1.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for name, w := range want {
		tn, err := s2.Tenant(name)
		if err != nil {
			t.Fatal(err)
		}
		snapshotsEqual(t, w, tn.Snapshot())
	}

	// The recovered server keeps serving: a fresh submission gets a fresh
	// submission number, above everything restored.
	tn, _ := s2.Tenant("alpha")
	if _, err := tn.Submit(context.Background(), strategy.Request{ID: "fresh", Params: strategy.Params{Quality: 0.3, Cost: 0.9, Latency: 0.9}, K: 1}); err != nil {
		t.Fatal(err)
	}
	rs, ok := tn.Snapshot().Request("fresh")
	if !ok {
		t.Fatal("fresh request missing after recovery")
	}
	for _, other := range tn.Snapshot().Requests {
		if other.ID != "fresh" && other.Seq >= rs.Seq {
			t.Fatalf("fresh submission seq %d does not exceed restored seq %d (%s)", rs.Seq, other.Seq, other.ID)
		}
	}
}

func TestCheckpointEndpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Tenants: map[string]TenantConfig{"alpha": fixedTenant(6, 0.7)},
		DataDir: dir,
	}
	s1, hs := newTestServer(t, cfg)
	tn, _ := s1.Tenant("alpha")
	driveMutations(t, tn, 200, 11)

	var resp CheckpointResponse
	if code := call(t, hs.Client(), http.MethodPost, hs.URL+"/admin/checkpoint", nil, &resp); code != http.StatusOK {
		t.Fatalf("checkpoint: status %d", code)
	}
	info := resp.Tenants["alpha"]
	if info.LastSeq == 0 || info.Requests != tn.mgr.Open() {
		t.Fatalf("checkpoint info %+v, open %d", info, tn.mgr.Open())
	}
	// Post-checkpoint traffic becomes the replay tail.
	driveMutations(t, tn, 75, 13)
	want := tn.Snapshot()
	hs.Close()
	s1.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tn2, _ := s2.Tenant("alpha")
	snapshotsEqual(t, want, tn2.Snapshot())
}

func TestCheckpointWithoutDataDir(t *testing.T) {
	s, hs := newTestServer(t, Config{Tenants: map[string]TenantConfig{"alpha": fixedTenant(4, 0.7)}})
	defer s.Close()
	var errResp ErrorResponse
	if code := call(t, hs.Client(), http.MethodPost, hs.URL+"/admin/checkpoint", nil, &errResp); code != http.StatusConflict {
		t.Fatalf("checkpoint without durability: status %d (%+v)", code, errResp.Error)
	}
	if errResp.Error.Code != CodeNoDurability {
		t.Fatalf("checkpoint without durability: code %+v", errResp.Error)
	}
}

func TestAutoCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Tenants:         map[string]TenantConfig{"alpha": fixedTenant(6, 0.7)},
		DataDir:         dir,
		CheckpointEvery: 20,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := s1.Tenant("alpha")
	driveMutations(t, tn, 130, 17)
	want := tn.Snapshot()
	s1.Close()

	// Auto-checkpointing must have truncated: one live segment behind one
	// checkpoint, holding at most a checkpoint budget of tail records.
	scanned, err := wal.Scan(filepath.Join(dir, "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if scanned.Segments != 1 || scanned.Checkpoint == nil {
		t.Fatalf("auto-checkpoint left %d segments, checkpoint %v", scanned.Segments, scanned.Checkpoint)
	}
	if records := len(scanned.Tail); records > 2*cfg.CheckpointEvery {
		t.Fatalf("auto-checkpoint left %d records on disk (budget %d)", records, cfg.CheckpointEvery)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tn2, _ := s2.Tenant("alpha")
	snapshotsEqual(t, want, tn2.Snapshot())
}

func TestRecoveryAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Tenants: map[string]TenantConfig{"alpha": fixedTenant(6, 0.7)},
		DataDir: dir,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := s1.Tenant("alpha")
	driveMutations(t, tn, 120, 19)
	want := tn.Snapshot()
	s1.Close()

	// Simulate a crash mid-append: garbage partial record at the tail of
	// the segment. Recovery must drop exactly it.
	entries, err := os.ReadDir(filepath.Join(dir, "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") {
			seg = filepath.Join(dir, "alpha", e.Name())
		}
	}
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00bad000 {"v":1,"seq":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tn2, _ := s2.Tenant("alpha")
	snapshotsEqual(t, want, tn2.Snapshot())
}

// TestDurableRevokeStormUnderRace is the satellite's -race storm: many
// goroutines churn submits and revokes through the event loop with the
// WAL on, epochs stay monotonic per observer, invariants hold, and the
// WAL replays to exactly the final state.
func TestDurableRevokeStormUnderRace(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Tenants: map[string]TenantConfig{"alpha": fixedTenant(6, 0.7)},
		DataDir: dir,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := s1.Tenant("alpha")

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var last uint64
			for i := 0; i < 60; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				res, err := tn.Submit(context.Background(), strategy.Request{ID: id, Params: strategy.Params{Quality: 0.3, Cost: 0.9, Latency: 0.9}, K: 1})
				if err != nil {
					t.Errorf("submit %s: %v", id, err)
					return
				}
				if res.Epoch < last {
					t.Errorf("epoch regressed: %d -> %d", last, res.Epoch)
				}
				last = res.Epoch
				if i%3 != 0 { // keep every third request open
					epoch, err := tn.Revoke(context.Background(), id)
					if err != nil {
						t.Errorf("revoke %s: %v", id, err)
						return
					}
					if epoch < last {
						t.Errorf("epoch regressed: %d -> %d", last, epoch)
					}
					last = epoch
				}
			}
		}(w)
	}
	wg.Wait()
	snap := tn.Snapshot()
	if got := len(snap.Plan.Serving) + len(snap.Plan.Displaced); got != len(snap.Requests) {
		t.Fatalf("serving+displaced = %d, open = %d", got, len(snap.Requests))
	}
	s1.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tn2, _ := s2.Tenant("alpha")
	snapshotsEqual(t, snap, tn2.Snapshot())
}

// TestWALFailureGoesReadOnly: after a WAL append failure the tenant must
// (a) never publish the unlogged mutation, (b) reject further writes
// with ErrWALBroken while reads keep working, and (c) recover on restart
// to exactly the logged prefix.
func TestWALFailureGoesReadOnly(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Tenants: map[string]TenantConfig{"alpha": fixedTenant(6, 0.7)},
		DataDir: dir,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := s1.Tenant("alpha")
	driveMutations(t, tn, 40, 29)
	want := tn.Snapshot()

	// Sabotage the log out from under the loop: the next append's fsync
	// hits a closed file. (The happens-before chain is the op channel:
	// this Close precedes the Submit below in program order, and the loop
	// observes it after receiving the op.)
	tn.wal.Close()

	_, err = tn.Submit(context.Background(), strategy.Request{ID: "unlogged", Params: strategy.Params{Quality: 0.3, Cost: 0.9, Latency: 0.9}, K: 1})
	if err == nil {
		t.Fatal("submit with a dead WAL was acknowledged")
	}
	if _, ok := tn.Snapshot().Request("unlogged"); ok {
		t.Fatal("unlogged mutation is visible in the published snapshot")
	}
	if _, err := tn.Submit(context.Background(), strategy.Request{ID: "after", Params: strategy.Params{Quality: 0.3, Cost: 0.9, Latency: 0.9}, K: 1}); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("write after WAL failure: %v, want ErrWALBroken", err)
	}
	if _, err := tn.Revoke(context.Background(), "whatever"); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("revoke after WAL failure: %v, want ErrWALBroken", err)
	}
	// A checkpoint must also be refused: it would durably persist (and
	// truncate the good log behind) the unlogged mutation the circuit
	// breaker withheld from readers.
	if _, err := tn.Checkpoint(); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("checkpoint after WAL failure: %v, want ErrWALBroken", err)
	}
	// Reads still serve the pre-failure state.
	snapshotsEqual(t, want, tn.Snapshot())
	s1.Close()

	// Restart: recovery rebuilds exactly the logged prefix — the state
	// the last published snapshot showed, nothing more.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tn2, _ := s2.Tenant("alpha")
	snapshotsEqual(t, want, tn2.Snapshot())
}

// TestRecoveryTenThousandEventsUnder2s pins the acceptance bound: a
// 10k-record WAL (no checkpoint: the worst case, a full tail replay)
// recovers in under 2 seconds.
func TestRecoveryTenThousandEventsUnder2s(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery timing test skipped in -short")
	}
	dir := t.TempDir()
	cfg := Config{
		Tenants: map[string]TenantConfig{"alpha": fixedTenant(6, 0.7)},
		DataDir: dir,
		// Batched fsync keeps the *write* phase fast; recovery itself is
		// unaffected by the sync policy.
		WALSyncEvery: 64,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := s1.Tenant("alpha")
	driveMutations(t, tn, 10000, 23)
	want := tn.Snapshot()
	s1.Close()

	start := time.Now()
	s2, err := New(cfg)
	took := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tn2, _ := s2.Tenant("alpha")
	snapshotsEqual(t, want, tn2.Snapshot())
	if took > 2*time.Second {
		t.Fatalf("recovering a 10k-event log took %v (budget 2s)", took)
	}
	t.Logf("recovered 10k-event log in %v", took)
}
