package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stratrec/internal/strategy"
	"stratrec/internal/stream"
	"stratrec/internal/wal"
)

// TestGroupCommitDurability: with the cross-tenant commit scheduler on,
// every acknowledged mutation still survives a restart — the fsync moved
// into a shared round, not past the acknowledgement.
func TestGroupCommitDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Tenants: map[string]TenantConfig{
			"alpha": fixedTenant(6, 0.7),
			"beta":  synthTenant(5, 24, 0.6),
			"gamma": fixedTenant(4, 0.5),
		},
		DataDir:              dir,
		WALGroupCommitWindow: 500 * time.Microsecond,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent per-tenant writers, so batches from different tenants
	// finish close together and can share rounds.
	var wg sync.WaitGroup
	for _, name := range s1.TenantNames() {
		tn, _ := s1.Tenant(name)
		wg.Add(1)
		go func(name string, tn *Tenant) {
			defer wg.Done()
			driveMutations(t, tn, 200, int64(len(name)))
		}(name, tn)
	}
	wg.Wait()
	want := map[string]*stream.Snapshot{}
	for _, name := range s1.TenantNames() {
		tn, _ := s1.Tenant(name)
		want[name] = tn.Snapshot()
		if tn.wal.Syncs() == 0 || tn.wal.Appends() == 0 {
			t.Fatalf("tenant %s never hit the scheduler: %d appends, %d syncs", name, tn.wal.Appends(), tn.wal.Syncs())
		}
	}
	// Every sync went through the scheduler: commits count log-sync
	// requests, rounds the shared fsync windows that served them.
	if rounds, commits := s1.gc.rounds.Load(), s1.gc.commits.Load(); rounds == 0 || commits < rounds {
		t.Fatalf("scheduler accounting: %d rounds, %d commits", rounds, commits)
	}
	s1.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for name, w := range want {
		tn, err := s2.Tenant(name)
		if err != nil {
			t.Fatal(err)
		}
		snapshotsEqual(t, w, tn.Snapshot())
	}
}

// TestGroupCommitFailureNoTrace: a failed commit round must behave like
// an inline fsync failure — the ops it covered get ErrWALBroken, the
// tenant goes read-only, readers never observe the unacked writes, and
// the restart rebuilds exactly the durable prefix. The WAL's rollback
// guarantees the failed round's records cannot resurface even though the
// buffered writer may already have spilled them into the segment file.
func TestGroupCommitFailureNoTrace(t *testing.T) {
	dir := t.TempDir()
	var failing atomic.Bool
	tcfg := fixedTenant(6, 0.7)
	tcfg.Faults = &Faults{WALSync: func() error {
		if failing.Load() {
			return errors.New("injected fsync failure")
		}
		return nil
	}}
	cfg := Config{
		Tenants:              map[string]TenantConfig{"alpha": tcfg},
		DataDir:              dir,
		WALGroupCommitWindow: 200 * time.Microsecond,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := s1.Tenant("alpha")
	driveMutations(t, tn, 40, 31)
	want := tn.Snapshot()

	failing.Store(true)
	_, err = tn.Submit(context.Background(), strategy.Request{ID: "doomed", Params: strategy.Params{Quality: 0.3, Cost: 0.9, Latency: 0.9}, K: 1})
	if !errors.Is(err, ErrWALBroken) {
		t.Fatalf("submit through failing commit round: %v, want ErrWALBroken", err)
	}
	if _, ok := tn.Snapshot().Request("doomed"); ok {
		t.Fatal("unacked mutation visible in the published snapshot")
	}
	if _, err := tn.Submit(context.Background(), strategy.Request{ID: "after", Params: strategy.Params{Quality: 0.3, Cost: 0.9, Latency: 0.9}, K: 1}); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("write after failed round: %v, want ErrWALBroken", err)
	}
	snapshotsEqual(t, want, tn.Snapshot())
	s1.Close()

	// Restart without the fault: exactly the acknowledged state returns.
	cfg.Tenants = map[string]TenantConfig{"alpha": fixedTenant(6, 0.7)}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tn2, _ := s2.Tenant("alpha")
	snapshotsEqual(t, want, tn2.Snapshot())
}

// TestGroupCommitMidBatchAppendFailureNoLostRollback: under group
// commit a whole coalesced batch is buffered between fsyncs, so a WAL
// append failure mid-batch rolls the log back past the batch's earlier
// records too. Those earlier ops applied cleanly and their appends
// succeeded — but their records are gone, so acknowledging them would
// be an acked-then-absent durability violation. Every op of the failed
// batch must answer ErrWALBroken, the snapshot must stay pre-batch, and
// the restart must rebuild exactly the durable prefix.
func TestGroupCommitMidBatchAppendFailureNoLostRollback(t *testing.T) {
	dir := t.TempDir()
	gateEntered := make(chan struct{})
	gateRelease := make(chan struct{})
	tcfg := fixedTenant(6, 0.7)
	appends := 0 // loop goroutine only, per Faults contract
	tcfg.Faults = &Faults{
		ApplyDelay: func(kind, id string) time.Duration {
			if id == "gate" {
				close(gateEntered)
				<-gateRelease
			}
			return 0
		},
		// Appends: #1 the gate submit (committed durably by its own
		// round), then the 3-op batch below: #2 succeeds (buffered),
		// #3 fails mid-batch.
		WALAppend: func() error {
			appends++
			if appends == 3 {
				return errors.New("injected append failure")
			}
			return nil
		},
	}
	cfg := Config{
		Tenants:              map[string]TenantConfig{"alpha": tcfg},
		DataDir:              dir,
		WALGroupCommitWindow: 200 * time.Microsecond,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := s1.Tenant("alpha")

	// Block the loop inside the gate submit's apply, queue three ops
	// behind it, then release: the loop drains all three into one
	// coalesced batch.
	gateDone := make(chan error, 1)
	go func() {
		_, err := tn.Submit(context.Background(), strategy.Request{ID: "gate", Params: strategy.Params{Quality: 0.3, Cost: 0.9, Latency: 0.9}, K: 1})
		gateDone <- err
	}()
	<-gateEntered
	batch := []op{
		{kind: opSubmit, req: strategy.Request{ID: "first", Params: strategy.Params{Quality: 0.3, Cost: 0.9, Latency: 0.9}, K: 1}},
		{kind: opSubmit, req: strategy.Request{ID: "doomed", Params: strategy.Params{Quality: 0.3, Cost: 0.9, Latency: 0.9}, K: 1}},
		{kind: opSubmit, req: strategy.Request{ID: "after", Params: strategy.Params{Quality: 0.3, Cost: 0.9, Latency: 0.9}, K: 1}},
	}
	type applied struct {
		results []opResult
		err     error
	}
	batchDone := make(chan applied, 1)
	go func() {
		results, err := tn.applyOps(context.Background(), batch)
		batchDone <- applied{results, err}
	}()
	// The enqueue path is non-blocking, so once all three ops sit in the
	// inbox the loop is guaranteed to drain them together.
	for len(tn.ops) < len(batch) {
		runtime.Gosched()
	}
	close(gateRelease)
	if err := <-gateDone; err != nil {
		t.Fatalf("gate submit: %v", err)
	}
	got := <-batchDone
	if got.err != nil {
		t.Fatalf("applyOps rejected the batch as a unit: %v", got.err)
	}
	for i, res := range got.results {
		// "first" is the op the rollback destroys behind a successful
		// append: acknowledging it (err == nil) is the acked-then-absent
		// bug this test pins down.
		if !errors.Is(res.err, ErrWALBroken) {
			t.Fatalf("batch op %d (%s): err %v, want ErrWALBroken", i, batch[i].req.ID, res.err)
		}
	}
	want := tn.Snapshot()
	if _, ok := want.Request("first"); ok {
		t.Fatal("rolled-back mutation visible in the published snapshot")
	}
	if _, ok := want.Request("gate"); !ok {
		t.Fatal("durably committed gate submit missing from the snapshot")
	}
	s1.Close()

	// Restart without the fault: exactly the durable prefix — the gate
	// submit, none of the failed batch — comes back.
	cfg.Tenants = map[string]TenantConfig{"alpha": fixedTenant(6, 0.7)}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tn2, _ := s2.Tenant("alpha")
	snapshotsEqual(t, want, tn2.Snapshot())
}

// TestGroupCommitConcurrentTenantsUnderRace is the -race exercise for the
// scheduler hand-off: many tenants, many writers per tenant, a real
// window, and a full cross-check of every acknowledged op after restart.
func TestGroupCommitConcurrentTenantsUnderRace(t *testing.T) {
	dir := t.TempDir()
	tenants := map[string]TenantConfig{}
	for i := 0; i < 4; i++ {
		tenants[fmt.Sprintf("t%d", i)] = fixedTenant(5, 0.6)
	}
	cfg := Config{
		Tenants:              tenants,
		DataDir:              dir,
		WALGroupCommitWindow: time.Millisecond,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, name := range s1.TenantNames() {
		tn, _ := s1.Tenant(name)
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(tn *Tenant, w int) {
				defer wg.Done()
				for i := 0; i < 40; i++ {
					id := fmt.Sprintf("w%d-%d", w, i)
					if _, err := tn.Submit(context.Background(), strategy.Request{ID: id, Params: strategy.Params{Quality: 0.3, Cost: 0.9, Latency: 0.9}, K: 1}); err != nil {
						t.Errorf("submit %s: %v", id, err)
						return
					}
					if i%2 == 0 {
						if _, err := tn.Revoke(context.Background(), id); err != nil {
							t.Errorf("revoke %s: %v", id, err)
							return
						}
					}
				}
			}(tn, w)
		}
	}
	wg.Wait()
	want := map[string]*stream.Snapshot{}
	for _, name := range s1.TenantNames() {
		tn, _ := s1.Tenant(name)
		want[name] = tn.Snapshot()
	}
	s1.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for name, w := range want {
		tn, _ := s2.Tenant(name)
		snapshotsEqual(t, w, tn.Snapshot())
	}
}

// TestGroupCommitDirectSyncFallback: a commit racing scheduler shutdown
// resolves through the direct-fsync fallback — same durability, no
// sharing — and is accounted in direct_syncs, not rounds/commits.
func TestGroupCommitDirectSyncFallback(t *testing.T) {
	l, _, err := wal.Open(t.TempDir(), wal.Options{SyncManual: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	gc := newGroupCommitter(time.Millisecond)

	// Through the live scheduler: a round, no direct sync.
	if err := gc.commit(l); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if gc.rounds.Load() != 1 || gc.commits.Load() != 1 || gc.directSyncs.Load() != 0 {
		t.Fatalf("live commit accounting: rounds=%d commits=%d direct=%d",
			gc.rounds.Load(), gc.commits.Load(), gc.directSyncs.Load())
	}

	gc.stop()
	// A buffered append makes the fallback's fsync observable: Sync on a
	// clean log is a no-op and would not move the counter.
	if _, err := l.Append(wal.Record{Kind: wal.KindAvailability, W: 0.5, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	syncsBefore := l.Syncs()
	if err := gc.commit(l); err != nil {
		t.Fatalf("commit after stop: %v", err)
	}
	if l.Syncs() != syncsBefore+1 {
		t.Fatalf("fallback skipped the fsync: %d syncs, want %d", l.Syncs(), syncsBefore+1)
	}
	if gc.directSyncs.Load() != 1 {
		t.Fatalf("direct_syncs = %d, want 1", gc.directSyncs.Load())
	}
	if gc.rounds.Load() != 1 || gc.commits.Load() != 1 {
		t.Fatalf("fallback leaked into round accounting: rounds=%d commits=%d",
			gc.rounds.Load(), gc.commits.Load())
	}
}

// TestServerCloseOrderingNoDirectSyncs: Server.Close stops tenant loops
// before the commit scheduler, so even a Close racing live writers must
// leave direct_syncs at zero — a nonzero value means ops could still be
// asking a dead scheduler for durability.
func TestServerCloseOrderingNoDirectSyncs(t *testing.T) {
	cfg := Config{
		Tenants: map[string]TenantConfig{
			"alpha": fixedTenant(6, 0.7),
			"beta":  fixedTenant(5, 0.6),
		},
		DataDir:              t.TempDir(),
		WALGroupCommitWindow: 500 * time.Microsecond,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Writers run through the Close: late submits answer ErrTenantClosed,
	// which is fine — the point is they must never hit the fallback path.
	var wg sync.WaitGroup
	for _, name := range s.TenantNames() {
		tn, _ := s.Tenant(name)
		wg.Add(1)
		go func(tn *Tenant) {
			defer wg.Done()
			for i := 0; ; i++ {
				_, err := tn.Submit(context.Background(), strategy.Request{
					ID: fmt.Sprintf("r%d", i), Params: strategy.Params{Quality: 0.3, Cost: 0.9, Latency: 0.9}, K: 1,
				})
				if err != nil {
					return // loop closed under us
				}
			}
		}(tn)
	}
	time.Sleep(5 * time.Millisecond) // let traffic overlap the Close
	s.Close()
	wg.Wait()
	if n := s.gc.directSyncs.Load(); n != 0 {
		t.Fatalf("Server.Close left %d direct syncs — tenant loops outlived the scheduler", n)
	}
	if s.gc.rounds.Load() == 0 {
		t.Fatal("no commit rounds — the test never exercised the scheduler")
	}
}
