package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"stratrec/internal/adpar"
	"stratrec/internal/batch"
	"stratrec/internal/linmodel"
	"stratrec/internal/store"
	"stratrec/internal/strategy"
	"stratrec/internal/stream"
	"stratrec/internal/workforce"
)

// DeadlineHeader lets a client attach a per-request deadline to a
// mutation: admission control sheds up front when the projected queue
// wait exceeds it, and the event loop sheds immediately before apply when
// it expired while queued. The value is milliseconds, e.g.
// "X-Request-Deadline-Ms: 50". Without the header the server default
// (Config.MutationDeadline) applies, if any.
const DeadlineHeader = "X-Request-Deadline-Ms"

// routes wires the HTTP surface:
//
//	GET    /v1/healthz                                    liveness
//	GET    /v1/metrics                                    expvar metrics (JSON)
//	GET    /v1/tenants                                    hosted tenants
//	POST   /v1/tenants/{tenant}/requests                  submit a request
//	DELETE /v1/tenants/{tenant}/requests/{id}             revoke a request
//	POST   /v1/tenants/{tenant}/ops                       batched ingest (ordered submit/revoke/availability ops)
//	GET    /v1/tenants/{tenant}/plan                      current plan snapshot
//	GET    /v1/tenants/{tenant}/requests/{id}/alternative ADPaR alternative
//	PUT    /v1/tenants/{tenant}/availability              move expected workforce
//	POST   /v1/admin/checkpoint                           checkpoint + truncate every tenant WAL
//	POST   /v1/admin/tenants/{tenant}                     create a tenant at runtime
//	DELETE /v1/admin/tenants/{tenant}                     drain + remove a tenant
//	GET    /v1/admin/tenants/{tenant}                     tenant admin status
//
// /metrics answers expvar JSON by default and Prometheus text format
// with ?format=prometheus.
//
// /healthz, /metrics and /admin/checkpoint also answer at their
// original unversioned paths, kept for deployed probes and scripts
// (deprecated — new integrations should use the /v1 forms).
//
// The {tenant} path value resolves against the live registry per
// request, so tenants created or drained at runtime come and go without
// any mux change.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.metricsHandler)
	mux.HandleFunc("GET /v1/metrics", s.metricsHandler)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("POST /v1/tenants/{tenant}/requests", s.tenantHandler(s.handleSubmit))
	mux.HandleFunc("DELETE /v1/tenants/{tenant}/requests/{id}", s.tenantHandler(s.handleRevoke))
	mux.HandleFunc("POST /v1/tenants/{tenant}/ops", s.tenantHandler(s.handleBatch))
	mux.HandleFunc("GET /v1/tenants/{tenant}/plan", s.tenantHandler(handlePlan))
	mux.HandleFunc("GET /v1/tenants/{tenant}/requests/{id}/alternative", s.tenantHandler(handleAlternative))
	mux.HandleFunc("PUT /v1/tenants/{tenant}/availability", s.tenantHandler(s.handleAvailability))
	mux.HandleFunc("POST /admin/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("POST /v1/admin/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("POST /v1/admin/tenants/{tenant}", s.handleTenantCreate)
	mux.HandleFunc("DELETE /v1/admin/tenants/{tenant}", s.handleTenantDrain)
	mux.HandleFunc("GET /v1/admin/tenants/{tenant}", s.handleTenantStatus)
	return mux
}

// --- JSON shapes ---

// SubmitRequest is the submit body. K defaults to 1.
type SubmitRequest struct {
	ID      string  `json:"id"`
	Quality float64 `json:"quality"`
	Cost    float64 `json:"cost"`
	Latency float64 `json:"latency"`
	K       int     `json:"k"`
}

// SubmitResponse reports the admission outcome. Served=false means the
// request is open but displaced; its alternative endpoint has an ADPaR
// recommendation.
type SubmitResponse struct {
	ID     string `json:"id"`
	Served bool   `json:"served"`
	Epoch  uint64 `json:"epoch"`
}

// EpochResponse acknowledges a mutation with the resulting plan epoch.
type EpochResponse struct {
	Epoch uint64 `json:"epoch"`
}

// AvailabilityRequest is the availability-update body.
type AvailabilityRequest struct {
	Workforce float64 `json:"workforce"`
}

// PlanRequest is one open request inside a PlanResponse.
type PlanRequest struct {
	ID      string  `json:"id"`
	Quality float64 `json:"quality"`
	Cost    float64 `json:"cost"`
	Latency float64 `json:"latency"`
	K       int     `json:"k"`
	Serving bool    `json:"serving"`
	// Feasible is false when fewer than K catalog strategies can ever
	// satisfy the request, at any availability.
	Feasible bool `json:"feasible"`
	// Workforce is the request's aggregated requirement; omitted when
	// infeasible.
	Workforce *float64 `json:"workforce,omitempty"`
	// Strategies holds the K recommended strategy IDs when served.
	Strategies []int `json:"strategies,omitempty"`
}

// PlanResponse is the tenant's current deployment plan.
type PlanResponse struct {
	Tenant       string        `json:"tenant"`
	Epoch        uint64        `json:"epoch"`
	Availability float64       `json:"availability"`
	Objective    float64       `json:"objective"`
	Workforce    float64       `json:"workforce"`
	Serving      []string      `json:"serving"`
	Displaced    []string      `json:"displaced"`
	Requests     []PlanRequest `json:"requests"`
}

// PlanSummaryResponse is the ?view=summary projection of the plan: the
// scalar observables with per-request detail reduced to counts. The full
// PlanResponse grows with the open pool (every request serialized on
// every read); the summary stays O(1), which is what epoch/objective
// pollers and load probes should be paying.
type PlanSummaryResponse struct {
	Tenant       string  `json:"tenant"`
	Epoch        uint64  `json:"epoch"`
	Availability float64 `json:"availability"`
	Objective    float64 `json:"objective"`
	Workforce    float64 `json:"workforce"`
	Open         int     `json:"open"`
	Serving      int     `json:"serving"`
	Displaced    int     `json:"displaced"`
}

// AlternativeResponse is an ADPaR recommendation for a displaced request.
type AlternativeResponse struct {
	ID         string  `json:"id"`
	Quality    float64 `json:"quality"`
	Cost       float64 `json:"cost"`
	Latency    float64 `json:"latency"`
	Distance   float64 `json:"distance"`
	Strategies []int   `json:"strategies"`
	Covered    int     `json:"covered"`
}

// TenantInfo is one entry of the tenant listing.
type TenantInfo struct {
	Name         string  `json:"name"`
	Strategies   int     `json:"strategies"`
	Open         int     `json:"open"`
	Serving      int     `json:"serving"`
	Epoch        uint64  `json:"epoch"`
	Availability float64 `json:"availability"`
}

// CheckpointResponse reports the per-tenant outcomes of POST
// /admin/checkpoint.
type CheckpointResponse struct {
	Tenants map[string]CheckpointInfo `json:"tenants"`
}

// Error codes carried by ErrorDetail.Code: a stable, machine-matchable
// vocabulary, independent of error message wording. Clients branch on
// the code (or just the HTTP status); the message is for humans.
const (
	CodeBadRequest      = "bad_request"      // malformed body, header or batch
	CodeInvalidArgument = "invalid_argument" // well-formed but semantically invalid mutation
	CodeUnknownTenant   = "unknown_tenant"
	CodeUnknownRequest  = "unknown_request"
	CodeDuplicateID     = "duplicate_id"
	CodeAlreadyServed   = "already_served"
	CodeNoDurability    = "no_durability"
	CodeOverloaded      = "overloaded"       // shed; retry after RetryAfterMs
	CodeTenantClosed    = "tenant_closed"    // shutting down; retry against the replacement
	CodeWALBroken       = "wal_broken"       // read-only until operator restart
	CodeDuplicateTenant = "duplicate_tenant" // runtime create against an existing name
	CodeInternal        = "internal"
)

// ErrorDetail is the uniform error shape every handler returns: a stable
// code, a human-readable message, for retryable rejections the same
// backoff hint the Retry-After header carries (in milliseconds, keeping
// the server's precision the header's whole seconds destroy), and the
// request's trace ID — the same one the X-Trace-Id response header
// echoes — so a client holding a shed 429 can hand an operator a string
// that greps straight to the server's structured log line for it.
type ErrorDetail struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
	TraceID      string `json:"trace_id,omitempty"`
}

// ErrorResponse carries every non-2xx body.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// --- batched ingest ---

// Batch op kinds for BatchOp.Op.
const (
	OpSubmit       = "submit"
	OpRevoke       = "revoke"
	OpAvailability = "availability"
)

// MaxBatchOps caps how many ops one POST /v1/tenants/{tenant}/ops body
// may carry. Large enough to amortize a round trip many times over,
// small enough that one batch cannot monopolize a tenant loop.
const MaxBatchOps = 1024

// MaxBatchBodyBytes caps how many bytes of a batch body the server will
// buffer before rejecting it: decoding happens before the op-count cap
// can be enforced, so without a byte limit an arbitrarily large ops
// array (or huge strings inside one) would be read fully into memory
// just to be refused. Sized for MaxBatchOps worst-case ops with ample
// slack.
const MaxBatchBodyBytes = 1 << 20

// BatchOp is one mutation inside a batched ingest request. Op selects
// the mutation; the other fields mirror the single-op endpoints (submit
// uses ID/Quality/Cost/Latency/K, revoke uses ID, availability uses
// Workforce).
type BatchOp struct {
	Op      string  `json:"op"`
	ID      string  `json:"id,omitempty"`
	Quality float64 `json:"quality,omitempty"`
	Cost    float64 `json:"cost,omitempty"`
	Latency float64 `json:"latency,omitempty"`
	K       int     `json:"k,omitempty"`
	// Workforce is the availability op's new expected workforce.
	Workforce float64 `json:"workforce,omitempty"`
}

// BatchRequest is the POST /v1/tenants/{tenant}/ops body: an ordered
// list of mutations, applied in exactly this order through the tenant's
// event loop (they may coalesce into the same replan cycle, which is the
// point).
type BatchRequest struct {
	Ops []BatchOp `json:"ops"`
}

// BatchOpResult is one op's outcome. Status is the HTTP status the op
// would have received at its single-op endpoint; Error carries the same
// envelope a non-2xx single-op response would. Served is set for
// successful submits only.
type BatchOpResult struct {
	Status int          `json:"status"`
	Epoch  uint64       `json:"epoch,omitempty"`
	Served *bool        `json:"served,omitempty"`
	Error  *ErrorDetail `json:"error,omitempty"`
}

// BatchResponse answers a processed batch: one result per op, in op
// order. The HTTP status is 200 whenever the batch itself was processed,
// even if every op inside failed — per-op outcomes live in Results.
type BatchResponse struct {
	Results []BatchOpResult `json:"results"`
}

// --- handlers ---

// handleHealthz reports per-tenant health plus the aggregate. The
// endpoint stays 200 while any tenant can still make progress — a single
// WAL-broken tenant makes the aggregate "degraded", not the whole server
// unhealthy — and goes 503 ("unavailable") only when every tenant is
// read-only, so orchestrators don't restart a fleet member that is still
// serving N-1 tenants.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	names := s.TenantNames()
	resp := HealthResponse{Tenants: make(map[string]TenantHealth, len(names))}
	allOK, allDown := true, true
	for _, name := range names {
		t, err := s.Tenant(name)
		if err != nil {
			continue // drained between the listing and the lookup
		}
		h := t.health()
		resp.Tenants[name] = h
		if h.Status != HealthOK {
			allOK = false
		}
		if h.Status != HealthReadOnly {
			allDown = false
		}
	}
	code := http.StatusOK
	switch {
	case allDown:
		resp.Status = "unavailable"
		code = http.StatusServiceUnavailable
	case allOK:
		resp.Status = HealthOK
	default:
		resp.Status = HealthDegraded
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	names := s.TenantNames()
	out := make([]TenantInfo, 0, len(names))
	for _, name := range names {
		t, err := s.Tenant(name)
		if err != nil {
			continue // drained between the listing and the lookup
		}
		snap := t.snap.Load()
		out = append(out, TenantInfo{
			Name:         name,
			Strategies:   t.ix.Len(),
			Open:         len(snap.Requests),
			Serving:      len(snap.Plan.Serving),
			Epoch:        snap.Epoch,
			Availability: snap.Availability,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// tenantHandler resolves the {tenant} path segment before the wrapped
// handler runs.
func (s *Server) tenantHandler(h func(*Tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.Tenant(r.PathValue("tenant"))
		if err != nil {
			writeError(w, fmt.Errorf("%w: %s", ErrUnknownTenant, r.PathValue("tenant")))
			return
		}
		h(t, w, r)
	}
}

// mutationContext derives the admission-control context for one mutation
// from the DeadlineHeader, falling back to the server-wide default. The
// context deliberately does NOT inherit r.Context(): a client hanging up
// mid-flight must not turn an already-enqueued (and possibly applied +
// logged) mutation into a shed — the handler always waits for the loop's
// definitive answer, and only the loop sheds, only before apply.
func (s *Server) mutationContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	base := context.Background()
	// The trace ID is the one value the fresh context does inherit from
	// the request: correlation must survive the deliberate detach from
	// r.Context().
	if id := traceFrom(r.Context()); id != "" {
		base = withTrace(base, id)
	}
	d := s.mutDeadline
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, badRequest("invalid %s header %q (want positive integer milliseconds)", DeadlineHeader, h)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d <= 0 {
		return base, func() {}, nil
	}
	// The deadline is anchored on the injected clock, not the runtime's:
	// admission projection, the loop's pre-apply expiry check (ctxExpired)
	// and this stamp must all read the same timeline for shed decisions —
	// and the retry_after_ms they advertise — to be reproducible under the
	// conformance harness's fixed or stepped clock.
	ctx, cancel := context.WithDeadline(base, s.now().Add(d))
	return ctx, cancel, nil
}

func (s *Server) handleSubmit(t *Tenant, w http.ResponseWriter, r *http.Request) {
	var body SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, badRequest("invalid JSON: %v", err))
		return
	}
	// IDs "." and ".." would be admitted but could never be addressed:
	// their revoke/alternative URLs are dot segments the HTTP layer
	// cleans away (301) before routing. Found by FuzzSubmitRequest.
	if body.ID == "." || body.ID == ".." {
		writeError(w, badRequest("request ID %q cannot be addressed as a URL path segment", body.ID))
		return
	}
	if body.K == 0 {
		body.K = 1
	}
	ctx, cancel, err := s.mutationContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	res, err := t.Submit(ctx, strategy.Request{
		ID:     body.ID,
		Params: strategy.Params{Quality: body.Quality, Cost: body.Cost, Latency: body.Latency},
		K:      body.K,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{ID: body.ID, Served: res.Served, Epoch: res.Epoch})
}

func (s *Server) handleRevoke(t *Tenant, w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := s.mutationContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	epoch, err := t.Revoke(ctx, r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EpochResponse{Epoch: epoch})
}

func (s *Server) handleAvailability(t *Tenant, w http.ResponseWriter, r *http.Request) {
	var body AvailabilityRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, badRequest("invalid JSON: %v", err))
		return
	}
	ctx, cancel, err := s.mutationContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	epoch, err := t.SetAvailability(ctx, body.Workforce)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EpochResponse{Epoch: epoch})
}

// handleBatch is the batched ingest endpoint: an ordered list of
// submit/revoke/availability ops, applied through the tenant's event
// loop in body order so they can coalesce into shared replan cycles (and
// shared WAL commit rounds). One deadline parse covers the whole body —
// the deadline is a property of the request, not of each op — and a
// batch the deadline check already dooms is rejected as a unit with one
// 429 before anything is enqueued. Malformed ops (unknown op kind,
// unaddressable ID) fail in place with a 400-shaped result without
// poisoning their neighbours. A processed batch answers 200 with one
// result per op, each carrying the status and, on failure, the same
// error envelope the op's single-op endpoint would have returned.
func (s *Server) handleBatch(t *Tenant, w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBatchBodyBytes)
	var body BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, badRequest("batch body exceeds %d bytes", int64(MaxBatchBodyBytes)))
			return
		}
		writeError(w, badRequest("invalid JSON: %v", err))
		return
	}
	if len(body.Ops) == 0 {
		writeError(w, badRequest("empty batch (want 1..%d ops)", MaxBatchOps))
		return
	}
	if len(body.Ops) > MaxBatchOps {
		writeError(w, badRequest("batch of %d ops exceeds the cap of %d", len(body.Ops), MaxBatchOps))
		return
	}
	ctx, cancel, err := s.mutationContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()

	results := make([]BatchOpResult, len(body.Ops))
	ops := make([]op, 0, len(body.Ops))
	idx := make([]int, 0, len(body.Ops)) // ops[j] answers results[idx[j]]
	for i, b := range body.Ops {
		switch b.Op {
		case OpSubmit:
			if b.ID == "." || b.ID == ".." {
				results[i] = batchErrResult(badRequest("request ID %q cannot be addressed as a URL path segment", b.ID))
				continue
			}
			k := b.K
			if k == 0 {
				k = 1
			}
			ops = append(ops, op{kind: opSubmit, req: strategy.Request{
				ID:     b.ID,
				Params: strategy.Params{Quality: b.Quality, Cost: b.Cost, Latency: b.Latency},
				K:      k,
			}})
		case OpRevoke:
			ops = append(ops, op{kind: opRevoke, id: b.ID})
		case OpAvailability:
			ops = append(ops, op{kind: opAvailability, w: b.Workforce})
		default:
			results[i] = batchErrResult(badRequest("unknown op %q (want %q, %q or %q)", b.Op, OpSubmit, OpRevoke, OpAvailability))
			continue
		}
		idx = append(idx, i)
	}
	opResults, err := t.applyOps(ctx, ops)
	if err != nil {
		// Whole-batch rejection: nothing was enqueued, nothing applied.
		writeError(w, err)
		return
	}
	for j, res := range opResults {
		i := idx[j]
		if res.err != nil {
			results[i] = batchErrResult(res.err)
			continue
		}
		br := BatchOpResult{Status: http.StatusOK, Epoch: res.epoch}
		if ops[j].kind == opSubmit {
			served := res.served
			br.Served = &served
		}
		results[i] = br
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// batchErrResult shapes one op's failure exactly like the single-op
// endpoint's error response.
func batchErrResult(err error) BatchOpResult {
	code, d := errorDetail(err)
	return BatchOpResult{Status: code, Error: &d}
}

func handlePlan(t *Tenant, w http.ResponseWriter, r *http.Request) {
	snap := t.Snapshot()
	switch view := r.URL.Query().Get("view"); view {
	case "", "full":
	case "summary":
		writeJSON(w, http.StatusOK, PlanSummaryResponse{
			Tenant:       t.name,
			Epoch:        snap.Epoch,
			Availability: snap.Availability,
			Objective:    snap.Plan.Objective,
			Workforce:    snap.Plan.Workforce,
			Open:         len(snap.Requests),
			Serving:      len(snap.Plan.Serving),
			Displaced:    len(snap.Plan.Displaced),
		})
		return
	default:
		writeError(w, badRequest("unknown plan view %q (want \"full\" or \"summary\")", view))
		return
	}
	resp := PlanResponse{
		Tenant:       t.name,
		Epoch:        snap.Epoch,
		Availability: snap.Availability,
		Objective:    snap.Plan.Objective,
		Workforce:    snap.Plan.Workforce,
		Serving:      snap.Plan.Serving,
		Displaced:    snap.Plan.Displaced,
		Requests:     make([]PlanRequest, 0, len(snap.Requests)),
	}
	if resp.Serving == nil {
		resp.Serving = []string{}
	}
	if resp.Displaced == nil {
		resp.Displaced = []string{}
	}
	for _, rs := range snap.Requests {
		pr := PlanRequest{
			ID:       rs.ID,
			Quality:  rs.Request.Quality,
			Cost:     rs.Request.Cost,
			Latency:  rs.Request.Latency,
			K:        rs.Request.K,
			Serving:  rs.Serving,
			Feasible: rs.Feasible,
		}
		if rs.Feasible && !math.IsInf(rs.Workforce, 1) {
			wf := rs.Workforce
			pr.Workforce = &wf
		}
		if rs.Serving {
			pr.Strategies = rs.Strategies
		}
		resp.Requests = append(resp.Requests, pr)
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleAlternative(t *Tenant, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Unlike mutations, the query inherits the request context: aborting
	// a read that never ran (client gone while queued for a pool slot)
	// has no accounting consequences.
	sol, rs, err := t.Alternative(r.Context(), id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, AlternativeResponse{
		ID:         id,
		Quality:    sol.Alternative.Quality,
		Cost:       sol.Alternative.Cost,
		Latency:    sol.Alternative.Latency,
		Distance:   sol.Distance,
		Strategies: sol.Strategies(rs.Request.K),
		Covered:    len(sol.Covered),
	})
}

// handleCheckpoint checkpoints every tenant (durable snapshot + WAL
// truncation). All-or-nothing per tenant: the first failure aborts with
// its error, already-checkpointed tenants keep their new checkpoints
// (checkpointing is idempotent, so a retry converges).
func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.dataDir == "" {
		writeError(w, ErrNoDurability)
		return
	}
	names := s.TenantNames()
	resp := CheckpointResponse{Tenants: make(map[string]CheckpointInfo, len(names))}
	for _, name := range names {
		t, err := s.Tenant(name)
		if err != nil {
			continue // drained between the listing and the lookup
		}
		info, err := t.Checkpoint()
		if err != nil {
			writeError(w, fmt.Errorf("tenant %s: %w", name, err))
			return
		}
		resp.Tenants[name] = info
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- runtime tenant admin ---

// CreateTenantRequest is the POST /v1/admin/tenants/{tenant} body: a
// strategy catalog (the same JSON shape `stratrec serve -tenants` files
// hold per tenant) plus planning semantics. Entries without fitted
// models get the Section 3.1 anchored defaults — identical to what the
// CLI's boot-time materialization applies, so a tenant created over the
// wire plans exactly like one loaded from disk.
type CreateTenantRequest struct {
	// Objective is "throughput" (default) or "payoff".
	Objective string `json:"objective,omitempty"`
	// Mode is the workforce aggregation: "max" (default) or "sum".
	Mode string `json:"mode,omitempty"`
	// Coalesce and OpBuffer tune the tenant's event loop (0 = defaults).
	Coalesce int `json:"coalesce,omitempty"`
	OpBuffer int `json:"op_buffer,omitempty"`
	// Catalog is the strategy catalog, workforce included.
	Catalog store.Catalog `json:"catalog"`
}

// TenantStatusResponse is the GET /v1/admin/tenants/{tenant} body: the
// operator's view of one tenant — plan scalars plus the health row
// /healthz would report.
type TenantStatusResponse struct {
	Name         string       `json:"name"`
	Strategies   int          `json:"strategies"`
	Open         int          `json:"open"`
	Serving      int          `json:"serving"`
	Epoch        uint64       `json:"epoch"`
	Availability float64      `json:"availability"`
	Health       TenantHealth `json:"health"`
	Draining     bool         `json:"draining"`
}

// DrainTenantResponse is the DELETE /v1/admin/tenants/{tenant} body.
type DrainTenantResponse struct {
	Tenant string `json:"tenant"`
	// Checkpoint is the final checkpoint cut during the drain (zero when
	// the server runs without durability).
	Checkpoint CheckpointInfo `json:"checkpoint"`
}

// tenantConfigFromCreate materializes a CreateTenantRequest into a
// TenantConfig.
func tenantConfigFromCreate(body CreateTenantRequest) (TenantConfig, error) {
	var obj batch.Objective
	switch body.Objective {
	case "", "throughput":
		obj = batch.Throughput
	case "payoff":
		obj = batch.Payoff
	default:
		return TenantConfig{}, badRequest("unknown objective %q (want throughput or payoff)", body.Objective)
	}
	var agg workforce.Mode
	switch body.Mode {
	case "", "max":
		agg = workforce.MaxCase
	case "sum":
		agg = workforce.SumCase
	default:
		return TenantConfig{}, badRequest("unknown mode %q (want max or sum)", body.Mode)
	}
	set, models, err := body.Catalog.Materialize(func(e store.Entry) linmodel.ParamModels {
		return store.AnchoredModels(e.Params, body.Catalog.Workforce)
	})
	if err != nil {
		return TenantConfig{}, badRequest("invalid catalog: %v", err)
	}
	return TenantConfig{
		Set: set, Models: models,
		Mode: agg, Objective: obj,
		InitialW: body.Catalog.Workforce,
		Coalesce: body.Coalesce,
		OpBuffer: body.OpBuffer,
	}, nil
}

// handleTenantCreate adds a tenant at runtime. 201 on success; 409
// (duplicate_tenant) when the name is taken; 400 for an invalid name or
// catalog. When the server runs with durability, the new tenant recovers
// whatever WAL state a previous tenant of the same name left under the
// data directory — created-drained-recreated round-trips keep their
// durable state.
func (s *Server) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	var body CreateTenantRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, badRequest("invalid JSON: %v", err))
		return
	}
	cfg, err := tenantConfigFromCreate(body)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := s.CreateTenant(name, cfg); err != nil {
		var se statusError
		if !errors.Is(err, ErrDuplicateTenant) && !errors.As(err, &se) {
			err = badRequest("creating tenant %s: %v", name, err)
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.tenantStatus(name))
}

// handleTenantDrain drains and removes a tenant: new writes 503 during
// the drain, a final checkpoint is cut, the loop stops, and the name
// 404s afterwards.
func (s *Server) handleTenantDrain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	info, err := s.DrainTenant(name)
	if err != nil {
		if errors.Is(err, ErrUnknownTenant) {
			err = fmt.Errorf("%w: %s", ErrUnknownTenant, name)
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DrainTenantResponse{Tenant: name, Checkpoint: info})
}

// handleTenantStatus reports one tenant's admin view.
func (s *Server) handleTenantStatus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if _, err := s.Tenant(name); err != nil {
		writeError(w, fmt.Errorf("%w: %s", ErrUnknownTenant, name))
		return
	}
	writeJSON(w, http.StatusOK, s.tenantStatus(name))
}

// tenantStatus assembles the admin status row (zero value when the
// tenant vanished between lookup and assembly).
func (s *Server) tenantStatus(name string) TenantStatusResponse {
	t, err := s.Tenant(name)
	if err != nil {
		return TenantStatusResponse{Name: name}
	}
	snap := t.snap.Load()
	return TenantStatusResponse{
		Name:         name,
		Strategies:   t.ix.Len(),
		Open:         len(snap.Requests),
		Serving:      len(snap.Plan.Serving),
		Epoch:        snap.Epoch,
		Availability: snap.Availability,
		Health:       t.health(),
		Draining:     t.draining.Load(),
	}
}

// --- plumbing ---

type statusError struct {
	code int
	msg  string
}

func (e statusError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return statusError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorDetail maps a domain error onto its HTTP status and uniform
// envelope: unknown tenant/request → 404, duplicate or already-served →
// 409, validation → 400, shed under overload → 429 with a retry hint,
// closed or read-only tenant → 503 with a retry hint, anything else →
// 500. Single-op handlers and per-op batch results share this mapping,
// so an op fails identically whichever wire carried it.
//
// The 429/503 split is semantic, not cosmetic: 429 (overloaded) means
// the server chose not to take the work (queue full, deadline
// unmeetable, pool saturated) and a backoff of RetryAfterMs should
// succeed; 503 means the tenant cannot take writes at all — shutting
// down (tenant_closed: retry shortly against the replacement) or
// WAL-broken (wal_broken: no retry helps until an operator restarts,
// hence the longer hint). Both guarantee the mutation left no trace.
func errorDetail(err error) (int, ErrorDetail) {
	d := ErrorDetail{Code: CodeInternal, Message: err.Error()}
	code := http.StatusInternalServerError
	var se statusError
	var oe *OverloadError
	switch {
	case errors.As(err, &se):
		code = se.code
		d.Code = CodeBadRequest
	case errors.As(err, &oe):
		code = http.StatusTooManyRequests
		d.Code = CodeOverloaded
		// The envelope carries the precise projected wait in milliseconds;
		// only the Retry-After header (writeError) rounds up to whole
		// seconds. The floor of 1 keeps the hint present and parseable even
		// when the projected wait is under a millisecond.
		d.RetryAfterMs = oe.RetryAfter.Milliseconds()
		if d.RetryAfterMs < 1 {
			d.RetryAfterMs = 1
		}
	case errors.Is(err, ErrUnknownTenant):
		code = http.StatusNotFound
		d.Code = CodeUnknownTenant
	case errors.Is(err, stream.ErrUnknownID):
		code = http.StatusNotFound
		d.Code = CodeUnknownRequest
	case errors.Is(err, stream.ErrDuplicateID):
		code = http.StatusConflict
		d.Code = CodeDuplicateID
	case errors.Is(err, stream.ErrServed):
		code = http.StatusConflict
		d.Code = CodeAlreadyServed
	case errors.Is(err, stream.ErrEmptyID), errors.Is(err, stream.ErrBadAvailability),
		errors.Is(err, strategy.ErrBadParam), errors.Is(err, strategy.ErrBadCardinality),
		errors.Is(err, adpar.ErrBadK), errors.Is(err, adpar.ErrNotEnoughStrategies):
		code = http.StatusBadRequest
		d.Code = CodeInvalidArgument
	case errors.Is(err, ErrDuplicateTenant):
		code = http.StatusConflict
		d.Code = CodeDuplicateTenant
	case errors.Is(err, ErrNoDurability):
		code = http.StatusConflict
		d.Code = CodeNoDurability
	case errors.Is(err, ErrTenantClosed):
		code = http.StatusServiceUnavailable
		d.Code = CodeTenantClosed
		d.RetryAfterMs = 1000
	case errors.Is(err, ErrWALBroken):
		code = http.StatusServiceUnavailable
		d.Code = CodeWALBroken
		d.RetryAfterMs = 30000
	}
	return code, d
}

// writeError renders one domain error as the whole response, with the
// Retry-After header mirroring the envelope's hint (rounded up to whole
// seconds, the header's granularity) and the envelope echoing the trace
// ID the middleware already stamped on the response header.
func writeError(w http.ResponseWriter, err error) {
	code, d := errorDetail(err)
	d.TraceID = w.Header().Get(TraceHeader)
	if d.RetryAfterMs > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(time.Duration(d.RetryAfterMs)*time.Millisecond)))
	}
	writeJSON(w, code, ErrorResponse{Error: d})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	// An encode failure means the connection is gone; with the status
	// already written there is no recovery path.
	_ = json.NewEncoder(w).Encode(v)
}
