package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"stratrec/internal/adpar"
	"stratrec/internal/strategy"
	"stratrec/internal/stream"
)

// DeadlineHeader lets a client attach a per-request deadline to a
// mutation: admission control sheds up front when the projected queue
// wait exceeds it, and the event loop sheds immediately before apply when
// it expired while queued. The value is milliseconds, e.g.
// "X-Request-Deadline-Ms: 50". Without the header the server default
// (Config.MutationDeadline) applies, if any.
const DeadlineHeader = "X-Request-Deadline-Ms"

// routes wires the HTTP surface:
//
//	GET    /healthz                                       liveness
//	GET    /metrics                                       expvar metrics (JSON)
//	GET    /v1/tenants                                    hosted tenants
//	POST   /v1/tenants/{tenant}/requests                  submit a request
//	DELETE /v1/tenants/{tenant}/requests/{id}             revoke a request
//	GET    /v1/tenants/{tenant}/plan                      current plan snapshot
//	GET    /v1/tenants/{tenant}/requests/{id}/alternative ADPaR alternative
//	PUT    /v1/tenants/{tenant}/availability              move expected workforce
//	POST   /admin/checkpoint                              checkpoint + truncate every tenant WAL
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.metricsHandler)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("POST /v1/tenants/{tenant}/requests", s.tenantHandler(s.handleSubmit))
	mux.HandleFunc("DELETE /v1/tenants/{tenant}/requests/{id}", s.tenantHandler(s.handleRevoke))
	mux.HandleFunc("GET /v1/tenants/{tenant}/plan", s.tenantHandler(handlePlan))
	mux.HandleFunc("GET /v1/tenants/{tenant}/requests/{id}/alternative", s.tenantHandler(handleAlternative))
	mux.HandleFunc("PUT /v1/tenants/{tenant}/availability", s.tenantHandler(s.handleAvailability))
	mux.HandleFunc("POST /admin/checkpoint", s.handleCheckpoint)
	return mux
}

// --- JSON shapes ---

// SubmitRequest is the submit body. K defaults to 1.
type SubmitRequest struct {
	ID      string  `json:"id"`
	Quality float64 `json:"quality"`
	Cost    float64 `json:"cost"`
	Latency float64 `json:"latency"`
	K       int     `json:"k"`
}

// SubmitResponse reports the admission outcome. Served=false means the
// request is open but displaced; its alternative endpoint has an ADPaR
// recommendation.
type SubmitResponse struct {
	ID     string `json:"id"`
	Served bool   `json:"served"`
	Epoch  uint64 `json:"epoch"`
}

// EpochResponse acknowledges a mutation with the resulting plan epoch.
type EpochResponse struct {
	Epoch uint64 `json:"epoch"`
}

// AvailabilityRequest is the availability-update body.
type AvailabilityRequest struct {
	Workforce float64 `json:"workforce"`
}

// PlanRequest is one open request inside a PlanResponse.
type PlanRequest struct {
	ID      string  `json:"id"`
	Quality float64 `json:"quality"`
	Cost    float64 `json:"cost"`
	Latency float64 `json:"latency"`
	K       int     `json:"k"`
	Serving bool    `json:"serving"`
	// Feasible is false when fewer than K catalog strategies can ever
	// satisfy the request, at any availability.
	Feasible bool `json:"feasible"`
	// Workforce is the request's aggregated requirement; omitted when
	// infeasible.
	Workforce *float64 `json:"workforce,omitempty"`
	// Strategies holds the K recommended strategy IDs when served.
	Strategies []int `json:"strategies,omitempty"`
}

// PlanResponse is the tenant's current deployment plan.
type PlanResponse struct {
	Tenant       string        `json:"tenant"`
	Epoch        uint64        `json:"epoch"`
	Availability float64       `json:"availability"`
	Objective    float64       `json:"objective"`
	Workforce    float64       `json:"workforce"`
	Serving      []string      `json:"serving"`
	Displaced    []string      `json:"displaced"`
	Requests     []PlanRequest `json:"requests"`
}

// AlternativeResponse is an ADPaR recommendation for a displaced request.
type AlternativeResponse struct {
	ID         string  `json:"id"`
	Quality    float64 `json:"quality"`
	Cost       float64 `json:"cost"`
	Latency    float64 `json:"latency"`
	Distance   float64 `json:"distance"`
	Strategies []int   `json:"strategies"`
	Covered    int     `json:"covered"`
}

// TenantInfo is one entry of the tenant listing.
type TenantInfo struct {
	Name         string  `json:"name"`
	Strategies   int     `json:"strategies"`
	Open         int     `json:"open"`
	Serving      int     `json:"serving"`
	Epoch        uint64  `json:"epoch"`
	Availability float64 `json:"availability"`
}

// CheckpointResponse reports the per-tenant outcomes of POST
// /admin/checkpoint.
type CheckpointResponse struct {
	Tenants map[string]CheckpointInfo `json:"tenants"`
}

// ErrorResponse carries every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

// handleHealthz reports per-tenant health plus the aggregate. The
// endpoint stays 200 while any tenant can still make progress — a single
// WAL-broken tenant makes the aggregate "degraded", not the whole server
// unhealthy — and goes 503 ("unavailable") only when every tenant is
// read-only, so orchestrators don't restart a fleet member that is still
// serving N-1 tenants.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{Tenants: make(map[string]TenantHealth, len(s.names))}
	allOK, allDown := true, true
	for _, name := range s.names {
		h := s.tenants[name].health()
		resp.Tenants[name] = h
		if h.Status != HealthOK {
			allOK = false
		}
		if h.Status != HealthReadOnly {
			allDown = false
		}
	}
	code := http.StatusOK
	switch {
	case allDown:
		resp.Status = "unavailable"
		code = http.StatusServiceUnavailable
	case allOK:
		resp.Status = HealthOK
	default:
		resp.Status = HealthDegraded
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	out := make([]TenantInfo, 0, len(s.names))
	for _, name := range s.names {
		t := s.tenants[name]
		snap := t.snap.Load()
		out = append(out, TenantInfo{
			Name:         name,
			Strategies:   t.ix.Len(),
			Open:         len(snap.Requests),
			Serving:      len(snap.Plan.Serving),
			Epoch:        snap.Epoch,
			Availability: snap.Availability,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// tenantHandler resolves the {tenant} path segment before the wrapped
// handler runs.
func (s *Server) tenantHandler(h func(*Tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.Tenant(r.PathValue("tenant"))
		if err != nil {
			writeError(w, fmt.Errorf("%w: %s", ErrUnknownTenant, r.PathValue("tenant")))
			return
		}
		h(t, w, r)
	}
}

// mutationContext derives the admission-control context for one mutation
// from the DeadlineHeader, falling back to the server-wide default. The
// context deliberately does NOT inherit r.Context(): a client hanging up
// mid-flight must not turn an already-enqueued (and possibly applied +
// logged) mutation into a shed — the handler always waits for the loop's
// definitive answer, and only the loop sheds, only before apply.
func (s *Server) mutationContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.mutDeadline
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, badRequest("invalid %s header %q (want positive integer milliseconds)", DeadlineHeader, h)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d <= 0 {
		return context.Background(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	return ctx, cancel, nil
}

func (s *Server) handleSubmit(t *Tenant, w http.ResponseWriter, r *http.Request) {
	var body SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, badRequest("invalid JSON: %v", err))
		return
	}
	// IDs "." and ".." would be admitted but could never be addressed:
	// their revoke/alternative URLs are dot segments the HTTP layer
	// cleans away (301) before routing. Found by FuzzSubmitRequest.
	if body.ID == "." || body.ID == ".." {
		writeError(w, badRequest("request ID %q cannot be addressed as a URL path segment", body.ID))
		return
	}
	if body.K == 0 {
		body.K = 1
	}
	ctx, cancel, err := s.mutationContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	res, err := t.Submit(ctx, strategy.Request{
		ID:     body.ID,
		Params: strategy.Params{Quality: body.Quality, Cost: body.Cost, Latency: body.Latency},
		K:      body.K,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{ID: body.ID, Served: res.Served, Epoch: res.Epoch})
}

func (s *Server) handleRevoke(t *Tenant, w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := s.mutationContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	epoch, err := t.Revoke(ctx, r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EpochResponse{Epoch: epoch})
}

func (s *Server) handleAvailability(t *Tenant, w http.ResponseWriter, r *http.Request) {
	var body AvailabilityRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, badRequest("invalid JSON: %v", err))
		return
	}
	ctx, cancel, err := s.mutationContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	epoch, err := t.SetAvailability(ctx, body.Workforce)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EpochResponse{Epoch: epoch})
}

func handlePlan(t *Tenant, w http.ResponseWriter, _ *http.Request) {
	snap := t.Snapshot()
	resp := PlanResponse{
		Tenant:       t.name,
		Epoch:        snap.Epoch,
		Availability: snap.Availability,
		Objective:    snap.Plan.Objective,
		Workforce:    snap.Plan.Workforce,
		Serving:      snap.Plan.Serving,
		Displaced:    snap.Plan.Displaced,
		Requests:     make([]PlanRequest, 0, len(snap.Requests)),
	}
	if resp.Serving == nil {
		resp.Serving = []string{}
	}
	if resp.Displaced == nil {
		resp.Displaced = []string{}
	}
	for _, rs := range snap.Requests {
		pr := PlanRequest{
			ID:       rs.ID,
			Quality:  rs.Request.Quality,
			Cost:     rs.Request.Cost,
			Latency:  rs.Request.Latency,
			K:        rs.Request.K,
			Serving:  rs.Serving,
			Feasible: rs.Feasible,
		}
		if rs.Feasible && !math.IsInf(rs.Workforce, 1) {
			wf := rs.Workforce
			pr.Workforce = &wf
		}
		if rs.Serving {
			pr.Strategies = rs.Strategies
		}
		resp.Requests = append(resp.Requests, pr)
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleAlternative(t *Tenant, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Unlike mutations, the query inherits the request context: aborting
	// a read that never ran (client gone while queued for a pool slot)
	// has no accounting consequences.
	sol, rs, err := t.Alternative(r.Context(), id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, AlternativeResponse{
		ID:         id,
		Quality:    sol.Alternative.Quality,
		Cost:       sol.Alternative.Cost,
		Latency:    sol.Alternative.Latency,
		Distance:   sol.Distance,
		Strategies: sol.Strategies(rs.Request.K),
		Covered:    len(sol.Covered),
	})
}

// handleCheckpoint checkpoints every tenant (durable snapshot + WAL
// truncation). All-or-nothing per tenant: the first failure aborts with
// its error, already-checkpointed tenants keep their new checkpoints
// (checkpointing is idempotent, so a retry converges).
func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.dataDir == "" {
		writeError(w, ErrNoDurability)
		return
	}
	resp := CheckpointResponse{Tenants: make(map[string]CheckpointInfo, len(s.names))}
	for _, name := range s.names {
		info, err := s.tenants[name].Checkpoint()
		if err != nil {
			writeError(w, fmt.Errorf("tenant %s: %w", name, err))
			return
		}
		resp.Tenants[name] = info
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- plumbing ---

type statusError struct {
	code int
	msg  string
}

func (e statusError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return statusError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// writeError maps domain errors onto HTTP status codes: unknown
// tenant/request → 404, duplicate or already-served → 409, validation →
// 400, shed under overload → 429 with Retry-After, closed or read-only
// tenant → 503 with Retry-After, anything else → 500.
//
// The 429/503 split is semantic, not cosmetic: 429 means the server chose
// not to take the work (queue full, deadline unmeetable, pool saturated)
// and a backoff of Retry-After seconds should succeed; 503 means the
// tenant cannot take writes at all — shutting down (retry shortly against
// the replacement) or WAL-broken (no retry helps until an operator
// restarts, hence the longer hint). Both guarantee the mutation left no
// trace.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var se statusError
	var oe *OverloadError
	switch {
	case errors.As(err, &se):
		code = se.code
	case errors.As(err, &oe):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(oe.RetryAfter)))
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownTenant), errors.Is(err, stream.ErrUnknownID):
		code = http.StatusNotFound
	case errors.Is(err, stream.ErrDuplicateID), errors.Is(err, stream.ErrServed):
		code = http.StatusConflict
	case errors.Is(err, stream.ErrEmptyID), errors.Is(err, stream.ErrBadAvailability),
		errors.Is(err, strategy.ErrBadParam), errors.Is(err, strategy.ErrBadCardinality),
		errors.Is(err, adpar.ErrBadK), errors.Is(err, adpar.ErrNotEnoughStrategies):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNoDurability):
		code = http.StatusConflict
	case errors.Is(err, ErrTenantClosed):
		w.Header().Set("Retry-After", "1")
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrWALBroken):
		w.Header().Set("Retry-After", "30")
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	// An encode failure means the connection is gone; with the status
	// already written there is no recovery path.
	_ = json.NewEncoder(w).Encode(v)
}
