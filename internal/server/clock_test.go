package server

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-stepped clock for the deadline-shed tests: the
// server, its tenants, and the query pool all read it through Config.Now,
// so every time-derived observable (enqueue stamps, EWMA samples,
// projected waits, deadline comparisons) moves only when the test says so.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) step(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// postSubmit sends a submit with an X-Request-Deadline-Ms header and
// decodes the error envelope on a non-2xx answer.
func postSubmitDeadline(t *testing.T, client *http.Client, url, id string, deadlineMs string) (int, ErrorResponse) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/tenants/alpha/requests",
		strings.NewReader(`{"id":"`+id+`","quality":0.3,"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if deadlineMs != "" {
		req.Header.Set(DeadlineHeader, deadlineMs)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope ErrorResponse
	if resp.StatusCode >= 400 {
		decodeBody(t, resp, &envelope)
	}
	return resp.StatusCode, envelope
}

// TestDeadlineShedDeterministicRetryAfter: with a fixed injected clock
// and a seeded batch-latency EWMA, admission-control deadline shedding is
// a pure function of configuration — the same request sheds with the
// exact same retry_after_ms every run, because no wall-clock reading
// leaks into the projection. This is the regression test for the raw
// time.Now() call sites that used to sit in admit/projectedWait's inputs
// (tenant.go enqueue stamps, overload.go EWMA timing): under the old
// code the projection mixed fake deadlines with real waits and the hint
// drifted run to run.
func TestDeadlineShedDeterministicRetryAfter(t *testing.T) {
	for run := 0; run < 2; run++ {
		clk := newFakeClock()
		s, hs := newTestServer(t, Config{
			Tenants: map[string]TenantConfig{"alpha": fixedTenant(4, 0.7)},
			Now:     clk.now,
		})
		tn, err := s.Tenant("alpha")
		if err != nil {
			t.Fatal(err)
		}
		// Seed the EWMA as if the loop had measured one 8ms coalesced
		// batch. projectedWait(0) = (0/coalesce + 1) * 8ms = 8ms.
		tn.batchLatency.observe(8 * time.Millisecond)

		// A 1ms deadline cannot absorb the projected 8ms wait: admission
		// sheds without enqueueing, and the hint is exactly the projection.
		code, envelope := postSubmitDeadline(t, hs.Client(), hs.URL, "r1", "1")
		if code != http.StatusTooManyRequests {
			t.Fatalf("run %d: submit = %d, want 429", run, code)
		}
		if envelope.Error.Code != CodeOverloaded {
			t.Fatalf("run %d: code = %q, want %q", run, envelope.Error.Code, CodeOverloaded)
		}
		if envelope.Error.RetryAfterMs != 8 {
			t.Fatalf("run %d: retry_after_ms = %d, want exactly 8", run, envelope.Error.RetryAfterMs)
		}
		if got := tn.met.shedsDeadline.Value(); got != 1 {
			t.Fatalf("run %d: sheds_deadline = %d, want 1", run, got)
		}
		// A 9ms deadline absorbs the 8ms projection: the mutation is
		// admitted, applied, and acknowledged — the fixed clock never
		// expires it while queued.
		if code, _ := postSubmitDeadline(t, hs.Client(), hs.URL, "r2", "9"); code != http.StatusOK {
			t.Fatalf("run %d: submit within deadline = %d, want 200", run, code)
		}
	}
}

// TestLoopDeadlineShedUnderSteppedClock drives the loop-side pre-apply
// shed deterministically: a blocker op freezes the event loop mid-batch
// (ApplyDelay gate), a second op with a 5ms deadline enqueues behind it,
// the fake clock steps 10ms while the loop is frozen, and on release the
// blocker's batch records an exactly-10ms EWMA sample. The loop then
// finds the queued op expired (stepped now > its deadline) and sheds it
// before apply with retry_after_ms equal to the projection from that
// 10ms sample — every number a function of the steps the test made.
func TestLoopDeadlineShedUnderSteppedClock(t *testing.T) {
	clk := newFakeClock()
	entered := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	cfg := fixedTenant(4, 0.7)
	cfg.Faults = &Faults{
		ApplyDelay: func(kind, id string) time.Duration {
			if id == "blocker" {
				gateOnce.Do(func() {
					close(entered)
					<-release
				})
			}
			return 0
		},
	}
	s, hs := newTestServer(t, Config{
		Tenants: map[string]TenantConfig{"alpha": cfg},
		Now:     clk.now,
	})
	tn, err := s.Tenant("alpha")
	if err != nil {
		t.Fatal(err)
	}

	type reply struct {
		code     int
		envelope ErrorResponse
	}
	blockerDone := make(chan reply, 1)
	go func() {
		code, env := postSubmitDeadline(t, hs.Client(), hs.URL, "blocker", "")
		blockerDone <- reply{code, env}
	}()
	<-entered // loop is mid-batch, frozen on the gate

	// The victim clears admission (projected wait = 500µs fallback, well
	// inside 5ms) and enqueues behind the frozen batch.
	victimDone := make(chan reply, 1)
	go func() {
		code, env := postSubmitDeadline(t, hs.Client(), hs.URL, "victim", "5")
		victimDone <- reply{code, env}
	}()
	deadlineWait := time.Now().Add(5 * time.Second)
	for len(tn.ops) == 0 {
		if time.Now().After(deadlineWait) {
			t.Fatal("victim op never reached the inbox")
		}
		time.Sleep(time.Millisecond)
	}

	// While the loop is frozen, 10ms pass on the injected timeline: past
	// the victim's deadline, and exactly the latency the blocker's batch
	// will record into the EWMA.
	clk.step(10 * time.Millisecond)
	close(release)

	if r := <-blockerDone; r.code != http.StatusOK {
		t.Fatalf("blocker = %d, want 200", r.code)
	}
	r := <-victimDone
	if r.code != http.StatusTooManyRequests {
		t.Fatalf("victim = %d, want 429", r.code)
	}
	if r.envelope.Error.Code != CodeOverloaded {
		t.Fatalf("victim code = %q, want %q", r.envelope.Error.Code, CodeOverloaded)
	}
	if r.envelope.Error.RetryAfterMs != 10 {
		t.Fatalf("victim retry_after_ms = %d, want exactly 10 (the stepped batch latency)", r.envelope.Error.RetryAfterMs)
	}
	if got := tn.met.shedsDeadline.Value(); got != 1 {
		t.Fatalf("sheds_deadline = %d, want 1", got)
	}
	// Two batches ran on the stepped timeline: the blocker's (10ms, the
	// first sample) and the victim's shed batch (0ms under the now-static
	// clock), leaving 10ms + (0-10ms)/4 = 7.5ms — exact, every run.
	if got := tn.batchLatency.get(0); got != 7500*time.Microsecond {
		t.Fatalf("batch latency EWMA = %v, want exactly 7.5ms", got)
	}
}
