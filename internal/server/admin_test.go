package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"stratrec/internal/store"
	"stratrec/internal/strategy"
)

// adminCatalog is a small valid catalog for runtime-create tests:
// entries without fitted models, so the server's anchored-model default
// materializes them exactly like boot-time loading would.
func adminCatalog() store.Catalog {
	return store.Catalog{
		Workforce: 0.7,
		Entries: []store.Entry{
			{Name: "s1", Structure: "SEQ", Organize: "IND", Style: "CRO",
				Params: strategy.Params{Quality: 0.9, Cost: 0.2, Latency: 0.2}},
			{Name: "s2", Structure: "SIM", Organize: "COL", Style: "HYB",
				Params: strategy.Params{Quality: 0.8, Cost: 0.15, Latency: 0.25}},
			{Name: "s3", Structure: "SEQ", Organize: "COL", Style: "CRO",
				Params: strategy.Params{Quality: 0.7, Cost: 0.1, Latency: 0.3}},
		},
	}
}

// TestAdminTenantLifecycle: a tenant created over the wire takes
// traffic, reports status, 409s on duplicate create, drains with a
// final checkpoint, 404s afterwards — and a restart that carries the
// same catalog in its boot config recovers the drained tenant's
// acknowledged state cleanly.
func TestAdminTenantLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Tenants: map[string]TenantConfig{"alpha": fixedTenant(4, 0.7)},
		DataDir: dir,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Closed mid-test for the restart, so no newTestServer cleanup here.
	hs := httptest.NewServer(s1.Handler())
	client := hs.Client()
	create := CreateTenantRequest{Catalog: adminCatalog()}

	var st TenantStatusResponse
	if code := call(t, client, "POST", hs.URL+"/v1/admin/tenants/beta", create, &st); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	if st.Name != "beta" || st.Strategies != 3 || st.Availability != 0.7 {
		t.Fatalf("created status: %+v", st)
	}

	// Duplicate name: 409 duplicate_tenant, existing tenant untouched.
	var envelope ErrorResponse
	if code := call(t, client, "POST", hs.URL+"/v1/admin/tenants/beta", create, &envelope); code != http.StatusConflict {
		t.Fatalf("duplicate create status %d", code)
	}
	if envelope.Error.Code != CodeDuplicateTenant {
		t.Fatalf("duplicate create code %q", envelope.Error.Code)
	}
	// Bad catalog: 400 before any registry mutation.
	if code := call(t, client, "POST", hs.URL+"/v1/admin/tenants/gamma",
		CreateTenantRequest{Catalog: store.Catalog{Workforce: 0.5}}, &envelope); code != http.StatusBadRequest {
		t.Fatalf("empty catalog status %d", code)
	}

	// The runtime tenant takes durable traffic like a boot-time one.
	var sub SubmitResponse
	for _, id := range []string{"r1", "r2"} {
		if code := call(t, client, "POST", hs.URL+"/v1/tenants/beta/requests",
			SubmitRequest{ID: id, Quality: 0.4, Cost: 0.9, Latency: 0.9, K: 1}, &sub); code != http.StatusOK {
			t.Fatalf("submit %s status %d", id, code)
		}
	}
	if code := call(t, client, "GET", hs.URL+"/v1/admin/tenants/beta", nil, &st); code != http.StatusOK {
		t.Fatalf("status status %d", code)
	}
	if st.Open != 2 || st.Draining {
		t.Fatalf("status after traffic: %+v", st)
	}

	bt, _ := s1.Tenant("beta")
	want := bt.Snapshot()

	var drain DrainTenantResponse
	if code := call(t, client, "DELETE", hs.URL+"/v1/admin/tenants/beta", nil, &drain); code != http.StatusOK {
		t.Fatalf("drain status %d", code)
	}
	if drain.Tenant != "beta" || drain.Checkpoint.Requests != 2 {
		t.Fatalf("drain response: %+v", drain)
	}
	// Detached: both data and admin paths answer 404 now.
	if code := call(t, client, "POST", hs.URL+"/v1/tenants/beta/requests",
		SubmitRequest{ID: "r3", Quality: 0.4, Cost: 0.9, Latency: 0.9, K: 1}, &envelope); code != http.StatusNotFound {
		t.Fatalf("submit after drain status %d", code)
	}
	if code := call(t, client, "DELETE", hs.URL+"/v1/admin/tenants/beta", nil, &envelope); code != http.StatusNotFound {
		t.Fatalf("double drain status %d", code)
	}
	hs.Close()
	s1.Close()

	// Restart with beta promoted into the boot config: recovery replays
	// the drained tenant's checkpoint + WAL to exactly the acked state.
	betaCfg, err := tenantConfigFromCreate(create)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tenants["beta"] = betaCfg
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	bt2, err := s2.Tenant("beta")
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, want, bt2.Snapshot())
}

// TestDrainRejectsLiveWrites: ops admitted while the drain flag is up
// answer ErrTenantClosed (503 family) — not an ack, not a hang.
func TestDrainRejectsLiveWrites(t *testing.T) {
	s, err := New(Config{Tenants: map[string]TenantConfig{"alpha": fixedTenant(4, 0.7)}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tn, _ := s.Tenant("alpha")
	tn.draining.Store(true)
	if _, err := tn.Submit(context.Background(), submitReqN("x", 0.3)); !errors.Is(err, ErrTenantClosed) {
		t.Fatalf("submit while draining: %v, want ErrTenantClosed", err)
	}
}
