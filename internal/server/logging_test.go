package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// logSink collects structured events across handler clones — the test
// double behind Config.Logger. Attribute values are flattened to strings
// so assertions read naturally.
type logSink struct {
	mu     sync.Mutex
	events []capturedEvent
}

type capturedEvent struct {
	msg   string
	level slog.Level
	attrs map[string]string
}

// byMsg returns the captured events with the given message, in order.
func (s *logSink) byMsg(msg string) []capturedEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []capturedEvent
	for _, e := range s.events {
		if e.msg == msg {
			out = append(out, e)
		}
	}
	return out
}

// terminals returns reply and shed events carrying the given trace ID —
// the lines the exactly-one-terminal-event contract is about.
func (s *logSink) terminals(trace string) []capturedEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []capturedEvent
	for _, e := range s.events {
		if (e.msg == evReply || e.msg == evShed) && e.attrs["trace"] == trace {
			out = append(out, e)
		}
	}
	return out
}

type captureHandler struct {
	sink  *logSink
	level slog.Level
	bound []slog.Attr
}

func (h *captureHandler) Enabled(_ context.Context, l slog.Level) bool { return l >= h.level }

func (h *captureHandler) Handle(_ context.Context, r slog.Record) error {
	e := capturedEvent{msg: r.Message, level: r.Level, attrs: map[string]string{}}
	for _, a := range h.bound {
		e.attrs[a.Key] = a.Value.String()
	}
	r.Attrs(func(a slog.Attr) bool {
		e.attrs[a.Key] = a.Value.String()
		return true
	})
	h.sink.mu.Lock()
	h.sink.events = append(h.sink.events, e)
	h.sink.mu.Unlock()
	return nil
}

func (h *captureHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	bound := append(append([]slog.Attr{}, h.bound...), attrs...)
	return &captureHandler{sink: h.sink, level: h.level, bound: bound}
}

func (h *captureHandler) WithGroup(string) slog.Handler { return h }

// captureLogger returns a logger recording into a fresh sink.
func captureLogger(level slog.Level) (*slog.Logger, *logSink) {
	sink := &logSink{}
	return slog.New(&captureHandler{sink: sink, level: level}), sink
}

// TestTraceIDValidation: the middleware's accept/replace rule — printable
// ASCII up to 64 bytes passes through, anything else is regenerated.
func TestTraceIDValidation(t *testing.T) {
	for _, ok := range []string{"abc", "req-1/2.3", "x", strings.Repeat("a", 64)} {
		if !validTraceID(ok) {
			t.Errorf("validTraceID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "has space", "tab\tseparated", "new\nline", "ünïcode", strings.Repeat("a", 65)} {
		if validTraceID(bad) {
			t.Errorf("validTraceID(%q) = true", bad)
		}
	}
	a, b := newTraceID(), newTraceID()
	if !validTraceID(a) || a == b {
		t.Fatalf("generated trace IDs: %q, %q", a, b)
	}
}

// TestTraceMiddlewareEcho: every response carries X-Trace-Id — the
// caller's when presented and valid, a generated one otherwise — and
// error envelopes repeat it in trace_id.
func TestTraceMiddlewareEcho(t *testing.T) {
	cfg := Config{Tenants: map[string]TenantConfig{"alpha": fixedTenant(4, 0.7)}}
	_, hs := newTestServer(t, cfg)
	client := hs.Client()

	// Caller-supplied ID round-trips.
	req, _ := http.NewRequest("GET", hs.URL+"/v1/tenants/alpha/plan", nil)
	req.Header.Set(TraceHeader, "trace-echo-1")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "trace-echo-1" {
		t.Fatalf("echoed trace = %q, want trace-echo-1", got)
	}

	// No header: the server generates one.
	resp, err = client.Get(hs.URL + "/v1/tenants/alpha/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); !validTraceID(got) {
		t.Fatalf("generated trace = %q", got)
	}

	// Invalid header: replaced, not echoed.
	req, _ = http.NewRequest("GET", hs.URL+"/v1/tenants/alpha/plan", nil)
	req.Header.Set(TraceHeader, strings.Repeat("x", 200))
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); !validTraceID(got) || strings.HasPrefix(got, "xxx") {
		t.Fatalf("invalid inbound trace not replaced: %q", got)
	}

	// Error envelope: trace_id matches the response header.
	req, _ = http.NewRequest("DELETE", hs.URL+"/v1/tenants/alpha/requests/ghost", nil)
	req.Header.Set(TraceHeader, "trace-err-1")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var envelope ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || envelope.Error.TraceID != "trace-err-1" {
		t.Fatalf("error envelope: status %d, trace %q", resp.StatusCode, envelope.Error.TraceID)
	}
}

// TestTerminalEventSingleOp: one acknowledged mutation produces exactly
// one terminal log line — a "reply" carrying the caller's trace ID, the
// op kind and ID, and the post-apply epoch.
func TestTerminalEventSingleOp(t *testing.T) {
	logger, sink := captureLogger(slog.LevelDebug)
	cfg := Config{
		Tenants: map[string]TenantConfig{"alpha": fixedTenant(4, 0.7)},
		Logger:  logger,
	}
	_, hs := newTestServer(t, cfg)

	body, _ := json.Marshal(SubmitRequest{ID: "r1", Quality: 0.4, Cost: 0.9, Latency: 0.9, K: 1})
	req, _ := http.NewRequest("POST", hs.URL+"/v1/tenants/alpha/requests", bytes.NewReader(body))
	req.Header.Set(TraceHeader, "trace-single")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	terms := sink.terminals("trace-single")
	if len(terms) != 1 {
		t.Fatalf("terminal events for trace-single: %d (%v), want exactly 1", len(terms), terms)
	}
	e := terms[0]
	if e.msg != evReply || e.attrs["kind"] != "submit" || e.attrs["id"] != "r1" ||
		e.attrs["tenant"] != "alpha" || e.attrs["epoch"] == "0" {
		t.Fatalf("reply event: %+v", e)
	}
	// The per-op debug events carry the same trace end to end; publish is
	// batch-level (one publish may cover many traces) so only its
	// presence is checked.
	for _, msg := range []string{evAdmit, evApply} {
		events := sink.byMsg(msg)
		if len(events) == 0 {
			t.Fatalf("no %s event captured", msg)
		}
		found := false
		for _, e := range events {
			if e.attrs["trace"] == "trace-single" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s events lost the trace: %+v", msg, events)
		}
	}
	if len(sink.byMsg(evPublish)) == 0 {
		t.Fatal("no publish event captured")
	}
}

// TestTerminalEventBatch: each op of a batched ingest gets its own
// terminal reply, all sharing the request's trace ID.
func TestTerminalEventBatch(t *testing.T) {
	logger, sink := captureLogger(slog.LevelInfo)
	cfg := Config{
		Tenants: map[string]TenantConfig{"alpha": fixedTenant(4, 0.7)},
		Logger:  logger,
	}
	_, hs := newTestServer(t, cfg)

	body, _ := json.Marshal(BatchRequest{Ops: []BatchOp{
		{Op: OpSubmit, ID: "b1", Quality: 0.4, Cost: 0.9, Latency: 0.9, K: 1},
		{Op: OpSubmit, ID: "b2", Quality: 0.45, Cost: 0.9, Latency: 0.9, K: 1},
		{Op: OpRevoke, ID: "b1"},
	}})
	req, _ := http.NewRequest("POST", hs.URL+"/v1/tenants/alpha/ops", bytes.NewReader(body))
	req.Header.Set(TraceHeader, "trace-batch")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(br.Results) != 3 {
		t.Fatalf("batch: status %d, results %+v", resp.StatusCode, br.Results)
	}

	terms := sink.terminals("trace-batch")
	if len(terms) != 3 {
		t.Fatalf("terminal events for trace-batch: %d, want 3 (one per op)", len(terms))
	}
	for i, want := range []struct{ kind, id string }{
		{"submit", "b1"}, {"submit", "b2"}, {"revoke", "b1"},
	} {
		e := terms[i]
		if e.msg != evReply || e.attrs["kind"] != want.kind || e.attrs["id"] != want.id {
			t.Fatalf("batch terminal %d: %+v, want %s %s", i, e, want.kind, want.id)
		}
	}
}

// TestShedEventsCarryTrace: both admission sheds — queue-full and
// deadline — emit exactly one "shed" terminal event with the caller's
// trace, and the HTTP reply's envelope carries the same ID.
func TestShedEventsCarryTrace(t *testing.T) {
	logger, sink := captureLogger(slog.LevelInfo)
	tcfg, gate, entered := gatedTenantConfig(1, 1)
	cfg := Config{
		Tenants: map[string]TenantConfig{"alpha": tcfg},
		Logger:  logger,
	}
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	s, hs := newTestServer(t, cfg)
	t.Cleanup(openGate) // release the loop before the server cleanup closes it

	// Freeze the loop on "a", fill the single-slot inbox with "b".
	tn, _ := s.Tenant("alpha")
	go func() { tn.Submit(context.Background(), submitReqN("a", 0.52)) }()
	entered.Wait()
	go func() { tn.Submit(context.Background(), submitReqN("b", 0.52)) }()
	for len(tn.ops) == 0 {
		time.Sleep(time.Millisecond)
	}

	// "c" is shed queue-full over HTTP with a trace attached.
	body, _ := json.Marshal(SubmitRequest{ID: "c", Quality: 0.52, Cost: 0.9, Latency: 0.9, K: 1})
	req, _ := http.NewRequest("POST", hs.URL+"/v1/tenants/alpha/requests", bytes.NewReader(body))
	req.Header.Set(TraceHeader, "trace-shed")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var envelope ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || envelope.Error.TraceID != "trace-shed" {
		t.Fatalf("shed reply: status %d, trace %q", resp.StatusCode, envelope.Error.TraceID)
	}

	terms := sink.terminals("trace-shed")
	if len(terms) != 1 {
		t.Fatalf("terminal events for trace-shed: %d, want exactly 1", len(terms))
	}
	e := terms[0]
	if e.msg != evShed || e.level != slog.LevelWarn || e.attrs["kind"] != "submit" ||
		e.attrs["id"] != "c" || !strings.Contains(e.attrs["error"], "overloaded") {
		t.Fatalf("shed event: %+v", e)
	}

	// Deadline shed: a queued op whose projected wait exceeds an
	// impossible deadline, same contract.
	pinLatency(tn, 50*time.Millisecond)
	req, _ = http.NewRequest("POST", hs.URL+"/v1/tenants/alpha/requests",
		bytes.NewReader(mustJSON(t, SubmitRequest{ID: "d", Quality: 0.52, Cost: 0.9, Latency: 0.9, K: 1})))
	req.Header.Set(TraceHeader, "trace-deadline")
	req.Header.Set(DeadlineHeader, "1")
	resp, err = hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("deadline shed status %d", resp.StatusCode)
	}
	terms = sink.terminals("trace-deadline")
	if len(terms) != 1 || terms[0].msg != evShed {
		t.Fatalf("terminal events for trace-deadline: %+v, want one shed", terms)
	}
}

// pinLatency fixes the tenant's batch-latency EWMA so projected-wait
// admission math is deterministic in tests.
func pinLatency(tn *Tenant, d time.Duration) {
	tn.batchLatency.nanos.Store(int64(d))
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
