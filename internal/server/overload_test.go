package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"stratrec/internal/strategy"
)

// postSubmit fires one raw submit so tests can inspect status code and
// headers (call() hides both behind JSON decoding).
func postSubmit(t *testing.T, client *http.Client, base, tenant string, sr SubmitRequest) *http.Response {
	t.Helper()
	data, err := json.Marshal(sr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+"/v1/tenants/"+tenant+"/requests", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func submitReqN(id string, q float64) strategy.Request {
	return strategy.Request{ID: id, Params: strategy.Params{Quality: q, Cost: 0.9, Latency: 0.9}, K: 1}
}

// gatedTenantConfig returns a tenant whose every live apply blocks on the
// returned gate — the deterministic way to freeze the loop and fill the
// inbox. Closing the gate releases all applies at once.
func gatedTenantConfig(buf, coalesce int) (TenantConfig, chan struct{}, *sync.WaitGroup) {
	cfg := fixedTenant(4, 1)
	cfg.OpBuffer = buf
	cfg.Coalesce = coalesce
	gate := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var once sync.Once
	cfg.Faults = &Faults{ApplyDelay: func(kind, id string) time.Duration {
		once.Do(entered.Done) // signals the loop is frozen mid-apply
		<-gate
		return 0
	}}
	return cfg, gate, &entered
}

// TestAdmissionQueueFullSheds: with the loop frozen mid-apply and the
// inbox full, the next mutation is shed immediately with an OverloadError
// instead of blocking — and the queued mutations still ack once the loop
// resumes.
func TestAdmissionQueueFullSheds(t *testing.T) {
	cfg, gate, entered := gatedTenantConfig(1, 1)
	tn, err := newTenant("x", cfg, durability{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { tn.close() }()

	results := make(chan error, 2)
	go func() { _, err := tn.Submit(context.Background(), submitReqN("a", 0.52)); results <- err }()
	entered.Wait() // loop is frozen applying "a"
	go func() { _, err := tn.Submit(context.Background(), submitReqN("b", 0.52)); results <- err }()
	for len(tn.ops) == 0 {
		time.Sleep(time.Millisecond) // "b" is queued, inbox now full
	}

	_, err = tn.Submit(context.Background(), submitReqN("c", 0.52))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit into full inbox: %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("shed error %v lacks a usable RetryAfter", err)
	}
	if got := tn.met.shedsQueueFull.Value(); got != 1 {
		t.Fatalf("sheds_queue_full = %d, want 1", got)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued submit failed after resume: %v", err)
		}
	}
	snap := tn.Snapshot()
	if len(snap.Requests) != 2 {
		t.Fatalf("recovered %d open requests, want 2 (the shed one must be absent)", len(snap.Requests))
	}
}

// TestAdmissionDeadlineProjection: a mutation whose deadline the
// projected queue wait already overshoots is shed up front, without ever
// reaching the loop.
func TestAdmissionDeadlineProjection(t *testing.T) {
	cfg := fixedTenant(4, 1)
	tn, err := newTenant("x", cfg, durability{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.close()

	// Prime the latency estimate: one batch takes ~100ms, so any
	// deadline under that is unmeetable even with an empty queue.
	tn.batchLatency.observe(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = tn.Submit(ctx, submitReqN("d", 0.52))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit with unmeetable deadline: %v, want ErrOverloaded", err)
	}
	if got := tn.met.shedsDeadline.Value(); got != 1 {
		t.Fatalf("sheds_deadline = %d, want 1", got)
	}
	if got := len(tn.Snapshot().Requests); got != 0 {
		t.Fatalf("shed submit left %d requests behind", got)
	}
}

// TestLoopShedsExpiredBeforeApply: an op whose deadline expires while it
// is queued is shed by the loop immediately before apply — it never
// mutates state, never reaches the WAL.
func TestLoopShedsExpiredBeforeApply(t *testing.T) {
	cfg, gate, entered := gatedTenantConfig(4, 1)
	tn, err := newTenant("x", cfg, durability{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.close()

	first := make(chan error, 1)
	go func() { _, err := tn.Submit(context.Background(), submitReqN("a", 0.52)); first <- err }()
	entered.Wait() // loop frozen applying "a"

	// "b" queues with a deadline that will expire while it waits.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	second := make(chan error, 1)
	go func() { _, err := tn.Submit(ctx, submitReqN("b", 0.52)); second <- err }()
	for len(tn.ops) == 0 {
		time.Sleep(time.Millisecond)
	}
	<-ctx.Done() // deadline passes while "b" is queued
	close(gate)

	if err := <-first; err != nil {
		t.Fatalf("first submit: %v", err)
	}
	err = <-second
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired-in-queue submit: %v, want ErrOverloaded", err)
	}
	snap := tn.Snapshot()
	if len(snap.Requests) != 1 || snap.Epoch != 1 {
		t.Fatalf("state after expired shed: %d requests, epoch %d; want 1, 1", len(snap.Requests), snap.Epoch)
	}
}

// TestShutdownUnderLoadAcksOrShedsEverything is the graceful-shutdown
// contract: SIGTERM (server Close) with a full coalescing queue must give
// every in-flight mutation a definitive answer — 2xx ack or shed — and a
// restart must recover exactly the acked set, nothing more, nothing less.
func TestShutdownUnderLoadAcksOrShedsEverything(t *testing.T) {
	dir := t.TempDir()
	cfg, gate, entered := gatedTenantConfig(8, 4)
	s, err := New(Config{
		Tenants:      map[string]TenantConfig{"x": cfg},
		DataDir:      dir,
		WALSyncEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := s.Tenant("x")

	const writers = 16
	type outcome struct {
		id  string
		err error
	}
	outcomes := make(chan outcome, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", w)
			_, err := tn.Submit(context.Background(), submitReqN(id, 0.52))
			outcomes <- outcome{id: id, err: err}
		}(w)
	}
	entered.Wait() // loop frozen, writers piling into the inbox
	for len(tn.ops) < 4 {
		time.Sleep(time.Millisecond)
	}
	// SIGTERM: release the loop and close the server concurrently, the
	// racy shape a real drain has.
	close(gate)
	s.Close()
	wg.Wait()
	close(outcomes)

	acked := map[string]bool{}
	for o := range outcomes {
		switch {
		case o.err == nil:
			acked[o.id] = true
		case errors.Is(o.err, ErrTenantClosed), errors.Is(o.err, ErrOverloaded):
			// definitive shed: must be absent after restart
		default:
			t.Fatalf("submit %s: unexpected outcome %v", o.id, o.err)
		}
	}

	// Restart from disk: the recovered set is exactly the acked set.
	cfg2 := fixedTenant(4, 1)
	s2, err := New(Config{
		Tenants:      map[string]TenantConfig{"x": cfg2},
		DataDir:      dir,
		WALSyncEvery: 1,
	})
	if err != nil {
		t.Fatalf("restart after shutdown under load: %v", err)
	}
	defer s2.Close()
	tn2, _ := s2.Tenant("x")
	snap := tn2.Snapshot()
	if len(snap.Requests) != len(acked) {
		t.Fatalf("recovered %d requests, acked %d", len(snap.Requests), len(acked))
	}
	for _, rs := range snap.Requests {
		if !acked[rs.ID] {
			t.Fatalf("recovered %s was never acked", rs.ID)
		}
	}
	if snap.Epoch != uint64(len(acked)) {
		t.Fatalf("recovered epoch %d != %d acked mutations", snap.Epoch, len(acked))
	}
}

// TestRetryAfterMillisecondPrecision is the regression test for the
// Retry-After granularity bug: shed errors used to round the projected
// wait up to whole seconds at construction time, so the envelope's
// retry_after_ms was always a multiple of 1000 even when the projected
// wait was 10ms — clients backed off up to 200x longer than the server
// actually estimated. The precise duration must now survive into
// retry_after_ms, with only the Retry-After *header* rounded up to the
// whole seconds HTTP speaks.
func TestRetryAfterMillisecondPrecision(t *testing.T) {
	cfg, gate, entered := gatedTenantConfig(1, 1)
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	s, hs := newTestServer(t, Config{Tenants: map[string]TenantConfig{"x": cfg}})
	t.Cleanup(openGate) // registered after newTestServer's: runs first, unfreezes the loop for Close

	tn, _ := s.Tenant("x")
	done := make(chan struct{}, 2)
	go func() { tn.Submit(context.Background(), submitReqN("a", 0.52)); done <- struct{}{} }()
	entered.Wait() // loop frozen applying "a"
	go func() { tn.Submit(context.Background(), submitReqN("b", 0.52)); done <- struct{}{} }()
	for len(tn.ops) == 0 {
		time.Sleep(time.Millisecond)
	}
	// Pin the batch-latency EWMA: with cap(ops)=1 and coalesce=1 the
	// projected drain wait on a queue-full shed is (1/1+1) * 5ms = 10ms.
	tn.batchLatency.nanos.Store(int64(5 * time.Millisecond))

	resp := postSubmit(t, hs.Client(), hs.URL, "x", SubmitRequest{ID: "c", Quality: 0.52, Cost: 0.9, Latency: 0.9, K: 1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After header = %q, want \"1\" (sub-second wait rounds up to the header's whole-second floor)", got)
	}
	// Re-issue to read the envelope (postSubmit discards the body).
	data, _ := json.Marshal(SubmitRequest{ID: "c", Quality: 0.52, Cost: 0.9, Latency: 0.9, K: 1})
	resp2, err := hs.Client().Post(hs.URL+"/v1/tenants/x/requests", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var envelope ErrorResponse
	if err := json.NewDecoder(resp2.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != CodeOverloaded {
		t.Fatalf("envelope code = %q, want %q", envelope.Error.Code, CodeOverloaded)
	}
	if ms := envelope.Error.RetryAfterMs; ms != 10 {
		t.Fatalf("retry_after_ms = %d, want the precise 10ms projected wait (whole-second rounding destroyed the hint)", ms)
	}

	openGate()
	<-done
	<-done
}

// TestRetryAfterEnvelopeFloor: a projected wait under a millisecond still
// yields a present, parseable retry_after_ms (floor 1), so every shed's
// hint stays machine-readable.
func TestRetryAfterEnvelopeFloor(t *testing.T) {
	_, d := errorDetail(&OverloadError{RetryAfter: 100 * time.Microsecond, Reason: "test"})
	if d.RetryAfterMs != 1 {
		t.Fatalf("retry_after_ms = %d for a 100µs wait, want floor 1", d.RetryAfterMs)
	}
}

// TestHealthzPerTenant is the regression test for the flat-healthz bug: a
// tenant that tripped the WAL read-only breaker must surface as
// "read-only" with the aggregate "degraded" (still 200 — the other tenant
// serves), and the endpoint goes 503 only when every tenant is out.
func TestHealthzPerTenant(t *testing.T) {
	dir := t.TempDir()
	badCfg := fixedTenant(4, 1)
	syncs := 0
	badCfg.Faults = &Faults{WALSync: func() error {
		syncs++
		if syncs >= 2 {
			return errors.New("injected fsync failure")
		}
		return nil
	}}
	s, hs := newTestServer(t, Config{
		Tenants: map[string]TenantConfig{
			"good": fixedTenant(4, 1),
			"bad":  badCfg,
		},
		DataDir:      dir,
		WALSyncEvery: 1,
	})
	c := hs.Client()

	var health HealthResponse
	if code := call(t, c, "GET", hs.URL+"/healthz", nil, &health); code != 200 || health.Status != HealthOK {
		t.Fatalf("healthz before fault = %d %+v", code, health)
	}

	bad, _ := s.Tenant("bad")
	if _, err := bad.Submit(context.Background(), submitReqN("b1", 0.52)); err != nil {
		t.Fatal(err) // sync 1 passes
	}
	_, err := bad.Submit(context.Background(), submitReqN("b2", 0.52))
	if !errors.Is(err, ErrWALBroken) {
		t.Fatalf("second submit: %v, want ErrWALBroken", err)
	}

	if code := call(t, c, "GET", hs.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz with one broken tenant = %d, want 200 (other tenant still serves)", code)
	}
	if health.Status != HealthDegraded ||
		health.Tenants["bad"].Status != HealthReadOnly ||
		health.Tenants["good"].Status != HealthOK {
		t.Fatalf("healthz = %+v, want degraded with bad=read-only good=ok", health)
	}

	// The broken tenant's 503s carry Retry-After.
	resp := postSubmit(t, c, hs.URL, "bad", SubmitRequest{ID: "b3", Quality: 0.52, Cost: 0.9, Latency: 0.9, K: 1})
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("mutation on broken tenant = %d Retry-After=%q, want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Reads still serve the last published snapshot.
	var plan PlanResponse
	if code := call(t, c, "GET", hs.URL+"/v1/tenants/bad/plan", nil, &plan); code != 200 || len(plan.Requests) != 1 {
		t.Fatalf("read on broken tenant = %d with %d requests, want 200 with 1", code, len(plan.Requests))
	}
}

// TestHealthzUnavailableWhenAllBroken: single tenant, breaker tripped →
// the aggregate is the only non-200 healthz case.
func TestHealthzUnavailableWhenAllBroken(t *testing.T) {
	dir := t.TempDir()
	cfg := fixedTenant(4, 1)
	cfg.Faults = &Faults{WALSync: func() error { return errors.New("injected fsync failure") }}
	s, hs := newTestServer(t, Config{
		Tenants:      map[string]TenantConfig{"only": cfg},
		DataDir:      dir,
		WALSyncEvery: 1,
	})
	tn, _ := s.Tenant("only")
	if _, err := tn.Submit(context.Background(), submitReqN("a", 0.52)); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("submit: %v, want ErrWALBroken", err)
	}
	var health HealthResponse
	if code := call(t, hs.Client(), "GET", hs.URL+"/healthz", nil, &health); code != http.StatusServiceUnavailable || health.Status != "unavailable" {
		t.Fatalf("healthz = %d %+v, want 503 unavailable", code, health)
	}
}

// TestClosedTenant503RetryAfter: requests racing a shutdown get 503 +
// Retry-After (satellite: ErrTenantClosed carries a retry hint too).
func TestClosedTenant503RetryAfter(t *testing.T) {
	s, err := New(Config{Tenants: map[string]TenantConfig{"x": fixedTenant(4, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	s.Close() // tenant loops gone, HTTP layer still up

	resp := postSubmit(t, hs.Client(), hs.URL, "x", SubmitRequest{ID: "late", Quality: 0.52, Cost: 0.9, Latency: 0.9, K: 1})
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("post-close mutation = %d Retry-After=%q, want 503 Retry-After=1",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestQueryPoolShedsWithRetryAfter saturates a 1-worker/1-queued pool
// with slow solves: overflow queries get 429 + Retry-After while plan
// reads keep flowing untouched.
func TestQueryPoolShedsWithRetryAfter(t *testing.T) {
	cfg := fixedTenant(2, 0.3) // tight availability: some requests displaced
	cfg.Faults = &Faults{SolveDelay: 100 * time.Millisecond}
	s, hs := newTestServer(t, Config{
		Tenants:      map[string]TenantConfig{"x": cfg},
		ADPaRWorkers: 1,
		ADPaRQueue:   1,
	})
	tn, _ := s.Tenant("x")
	for i := 0; i < 4; i++ {
		if _, err := tn.Submit(context.Background(), submitReqN(fmt.Sprintf("q%d", i), 0.6)); err != nil {
			t.Fatal(err)
		}
	}
	snap := tn.Snapshot()
	if len(snap.Plan.Displaced) == 0 {
		t.Fatal("no displaced request to query")
	}
	target := snap.Plan.Displaced[0]

	const queries = 4
	codes := make(chan int, queries)
	retryAfter := make(chan string, queries)
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := hs.Client().Get(hs.URL + "/v1/tenants/x/requests/" + target + "/alternative")
			if err != nil {
				codes <- -1
				retryAfter <- ""
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
			retryAfter <- resp.Header.Get("Retry-After")
		}()
	}
	wg.Wait()
	close(codes)
	close(retryAfter)
	var ok, shed int
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if ra := <-retryAfter; ra == "" {
				t.Fatal("429 without Retry-After")
			}
			continue
		default:
			t.Fatalf("alternative = %d", code)
		}
		<-retryAfter
	}
	// 1 worker + 1 queue slot: exactly 2 can succeed, the rest shed.
	if ok == 0 || shed == 0 {
		t.Fatalf("pool outcome ok=%d shed=%d, want both > 0", ok, shed)
	}
	if got := s.pool.sheds.Load(); got != int64(shed) {
		t.Fatalf("pool sheds metric %d != observed %d", got, shed)
	}

	// Plan reads never touch the pool: issue one while holding every
	// slot and queue position, and it must come back immediately.
	s.pool.slots <- struct{}{}
	s.pool.waiting.Store(int64(s.pool.queueCap))
	start := time.Now()
	var plan PlanResponse
	if code := call(t, hs.Client(), "GET", hs.URL+"/v1/tenants/x/plan", nil, &plan); code != 200 {
		t.Fatalf("plan read = %d", code)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("plan read took %v, must not queue behind the solve pool", elapsed)
	}
	s.pool.waiting.Store(0)
	<-s.pool.slots
}
