package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"stratrec/internal/batch"
	"stratrec/internal/synth"
	"stratrec/internal/workforce"
)

// fuzzTarget lazily builds one small server shared by all fuzz iterations
// in a worker process.
var fuzzTarget struct {
	once sync.Once
	s    *Server
	err  error
}

func fuzzServer() (*Server, error) {
	fuzzTarget.once.Do(func() {
		gen := synth.DefaultConfig(synth.Uniform)
		rng := rand.New(rand.NewSource(99))
		set := gen.Strategies(rng, 8)
		fuzzTarget.s, fuzzTarget.err = New(Config{Tenants: map[string]TenantConfig{
			"fuzz": {
				Set:       set,
				Models:    gen.Models(rng, set),
				Mode:      workforce.MaxCase,
				Objective: batch.Throughput,
				InitialW:  0.7,
			},
		}})
	})
	return fuzzTarget.s, fuzzTarget.err
}

// FuzzSubmitRequest throws arbitrary bytes at the submit endpoint's JSON
// decoding and domain validation. The server must never panic, never
// return a status outside the documented set, and always produce a valid
// JSON body; successful submissions are revoked so the pool stays small
// across iterations.
func FuzzSubmitRequest(f *testing.F) {
	f.Add([]byte(`{"id":"d1","quality":0.4,"cost":0.6,"latency":0.5,"k":2}`))
	f.Add([]byte(`{"id":"","k":-3}`))
	f.Add([]byte(`{"id":"dup","quality":1e308,"cost":-1}`))
	f.Add([]byte(`{"id":"nan","quality":null,"k":0}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"id":"d2","quality":"0.4"}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	// Path-hostile IDs: dot segments must be rejected (unaddressable
	// revoke URLs); slashes and spaces must round-trip via escaping.
	f.Add([]byte(`{"id":"."}`))
	f.Add([]byte(`{"id":".."}`))
	f.Add([]byte(`{"id":"a/b c","quality":0.2,"cost":0.9,"latency":0.9}`))

	f.Fuzz(func(t *testing.T, body []byte) {
		s, err := fuzzServer()
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/tenants/fuzz/requests", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusConflict:
		default:
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("invalid JSON response %q for body %q", rec.Body.Bytes(), body)
		}
		if rec.Code != http.StatusOK {
			return
		}
		var resp SubmitResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("undecodable 200 body %q: %v", rec.Body.Bytes(), err)
		}
		if resp.ID == "" {
			t.Fatalf("200 with empty ID for body %q", body)
		}
		// Keep the pool bounded: revoke what we just admitted. The ID is
		// attacker-controlled (any non-empty string is admissible), so it
		// must be path-escaped or slashes/spaces in a fuzzed ID would 404
		// or panic request construction and report a false crasher.
		del := httptest.NewRequest(http.MethodDelete, "/v1/tenants/fuzz/requests/"+url.PathEscape(resp.ID), nil)
		delRec := httptest.NewRecorder()
		s.Handler().ServeHTTP(delRec, del)
		if delRec.Code != http.StatusOK {
			t.Fatalf("revoking just-admitted %q: status %d", resp.ID, delRec.Code)
		}
	})
}

// FuzzAvailabilityRequest fuzzes the availability endpoint the same way:
// arbitrary bytes must yield 200 (valid w), 400, or nothing else, and the
// tenant must keep serving afterwards.
func FuzzAvailabilityRequest(f *testing.F) {
	f.Add([]byte(`{"workforce":0.5}`))
	f.Add([]byte(`{"workforce":-1}`))
	f.Add([]byte(`{"workforce":null}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`"0.5"`))

	f.Fuzz(func(t *testing.T, body []byte) {
		s, err := fuzzServer()
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPut, "/v1/tenants/fuzz/availability", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("invalid JSON response for body %q", body)
		}
		// The tenant survived: a plan read still answers.
		plan := httptest.NewRequest(http.MethodGet, "/v1/tenants/fuzz/plan", nil)
		planRec := httptest.NewRecorder()
		s.Handler().ServeHTTP(planRec, plan)
		if planRec.Code != http.StatusOK {
			t.Fatalf("plan read after availability fuzz: status %d", planRec.Code)
		}
	})
}

// TestFuzzSeedsPass replays the seed corpus as a plain test so `go test`
// (without -fuzz) still exercises the decode paths.
func TestFuzzSeedsPass(t *testing.T) {
	s, err := fuzzServer()
	if err != nil {
		t.Fatal(err)
	}
	for i, body := range []string{
		`{"id":"seed-a","quality":0.4,"cost":0.6,"latency":0.5,"k":2}`,
		`{"id":""}`,
		`garbage`,
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/tenants/fuzz/requests", bytes.NewReader([]byte(body)))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("seed %d: status %d", i, rec.Code)
		}
		if rec.Code == http.StatusOK {
			del := httptest.NewRequest(http.MethodDelete, "/v1/tenants/fuzz/requests/seed-a", nil)
			delRec := httptest.NewRecorder()
			s.Handler().ServeHTTP(delRec, del)
		}
	}
}
