package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
)

// TraceHeader is the per-request correlation header. A client may attach
// its own X-Trace-Id to any request; the server generates one otherwise.
// Either way the ID is echoed on the response (header and, for errors,
// the envelope's trace_id), carried on the op through admission, the
// coalescing loop, the WAL append and the group-commit round, and
// stamped on every structured log event the op produces — so one grep
// over the log explains any ack or shed a client holds.
const TraceHeader = "X-Trace-Id"

// maxTraceIDLen caps inbound trace IDs: beyond this the client-supplied
// ID is replaced rather than truncated (a truncated ID correlates with
// nothing).
const maxTraceIDLen = 64

// newTraceID returns a fresh 16-hex-char trace ID.
func newTraceID() string {
	var b [8]byte
	// crypto/rand never fails on the platforms we run on; a zero ID on a
	// hypothetical failure still correlates (uniqueness suffers, tracing
	// does not break).
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// validTraceID accepts printable-ASCII IDs up to maxTraceIDLen — enough
// for UUIDs, hex and ULIDs, while keeping log lines and headers clean.
func validTraceID(id string) bool {
	if id == "" || len(id) > maxTraceIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

type traceKey struct{}

// withTrace stashes a trace ID in ctx.
func withTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// traceFrom extracts the trace ID carried by ctx ("" when absent).
func traceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// traceMiddleware resolves every request's trace ID — inbound header
// when present and valid, freshly generated otherwise — echoes it on the
// response immediately (so even a shed 429 carries it), and stashes it
// in the request context for handlers and the error envelope.
func traceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(TraceHeader)
		if !validTraceID(id) {
			id = newTraceID()
		}
		w.Header().Set(TraceHeader, id)
		next.ServeHTTP(w, r.WithContext(withTrace(r.Context(), id)))
	})
}

// discardLogger is the default when Config.Logger is nil: every level
// disabled, so the hot-path Enabled guards skip attribute construction
// entirely.
func discardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// Structured event names. One op produces exactly one terminal event —
// "reply" (the loop's definitive answer, success or domain error) XOR
// "shed" (rejected without surviving apply: overload, deadline, tenant
// closed/draining, WAL broken) — plus debug-level progress events
// between admission and the answer. The exactly-one-terminal-event
// contract is what lets the conformance oracle correlate every ack and
// shed to a single log line by trace ID.
const (
	evAdmit      = "admit"      // op accepted into the inbox (debug)
	evShed       = "shed"       // terminal: rejected, left no durable trace
	evApply      = "apply"      // loop applied the mutation (debug)
	evAppend     = "append"     // WAL append done, seq assigned (debug)
	evCommit     = "commit"     // group-commit round made the batch durable (debug)
	evPublish    = "publish"    // snapshot published at epoch (debug)
	evReply      = "reply"      // terminal: definitive answer sent
	evCheckpoint = "checkpoint" // checkpoint cut + WAL truncated
	evRecovery   = "recovery"   // startup recovery finished
	evDrain      = "drain"      // tenant drained and detached
	evCreate     = "create"     // tenant created at runtime
)
