package server

import (
	"strings"
	"testing"
)

// TestLoadHarnessThousandRequests is the acceptance run: a ≥1k-event
// synthetic Poisson workload (submits, revokes, availability drift, tight
// ADPaR-bound requests) replayed against a live two-tenant server, with
// throughput and latency percentiles in the report.
func TestLoadHarnessThousandRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{Tenants: map[string]TenantConfig{
		"alpha": synthTenant(10, 16, 0.7),
		"beta":  synthTenant(11, 16, 0.7),
	}})

	rep, err := RunLoad(LoadConfig{
		BaseURL:        hs.URL,
		Tenants:        []string{"alpha", "beta"},
		Workers:        4,
		Events:         1000,
		Rate:           0, // closed loop: as fast as the server allows
		RevokeFraction: 0.3,
		DriftFraction:  0.05,
		TightFraction:  0.3,
		PlanEvery:      10,
		K:              3,
		Seed:           42,
		Client:         hs.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// ≥1000 workload events, plus interleaved plan reads and alternative
	// queries on displaced submissions.
	if rep.Events < 1000 {
		t.Fatalf("replayed %d events, want >= 1000", rep.Events)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors during replay\n%s", rep.Errors, rep)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput = %v", rep.Throughput)
	}
	if rep.Overall.P50 <= 0 || rep.Overall.P99 < rep.Overall.P50 || rep.Overall.Max < rep.Overall.P99 {
		t.Errorf("percentiles inconsistent: %+v", rep.Overall)
	}
	for _, op := range []string{"submit", "revoke", "plan"} {
		if rep.PerOp[op].Count == 0 {
			t.Errorf("no %s operations in the mix\n%s", op, rep)
		}
	}
	if rep.PerOp["alternative"].Count == 0 {
		t.Errorf("tight fraction 0.3 produced no alternative queries\n%s", rep)
	}
	out := rep.String()
	for _, want := range []string{"req/s", "p50", "p99", "submit"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestLoadHarnessPacedReplay: a non-zero rate paces arrivals without
// losing events.
func TestLoadHarnessPacedReplay(t *testing.T) {
	_, hs := newTestServer(t, Config{Tenants: map[string]TenantConfig{
		"alpha": fixedTenant(8, 0.8),
	}})
	rep, err := RunLoad(LoadConfig{
		BaseURL: hs.URL,
		Tenants: []string{"alpha"},
		Workers: 2,
		Events:  60,
		Rate:    2000, // fast pacing, but nonzero offsets
		Seed:    7,
		Client:  hs.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events < 60 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Duration <= 0 {
		t.Errorf("duration = %v", rep.Duration)
	}
}

func TestLoadHarnessValidation(t *testing.T) {
	if _, err := RunLoad(LoadConfig{}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	if _, err := RunLoad(LoadConfig{BaseURL: "http://localhost:1"}); err == nil {
		t.Error("missing tenants accepted")
	}
}

// TestLoadHarnessSurvivesServerErrors: pointing a worker at a tenant the
// server does not host must produce error counts, not a hang.
func TestLoadHarnessSurvivesServerErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{Tenants: map[string]TenantConfig{
		"alpha": fixedTenant(4, 0.8),
	}})
	rep, err := RunLoad(LoadConfig{
		BaseURL: hs.URL,
		Tenants: []string{"ghost"},
		Workers: 1,
		Events:  20,
		Seed:    1,
		Client:  hs.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 {
		t.Errorf("unknown tenant produced no errors: %+v", rep)
	}
}
