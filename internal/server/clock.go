package server

import "time"

// defaultClock returns the wall clock — the single sanctioned fallback
// when a caller injects no clock. Every injectable-clock default in the
// package routes through here so the clockdiscipline escape hatch lives,
// and is suppressed, in exactly one place.
func defaultClock() func() time.Time {
	return time.Now //lint:allow clockdiscipline -- the one sanctioned wall-clock fallback; every uninjected-clock default routes here
}
