// Package server hosts StratRec as a multi-tenant HTTP/JSON service: the
// online regime the paper frames — deployment requests arriving
// continuously, revocations, worker availability drifting — served at
// interactive latency from the warm ADPaR index of PR 1.
//
// Each tenant is a named strategy catalog with its own stream.Manager.
// Because the manager is not goroutine-safe, every tenant runs a
// single-writer event loop fed by a channel: mutations serialize per
// tenant with no global lock, tenants never contend with each other, and
// read traffic (plan queries, ADPaR alternatives) is served lock-free from
// an atomically swapped immutable snapshot plus the tenant's shared warm
// adpar.Index. Shutdown is graceful: the HTTP layer drains in-flight
// requests before the event loops stop.
//
// The load harness that replays synthetic Poisson workloads against a
// live server lives in internal/loadgen, on top of the typed API client
// in internal/client.
package server

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config configures a Server: one TenantConfig per hosted tenant name.
type Config struct {
	Tenants map[string]TenantConfig
	// Now is the server's clock, consulted for the start time and uptime
	// metrics. Nil defaults to time.Now. Deterministic harnesses
	// (internal/conformance) and tests inject a fixed or stepped clock so
	// time-derived observables are reproducible.
	Now func() time.Time

	// DataDir enables durability when non-empty: each tenant keeps a
	// write-ahead log and snapshot checkpoints under DataDir/<tenant>
	// (internal/wal), recovered through the tenant's own event loop on
	// New. Tenant names must then be usable as directory names.
	DataDir string
	// WALSyncEvery batches WAL fsyncs: the segment is fsynced after every
	// n-th appended record. At the default (≤1) every acknowledged
	// mutation is durable before its HTTP response is written; larger
	// values trade the last <n acknowledged mutations on a hard crash for
	// append throughput.
	WALSyncEvery int
	// CheckpointEvery auto-checkpoints a tenant (snapshot + WAL
	// truncation) after this many records appended since the last
	// checkpoint. 0 means checkpoints happen only via POST
	// /admin/checkpoint.
	CheckpointEvery int
	// WALGroupCommitWindow, when positive, turns on cross-tenant group
	// commit: tenant loops stop fsyncing their own logs (WALSyncEvery is
	// ignored) and instead hand durability to a server-wide commit
	// scheduler, which collects concurrently-finishing batches for up to
	// the window and shares one fsync round across them. Every mutation
	// is still fsynced before it is acknowledged — the window bounds
	// added ack latency, not durability. 0 disables the scheduler.
	WALGroupCommitWindow time.Duration

	// ADPaRWorkers caps concurrently running ADPaR alternative solves
	// across all tenants (0 = GOMAXPROCS). The pool is server-wide
	// because the solves contend for the same CPUs regardless of tenant.
	ADPaRWorkers int
	// ADPaRQueue bounds how many alternative queries may wait for a pool
	// worker before new ones are shed with 429 (0 = 2×workers).
	ADPaRQueue int
	// MutationDeadline is the default deadline applied to every mutation
	// that arrives without an explicit X-Request-Deadline-Ms header. 0
	// means no default: such mutations only shed on a full inbox, never
	// on projected wait.
	MutationDeadline time.Duration

	// Logger receives the server's structured events (admit, shed, apply,
	// append, commit, publish, reply, checkpoint, recovery, admin), each
	// stamped with the op's trace ID. Nil disables logging (a discard
	// handler; hot paths then skip attribute construction entirely).
	// Terminal per-op events (reply, shed) are Info/Warn; per-stage
	// progress events are Debug.
	Logger *slog.Logger
}

// ErrUnknownTenant reports a request for a tenant the server does not
// host.
var ErrUnknownTenant = errors.New("server: unknown tenant")

// ErrNoDurability reports a checkpoint request against a server running
// without a data directory.
var ErrNoDurability = errors.New("server: durability disabled (no data dir)")

// Server is a multi-tenant StratRec recommendation service. Create one
// with New, expose Handler over any net/http server, and Close it to stop
// the tenant event loops (after the HTTP layer has drained).
type Server struct {
	// mu guards tenants and names: the registry is mutable at runtime
	// via CreateTenant / DrainTenant. Request paths take the read lock
	// once per request (Tenant lookup); admin operations take the write
	// lock.
	mu      sync.RWMutex
	tenants map[string]*Tenant
	names   []string // sorted, for deterministic listings

	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the trace middleware
	vars    *expvar.Map
	// tenantVars is the "tenants" submap of the expvar tree; runtime
	// tenant admin adds and removes entries (expvar.Map is
	// concurrency-safe).
	tenantVars *expvar.Map
	now        func() time.Time
	start      time.Time
	dataDir    string
	// dur carries the WAL settings runtime-created tenants inherit.
	dur  durability
	pool *queryPool
	// gc is the cross-tenant commit scheduler (nil unless
	// Config.WALGroupCommitWindow is set and durability is on).
	gc *groupCommitter
	// mutDeadline is Config.MutationDeadline (0 = none).
	mutDeadline time.Duration
	// log is the structured logger (never nil; discard by default).
	log *slog.Logger

	closeOnce sync.Once
}

// New builds the server and starts one event loop per tenant.
func New(cfg Config) (*Server, error) {
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("server: no tenants configured")
	}
	now := cfg.Now
	if now == nil {
		now = defaultClock()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = discardLogger()
	}
	s := &Server{
		tenants:     make(map[string]*Tenant, len(cfg.Tenants)),
		now:         now,
		start:       now(),
		dataDir:     cfg.DataDir,
		pool:        newQueryPool(cfg.ADPaRWorkers, cfg.ADPaRQueue, now),
		mutDeadline: cfg.MutationDeadline,
		log:         logger,
	}
	if cfg.DataDir != "" && cfg.WALGroupCommitWindow > 0 {
		s.gc = newGroupCommitter(cfg.WALGroupCommitWindow)
	}
	s.dur = durability{
		dataDir:         cfg.DataDir,
		syncEvery:       cfg.WALSyncEvery,
		checkpointEvery: cfg.CheckpointEvery,
		gc:              s.gc,
	}
	names := make([]string, 0, len(cfg.Tenants))
	for name := range cfg.Tenants {
		if cfg.DataDir != "" {
			if err := validateTenantDirName(name); err != nil {
				return nil, err
			}
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t, err := newTenant(name, cfg.Tenants[name], s.dur, s.pool, s.log, s.now)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.tenants[name] = t
		s.names = append(s.names, name)
	}
	s.vars, s.tenantVars = newMetricsRoot(s)
	s.mux = s.routes()
	s.handler = traceMiddleware(s.mux)
	return s, nil
}

// validateTenantDirName rejects tenant names that cannot double as a
// directory name under DataDir.
func validateTenantDirName(name string) error {
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, `/\`) {
		return fmt.Errorf("server: tenant name %q is not usable as a data directory name", name)
	}
	return nil
}

// Handler returns the server's HTTP handler: the routed mux wrapped in
// the trace middleware, so every response — sheds included — carries an
// X-Trace-Id. See api.go for the routes.
func (s *Server) Handler() http.Handler { return s.handler }

// DataDir returns the durability root ("" when durability is disabled).
func (s *Server) DataDir() string { return s.dataDir }

// Tenant returns a hosted tenant by name.
func (s *Server) Tenant(name string) (*Tenant, error) {
	s.mu.RLock()
	t, ok := s.tenants[name]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrUnknownTenant
	}
	return t, nil
}

// TenantNames lists hosted tenants in sorted order.
func (s *Server) TenantNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// ErrDuplicateTenant reports a CreateTenant against a name already
// hosted.
var ErrDuplicateTenant = errors.New("server: tenant already exists")

// CreateTenant adds a tenant at runtime: its event loop starts, its WAL
// opens under the server's data directory (recovering any state a
// previously drained or crashed tenant of the same name left behind),
// and its routes and metrics go live immediately — {tenant} path values
// resolve against the registry per request, so no mux change is needed.
func (s *Server) CreateTenant(name string, cfg TenantConfig) error {
	if s.dataDir != "" {
		if err := validateTenantDirName(name); err != nil {
			return err
		}
	}
	s.mu.RLock()
	_, exists := s.tenants[name]
	s.mu.RUnlock()
	if exists {
		return fmt.Errorf("%w: %s", ErrDuplicateTenant, name)
	}
	// Build outside the lock — index compilation and WAL recovery can
	// take a while, and requests to existing tenants must not stall.
	t, err := newTenant(name, cfg, s.dur, s.pool, s.log, s.now)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if _, exists := s.tenants[name]; exists {
		s.mu.Unlock()
		t.close()
		return fmt.Errorf("%w: %s", ErrDuplicateTenant, name)
	}
	s.tenants[name] = t
	s.names = append(s.names, name)
	sort.Strings(s.names)
	s.mu.Unlock()
	s.tenantVars.Set(name, t.met.vars) //lint:allow metricname -- tenant names are validated directory-safe labels, rendered as label values not metric names
	s.log.LogAttrs(context.Background(), slog.LevelInfo, evCreate,
		slog.String("tenant", name),
		slog.Int("strategies", t.ix.Len()))
	return nil
}

// DrainTenant removes a tenant at runtime: new writes are rejected with
// 503 (ErrTenantClosed — same promise as shutdown: never applied, never
// logged), a final checkpoint freezes the durable state, the event loop
// stops, and the tenant detaches from the registry (subsequent requests
// 404). Reads keep serving the last snapshot until detach. The returned
// CheckpointInfo describes the final checkpoint; with durability off it
// is zero and the drain still completes.
func (s *Server) DrainTenant(name string) (CheckpointInfo, error) {
	s.mu.RLock()
	t, ok := s.tenants[name]
	s.mu.RUnlock()
	if !ok {
		return CheckpointInfo{}, ErrUnknownTenant
	}
	t.draining.Store(true)
	// Final checkpoint through the loop (admin ops bypass the draining
	// gate): the WAL truncates to one snapshot, so the eventual restart
	// — or a CreateTenant of the same name — recovers instantly.
	info, err := t.Checkpoint()
	if err != nil && (errors.Is(err, ErrNoDurability) || errors.Is(err, ErrTenantClosed)) {
		// No WAL to checkpoint, or the loop is already stopping — the
		// drain itself still proceeds.
		err = nil
	}
	t.close()
	s.mu.Lock()
	delete(s.tenants, name)
	for i, n := range s.names {
		if n == name {
			s.names = append(s.names[:i], s.names[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	s.tenantVars.Delete(name)
	s.log.LogAttrs(context.Background(), slog.LevelInfo, evDrain,
		slog.String("tenant", name),
		slog.Uint64("checkpoint_seq", info.LastSeq),
		slog.Int("checkpoint_requests", info.Requests))
	return info, err
}

// Close stops every tenant event loop and waits for them to exit. Call it
// after the HTTP server has drained (http.Server.Shutdown or
// httptest.Server.Close), so no handler is left mid-flight; requests
// racing the shutdown fail with ErrTenantClosed (503). Close is
// idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.RLock()
		tenants := make([]*Tenant, 0, len(s.tenants))
		for _, t := range s.tenants {
			tenants = append(tenants, t)
		}
		s.mu.RUnlock()
		var wg sync.WaitGroup
		for _, t := range tenants {
			wg.Add(1)
			go func(t *Tenant) {
				defer wg.Done()
				t.close()
			}(t)
		}
		wg.Wait()
		// Stop the commit scheduler only after every tenant loop has
		// exited: loops may be blocked in a commit round right up to the
		// end, and a stopped scheduler would force them onto the
		// direct-sync fallback one by one.
		if s.gc != nil {
			s.gc.stop()
		}
	})
}

// ListenAndServe runs the server on addr until ctx is cancelled, then
// shuts down gracefully: in-flight HTTP requests get drainTimeout to
// finish before the tenant loops stop.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drainTimeout time.Duration) error {
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := hs.Shutdown(shutdownCtx)
	s.Close()
	return err
}
