// Package server hosts StratRec as a multi-tenant HTTP/JSON service: the
// online regime the paper frames — deployment requests arriving
// continuously, revocations, worker availability drifting — served at
// interactive latency from the warm ADPaR index of PR 1.
//
// Each tenant is a named strategy catalog with its own stream.Manager.
// Because the manager is not goroutine-safe, every tenant runs a
// single-writer event loop fed by a channel: mutations serialize per
// tenant with no global lock, tenants never contend with each other, and
// read traffic (plan queries, ADPaR alternatives) is served lock-free from
// an atomically swapped immutable snapshot plus the tenant's shared warm
// adpar.Index. Shutdown is graceful: the HTTP layer drains in-flight
// requests before the event loops stop.
//
// The load harness that replays synthetic Poisson workloads against a
// live server lives in internal/loadgen, on top of the typed API client
// in internal/client.
package server

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config configures a Server: one TenantConfig per hosted tenant name.
type Config struct {
	Tenants map[string]TenantConfig
	// Now is the server's clock, consulted for the start time and uptime
	// metrics. Nil defaults to time.Now. Deterministic harnesses
	// (internal/conformance) and tests inject a fixed or stepped clock so
	// time-derived observables are reproducible.
	Now func() time.Time

	// DataDir enables durability when non-empty: each tenant keeps a
	// write-ahead log and snapshot checkpoints under DataDir/<tenant>
	// (internal/wal), recovered through the tenant's own event loop on
	// New. Tenant names must then be usable as directory names.
	DataDir string
	// WALSyncEvery batches WAL fsyncs: the segment is fsynced after every
	// n-th appended record. At the default (≤1) every acknowledged
	// mutation is durable before its HTTP response is written; larger
	// values trade the last <n acknowledged mutations on a hard crash for
	// append throughput.
	WALSyncEvery int
	// CheckpointEvery auto-checkpoints a tenant (snapshot + WAL
	// truncation) after this many records appended since the last
	// checkpoint. 0 means checkpoints happen only via POST
	// /admin/checkpoint.
	CheckpointEvery int
	// WALGroupCommitWindow, when positive, turns on cross-tenant group
	// commit: tenant loops stop fsyncing their own logs (WALSyncEvery is
	// ignored) and instead hand durability to a server-wide commit
	// scheduler, which collects concurrently-finishing batches for up to
	// the window and shares one fsync round across them. Every mutation
	// is still fsynced before it is acknowledged — the window bounds
	// added ack latency, not durability. 0 disables the scheduler.
	WALGroupCommitWindow time.Duration

	// ADPaRWorkers caps concurrently running ADPaR alternative solves
	// across all tenants (0 = GOMAXPROCS). The pool is server-wide
	// because the solves contend for the same CPUs regardless of tenant.
	ADPaRWorkers int
	// ADPaRQueue bounds how many alternative queries may wait for a pool
	// worker before new ones are shed with 429 (0 = 2×workers).
	ADPaRQueue int
	// MutationDeadline is the default deadline applied to every mutation
	// that arrives without an explicit X-Request-Deadline-Ms header. 0
	// means no default: such mutations only shed on a full inbox, never
	// on projected wait.
	MutationDeadline time.Duration
}

// ErrUnknownTenant reports a request for a tenant the server does not
// host.
var ErrUnknownTenant = errors.New("server: unknown tenant")

// ErrNoDurability reports a checkpoint request against a server running
// without a data directory.
var ErrNoDurability = errors.New("server: durability disabled (no data dir)")

// Server is a multi-tenant StratRec recommendation service. Create one
// with New, expose Handler over any net/http server, and Close it to stop
// the tenant event loops (after the HTTP layer has drained).
type Server struct {
	tenants map[string]*Tenant
	names   []string // sorted, for deterministic listings
	mux     *http.ServeMux
	vars    *expvar.Map
	now     func() time.Time
	start   time.Time
	dataDir string
	pool    *queryPool
	// gc is the cross-tenant commit scheduler (nil unless
	// Config.WALGroupCommitWindow is set and durability is on).
	gc *groupCommitter
	// mutDeadline is Config.MutationDeadline (0 = none).
	mutDeadline time.Duration

	closeOnce sync.Once
}

// New builds the server and starts one event loop per tenant.
func New(cfg Config) (*Server, error) {
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("server: no tenants configured")
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	s := &Server{
		tenants:     make(map[string]*Tenant, len(cfg.Tenants)),
		now:         now,
		start:       now(),
		dataDir:     cfg.DataDir,
		pool:        newQueryPool(cfg.ADPaRWorkers, cfg.ADPaRQueue),
		mutDeadline: cfg.MutationDeadline,
	}
	if cfg.DataDir != "" && cfg.WALGroupCommitWindow > 0 {
		s.gc = newGroupCommitter(cfg.WALGroupCommitWindow)
	}
	dur := durability{
		dataDir:         cfg.DataDir,
		syncEvery:       cfg.WALSyncEvery,
		checkpointEvery: cfg.CheckpointEvery,
		gc:              s.gc,
	}
	names := make([]string, 0, len(cfg.Tenants))
	for name := range cfg.Tenants {
		if cfg.DataDir != "" {
			if err := validateTenantDirName(name); err != nil {
				return nil, err
			}
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t, err := newTenant(name, cfg.Tenants[name], dur, s.pool)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.tenants[name] = t
		s.names = append(s.names, name)
	}
	s.vars = newMetricsRoot(s)
	s.mux = s.routes()
	return s, nil
}

// validateTenantDirName rejects tenant names that cannot double as a
// directory name under DataDir.
func validateTenantDirName(name string) error {
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, `/\`) {
		return fmt.Errorf("server: tenant name %q is not usable as a data directory name", name)
	}
	return nil
}

// Handler returns the server's HTTP handler. See api.go for the routes.
func (s *Server) Handler() http.Handler { return s.mux }

// DataDir returns the durability root ("" when durability is disabled).
func (s *Server) DataDir() string { return s.dataDir }

// Tenant returns a hosted tenant by name.
func (s *Server) Tenant(name string) (*Tenant, error) {
	t, ok := s.tenants[name]
	if !ok {
		return nil, ErrUnknownTenant
	}
	return t, nil
}

// TenantNames lists hosted tenants in sorted order.
func (s *Server) TenantNames() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Close stops every tenant event loop and waits for them to exit. Call it
// after the HTTP server has drained (http.Server.Shutdown or
// httptest.Server.Close), so no handler is left mid-flight; requests
// racing the shutdown fail with ErrTenantClosed (503). Close is
// idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		var wg sync.WaitGroup
		for _, t := range s.tenants {
			wg.Add(1)
			go func(t *Tenant) {
				defer wg.Done()
				t.close()
			}(t)
		}
		wg.Wait()
		// Stop the commit scheduler only after every tenant loop has
		// exited: loops may be blocked in a commit round right up to the
		// end, and a stopped scheduler would force them onto the
		// direct-sync fallback one by one.
		if s.gc != nil {
			s.gc.stop()
		}
	})
}

// ListenAndServe runs the server on addr until ctx is cancelled, then
// shuts down gracefully: in-flight HTTP requests get drainTimeout to
// finish before the tenant loops stop.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drainTimeout time.Duration) error {
	hs := &http.Server{Addr: addr, Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := hs.Shutdown(shutdownCtx)
	s.Close()
	return err
}
