package server

import "time"

// Faults injects controlled latency and failures into one tenant's write
// path. It exists for the chaos conformance profiles (thundering-herd,
// revoke-storm-shed, avail-flap) and for deterministic overload tests:
// slow-apply builds real inbox pressure, and WAL fsync schedules drive
// the read-only circuit breaker on demand. Every hook may be nil, and
// production configs leave the whole struct nil — the serving path then
// pays a single nil check per op.
//
// Both hooks run on the tenant's single-writer loop goroutine, so
// invocations are strictly sequential per tenant and may keep state
// without locking (schedules, counters). Blocking inside a hook stalls
// the loop — for ApplyDelay that is exactly the point.
type Faults struct {
	// ApplyDelay, when non-nil, is consulted before each live mutation is
	// applied; the loop sleeps for the returned duration first. Recovery
	// replay is exempt (restarts must stay fast). A hook that blocks
	// internally (e.g. on a test gate channel) freezes the loop, which is
	// the deterministic way to fill the inbox.
	ApplyDelay func(kind, id string) time.Duration
	// WALSync, when non-nil, runs at the start of every WAL fsync batch.
	// Sleeping inside models a slow disk; returning an error fails the
	// sync, which fails the triggering append and trips the tenant's
	// read-only circuit breaker (ErrWALBroken). The failed record is
	// discarded, never flushed (see wal.Options.TestSyncHook), so a 503
	// keeps its meaning: not acknowledged, not recovered.
	WALSync func() error
	// WALAppend, when non-nil, runs at the start of every WAL record
	// append, before the record's bytes reach the log's buffered writer.
	// Returning an error fails that append like a disk write failure:
	// the log rolls back to its durable prefix (destroying any earlier
	// same-batch records the prefix does not cover — the group-commit
	// case, where a whole coalesced batch is buffered between fsyncs),
	// the tenant trips its read-only circuit breaker, and every op whose
	// record was rolled back answers ErrWALBroken. WALSync never fires
	// inside a manual-sync append, so append-path failures need this
	// separate hook (see wal.Options.TestWriteHook).
	WALAppend func() error
	// SolveDelay, unlike the loop hooks above, runs on HANDLER
	// goroutines: it stretches every ADPaR alternative solve while its
	// query-pool slot is held, so chaos profiles can saturate the pool
	// deterministically (the warm-index solve is otherwise microseconds).
	// It may run concurrently with itself; keep it stateless.
	SolveDelay time.Duration
}

// applyDelay runs the slow-apply hook for one live op, if configured.
func (t *Tenant) applyDelay(o op) {
	if t.faults == nil || t.faults.ApplyDelay == nil || o.replay {
		return
	}
	if d := t.faults.ApplyDelay(o.kind.String(), appliedID(o)); d > 0 {
		time.Sleep(d)
	}
}
