package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"stratrec/internal/adpar"
	"stratrec/internal/batch"
	"stratrec/internal/linmodel"
	"stratrec/internal/strategy"
	"stratrec/internal/stream"
	"stratrec/internal/synth"
	"stratrec/internal/workforce"
)

// fixedTenant builds a deterministic catalog: every strategy satisfies any
// reasonable request and the workforce requirement of a request with
// quality threshold q is (q - 0.2) / 0.8, making plan arithmetic exact.
func fixedTenant(n int, W float64) TenantConfig {
	set := make(strategy.Set, n)
	models := make(workforce.PerStrategyModels, n)
	for i := range set {
		set[i] = strategy.Strategy{ID: i, Params: strategy.Params{Quality: 1, Cost: 0.1, Latency: 0.1}}
		models[i] = linmodel.ParamModels{
			Quality: linmodel.Model{Alpha: 0.8, Beta: 0.2},
			Cost:    linmodel.Model{Alpha: 0, Beta: 0.1},
			Latency: linmodel.Model{Alpha: 0, Beta: 0.1},
		}
	}
	return TenantConfig{
		Set: set, Models: models,
		Mode: workforce.MaxCase, Objective: batch.Throughput,
		InitialW: W,
	}
}

// synthTenant builds a tenant from the Section 5.2.2 generator.
func synthTenant(seed int64, n int, W float64) TenantConfig {
	rng := rand.New(rand.NewSource(seed))
	gen := synth.DefaultConfig(synth.Uniform)
	set := gen.Strategies(rng, n)
	return TenantConfig{
		Set: set, Models: gen.Models(rng, set),
		Mode: workforce.MaxCase, Objective: batch.Throughput,
		InitialW: W,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close() // drains in-flight requests first
		s.Close()
	})
	return s, hs
}

// call performs a JSON round-trip and decodes the response into out.
func call(t *testing.T, client *http.Client, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func TestServeTwoTenantsEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, Config{Tenants: map[string]TenantConfig{
		"alpha": fixedTenant(5, 0.5),
		"beta":  fixedTenant(3, 1.0),
	}})
	c := hs.Client()

	// healthz and tenant listing.
	var health HealthResponse
	if code := call(t, c, "GET", hs.URL+"/healthz", nil, &health); code != 200 || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, health)
	}
	if len(health.Tenants) != 2 || health.Tenants["alpha"].Status != HealthOK {
		t.Fatalf("healthz tenants = %+v", health.Tenants)
	}
	var infos []TenantInfo
	if code := call(t, c, "GET", hs.URL+"/v1/tenants", nil, &infos); code != 200 {
		t.Fatalf("tenants = %d", code)
	}
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("tenant listing = %+v", infos)
	}
	if infos[0].Strategies != 5 || infos[1].Strategies != 3 {
		t.Errorf("strategy counts = %+v", infos)
	}

	alphaURL := hs.URL + "/v1/tenants/alpha"

	// Submit two affordable requests and one that cannot fit at W=0.5.
	var sub SubmitResponse
	for _, id := range []string{"a", "b"} {
		code := call(t, c, "POST", alphaURL+"/requests",
			SubmitRequest{ID: id, Quality: 0.40, Cost: 0.5, Latency: 0.5, K: 1}, &sub) // req 0.25
		if code != 200 || !sub.Served {
			t.Fatalf("submit %s = %d %+v", id, code, sub)
		}
	}
	code := call(t, c, "POST", alphaURL+"/requests",
		SubmitRequest{ID: "d", Quality: 0.60, Cost: 0.5, Latency: 0.5, K: 2}, &sub) // req 0.5: displaced
	if code != 200 || sub.Served {
		t.Fatalf("oversubscribed submit = %d %+v", code, sub)
	}

	// Plan reflects the split, with per-request detail.
	var plan PlanResponse
	if code := call(t, c, "GET", alphaURL+"/plan", nil, &plan); code != 200 {
		t.Fatalf("plan = %d", code)
	}
	if len(plan.Serving) != 2 || len(plan.Displaced) != 1 || plan.Displaced[0] != "d" {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Tenant != "alpha" || plan.Availability != 0.5 || len(plan.Requests) != 3 {
		t.Errorf("plan header = %+v", plan)
	}
	for _, pr := range plan.Requests {
		if pr.Serving && (pr.Workforce == nil || len(pr.Strategies) == 0) {
			t.Errorf("served request missing detail: %+v", pr)
		}
	}

	// The displaced request gets an ADPaR alternative identical to a
	// from-scratch Exact solve on the same catalog.
	var alt AlternativeResponse
	if code := call(t, c, "GET", alphaURL+"/requests/d/alternative", nil, &alt); code != 200 {
		t.Fatalf("alternative = %d", code)
	}
	want, err := adpar.Exact(fixedTenant(5, 0.5).Set, strategy.Request{
		ID: "d", Params: strategy.Params{Quality: 0.60, Cost: 0.5, Latency: 0.5}, K: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if alt.Distance != want.Distance || alt.Quality != want.Alternative.Quality ||
		alt.Cost != want.Alternative.Cost || alt.Latency != want.Alternative.Latency {
		t.Errorf("alternative = %+v, want %+v (distance %v)", alt, want.Alternative, want.Distance)
	}
	if alt.Covered < 2 || len(alt.Strategies) != 2 {
		t.Errorf("alternative coverage = %+v", alt)
	}

	// Tenants are isolated: beta has its own pool and plan.
	betaURL := hs.URL + "/v1/tenants/beta"
	if code := call(t, c, "POST", betaURL+"/requests",
		SubmitRequest{ID: "a", Quality: 0.9, Cost: 0.5, Latency: 0.5, K: 1}, &sub); code != 200 || !sub.Served {
		t.Fatalf("beta submit = %d %+v (same ID as alpha must be fine)", code, sub)
	}
	if code := call(t, c, "GET", betaURL+"/plan", nil, &plan); code != 200 || len(plan.Serving) != 1 || len(plan.Displaced) != 0 {
		t.Fatalf("beta plan = %d %+v", code, plan)
	}

	// Availability drift: collapsing W displaces alpha's requests;
	// revoking frees capacity.
	var ep EpochResponse
	if code := call(t, c, "PUT", alphaURL+"/availability", AvailabilityRequest{Workforce: 0.25}, &ep); code != 200 {
		t.Fatalf("availability = %d", code)
	}
	if code := call(t, c, "GET", alphaURL+"/plan", nil, &plan); code != 200 || len(plan.Serving) != 1 {
		t.Fatalf("plan after drought = %d %+v", code, plan)
	}
	if code := call(t, c, "DELETE", alphaURL+"/requests/a", nil, &ep); code != 200 {
		t.Fatalf("revoke = %d", code)
	}

	// Error mapping.
	var apiErr ErrorResponse
	if code := call(t, c, "GET", hs.URL+"/v1/tenants/nope/plan", nil, &apiErr); code != 404 {
		t.Errorf("unknown tenant = %d %+v", code, apiErr)
	}
	if code := call(t, c, "DELETE", alphaURL+"/requests/ghost", nil, &apiErr); code != 404 {
		t.Errorf("unknown revoke = %d", code)
	}
	if code := call(t, c, "POST", alphaURL+"/requests",
		SubmitRequest{ID: "b", Quality: 0.4, Cost: 0.5, Latency: 0.5, K: 1}, &apiErr); code != 409 {
		t.Errorf("duplicate submit = %d %+v", code, apiErr)
	}
	if code := call(t, c, "POST", alphaURL+"/requests",
		SubmitRequest{Quality: 0.4, Cost: 0.5, Latency: 0.5, K: 1}, &apiErr); code != 400 {
		t.Errorf("empty ID = %d", code)
	}
	if code := call(t, c, "POST", alphaURL+"/requests",
		SubmitRequest{ID: "x", Quality: 2, Cost: 0.5, Latency: 0.5, K: 1}, &apiErr); code != 400 {
		t.Errorf("invalid params = %d", code)
	}
	if code := call(t, c, "PUT", alphaURL+"/availability", AvailabilityRequest{Workforce: 1.5}, &apiErr); code != 400 {
		t.Errorf("bad availability = %d", code)
	}
	if code := call(t, c, "GET", alphaURL+"/requests/b/alternative", nil, &apiErr); code != 409 {
		t.Errorf("alternative for served = %d %+v", code, apiErr)
	}

	// Metrics render as JSON and count per tenant.
	resp, err := c.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		TenantCount int `json:"tenant_count"`
		Tenants     map[string]struct {
			Submits int `json:"submits"`
			Epoch   int `json:"epoch"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, data)
	}
	if metrics.TenantCount != 2 || metrics.Tenants["alpha"].Submits != 3 || metrics.Tenants["beta"].Submits != 1 {
		t.Errorf("metrics = %s", data)
	}
}

// TestServeConcurrentTenantsUnderRace drives submit/plan/alternative
// across two tenants from many goroutines; run with -race this is the
// acceptance check that per-tenant serialization plus lock-free snapshot
// reads are sound.
func TestServeConcurrentTenantsUnderRace(t *testing.T) {
	s, hs := newTestServer(t, Config{Tenants: map[string]TenantConfig{
		"alpha": synthTenant(1, 24, 0.7),
		"beta":  synthTenant(2, 16, 0.6),
	}})
	c := hs.Client()

	const workers = 8
	const opsPerWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := []string{"alpha", "beta"}[w%2]
			base := hs.URL + "/v1/tenants/" + tenant
			rng := rand.New(rand.NewSource(int64(w)))
			gen := synth.DefaultConfig(synth.Uniform)
			for i := 0; i < opsPerWorker; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				var req strategy.Request
				if rng.Float64() < 0.4 {
					req = gen.ADPaRRequest(rng, 2) // tight: exercises alternatives
				} else {
					req = gen.Requests(rng, 1, 2)[0]
				}
				var sub SubmitResponse
				code := call(t, c, "POST", base+"/requests", SubmitRequest{
					ID: id, Quality: req.Quality, Cost: req.Cost, Latency: req.Latency, K: req.K,
				}, &sub)
				if code != 200 {
					t.Errorf("submit %s = %d", id, code)
					return
				}
				if !sub.Served {
					if code := call(t, c, "GET", base+"/requests/"+id+"/alternative", nil, nil); code != 200 && code != 409 {
						t.Errorf("alternative %s = %d", id, code)
						return
					}
				}
				var plan PlanResponse
				if code := call(t, c, "GET", base+"/plan", nil, &plan); code != 200 {
					t.Errorf("plan = %d", code)
					return
				}
				if rng.Float64() < 0.3 {
					if code := call(t, c, "DELETE", base+"/requests/"+id, nil, nil); code != 200 {
						t.Errorf("revoke %s = %d", id, code)
						return
					}
				}
				if rng.Float64() < 0.05 {
					if code := call(t, c, "PUT", base+"/availability",
						AvailabilityRequest{Workforce: 0.3 + 0.7*rng.Float64()}, nil); code != 200 {
						t.Errorf("drift = %d", code)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Every tenant's final snapshot is internally consistent.
	for _, name := range s.TenantNames() {
		tn, err := s.Tenant(name)
		if err != nil {
			t.Fatal(err)
		}
		snap := tn.Snapshot()
		if got := len(snap.Plan.Serving) + len(snap.Plan.Displaced); got != len(snap.Requests) {
			t.Errorf("tenant %s: %d serving + %d displaced != %d open",
				name, len(snap.Plan.Serving), len(snap.Plan.Displaced), len(snap.Requests))
		}
	}
}

// TestServeShutdownDrains: Close stops the event loops; subsequent
// operations fail with 503 and Close is idempotent.
func TestServeShutdownDrains(t *testing.T) {
	s, err := New(Config{Tenants: map[string]TenantConfig{"alpha": fixedTenant(3, 0.8)}})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := hs.Client()

	var sub SubmitResponse
	if code := call(t, c, "POST", hs.URL+"/v1/tenants/alpha/requests",
		SubmitRequest{ID: "a", Quality: 0.5, Cost: 0.5, Latency: 0.5, K: 1}, &sub); code != 200 {
		t.Fatalf("submit = %d", code)
	}
	s.Close()
	s.Close() // idempotent

	var apiErr ErrorResponse
	if code := call(t, c, "POST", hs.URL+"/v1/tenants/alpha/requests",
		SubmitRequest{ID: "b", Quality: 0.5, Cost: 0.5, Latency: 0.5, K: 1}, &apiErr); code != 503 {
		t.Errorf("submit after close = %d %+v", code, apiErr)
	}
	if apiErr.Error.Code != CodeTenantClosed || !strings.Contains(apiErr.Error.Message, "closed") {
		t.Errorf("close error body = %+v", apiErr)
	}
	if apiErr.Error.RetryAfterMs != 1000 {
		t.Errorf("close error retry hint = %+v", apiErr.Error)
	}
	// Reads stay available from the last snapshot even after close.
	var plan PlanResponse
	if code := call(t, c, "GET", hs.URL+"/v1/tenants/alpha/plan", nil, &plan); code != 200 || len(plan.Serving) != 1 {
		t.Errorf("plan after close = %d %+v", code, plan)
	}

	// Direct tenant API surfaces ErrTenantClosed.
	tn, err := s.Tenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Submit(context.Background(), strategy.Request{ID: "c", Params: strategy.Params{Quality: 0.5, Cost: 0.5, Latency: 0.5}, K: 1}); !errors.Is(err, ErrTenantClosed) {
		t.Errorf("submit after close = %v", err)
	}
}

func TestServeConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no tenants accepted")
	}
	if _, err := New(Config{Tenants: map[string]TenantConfig{
		"bad": {Set: strategy.Set{}, Models: workforce.PerStrategyModels{}},
	}}); err == nil {
		t.Error("empty catalog accepted")
	}
	if _, err := New(Config{Tenants: map[string]TenantConfig{
		"bad": func() TenantConfig { c := fixedTenant(3, 0.5); c.InitialW = 2; return c }(),
	}}); err == nil {
		t.Error("bad initial availability accepted")
	}
	if _, err := (&Server{tenants: map[string]*Tenant{}}).Tenant("x"); !errors.Is(err, ErrUnknownTenant) {
		t.Error("unknown tenant lookup did not fail")
	}
}

// TestServeReadYourWrites: a submit reply is sent only after the snapshot
// is published, so an immediate plan read sees the write.
func TestServeReadYourWrites(t *testing.T) {
	_, hs := newTestServer(t, Config{Tenants: map[string]TenantConfig{"alpha": fixedTenant(4, 0.9)}})
	c := hs.Client()
	base := hs.URL + "/v1/tenants/alpha"
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("r%d", i)
		var sub SubmitResponse
		if code := call(t, c, "POST", base+"/requests",
			SubmitRequest{ID: id, Quality: 0.3, Cost: 0.5, Latency: 0.5, K: 1}, &sub); code != 200 {
			t.Fatalf("submit = %d", code)
		}
		var plan PlanResponse
		if code := call(t, c, "GET", base+"/plan", nil, &plan); code != 200 {
			t.Fatalf("plan = %d", code)
		}
		if len(plan.Requests) != i+1 {
			t.Fatalf("after %d submits plan shows %d requests", i+1, len(plan.Requests))
		}
	}
}

// TestTenantSharedIndexMatchesManager: the tenant's lock-free alternative
// equals the manager's own Alternative on the shared warm index.
func TestTenantSharedIndexMatchesManager(t *testing.T) {
	cfg := fixedTenant(5, 0.5)
	tn, err := newTenant("x", cfg, durability{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.close()
	reqs := []strategy.Request{
		{ID: "a", Params: strategy.Params{Quality: 0.40, Cost: 0.5, Latency: 0.5}, K: 1},
		{ID: "b", Params: strategy.Params{Quality: 0.40, Cost: 0.5, Latency: 0.5}, K: 1},
		{ID: "c", Params: strategy.Params{Quality: 0.60, Cost: 0.5, Latency: 0.5}, K: 2},
	}
	for _, d := range reqs {
		if _, err := tn.Submit(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	got, rs, err := tn.Alternative(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	if rs.ID != "c" || rs.Request.K != 2 {
		t.Errorf("resolved request state = %+v", rs)
	}
	mgr, err := stream.NewManager(cfg.Set, cfg.Models, cfg.Mode, cfg.Objective, cfg.InitialW)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range reqs {
		if _, err := mgr.Submit(d); err != nil {
			t.Fatal(err)
		}
	}
	want, err := mgr.Alternative("c")
	if err != nil {
		t.Fatal(err)
	}
	if got.Alternative != want.Alternative || got.Distance != want.Distance {
		t.Errorf("tenant alternative = %+v, manager = %+v", got, want)
	}
}
