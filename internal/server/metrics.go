package server

import (
	"expvar"
	"io"
	"net/http"
)

// tenantMetrics is one tenant's expvar surface: operation counters plus
// gauges computed from the latest snapshot. The vars live in a per-server
// expvar.Map rather than the process-global expvar registry, so multiple
// servers (tests, embedded instances) never collide on variable names.
type tenantMetrics struct {
	submits, revokes, drifts expvar.Int
	planReads, alternatives  expvar.Int
	errors                   expvar.Int
	vars                     *expvar.Map
}

func newTenantMetrics(t *Tenant) *tenantMetrics {
	m := &tenantMetrics{vars: new(expvar.Map).Init()}
	m.vars.Set("submits", &m.submits)
	m.vars.Set("revokes", &m.revokes)
	m.vars.Set("availability_updates", &m.drifts)
	m.vars.Set("plan_reads", &m.planReads)
	m.vars.Set("alternatives", &m.alternatives)
	m.vars.Set("errors", &m.errors)
	// Gauges read the atomically published snapshot, so they are safe
	// from any goroutine and always consistent with what /plan serves.
	m.vars.Set("epoch", expvar.Func(func() any { return t.snap.Load().Epoch }))
	m.vars.Set("open_requests", expvar.Func(func() any { return len(t.snap.Load().Requests) }))
	m.vars.Set("serving", expvar.Func(func() any { return len(t.snap.Load().Plan.Serving) }))
	m.vars.Set("availability", expvar.Func(func() any { return t.snap.Load().Availability }))
	m.vars.Set("strategies", expvar.Func(func() any { return t.ix.Len() }))
	return m
}

// newMetricsRoot assembles the server-wide expvar tree.
func newMetricsRoot(s *Server) *expvar.Map {
	root := new(expvar.Map).Init()
	root.Set("uptime_seconds", expvar.Func(func() any {
		return s.now().Sub(s.start).Seconds()
	}))
	root.Set("tenant_count", expvar.Func(func() any { return len(s.tenants) }))
	tenants := new(expvar.Map).Init()
	for name, t := range s.tenants {
		tenants.Set(name, t.met.vars)
	}
	root.Set("tenants", tenants)
	return root
}

// metricsHandler renders the expvar tree; expvar.Map.String() is valid
// JSON, nested maps and Funcs included.
func (s *Server) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	io.WriteString(w, s.vars.String())
}
