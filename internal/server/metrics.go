package server

import (
	"expvar"
	"io"
	"net/http"
	"time"

	"stratrec/internal/wal"
)

// tenantMetrics is one tenant's expvar surface: operation counters plus
// gauges computed from the latest snapshot. The vars live in a per-server
// expvar.Map rather than the process-global expvar registry, so multiple
// servers (tests, embedded instances) never collide on variable names.
type tenantMetrics struct {
	submits, revokes, drifts expvar.Int
	planReads, alternatives  expvar.Int
	errors                   expvar.Int
	// batches counts event-loop replan cycles over live mutations;
	// batchedOps counts the mutations they applied, so
	// batchedOps/batches is the achieved coalescing factor.
	batches, batchedOps expvar.Int
	// ingestBatches counts POST /ops bodies that reached the enqueue
	// stage; ingestBatchOps the ops they carried (shed ones included —
	// they are answered per op, not rejected wholesale).
	ingestBatches, ingestBatchOps expvar.Int
	// Overload sheds: mutations turned away by a full inbox vs. by a
	// deadline the projected (or actual) queue wait overshot.
	shedsQueueFull, shedsDeadline expvar.Int
	// Durability counters (present only when the tenant has a WAL).
	walErrors, checkpoints, checkpointErrors expvar.Int
	recoveredRequests, recoveredTail         expvar.Int
	recoveredCheckpointSeq, recoveryMillis   expvar.Int
	tornBytes                                expvar.Int
	vars                                     *expvar.Map
}

func newTenantMetrics(t *Tenant) *tenantMetrics {
	m := &tenantMetrics{vars: new(expvar.Map).Init()}
	m.vars.Set("submits", &m.submits)
	m.vars.Set("revokes", &m.revokes)
	m.vars.Set("availability_updates", &m.drifts)
	m.vars.Set("plan_reads", &m.planReads)
	m.vars.Set("alternatives", &m.alternatives)
	m.vars.Set("errors", &m.errors)
	m.vars.Set("coalesced_batches", &m.batches)
	m.vars.Set("coalesced_ops", &m.batchedOps)
	m.vars.Set("ingest_batches", &m.ingestBatches)
	m.vars.Set("ingest_batch_ops", &m.ingestBatchOps)
	m.vars.Set("sheds_queue_full", &m.shedsQueueFull)
	m.vars.Set("sheds_deadline", &m.shedsDeadline)
	// Overload gauges: live inbox pressure and the batch-latency EWMA
	// behind wait projections and Retry-After estimates.
	m.vars.Set("queue_depth", expvar.Func(func() any { return len(t.ops) }))
	m.vars.Set("queue_capacity", expvar.Func(func() any { return cap(t.ops) }))
	m.vars.Set("batch_latency_us", expvar.Func(func() any {
		return t.batchLatency.get(0).Microseconds()
	}))
	m.vars.Set("read_only", expvar.Func(func() any { return t.readOnly.Load() }))
	// Gauges read the atomically published snapshot, so they are safe
	// from any goroutine and always consistent with what /plan serves.
	m.vars.Set("epoch", expvar.Func(func() any { return t.snap.Load().Epoch }))
	m.vars.Set("open_requests", expvar.Func(func() any { return len(t.snap.Load().Requests) }))
	m.vars.Set("serving", expvar.Func(func() any { return len(t.snap.Load().Plan.Serving) }))
	m.vars.Set("availability", expvar.Func(func() any { return t.snap.Load().Availability }))
	m.vars.Set("strategies", expvar.Func(func() any { return t.ix.Len() }))
	if t.wal != nil {
		w := new(expvar.Map).Init()
		// The wal.Log counters are atomics, safe to read from the metrics
		// handler while the loop goroutine appends.
		w.Set("appends", expvar.Func(func() any { return t.wal.Appends() }))
		w.Set("syncs", expvar.Func(func() any { return t.wal.Syncs() }))
		w.Set("last_seq", expvar.Func(func() any { return t.wal.LastSeq() }))
		w.Set("errors", &m.walErrors)
		w.Set("checkpoints", &m.checkpoints)
		w.Set("checkpoint_errors", &m.checkpointErrors)
		w.Set("recovered_checkpoint_requests", &m.recoveredRequests)
		w.Set("recovered_tail_records", &m.recoveredTail)
		w.Set("recovered_checkpoint_seq", &m.recoveredCheckpointSeq)
		w.Set("recovery_ms", &m.recoveryMillis)
		w.Set("torn_bytes_truncated", &m.tornBytes)
		m.vars.Set("wal", w)
	}
	return m
}

// noteRecovery records what startup recovery replayed and how long it
// took.
func (m *tenantMetrics) noteRecovery(rec wal.Recovered, d time.Duration) {
	if rec.Checkpoint != nil {
		m.recoveredRequests.Set(int64(len(rec.Checkpoint.Requests)))
		m.recoveredCheckpointSeq.Set(int64(rec.Checkpoint.Seq))
	}
	m.recoveredTail.Set(int64(len(rec.Tail)))
	m.recoveryMillis.Set(d.Milliseconds())
	m.tornBytes.Set(int64(rec.TornBytes))
}

// newMetricsRoot assembles the server-wide expvar tree. It also returns
// the "tenants" submap so runtime tenant admin can add and remove
// entries (expvar.Map is concurrency-safe).
func newMetricsRoot(s *Server) (*expvar.Map, *expvar.Map) {
	root := new(expvar.Map).Init()
	root.Set("uptime_seconds", expvar.Func(func() any {
		return s.now().Sub(s.start).Seconds()
	}))
	root.Set("tenant_count", expvar.Func(func() any {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return len(s.tenants)
	}))
	tenants := new(expvar.Map).Init()
	for name, t := range s.tenants {
		tenants.Set(name, t.met.vars) //lint:allow metricname -- tenant names are validated directory-safe labels, rendered as label values not metric names
	}
	root.Set("tenants", tenants)
	if p := s.pool; p != nil {
		pool := new(expvar.Map).Init()
		pool.Set("workers", expvar.Func(func() any { return cap(p.slots) }))
		pool.Set("busy", expvar.Func(func() any { return len(p.slots) }))
		pool.Set("queue_capacity", expvar.Func(func() any { return p.queueCap }))
		pool.Set("waiting", expvar.Func(func() any { return p.waiting.Load() }))
		pool.Set("sheds", expvar.Func(func() any { return p.sheds.Load() }))
		pool.Set("wait_us", expvar.Func(func() any { return p.waitEWMA.get(0).Microseconds() }))
		root.Set("adpar_pool", pool)
	}
	if gc := s.gc; gc != nil {
		g := new(expvar.Map).Init()
		g.Set("window_us", expvar.Func(func() any { return gc.window.Microseconds() }))
		g.Set("rounds", expvar.Func(func() any { return gc.rounds.Load() }))
		g.Set("commits", expvar.Func(func() any { return gc.commits.Load() }))
		g.Set("max_round", expvar.Func(func() any { return gc.maxRound.Load() }))
		g.Set("direct_syncs", expvar.Func(func() any { return gc.directSyncs.Load() }))
		root.Set("group_commit", g)
	}
	return root, tenants
}

// metricsHandler renders the metrics tree: expvar JSON by default
// (expvar.Map.String() is valid JSON, nested maps and Funcs included),
// Prometheus text format with ?format=prometheus.
func (s *Server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	switch f := r.URL.Query().Get("format"); f {
	case "", "expvar", "json":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		io.WriteString(w, s.vars.String())
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writePrometheus(w)
	default:
		writeError(w, badRequest("unknown metrics format %q (want expvar or prometheus)", f))
	}
}
