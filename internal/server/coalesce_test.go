package server

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"stratrec/internal/strategy"
	"stratrec/internal/wal"
)

// submitReq builds the fixedTenant-style request used across the
// coalescing tests: quality q gives requirement (q-0.2)/0.8.
func submitReq(id string, q float64) strategy.Request {
	return strategy.Request{ID: id, Params: strategy.Params{Quality: q, Cost: 0.9, Latency: 0.9}, K: 1}
}

// gateTenant builds a server whose single tenant's event loop can be
// stalled from the test: the first OnApply closes stalled (the loop is
// parked) and blocks until gate is closed, so mutations issued meanwhile
// pile up in the inbox and the next cycle must drain them as one
// coalesced batch.
func gateTenant(t *testing.T, coalesce int, dataDir string) (*Server, *Tenant, chan struct{}, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	stalled := make(chan struct{})
	var once sync.Once
	tc := fixedTenant(4, 0.7)
	tc.Coalesce = coalesce
	tc.OpBuffer = 256
	tc.OnApply = func(AppliedOp) {
		once.Do(func() {
			close(stalled)
			<-gate
		})
	}
	cfg := Config{Tenants: map[string]TenantConfig{"alpha": tc}, DataDir: dataDir}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	tn, err := s.Tenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	return s, tn, gate, stalled
}

// stallFirst issues the gating first submit asynchronously and waits
// until the event loop is parked inside its OnApply.
func stallFirst(t *testing.T, tn *Tenant, stalled chan struct{}) chan error {
	t.Helper()
	firstErr := make(chan error, 1)
	go func() {
		_, err := tn.Submit(context.Background(), submitReq("first", 0.52))
		firstErr <- err
	}()
	select {
	case <-stalled:
	case <-time.After(5 * time.Second):
		t.Fatal("event loop never reached the gate")
	}
	return firstErr
}

// waitQueued polls until n ops are parked in the tenant inbox.
func waitQueued(t *testing.T, tn *Tenant, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(tn.ops) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d ops queued", len(tn.ops), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescedBatchDrainsQueue pins the coalescing mechanics
// deterministically: with the loop stalled on its first op, K queued
// mutations must be applied in a single replan cycle — two batches total,
// K+1 ops — with per-op epochs still distinct and consecutive
// (pool-generation semantics), and every reply arriving only after the
// batch's snapshot publish (read-your-writes).
func TestCoalescedBatchDrainsQueue(t *testing.T) {
	const k = 12
	_, tn, gate, stalled := gateTenant(t, 32, "")
	firstErr := stallFirst(t, tn, stalled)

	type reply struct {
		id  string
		res SubmitResult
		err error
	}
	replies := make(chan reply, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("q%02d", i)
			res, err := tn.Submit(context.Background(), submitReq(id, 0.52))
			// The reply is sent after the batch's snapshot publish: the
			// published snapshot must already contain this submission.
			if err == nil {
				if _, ok := tn.Snapshot().Request(id); !ok {
					t.Errorf("read-your-writes violated: %s missing after its ack", id)
				}
			}
			replies <- reply{id: id, res: res, err: err}
		}(i)
	}
	waitQueued(t, tn, k)
	close(gate) // release the stalled first apply; next cycle drains all k
	if err := <-firstErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(replies)

	epochs := map[uint64]bool{}
	for r := range replies {
		if r.err != nil {
			t.Fatalf("submit %s: %v", r.id, r.err)
		}
		if epochs[r.res.Epoch] {
			t.Fatalf("epoch %d acknowledged twice", r.res.Epoch)
		}
		epochs[r.res.Epoch] = true
		if r.res.Epoch < 2 || r.res.Epoch > k+1 {
			t.Fatalf("epoch %d outside the expected pool-generation range [2,%d]", r.res.Epoch, k+1)
		}
	}
	if got := tn.met.batches.Value(); got != 2 {
		t.Fatalf("coalesced_batches = %d, want 2 (first op alone, then one drained batch)", got)
	}
	if got := tn.met.batchedOps.Value(); got != k+1 {
		t.Fatalf("coalesced_ops = %d, want %d", got, k+1)
	}
	snap := tn.Snapshot()
	if len(snap.Requests) != k+1 || snap.Epoch != k+1 {
		t.Fatalf("final snapshot: %d open at epoch %d, want %d at %d", len(snap.Requests), snap.Epoch, k+1, k+1)
	}
}

// TestCoalescedAckImpliesLogged drives a coalesced batch with durability
// on and verifies the WAL invariants survive coalescing: one record per
// mutation in apply order, epochs advancing by exactly one per record,
// submit records carrying the requirement fingerprint — and a restart
// rebuilding byte-identical state from that log.
func TestCoalescedAckImpliesLogged(t *testing.T) {
	const k = 10
	dir := t.TempDir()
	s1, tn, gate, stalled := gateTenant(t, 32, dir)
	firstErr := stallFirst(t, tn, stalled)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == k-1 {
				if _, err := tn.SetAvailability(context.Background(), 0.6); err != nil {
					t.Errorf("drift: %v", err)
				}
				return
			}
			if _, err := tn.Submit(context.Background(), submitReq(fmt.Sprintf("q%02d", i), 0.52)); err != nil {
				t.Errorf("submit: %v", err)
			}
		}(i)
	}
	waitQueued(t, tn, k)
	close(gate)
	if err := <-firstErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if got := tn.wal.Appends(); got != k+1 {
		t.Fatalf("wal appends = %d, want one per mutation = %d", got, k+1)
	}
	want := tn.Snapshot()
	s1.Close()

	rec, err := wal.Scan(filepath.Join(dir, "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != k+1 {
		t.Fatalf("scanned %d records, want %d", len(rec.Tail), k+1)
	}
	for i, r := range rec.Tail {
		if r.Epoch != uint64(i+1) {
			t.Fatalf("record %d: epoch %d, want %d (one step per mutation)", i, r.Epoch, i+1)
		}
		if r.Kind == wal.KindSubmit && (r.Infeasible || r.Req <= 0) {
			t.Fatalf("record %d: submit missing requirement fingerprint: %+v", i, r)
		}
	}

	s2, err := New(Config{Tenants: map[string]TenantConfig{"alpha": fixedTenant(4, 0.7)}, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tn2, err := s2.Tenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, want, tn2.Snapshot())
}

// TestCoalescedLoopUnderRace hammers one coalescing tenant from many
// goroutines (the race detector guards the single-writer claim) and
// checks read-your-writes on every ack: the published snapshot a client
// reads after its own successful submit/revoke must reflect it, and
// epochs observed per goroutine never regress.
func TestCoalescedLoopUnderRace(t *testing.T) {
	tc := fixedTenant(4, 0.7)
	tc.Coalesce = 16
	s, err := New(Config{Tenants: map[string]TenantConfig{"alpha": tc}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tn, err := s.Tenant("alpha")
	if err != nil {
		t.Fatal(err)
	}

	const workers, rounds = 8, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var last uint64
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("w%d-%03d", w, i)
				res, err := tn.Submit(context.Background(), submitReq(id, 0.3+0.01*float64(w)))
				if err != nil {
					t.Errorf("submit %s: %v", id, err)
					return
				}
				snap := tn.Snapshot()
				if snap.Epoch < res.Epoch {
					t.Errorf("%s: snapshot epoch %d older than ack epoch %d", id, snap.Epoch, res.Epoch)
				}
				if _, ok := snap.Request(id); !ok {
					t.Errorf("read-your-writes violated: %s missing after submit ack", id)
				}
				if res.Epoch <= last {
					t.Errorf("%s: epoch did not advance: %d after %d", id, res.Epoch, last)
				}
				last = res.Epoch
				if i%2 == 1 {
					epoch, err := tn.Revoke(context.Background(), id)
					if err != nil {
						t.Errorf("revoke %s: %v", id, err)
						return
					}
					if _, ok := tn.Snapshot().Request(id); ok {
						t.Errorf("read-your-writes violated: %s still visible after revoke ack", id)
					}
					if epoch <= last {
						t.Errorf("%s: revoke epoch did not advance: %d after %d", id, epoch, last)
					}
					last = epoch
				}
			}
		}(w)
	}
	wg.Wait()

	snap := tn.Snapshot()
	if want := uint64(workers * rounds * 3 / 2); snap.Epoch != want {
		t.Fatalf("final epoch %d, want %d (one per applied mutation)", snap.Epoch, want)
	}
	if got := len(snap.Requests); got != workers*rounds/2 {
		t.Fatalf("open requests %d, want %d", got, workers*rounds/2)
	}
	if b, o := tn.met.batches.Value(), tn.met.batchedOps.Value(); o != int64(workers*rounds*3/2) || b > o {
		t.Fatalf("coalescing counters: batches %d ops %d, want ops = %d", b, o, workers*rounds*3/2)
	}
}
