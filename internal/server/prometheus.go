package server

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text-format rendering of the metrics tree (exposition
// format 0.0.4), served by GET /metrics?format=prometheus. The names
// below are a stable contract — CI parse-lints the endpoint and diffs
// against this vocabulary, so renames are breaking changes:
//
//	stratrec_uptime_seconds
//	stratrec_tenant_count
//	stratrec_submits_total{tenant}            stratrec_revokes_total{tenant}
//	stratrec_availability_updates_total{tenant}
//	stratrec_plan_reads_total{tenant}         stratrec_alternatives_total{tenant}
//	stratrec_errors_total{tenant}
//	stratrec_coalesced_batches_total{tenant}  stratrec_coalesced_ops_total{tenant}
//	stratrec_ingest_batches_total{tenant}     stratrec_ingest_batch_ops_total{tenant}
//	stratrec_sheds_total{tenant,reason="queue_full"|"deadline"}
//	stratrec_queue_depth{tenant}              stratrec_queue_capacity{tenant}
//	stratrec_batch_latency_seconds{tenant}    stratrec_read_only{tenant}
//	stratrec_epoch{tenant}                    stratrec_open_requests{tenant}
//	stratrec_serving{tenant}                  stratrec_availability{tenant}
//	stratrec_strategies{tenant}
//	stratrec_wal_appends_total{tenant}        stratrec_wal_syncs_total{tenant}
//	stratrec_wal_last_seq{tenant}             stratrec_wal_errors_total{tenant}
//	stratrec_wal_checkpoints_total{tenant}    stratrec_wal_checkpoint_errors_total{tenant}
//	stratrec_adpar_pool_workers               stratrec_adpar_pool_busy
//	stratrec_adpar_pool_queue_capacity        stratrec_adpar_pool_waiting
//	stratrec_adpar_pool_sheds_total           stratrec_adpar_pool_wait_seconds
//	stratrec_group_commit_window_seconds      stratrec_group_commit_rounds_total
//	stratrec_group_commit_commits_total       stratrec_group_commit_max_round
//	stratrec_group_commit_direct_syncs_total

// promEscaper escapes label values per the exposition format.
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promWriter accumulates one family at a time so HELP/TYPE headers are
// emitted exactly once per family, in a stable order.
type promWriter struct {
	w io.Writer
}

func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name string, labels [][2]string, value any) {
	if len(labels) == 0 {
		fmt.Fprintf(p.w, "%s %v\n", name, value)
		return
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, l[0], promEscaper.Replace(l[1]))
	}
	fmt.Fprintf(p.w, "%s{%s} %v\n", name, sb.String(), value)
}

// boolGauge renders a bool as the 0/1 Prometheus speaks.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// writePrometheus renders the whole metrics tree in Prometheus text
// format. Values are read from the same counters and live state the
// expvar tree exposes — two formats, one source of truth. Tenants are
// iterated in sorted order under the registry lock's snapshot, so
// runtime-created tenants appear and drained tenants disappear between
// scrapes.
func (s *Server) writePrometheus(w io.Writer) {
	p := &promWriter{w: w}

	p.family("stratrec_uptime_seconds", "Seconds since the server started.", "gauge")
	p.sample("stratrec_uptime_seconds", nil, s.now().Sub(s.start).Seconds())

	s.mu.RLock()
	names := make([]string, len(s.names))
	copy(names, s.names)
	tenants := make([]*Tenant, 0, len(names))
	for _, name := range names {
		tenants = append(tenants, s.tenants[name])
	}
	s.mu.RUnlock()

	p.family("stratrec_tenant_count", "Hosted tenants.", "gauge")
	p.sample("stratrec_tenant_count", nil, len(tenants))

	counter := func(name, help string, get func(t *Tenant) int64) {
		p.family(name, help, "counter")
		for i, t := range tenants {
			p.sample(name, [][2]string{{"tenant", names[i]}}, get(t))
		}
	}
	gauge := func(name, help string, get func(t *Tenant) any) {
		p.family(name, help, "gauge")
		for i, t := range tenants {
			p.sample(name, [][2]string{{"tenant", names[i]}}, get(t))
		}
	}

	counter("stratrec_submits_total", "Acknowledged submissions.",
		func(t *Tenant) int64 { return t.met.submits.Value() })
	counter("stratrec_revokes_total", "Acknowledged revocations.",
		func(t *Tenant) int64 { return t.met.revokes.Value() })
	counter("stratrec_availability_updates_total", "Acknowledged availability updates.",
		func(t *Tenant) int64 { return t.met.drifts.Value() })
	counter("stratrec_plan_reads_total", "Plan snapshot reads.",
		func(t *Tenant) int64 { return t.met.planReads.Value() })
	counter("stratrec_alternatives_total", "ADPaR alternative recommendations served.",
		func(t *Tenant) int64 { return t.met.alternatives.Value() })
	counter("stratrec_errors_total", "Failed operations (sheds excluded).",
		func(t *Tenant) int64 { return t.met.errors.Value() })
	counter("stratrec_coalesced_batches_total", "Event-loop replan cycles over live mutations.",
		func(t *Tenant) int64 { return t.met.batches.Value() })
	counter("stratrec_coalesced_ops_total", "Live mutations applied through coalesced cycles.",
		func(t *Tenant) int64 { return t.met.batchedOps.Value() })
	counter("stratrec_ingest_batches_total", "Batched-ingest bodies that reached the enqueue stage.",
		func(t *Tenant) int64 { return t.met.ingestBatches.Value() })
	counter("stratrec_ingest_batch_ops_total", "Ops carried by batched-ingest bodies.",
		func(t *Tenant) int64 { return t.met.ingestBatchOps.Value() })

	// Sheds are one family with a reason label, so alerting sums them
	// without chasing name variants.
	p.family("stratrec_sheds_total", "Mutations shed by admission control.", "counter")
	for i, t := range tenants {
		p.sample("stratrec_sheds_total",
			[][2]string{{"tenant", names[i]}, {"reason", "queue_full"}}, t.met.shedsQueueFull.Value())
		p.sample("stratrec_sheds_total",
			[][2]string{{"tenant", names[i]}, {"reason", "deadline"}}, t.met.shedsDeadline.Value())
	}

	gauge("stratrec_queue_depth", "Mutations waiting in the event-loop inbox.",
		func(t *Tenant) any { return len(t.ops) })
	gauge("stratrec_queue_capacity", "Event-loop inbox capacity.",
		func(t *Tenant) any { return cap(t.ops) })
	gauge("stratrec_batch_latency_seconds", "EWMA of coalesced-batch apply latency.",
		func(t *Tenant) any { return t.batchLatency.get(0).Seconds() })
	gauge("stratrec_read_only", "1 when the WAL circuit breaker has tripped.",
		func(t *Tenant) any { return boolGauge(t.readOnly.Load()) })
	gauge("stratrec_epoch", "Plan epoch of the published snapshot.",
		func(t *Tenant) any { return t.snap.Load().Epoch })
	gauge("stratrec_open_requests", "Open requests in the published snapshot.",
		func(t *Tenant) any { return len(t.snap.Load().Requests) })
	gauge("stratrec_serving", "Requests the published plan serves.",
		func(t *Tenant) any { return len(t.snap.Load().Plan.Serving) })
	gauge("stratrec_availability", "Expected workforce availability.",
		func(t *Tenant) any { return t.snap.Load().Availability })
	gauge("stratrec_strategies", "Catalog strategies.",
		func(t *Tenant) any { return t.ix.Len() })

	// WAL families include only tenants running with durability.
	walCounter := func(name, help string, get func(t *Tenant) any) {
		p.family(name, help, "counter")
		for i, t := range tenants {
			if t.wal != nil {
				p.sample(name, [][2]string{{"tenant", names[i]}}, get(t))
			}
		}
	}
	anyWAL := false
	for _, t := range tenants {
		if t.wal != nil {
			anyWAL = true
			break
		}
	}
	if anyWAL {
		walCounter("stratrec_wal_appends_total", "WAL records appended.",
			func(t *Tenant) any { return t.wal.Appends() })
		walCounter("stratrec_wal_syncs_total", "WAL fsyncs issued.",
			func(t *Tenant) any { return t.wal.Syncs() })
		p.family("stratrec_wal_last_seq", "Highest assigned WAL sequence number.", "gauge")
		for i, t := range tenants {
			if t.wal != nil {
				p.sample("stratrec_wal_last_seq", [][2]string{{"tenant", names[i]}}, t.wal.LastSeq())
			}
		}
		walCounter("stratrec_wal_errors_total", "WAL append/commit failures (trips read-only).",
			func(t *Tenant) any { return t.met.walErrors.Value() })
		walCounter("stratrec_wal_checkpoints_total", "Checkpoints cut.",
			func(t *Tenant) any { return t.met.checkpoints.Value() })
		walCounter("stratrec_wal_checkpoint_errors_total", "Failed auto-checkpoints.",
			func(t *Tenant) any { return t.met.checkpointErrors.Value() })
	}

	if pool := s.pool; pool != nil {
		p.family("stratrec_adpar_pool_workers", "Alternative-query pool worker slots.", "gauge")
		p.sample("stratrec_adpar_pool_workers", nil, cap(pool.slots))
		p.family("stratrec_adpar_pool_busy", "Busy alternative-query workers.", "gauge")
		p.sample("stratrec_adpar_pool_busy", nil, len(pool.slots))
		p.family("stratrec_adpar_pool_queue_capacity", "Bounded wait-queue capacity.", "gauge")
		p.sample("stratrec_adpar_pool_queue_capacity", nil, pool.queueCap)
		p.family("stratrec_adpar_pool_waiting", "Queries waiting for a worker.", "gauge")
		p.sample("stratrec_adpar_pool_waiting", nil, pool.waiting.Load())
		p.family("stratrec_adpar_pool_sheds_total", "Alternative queries shed by the saturated pool.", "counter")
		p.sample("stratrec_adpar_pool_sheds_total", nil, pool.sheds.Load())
		p.family("stratrec_adpar_pool_wait_seconds", "EWMA of pool queue wait.", "gauge")
		p.sample("stratrec_adpar_pool_wait_seconds", nil, pool.waitEWMA.get(0).Seconds())
	}

	if gc := s.gc; gc != nil {
		p.family("stratrec_group_commit_window_seconds", "Group-commit collection window.", "gauge")
		p.sample("stratrec_group_commit_window_seconds", nil, gc.window.Seconds())
		p.family("stratrec_group_commit_rounds_total", "Shared fsync rounds.", "counter")
		p.sample("stratrec_group_commit_rounds_total", nil, gc.rounds.Load())
		p.family("stratrec_group_commit_commits_total", "Log-sync requests absorbed by rounds.", "counter")
		p.sample("stratrec_group_commit_commits_total", nil, gc.commits.Load())
		p.family("stratrec_group_commit_max_round", "Largest round observed.", "gauge")
		p.sample("stratrec_group_commit_max_round", nil, gc.maxRound.Load())
		p.family("stratrec_group_commit_direct_syncs_total",
			"Commits that fell back to a direct fsync during shutdown (nonzero means broken Close ordering).", "counter")
		p.sample("stratrec_group_commit_direct_syncs_total", nil, gc.directSyncs.Load())
	}
}
