package server

import (
	"sync"
	"sync/atomic"
	"time"

	"stratrec/internal/wal"
)

// groupCommitter is the server-wide commit scheduler behind
// Config.WALGroupCommitWindow: tenant event loops that finish a batch at
// around the same time share fsync rounds instead of each paying a full
// disk flush per batch.
//
// With per-tenant SyncEvery batching, fsyncs amortize only within one
// tenant's queue; a server hosting many moderately-loaded tenants still
// issues one fsync per tenant per batch. The scheduler inverts that:
// each tenant's loop appends its batch (buffered, Options.SyncManual)
// and then asks the scheduler to make the log durable. The scheduler
// collects requests for up to the window, then syncs all the collected
// logs — in parallel, since they are distinct files — and releases every
// waiter at once. Each log is still fsynced before any of its ops is
// acknowledged, so the per-op guarantee (acked ⇒ logged ⇒ fsynced) is
// exactly the SyncEvery=1 guarantee; only the waiting is shared.
//
// A log appears at most once per round: its only committer is its
// tenant's loop, which blocks in commit until the round resolves. The
// scheduler therefore calls Log.Sync strictly after the loop's appends
// and strictly before the loop continues — the same single-threaded
// access pattern the Log demands, just briefly delegated.
type groupCommitter struct {
	window time.Duration
	reqs   chan gcReq
	quit   chan struct{}
	done   chan struct{}

	// rounds counts fsync rounds; commits counts the log-sync requests
	// they absorbed (commits/rounds is the achieved sharing factor);
	// maxRound is the largest round observed.
	rounds   atomic.Int64
	commits  atomic.Int64
	maxRound atomic.Int64
	// directSyncs counts commits that resolved through the shutdown
	// fallback (scheduler stopped, caller fsynced its own log). They are
	// deliberately outside rounds/commits — no round happened — and a
	// nonzero value under normal operation means the Server.Close
	// ordering (tenant loops first, scheduler last) has regressed.
	directSyncs atomic.Int64
}

type gcReq struct {
	l    *wal.Log
	done chan error
}

func newGroupCommitter(window time.Duration) *groupCommitter {
	gc := &groupCommitter{
		window: window,
		// Unbuffered by design: a send succeeds only when the scheduler
		// goroutine receives it, so every accepted request is guaranteed a
		// reply and a request racing shutdown falls back cleanly (see
		// commit) instead of landing in a buffer nobody drains.
		reqs: make(chan gcReq),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go gc.run()
	return gc
}

// commit makes l durable through the scheduler, blocking until l's fsync
// round completes. Called from tenant event loops. If the scheduler has
// shut down (a request racing server close), the caller syncs directly —
// same guarantee, no sharing.
func (gc *groupCommitter) commit(l *wal.Log) error {
	r := gcReq{l: l, done: make(chan error, 1)}
	select {
	case gc.reqs <- r:
		return <-r.done
	case <-gc.quit:
		// Accounted separately: without this, shutdown-window commits
		// silently vanished from /metrics (neither rounds nor commits
		// moved), hiding a broken Close ordering.
		gc.directSyncs.Add(1)
		return l.Sync()
	}
}

// stop shuts the scheduler down. Pending commit callers resolve via the
// direct-sync fallback; the server stops tenant loops first, so in the
// normal shutdown order there are none.
func (gc *groupCommitter) stop() {
	close(gc.quit)
	<-gc.done
}

func (gc *groupCommitter) run() {
	defer close(gc.done)
	round := make([]gcReq, 0, 16)
	var timer *time.Timer
	for {
		// Wait for the round's opening request.
		select {
		case r := <-gc.reqs:
			round = append(round[:0], r)
		case <-gc.quit:
			return
		}
		// Collect co-committers for up to the window. A zero window still
		// absorbs requests that are already waiting (the drain below), so
		// simultaneous arrivals share even without added latency.
		if gc.window > 0 {
			if timer == nil {
				timer = time.NewTimer(gc.window)
			} else {
				timer.Reset(gc.window)
			}
		collect:
			for {
				select {
				case r := <-gc.reqs:
					round = append(round, r)
				case <-timer.C:
					break collect
				case <-gc.quit:
					if !timer.Stop() {
						<-timer.C
					}
					gc.flush(round)
					return
				}
			}
		}
	drain:
		for {
			select {
			case r := <-gc.reqs:
				round = append(round, r)
			default:
				break drain
			}
		}
		gc.flush(round)
	}
}

// flush syncs every log in the round — in parallel, they are distinct
// files — and releases the waiters.
func (gc *groupCommitter) flush(round []gcReq) {
	if len(round) == 0 {
		return
	}
	gc.rounds.Add(1)
	gc.commits.Add(int64(len(round)))
	if n := int64(len(round)); n > gc.maxRound.Load() {
		gc.maxRound.Store(n)
	}
	if len(round) == 1 {
		round[0].done <- round[0].l.Sync()
		return
	}
	var wg sync.WaitGroup
	for _, r := range round {
		wg.Add(1)
		go func(r gcReq) {
			defer wg.Done()
			r.done <- r.l.Sync()
		}(r)
	}
	wg.Wait()
}
