package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"stratrec/internal/synth"
)

// LoadConfig parameterizes the load harness: a synthetic Poisson
// submit/revoke/drift workload (internal/synth) replayed over HTTP against
// a live server by a pool of workers.
type LoadConfig struct {
	// BaseURL is the target server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenants are the tenant names to spread workers across
	// (round-robin).
	Tenants []string
	// Workers is the number of concurrent replaying clients (default 4).
	Workers int
	// Events is the total number of workload arrivals across all workers
	// (default 1000).
	Events int
	// Rate is the Poisson arrival rate per worker in events/second; 0
	// replays as fast as the server allows (closed loop), which is the
	// throughput-measuring mode.
	Rate float64
	// RevokeFraction, DriftFraction, TightFraction parameterize the
	// workload mix (see synth.WorkloadConfig). Tight submissions are
	// displaced and trigger an ADPaR alternative query.
	RevokeFraction, DriftFraction, TightFraction float64
	// PlanEvery inserts a plan read every n-th event per worker (0
	// disables).
	PlanEvery int
	// K is the per-request cardinality constraint (default 3).
	K int
	// Seed makes workload generation deterministic.
	Seed int64
	// IDPrefix further namespaces request IDs, letting repeated harness
	// runs against the same live server avoid ID collisions with
	// requests an earlier run left open.
	IDPrefix string
	// Workloads, when non-nil, are pre-built per-worker event sequences
	// (e.g. loaded from a file with synth.ReadTrace) replayed verbatim —
	// one worker per sequence — instead of generating from Seed and the
	// mix fields above. This is the deterministic replay mode: the same
	// file drives the same requests every run.
	Workloads [][]synth.WorkloadEvent
	// Client overrides the HTTP client (default: keep-alive transport
	// sized to Workers).
	Client *http.Client
}

// BuildWorkloads generates the per-worker event sequences RunLoad replays
// when cfg.Workloads is nil. It is exported so callers can export a
// workload (synth.WriteTrace) and replay the identical sequence later.
func BuildWorkloads(cfg LoadConfig) ([][]synth.WorkloadEvent, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	events := cfg.Events
	if events <= 0 {
		events = 1000
	}
	k := cfg.K
	if k <= 0 {
		k = 3
	}
	gen := synth.DefaultConfig(synth.Uniform)
	perWorker := (events + workers - 1) / workers
	workloads := make([][]synth.WorkloadEvent, 0, workers)
	for i := 0; i < workers; i++ {
		n := perWorker
		if rest := events - i*perWorker; rest < n {
			n = rest
		}
		if n <= 0 {
			break
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		wl, err := gen.Workload(rng, synth.WorkloadConfig{
			Events:         n,
			K:              k,
			Rate:           cfg.Rate,
			RevokeFraction: cfg.RevokeFraction,
			DriftFraction:  cfg.DriftFraction,
			TightFraction:  cfg.TightFraction,
			IDPrefix:       fmt.Sprintf("%sw%d-", cfg.IDPrefix, i),
		})
		if err != nil {
			return nil, fmt.Errorf("server: load harness workload: %w", err)
		}
		workloads = append(workloads, wl)
	}
	return workloads, nil
}

// OpStats summarizes latencies of one operation class.
type OpStats struct {
	Count  int
	Errors int
	P50    time.Duration
	P90    time.Duration
	P99    time.Duration
	Max    time.Duration
}

// Report is the harness outcome: the repo's measured requests-per-second
// number and its latency percentiles.
type Report struct {
	Events     int
	Errors     int
	Duration   time.Duration
	Throughput float64 // completed HTTP requests per second
	Overall    OpStats
	PerOp      map[string]OpStats // submit, revoke, drift, plan, alternative
}

// String renders the report as the human-readable summary the selftest and
// CI burst print.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load: %d requests in %v (%.0f req/s), %d errors\n",
		r.Events, r.Duration.Round(time.Millisecond), r.Throughput, r.Errors)
	fmt.Fprintf(&b, "  %-12s %8s %10s %10s %10s %10s\n", "op", "count", "p50", "p90", "p99", "max")
	fmt.Fprintf(&b, "  %-12s %8d %10v %10v %10v %10v\n", "all",
		r.Overall.Count, r.Overall.P50, r.Overall.P90, r.Overall.P99, r.Overall.Max)
	ops := make([]string, 0, len(r.PerOp))
	for op := range r.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st := r.PerOp[op]
		fmt.Fprintf(&b, "  %-12s %8d %10v %10v %10v %10v\n", op,
			st.Count, st.P50, st.P90, st.P99, st.Max)
	}
	return b.String()
}

type sample struct {
	op  string
	d   time.Duration
	err bool
}

// RunLoad replays the configured workload and reports throughput and
// latency percentiles. Every worker replays its own ID-prefixed event
// sequence (so revokes always target the worker's own submissions in
// order) and drives one tenant; workers spread round-robin across
// cfg.Tenants. Sequences come from BuildWorkloads, or verbatim from
// cfg.Workloads in replay mode.
func RunLoad(cfg LoadConfig) (Report, error) {
	if cfg.BaseURL == "" {
		return Report{}, errors.New("server: load harness needs a BaseURL")
	}
	if len(cfg.Tenants) == 0 {
		return Report{}, errors.New("server: load harness needs at least one tenant")
	}
	// Resolve every worker's event sequence up front, before the clock
	// starts: a bad workload config (negative rate, NaN fractions) fails
	// the whole run with the synth sentinel instead of surfacing as
	// per-worker error samples mid-replay.
	workloads := cfg.Workloads
	if workloads == nil {
		var err error
		if workloads, err = BuildWorkloads(cfg); err != nil {
			return Report{}, err
		}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        len(workloads) * 2,
			MaxIdleConnsPerHost: len(workloads) * 2,
		}}
	}

	sampleCh := make(chan []sample, len(workloads))
	start := time.Now()
	var wg sync.WaitGroup
	for i, wl := range workloads {
		wg.Add(1)
		go func(worker int, wl []synth.WorkloadEvent) {
			defer wg.Done()
			tenant := cfg.Tenants[worker%len(cfg.Tenants)]
			sampleCh <- replay(client, cfg.BaseURL, tenant, wl, cfg.PlanEvery, start)
		}(i, wl)
	}
	wg.Wait()
	close(sampleCh)

	var all []sample
	for ss := range sampleCh {
		all = append(all, ss...)
	}
	elapsed := time.Since(start)

	rep := Report{
		Duration: elapsed,
		PerOp:    map[string]OpStats{},
	}
	byOp := map[string][]time.Duration{}
	var overall []time.Duration
	for _, s := range all {
		rep.Events++
		if s.err {
			rep.Errors++
		}
		overall = append(overall, s.d)
		byOp[s.op] = append(byOp[s.op], s.d)
	}
	errsByOp := map[string]int{}
	for _, s := range all {
		if s.err {
			errsByOp[s.op]++
		}
	}
	rep.Overall = statsOf(overall, rep.Errors)
	for op, ds := range byOp {
		rep.PerOp[op] = statsOf(ds, errsByOp[op])
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(rep.Events) / secs
	}
	return rep, nil
}

// replay drives one worker's event sequence against one tenant,
// interleaving alternative queries after displaced submissions and
// periodic plan reads.
func replay(client *http.Client, base, tenant string, wl []synth.WorkloadEvent, planEvery int, start time.Time) []sample {
	samples := make([]sample, 0, len(wl)+len(wl)/4)
	prefix := base + "/v1/tenants/" + tenant
	for i, ev := range wl {
		if ev.At > 0 {
			if d := time.Until(start.Add(ev.At)); d > 0 {
				time.Sleep(d)
			}
		}
		switch ev.Kind {
		case synth.SubmitArrival:
			body, _ := json.Marshal(SubmitRequest{
				ID:      ev.Request.ID,
				Quality: ev.Request.Quality,
				Cost:    ev.Request.Cost,
				Latency: ev.Request.Latency,
				K:       ev.Request.K,
			})
			var resp SubmitResponse
			s := timedCall(client, http.MethodPost, prefix+"/requests", body, &resp, false)
			s.op = "submit"
			samples = append(samples, s)
			if !s.err && !resp.Served {
				// Displaced: ask for the ADPaR alternative, the paper's
				// Section-4 path. 404/409 are tolerated here — they just
				// mean the plan moved between the two calls.
				alt := timedCall(client, http.MethodGet, prefix+"/requests/"+ev.Request.ID+"/alternative", nil, nil, true)
				alt.op = "alternative"
				samples = append(samples, alt)
			}
		case synth.RevokeArrival:
			s := timedCall(client, http.MethodDelete, prefix+"/requests/"+ev.RevokeID, nil, nil, false)
			s.op = "revoke"
			samples = append(samples, s)
		case synth.DriftArrival:
			body, _ := json.Marshal(AvailabilityRequest{Workforce: ev.Availability})
			s := timedCall(client, http.MethodPut, prefix+"/availability", body, nil, false)
			s.op = "drift"
			samples = append(samples, s)
		}
		if planEvery > 0 && (i+1)%planEvery == 0 {
			s := timedCall(client, http.MethodGet, prefix+"/plan", nil, nil, false)
			s.op = "plan"
			samples = append(samples, s)
		}
	}
	return samples
}

// timedCall performs one HTTP call and decodes out when given. Non-2xx
// counts as an error, except 404/409 when tolerateRace is set (alternative
// queries legitimately race the plan).
func timedCall(client *http.Client, method, url string, body []byte, out any, tolerateRace bool) sample {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	t0 := time.Now()
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return sample{d: time.Since(t0), err: true}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return sample{d: time.Since(t0), err: true}
	}
	failed := resp.StatusCode >= 300
	if tolerateRace && (resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusConflict) {
		failed = false
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			failed = true
		}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{d: time.Since(t0), err: failed}
}

// statsOf computes percentile stats over a latency set.
func statsOf(ds []time.Duration, errs int) OpStats {
	st := OpStats{Count: len(ds), Errors: errs}
	if len(ds) == 0 {
		return st
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pct := func(q float64) time.Duration {
		return ds[int(q*float64(len(ds)-1)+0.5)]
	}
	st.P50 = pct(0.50)
	st.P90 = pct(0.90)
	st.P99 = pct(0.99)
	st.Max = ds[len(ds)-1]
	return st
}
