package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var (
	promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)
	promHelpRE   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	promTypeRE   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promLabelRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// lintPrometheus parses a text-format exposition strictly: every sample
// belongs to a declared family, HELP/TYPE appear exactly once per family
// and before its samples, label syntax is well-formed, no name+labelset
// repeats, and counters are finite and non-negative. It returns the
// sampled families.
func lintPrometheus(t *testing.T, body io.Reader) map[string]string {
	t.Helper()
	types := map[string]string{} // family -> counter|gauge|...
	helped := map[string]bool{}  // family -> HELP seen
	sampled := map[string]bool{} // name+labels -> seen
	families := map[string]string{}
	sc := bufio.NewScanner(body)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, "# HELP "):
			m := promHelpRE.FindStringSubmatch(text)
			if m == nil {
				t.Fatalf("line %d: malformed HELP: %q", line, text)
			}
			if helped[m[1]] {
				t.Fatalf("line %d: duplicate HELP for %s", line, m[1])
			}
			helped[m[1]] = true
		case strings.HasPrefix(text, "# TYPE "):
			m := promTypeRE.FindStringSubmatch(text)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", line, text)
			}
			if _, dup := types[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", line, m[1])
			}
			types[m[1]] = m[2]
		case strings.HasPrefix(text, "#"):
			continue // comment
		default:
			m := promSampleRE.FindStringSubmatch(text)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", line, text)
			}
			name, labels, value := m[1], m[2], m[3]
			typ, declared := types[name]
			if !declared || !helped[name] {
				t.Fatalf("line %d: sample %s before its HELP/TYPE", line, name)
			}
			if labels != "" {
				for _, pair := range strings.Split(strings.Trim(labels, "{}"), ",") {
					if !promLabelRE.MatchString(pair) {
						t.Fatalf("line %d: malformed label %q in %q", line, pair, text)
					}
				}
			}
			key := name + labels
			if sampled[key] {
				t.Fatalf("line %d: duplicate sample %s", line, key)
			}
			sampled[key] = true
			if typ == "counter" {
				v, err := strconv.ParseFloat(value, 64)
				if err != nil || v < 0 {
					t.Fatalf("line %d: counter %s = %q", line, name, value)
				}
			}
			families[name] = typ
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return families
}

// TestPrometheusEndpointLints: a loaded server's ?format=prometheus
// output passes a strict exposition-format lint and carries the full
// stable name vocabulary — core, WAL, pool and group-commit families.
func TestPrometheusEndpointLints(t *testing.T) {
	cfg := Config{
		Tenants: map[string]TenantConfig{
			"alpha": fixedTenant(6, 0.7),
			"beta":  fixedTenant(4, 0.5),
		},
		DataDir:              t.TempDir(),
		WALGroupCommitWindow: 200 * time.Microsecond,
		ADPaRWorkers:         2,
	}
	s, hs := newTestServer(t, cfg)
	tn, _ := s.Tenant("alpha")
	driveMutations(t, tn, 20, 11)
	if _, err := tn.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	resp, err := hs.Client().Get(hs.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	families := lintPrometheus(t, resp.Body)

	for _, want := range []string{
		"stratrec_uptime_seconds", "stratrec_tenant_count",
		"stratrec_submits_total", "stratrec_revokes_total",
		"stratrec_sheds_total", "stratrec_queue_depth", "stratrec_epoch",
		"stratrec_wal_appends_total", "stratrec_wal_syncs_total",
		"stratrec_wal_checkpoints_total",
		"stratrec_adpar_pool_workers",
		"stratrec_group_commit_rounds_total",
		"stratrec_group_commit_direct_syncs_total",
	} {
		if _, ok := families[want]; !ok {
			t.Errorf("family %s missing from exposition", want)
		}
	}
	for name := range families {
		if !strings.HasPrefix(name, "stratrec_") {
			t.Errorf("family %s outside the stratrec_ namespace", name)
		}
	}
}

// TestMetricsFormatSwitch: the default stays expvar JSON, explicit
// format names select, and unknown formats answer 400 with the error
// envelope.
func TestMetricsFormatSwitch(t *testing.T) {
	cfg := Config{Tenants: map[string]TenantConfig{"alpha": fixedTenant(4, 0.7)}}
	_, hs := newTestServer(t, cfg)
	client := hs.Client()

	for _, url := range []string{"/metrics", "/metrics?format=expvar", "/metrics?format=json"} {
		resp, err := client.Get(hs.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
			t.Fatalf("%s: status %d, type %q", url, resp.StatusCode, resp.Header.Get("Content-Type"))
		}
		if !strings.Contains(string(body), `"tenants"`) {
			t.Fatalf("%s: expvar body missing tenants: %.120s", url, body)
		}
	}

	resp, err := client.Get(hs.URL + "/metrics?format=yaml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", resp.StatusCode)
	}
}

// TestPrometheusTracksRegistry: runtime-created tenants appear in the
// next scrape, drained tenants disappear.
func TestPrometheusTracksRegistry(t *testing.T) {
	cfg := Config{Tenants: map[string]TenantConfig{"alpha": fixedTenant(4, 0.7)}}
	s, hs := newTestServer(t, cfg)

	scrape := func() string {
		t.Helper()
		resp, err := hs.Client().Get(hs.URL + "/metrics?format=prometheus")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	if body := scrape(); strings.Contains(body, `tenant="beta"`) {
		t.Fatal("beta present before creation")
	}
	if err := s.CreateTenant("beta", fixedTenant(4, 0.6)); err != nil {
		t.Fatal(err)
	}
	tn, _ := s.Tenant("beta")
	if _, err := tn.Submit(context.Background(), submitReqN("b1", 0.3)); err != nil {
		t.Fatal(err)
	}
	body := scrape()
	if !strings.Contains(body, `stratrec_submits_total{tenant="beta"} 1`) {
		t.Fatalf("beta submit not scraped:\n%s", grepLines(body, "beta"))
	}
	if _, err := s.DrainTenant("beta"); err != nil {
		t.Fatal(err)
	}
	if body := scrape(); strings.Contains(body, `tenant="beta"`) {
		t.Fatal("drained beta still scraped")
	}
}

// TestPrometheusLiveScrape is the CI parse-lint gate for a real running
// server (not an httptest one): when STRATREC_LIVE_METRICS_URL names a
// live /metrics?format=prometheus endpoint, scrape it and hold it to the
// same strict exposition lint and namespace rule as the in-process
// tests. Skipped when the env var is unset, so `go test ./...` stays
// hermetic.
func TestPrometheusLiveScrape(t *testing.T) {
	url := os.Getenv("STRATREC_LIVE_METRICS_URL")
	if url == "" {
		t.Skip("STRATREC_LIVE_METRICS_URL not set; live-scrape lint runs in CI")
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("live scrape content type %q", ct)
	}
	families := lintPrometheus(t, resp.Body)
	if len(families) == 0 {
		t.Fatal("live scrape exposed no metric families")
	}
	for name := range families {
		if !strings.HasPrefix(name, "stratrec_") {
			t.Errorf("live family %s outside the stratrec_ namespace", name)
		}
	}
}

// grepLines filters body to lines containing needle, for readable fails.
func grepLines(body, needle string) string {
	var sb strings.Builder
	for _, l := range strings.Split(body, "\n") {
		if strings.Contains(l, needle) {
			fmt.Fprintln(&sb, l)
		}
	}
	return sb.String()
}

// TestPromEscaping: label values with quotes, backslashes and newlines
// render as the exposition format's escape sequences.
func TestPromEscaping(t *testing.T) {
	var sb strings.Builder
	p := &promWriter{w: &sb}
	p.sample("m", [][2]string{{"tenant", "a\"b\\c\nd"}}, 1)
	want := `m{tenant="a\"b\\c\nd"} 1` + "\n"
	if sb.String() != want {
		t.Fatalf("escaped sample = %q, want %q", sb.String(), want)
	}
}
