package linreg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOLSExactLine(t *testing.T) {
	x := []float64{0, 0.25, 0.5, 0.75, 1}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 0.09*v + 0.85 // Table 6 translation quality
	}
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-0.09) > 1e-12 || math.Abs(fit.Beta-0.85) > 1e-12 {
		t.Errorf("fit = (%v, %v), want (0.09, 0.85)", fit.Alpha, fit.Beta)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if fit.Residual > 1e-9 {
		t.Errorf("Residual = %v, want ~0", fit.Residual)
	}
	if got := fit.Predict(0.5); math.Abs(got-0.895) > 1e-12 {
		t.Errorf("Predict(0.5) = %v", got)
	}
}

func TestOLSNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 400
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = -0.98*x[i] + 1.40 + rng.NormFloat64()*0.02
	}
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha+0.98) > 0.02 {
		t.Errorf("Alpha = %v, want ~-0.98", fit.Alpha)
	}
	if math.Abs(fit.Beta-1.40) > 0.02 {
		t.Errorf("Beta = %v, want ~1.40", fit.Beta)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", fit.R2)
	}
	lo, hi := fit.ConfidenceInterval(0.90)
	if lo > -0.98 || hi < -0.98 {
		t.Errorf("90%% CI [%v, %v] misses true slope", lo, hi)
	}
	if !fit.SignificantAt(0.10) {
		t.Error("steep slope not significant at 90%")
	}
}

func TestOLSInputValidation(t *testing.T) {
	if _, err := OLS([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := OLS([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := OLS([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x accepted")
	}
}

func TestOLSConstantY(t *testing.T) {
	fit, err := OLS([]float64{0, 0.5, 1}, []float64{0.7, 0.7, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha != 0 || math.Abs(fit.Beta-0.7) > 1e-12 {
		t.Errorf("fit = (%v, %v)", fit.Alpha, fit.Beta)
	}
	if fit.R2 != 1 {
		t.Errorf("R2 of perfectly explained constant = %v", fit.R2)
	}
}

func TestSlopePValueFlatLine(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = 0.5 + rng.NormFloat64() // pure noise, no slope
	}
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if p := fit.SlopePValue(); p < 0.01 {
		t.Errorf("noise slope p-value = %v, should not be tiny", p)
	}
}

func TestConfidenceIntervalDegenerate(t *testing.T) {
	fit, err := OLS([]float64{0, 1}, []float64{0.2, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := fit.ConfidenceInterval(0.90)
	if lo != fit.Alpha || hi != fit.Alpha {
		t.Errorf("two-point CI should be degenerate, got [%v, %v]", lo, hi)
	}
	blo, bhi := fit.InterceptConfidenceInterval(0.90)
	if blo != fit.Beta || bhi != fit.Beta {
		t.Errorf("two-point intercept CI should be degenerate, got [%v, %v]", blo, bhi)
	}
}

func TestInterceptConfidenceInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := make([]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = 1.0*x[i] + 0.0 + rng.NormFloat64()*0.03
	}
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := fit.InterceptConfidenceInterval(0.90)
	if lo > 0 || hi < 0 {
		t.Errorf("intercept CI [%v, %v] misses 0", lo, hi)
	}
}

func TestPropertyOLSRecoversPlantedLine(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func() bool {
		alpha := rng.Float64()*4 - 2
		beta := rng.Float64()*2 - 1
		n := 10 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i) / float64(n-1)
			y[i] = alpha*x[i] + beta
		}
		fit, err := OLS(x, y)
		if err != nil {
			return false
		}
		return math.Abs(fit.Alpha-alpha) < 1e-9 && math.Abs(fit.Beta-beta) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyResidualOrthogonality(t *testing.T) {
	// OLS residuals are orthogonal to x and sum to zero.
	rng := rand.New(rand.NewSource(32))
	f := func() bool {
		n := 5 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
			y[i] = rng.Float64()
		}
		fit, err := OLS(x, y)
		if err != nil {
			return true // duplicate x values possible but measure-zero
		}
		var sumR, sumRX float64
		for i := range x {
			r := y[i] - fit.Predict(x[i])
			sumR += r
			sumRX += r * x[i]
		}
		return math.Abs(sumR) < 1e-8 && math.Abs(sumRX) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
