// Package linreg is a hand-rolled ordinary-least-squares simple linear
// regression, the fitting machinery behind the paper's Table 6: estimating
// (alpha, beta) of p = alpha*w + beta from observed (availability, parameter)
// pairs, with R², standard errors, confidence intervals and a slope t-test.
//
// The Go ecosystem constraint of this reproduction (stdlib only) means no
// external statistics packages; everything here is implemented from the
// textbook formulas.
package linreg

import (
	"errors"
	"fmt"
	"math"

	"stratrec/internal/stats"
)

// Fit is the result of regressing y on x: y ≈ Alpha*x + Beta.
type Fit struct {
	Alpha float64 // slope
	Beta  float64 // intercept
	N     int     // number of observations

	R2       float64 // coefficient of determination
	SEAlpha  float64 // standard error of the slope
	SEBeta   float64 // standard error of the intercept
	Residual float64 // residual standard error (sqrt(SSE/(n-2)))
}

// ErrTooFewPoints is returned when fewer than two distinct x values are
// supplied.
var ErrTooFewPoints = errors.New("linreg: need at least two observations with distinct x")

// OLS fits y = alpha*x + beta by ordinary least squares.
func OLS(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, fmt.Errorf("linreg: len(x)=%d != len(y)=%d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return Fit{}, ErrTooFewPoints
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, ErrTooFewPoints
	}
	alpha := sxy / sxx
	beta := my - alpha*mx

	var sse float64
	for i := 0; i < n; i++ {
		r := y[i] - (alpha*x[i] + beta)
		sse += r * r
	}
	fit := Fit{Alpha: alpha, Beta: beta, N: n}
	// Guard against catastrophic cancellation on (near-)constant y: below
	// this variance the fit explains everything that is explainable.
	if syy > 1e-20 {
		fit.R2 = 1 - sse/syy
	} else {
		fit.R2 = 1
	}
	if n > 2 {
		s2 := sse / float64(n-2)
		fit.Residual = math.Sqrt(s2)
		fit.SEAlpha = math.Sqrt(s2 / sxx)
		fit.SEBeta = math.Sqrt(s2 * (1/float64(n) + mx*mx/sxx))
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f Fit) Predict(x float64) float64 { return f.Alpha*x + f.Beta }

// ConfidenceInterval returns the (lo, hi) confidence interval of the slope
// at the given level (e.g. 0.90 for the paper's 90% interval). It requires
// n > 2; with n <= 2 the interval is degenerate at the estimate.
func (f Fit) ConfidenceInterval(level float64) (lo, hi float64) {
	if f.N <= 2 || f.SEAlpha == 0 {
		return f.Alpha, f.Alpha
	}
	t := stats.StudentTQuantile(1-(1-level)/2, float64(f.N-2))
	return f.Alpha - t*f.SEAlpha, f.Alpha + t*f.SEAlpha
}

// InterceptConfidenceInterval is ConfidenceInterval for the intercept.
func (f Fit) InterceptConfidenceInterval(level float64) (lo, hi float64) {
	if f.N <= 2 || f.SEBeta == 0 {
		return f.Beta, f.Beta
	}
	t := stats.StudentTQuantile(1-(1-level)/2, float64(f.N-2))
	return f.Beta - t*f.SEBeta, f.Beta + t*f.SEBeta
}

// SlopePValue returns the two-sided p-value of H0: alpha = 0, the
// statistical-significance test behind the paper's "linear relationship ...
// with 90% statistical significance" claim.
func (f Fit) SlopePValue() float64 {
	if f.N <= 2 || f.SEAlpha == 0 {
		return 0
	}
	t := math.Abs(f.Alpha / f.SEAlpha)
	return 2 * (1 - stats.StudentTCDF(t, float64(f.N-2)))
}

// SignificantAt reports whether the slope differs from zero at the given
// significance level (e.g. 0.10 for 90% confidence).
func (f Fit) SignificantAt(level float64) bool {
	return f.SlopePValue() < level
}
