package synth

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// This file gives generated workloads a stable on-disk form, so a sequence
// that provoked a failure (or one a conformance run minimized) can be
// saved, attached to a bug report, and replayed bit-for-bit later without
// regenerating it from a seed.

// traceFormatVersion guards the JSON layout; bump it on incompatible
// changes so old artifacts fail loudly instead of decoding garbage.
const traceFormatVersion = 1

// traceEnvelope is the on-disk form of an event sequence.
type traceEnvelope struct {
	Version int          `json:"version"`
	Events  []traceEvent `json:"events"`
}

// traceEvent flattens a WorkloadEvent into explicit JSON fields: offsets in
// nanoseconds, kinds as strings, request parameters inline.
type traceEvent struct {
	AtNS         int64   `json:"at_ns"`
	Kind         string  `json:"kind"`
	ID           string  `json:"id,omitempty"`
	Quality      float64 `json:"quality,omitempty"`
	Cost         float64 `json:"cost,omitempty"`
	Latency      float64 `json:"latency,omitempty"`
	K            int     `json:"k,omitempty"`
	Availability float64 `json:"availability,omitempty"`
}

// WriteTrace encodes an event sequence as versioned JSON.
func WriteTrace(w io.Writer, events []WorkloadEvent) error {
	env := traceEnvelope{Version: traceFormatVersion, Events: make([]traceEvent, len(events))}
	for i, ev := range events {
		te := traceEvent{AtNS: int64(ev.At), Kind: ev.Kind.String()}
		switch ev.Kind {
		case SubmitArrival:
			te.ID = ev.Request.ID
			te.Quality = ev.Request.Quality
			te.Cost = ev.Request.Cost
			te.Latency = ev.Request.Latency
			te.K = ev.Request.K
		case RevokeArrival:
			te.ID = ev.RevokeID
		case DriftArrival:
			te.Availability = ev.Availability
		default:
			return fmt.Errorf("synth: cannot encode event %d of kind %v", i, ev.Kind)
		}
		env.Events[i] = te
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// ReadTrace decodes a sequence written by WriteTrace. Offsets, kinds and
// request parameters round-trip exactly (encoding/json preserves float64).
func ReadTrace(r io.Reader) ([]WorkloadEvent, error) {
	var env traceEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("synth: decoding trace: %w", err)
	}
	if env.Version != traceFormatVersion {
		return nil, fmt.Errorf("synth: trace version %d, this build reads %d", env.Version, traceFormatVersion)
	}
	events := make([]WorkloadEvent, len(env.Events))
	for i, te := range env.Events {
		ev := WorkloadEvent{At: time.Duration(te.AtNS)}
		switch te.Kind {
		case SubmitArrival.String():
			ev.Kind = SubmitArrival
			ev.Request.ID = te.ID
			ev.Request.Quality = te.Quality
			ev.Request.Cost = te.Cost
			ev.Request.Latency = te.Latency
			ev.Request.K = te.K
		case RevokeArrival.String():
			ev.Kind = RevokeArrival
			ev.RevokeID = te.ID
		case DriftArrival.String():
			ev.Kind = DriftArrival
			ev.Availability = te.Availability
		default:
			return nil, fmt.Errorf("synth: trace event %d has unknown kind %q", i, te.Kind)
		}
		events[i] = ev
	}
	return events, nil
}
