package synth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stratrec/internal/strategy"
	"stratrec/internal/workforce"
)

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Normal.String() != "normal" {
		t.Error("distribution strings")
	}
	if Distribution(9).String() == "" {
		t.Error("unknown distribution string empty")
	}
}

func TestStrategiesWithinRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dist := range []Distribution{Uniform, Normal} {
		cfg := DefaultConfig(dist)
		set := cfg.Strategies(rng, 500)
		if err := set.Validate(); err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		for _, s := range set {
			// Normalized dimension values live in [0.5, 1]: quality in
			// [0, 0.5], cost and latency in [0.5, 1].
			if s.Quality < 0 || s.Quality > 0.5 {
				t.Fatalf("%v: quality %v outside [0, 0.5]", dist, s.Quality)
			}
			if s.Cost < 0.5 || s.Cost > 1 || s.Latency < 0.5 || s.Latency > 1 {
				t.Fatalf("%v: cost/latency out of range: %+v", dist, s.Params)
			}
		}
	}
}

func TestNormalConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig(Normal)
	set := cfg.Strategies(rng, 2000)
	var sum, sum2 float64
	for _, s := range set {
		sum += s.Cost
		sum2 += s.Cost * s.Cost
	}
	n := float64(len(set))
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-0.75) > 0.02 {
		t.Errorf("normal cost mean = %v, want ~0.75", mean)
	}
	if std > 0.12 {
		t.Errorf("normal cost std = %v, want ~0.1", std)
	}
}

func TestRequestsWithinRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultConfig(Uniform)
	reqs := cfg.Requests(rng, 100, 7)
	if len(reqs) != 100 {
		t.Fatalf("len = %d", len(reqs))
	}
	for _, d := range reqs {
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if d.K != 7 {
			t.Errorf("K = %d", d.K)
		}
		if d.Cost < 0.625 || d.Cost > 1 || d.Latency < 0.625 || d.Latency > 1 {
			t.Errorf("thresholds out of range: %+v", d.Params)
		}
		if d.Quality < 0 || d.Quality > 0.375 {
			t.Errorf("quality threshold %v outside [0, 0.375]", d.Quality)
		}
	}
}

func TestADPaRRequestIsTight(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultConfig(Uniform)
	d := cfg.ADPaRRequest(rng, 5)
	if d.K != 5 {
		t.Errorf("K = %d", d.K)
	}
	if d.Cost > 0.5 || d.Latency > 0.5 || d.Quality < 0.5 {
		t.Errorf("ADPaR request not tight: %+v", d.Params)
	}
}

func TestModelsConsistentWithSatisfaction(t *testing.T) {
	// The key generator invariant: a strategy's workforce requirement for
	// a request is finite iff the strategy satisfies the request at full
	// availability.
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig(Uniform)
	set := cfg.Strategies(rng, 60)
	models := cfg.Models(rng, set)
	reqs := cfg.Requests(rng, 20, 1)
	for _, d := range reqs {
		for j, s := range set {
			req := models[j].Requirement(d.Params)
			satisfies := strategy.Satisfies(s.Params, d.Params)
			if satisfies != !math.IsInf(req, 1) {
				t.Fatalf("strategy %d request %+v: satisfies=%v requirement=%v",
					j, d.Params, satisfies, req)
			}
		}
	}
}

func TestModelsFullAvailabilityRecoversParams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := DefaultConfig(Normal)
	set := cfg.Strategies(rng, 50)
	models := cfg.Models(rng, set)
	for j, s := range set {
		p := models[j].ParamsAt(1)
		if math.Abs(p.Quality-s.Quality) > 1e-9 ||
			math.Abs(p.Cost-s.Cost) > 1e-9 ||
			math.Abs(p.Latency-s.Latency) > 1e-9 {
			t.Fatalf("strategy %d params at w=1: %+v != %+v", j, p, s.Params)
		}
	}
}

func TestModelsDegradeAwayFromFullAvailability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultConfig(Uniform)
	set := cfg.Strategies(rng, 50)
	models := cfg.Models(rng, set)
	for j := range set {
		lo := models[j].ParamsAt(0.2)
		hi := models[j].ParamsAt(0.9)
		if lo.Quality > hi.Quality+1e-12 {
			t.Fatalf("quality should improve with availability: %v > %v", lo.Quality, hi.Quality)
		}
		if lo.Cost < hi.Cost-1e-12 || lo.Latency < hi.Latency-1e-12 {
			t.Fatalf("cost/latency should fall with availability")
		}
	}
}

func TestInstanceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := DefaultConfig(Uniform)
	inst := cfg.Instance(rng, 40, 7, 3)
	if len(inst.Strategies) != 40 || len(inst.Requests) != 7 || len(inst.Models) != 40 {
		t.Fatalf("instance shape: %d strategies, %d requests, %d models",
			len(inst.Strategies), len(inst.Requests), len(inst.Models))
	}
	if _, err := workforce.Compute(inst.Requests, inst.Strategies, inst.Models); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRequirementWithinUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := DefaultConfig(Uniform)
	f := func() bool {
		set := cfg.Strategies(rng, 10)
		models := cfg.Models(rng, set)
		d := cfg.Requests(rng, 1, 1)[0]
		for j := range set {
			req := models[j].Requirement(d.Params)
			if math.IsInf(req, 1) {
				continue
			}
			if req < 0 || req > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNormalSatisfiesAtLeastUniformOnAverage(t *testing.T) {
	// Figure 14's qualitative finding: the concentrated normal generator
	// yields more satisfying strategies per request than the uniform one.
	rng := rand.New(rand.NewSource(10))
	count := func(dist Distribution) int {
		cfg := DefaultConfig(dist)
		total := 0
		for trial := 0; trial < 30; trial++ {
			set := cfg.Strategies(rng, 200)
			for _, d := range cfg.Requests(rng, 5, 1) {
				total += len(set.Satisfying(d))
			}
		}
		return total
	}
	u := count(Uniform)
	n := count(Normal)
	if n <= u*9/10 {
		t.Errorf("normal satisfaction count %d not >= uniform %d (within 10%%)", n, u)
	}
}
