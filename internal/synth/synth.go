// Package synth generates the synthetic workloads of Section 5.2.2:
// strategy sets whose normalized dimension values follow uniform or normal
// distributions, deployment requests with thresholds in [0.625, 1], and
// per-strategy availability-response models with alpha drawn from [0.5, 1]
// and beta = 1 - alpha, "in consistence with the real data experiments".
//
// Where the paper under-specifies the generator, this package makes the
// choices documented in DESIGN.md: dimension values are interpreted in the
// Section-4 normalized smaller-is-better space (so a request threshold is
// an upper bound on every dimension), and the availability response scales
// a strategy's distance from its full-availability parameters: parameter
// p of strategy j at availability w is
//
//	p_j(w) = v_jp + alpha_jp * (1 - w) * (1 - v_jp)
//
// i.e. at w = 1 the strategy delivers its advertised value v_jp and as the
// workforce thins every parameter degrades linearly toward 1. This keeps
// the satisfaction predicate and the workforce requirement consistent: a
// strategy can possibly serve a request iff it satisfies it at full
// availability, and the requirement grows as the margin shrinks.
package synth

import (
	"fmt"
	"math/rand"

	"stratrec/internal/linmodel"
	"stratrec/internal/stats"
	"stratrec/internal/strategy"
	"stratrec/internal/workforce"
)

// Distribution selects the strategy dimension-value generator.
type Distribution int

const (
	// Uniform draws dimension values from U[StrategyLo, StrategyHi].
	Uniform Distribution = iota
	// Normal draws from N(NormalMean, NormalStd) truncated to
	// [StrategyLo, StrategyHi].
	Normal
)

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Normal:
		return "normal"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// Config holds the generator parameters. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	Dist Distribution

	// StrategyLo/Hi bound normalized strategy dimension values ([0.5, 1]
	// in the paper).
	StrategyLo, StrategyHi float64
	// NormalMean/Std parameterize the normal generator (0.75 and 0.1).
	NormalMean, NormalStd float64
	// RequestLo/Hi bound normalized request thresholds ([0.625, 1]).
	RequestLo, RequestHi float64
	// ADPaRLo/Hi bound request thresholds for ADPaR instances. ADPaR is
	// exercised on requests too tight to satisfy, so these default to
	// [0, 0.5].
	ADPaRLo, ADPaRHi float64
	// AlphaLo/Hi bound the availability-response slope ([0.5, 1]).
	AlphaLo, AlphaHi float64
}

// DefaultConfig returns the Section 5.2.2 settings for a distribution.
func DefaultConfig(dist Distribution) Config {
	return Config{
		Dist:       dist,
		StrategyLo: 0.5, StrategyHi: 1,
		NormalMean: 0.75, NormalStd: 0.1,
		RequestLo: 0.625, RequestHi: 1,
		ADPaRLo: 0, ADPaRHi: 0.5,
		AlphaLo: 0.5, AlphaHi: 1,
	}
}

// dimValue draws one normalized dimension value.
func (c Config) dimValue(rng *rand.Rand) float64 {
	if c.Dist == Normal {
		return stats.TruncNormal(rng, c.NormalMean, c.NormalStd, c.StrategyLo, c.StrategyHi)
	}
	return stats.Uniform(rng, c.StrategyLo, c.StrategyHi)
}

// Strategies generates n strategies. Dimension values are drawn in the
// normalized space and converted back to original parameters (quality is
// de-inverted); the Structure/Organization/Style labels cycle through the
// eight combinations.
func (c Config) Strategies(rng *rand.Rand, n int) strategy.Set {
	dims := strategy.AllDimensions()
	set := make(strategy.Set, n)
	for i := 0; i < n; i++ {
		v0, v1, v2 := c.dimValue(rng), c.dimValue(rng), c.dimValue(rng)
		set[i] = strategy.Strategy{
			ID:     i,
			Dims:   dims[i%len(dims)],
			Params: strategy.Params{Quality: 1 - v0, Cost: v1, Latency: v2},
		}
	}
	return set
}

// Requests generates m deployment requests with cardinality constraint k,
// thresholds drawn from U[RequestLo, RequestHi] in normalized space.
func (c Config) Requests(rng *rand.Rand, m, k int) []strategy.Request {
	return c.requestsIn(rng, m, k, c.RequestLo, c.RequestHi)
}

// ADPaRRequest generates one deliberately tight request (thresholds in
// U[ADPaRLo, ADPaRHi]) of the kind that falls through to the ADPaR module.
func (c Config) ADPaRRequest(rng *rand.Rand, k int) strategy.Request {
	return c.requestsIn(rng, 1, k, c.ADPaRLo, c.ADPaRHi)[0]
}

func (c Config) requestsIn(rng *rand.Rand, m, k int, lo, hi float64) []strategy.Request {
	reqs := make([]strategy.Request, m)
	for i := range reqs {
		u0 := stats.Uniform(rng, lo, hi)
		u1 := stats.Uniform(rng, lo, hi)
		u2 := stats.Uniform(rng, lo, hi)
		reqs[i] = strategy.Request{
			ID:     fmt.Sprintf("d%d", i+1),
			Params: strategy.Params{Quality: 1 - u0, Cost: u1, Latency: u2},
			K:      k,
		}
	}
	return reqs
}

// Models generates the per-strategy availability-response models for a
// generated set. For every parameter p with full-availability value v (in
// normalized space), the response p(w) = v + alpha*(1-w)*(1-v) converts to
// the original space as documented in the package comment.
func (c Config) Models(rng *rand.Rand, set strategy.Set) workforce.PerStrategyModels {
	models := make(workforce.PerStrategyModels, len(set))
	for i, s := range set {
		models[i] = linmodel.ParamModels{
			Quality: qualityResponse(s.Quality, stats.Uniform(rng, c.AlphaLo, c.AlphaHi)),
			Cost:    degradingResponse(s.Cost, stats.Uniform(rng, c.AlphaLo, c.AlphaHi)),
			Latency: degradingResponse(s.Latency, stats.Uniform(rng, c.AlphaLo, c.AlphaHi)),
		}
	}
	return models
}

// qualityResponse maps a full-availability quality q1 to an increasing
// model: in normalized space the inverted quality degrades toward 1 as w
// falls, so quality(w) = q1*(1 - alpha*(1-w)) = q1*alpha*w + q1*(1-alpha).
func qualityResponse(q1, alpha float64) linmodel.Model {
	return linmodel.Model{Alpha: q1 * alpha, Beta: q1 * (1 - alpha)}
}

// degradingResponse maps a full-availability value v (cost or latency,
// lower-is-better) to a decreasing model: v(w) = v + alpha*(1-w)*(1-v),
// i.e. Alpha = -alpha*(1-v), Beta = v + alpha*(1-v).
func degradingResponse(v, alpha float64) linmodel.Model {
	return linmodel.Model{Alpha: -alpha * (1 - v), Beta: v + alpha*(1-v)}
}

// Instance is a complete synthetic batch-deployment instance.
type Instance struct {
	Strategies strategy.Set
	Requests   []strategy.Request
	Models     workforce.PerStrategyModels
}

// Instance generates a full batch instance with n strategies, m requests
// and cardinality constraint k.
func (c Config) Instance(rng *rand.Rand, n, m, k int) Instance {
	set := c.Strategies(rng, n)
	return Instance{
		Strategies: set,
		Requests:   c.Requests(rng, m, k),
		Models:     c.Models(rng, set),
	}
}
