package synth

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	cfg := DefaultConfig(Uniform)
	events, err := cfg.Workload(rand.New(rand.NewSource(42)), WorkloadConfig{
		Events:         300,
		K:              3,
		Rate:           150,
		RevokeFraction: 0.3,
		DriftFraction:  0.1,
		TightFraction:  0.4,
		IDPrefix:       "rt-",
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip changed length: %d -> %d", len(events), len(got))
	}
	for i := range events {
		if events[i] != got[i] {
			t.Fatalf("event %d changed in round trip:\n  wrote %+v\n  read  %+v", i, events[i], got[i])
		}
	}
}

func TestTraceRejectsUnknownVersion(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(`{"version": 99, "events": []}`)); err == nil {
		t.Fatal("version 99 accepted")
	}
}

func TestTraceRejectsUnknownKind(t *testing.T) {
	in := `{"version": 1, "events": [{"at_ns": 0, "kind": "explode"}]}`
	if _, err := ReadTrace(strings.NewReader(in)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
