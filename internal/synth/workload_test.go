package synth

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestWorkloadSelfConsistent(t *testing.T) {
	cfg := DefaultConfig(Uniform)
	rng := rand.New(rand.NewSource(7))
	wc := WorkloadConfig{
		Events:         500,
		K:              3,
		Rate:           200,
		RevokeFraction: 0.25,
		DriftFraction:  0.1,
		TightFraction:  0.3,
		IDPrefix:       "w-",
	}
	events, err := cfg.Workload(rng, wc)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != wc.Events {
		t.Fatalf("generated %d events, want %d", len(events), wc.Events)
	}

	open := map[string]bool{}
	counts := map[EventKind]int{}
	var last time.Duration
	for i, ev := range events {
		if ev.At < last {
			t.Fatalf("event %d: offset %v before %v", i, ev.At, last)
		}
		last = ev.At
		counts[ev.Kind]++
		switch ev.Kind {
		case SubmitArrival:
			if ev.Request.ID == "" || ev.Request.K != wc.K {
				t.Fatalf("event %d: malformed request %+v", i, ev.Request)
			}
			if err := ev.Request.Validate(); err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
			if open[ev.Request.ID] {
				t.Fatalf("event %d: duplicate open ID %s", i, ev.Request.ID)
			}
			open[ev.Request.ID] = true
		case RevokeArrival:
			if !open[ev.RevokeID] {
				t.Fatalf("event %d: revoke of unknown/closed ID %q", i, ev.RevokeID)
			}
			delete(open, ev.RevokeID)
		case DriftArrival:
			if ev.Availability < 0.2 || ev.Availability > 1 {
				t.Fatalf("event %d: drift availability %v outside default band", i, ev.Availability)
			}
		}
	}
	for _, kind := range []EventKind{SubmitArrival, RevokeArrival, DriftArrival} {
		if counts[kind] == 0 {
			t.Errorf("no %v events in 500 arrivals", kind)
		}
	}
	// Fractions land in the right neighborhood (loose bounds; revokes can
	// be skipped when nothing is open).
	if f := float64(counts[RevokeArrival]) / 500; f < 0.1 || f > 0.4 {
		t.Errorf("revoke fraction = %v", f)
	}
	if f := float64(counts[DriftArrival]) / 500; f < 0.03 || f > 0.25 {
		t.Errorf("drift fraction = %v", f)
	}
}

func TestWorkloadPoissonSpacing(t *testing.T) {
	cfg := DefaultConfig(Uniform)
	rng := rand.New(rand.NewSource(11))
	rate := 100.0
	events, err := cfg.Workload(rng, WorkloadConfig{Events: 4000, K: 1, Rate: rate})
	if err != nil {
		t.Fatal(err)
	}
	// Mean inter-arrival of a Poisson(rate) process is 1/rate seconds.
	mean := events[len(events)-1].At.Seconds() / float64(len(events)-1)
	if math.Abs(mean-1/rate) > 0.2/rate {
		t.Errorf("mean inter-arrival = %vs, want ~%vs", mean, 1/rate)
	}
}

func TestWorkloadZeroRateAndDeterminism(t *testing.T) {
	cfg := DefaultConfig(Uniform)
	a, errA := cfg.Workload(rand.New(rand.NewSource(3)), WorkloadConfig{Events: 50, K: 2, TightFraction: 1})
	b, errB := cfg.Workload(rand.New(rand.NewSource(3)), WorkloadConfig{Events: 50, K: 2, TightFraction: 1})
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != 0 {
			t.Fatalf("event %d: zero-rate offset %v", i, a[i].At)
		}
		if a[i].Kind != b[i].Kind || a[i].Request != b[i].Request {
			t.Fatalf("event %d differs across identical seeds", i)
		}
	}
	if got, err := cfg.Workload(rand.New(rand.NewSource(1)), WorkloadConfig{}); err == nil {
		t.Errorf("empty config produced %d events and no error", len(got))
	}
}

func TestWorkloadConfigValidation(t *testing.T) {
	cfg := DefaultConfig(Uniform)
	rng := func() *rand.Rand { return rand.New(rand.NewSource(1)) }
	nan := math.NaN()
	cases := []struct {
		name string
		wc   WorkloadConfig
		want error
	}{
		{"zero events", WorkloadConfig{}, ErrNoEvents},
		{"negative events", WorkloadConfig{Events: -5}, ErrNoEvents},
		{"negative rate", WorkloadConfig{Events: 10, Rate: -1}, ErrBadRate},
		{"nan rate", WorkloadConfig{Events: 10, Rate: nan}, ErrBadRate},
		{"negative k", WorkloadConfig{Events: 10, K: -1}, ErrBadK},
		{"negative revoke fraction", WorkloadConfig{Events: 10, RevokeFraction: -0.1}, ErrBadFraction},
		{"revoke fraction above one", WorkloadConfig{Events: 10, RevokeFraction: 1.5}, ErrBadFraction},
		{"nan drift fraction", WorkloadConfig{Events: 10, DriftFraction: nan}, ErrBadFraction},
		{"nan tight fraction", WorkloadConfig{Events: 10, TightFraction: nan}, ErrBadFraction},
		{"revoke plus drift above one", WorkloadConfig{Events: 10, RevokeFraction: 0.7, DriftFraction: 0.7}, ErrBadFraction},
		{"inverted drift bounds", WorkloadConfig{Events: 10, DriftLo: 0.9, DriftHi: 0.3}, ErrBadDriftBounds},
		{"drift hi above one", WorkloadConfig{Events: 10, DriftLo: 0.5, DriftHi: 1.5}, ErrBadDriftBounds},
		{"negative drift lo", WorkloadConfig{Events: 10, DriftLo: -0.2, DriftHi: 0.5}, ErrBadDriftBounds},
		{"nan drift bound", WorkloadConfig{Events: 10, DriftLo: nan, DriftHi: 0.5}, ErrBadDriftBounds},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			events, err := cfg.Workload(rng(), tc.wc)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Workload error = %v, want %v", err, tc.want)
			}
			if events != nil {
				t.Fatalf("invalid config still produced %d events", len(events))
			}
		})
	}

	// The documented zero-value modes stay valid: zero rate (replay as
	// fast as possible), zero K (defaults to 1), zero drift bounds
	// (default band).
	ok := WorkloadConfig{Events: 10}
	if err := ok.Validate(); err != nil {
		t.Fatalf("minimal valid config rejected: %v", err)
	}
	events, err := cfg.Workload(rng(), ok)
	if err != nil || len(events) != 10 {
		t.Fatalf("minimal valid config: %d events, err %v", len(events), err)
	}
}

func TestWorkloadIDPrefixNamespaces(t *testing.T) {
	cfg := DefaultConfig(Uniform)
	a, errA := cfg.Workload(rand.New(rand.NewSource(5)), WorkloadConfig{Events: 20, K: 1, IDPrefix: "a-"})
	b, errB := cfg.Workload(rand.New(rand.NewSource(5)), WorkloadConfig{Events: 20, K: 1, IDPrefix: "b-"})
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	seen := map[string]bool{}
	for _, evs := range [][]WorkloadEvent{a, b} {
		for _, ev := range evs {
			if ev.Kind != SubmitArrival {
				continue
			}
			if seen[ev.Request.ID] {
				t.Fatalf("ID %s collides across prefixed workloads", ev.Request.ID)
			}
			seen[ev.Request.ID] = true
		}
	}
}
