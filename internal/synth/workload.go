package synth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"stratrec/internal/stats"
	"stratrec/internal/strategy"
)

// EventKind classifies one arrival in a dynamic deployment workload.
type EventKind int

const (
	// SubmitArrival: a requester submits a new deployment request.
	SubmitArrival EventKind = iota
	// RevokeArrival: a requester withdraws a previously submitted, still
	// open request.
	RevokeArrival
	// DriftArrival: the platform's expected worker availability moves.
	DriftArrival
)

func (k EventKind) String() string {
	switch k {
	case SubmitArrival:
		return "submit"
	case RevokeArrival:
		return "revoke"
	case DriftArrival:
		return "drift"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// WorkloadEvent is one timed arrival of the online deployment setting: the
// stream of submissions, revocations and availability drift the paper's
// conclusion poses as the fully dynamic regime.
type WorkloadEvent struct {
	// At is the arrival offset from the workload start. Offsets are
	// non-decreasing; consecutive gaps are exponential, so arrivals form
	// a Poisson process of the configured rate.
	At   time.Duration
	Kind EventKind
	// Request is the submitted request (SubmitArrival only).
	Request strategy.Request
	// RevokeID is the withdrawn request's ID (RevokeArrival only). It
	// always names a request submitted by an earlier event of the same
	// workload and not yet revoked.
	RevokeID string
	// Availability is the new expected workforce (DriftArrival only).
	Availability float64
}

// WorkloadConfig parameterizes Workload.
type WorkloadConfig struct {
	// Events is the total number of arrivals to generate.
	Events int
	// K is the cardinality constraint of every generated request.
	K int
	// Rate is the Poisson arrival rate in events per second. Zero or
	// negative collapses all arrivals to offset 0 (replay as fast as
	// possible).
	Rate float64
	// RevokeFraction is the probability an arrival revokes an open
	// request (skipped when nothing is open).
	RevokeFraction float64
	// DriftFraction is the probability an arrival moves availability.
	DriftFraction float64
	// TightFraction is the probability a submission draws its thresholds
	// from the ADPaR band (too tight to satisfy), exercising the
	// alternative-recommendation path. The rest draw from the regular
	// request band.
	TightFraction float64
	// DriftLo/DriftHi bound drifted availability values; both zero
	// defaults to [0.2, 1].
	DriftLo, DriftHi float64
	// IDPrefix namespaces request IDs ("w3-" gives w3-1, w3-2, ...), so
	// several independently generated workloads can replay against the
	// same tenant without colliding.
	IDPrefix string
}

// Validation sentinels for WorkloadConfig. Each names one way a config
// would previously have produced an empty or degenerate workload silently.
var (
	// ErrNoEvents rejects a non-positive event count (an empty workload).
	ErrNoEvents = errors.New("synth: workload needs a positive event count")
	// ErrBadRate rejects a negative or NaN arrival rate, which would walk
	// the Poisson clock backwards. Zero stays the documented
	// replay-as-fast-as-possible mode.
	ErrBadRate = errors.New("synth: negative or NaN arrival rate")
	// ErrBadFraction rejects event-mix fractions outside [0,1] (NaN
	// included) or a revoke+drift mass above 1, which would starve
	// submissions entirely.
	ErrBadFraction = errors.New("synth: event fractions must lie in [0,1] and leave room for submissions")
	// ErrBadDriftBounds rejects drift availability bounds outside [0,1] or
	// inverted (lo > hi). Both zero keeps the documented [0.2, 1] default.
	ErrBadDriftBounds = errors.New("synth: drift bounds must satisfy 0 <= lo <= hi <= 1")
	// ErrBadK rejects a negative cardinality constraint. Zero keeps the
	// documented default of 1.
	ErrBadK = errors.New("synth: negative cardinality constraint")
)

// Validate checks the config without generating anything. Workload calls
// it; callers that build configs from user input can call it early to fail
// before spinning up workers.
func (wc WorkloadConfig) Validate() error {
	if wc.Events <= 0 {
		return fmt.Errorf("%w: got %d", ErrNoEvents, wc.Events)
	}
	if wc.Rate < 0 || math.IsNaN(wc.Rate) {
		return fmt.Errorf("%w: got %v", ErrBadRate, wc.Rate)
	}
	if wc.K < 0 {
		return fmt.Errorf("%w: got %d", ErrBadK, wc.K)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"revoke", wc.RevokeFraction},
		{"drift", wc.DriftFraction},
		{"tight", wc.TightFraction},
	} {
		if f.v < 0 || f.v > 1 || math.IsNaN(f.v) {
			return fmt.Errorf("%w: %s fraction %v", ErrBadFraction, f.name, f.v)
		}
	}
	if wc.RevokeFraction+wc.DriftFraction > 1 {
		return fmt.Errorf("%w: revoke %v + drift %v > 1",
			ErrBadFraction, wc.RevokeFraction, wc.DriftFraction)
	}
	if wc.DriftLo != 0 || wc.DriftHi != 0 {
		if wc.DriftLo < 0 || wc.DriftHi > 1 || wc.DriftLo > wc.DriftHi ||
			math.IsNaN(wc.DriftLo) || math.IsNaN(wc.DriftHi) {
			return fmt.Errorf("%w: [%v, %v]", ErrBadDriftBounds, wc.DriftLo, wc.DriftHi)
		}
	}
	return nil
}

// Workload generates a timed Poisson event sequence for the dynamic
// deployment setting. The sequence is self-consistent: every revocation
// targets a request an earlier event submitted that no later event already
// revoked, so replaying events in order against a stream.Manager never
// trips ErrUnknownID. Generation is deterministic in rng.
//
// Invalid configs are rejected with the Validate sentinels rather than
// silently producing empty or degenerate sequences.
func (c Config) Workload(rng *rand.Rand, wc WorkloadConfig) ([]WorkloadEvent, error) {
	if err := wc.Validate(); err != nil {
		return nil, err
	}
	k := wc.K
	if k < 1 {
		k = 1
	}
	driftLo, driftHi := wc.DriftLo, wc.DriftHi
	if driftLo == 0 && driftHi == 0 {
		driftLo, driftHi = 0.2, 1
	}

	events := make([]WorkloadEvent, 0, wc.Events)
	var (
		clock  time.Duration
		nextID int
		open   []string // IDs submitted and not yet revoked
	)
	for len(events) < wc.Events {
		if wc.Rate > 0 {
			clock += time.Duration(rng.ExpFloat64() / wc.Rate * float64(time.Second))
		}
		ev := WorkloadEvent{At: clock}
		switch u := rng.Float64(); {
		// An unusable revoke draw (empty pool) falls through to submit,
		// not drift, so the drift rate stays DriftFraction regardless of
		// pool occupancy.
		case u < wc.RevokeFraction && len(open) > 0:
			victim := rng.Intn(len(open))
			ev.Kind = RevokeArrival
			ev.RevokeID = open[victim]
			open[victim] = open[len(open)-1]
			open = open[:len(open)-1]
		case u >= wc.RevokeFraction && u < wc.RevokeFraction+wc.DriftFraction:
			ev.Kind = DriftArrival
			ev.Availability = stats.Uniform(rng, driftLo, driftHi)
		default:
			nextID++
			var d strategy.Request
			if rng.Float64() < wc.TightFraction {
				d = c.ADPaRRequest(rng, k)
			} else {
				d = c.Requests(rng, 1, k)[0]
			}
			d.ID = fmt.Sprintf("%s%d", wc.IDPrefix, nextID)
			ev.Kind = SubmitArrival
			ev.Request = d
			open = append(open, d.ID)
		}
		events = append(events, ev)
	}
	return events, nil
}
