// Package linmodel implements the deployment strategy modeling of Section
// 3.1: every (strategy, deployment, parameter) combination carries a linear
// model p = alpha*w + beta mapping worker availability w in [0,1] to an
// estimated parameter value, plus the inverse mapping used by the workforce
// requirement computation of Section 3.2.
//
// The paper computes the workforce requirement as the maximum of the three
// per-parameter equality solutions w_p = (threshold_p - beta)/alpha. That
// formula implicitly assumes every constraint tightens as availability
// grows scarce (i.e. every constraint is a lower bound on w). This package
// generalizes it: each constraint induces a feasible availability interval,
// and the requirement is the lower end of the intersection — identical to
// the paper's value on the paper's model shapes, and still correct when a
// constraint (such as a cost budget under a cost-increases-with-availability
// model) caps availability from above.
package linmodel

import (
	"fmt"
	"math"

	"stratrec/internal/strategy"
)

// Infeasible is the workforce requirement of a threshold combination that
// cannot be met with any availability in [0,1].
var Infeasible = math.Inf(1)

// Direction says which way a deployment threshold bounds a parameter.
type Direction int

const (
	// LowerBound means the strategy parameter must be at least the
	// threshold (quality).
	LowerBound Direction = iota
	// UpperBound means the strategy parameter must be at most the
	// threshold (cost, latency).
	UpperBound
)

// Interval is a closed availability interval [Lo, Hi] within [0,1]. An
// empty interval has Lo > Hi.
type Interval struct {
	Lo, Hi float64
}

// Empty reports whether no availability satisfies the constraint.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Lo: math.Max(iv.Lo, other.Lo), Hi: math.Min(iv.Hi, other.Hi)}
}

// emptyInterval is the canonical empty interval.
var emptyInterval = Interval{Lo: 1, Hi: 0}

// full is the unconstrained interval.
var fullInterval = Interval{Lo: 0, Hi: 1}

// Model is a linear parameter model p(w) = Alpha*w + Beta.
type Model struct {
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
}

// At evaluates the model at availability w, clamped into [0,1] so estimates
// remain valid normalized parameters.
func (m Model) At(w float64) float64 {
	return clamp01(m.Alpha*w + m.Beta)
}

// AtRaw evaluates the model without clamping. Used by fitting code and
// tests that need the unclamped line.
func (m Model) AtRaw(w float64) float64 { return m.Alpha*w + m.Beta }

// FeasibleInterval returns the availability interval on which the modeled
// parameter meets the threshold in the given direction.
func (m Model) FeasibleInterval(threshold float64, dir Direction) Interval {
	meets := func(v float64) bool {
		if dir == LowerBound {
			return v >= threshold
		}
		return v <= threshold
	}
	m0, m1 := meets(m.AtRaw(0)), meets(m.AtRaw(1))
	switch {
	case m0 && m1:
		return fullInterval
	case !m0 && !m1:
		return emptyInterval
	}
	// The line crosses the threshold exactly once in (0,1).
	cross := clamp01((threshold - m.Beta) / m.Alpha)
	if m0 {
		return Interval{Lo: 0, Hi: cross}
	}
	return Interval{Lo: cross, Hi: 1}
}

// WorkforceFor returns the minimum availability w in [0,1] for which the
// modeled parameter meets the threshold, or Infeasible if none does. This
// is the paper's "solve Equation 4 for w under the equality condition" step
// with the boundary cases made explicit.
func (m Model) WorkforceFor(threshold float64, dir Direction) float64 {
	iv := m.FeasibleInterval(threshold, dir)
	if iv.Empty() {
		return Infeasible
	}
	return iv.Lo
}

// ParamModels bundles the three per-parameter models of one (strategy,
// deployment) combination.
type ParamModels struct {
	Quality Model `json:"quality"`
	Cost    Model `json:"cost"`
	Latency Model `json:"latency"`
}

// ParamsAt estimates the strategy parameters at availability w (Equation 4
// applied to all three parameters).
func (pm ParamModels) ParamsAt(w float64) strategy.Params {
	return strategy.Params{
		Quality: pm.Quality.At(w),
		Cost:    pm.Cost.At(w),
		Latency: pm.Latency.At(w),
	}
}

// FeasibleInterval intersects the three per-parameter feasibility
// intervals for deployment thresholds d.
func (pm ParamModels) FeasibleInterval(d strategy.Params) Interval {
	iv := pm.Quality.FeasibleInterval(d.Quality, LowerBound)
	iv = iv.Intersect(pm.Cost.FeasibleInterval(d.Cost, UpperBound))
	return iv.Intersect(pm.Latency.FeasibleInterval(d.Latency, UpperBound))
}

// Requirement computes the workforce requirement w_ij of deploying request
// d with this model set: the smallest availability at which all three
// thresholds hold simultaneously (the lower end of the intersected feasible
// intervals), or Infeasible when no availability in [0,1] works. On the
// paper's model shapes — quality and cost non-decreasing, latency
// non-increasing, budget loose at the requirement — this equals the
// paper's max(w_q, w_c, w_l) (Section 3.2, Figure 3a).
func (pm ParamModels) Requirement(d strategy.Params) float64 {
	iv := pm.FeasibleInterval(d)
	if iv.Empty() {
		return Infeasible
	}
	return iv.Lo
}

// Breakdown reports the three per-parameter minimum requirements
// (w_q, w_c, w_l) of Figure 3a, for diagnostics and the worked-example
// tests.
func (pm ParamModels) Breakdown(d strategy.Params) (wq, wc, wl float64) {
	return pm.Quality.WorkforceFor(d.Quality, LowerBound),
		pm.Cost.WorkforceFor(d.Cost, UpperBound),
		pm.Latency.WorkforceFor(d.Latency, UpperBound)
}

// Validate sanity-checks a model set against the empirically validated
// directions of Section 5.1.1 (Table 6): quality and cost should not
// decrease with availability and latency should not increase. Violations
// are reported, not fatal, because the paper notes StratRec could be
// adapted to tasks without these relationships.
func (pm ParamModels) Validate() error {
	if pm.Quality.Alpha < 0 {
		return fmt.Errorf("linmodel: quality slope %v is negative", pm.Quality.Alpha)
	}
	if pm.Cost.Alpha < 0 {
		return fmt.Errorf("linmodel: cost slope %v is negative", pm.Cost.Alpha)
	}
	if pm.Latency.Alpha > 0 {
		return fmt.Errorf("linmodel: latency slope %v is positive", pm.Latency.Alpha)
	}
	return nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
