package linmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stratrec/internal/strategy"
)

func TestModelAt(t *testing.T) {
	m := Model{Alpha: 0.09, Beta: 0.85} // Table 6 translation SEQ-IND-CRO quality
	if got := m.At(0); math.Abs(got-0.85) > 1e-12 {
		t.Errorf("At(0) = %v", got)
	}
	if got := m.At(1); math.Abs(got-0.94) > 1e-12 {
		t.Errorf("At(1) = %v", got)
	}
	// Clamping: Table 6 latency model exceeds 1 at w=0.
	lat := Model{Alpha: -0.98, Beta: 1.40}
	if got := lat.At(0); got != 1 {
		t.Errorf("At(0) should clamp to 1, got %v", got)
	}
	if got := lat.AtRaw(0); got != 1.40 {
		t.Errorf("AtRaw(0) = %v", got)
	}
}

func TestWorkforceForLowerBound(t *testing.T) {
	m := Model{Alpha: 0.5, Beta: 0.4} // quality from 0.4 to 0.9
	cases := []struct {
		threshold float64
		want      float64
	}{
		{0.3, 0},           // already met at w=0
		{0.4, 0},           // met exactly at w=0
		{0.65, 0.5},        // interior crossing
		{0.9, 1},           // met exactly at w=1
		{0.95, Infeasible}, // unreachable
	}
	for _, c := range cases {
		got := m.WorkforceFor(c.threshold, LowerBound)
		if math.IsInf(c.want, 1) {
			if !math.IsInf(got, 1) {
				t.Errorf("WorkforceFor(%v) = %v, want Infeasible", c.threshold, got)
			}
			continue
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WorkforceFor(%v) = %v, want %v", c.threshold, got, c.want)
		}
	}
}

func TestWorkforceForUpperBoundDecreasing(t *testing.T) {
	m := Model{Alpha: -0.98, Beta: 1.40} // latency falls with availability
	// Latency <= 0.8 requires w >= (0.8-1.4)/-0.98.
	want := (0.8 - 1.4) / -0.98
	if got := m.WorkforceFor(0.8, UpperBound); math.Abs(got-want) > 1e-12 {
		t.Errorf("WorkforceFor = %v, want %v", got, want)
	}
	// Latency <= 0.3 is unreachable (minimum is 0.42 at w=1).
	if got := m.WorkforceFor(0.3, UpperBound); !math.IsInf(got, 1) {
		t.Errorf("WorkforceFor(0.3) = %v, want Infeasible", got)
	}
	// Latency <= 1.5 holds everywhere.
	if got := m.WorkforceFor(1.5, UpperBound); got != 0 {
		t.Errorf("WorkforceFor(1.5) = %v, want 0", got)
	}
}

func TestFeasibleIntervalUpperBoundIncreasing(t *testing.T) {
	// Cost grows with availability: a budget caps availability from above.
	m := Model{Alpha: 1.0, Beta: 0.0} // Table 6 cost SEQ-IND-CRO
	iv := m.FeasibleInterval(0.6, UpperBound)
	if iv.Lo != 0 || math.Abs(iv.Hi-0.6) > 1e-12 {
		t.Errorf("interval = %+v, want [0, 0.6]", iv)
	}
	iv = m.FeasibleInterval(1.2, UpperBound)
	if iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("loose budget interval = %+v, want [0, 1]", iv)
	}
}

func TestFeasibleIntervalConstantModel(t *testing.T) {
	m := Model{Alpha: 0, Beta: 0.5}
	if iv := m.FeasibleInterval(0.4, LowerBound); iv.Empty() {
		t.Error("constant 0.5 should meet lower bound 0.4 everywhere")
	}
	if iv := m.FeasibleInterval(0.6, LowerBound); !iv.Empty() {
		t.Error("constant 0.5 should never meet lower bound 0.6")
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := Interval{Lo: 0.2, Hi: 0.8}
	b := Interval{Lo: 0.5, Hi: 1.0}
	got := a.Intersect(b)
	if got.Lo != 0.5 || got.Hi != 0.8 {
		t.Errorf("Intersect = %+v", got)
	}
	c := Interval{Lo: 0.9, Hi: 1.0}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersection should be empty")
	}
}

// tableSeqIndCro returns the Table 6 translation SEQ-IND-CRO models.
func tableSeqIndCro() ParamModels {
	return ParamModels{
		Quality: Model{Alpha: 0.09, Beta: 0.85},
		Cost:    Model{Alpha: 1.00, Beta: 0.00},
		Latency: Model{Alpha: -0.98, Beta: 1.40},
	}
}

func TestParamsAt(t *testing.T) {
	pm := tableSeqIndCro()
	p := pm.ParamsAt(0.8)
	if math.Abs(p.Quality-0.922) > 1e-12 {
		t.Errorf("Quality = %v", p.Quality)
	}
	if math.Abs(p.Cost-0.8) > 1e-12 {
		t.Errorf("Cost = %v", p.Cost)
	}
	if math.Abs(p.Latency-(1.40-0.98*0.8)) > 1e-12 {
		t.Errorf("Latency = %v", p.Latency)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("estimated params invalid: %v", err)
	}
}

func TestRequirementMatchesPaperMax(t *testing.T) {
	// On the paper's model shapes the requirement equals
	// max(w_q, w_c, w_l) of Figure 3a when the budget does not bind.
	pm := tableSeqIndCro()
	d := strategy.Params{Quality: 0.9, Cost: 0.95, Latency: 0.7}
	wq, wc, wl := pm.Breakdown(d)
	want := math.Max(wq, math.Max(wc, wl))
	if got := pm.Requirement(d); math.Abs(got-want) > 1e-12 {
		t.Errorf("Requirement = %v, want max(%v, %v, %v) = %v", got, wq, wc, wl, want)
	}
	// Quality 0.9 needs w >= 0.555..., latency 0.7 needs w >= 0.714...;
	// latency dominates.
	if math.Abs(want-(0.7-1.40)/-0.98) > 1e-12 {
		t.Errorf("dominating requirement = %v", want)
	}
}

func TestRequirementBudgetCapsAvailability(t *testing.T) {
	// The generalization beyond the paper's max formula: with cost
	// increasing in availability, a tight budget can make the deployment
	// infeasible even though quality and latency alone would be reachable.
	pm := tableSeqIndCro()
	d := strategy.Params{Quality: 0.9, Cost: 0.30, Latency: 0.7}
	// Quality/latency force w >= 0.714 but cost <= 0.30 caps w <= 0.30.
	if got := pm.Requirement(d); !math.IsInf(got, 1) {
		t.Errorf("Requirement = %v, want Infeasible (budget conflict)", got)
	}
	// A budget of 0.8 leaves room: requirement is the latency bound.
	d.Cost = 0.8
	if got := pm.Requirement(d); math.Abs(got-(0.7-1.40)/-0.98) > 1e-12 {
		t.Errorf("Requirement = %v", got)
	}
}

func TestRequirementInfeasibleQuality(t *testing.T) {
	pm := tableSeqIndCro()
	d := strategy.Params{Quality: 0.99, Cost: 1, Latency: 1} // max quality is 0.94
	if got := pm.Requirement(d); !math.IsInf(got, 1) {
		t.Errorf("Requirement = %v, want Infeasible", got)
	}
}

func TestValidateDirections(t *testing.T) {
	good := tableSeqIndCro()
	if err := good.Validate(); err != nil {
		t.Errorf("Table 6 models rejected: %v", err)
	}
	bad := good
	bad.Quality.Alpha = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative quality slope accepted")
	}
	bad = good
	bad.Cost.Alpha = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost slope accepted")
	}
	bad = good
	bad.Latency.Alpha = 0.1
	if err := bad.Validate(); err == nil {
		t.Error("positive latency slope accepted")
	}
}

func TestPropertyRequirementIsMinimalFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		pm := ParamModels{
			Quality: Model{Alpha: rng.Float64(), Beta: rng.Float64() * 0.8},
			Cost:    Model{Alpha: rng.Float64(), Beta: rng.Float64() * 0.5},
			Latency: Model{Alpha: -rng.Float64(), Beta: 0.5 + rng.Float64()},
		}
		d := strategy.Params{Quality: rng.Float64(), Cost: rng.Float64(), Latency: rng.Float64()}
		req := pm.Requirement(d)
		meets := func(w float64) bool {
			return pm.Quality.AtRaw(w) >= d.Quality &&
				pm.Cost.AtRaw(w) <= d.Cost &&
				pm.Latency.AtRaw(w) <= d.Latency
		}
		if math.IsInf(req, 1) {
			// No sampled availability should work.
			for w := 0.0; w <= 1.0; w += 0.05 {
				if meets(w) {
					return false
				}
			}
			return true
		}
		// The requirement itself must work (allowing boundary rounding)...
		if !meets(req + 1e-12) {
			return false
		}
		// ...and nothing strictly below it should, sampled coarsely.
		for w := 0.0; w < req-1e-9; w += req / 7 {
			if meets(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFeasibleIntervalSound(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func() bool {
		m := Model{Alpha: rng.Float64()*4 - 2, Beta: rng.Float64()*2 - 0.5}
		threshold := rng.Float64()
		dir := LowerBound
		if rng.Intn(2) == 0 {
			dir = UpperBound
		}
		iv := m.FeasibleInterval(threshold, dir)
		meets := func(v float64) bool {
			if dir == LowerBound {
				return v >= threshold
			}
			return v <= threshold
		}
		for w := 0.0; w <= 1.0001; w += 0.04 {
			inside := !iv.Empty() && w >= iv.Lo-1e-9 && w <= iv.Hi+1e-9
			if meets(m.AtRaw(w)) != inside {
				// Boundary tolerance: allow disagreement within epsilon of
				// the interval ends.
				if !iv.Empty() && (math.Abs(w-iv.Lo) < 1e-6 || math.Abs(w-iv.Hi) < 1e-6) {
					continue
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
