package workforce

import (
	"math/rand"
	"strconv"
	"testing"

	"stratrec/internal/linmodel"
	"stratrec/internal/strategy"
)

func benchSetup(m, n int, seed int64) ([]strategy.Request, strategy.Set, PerStrategyModels) {
	rng := rand.New(rand.NewSource(seed))
	set := make(strategy.Set, n)
	models := make(PerStrategyModels, n)
	for j := range set {
		set[j] = strategy.Strategy{ID: j, Params: strategy.Params{Quality: 0.8, Cost: 0.3, Latency: 0.3}}
		models[j] = linmodel.ParamModels{
			Quality: linmodel.Model{Alpha: 0.3 + 0.7*rng.Float64(), Beta: 0.2},
			Cost:    linmodel.Model{Alpha: 0.1, Beta: 0.1},
			Latency: linmodel.Model{Alpha: -0.5, Beta: 0.9},
		}
	}
	reqs := make([]strategy.Request, m)
	for i := range reqs {
		reqs[i] = strategy.Request{
			ID:     "d" + strconv.Itoa(i),
			Params: strategy.Params{Quality: 0.4 + 0.4*rng.Float64(), Cost: 0.9, Latency: 0.9},
			K:      10,
		}
	}
	return reqs, set, models
}

func BenchmarkComputeMatrix(b *testing.B) {
	for _, size := range []struct{ m, n int }{{10, 1000}, {100, 1000}, {10, 100000}} {
		reqs, set, models := benchSetup(size.m, size.n, int64(size.n))
		b.Run("m="+strconv.Itoa(size.m)+"/S="+strconv.Itoa(size.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Compute(reqs, set, models); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAggregate(b *testing.B) {
	reqs, set, models := benchSetup(10, 100000, 7)
	mat, err := Compute(reqs, set, models)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.Aggregate(0, 10, SumCase)
	}
}

func BenchmarkRequirementForStreaming(b *testing.B) {
	reqs, set, models := benchSetup(1, 100000, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RequirementFor(reqs[0], 0, set, models, MaxCase)
	}
}
