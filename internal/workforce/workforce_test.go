package workforce

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"stratrec/internal/linmodel"
	"stratrec/internal/strategy"
)

// testModels builds simple per-strategy models: quality rises from beta to
// beta+alpha, latency falls, cost stays cheap.
func testModels(qualityAlphas []float64) PerStrategyModels {
	models := make(PerStrategyModels, len(qualityAlphas))
	for i, a := range qualityAlphas {
		models[i] = linmodel.ParamModels{
			Quality: linmodel.Model{Alpha: a, Beta: 0.3},
			Cost:    linmodel.Model{Alpha: 0.1, Beta: 0.1},
			Latency: linmodel.Model{Alpha: -0.5, Beta: 0.8},
		}
	}
	return models
}

func testSet(n int) strategy.Set {
	set := make(strategy.Set, n)
	for i := range set {
		set[i] = strategy.Strategy{ID: i, Params: strategy.Params{Quality: 0.8, Cost: 0.3, Latency: 0.3}}
	}
	return set
}

func TestComputeMatrix(t *testing.T) {
	set := testSet(3)
	models := testModels([]float64{0.6, 0.4, 0.2})
	reqs := []strategy.Request{
		{ID: "d1", Params: strategy.Params{Quality: 0.6, Cost: 0.9, Latency: 0.9}, K: 2},
	}
	mat, err := Compute(reqs, set, models)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 1 || mat.Cols() != 3 {
		t.Fatalf("matrix %dx%d", mat.Rows(), mat.Cols())
	}
	// Quality 0.6 requires (0.6-0.3)/alpha.
	if got := mat.Entry(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("w[0][0] = %v, want 0.5", got)
	}
	if got := mat.Entry(0, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("w[0][1] = %v, want 0.75", got)
	}
	// alpha=0.2 cannot reach 0.6 from 0.3.
	if got := mat.Entry(0, 2); !math.IsInf(got, 1) {
		t.Errorf("w[0][2] = %v, want Infeasible", got)
	}
	row := mat.Row(0)
	if len(row) != 3 || row[0] != mat.Entry(0, 0) {
		t.Errorf("Row = %v", row)
	}
}

func TestComputeValidation(t *testing.T) {
	set := testSet(2)
	models := testModels([]float64{0.5, 0.5})
	if _, err := Compute(nil, set, models); err == nil {
		t.Error("empty requests accepted")
	}
	if _, err := Compute([]strategy.Request{{K: 1, Params: strategy.Params{Quality: 0.5, Cost: 0.5, Latency: 0.5}}}, strategy.Set{}, models); err == nil {
		t.Error("empty strategy set accepted")
	}
	bad := []strategy.Request{{ID: "d", K: 0, Params: strategy.Params{Quality: 0.5, Cost: 0.5, Latency: 0.5}}}
	if _, err := Compute(bad, set, models); err == nil {
		t.Error("invalid request accepted")
	}
}

func TestAggregateSumAndMax(t *testing.T) {
	set := testSet(4)
	models := testModels([]float64{0.6, 0.3, 0.9, 0.45})
	// Quality threshold 0.6: requirements 0.5, 1.0, 1/3, 2/3.
	reqs := []strategy.Request{
		{ID: "d1", Params: strategy.Params{Quality: 0.6, Cost: 0.9, Latency: 0.9}, K: 2},
	}
	mat, err := Compute(reqs, set, models)
	if err != nil {
		t.Fatal(err)
	}
	sum := mat.Aggregate(0, 2, SumCase)
	if !sum.Feasible() {
		t.Fatal("sum-case infeasible")
	}
	// Two smallest: 1/3 (s3) and 0.5 (s1).
	if math.Abs(sum.Workforce-(1.0/3+0.5)) > 1e-12 {
		t.Errorf("sum workforce = %v", sum.Workforce)
	}
	if len(sum.Strategies) != 2 || sum.Strategies[0] != 2 || sum.Strategies[1] != 0 {
		t.Errorf("sum strategies = %v, want [2 0]", sum.Strategies)
	}

	max := mat.Aggregate(0, 2, MaxCase)
	if math.Abs(max.Workforce-0.5) > 1e-12 {
		t.Errorf("max workforce = %v, want 0.5 (2nd smallest)", max.Workforce)
	}
	if len(max.Strategies) != 2 {
		t.Errorf("max strategies = %v", max.Strategies)
	}
}

func TestAggregateInfeasible(t *testing.T) {
	set := testSet(2)
	models := testModels([]float64{0.6, 0.1}) // second can't reach 0.6
	reqs := []strategy.Request{
		{ID: "d1", Params: strategy.Params{Quality: 0.6, Cost: 0.9, Latency: 0.9}, K: 2},
	}
	mat, err := Compute(reqs, set, models)
	if err != nil {
		t.Fatal(err)
	}
	agg := mat.Aggregate(0, 2, SumCase)
	if agg.Feasible() {
		t.Errorf("aggregate with one infeasible strategy and k=2 should be infeasible, got %v", agg.Workforce)
	}
	if agg.Strategies != nil {
		t.Errorf("infeasible aggregate should carry no strategies, got %v", agg.Strategies)
	}
	// k=1 is fine.
	if agg := mat.Aggregate(0, 1, SumCase); !agg.Feasible() {
		t.Error("k=1 should be feasible")
	}
	// k=0 is rejected.
	if agg := mat.Aggregate(0, 0, SumCase); agg.Feasible() {
		t.Error("k=0 should be infeasible")
	}
}

func TestVector(t *testing.T) {
	set := testSet(3)
	models := testModels([]float64{0.6, 0.4, 0.5})
	reqs := []strategy.Request{
		{ID: "d1", Params: strategy.Params{Quality: 0.5, Cost: 0.9, Latency: 0.9}, K: 1},
		{ID: "d2", Params: strategy.Params{Quality: 0.6, Cost: 0.9, Latency: 0.9}, K: 3},
	}
	mat, err := Compute(reqs, set, models)
	if err != nil {
		t.Fatal(err)
	}
	vec := mat.Vector(reqs, SumCase)
	if len(vec) != 2 {
		t.Fatalf("vector length %d", len(vec))
	}
	if !vec[0].Feasible() || len(vec[0].Strategies) != 1 {
		t.Errorf("vec[0] = %+v", vec[0])
	}
	if !vec[1].Feasible() || len(vec[1].Strategies) != 3 {
		t.Errorf("vec[1] = %+v", vec[1])
	}
}

func TestModeString(t *testing.T) {
	if SumCase.String() != "sum" || MaxCase.String() != "max" {
		t.Error("mode strings")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestFullModelsProvider(t *testing.T) {
	pm := linmodel.ParamModels{Quality: linmodel.Model{Alpha: 1, Beta: 0}}
	fm := FullModels{{pm, pm}, {pm, pm}}
	if got := fm.Models(1, 0); got != pm {
		t.Errorf("FullModels.Models = %+v", got)
	}
}

// referenceKSmallest is the obvious sort-based selection the heap is
// checked against.
func referenceKSmallest(row []float64, k int) []float64 {
	var finite []float64
	for _, v := range row {
		if !math.IsInf(v, 1) {
			finite = append(finite, v)
		}
	}
	sort.Float64s(finite)
	if len(finite) > k {
		finite = finite[:k]
	}
	return finite
}

func TestPropertyHeapSelectionMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func() bool {
		n := 1 + rng.Intn(40)
		row := make([]float64, n)
		for i := range row {
			if rng.Float64() < 0.2 {
				row[i] = linmodel.Infeasible
			} else {
				row[i] = rng.Float64()
			}
		}
		k := 1 + rng.Intn(n+2)
		got := kSmallest(row, k)
		want := referenceKSmallest(row, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].value != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertySumAtLeastMax(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	set := testSet(8)
	f := func() bool {
		alphas := make([]float64, 8)
		for i := range alphas {
			alphas[i] = rng.Float64()
		}
		models := testModels(alphas)
		reqs := []strategy.Request{{
			ID:     "d",
			Params: strategy.Params{Quality: 0.3 + rng.Float64()*0.6, Cost: 0.9, Latency: 0.9},
			K:      1 + rng.Intn(8),
		}}
		mat, err := Compute(reqs, set, models)
		if err != nil {
			return false
		}
		sum := mat.Aggregate(0, reqs[0].K, SumCase)
		max := mat.Aggregate(0, reqs[0].K, MaxCase)
		if sum.Feasible() != max.Feasible() {
			return false
		}
		if !sum.Feasible() {
			return true
		}
		// Sum over k values >= their max; equal when k == 1.
		if sum.Workforce < max.Workforce-1e-12 {
			return false
		}
		if reqs[0].K == 1 && math.Abs(sum.Workforce-max.Workforce) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
