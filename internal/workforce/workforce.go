// Package workforce implements the Workforce Requirement Computation of
// Section 3.2: the m x |S| matrix W of per-(deployment, strategy) workforce
// requirements, and its aggregation into the per-deployment requirement
// vector under the paper's sum-case and max-case semantics.
package workforce

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"stratrec/internal/linmodel"
	"stratrec/internal/strategy"
)

// ModelProvider supplies the linear models of one (request, strategy)
// combination.
//
// The contract on reqIdx: stratIdx always refers to a position in the
// strategy set, but what reqIdx identifies depends on the caller.
//
//   - Batch callers (Compute, RequirementFor over a fixed request slice)
//     pass the request's position in that slice.
//   - Streaming callers (stream.Manager) pass the request's monotonic
//     submission sequence number: unique across the manager's lifetime,
//     never reused after a revocation, and preserved across crash
//     recovery. A provider with per-request rows (FullModels) must
//     therefore be provisioned for the total number of submissions, not
//     the size of the live pool — in exchange, two distinct live requests
//     can never observe the same row, and a request re-admitted during
//     recovery sees exactly the row of its original admission.
//
// reqIdx is uint64 precisely because of the streaming caller: the
// submission counter is monotonic over the manager's whole lifetime
// (recovered logs included), so narrowing it to int would alias rows on
// 32-bit platforms once the counter passes MaxInt32. Providers indexing a
// slice by reqIdx (FullModels) are expected to be provisioned densely from
// 0 and may convert internally.
//
// Providers that ignore reqIdx (PerStrategyModels, the common case) are
// unaffected by the distinction.
type ModelProvider interface {
	Models(reqIdx uint64, stratIdx int) linmodel.ParamModels
}

// PerStrategyModels is the common case where models depend only on the
// strategy (all requests in a batch are of the same task type, as in the
// paper's running example).
type PerStrategyModels []linmodel.ParamModels

// Models returns the models of strategy stratIdx regardless of the request.
func (p PerStrategyModels) Models(_ uint64, stratIdx int) linmodel.ParamModels { return p[stratIdx] }

// FullModels is a complete per-(request, strategy) model matrix. Rows are
// indexed by reqIdx, so under a stream.Manager the matrix must have one
// row per submission (see the ModelProvider contract), not per live
// request.
type FullModels [][]linmodel.ParamModels

// Models returns the models at [reqIdx][stratIdx].
func (f FullModels) Models(reqIdx uint64, stratIdx int) linmodel.ParamModels {
	return f[reqIdx][stratIdx]
}

// Matrix is the workforce requirement matrix W: Entry(i, j) is the minimum
// workforce needed to deploy request i with strategy j, or
// linmodel.Infeasible when some threshold is unreachable.
type Matrix struct {
	m, s    int
	entries []float64 // row-major
}

// Compute builds the matrix for the given requests and strategies (step 1 of
// Section 3.2). Running time O(m * |S|), each cell in constant time.
func Compute(requests []strategy.Request, set strategy.Set, models ModelProvider) (*Matrix, error) {
	if len(requests) == 0 {
		return nil, fmt.Errorf("workforce: no requests")
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	mat := &Matrix{m: len(requests), s: len(set), entries: make([]float64, len(requests)*len(set))}
	for i, d := range requests {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("workforce: request %d: %w", i, err)
		}
		for j := range set {
			mat.entries[i*mat.s+j] = models.Models(uint64(i), j).Requirement(d.Params)
		}
	}
	return mat, nil
}

// Rows returns the number of requests m.
func (mat *Matrix) Rows() int { return mat.m }

// Cols returns the number of strategies |S|.
func (mat *Matrix) Cols() int { return mat.s }

// Entry returns w_ij.
func (mat *Matrix) Entry(i, j int) float64 { return mat.entries[i*mat.s+j] }

// Row returns a copy of row i.
func (mat *Matrix) Row(i int) []float64 {
	row := make([]float64, mat.s)
	copy(row, mat.entries[i*mat.s:(i+1)*mat.s])
	return row
}

// Mode selects how the k per-strategy requirements of one request aggregate
// into a single requirement (step 2 of Section 3.2).
type Mode int

const (
	// SumCase assumes the requester deploys with all k recommended
	// strategies: the requirement is the sum of the k smallest w values.
	SumCase Mode = iota
	// MaxCase assumes the requester deploys with only one of the k
	// recommended strategies: the requirement is the k-th smallest w.
	MaxCase
)

func (m Mode) String() string {
	switch m {
	case SumCase:
		return "sum"
	case MaxCase:
		return "max"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Requirement is the aggregated workforce requirement of one request
// together with the k strategies that realize it.
type Requirement struct {
	// Workforce is the aggregated requirement, or linmodel.Infeasible when
	// fewer than k strategies have finite requirements.
	Workforce float64
	// Strategies holds the IDs of the k selected strategies in ascending
	// requirement order; nil when infeasible.
	Strategies []int
}

// Feasible reports whether k strategies were found.
func (r Requirement) Feasible() bool { return !math.IsInf(r.Workforce, 1) }

// kSmallest selects the k smallest finite values of row (with their column
// indices) using a size-k max-heap, the O(|S| log k) selection the paper
// describes. It returns fewer than k pairs when the row has fewer finite
// entries.
func kSmallest(row []float64, k int) []colValue {
	h := &maxHeap{}
	for j, w := range row {
		if math.IsInf(w, 1) {
			continue
		}
		if h.Len() < k {
			heap.Push(h, colValue{col: j, value: w})
		} else if w < (*h)[0].value {
			(*h)[0] = colValue{col: j, value: w}
			heap.Fix(h, 0)
		}
	}
	out := make([]colValue, h.Len())
	copy(out, *h)
	sort.Slice(out, func(a, b int) bool {
		if out[a].value != out[b].value {
			return out[a].value < out[b].value
		}
		return out[a].col < out[b].col
	})
	return out
}

// Aggregate computes the requirement of row i with cardinality k under the
// given mode.
func (mat *Matrix) Aggregate(i, k int, mode Mode) Requirement {
	if k < 1 {
		return Requirement{Workforce: linmodel.Infeasible}
	}
	picked := kSmallest(mat.entries[i*mat.s:(i+1)*mat.s], k)
	if len(picked) < k {
		return Requirement{Workforce: linmodel.Infeasible}
	}
	ids := make([]int, k)
	agg := 0.0
	for idx, cv := range picked {
		ids[idx] = cv.col
		if mode == SumCase {
			agg += cv.value
		} else {
			agg = cv.value // ascending order: ends at the k-th smallest
		}
	}
	return Requirement{Workforce: agg, Strategies: ids}
}

// Vector computes the aggregated requirement of every request (the vector
// W-arrow of Section 3.2), using each request's own cardinality constraint.
// Overall running time O(m |S| log k).
func (mat *Matrix) Vector(requests []strategy.Request, mode Mode) []Requirement {
	out := make([]Requirement, mat.m)
	for i := range out {
		out[i] = mat.Aggregate(i, requests[i].K, mode)
	}
	return out
}

// RequirementFor computes one request's aggregated requirement directly,
// without materializing a matrix row. It is the streaming variant used by
// the large-scale experiments (a 10^4 x 10^4 batch would otherwise need an
// 800 MB matrix). reqIdx follows the ModelProvider contract: a slice
// position for batch callers, the full-width submission sequence number
// for streaming callers.
func RequirementFor(d strategy.Request, reqIdx uint64, set strategy.Set, models ModelProvider, mode Mode) Requirement {
	if d.K < 1 {
		return Requirement{Workforce: linmodel.Infeasible}
	}
	h := &maxHeap{}
	for j := range set {
		w := models.Models(reqIdx, j).Requirement(d.Params)
		if math.IsInf(w, 1) {
			continue
		}
		if h.Len() < d.K {
			heap.Push(h, colValue{col: j, value: w})
		} else if w < (*h)[0].value {
			(*h)[0] = colValue{col: j, value: w}
			heap.Fix(h, 0)
		}
	}
	if h.Len() < d.K {
		return Requirement{Workforce: linmodel.Infeasible}
	}
	picked := make([]colValue, h.Len())
	copy(picked, *h)
	sort.Slice(picked, func(a, b int) bool {
		if picked[a].value != picked[b].value {
			return picked[a].value < picked[b].value
		}
		return picked[a].col < picked[b].col
	})
	out := Requirement{Strategies: make([]int, d.K)}
	for idx, cv := range picked {
		out.Strategies[idx] = cv.col
		if mode == SumCase {
			out.Workforce += cv.value
		} else {
			out.Workforce = cv.value
		}
	}
	return out
}

type colValue struct {
	col   int
	value float64
}

// maxHeap keeps the k smallest values seen so far, largest on top.
type maxHeap []colValue

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].value > h[j].value }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(colValue)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
