package lint

import (
	"go/ast"
	"go/types"
)

// calleeOf resolves a call expression's callee to the *types.Func it
// invokes, nil for calls through function values, conversions, and
// builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// methodOn reports whether fn is a method named name on a (possibly
// pointed-to) named type typeName defined in a package whose import path
// ends in pkgBase.
func methodOn(fn *types.Func, name, typeName, pkgBase string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return pathBase(obj.Pkg().Path()) == pkgBase
}

// recvName returns the name of fn's receiver type ("" for plain
// functions), dereferencing a pointer receiver.
func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// pkgOneOf reports whether the pass's package path ends in one of the
// given base names — how analyzers scope to subsystems so that the real
// packages and the testdata fixture packages match the same rule.
func pkgOneOf(pass *Pass, bases ...string) bool {
	base := pathBase(pass.PkgPath)
	for _, b := range bases {
		if base == b {
			return true
		}
	}
	return false
}
