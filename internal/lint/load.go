package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// listPackage is the slice of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") in dir to typechecked Targets.
//
// It shells out to `go list -e -deps -export -json`: the go command does
// the build-system work — pattern expansion, import resolution, and
// compiling export data into the build cache — and the loader only
// parses and typechecks the matched packages themselves, importing their
// dependencies from the compiler's export files. Fully offline: export
// data comes from the local build cache, and this module has none but
// stdlib dependencies anyway.
func Load(dir string, patterns []string) ([]*Target, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=Dir,ImportPath,Name,Export,GoFiles,CgoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pkgs = append(pkgs, &p)
		}
	}

	var targets []*Target
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s: cgo packages are not supported", p.ImportPath)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		t, err := typecheck(p.ImportPath, files, func(path string) (string, bool) {
			f, ok := exports[path]
			return f, ok
		})
		if err != nil {
			return nil, err
		}
		targets = append(targets, t)
	}
	return targets, nil
}

// typecheck parses files and typechecks them as package pkgPath,
// importing dependencies through export-data files resolved by lookup.
//
// The gc export-data importer panics on some malformed inputs (a stale
// or truncated export file, a version skew) instead of returning an
// error; the recover turns that into a loader diagnostic so a broken
// build cache reads as "what went wrong", not a stack trace.
func typecheck(pkgPath string, files []string, lookup func(path string) (string, bool)) (target *Target, err error) {
	defer func() {
		if r := recover(); r != nil {
			target, err = nil, fmt.Errorf("lint: typechecking %s: importer panic: %v (is the build cache stale? try `go build ./...` first)", pkgPath, r)
		}
	}()
	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		syntax = append(syntax, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		// Soft errors (unused variables in fixtures) must not abort
		// analysis; hard errors surface through the returned error.
		Error: func(error) {},
	}
	pkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %v", pkgPath, err)
	}
	return &Target{PkgPath: pkgPath, Fset: fset, Files: syntax, Pkg: pkg, Info: info}, nil
}
