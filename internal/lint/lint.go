// Package lint is stratrec's domain-specific static-analysis suite:
// nine analyzers that turn the system's cross-cutting runtime contracts
// — acked ⇒ logged ⇒ fsynced, shed ⇒ no WAL trace, single-writer
// stream.Manager access, snapshot immutability, WAL replay
// exhaustiveness, zero-allocation hot paths, injected clocks,
// bit-identical solver arithmetic, the stable error-code and
// metric-name vocabularies — into compile-time checks. The conformance
// and chaos oracles catch a violation after it ships into a run; these
// analyzers catch it at vet time, before it runs at all.
//
// The suite is built on a small stdlib-only mirror of the
// golang.org/x/tools/go/analysis API (this module has no dependencies,
// by design): an Analyzer inspects one typechecked package through a
// Pass and reports Diagnostics. cmd/stratrec-lint drives the suite both
// standalone (stratrec-lint ./...) and as a `go vet -vettool=`
// unitchecker (see unit.go).
//
// Since PR 10 the suite is whole-program within each package: a call
// graph (callgraph.go) with bottom-up fact propagation (facts.go) lets
// ackorder, loopsafety, and snapshotimmut see a violation laundered
// through any depth of helper functions, and their diagnostics carry
// the call chain that reaches the offending operation.
//
// Suppression: a finding can be silenced with
//
//	//lint:allow <name>[,<name>...] -- <reason>
//
// on the offending line or the line directly above; a directive on its
// own line immediately before a statement that opens a block covers the
// whole block. The reason is mandatory — a directive without one is
// itself a diagnostic and suppresses nothing (see allow.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces, shown by
	// `stratrec-lint help`.
	Doc string
	// Run inspects the package behind pass and reports findings through
	// pass.Report/Reportf. A returned error aborts the whole run (it
	// means the analyzer itself is broken, not that the code is).
	Run func(pass *Pass) error
}

// Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test syntax trees (the runner filters
	// _test.go files for every analyzer: the invariants are
	// production-code contracts, and tests deliberately violate them —
	// white-box fixtures, direct manager access, literal envelopes).
	Files []*ast.File
	// Pkg and Info are the typechecker's view of those files.
	Pkg  *types.Package
	Info *types.Info
	// PkgPath is the package's import path (Pkg.Path unless typechecking
	// degraded).
	PkgPath string
	// Report delivers one finding. The runner owns the sink; analyzers
	// should prefer Reportf.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned for the file:line:col format go
// vet speaks.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerLoopSafety,
		AnalyzerAckOrder,
		AnalyzerSnapshotImmut,
		AnalyzerWALExhaustive,
		AnalyzerAllocBound,
		AnalyzerClockDiscipline,
		AnalyzerFloatDet,
		AnalyzerErrVocab,
		AnalyzerMetricName,
	}
}

// pathBase returns the final segment of an import path: analyzers scope
// by it so the real packages (stratrec/internal/server) and the testdata
// fixtures (lintfix/clockdiscipline/server) match the same rule.
func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
